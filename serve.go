package hdov

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/overload"
	"repro/internal/render"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/walkthrough"
)

// Concurrent serving: one open DB can answer many clients at once. Each
// client holds a Session — same tree, same disk, same buffer pool, but
// private I/O accounting and a private storage-scheme cursor — so queries
// from different sessions run concurrently and each session's Result
// carries exactly its own cost. See DESIGN.md §10 for the model.

// Session is an independent query handle on an open DB. Sessions are
// cheap to create and need no teardown. A single Session serves one
// logical client: do not share one between goroutines (create more
// instead — different Sessions are safe to use concurrently).
//
// A Session pins the database epoch current when it was created: queries
// keep answering from that consistent snapshot even while Update installs
// later epochs (the update path only ever appends to the disk, so the
// pinned tree's pages stay valid forever). Create a fresh Session to see
// the newest epoch.
//
// On a sharded database (EnableSharding) a session additionally pins the
// shard topology current at creation and routes every query to its
// owning shard store; answers are byte-identical either way.
type Session struct {
	tree *core.Tree
	// sh, when non-nil, routes queries across shard stores; tree is nil.
	sh *shard.Session
}

// grid returns the session's viewing-cell grid (identical on every
// shard, so routing does not matter here).
func (s *Session) grid() *cells.Grid {
	if s.sh != nil {
		return s.sh.Grid()
	}
	return s.tree.Grid
}

// Query answers the visibility query at viewpoint p with DoV threshold
// eta, like DB.Query, charged to this session alone.
func (s *Session) Query(p Point, eta float64) (*Result, error) {
	cell := s.grid().Locate(p.vec())
	if cell == cells.NoCell {
		return nil, ErrOutsideCells
	}
	return s.QueryCell(int(cell), eta)
}

// QueryCell is Query for an explicit cell index.
func (s *Session) QueryCell(cell int, eta float64) (*Result, error) {
	if cell < 0 || cell >= s.grid().NumCells() {
		return nil, fmt.Errorf("hdov: cell %d out of range [0,%d)", cell, s.grid().NumCells())
	}
	var r *core.QueryResult
	var err error
	if s.sh != nil {
		r, err = s.sh.QueryCell(cells.CellID(cell), eta)
	} else {
		r, err = s.tree.Query(cells.CellID(cell), eta)
	}
	if err != nil {
		return nil, err
	}
	return wrapResult(r), nil
}

// QueryCoherent answers like Query but through the session's retained
// traversal cut: when consecutive queries come from neighboring cells —
// a walkthrough's workload — the previous query's frontier is
// re-evaluated against the new cell's visibility data instead of
// descending from the root. The answer is byte-identical to Query's
// (degraded mode included; any fault on the warm path falls back to a
// full traversal); only the I/O accounting differs. The cut is
// per-session state, which is why the method lives here and not on DB.
func (s *Session) QueryCoherent(p Point, eta float64) (*Result, error) {
	cell := s.grid().Locate(p.vec())
	if cell == cells.NoCell {
		return nil, ErrOutsideCells
	}
	return s.QueryCellCoherent(int(cell), eta)
}

// QueryCellCoherent is QueryCoherent for an explicit cell index. On a
// sharded session each shard keeps its own retained cut, so a walk that
// crosses a boundary stays warm on both sides.
func (s *Session) QueryCellCoherent(cell int, eta float64) (*Result, error) {
	if cell < 0 || cell >= s.grid().NumCells() {
		return nil, fmt.Errorf("hdov: cell %d out of range [0,%d)", cell, s.grid().NumCells())
	}
	var r *core.QueryResult
	var err error
	if s.sh != nil {
		r, err = s.sh.QueryCellCoherent(cells.CellID(cell), eta)
	} else {
		r, err = s.tree.QueryCoherent(cells.CellID(cell), eta)
	}
	if err != nil {
		return nil, err
	}
	return wrapResult(r), nil
}

// CoherenceStats reports how a session's QueryCoherent calls resolved.
type CoherenceStats struct {
	// Incremental counts queries served through the cut machinery — the
	// first query and eta changes are included (their seed cut is the
	// bare root, so the whole descent shows up in Expanded); Full counts
	// fallbacks to a from-root traversal after a fault on the warm path.
	Incremental, Full int64
	// NodesReused counts node records served from the cut without a read;
	// Expanded and Collapsed count cut-frontier nodes added and removed.
	NodesReused, Expanded, Collapsed int64
}

// CoherenceStats returns the session's cumulative warm-path accounting
// (summed across shards on a routed session).
func (s *Session) CoherenceStats() CoherenceStats {
	var cs core.CoherenceStats
	if s.sh != nil {
		cs = s.sh.CoherenceStats()
	} else {
		cs = s.tree.CoherenceStats()
	}
	return CoherenceStats{
		Incremental: cs.Incremental, Full: cs.Full,
		NodesReused: cs.NodesReused, Expanded: cs.Expanded, Collapsed: cs.Collapsed,
	}
}

// Fetch charges the heavy-weight I/O of retrieving every item's payload,
// like DB.Fetch, charged to this session alone. On a sharded session the
// fetch is routed to the shard that answered the query.
func (s *Session) Fetch(r *Result) error {
	t, err := s.treeFor(r)
	if err != nil {
		return err
	}
	return fetchOn(t, r)
}

// treeFor returns the core session a result's payloads must be fetched
// through: the owning shard's on a routed session.
func (s *Session) treeFor(r *Result) (*core.Tree, error) {
	if s.sh == nil {
		return s.tree, nil
	}
	return s.sh.Tree(r.inner.Cell)
}

// Stats returns the session's own cumulative I/O accounting: only reads
// this session issued, regardless of how many other sessions share the
// disk. On a sharded session the counters sum over every shard the
// session touched (ShardStatsOf gives the per-shard split).
func (s *Session) Stats() DiskStats {
	if s.sh != nil {
		return diskStatsFrom(s.sh.Stats())
	}
	return diskStatsFrom(s.tree.IO.Stats())
}

// ResetStats zeroes the session's counters (global disk counters are
// untouched).
func (s *Session) ResetStats() {
	if s.sh != nil {
		s.sh.ResetStats()
		return
	}
	s.tree.IO.ResetStats()
}

// NewSession returns a fresh query session on the database. The session
// sees the scheme, parallelism settings, scene epoch and shard topology
// in effect now; SetScheme, SetParallel, Update or EnableSharding calls
// after creation affect only future sessions.
func (db *DB) NewSession() *Session {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.router != nil {
		return &Session{sh: db.router.Session()}
	}
	return &Session{tree: db.tree.Session()}
}

// SetCacheSize installs a shared buffer pool of n disk pages in front of
// the simulated disk (n <= 0 removes it; the default is none, matching
// the paper's uncached prototype — §5.4). Cached reads charge no seek or
// transfer: the cost model bills only pool misses, so a hot working set
// serves many sessions at memory speed. On a sharded database the
// budget is split evenly across the shard stores' private pools.
func (db *DB) SetCacheSize(n int) {
	if r := db.currentRouter(); r != nil {
		per := n / r.Shards()
		if n > 0 && per < 1 {
			per = 1
		}
		r.SetCacheSize(per)
		return
	}
	db.disk.SetCacheSize(n)
}

// PoolStats reports the shared buffer pool's accounting (zeros when no
// pool is installed).
type PoolStats struct {
	// Hits and Misses split by I/O class: light (index: node records,
	// V-pages) and heavy (model payload).
	LightHits, LightMisses int64
	HeavyHits, HeavyMisses int64
	Evictions              int64
	// Pages is the current resident page count; Capacity the configured
	// limit.
	Pages, Capacity int
}

// ShardStatsOf returns this session's own I/O against shard i (zero on
// an unsharded session or a shard the session never touched).
func (s *Session) ShardStatsOf(i int) DiskStats {
	if s.sh == nil {
		return DiskStats{}
	}
	return diskStatsFrom(s.sh.ShardStatsOf(i))
}

// poolStatsFrom mirrors a storage pool snapshot into the public type.
func poolStatsFrom(s storage.PoolStats) PoolStats {
	return PoolStats{
		LightHits: s.LightHits, LightMisses: s.LightMisses,
		HeavyHits: s.HeavyHits, HeavyMisses: s.HeavyMisses,
		Evictions: s.Evictions,
		Pages:     s.Pages, Capacity: s.Capacity,
	}
}

// PoolStats returns the current buffer-pool counters. On a sharded
// database the counters sum over every shard store's private pool
// (ShardDiskStats gives the per-shard breakdown) — no store's traffic
// is silently dropped.
func (db *DB) PoolStats() PoolStats {
	r := db.currentRouter()
	if r == nil {
		return poolStatsFrom(db.disk.PoolStats())
	}
	var out PoolStats
	for _, ps := range r.ShardPoolStats() {
		out.LightHits += ps.LightHits
		out.LightMisses += ps.LightMisses
		out.HeavyHits += ps.HeavyHits
		out.HeavyMisses += ps.HeavyMisses
		out.Evictions += ps.Evictions
		out.Pages += ps.Pages
		out.Capacity += ps.Capacity
	}
	return out
}

// SetParallel bounds the per-query traversal fan-out: each query descends
// up to n child subtrees concurrently (n <= 1 restores the strictly
// serial Figure 3 traversal; the answer set is identical either way).
// Affects DB queries and sessions created afterwards, on every shard
// store when sharding is enabled.
func (db *DB) SetParallel(n int) {
	db.tree.SetParallel(n)
	if r := db.currentRouter(); r != nil {
		r.SetParallel(n)
	}
}

// ServeStats summarizes a concurrent multi-client walkthrough run.
type ServeStats struct {
	// Clients is how many walkers played; Errors how many aborted.
	Clients, Errors int
	// Queries is the total database queries served; Elapsed the wall-clock
	// span; Throughput the ratio in queries per second.
	Queries    int
	Elapsed    time.Duration
	Throughput float64
	// Degradations totals absorbed media faults across clients.
	Degradations int
	// Rejected totals admission rejections and BudgetMisses frames that
	// blew their FrameBudget, summed across clients; both are deliberate
	// shedding outcomes, not errors. Shed counts the load shedder's level
	// transitions over the run (0 when no shedder was configured).
	Rejected     int
	BudgetMisses int
	Shed         int64
	// PerClient is each client's playback summary (nil entries for aborted
	// clients) and own retry count.
	PerClient []ClientStats
}

// ClientStats is one client's share of a serving run.
type ClientStats struct {
	Queries      int
	Frames       int
	AvgFrameMS   float64
	Degradations int
	// Rejected and BudgetMisses are this client's shed frames (admission
	// rejections and frame-budget expiries respectively).
	Rejected     int
	BudgetMisses int
	// Reads and Retries are this client's own disk traffic.
	Reads, Retries int64
	SimTime        time.Duration
	Err            string
}

// Serve plays n concurrent walkthrough clients against the database, each
// with its own recorded motion path (seeded from opts.Seed + client
// index), and returns the aggregate and per-client accounting. It is the
// multi-client form of Walkthrough; opts.UseREVIEW is not supported here.
func (db *DB) Serve(opts WalkOptions, n int) (*ServeStats, error) {
	return db.ServeContext(context.Background(), opts, n)
}

// ServeContext is Serve bounded by ctx and is the overload-resilient
// serve path: opts.Admission gates cell-entry queries through a bounded
// admission controller, opts.Shed installs fidelity-aware load shedding,
// and opts.FrameBudget bounds each client frame. Cancellation aborts all
// clients; shed and rejected work is counted in the returned stats, not
// reported as errors.
func (db *DB) ServeContext(ctx context.Context, opts WalkOptions, n int) (*ServeStats, error) {
	if n < 1 {
		n = 1
	}
	if opts.UseREVIEW {
		return nil, fmt.Errorf("hdov: Serve supports only the VISUAL system")
	}
	if opts.Frames <= 0 {
		opts.Frames = 600
	}
	sessions := make([]walkthrough.Session, n)
	for i := range sessions {
		seed := opts.Seed + int64(i)
		switch opts.Session {
		case SessionTurning:
			sessions[i] = walkthrough.RecordTurning(db.scene, opts.Frames, seed+1)
		case SessionBackForward:
			sessions[i] = walkthrough.RecordBackForward(db.scene, opts.Frames, seed+2)
		default:
			sessions[i] = walkthrough.RecordNormal(db.scene, opts.Frames, seed)
		}
	}
	m := &walkthrough.SessionManager{
		Base:        db.tree,
		Eta:         opts.Eta,
		Delta:       opts.Delta,
		Prefetch:    opts.Prefetch,
		CacheBudget: opts.CacheBudget,
		Render:      render.DefaultConfig(),
		FrameBudget: opts.FrameBudget,
	}
	if r := db.currentRouter(); r != nil {
		// Sharded serving: each client gets its own routed shard session,
		// so its frames hit the owning shard's private store and its
		// accounting sums across the shards it walked through. Shed
		// policies fan out to every shard store.
		m.Routes = func() (func(cells.CellID) *core.Tree, func() storage.Stats) {
			sess := r.Session()
			return sess.RouteTree, sess.Stats
		}
		m.ShedBases = r.Bases()
	}
	if opts.Admission != nil {
		m.Admission = overload.New(overload.Config{
			MaxConcurrent: opts.Admission.MaxConcurrent,
			MaxQueue:      opts.Admission.MaxQueue,
			MaxPerClient:  opts.Admission.MaxPerClient,
		})
	}
	if opts.Shed != nil {
		m.Shedder = overload.NewShedder(overload.ShedConfig{
			Target: opts.Shed.Target,
			Upper:  opts.Shed.Upper,
			Lower:  opts.Shed.Lower,
		})
	}
	run := m.PlayContext(ctx, sessions)
	out := &ServeStats{
		Clients:      n,
		Errors:       run.Errs,
		Queries:      run.Queries,
		Elapsed:      run.Elapsed,
		Rejected:     run.Rejected,
		BudgetMisses: run.BudgetMisses,
		Shed:         run.Shed,
		PerClient:    make([]ClientStats, n),
	}
	out.Throughput = run.Throughput()
	for i, p := range run.Players {
		cs := ClientStats{Reads: p.IO.Reads, Retries: p.IO.Retries, SimTime: p.IO.SimTime}
		if p.Err != nil {
			cs.Err = p.Err.Error()
		} else {
			cs.Queries = p.Result.Queries
			cs.Frames = len(p.Result.Frames)
			cs.AvgFrameMS = p.Result.AvgFrameTime()
			cs.Degradations = p.Result.Degradations
			cs.Rejected = p.Result.Rejected
			cs.BudgetMisses = p.Result.BudgetMisses
			out.Degradations += p.Result.Degradations
		}
		out.PerClient[i] = cs
	}
	return out, nil
}

// fetchOn is Fetch against an explicit tree session.
func fetchOn(t *core.Tree, r *Result) error {
	return fetchOnContext(context.Background(), t, r)
}

// fetchOnContext is fetchOn bounded by ctx: items fetched before the
// deadline expired keep their accounting; the rest are abandoned.
func fetchOnContext(ctx context.Context, t *core.Tree, r *Result) error {
	before := t.IO.Stats()
	_, ferr := t.FetchPayloadsContext(ctx, r.inner, nil)
	if ferr != nil && ctx.Err() == nil {
		// Media fault: same contract as the unbounded path — the caller
		// gets the error and the Result stays untouched.
		return ferr
	}
	d := t.IO.Stats().Sub(before)
	r.HeavyIO += d.HeavyReads
	r.SimTime += d.SimTime
	r.Retries += d.Retries
	if ferr != nil {
		return ferr
	}
	// Payload faults absorbed during the fetch may have degraded items to
	// coarser levels and appended degradation records: re-mirror both.
	if len(r.inner.Degradations) > len(r.Degradations) {
		fresh := wrapResult(r.inner)
		r.Items = fresh.Items
		r.Degradations = fresh.Degradations
	}
	return nil
}

// diskStatsFrom mirrors a storage.Stats snapshot into the public type.
func diskStatsFrom(s storage.Stats) DiskStats {
	return DiskStats{
		Reads: s.Reads, Seeks: s.Seeks,
		LightReads: s.LightReads, HeavyReads: s.HeavyReads,
		Retries:        s.Retries,
		SimTime:        s.SimTime,
		MeasuredTime:   s.MeasuredTime,
		PoolHits:       s.PoolLightHits + s.PoolHeavyHits,
		PoolMisses:     s.PoolLightMisses + s.PoolHeavyMisses,
		PrefetchHits:   s.PrefetchHits,
		PrefetchWasted: s.PrefetchWasted,
		VDCacheHits:    s.VDCacheHits,
		CoalescedReads: s.CoalescedReads,
	}
}
