package hdov

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cells"
	"repro/internal/overload"
	"repro/internal/storage"
)

// Deadlines, cancellation, and overload control — the public surface of
// DESIGN.md §14. Every query entry point has a Context-taking form;
// the plain forms run unbounded and behave exactly as before. Overload
// machinery (admission, shedding, the circuit breaker) is opt-in per
// call or per DB and reports every shed or rejected request explicitly.

// ErrOverloaded is returned (wrapped) when admission control rejects a
// request: the serving stack is saturated and the wait queue is full, or
// the client exceeded its fair share. Callers should back off and retry;
// the rejection is deliberate and immediate, never a timeout.
var ErrOverloaded = overload.ErrOverloaded

// AdmissionConfig bounds concurrent queries in the serve path (see
// WalkOptions.Admission). Zero values pick safe defaults (MaxConcurrent
// floored at 1; MaxQueue 0 means reject rather than wait).
type AdmissionConfig struct {
	// MaxConcurrent is how many queries may run at once.
	MaxConcurrent int
	// MaxQueue bounds the admission wait queue; arrivals beyond it are
	// rejected with ErrOverloaded.
	MaxQueue int
	// MaxPerClient caps one client's running + waiting share (0 = none).
	MaxPerClient int
}

// ShedConfig enables fidelity-aware load shedding in the serve path (see
// WalkOptions.Shed): when the per-query simulated-time EMA exceeds
// Target, queries are answered at a relaxed DoV threshold or truncated
// at internal-LoD ancestors — trading fidelity for bounded latency, with
// every shed query counted in Degradations (never silent).
type ShedConfig struct {
	// Target is the per-query simulated-time budget to defend.
	Target time.Duration
	// Upper and Lower bound the hysteresis band as fractions of Target
	// (defaults 1.0 and 0.7): shedding escalates above Target·Upper and
	// relaxes below Target·Lower.
	Upper, Lower float64
}

// BreakerConfig configures the per-region circuit breaker (SetBreaker):
// a disk region that keeps failing permanently trips open and fails
// fast — degradable, like a quarantined page — instead of paying the
// full seek + retry ladder on every fresh page of the damaged region.
type BreakerConfig struct {
	// RegionPages is the tracking granularity (default 64 pages).
	RegionPages int
	// Threshold is how many consecutive permanent faults trip a region
	// (default 3).
	Threshold int
	// Cooldown is how many fail-fast rejections an open region absorbs
	// before letting a half-open probe read through (default 32).
	Cooldown int
}

// SetBreaker installs the circuit breaker on the database's disk; the
// zero config removes it.
func (db *DB) SetBreaker(cfg BreakerConfig) {
	db.disk.SetBreaker(storage.BreakerConfig{
		RegionPages: cfg.RegionPages,
		Threshold:   cfg.Threshold,
		Cooldown:    cfg.Cooldown,
	})
}

// BreakerStats reports circuit-breaker activity.
type BreakerStats struct {
	// Trips counts regions tripped open; Rejections reads failed fast by
	// an open region; Probes half-open probe reads; OpenRegions the
	// regions currently open.
	Trips, Rejections, Probes int64
	OpenRegions               int
}

// BreakerStats returns the current breaker accounting (zeros when no
// breaker is installed).
func (db *DB) BreakerStats() BreakerStats {
	s := db.disk.BreakerStats()
	return BreakerStats{
		Trips: s.Trips, Rejections: s.Rejections, Probes: s.Probes,
		OpenRegions: s.OpenRegions,
	}
}

// QueryContext is Query bounded by ctx: the traversal observes
// cancellation or deadline expiry within one node expansion, and reads
// that would start after the deadline fail fast without paying seek,
// transfer, or retry cost. The error wraps context.Canceled or
// context.DeadlineExceeded. With a background context the answer is
// byte-identical to Query's.
func (db *DB) QueryContext(ctx context.Context, p Point, eta float64) (*Result, error) {
	cell := db.tree.Grid.Locate(p.vec())
	if cell == cells.NoCell {
		return nil, ErrOutsideCells
	}
	return db.QueryCellContext(ctx, int(cell), eta)
}

// QueryCellContext is QueryContext for an explicit cell index.
func (db *DB) QueryCellContext(ctx context.Context, cell int, eta float64) (*Result, error) {
	if cell < 0 || cell >= db.NumCells() {
		return nil, fmt.Errorf("hdov: cell %d out of range [0,%d)", cell, db.NumCells())
	}
	r, err := db.tree.QueryContext(ctx, cells.CellID(cell), eta)
	if err != nil {
		return nil, err
	}
	return wrapResult(r), nil
}

// FetchContext is Fetch bounded by ctx; an expired deadline aborts the
// remaining payload reads (items already fetched keep their accounting).
func (db *DB) FetchContext(ctx context.Context, r *Result) error {
	return fetchOnContext(ctx, db.tree, r)
}

// QueryContext is Session.Query bounded by ctx; see DB.QueryContext.
func (s *Session) QueryContext(ctx context.Context, p Point, eta float64) (*Result, error) {
	cell := s.tree.Grid.Locate(p.vec())
	if cell == cells.NoCell {
		return nil, ErrOutsideCells
	}
	return s.QueryCellContext(ctx, int(cell), eta)
}

// QueryCellContext is Session.QueryCell bounded by ctx.
func (s *Session) QueryCellContext(ctx context.Context, cell int, eta float64) (*Result, error) {
	if cell < 0 || cell >= s.tree.Grid.NumCells() {
		return nil, fmt.Errorf("hdov: cell %d out of range [0,%d)", cell, s.tree.Grid.NumCells())
	}
	r, err := s.tree.QueryContext(ctx, cells.CellID(cell), eta)
	if err != nil {
		return nil, err
	}
	return wrapResult(r), nil
}

// QueryCoherentContext is Session.QueryCoherent bounded by ctx. A
// canceled warm-path query aborts outright — it does not fall back to a
// second, full traversal the caller no longer wants.
func (s *Session) QueryCoherentContext(ctx context.Context, p Point, eta float64) (*Result, error) {
	cell := s.tree.Grid.Locate(p.vec())
	if cell == cells.NoCell {
		return nil, ErrOutsideCells
	}
	return s.QueryCellCoherentContext(ctx, int(cell), eta)
}

// QueryCellCoherentContext is Session.QueryCellCoherent bounded by ctx.
func (s *Session) QueryCellCoherentContext(ctx context.Context, cell int, eta float64) (*Result, error) {
	if cell < 0 || cell >= s.tree.Grid.NumCells() {
		return nil, fmt.Errorf("hdov: cell %d out of range [0,%d)", cell, s.tree.Grid.NumCells())
	}
	r, err := s.tree.QueryCoherentContext(ctx, cells.CellID(cell), eta)
	if err != nil {
		return nil, err
	}
	return wrapResult(r), nil
}

// FetchContext is Session.Fetch bounded by ctx.
func (s *Session) FetchContext(ctx context.Context, r *Result) error {
	return fetchOnContext(ctx, s.tree, r)
}
