// Command hdovfsck checks saved HDoV database directories: it verifies the
// manifest's self-checksum, the disk image's committed size and CRC, every
// layout pointer, and — for codec-layout databases — every codec unit's
// header and CRC, and reports intact vs damaged. With -repair, damaged
// artifacts and stray temporaries from interrupted saves are moved into a
// quarantine/ subdirectory, and codec-invalid pages are parked in
// quarantine.json so reopened databases fail their reads fast instead of
// decoding garbage — the next save starts clean without destroying
// evidence. For every readable manifest a dynamicscene line reports the
// committed epoch counter, op-log length and delta-chain depth, so an
// interrupted CommitEpoch is visible at a glance (strays with epoch=0
// deltas=0 mean the commit never landed).
//
// A directory containing shardmap.json is a sharded save (SaveSharded):
// the shard map is validated as an exact partition of the viewing-cell
// grid, and every shard's own database directory is checked with the
// same manifest/image/layout/codec battery — one damaged shard marks the
// whole topology damaged.
//
// Usage:
//
//	hdovfsck DIR...
//	hdovfsck -repair DIR
//	hdovfsck -deep DIR
//
// Exit status: 0 if every directory is intact, 1 if any is damaged, 2 on
// usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/cells"
	"repro/internal/dbfile"
	"repro/internal/shard"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hdovfsck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		repair = fs.Bool("repair", false, "move damaged files and stray temporaries into quarantine/")
		deep   = fs.Bool("deep", false, "additionally reopen intact databases end to end (slower)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: hdovfsck [-repair] [-deep] DIR...")
		return 2
	}

	exit := 0
	for _, dir := range fs.Args() {
		if sub, ok := shardDirs(dir, stdout, stderr, &exit); ok {
			for _, sd := range sub {
				checkOne(sd, *repair, *deep, stdout, stderr, &exit)
			}
			continue
		}
		checkOne(dir, *repair, *deep, stdout, stderr, &exit)
	}
	return exit
}

// shardDirs detects a sharded save: when dir/shardmap.json exists it
// validates the persisted map as an exact grid partition and returns the
// shard database directories to check. The bool reports detection, not
// validity — a sharded dir with a broken map returns (nil, true) and
// marks the run damaged.
func shardDirs(dir string, stdout, stderr io.Writer, exit *int) ([]string, bool) {
	raw, err := os.ReadFile(filepath.Join(dir, "shardmap.json"))
	if os.IsNotExist(err) {
		return nil, false
	}
	if err != nil {
		fmt.Fprintf(stderr, "hdovfsck: %s: %v\n", dir, err)
		*exit = 2
		return nil, true
	}
	var man struct {
		NumCells int      `json:"num_cells"`
		Starts   []int    `json:"starts"`
		Dirs     []string `json:"dirs"`
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		fmt.Fprintf(stdout, "%s: DAMAGED (shardmap.json: %v)\n", dir, err)
		if *exit == 0 {
			*exit = 1
		}
		return nil, true
	}
	m := shard.Map{NumCells: man.NumCells}
	for _, s := range man.Starts {
		m.Starts = append(m.Starts, cells.CellID(s))
	}
	if err := m.Validate(); err != nil {
		fmt.Fprintf(stdout, "%s: DAMAGED (shard map: %v)\n", dir, err)
		if *exit == 0 {
			*exit = 1
		}
		return nil, true
	}
	if len(man.Dirs) != m.Shards() {
		fmt.Fprintf(stdout, "%s: DAMAGED (shard map: %d shards but %d directories)\n",
			dir, m.Shards(), len(man.Dirs))
		if *exit == 0 {
			*exit = 1
		}
		return nil, true
	}
	fmt.Fprintf(stdout, "%s: sharded, %d shards over %d cells, map partitions exactly\n",
		dir, m.Shards(), m.NumCells)
	out := make([]string, len(man.Dirs))
	for i, sub := range man.Dirs {
		out[i] = filepath.Join(dir, sub)
	}
	return out, true
}

// checkOne runs the standard single-database battery on dir, raising
// *exit for damage (1) or I/O trouble (2).
func checkOne(dir string, repair, deep bool, stdout, stderr io.Writer, exit *int) {
	rep, err := dbfile.Fsck(dir)
	if err != nil {
		fmt.Fprintf(stderr, "hdovfsck: %s: %v\n", dir, err)
		*exit = 2
		return
	}
	status := "intact"
	if !rep.Intact() {
		status = "DAMAGED"
		if *exit == 0 {
			*exit = 1
		}
	}
	fmt.Fprintf(stdout, "%s: %s (manifest=%v image=%v layout=%v codec=%v)\n",
		dir, status, rep.ManifestOK, rep.ImageOK, rep.LayoutOK, rep.CodecOK)
	if rep.ManifestOK {
		fmt.Fprintf(stdout, "  dynamicscene: epoch=%d ops=%d deltas=%d\n",
			rep.Epoch, rep.OpsLogged, rep.DeltasApplied)
	}
	for _, p := range rep.Problems {
		fmt.Fprintf(stdout, "  problem: %s\n", p)
	}
	for _, id := range rep.BadCodecPages {
		fmt.Fprintf(stdout, "  bad codec page: %d\n", id)
	}
	for _, s := range rep.Stray {
		fmt.Fprintf(stdout, "  stray: %s\n", s)
	}

	if deep && rep.Intact() {
		if _, err := dbfile.Open(dir); err != nil {
			fmt.Fprintf(stdout, "  deep: open failed: %v\n", err)
			if *exit == 0 {
				*exit = 1
			}
		} else {
			fmt.Fprintf(stdout, "  deep: open ok\n")
		}
	}

	if repair && (!rep.Intact() || len(rep.Stray) > 0) {
		moved, err := dbfile.Repair(dir, rep)
		if err != nil {
			fmt.Fprintf(stderr, "hdovfsck: %s: %v\n", dir, err)
			*exit = 2
			return
		}
		for _, name := range moved {
			fmt.Fprintf(stdout, "  quarantined: %s\n", name)
		}
	}
}
