// Command hdovfsck checks saved HDoV database directories: it verifies the
// manifest's self-checksum, the disk image's committed size and CRC, every
// layout pointer, and — for codec-layout databases — every codec unit's
// header and CRC, and reports intact vs damaged. With -repair, damaged
// artifacts and stray temporaries from interrupted saves are moved into a
// quarantine/ subdirectory, and codec-invalid pages are parked in
// quarantine.json so reopened databases fail their reads fast instead of
// decoding garbage — the next save starts clean without destroying
// evidence. For every readable manifest a dynamicscene line reports the
// committed epoch counter, op-log length and delta-chain depth, so an
// interrupted CommitEpoch is visible at a glance (strays with epoch=0
// deltas=0 mean the commit never landed).
//
// Usage:
//
//	hdovfsck DIR...
//	hdovfsck -repair DIR
//	hdovfsck -deep DIR
//
// Exit status: 0 if every directory is intact, 1 if any is damaged, 2 on
// usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dbfile"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hdovfsck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		repair = fs.Bool("repair", false, "move damaged files and stray temporaries into quarantine/")
		deep   = fs.Bool("deep", false, "additionally reopen intact databases end to end (slower)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: hdovfsck [-repair] [-deep] DIR...")
		return 2
	}

	exit := 0
	for _, dir := range fs.Args() {
		rep, err := dbfile.Fsck(dir)
		if err != nil {
			fmt.Fprintf(stderr, "hdovfsck: %s: %v\n", dir, err)
			exit = 2
			continue
		}
		status := "intact"
		if !rep.Intact() {
			status = "DAMAGED"
			if exit == 0 {
				exit = 1
			}
		}
		fmt.Fprintf(stdout, "%s: %s (manifest=%v image=%v layout=%v codec=%v)\n",
			dir, status, rep.ManifestOK, rep.ImageOK, rep.LayoutOK, rep.CodecOK)
		if rep.ManifestOK {
			fmt.Fprintf(stdout, "  dynamicscene: epoch=%d ops=%d deltas=%d\n",
				rep.Epoch, rep.OpsLogged, rep.DeltasApplied)
		}
		for _, p := range rep.Problems {
			fmt.Fprintf(stdout, "  problem: %s\n", p)
		}
		for _, id := range rep.BadCodecPages {
			fmt.Fprintf(stdout, "  bad codec page: %d\n", id)
		}
		for _, s := range rep.Stray {
			fmt.Fprintf(stdout, "  stray: %s\n", s)
		}

		if *deep && rep.Intact() {
			if _, err := dbfile.Open(dir); err != nil {
				fmt.Fprintf(stdout, "  deep: open failed: %v\n", err)
				if exit == 0 {
					exit = 1
				}
			} else {
				fmt.Fprintf(stdout, "  deep: open ok\n")
			}
		}

		if *repair && (!rep.Intact() || len(rep.Stray) > 0) {
			moved, err := dbfile.Repair(dir, rep)
			if err != nil {
				fmt.Fprintf(stderr, "hdovfsck: %s: %v\n", dir, err)
				exit = 2
				continue
			}
			for _, name := range moved {
				fmt.Fprintf(stdout, "  quarantined: %s\n", name)
			}
		}
	}
	return exit
}
