package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	hdov "repro"
)

// update regenerates golden files: go test ./cmd/hdovfsck -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

var (
	dbOnce sync.Once
	dbDir  string
	dbErr  error
)

// savedDB builds one tiny database and saves it once; tests copy it into
// their own scratch directories to damage at will.
func savedDB(t *testing.T) string {
	t.Helper()
	dbOnce.Do(func() {
		cfg := hdov.DefaultConfig()
		cfg.Scene.Blocks = 2
		cfg.GridCells = 4
		cfg.DoVRays = 256
		cfg.Scene.NominalBytes = 8 << 20
		db, err := hdov.Build(cfg)
		if err != nil {
			dbErr = err
			return
		}
		dir, err := os.MkdirTemp("", "hdovfsck-golden-*")
		if err != nil {
			dbErr = err
			return
		}
		dbDir = filepath.Join(dir, "db")
		dbErr = db.Save(dbDir)
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return dbDir
}

func copyDB(t *testing.T, name string) string {
	t.Helper()
	src := savedDB(t)
	dst := filepath.Join(t.TempDir(), name)
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

var (
	hexRe   = regexp.MustCompile(`[0-9a-f]{8}`)
	sizeRe  = regexp.MustCompile(`\d+ bytes, manifest committed \d+`)
	crcRe   = regexp.MustCompile(`CRC [0-9A-Fa-f]+, manifest committed [0-9A-Fa-f]+`)
	errPath = regexp.MustCompile(`open [^:\n]+:`)
)

// normalize strips run-dependent detail — scratch paths, byte counts,
// checksums — so the remaining structure golden-compares exactly.
func normalize(out string, dirs map[string]string) string {
	for path, name := range dirs {
		out = strings.ReplaceAll(out, path, name)
	}
	out = crcRe.ReplaceAllString(out, "CRC XXXXXXXX, manifest committed YYYYYYYY")
	out = sizeRe.ReplaceAllString(out, "N bytes, manifest committed M")
	out = errPath.ReplaceAllString(out, "open FILE:")
	out = hexRe.ReplaceAllString(out, "XXXXXXXX")
	return out
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestFsckGolden(t *testing.T) {
	good := copyDB(t, "good")

	missing := copyDB(t, "bad-missing")
	if err := os.Remove(filepath.Join(missing, "disk.img")); err != nil {
		t.Fatal(err)
	}

	corrupt := copyDB(t, "bad-crc")
	img := filepath.Join(corrupt, "disk.img")
	raw, err := os.ReadFile(img)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(img, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	stray := copyDB(t, "stray")
	if err := os.WriteFile(filepath.Join(stray, "disk.img.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A dynamic directory: two committed update epochs on top of the base
	// image, so the dynamicscene line reports a live op log and delta
	// chain.
	dyn := copyDB(t, "dyn")
	dynDB, err := hdov.Open(dyn)
	if err != nil {
		t.Fatal(err)
	}
	for i, pos := range [][2]float64{{30, 30}, {95, 60}} {
		if _, err := dynDB.Insert(hdov.InsertSpec{Seed: int64(i + 1), X: pos[0], Y: pos[1], Radius: 1.5}); err != nil {
			t.Fatal(err)
		}
		if _, err := dynDB.CommitEpoch(dyn); err != nil {
			t.Fatal(err)
		}
	}

	dirs := map[string]string{
		good: "GOOD", missing: "BAD-MISSING", corrupt: "BAD-CRC", stray: "STRAY", dyn: "DYN",
	}

	var out, errB bytes.Buffer
	code := run([]string{"-deep", good, missing, corrupt, stray, dyn}, &out, &errB)
	if code != 1 {
		t.Fatalf("code = %d, want 1 (stderr=%q)", code, errB.String())
	}
	if errB.Len() != 0 {
		t.Fatalf("stderr: %q", errB.String())
	}
	checkGolden(t, "fsck.golden", normalize(out.String(), dirs))
}

// TestFsckSharded round-trips SaveSharded through the checker: an intact
// topology passes with every shard verified, a broken map and a damaged
// shard image are both flagged.
func TestFsckSharded(t *testing.T) {
	cfg := hdov.DefaultConfig()
	cfg.Scene.Blocks = 2
	cfg.GridCells = 4
	cfg.DoVRays = 256
	cfg.Scene.NominalBytes = 8 << 20
	db, err := hdov.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnableSharding(hdov.ShardConfig{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "sharded")
	if err := db.SaveSharded(dir); err != nil {
		t.Fatal(err)
	}

	var out, errB bytes.Buffer
	if code := run([]string{"-deep", dir}, &out, &errB); code != 0 {
		t.Fatalf("intact sharded dir: code = %d\nstdout: %s\nstderr: %s", code, out.String(), errB.String())
	}
	if !strings.Contains(out.String(), "sharded, 2 shards") {
		t.Fatalf("missing shard map line:\n%s", out.String())
	}
	if got := strings.Count(out.String(), "deep: open ok"); got != 2 {
		t.Fatalf("deep-opened %d shards, want 2:\n%s", got, out.String())
	}

	// Damage one shard's image: the topology must report damaged.
	img := filepath.Join(dir, "shard-001", "disk.img")
	raw, err := os.ReadFile(img)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(img, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errB.Reset()
	if code := run([]string{dir}, &out, &errB); code != 1 {
		t.Fatalf("damaged shard: code = %d\n%s", code, out.String())
	}

	// Break the map itself: overlapping starts fail validation.
	if err := os.WriteFile(filepath.Join(dir, "shardmap.json"),
		[]byte(`{"num_cells":16,"starts":[0,0],"dirs":["shard-000","shard-001"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errB.Reset()
	if code := run([]string{dir}, &out, &errB); code != 1 {
		t.Fatalf("broken map: code = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "shard map") {
		t.Fatalf("broken map not reported:\n%s", out.String())
	}
}

func TestFsckRepairGolden(t *testing.T) {
	corrupt := copyDB(t, "bad-crc")
	img := filepath.Join(corrupt, "disk.img")
	raw, err := os.ReadFile(img)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(img, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(corrupt, "manifest.json.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	dirs := map[string]string{corrupt: "BAD-CRC"}
	var out, errB bytes.Buffer
	code := run([]string{"-repair", corrupt}, &out, &errB)
	if code != 1 {
		t.Fatalf("code = %d, want 1 (stderr=%q)", code, errB.String())
	}
	checkGolden(t, "fsck-repair.golden", normalize(out.String(), dirs))

	// The damaged image and the stray temp file must now be quarantined.
	for _, name := range []string{"disk.img", "manifest.json.tmp"} {
		if _, err := os.Stat(filepath.Join(corrupt, "quarantine", name)); err != nil {
			t.Fatalf("%s not quarantined: %v", name, err)
		}
	}
}

func TestFsckUsage(t *testing.T) {
	var out, errB bytes.Buffer
	if code := run(nil, &out, &errB); code != 2 {
		t.Fatalf("code = %d, want 2", code)
	}
	if !strings.Contains(errB.String(), "usage: hdovfsck") {
		t.Fatalf("stderr: %q", errB.String())
	}
}
