// Command hdovgen generates a synthetic-city HDoV database and reports its
// structure: object/node counts, visibility statistics, per-scheme storage
// footprints. With -obj it also exports the city's finest-LoD geometry as
// a Wavefront OBJ file for inspection in any 3D viewer.
//
// Usage:
//
//	hdovgen -blocks 4 -grid 12
//	hdovgen -blocks 2 -obj city.obj
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/dbfile"
	"repro/internal/mesh"
	"repro/internal/naive"
	"repro/internal/scene"
	"repro/internal/storage"
	"repro/internal/vstore"
)

func main() {
	var (
		blocks  = flag.Int("blocks", 4, "city size in blocks per side")
		grid    = flag.Int("grid", 12, "viewing-cell grid per side")
		dirs    = flag.Int("dirs", 1024, "DoV rays per sample viewpoint")
		nominal = flag.Int64("nominal", 100<<20, "nominal raw dataset bytes")
		seed    = flag.Int64("seed", 1, "generation seed")
		objPath = flag.String("obj", "", "export finest-LoD city geometry as OBJ to this path")
		saveDir = flag.String("save", "", "persist the built database to this directory")
	)
	flag.Parse()

	cp := scene.DefaultCityParams()
	cp.Seed = *seed
	cp.BlocksX, cp.BlocksY = *blocks, *blocks
	cp.NominalBytes = *nominal
	sc := scene.Generate(cp)
	fmt.Printf("city: %d objects, %d triangles (finest LoDs), nominal %d MB\n",
		len(sc.Objects), sc.TotalTriangles(), sc.NominalRawBytes()>>20)

	if *objPath != "" {
		if err := exportOBJ(sc, *objPath); err != nil {
			fmt.Fprintf(os.Stderr, "hdovgen: obj export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *objPath)
	}

	d := storage.NewDisk(0, storage.DefaultCostModel())
	bp := core.DefaultBuildParams()
	bp.Grid = cells.NewGrid(sc.ViewRegion, *grid, *grid)
	bp.DirsPerViewpoint = *dirs
	tr, vis, err := core.Build(sc, d, bp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdovgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("hdov-tree: %d nodes, height %d, fanout %d/%d, s=%.3f rho=%.3f\n",
		tr.NumNodes(), tr.Root().SubtreeHeight+1,
		tr.Params.FanoutMin, tr.Params.FanoutMax, tr.SMeasured, tr.RhoMeasured)
	fmt.Printf("cells: %d, avg visible nodes per cell %.1f\n",
		tr.Grid.NumCells(), vis.AvgVisibleNodes())

	h, err := vstore.BuildHorizontal(d, vis, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdovgen:", err)
		os.Exit(1)
	}
	v, err := vstore.BuildVertical(d, vis, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdovgen:", err)
		os.Exit(1)
	}
	iv, err := vstore.BuildIndexedVertical(d, vis, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdovgen:", err)
		os.Exit(1)
	}
	fmt.Printf("storage: horizontal %.1f MB, vertical %.1f MB, indexed-vertical %.1f MB\n",
		float64(h.SizeBytes())/(1<<20), float64(v.SizeBytes())/(1<<20), float64(iv.SizeBytes())/(1<<20))
	fmt.Printf("disk: %d pages allocated (%.1f MB nominal, %.1f MB resident)\n",
		d.NumPages(), float64(d.SizeBytes())/(1<<20), float64(d.ResidentBytes())/(1<<20))

	if *saveDir != "" {
		nv, err := naive.Build(tr, vis, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hdovgen:", err)
			os.Exit(1)
		}
		err = dbfile.Save(*saveDir, &dbfile.Database{
			Scene: sc, Disk: d, Tree: tr,
			Horizontal: h, Vertical: v, Indexed: iv, Naive: nv,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hdovgen:", err)
			os.Exit(1)
		}
		fmt.Printf("saved database to %s\n", *saveDir)
	}
}

// exportOBJ writes the finest LoD of every object as one OBJ group each.
func exportOBJ(sc *scene.Scene, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	groups := make([]mesh.OBJGroup, len(sc.Objects))
	for i, o := range sc.Objects {
		groups[i] = mesh.OBJGroup{
			Name: fmt.Sprintf("%s_%d", o.Kind, o.ID),
			Mesh: o.LoDs.Finest(),
		}
	}
	comment := fmt.Sprintf("HDoV-tree reproduction: synthetic city (%d objects)", len(sc.Objects))
	if err := mesh.ExportOBJ(f, comment, groups); err != nil {
		return err
	}
	return f.Close()
}
