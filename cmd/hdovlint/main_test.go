package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite the golden output files")

// fixtureRoot reuses the analyzer's fixture module as an end-to-end
// target: a mini-repository whose packages violate every pass.
const fixtureRoot = "../../internal/analysis/testdata/src/fixture"

// fixtureAPIGolden writes an in-sync API snapshot for the fixture
// module, so apisnapshot stays quiet and the golden output captures only
// the deliberate fixture violations.
func fixtureAPIGolden(t *testing.T) string {
	t.Helper()
	l, err := analysis.NewLoader(fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("fixture")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "api.golden")
	if err := analysis.WriteAPIGolden(pkg.Types, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func checkGolden(t *testing.T, goldenPath string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read %s (run `go test -update ./cmd/hdovlint` to create): %v", goldenPath, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestRunGoldenText runs the whole fixture module and compares the
// human-readable report byte-for-byte against the committed golden.
func TestRunGoldenText(t *testing.T) {
	api := fixtureAPIGolden(t)
	var out, errb bytes.Buffer
	code := run([]string{"-root", fixtureRoot, "-api-golden", api, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings); stderr: %s", code, errb.String())
	}
	checkGolden(t, filepath.Join("testdata", "findings.golden"), out.Bytes())
}

// TestRunGoldenJSON runs the same analysis in -json mode.
func TestRunGoldenJSON(t *testing.T) {
	api := fixtureAPIGolden(t)
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-root", fixtureRoot, "-api-golden", api, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings); stderr: %s", code, errb.String())
	}
	var findings []analysis.Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("-json reported no findings over the violation fixtures")
	}
	checkGolden(t, filepath.Join("testdata", "findings_json.golden"), out.Bytes())
}

// TestRunClean analyzes only the fixture root package (which is clean)
// and expects a silent, successful exit in both output modes.
func TestRunClean(t *testing.T) {
	api := fixtureAPIGolden(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-root", fixtureRoot, "-api-golden", api, "fixture"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; out: %s stderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run produced output: %s", out.String())
	}

	out.Reset()
	if code := run([]string{"-json", "-root", fixtureRoot, "-api-golden", api, "fixture"}, &out, &errb); code != 0 {
		t.Fatalf("-json exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if got := out.String(); got != "[]\n" {
		t.Fatalf("clean -json output = %q, want %q", got, "[]\n")
	}
}

// TestRunBadFlag checks the usage-error exit path.
func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
