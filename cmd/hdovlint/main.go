// Command hdovlint runs the project-invariant static analysis suite over
// the repository (see internal/analysis and DESIGN.md §11):
//
//	go run ./cmd/hdovlint ./...
//
// Passes: pinrelease (buffer-pool pin/release contract), lockorder
// (Disk.mu before Disk.statsMu, no nested locks, no unknown calls under
// mu), determinism (no wall clock, randomness, or map-order dependence in
// the query/result path), errflow (no dropped serialization or storage
// write errors), ctxflow (no severed or dropped context.Context on the
// traversal path — deadlines set at the public API must reach the
// storage layer), snapfreeze (no store into hdov:frozen-after-publish
// types outside a construction window), atomicpub (stores to
// hdov:guarded-by fields happen under the named lock), hotalloc (no
// per-iteration allocation in loops of hdov:hot-path functions),
// apisnapshot (the root package's exported API matches the committed
// api.golden).
//
// Exit status is 0 when clean, 1 with findings, 2 on usage or load
// errors. Findings print as file:line:col: [pass] message; -json emits a
// machine-readable array instead. A finding is suppressed by a
// `//lint:ignore <pass> reason` comment on its line or the line above;
// a directive that names an unknown pass, lacks a reason, or suppresses
// nothing is itself reported. After a deliberate API change, regenerate
// the snapshot with -update-api.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hdovlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	updateAPI := fs.Bool("update-api", false, "regenerate api.golden from the current exported API and exit")
	root := fs.String("root", "", "repository root (default: nearest go.mod above the working directory)")
	golden := fs.String("api-golden", "", "path to the API snapshot (default: <root>/api.golden)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rootDir := *root
	if rootDir == "" {
		var err error
		rootDir, err = findRoot()
		if err != nil {
			fmt.Fprintf(stderr, "hdovlint: %v\n", err)
			return 2
		}
	}
	// Findings carry absolute positions; an absolute root makes the
	// relativization below work regardless of how -root was spelled.
	if abs, err := filepath.Abs(rootDir); err == nil {
		rootDir = abs
	}
	goldenPath := *golden
	if goldenPath == "" {
		goldenPath = filepath.Join(rootDir, "api.golden")
	}

	loader, err := analysis.NewLoader(rootDir)
	if err != nil {
		fmt.Fprintf(stderr, "hdovlint: %v\n", err)
		return 2
	}

	paths, err := resolvePatterns(loader, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "hdovlint: %v\n", err)
		return 2
	}

	if *updateAPI {
		pkg, err := loader.Load("repro")
		if err != nil {
			fmt.Fprintf(stderr, "hdovlint: %v\n", err)
			return 2
		}
		if err := analysis.WriteAPIGolden(pkg.Types, goldenPath); err != nil {
			fmt.Fprintf(stderr, "hdovlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "hdovlint: wrote %s\n", goldenPath)
		return 0
	}

	findings, err := analysis.Run(loader, analysis.Passes(goldenPath), paths)
	if err != nil {
		fmt.Fprintf(stderr, "hdovlint: %v\n", err)
		return 2
	}
	// Positions print relative to the root so output is stable across
	// checkouts (and the golden test).
	for i := range findings {
		if rel, err := filepath.Rel(rootDir, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = filepath.ToSlash(rel)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "hdovlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "hdovlint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// findRoot walks up from the working directory to the nearest go.mod.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// resolvePatterns maps command-line package patterns to import paths.
// Supported: "./..." (everything), none (everything), or explicit
// module-relative paths like ./internal/storage.
func resolvePatterns(l *analysis.Loader, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		return l.ModulePackages()
	}
	var out []string
	for _, p := range patterns {
		switch {
		case p == "./..." || p == "...":
			return l.ModulePackages()
		case strings.HasPrefix(p, "./"):
			rel := strings.TrimPrefix(p, "./")
			if rel == "" || rel == "." {
				out = append(out, "repro")
			} else {
				out = append(out, "repro/"+filepath.ToSlash(rel))
			}
		case p == ".":
			out = append(out, "repro")
		default:
			out = append(out, p)
		}
	}
	return out, nil
}
