package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/bench"
)

// update regenerates golden files: go test ./cmd/hdovbench -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errB bytes.Buffer
	code = run(args, &out, &errB)
	return code, out.String(), errB.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestListGolden(t *testing.T) {
	code, out, errOut := runCLI(t, "-list")
	if code != 0 || errOut != "" {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	checkGolden(t, "list.golden", out)
}

func TestUnknownExperimentGolden(t *testing.T) {
	code, out, errOut := runCLI(t, "-quick", "-exp", "fig99")
	if code != 2 {
		t.Fatalf("code = %d, want 2 (stdout=%q)", code, out)
	}
	checkGolden(t, "unknown-exp.golden", errOut)
}

// benchArgs shrinks the dataset so CLI integration tests build one tiny
// shared env (the bench package caches it per parameter set).
var benchArgs = []string{"-quick", "-blocks", "2", "-grid", "4"}

func TestServeMode(t *testing.T) {
	code, out, errOut := runCLI(t, append(benchArgs, "-clients", "2")...)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	ok := regexp.MustCompile(`^clients=2 queries=\d+ elapsed=\S+ throughput=\d+ q/s pool_hits=\d+ pool_misses=\d+\n$`)
	if !ok.MatchString(out) {
		t.Fatalf("serve output malformed: %q", out)
	}
}

func TestBaselineGuardRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")

	code, out, errOut := runCLI(t, append(benchArgs, "-writebaseline", path)...)
	if code != 0 {
		t.Fatalf("writebaseline: code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "baseline written") {
		t.Fatalf("writebaseline stdout: %q", out)
	}

	code, out, errOut = runCLI(t, append(benchArgs, "-guard", path)...)
	if code != 0 || !strings.Contains(out, "baseline guard passed") {
		t.Fatalf("self-guard: code=%d stdout=%q stderr=%q", code, out, errOut)
	}

	// Tamper: pretend the committed baseline was much faster — the fresh
	// run must now read as a >25% regression and fail the guard.
	b, err := bench.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range b.Schemes {
		m.SimMicrosPerQuery /= 2
		b.Schemes[name] = m
	}
	if err := bench.WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	code, _, errOut = runCLI(t, append(benchArgs, "-guard", path)...)
	if code != 1 || !strings.Contains(errOut, "regression") {
		t.Fatalf("tampered guard: code=%d stderr=%q", code, errOut)
	}

	// A baseline from a different workload must be refused, not compared.
	b.Workload = "other-workload"
	if err := bench.WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	code, _, errOut = runCLI(t, append(benchArgs, "-guard", path)...)
	if code != 1 || !strings.Contains(errOut, "workload mismatch") {
		t.Fatalf("mismatched guard: code=%d stderr=%q", code, errOut)
	}
}
