// Command hdovbench regenerates the tables and figures of the paper's
// evaluation section (§5). Each experiment is addressed by its paper
// label; -list shows them all.
//
// Usage:
//
//	hdovbench -list
//	hdovbench -exp table2
//	hdovbench -exp fig7,fig8a,fig8b
//	hdovbench -exp all -quick
//	hdovbench -quick -clients 8
//	hdovbench -quick -guard BENCH_baseline.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hdovbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expFlag  = fs.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		expAlias = fs.String("experiment", "", "alias for -exp")
		list     = fs.Bool("list", false, "list experiments and exit")
		quick    = fs.Bool("quick", false, "use the small smoke-test parameter set")
		queries  = fs.Int("queries", 0, "override the visibility-query count")
		frames   = fs.Int("frames", 0, "override the walkthrough frame count")
		blocks   = fs.Int("blocks", 0, "override the city size (blocks per side)")
		gridFlag = fs.Int("grid", 0, "override the viewing-cell grid (cells per side)")
		seed     = fs.Int64("seed", 0, "override the random seed")
		images   = fs.String("images", "", "directory for Figure 11 PGM renderings")
		clients  = fs.Int("clients", 0, "serve mode: run N concurrent query sessions and report aggregate throughput")
		cache    = fs.Int("cache", 1<<16, "serve mode: shared buffer pool size in pages")
		guard    = fs.String("guard", "", "compare fresh bench metrics against a committed baseline file; exit 1 on >25% regression")
		writeBas = fs.String("writebaseline", "", "measure and write the baseline file, then exit")
		writeWC  = fs.String("writewalkcoherence", "", "measure and write the walkcoherence reference file, then exit")
		writeVC  = fs.String("writevpagecodec", "", "measure and write the vpagecodec reference file, then exit")
		guardVC  = fs.String("guardvpagecodec", "", "compare fresh vpagecodec metrics against a committed reference file; exit 1 on >25% regression")
		writeOV  = fs.String("writeoverload", "", "measure and write the overload reference file, then exit")
		guardOV  = fs.String("guardoverload", "", "compare fresh overload metrics against a committed reference file; exit 1 on a broken resilience invariant or >50% latency regression")
		writeDU  = fs.String("writedynupdate", "", "measure and write the dynupdate reference file, then exit")
		guardDU  = fs.String("guarddynupdate", "", "compare fresh dynupdate metrics against a committed reference file; exit 1 on a broken locality gate or >25% drift")
		writeSS  = fs.String("writeshardscale", "", "measure and write the shardscale reference file, then exit")
		guardSS  = fs.String("guardshardscale", "", "compare fresh shardscale metrics against a committed reference file; exit 1 on divergent answers, a sub-3x 8-shard speedup, or >25% drift")
		writeHW  = fs.String("writehwcalib", "", "calibrate the file backend, measure, and write the hwcalib reference file, then exit")
		guardHW  = fs.String("guardhwcalib", "", "re-run the file-backend calibration and check the wall-clock gates against a committed reference file; exit 1 on a missed gate")
		benchfmt = fs.Bool("benchfmt", false, "with a write*/guard* flag: also print the metrics as Go benchmark lines (benchstat-compatible)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *expAlias != "" {
		*expFlag = *expAlias
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", e.ID, e.Title)
		}
		return 0
	}

	p := bench.Default()
	if *quick {
		p = bench.Quick()
	}
	if *queries > 0 {
		p.Queries = *queries
	}
	if *frames > 0 {
		p.Frames = *frames
	}
	if *blocks > 0 {
		p.CityBlocks = *blocks
	}
	if *gridFlag > 0 {
		p.GridCells = *gridFlag
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *images != "" {
		p.ImageDir = *images
	}

	if *writeBas != "" {
		b, err := bench.CollectBaseline(p)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		if err := bench.WriteBaseline(*writeBas, b); err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "baseline written to %s (workload %s)\n", *writeBas, b.Workload)
		if *benchfmt {
			bench.WriteBenchHeader(stdout)
			bench.BenchFmtBaseline(stdout, b, p.ScalQueries)
		}
		return 0
	}

	if *writeWC != "" {
		wc, err := bench.CollectWalkCoherence(p)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		if err := bench.WriteWalkCoherence(*writeWC, wc); err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "walkcoherence reference written to %s (workload %s)\n", *writeWC, wc.Workload)
		if *benchfmt {
			bench.WriteBenchHeader(stdout)
			bench.BenchFmtWalkCoherence(stdout, wc)
		}
		return 0
	}

	if *writeVC != "" {
		vc, err := bench.CollectVPageCodec(p)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		if err := bench.WriteVPageCodec(*writeVC, vc); err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "vpagecodec reference written to %s (workload %s)\n", *writeVC, vc.Workload)
		if *benchfmt {
			bench.WriteBenchHeader(stdout)
			bench.BenchFmtVPageCodec(stdout, vc, p.ScalQueries)
		}
		return 0
	}

	if *writeOV != "" {
		ov, err := bench.CollectOverload(p)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		if err := bench.WriteOverload(*writeOV, ov); err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "overload reference written to %s (workload %s)\n", *writeOV, ov.Workload)
		return 0
	}

	if *writeDU != "" {
		du, err := bench.CollectDynUpdate(p)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		if err := bench.WriteDynUpdate(*writeDU, du); err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "dynupdate reference written to %s (workload %s)\n", *writeDU, du.Workload)
		return 0
	}

	if *writeSS != "" {
		ss, err := bench.CollectShardScale(p)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		if err := bench.WriteShardScale(*writeSS, ss); err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "shardscale reference written to %s (workload %s)\n", *writeSS, ss.Workload)
		return 0
	}

	if *writeHW != "" {
		hc, err := bench.CollectHWCalib(p)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		if err := bench.WriteHWCalib(*writeHW, hc); err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "hwcalib reference written to %s (workload %s, fitted seek %.3fµs, transfer %.3fµs/page)\n",
			*writeHW, hc.Workload, hc.FittedSeekMicros, hc.FittedTransferMicros)
		if *benchfmt {
			bench.WriteBenchHeader(stdout)
			bench.BenchFmtHWCalib(stdout, hc, p.ScalQueries)
		}
		return 0
	}

	if *guardHW != "" {
		ref, err := bench.LoadHWCalib(*guardHW)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 2
		}
		cur, err := bench.CollectHWCalib(p)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		if bad := bench.CompareHWCalib(ref, cur); len(bad) > 0 {
			for _, line := range bad {
				fmt.Fprintf(stderr, "hdovbench: regression: %s\n", line)
			}
			return 1
		}
		fmt.Fprintf(stdout, "hwcalib guard passed (workload %s, codec %.2fx, warm %.2fx measured speedup)\n",
			ref.Workload, cur.CodecSpeedup, cur.WarmSpeedup)
		if *benchfmt {
			bench.WriteBenchHeader(stdout)
			bench.BenchFmtHWCalib(stdout, cur, p.ScalQueries)
		}
		return 0
	}

	if *guardSS != "" {
		ref, err := bench.LoadShardScale(*guardSS)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 2
		}
		cur, err := bench.CollectShardScale(p)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		if bad := bench.CompareShardScale(ref, cur, 0.25); len(bad) > 0 {
			for _, line := range bad {
				fmt.Fprintf(stderr, "hdovbench: regression: %s\n", line)
			}
			return 1
		}
		fmt.Fprintf(stdout, "shardscale guard passed (workload %s, 8-shard speedup %.2fx)\n",
			ref.Workload, cur.SpeedupAt8)
		return 0
	}

	if *guardDU != "" {
		ref, err := bench.LoadDynUpdate(*guardDU)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 2
		}
		cur, err := bench.CollectDynUpdate(p)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		if bad := bench.CompareDynUpdate(ref, cur, 0.25); len(bad) > 0 {
			for _, line := range bad {
				fmt.Fprintf(stderr, "hdovbench: regression: %s\n", line)
			}
			return 1
		}
		fmt.Fprintf(stdout, "dynupdate guard passed (workload %s)\n", ref.Workload)
		return 0
	}

	if *guardOV != "" {
		ref, err := bench.LoadOverload(*guardOV)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 2
		}
		cur, err := bench.CollectOverload(p)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		if bad := bench.CompareOverload(ref, cur, 0.5); len(bad) > 0 {
			for _, line := range bad {
				fmt.Fprintf(stderr, "hdovbench: regression: %s\n", line)
			}
			return 1
		}
		fmt.Fprintf(stdout, "overload guard passed (workload %s)\n", ref.Workload)
		return 0
	}

	if *guardVC != "" {
		ref, err := bench.LoadVPageCodec(*guardVC)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 2
		}
		cur, err := bench.CollectVPageCodec(p)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		if bad := bench.CompareVPageCodec(ref, cur, 0.25); len(bad) > 0 {
			for _, line := range bad {
				fmt.Fprintf(stderr, "hdovbench: regression: %s\n", line)
			}
			return 1
		}
		fmt.Fprintf(stdout, "vpagecodec guard passed (workload %s, %d schemes)\n",
			ref.Workload, len(ref.Schemes))
		if *benchfmt {
			bench.WriteBenchHeader(stdout)
			bench.BenchFmtVPageCodec(stdout, cur, p.ScalQueries)
		}
		return 0
	}

	if *guard != "" {
		ref, err := bench.LoadBaseline(*guard)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 2
		}
		cur, err := bench.CollectBaseline(p)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: %v\n", err)
			return 1
		}
		if bad := bench.CompareBaseline(ref, cur, 0.25); len(bad) > 0 {
			for _, line := range bad {
				fmt.Fprintf(stderr, "hdovbench: regression: %s\n", line)
			}
			return 1
		}
		fmt.Fprintf(stdout, "baseline guard passed (workload %s, %d schemes)\n",
			ref.Workload, len(ref.Schemes))
		if *benchfmt {
			bench.WriteBenchHeader(stdout)
			bench.BenchFmtBaseline(stdout, cur, p.ScalQueries)
		}
		return 0
	}

	if *clients > 0 {
		cfg := bench.DefaultServeConfig(p)
		cfg.Clients = *clients
		cfg.CachePages = *cache
		r, err := bench.RunServeClients(p, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "hdovbench: serve: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout,
			"clients=%d queries=%d elapsed=%v throughput=%.0f q/s pool_hits=%d pool_misses=%d\n",
			r.Clients, r.Queries, r.Elapsed.Round(time.Millisecond),
			r.Throughput, r.PoolHits, r.PoolMisses)
		return 0
	}

	var ids []string
	if *expFlag == "all" {
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expFlag, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := bench.Lookup(id)
		if !ok {
			known := make([]string, 0, len(bench.All()))
			for _, k := range bench.All() {
				known = append(known, k.ID)
			}
			fmt.Fprintf(stderr, "hdovbench: unknown experiment %q; registered: %s\n",
				id, strings.Join(known, ", "))
			return 2
		}
		fmt.Fprintf(stdout, "==== %s — %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(stdout, p); err != nil {
			fmt.Fprintf(stderr, "hdovbench: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Fprintf(stdout, "(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
