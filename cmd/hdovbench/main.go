// Command hdovbench regenerates the tables and figures of the paper's
// evaluation section (§5). Each experiment is addressed by its paper
// label; -list shows them all.
//
// Usage:
//
//	hdovbench -list
//	hdovbench -exp table2
//	hdovbench -exp fig7,fig8a,fig8b
//	hdovbench -exp all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		quick    = flag.Bool("quick", false, "use the small smoke-test parameter set")
		queries  = flag.Int("queries", 0, "override the visibility-query count")
		frames   = flag.Int("frames", 0, "override the walkthrough frame count")
		blocks   = flag.Int("blocks", 0, "override the city size (blocks per side)")
		gridFlag = flag.Int("grid", 0, "override the viewing-cell grid (cells per side)")
		seed     = flag.Int64("seed", 0, "override the random seed")
		images   = flag.String("images", "", "directory for Figure 11 PGM renderings")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	p := bench.Default()
	if *quick {
		p = bench.Quick()
	}
	if *queries > 0 {
		p.Queries = *queries
	}
	if *frames > 0 {
		p.Frames = *frames
	}
	if *blocks > 0 {
		p.CityBlocks = *blocks
	}
	if *gridFlag > 0 {
		p.GridCells = *gridFlag
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *images != "" {
		p.ImageDir = *images
	}

	var ids []string
	if *expFlag == "all" {
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expFlag, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := bench.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "hdovbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, p); err != nil {
			fmt.Fprintf(os.Stderr, "hdovbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
