// Command hdovwalk plays a recorded walkthrough session against the
// VISUAL (HDoV-tree) or REVIEW (spatial window query) system and prints
// per-frame timings plus the summary metrics of Figures 10/12 and Table 3.
//
// Usage:
//
//	hdovwalk -session normal -eta 0.001
//	hdovwalk -session turning -review -box 400
//	hdovwalk -session backforward -frames 2000 -series
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/render"
	"repro/internal/review"
	"repro/internal/walkthrough"
)

func main() {
	var (
		session   = flag.String("session", "normal", "motion pattern: normal | turning | backforward")
		frames    = flag.Int("frames", 1200, "session length in frames")
		eta       = flag.Float64("eta", 0.001, "VISUAL DoV threshold")
		useReview = flag.Bool("review", false, "play on the REVIEW baseline instead of VISUAL")
		box       = flag.Float64("box", 400, "REVIEW query-box depth in meters")
		noDelta   = flag.Bool("no-delta", false, "disable delta/complement search")
		series    = flag.Bool("series", false, "print the full per-frame time series")
		quick     = flag.Bool("quick", false, "use the small smoke-test database")
		seed      = flag.Int64("seed", 1, "path seed")
		record    = flag.String("record", "", "save the generated session as JSON to this path")
		replay    = flag.String("replay", "", "play a session JSON saved with -record instead of generating one")
	)
	flag.Parse()

	p := bench.Default()
	if *quick {
		p = bench.Quick()
	}
	env := bench.DefaultEnv(p)
	env.Tree.SetVStore(env.IV)

	var s walkthrough.Session
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdovwalk: %v\n", err)
			os.Exit(1)
		}
		s, err = walkthrough.ReadSession(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdovwalk: %v\n", err)
			os.Exit(1)
		}
	} else {
		switch *session {
		case "normal":
			s = walkthrough.RecordNormal(env.Scene, *frames, *seed)
		case "turning":
			s = walkthrough.RecordTurning(env.Scene, *frames, *seed)
		case "backforward":
			s = walkthrough.RecordBackForward(env.Scene, *frames, *seed)
		default:
			fmt.Fprintf(os.Stderr, "hdovwalk: unknown session %q\n", *session)
			os.Exit(2)
		}
	}
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdovwalk: %v\n", err)
			os.Exit(1)
		}
		if err := s.Encode(f); err != nil {
			fmt.Fprintf(os.Stderr, "hdovwalk: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("recorded session to %s\n", *record)
	}

	var res *walkthrough.Result
	var err error
	if *useReview {
		cfg := review.DefaultConfig()
		cfg.QueryBoxDepth = *box
		player := &walkthrough.ReviewPlayer{
			Sys:        review.New(env.Tree, cfg),
			Complement: !*noDelta,
			Render:     render.DefaultConfig(),
		}
		res, err = player.Play(s)
	} else {
		player := &walkthrough.VisualPlayer{
			Tree:   env.Tree,
			Eta:    *eta,
			Delta:  !*noDelta,
			Render: render.DefaultConfig(),
		}
		res, err = player.Play(s)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdovwalk: %v\n", err)
		os.Exit(1)
	}

	if *series {
		fmt.Println("frame  ms      queried  lightIO  heavyIO  polygons")
		for i, f := range res.Frames {
			q := " "
			if f.Queried {
				q = "*"
			}
			fmt.Printf("%-6d %-7.2f %-8s %-8d %-8d %-8.0f\n",
				i, float64(f.Total.Microseconds())/1000, q, f.LightIO, f.HeavyIO, f.Polygons)
		}
	}
	fmt.Printf("system:          %s\n", res.System)
	fmt.Printf("session:         %s (%d frames)\n", res.Session, len(res.Frames))
	fmt.Printf("queries:         %d\n", res.Queries)
	fmt.Printf("avg frame time:  %.2f ms\n", res.AvgFrameTime())
	fmt.Printf("frame variance:  %.2f ms^2\n", res.VarFrameTime())
	fmt.Printf("avg query time:  %.2f ms\n", res.AvgQueryTime())
	fmt.Printf("avg query I/O:   %.1f pages\n", res.AvgQueryIO())
	fmt.Printf("p95 frame time:  %.2f ms\n", res.PercentileFrameTime(95))
	fmt.Printf("worst frame:     %.2f ms\n", res.MaxFrameTime())
	fmt.Printf("peak memory:     %.1f MB\n", float64(res.PeakBytes)/(1<<20))
}
