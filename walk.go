package hdov

import (
	"context"
	"fmt"
	"time"

	"repro/internal/render"
	"repro/internal/review"
	"repro/internal/shard"
	"repro/internal/walkthrough"
)

// SessionKind selects one of the paper's §5.4 motion patterns.
type SessionKind int

const (
	// SessionNormal is session 1: a steady forward walk.
	SessionNormal SessionKind = iota
	// SessionTurning is session 2: walking while sweeping the gaze.
	SessionTurning
	// SessionBackForward is session 3: oscillating back and forth.
	SessionBackForward
)

func (s SessionKind) String() string {
	switch s {
	case SessionNormal:
		return "normal"
	case SessionTurning:
		return "turning"
	case SessionBackForward:
		return "back-forward"
	default:
		return fmt.Sprintf("SessionKind(%d)", int(s))
	}
}

// WalkOptions configures a walkthrough playback.
type WalkOptions struct {
	Session SessionKind
	// Frames is the session length (default 600).
	Frames int
	// Eta is the VISUAL DoV threshold (ignored with UseREVIEW).
	Eta float64
	// Delta enables the delta/complement search (default recommended).
	Delta bool
	// Prefetch speculatively warms the cache with the cell ahead
	// (VISUAL only).
	Prefetch bool
	// Coherent answers cell-entry queries through a retained traversal
	// cut (see Session.QueryCoherent) instead of descending from the
	// root each time (VISUAL only).
	Coherent bool
	// AsyncPrefetch warms the shared buffer pool with the V-data pages
	// of predicted next cells from a background worker (VISUAL only;
	// effective only with SetCacheSize).
	AsyncPrefetch bool
	// UseREVIEW plays the session on the REVIEW spatial baseline instead
	// of the HDoV-tree.
	UseREVIEW bool
	// ReviewBoxDepth is REVIEW's query-box truncation in meters
	// (default 400, the paper's comparable-fidelity setting).
	ReviewBoxDepth float64
	// CacheBudget bounds the payload cache in bytes (0 = unlimited).
	CacheBudget int64
	// Seed controls the recorded path.
	Seed int64
	// FrameBudget bounds each frame's query + fetch by a per-frame
	// deadline (VISUAL only; 0 = unbounded). A frame that blows its
	// budget is skipped — the previous resident set carries it — and
	// counted, never silently stretched.
	FrameBudget time.Duration
	// Admission, when set, gates every cell-entry query in Serve through
	// an admission controller; rejected queries are counted, not errors.
	// Ignored by Walkthrough (a single client cannot overload itself).
	Admission *AdmissionConfig
	// Shed, when set, enables fidelity-aware load shedding in Serve:
	// under sustained pressure queries run at a relaxed DoV threshold or
	// truncate at internal LoDs. Ignored by Walkthrough.
	Shed *ShedConfig
}

// WalkStats summarizes a playback — the Figure 10/12 and Table 3 metrics.
type WalkStats struct {
	System  string
	Session string
	Frames  int
	Queries int
	// AvgFrameMS and VarFrameMS are Table 3's columns.
	AvgFrameMS, VarFrameMS float64
	// AvgQueryMS and AvgQueryIO are Figure 12's metrics.
	AvgQueryMS, AvgQueryIO float64
	// PeakMemoryBytes is the payload cache's high-water mark.
	PeakMemoryBytes int64
	// FrameTimesMS is the full per-frame series (Figure 10's curves).
	FrameTimesMS []float64
	// TotalHeavyIO is the summed payload page reads.
	TotalHeavyIO int64
	// Degradations totals the media faults absorbed across the playback;
	// DegradedFrames counts frames that absorbed at least one. Both are
	// zero unless fault tolerance is on and faults fired.
	Degradations   int
	DegradedFrames int
	// Retries is the summed transient-fault retries across the playback.
	Retries int64
	// TotalLightIO is the summed index page reads charged to queries, and
	// TotalPrefetchIO the pages the prefetchers (speculative and async)
	// read off the frame loop.
	TotalLightIO, TotalPrefetchIO int64
	// Coherence reports the warm-path accounting when Coherent was set.
	Coherence CoherenceStats
	// BudgetMisses counts frames skipped because they blew FrameBudget.
	BudgetMisses int
}

// Walkthrough records a session with the requested motion pattern and
// plays it back, returning the performance trace.
func (db *DB) Walkthrough(opts WalkOptions) (*WalkStats, error) {
	return db.WalkthroughContext(context.Background(), opts)
}

// WalkthroughContext is Walkthrough bounded by ctx: cancellation or
// deadline expiry aborts the playback between (or within) frames with an
// error wrapping the context's error. WalkOptions.FrameBudget bounds
// individual frames independently of the whole-playback deadline.
func (db *DB) WalkthroughContext(ctx context.Context, opts WalkOptions) (*WalkStats, error) {
	if opts.Frames <= 0 {
		opts.Frames = 600
	}
	if opts.ReviewBoxDepth <= 0 {
		opts.ReviewBoxDepth = 400
	}
	var s walkthrough.Session
	switch opts.Session {
	case SessionTurning:
		s = walkthrough.RecordTurning(db.scene, opts.Frames, opts.Seed+1)
	case SessionBackForward:
		s = walkthrough.RecordBackForward(db.scene, opts.Frames, opts.Seed+2)
	default:
		s = walkthrough.RecordNormal(db.scene, opts.Frames, opts.Seed)
	}

	var res *walkthrough.Result
	var err error
	var coherence CoherenceStats
	if opts.UseREVIEW {
		cfg := review.DefaultConfig()
		cfg.QueryBoxDepth = opts.ReviewBoxDepth
		p := &walkthrough.ReviewPlayer{
			Sys:         review.New(db.tree, cfg),
			Complement:  opts.Delta,
			CacheBudget: opts.CacheBudget,
			Render:      render.DefaultConfig(),
		}
		res, err = p.PlayContext(ctx, s)
	} else {
		tree := db.tree
		if opts.Coherent || opts.AsyncPrefetch {
			// The cut and the result free list are per-session state;
			// playing on a private session keeps the shared tree clean.
			tree = db.tree.Session()
		}
		p := &walkthrough.VisualPlayer{
			Tree:          tree,
			Eta:           opts.Eta,
			Delta:         opts.Delta,
			Prefetch:      opts.Prefetch,
			Coherent:      opts.Coherent,
			AsyncPrefetch: opts.AsyncPrefetch,
			CacheBudget:   opts.CacheBudget,
			Render:        render.DefaultConfig(),
			FrameBudget:   opts.FrameBudget,
		}
		var routed *shard.Session
		if r := db.currentRouter(); r != nil {
			// Sharded: each frame's cell-entry query runs on the owning
			// shard's store; the walk hands off between stores at shard
			// boundaries. Answers are byte-identical to the unrouted walk.
			routed = r.Session()
			p.Route = routed.RouteTree
		}
		res, err = p.PlayContext(ctx, s)
		if err == nil && opts.Coherent && routed != nil {
			cs := routed.CoherenceStats()
			coherence = CoherenceStats{
				Incremental: cs.Incremental, Full: cs.Full,
				NodesReused: cs.NodesReused, Expanded: cs.Expanded, Collapsed: cs.Collapsed,
			}
		} else if err == nil && opts.Coherent {
			cs := tree.CoherenceStats()
			coherence = CoherenceStats{
				Incremental: cs.Incremental, Full: cs.Full,
				NodesReused: cs.NodesReused, Expanded: cs.Expanded, Collapsed: cs.Collapsed,
			}
		}
	}
	if err != nil {
		return nil, err
	}
	out := &WalkStats{
		System:          res.System,
		Session:         res.Session,
		Frames:          len(res.Frames),
		Queries:         res.Queries,
		AvgFrameMS:      res.AvgFrameTime(),
		VarFrameMS:      res.VarFrameTime(),
		AvgQueryMS:      res.AvgQueryTime(),
		AvgQueryIO:      res.AvgQueryIO(),
		PeakMemoryBytes: res.PeakBytes,
		Degradations:    res.Degradations,
		DegradedFrames:  res.DegradedFrames,
		Coherence:       coherence,
		BudgetMisses:    res.BudgetMisses,
	}
	out.FrameTimesMS = make([]float64, len(res.Frames))
	for i, f := range res.Frames {
		out.FrameTimesMS[i] = float64(f.Total) / float64(time.Millisecond)
		out.TotalHeavyIO += f.HeavyIO
		out.TotalLightIO += f.LightIO
		out.TotalPrefetchIO += f.PrefetchIO
		out.Retries += f.Retries
	}
	return out, nil
}
