// Package hdov is a from-scratch reproduction of the HDoV-tree (Shou,
// Huang, Tan: "HDoV-tree: The Structure, The Storage, The Speed", ICDE
// 2003): a hierarchical spatial index over large out-of-core virtual
// environments whose traversal is driven by precomputed per-viewing-cell
// degree-of-visibility (DoV) data, with internal levels-of-detail that let
// barely visible subtrees be answered by a single coarse aggregate mesh.
//
// The package builds a complete, self-contained pipeline:
//
//   - a procedural city dataset (buildings with tessellated facades and
//     organic high-polygon "blobs", the paper's bunny stand-ins),
//   - QEM polygon simplification producing per-object and internal LoD
//     chains,
//   - an R-tree backbone with the Ang–Tan linear split,
//   - ray-cast DoV precomputation over a viewing-cell grid,
//   - the three V-page storage schemes of the paper (horizontal, vertical,
//     indexed-vertical) over a simulated paged disk with seek/transfer
//     cost accounting,
//   - the threshold-based visibility query of Figure 3, and
//   - walkthrough players for VISUAL (this system) and the REVIEW spatial
//     baseline, with delta/complement search and semantic caching.
//
// One open DB serves many clients concurrently: NewSession gives each
// client a private query handle with its own I/O accounting, SetCacheSize
// installs a shared buffer pool whose hits charge no simulated I/O,
// SetParallel bounds the per-query traversal fan-out, and Serve plays N
// concurrent walkthrough clients end to end (see DESIGN.md §10).
//
// Quick start:
//
//	db, err := hdov.Build(hdov.DefaultConfig())
//	if err != nil { ... }
//	res, err := db.Query(hdov.Pt(150, 150, 1.7), 0.001)
//	for _, item := range res.Items { ... }
package hdov

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/naive"
	"repro/internal/scene"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/visibility"
	"repro/internal/vstore"
)

// Point is a location or direction in the environment, in meters.
type Point struct {
	X, Y, Z float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y, z float64) Point { return Point{x, y, z} }

func (p Point) vec() geom.Vec3       { return geom.Vec3{X: p.X, Y: p.Y, Z: p.Z} }
func fromVec(v geom.Vec3) Point      { return Point{v.X, v.Y, v.Z} }
func (p Point) String() string       { return p.vec().String() }
func (p Point) Sub(q Point) Point    { return fromVec(p.vec().Sub(q.vec())) }
func (p Point) Dist(q Point) float64 { return p.vec().Dist(q.vec()) }

// Scheme selects the V-page storage layout of §4.
type Scheme int

const (
	// SchemeIndexedVertical is §4.3, the paper's recommended layout.
	SchemeIndexedVertical Scheme = iota
	// SchemeVertical is §4.2.
	SchemeVertical
	// SchemeHorizontal is §4.1.
	SchemeHorizontal
)

func (s Scheme) String() string {
	switch s {
	case SchemeIndexedVertical:
		return "indexed-vertical"
	case SchemeVertical:
		return "vertical"
	case SchemeHorizontal:
		return "horizontal"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// SceneConfig shapes the procedural dataset.
type SceneConfig struct {
	// Blocks is the city size in blocks per side (or, with Museum set,
	// rooms per side).
	Blocks int
	// BuildingsPerBlock and BlobsPerBlock control density (city only).
	BuildingsPerBlock int
	BlobsPerBlock     int
	// Museum generates the indoor gallery dataset instead of the city —
	// the extreme-occlusion regime where visibility indexing pays off
	// most (from any room only neighbors' doorway slices are visible).
	Museum bool
	// NominalBytes is the raw dataset size the payloads are scaled to
	// (the paper's 400 MB – 1.6 GB axis). Zero keeps real mesh sizes.
	NominalBytes int64
	// Seed makes the dataset reproducible.
	Seed int64
}

// Config controls database construction.
type Config struct {
	Scene SceneConfig
	// GridCells is the viewing-cell resolution per side.
	GridCells int
	// DoVRays is the DoV sampling density per viewpoint; higher values
	// resolve smaller thresholds (resolution ≈ 1/DoVRays).
	DoVRays int
	// SamplesPerCell is the per-axis viewpoint sample density for the
	// conservative region DoV of equation 2.
	SamplesPerCell int
	// Scheme selects the storage layout used by Query.
	Scheme Scheme
	// Eta is the default DoV threshold for Query (can be overridden per
	// call).
	Eta float64
	// UseItemBuffer precomputes DoV with the cube-map rasterizer (the
	// literal software form of the paper's hardware pass) instead of ray
	// casting. ItemBufferRes sets its per-face resolution (0 = default).
	UseItemBuffer bool
	ItemBufferRes int
	// BulkLoad packs the R-tree backbone with STR instead of the paper's
	// one-by-one Ang–Tan insertion (fewer nodes, lower overlap).
	BulkLoad bool
	// Codec stores all three schemes in the compressed V-page layout
	// (DESIGN.md §13): fixed-point varint DoV entries in CRC-sealed,
	// variable-length units instead of raw float64 slots. Query results
	// are byte-identical to the raw layout; V-page bytes and light I/O
	// drop severalfold.
	Codec bool
	// DoVQuantBits overrides the build-time DoV quantization grid
	// (0 = default 16 fraction bits, < 0 disables quantization).
	DoVQuantBits int
	// Storage selects the media the paged disk runs on: the simulated
	// in-memory disk (the zero value) or a real OS file (BackendFile).
	// Query answers are byte-identical either way; the file backend
	// additionally charges measured wall-clock I/O into DiskStats.
	Storage StorageConfig
}

// DefaultConfig returns a laptop-scale database comparable in structure to
// the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{
		Scene: SceneConfig{
			Blocks:            4,
			BuildingsPerBlock: 8,
			BlobsPerBlock:     4,
			NominalBytes:      100 << 20,
			Seed:              1,
		},
		GridCells:      12,
		DoVRays:        1024,
		SamplesPerCell: 1,
		Scheme:         SchemeIndexedVertical,
		Eta:            0.001,
	}
}

// DB is a built HDoV-tree database: scene, index, visibility data and all
// three storage schemes over one simulated disk.
//
// A DB is not itself a concurrent query handle: concurrent clients each
// take a Session (NewSession is safe to call at any time, including while
// an Update is in flight) and query through it. Update installs a new
// scene epoch atomically — existing Sessions keep answering from the
// epoch they pinned, new Sessions see the new one.
type DB struct {
	cfg    Config
	disk   *storage.Disk
	scene  *scene.Scene            // hdov:guarded-by mu
	tree   *core.Tree              // hdov:guarded-by mu
	vis    *core.VisData           // hdov:guarded-by mu
	h      *vstore.Horizontal      // hdov:guarded-by mu
	v      *vstore.Vertical        // hdov:guarded-by mu
	iv     *vstore.IndexedVertical // hdov:guarded-by mu
	naive  *naive.Store            // hdov:guarded-by mu
	engine *visibility.Engine      // hdov:guarded-by mu

	// router, when non-nil, partitions the viewing-cell grid across
	// shard stores and routes new sessions (see EnableSharding); shardCfg
	// remembers the enabling configuration so Update can re-shard.
	router   *shard.Router // hdov:guarded-by mu
	shardCfg ShardConfig   // hdov:guarded-by mu

	// mu guards the epoch swap: Update replaces scene/tree/vis/stores
	// under mu.Lock, NewSession pins the current tree under mu.RLock.
	mu sync.RWMutex
	// writeMu serializes writers (Update, CommitEpoch, Save).
	writeMu sync.Mutex
	// epoch counts committed+installed update batches; ops is the full op
	// log since the original build, replayed by Open.
	epoch int        // hdov:guarded-by mu
	ops   []scene.Op // hdov:guarded-by mu
	// tmpDir owns an unnamed file backend's page file; Close removes it.
	tmpDir string // hdov:guarded-by mu
}

// Build generates the city, constructs the HDoV-tree, precomputes per-cell
// DoV data and lays out all three storage schemes.
func Build(cfg Config) (*DB, error) {
	if cfg.Scene.Blocks < 1 {
		cfg.Scene.Blocks = 4
	}
	if cfg.GridCells < 1 {
		cfg.GridCells = 12
	}
	if cfg.DoVRays < 64 {
		cfg.DoVRays = 1024
	}
	if cfg.SamplesPerCell < 1 {
		cfg.SamplesPerCell = 1
	}
	var sc *scene.Scene
	if cfg.Scene.Museum {
		mp := scene.DefaultMuseumParams()
		mp.Seed = cfg.Scene.Seed
		mp.RoomsX, mp.RoomsY = cfg.Scene.Blocks, cfg.Scene.Blocks
		mp.NominalBytes = cfg.Scene.NominalBytes
		sc = scene.GenerateMuseum(mp)
	} else {
		cp := scene.DefaultCityParams()
		cp.Seed = cfg.Scene.Seed
		cp.BlocksX, cp.BlocksY = cfg.Scene.Blocks, cfg.Scene.Blocks
		if cfg.Scene.BuildingsPerBlock > 0 {
			cp.BuildingsPerBlock = cfg.Scene.BuildingsPerBlock
		}
		if cfg.Scene.BlobsPerBlock >= 0 {
			cp.BlobsPerBlock = cfg.Scene.BlobsPerBlock
		}
		cp.NominalBytes = cfg.Scene.NominalBytes
		sc = scene.Generate(cp)
	}

	d, tmpDir, err := newDisk(cfg.Storage)
	if err != nil {
		return nil, err
	}
	// The disk may own real resources (page file, mmap window, temp dir);
	// every build failure past this point must release them.
	fail := func(err error) (*DB, error) {
		_ = d.Close()
		if tmpDir != "" {
			_ = os.RemoveAll(tmpDir)
		}
		return nil, err
	}
	bp := core.DefaultBuildParams()
	bp.Grid = cells.NewGrid(sc.ViewRegion, cfg.GridCells, cfg.GridCells)
	bp.DirsPerViewpoint = cfg.DoVRays
	bp.SamplesPerCell = cfg.SamplesPerCell
	bp.UseItemBuffer = cfg.UseItemBuffer
	bp.ItemBufferRes = cfg.ItemBufferRes
	bp.BulkLoad = cfg.BulkLoad
	bp.DoVQuantBits = cfg.DoVQuantBits
	tr, vis, err := core.Build(sc, d, bp)
	if err != nil {
		return fail(fmt.Errorf("hdov: %w", err))
	}
	opts := vstore.Options{Codec: cfg.Codec}
	h, err := vstore.BuildHorizontalOpts(d, vis, opts)
	if err != nil {
		return fail(fmt.Errorf("hdov: %w", err))
	}
	v, err := vstore.BuildVerticalOpts(d, vis, opts)
	if err != nil {
		return fail(fmt.Errorf("hdov: %w", err))
	}
	iv, err := vstore.BuildIndexedVerticalOpts(d, vis, opts)
	if err != nil {
		return fail(fmt.Errorf("hdov: %w", err))
	}
	nv, err := naive.Build(tr, vis, 0)
	if err != nil {
		return fail(fmt.Errorf("hdov: %w", err))
	}
	db := &DB{
		cfg: cfg, scene: sc, disk: d, tree: tr, vis: vis,
		h: h, v: v, iv: iv, naive: nv,
		engine: visibility.NewEngine(sc, cfg.DoVRays),
		tmpDir: tmpDir,
	}
	db.SetScheme(cfg.Scheme)
	return db, nil
}

// snapshot returns the current epoch's tree and scene under the read
// lock, so accessors stay consistent while an Update publishes. Callers
// must not already hold db.mu (RWMutex read locks do not nest safely
// under a waiting writer).
func (db *DB) snapshot() (*core.Tree, *scene.Scene) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tree, db.scene
}

// SetScheme switches the storage layout served to Query — on every
// shard store too, when sharding is enabled.
func (db *DB) SetScheme(s Scheme) {
	db.mu.Lock()
	switch s {
	case SchemeHorizontal:
		db.tree.SetVStore(db.h)
	case SchemeVertical:
		db.tree.SetVStore(db.v)
	default:
		db.tree.SetVStore(db.iv)
	}
	db.cfg.Scheme = s
	r := db.router
	db.mu.Unlock()
	if r != nil {
		r.SetScheme(shardScheme(s))
	}
}

// Scheme returns the active storage layout.
func (db *DB) Scheme() Scheme {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.cfg.Scheme
}

// NumObjects returns the object count of the dataset (tombstones
// included; see NumAliveObjects).
func (db *DB) NumObjects() int {
	_, sc := db.snapshot()
	return len(sc.Objects)
}

// NumNodes returns N_node, the HDoV-tree's node count.
func (db *DB) NumNodes() int {
	t, _ := db.snapshot()
	return t.NumNodes()
}

// NumCells returns the viewing-cell count.
func (db *DB) NumCells() int {
	t, _ := db.snapshot()
	return t.Grid.NumCells()
}

// NominalBytes returns the dataset's raw payload size.
func (db *DB) NominalBytes() int64 {
	_, sc := db.snapshot()
	return sc.NominalRawBytes()
}

// Bounds returns the corners of the environment.
func (db *DB) Bounds() (min, max Point) {
	_, sc := db.snapshot()
	return fromVec(sc.Bounds.Min), fromVec(sc.Bounds.Max)
}

// ViewRegion returns the corners of the walkable viewpoint slab.
func (db *DB) ViewRegion() (min, max Point) {
	_, sc := db.snapshot()
	return fromVec(sc.ViewRegion.Min), fromVec(sc.ViewRegion.Max)
}

// DefaultViewpoint returns a natural standing point: a street
// intersection near the city center (open sightlines down four
// corridors), or the center of a middle room in the museum.
func (db *DB) DefaultViewpoint() Point {
	_, sc := db.snapshot()
	p := sc.Params
	z := sc.ViewRegion.Center().Z
	if m := p.Museum; m != nil {
		pitch := m.RoomSize + m.WallThickness
		cx := m.WallThickness + pitch*float64(m.RoomsX/2) + m.RoomSize/2
		cy := m.WallThickness + pitch*float64(m.RoomsY/2) + m.RoomSize/2
		return Pt(cx, cy, z)
	}
	pitch := p.BlockSize + p.StreetWidth
	half := p.StreetWidth / 2
	cx := half + pitch*float64(p.BlocksX/2)
	cy := half + pitch*float64(p.BlocksY/2)
	return Pt(cx, cy, z)
}

// StorageSizes reports each scheme's disk footprint — the Table 2 numbers.
type StorageSizes struct {
	Horizontal, Vertical, IndexedVertical int64
}

// StorageSizes returns the three schemes' footprints.
func (db *DB) StorageSizes() StorageSizes {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return StorageSizes{
		Horizontal:      db.h.SizeBytes(),
		Vertical:        db.v.SizeBytes(),
		IndexedVertical: db.iv.SizeBytes(),
	}
}

// CellOf returns the viewing cell containing p, or -1 if p is outside the
// viewpoint region.
func (db *DB) CellOf(p Point) int {
	t, _ := db.snapshot()
	return int(t.Grid.Locate(p.vec()))
}

// CellViewpoint returns the cell's primary DoV sample point. Ground-truth
// fidelity evaluated exactly there is covered by the stored region field
// (equation 2 takes the max over sample viewpoints), so an eta=0 query
// from this point scores full coverage.
func (db *DB) CellViewpoint(cell int) Point {
	t, _ := db.snapshot()
	if cell < 0 || cell >= t.Grid.NumCells() {
		return Point{}
	}
	return fromVec(t.Grid.SamplePoints(cells.CellID(cell), 1)[0])
}

// ErrOutsideCells is returned by Query for viewpoints outside the grid.
var ErrOutsideCells = errors.New("hdov: viewpoint outside the viewing-cell grid")

// FaultPlan configures seeded, deterministic fault injection on the
// simulated disk — the harness for exercising degraded-mode traversal.
type FaultPlan struct {
	// Seed drives the probabilistic draws; the same seed over the same
	// read sequence injects the same faults.
	Seed int64
	// PageProb is the per-page-read probability that a fault fires.
	PageProb float64
	// TransientFrac is the fraction of faults that are transient (cleared
	// by the disk's bounded retry); the rest are permanent and sticky.
	TransientFrac float64
	// MaxRetries bounds the retry loop per logical read (0 = default 3).
	MaxRetries int
	// RetryJitter adds a seeded random backoff (up to half the base
	// backoff) to each retry, decorrelating concurrent sessions that are
	// retrying the same hot region. The fault draws themselves are
	// unchanged: the same plan injects the same faults with or without
	// jitter — only the simulated retry cost varies.
	RetryJitter bool
}

// SetFaultTolerant switches degraded-mode traversal on or off. When on, a
// query that hits an unreadable node page, V-page or payload extent does
// not abort: the lost branch is answered by the deepest readable
// ancestor's internal LoD and the substitution is recorded on the result
// as a Degradation. When off (the default), media faults abort the query
// with an error.
func (db *DB) SetFaultTolerant(on bool) {
	db.mu.Lock()
	db.tree.FaultTolerant = on
	r := db.router
	db.mu.Unlock()
	if r != nil {
		r.SetFaultTolerant(on)
	}
}

// FaultTolerant reports whether degraded-mode traversal is enabled.
func (db *DB) FaultTolerant() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tree.FaultTolerant
}

// InjectFaults installs the fault plan on the database's disk — and on
// every shard store's, when sharding is enabled. Passing a
// zero-probability plan installs an injector that never fires.
func (db *DB) InjectFaults(p FaultPlan) {
	cfg := storage.FaultConfig{
		Seed:          p.Seed,
		PageProb:      p.PageProb,
		TransientFrac: p.TransientFrac,
		MaxRetries:    p.MaxRetries,
		Jitter:        p.RetryJitter,
	}
	db.disk.InjectFaults(cfg)
	if r := db.currentRouter(); r != nil {
		r.InjectFaults(cfg)
	}
}

// ClearFaults removes the fault injectors and forgets the quarantined
// pages degraded-mode traversal has learned to avoid.
func (db *DB) ClearFaults() {
	db.disk.ClearFaults()
	db.disk.ClearQuarantine()
	if r := db.currentRouter(); r != nil {
		r.ClearFaults()
	}
}

// fidelityTruth computes the ground-truth point DoV field at p.
func (db *DB) fidelityTruth(p Point) []float64 {
	db.mu.RLock()
	eng := db.engine
	db.mu.RUnlock()
	return eng.PointDoV(p.vec())
}
