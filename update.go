package hdov

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/scene"
	"repro/internal/visibility"
	"repro/internal/vstore"
)

// Dynamic scenes: a built database can evolve through inserts, deletes
// and moves without rebuilding from scratch. Update applies a batch of
// operations as one atomic epoch: the R-tree backbone is updated in
// place, internal LoDs are rebuilt only where the topology changed,
// per-cell DoV fields are re-cast only for cells that can see a changed
// object, and all three V-page schemes are re-laid over the new
// visibility data. Every page written is freshly allocated, so Sessions
// created before the update keep answering from their pinned epoch.
//
// The differential guarantee (enforced by TestUpdateDifferential): after
// any op sequence, queries answer byte-identically to a database rebuilt
// from scratch over the replayed scene.

// InsertSpec deterministically describes a new object: a procedural blob
// (the paper's bunny stand-in) dropped at an explicit position. All
// geometry derives from the spec, so the op log replays identically.
type InsertSpec struct {
	// Seed shapes the blob.
	Seed int64
	// X, Y is the footprint center; the blob sits on the ground plane.
	X, Y float64
	// Radius is the blob radius in meters (clamped to a sane minimum).
	Radius float64
	// Detail is the tessellation parameter (<= 0: the scene default).
	Detail int
}

// Updater collects the operations of one Update batch.
type Updater struct {
	ops []scene.Op
}

// Insert schedules a new object. Its ID is assigned when the batch
// applies (dense, in batch order); read it from UpdateStats.InsertedIDs.
func (u *Updater) Insert(spec InsertSpec) {
	u.ops = append(u.ops, scene.Op{Kind: scene.OpInsert, Insert: &scene.InsertSpec{
		Seed: spec.Seed, X: spec.X, Y: spec.Y, Radius: spec.Radius, Detail: spec.Detail,
	}})
}

// Delete schedules the removal of an object. The ID is tombstoned, never
// reused; deleting an already-dead or unknown ID fails the whole batch.
func (u *Updater) Delete(id int64) {
	u.ops = append(u.ops, scene.Op{Kind: scene.OpDelete, ID: id})
}

// Move schedules a translation of an object by (dx, dy, dz).
func (u *Updater) Move(id int64, dx, dy, dz float64) {
	u.ops = append(u.ops, scene.Op{Kind: scene.OpMove, ID: id, DX: dx, DY: dy, DZ: dz})
}

// UpdateStats reports what an Update did.
type UpdateStats struct {
	// Epoch is the database epoch after the batch installed.
	Epoch int
	// Ops is the number of operations applied.
	Ops int
	// TouchedCells is how many viewing cells had their DoV field re-cast;
	// TotalCells is the grid size. The difference is the cells served
	// from the previous epoch's retained raw field.
	TouchedCells int
	TotalCells   int
	// LoDReused / LoDRebuilt count tree nodes whose internal-LoD chain
	// was adopted from the previous epoch vs. re-simplified.
	LoDReused  int
	LoDRebuilt int
	// PagesAppended is the number of simulated-disk pages the batch
	// allocated (tree records, fresh payloads, V-pages).
	PagesAppended int64
	// InsertedIDs are the object IDs assigned to this batch's inserts, in
	// batch order.
	InsertedIDs []int64
}

// Update applies one batch of scene operations as the next epoch. fn
// stages the operations on the Updater; they apply in order, atomically —
// on error the database is unchanged. Update serializes with other
// writers (Update, CommitEpoch, Save) but never blocks readers: Sessions
// pinned to earlier epochs stay valid, and NewSession during an Update
// returns whichever epoch is current when it runs.
func (db *DB) Update(fn func(*Updater)) (*UpdateStats, error) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()

	u := &Updater{}
	fn(u)
	if len(u.ops) == 0 {
		return nil, fmt.Errorf("hdov: update: empty batch")
	}

	t2, vis2, effects, cs, err := core.ApplyOps(db.tree, db.vis, u.ops)
	if err != nil {
		return nil, fmt.Errorf("hdov: update: %w", err)
	}

	opts := vstore.Options{Codec: db.cfg.Codec}
	h, err := vstore.BuildHorizontalOpts(db.disk, vis2, opts)
	if err != nil {
		return nil, fmt.Errorf("hdov: update: %w", err)
	}
	v, err := vstore.BuildVerticalOpts(db.disk, vis2, opts)
	if err != nil {
		return nil, fmt.Errorf("hdov: update: %w", err)
	}
	iv, err := vstore.BuildIndexedVerticalOpts(db.disk, vis2, opts)
	if err != nil {
		return nil, fmt.Errorf("hdov: update: %w", err)
	}
	nv, err := naive.Build(t2, vis2, 0)
	if err != nil {
		return nil, fmt.Errorf("hdov: update: %w", err)
	}
	switch db.cfg.Scheme {
	case SchemeHorizontal:
		t2.SetVStore(h)
	case SchemeVertical:
		t2.SetVStore(v)
	default:
		t2.SetVStore(iv)
	}
	eng := visibility.NewEngine(t2.Scene, t2.Params.DirsPerViewpoint)

	stats := &UpdateStats{
		Ops:           cs.Ops,
		TouchedCells:  cs.TouchedCells,
		TotalCells:    cs.TotalCells,
		LoDReused:     cs.LoDReused,
		LoDRebuilt:    cs.LoDRebuilt,
		PagesAppended: cs.PagesAppended,
	}
	for _, e := range effects {
		if e.Kind == scene.OpInsert {
			stats.InsertedIDs = append(stats.InsertedIDs, e.ObjectID)
		}
	}

	// Publish the new epoch. Readers that already pinned the old tree are
	// untouched (nothing above ever rewrote a committed page); new
	// Sessions pin the new one.
	db.mu.Lock()
	db.scene = t2.Scene
	db.tree = t2
	db.vis = vis2
	db.h, db.v, db.iv, db.naive = h, v, iv, nv
	db.engine = eng
	db.epoch++
	db.ops = append(db.ops, u.ops...)
	stats.Epoch = db.epoch
	sharded := db.router != nil
	db.mu.Unlock()

	// Re-shard over the new epoch so routed sessions created after this
	// update see it. Sessions that pinned the old topology are untouched.
	if sharded {
		db.mu.RLock()
		cfg := db.shardCfg
		db.mu.RUnlock()
		r, err := db.buildRouter(cfg)
		if err != nil {
			return stats, fmt.Errorf("hdov: update: re-shard: %w", err)
		}
		db.mu.Lock()
		db.router = r
		db.mu.Unlock()
	}
	return stats, nil
}

// Insert applies a single-object insert and returns the new object's ID.
func (db *DB) Insert(spec InsertSpec) (int64, error) {
	st, err := db.Update(func(u *Updater) { u.Insert(spec) })
	if err != nil {
		return 0, err
	}
	return st.InsertedIDs[0], nil
}

// Delete applies a single-object delete.
func (db *DB) Delete(id int64) error {
	_, err := db.Update(func(u *Updater) { u.Delete(id) })
	return err
}

// Move applies a single-object translation.
func (db *DB) Move(id int64, dx, dy, dz float64) error {
	_, err := db.Update(func(u *Updater) { u.Move(id, dx, dy, dz) })
	return err
}

// Epoch returns the number of update batches installed since the
// original build (or, after Open, since the base image was saved).
func (db *DB) Epoch() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.epoch
}

// NumAliveObjects returns the object count excluding tombstones. It
// equals NumObjects until the first Delete.
func (db *DB) NumAliveObjects() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.scene.NumAlive()
}
