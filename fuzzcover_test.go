package hdov

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestFuzzSmokeCoversAllTargets pins the CI fuzz-smoke step to the fuzz
// targets that actually exist: every Fuzz* function in the module must
// be exercised by exactly one `go test -fuzz=<pattern> <pkg>` line in
// ci.yml, and every such line must match exactly one target (go test
// itself rejects a -fuzz pattern matching several). Adding a fuzz
// target without wiring it into CI — or deleting one and leaving a
// stale smoke line behind — fails here instead of rotting silently.
func TestFuzzSmokeCoversAllTargets(t *testing.T) {
	targets := discoverFuzzTargets(t, ".")
	if len(targets) == 0 {
		t.Fatal("no Fuzz* targets found in the module")
	}
	lines := parseFuzzSmokeLines(t, filepath.Join(".github", "workflows", "ci.yml"))
	if len(lines) == 0 {
		t.Fatal("no `go test -fuzz=...` lines found in ci.yml")
	}

	covered := make(map[string]string) // "pkg.Func" -> smoke line
	for _, sm := range lines {
		re, err := regexp.Compile(sm.pattern)
		if err != nil {
			t.Errorf("ci.yml fuzz pattern %q does not compile: %v", sm.pattern, err)
			continue
		}
		var matched []string
		for _, ft := range targets {
			if ft.pkg == sm.pkg && re.MatchString(ft.name) {
				matched = append(matched, ft.key())
			}
		}
		switch len(matched) {
		case 0:
			t.Errorf("ci.yml fuzz line %q matches no target in %s (stale entry?)", sm.raw, sm.pkg)
		case 1:
			if prev, dup := covered[matched[0]]; dup {
				t.Errorf("target %s fuzzed twice: %q and %q", matched[0], prev, sm.raw)
			}
			covered[matched[0]] = sm.raw
		default:
			t.Errorf("ci.yml fuzz line %q matches %d targets %v; go test -fuzz requires exactly one",
				sm.raw, len(matched), matched)
		}
	}
	for _, ft := range targets {
		if _, ok := covered[ft.key()]; !ok {
			t.Errorf("fuzz target %s.%s is not exercised by the ci.yml fuzz-smoke step; add\n"+
				"  go test -run='^$' -fuzz='%s$' -fuzztime=10s %s", ft.pkg, ft.name, ft.name, ft.pkg)
		}
	}
}

type fuzzTarget struct {
	pkg  string // package dir as it appears in ci.yml ("./internal/core" or ".")
	name string
}

func (ft fuzzTarget) key() string { return ft.pkg + "." + ft.name }

// discoverFuzzTargets walks the module for Fuzz* functions declared in
// _test.go files, skipping testdata (fixture modules are not run by CI).
func discoverFuzzTargets(t *testing.T, root string) []fuzzTarget {
	t.Helper()
	var out []fuzzTarget
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" || (strings.HasPrefix(d.Name(), ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		pkg := "./" + filepath.ToSlash(filepath.Dir(path))
		if pkg == "./." {
			pkg = "."
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Fuzz") {
				continue
			}
			// A fuzz target takes exactly (*testing.F).
			if fd.Type.Params == nil || len(fd.Type.Params.List) != 1 {
				continue
			}
			out = append(out, fuzzTarget{pkg: pkg, name: fd.Name.Name})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

type smokeLine struct {
	raw     string
	pattern string
	pkg     string
}

// fuzzLineRE captures `go test ... -fuzz=PATTERN ... PKG` with the
// pattern optionally single-quoted, as ci.yml spells it.
var fuzzLineRE = regexp.MustCompile(`go test\s.*-fuzz=('([^']+)'|(\S+))\s.*?(\S+)\s*$`)

// parseFuzzSmokeLines extracts the (pattern, package) pairs of every
// `go test -fuzz=...` invocation in the workflow file.
func parseFuzzSmokeLines(t *testing.T, path string) []smokeLine {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	var out []smokeLine
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		m := fuzzLineRE.FindStringSubmatch(trimmed)
		if m == nil {
			continue
		}
		pattern := m[2]
		if pattern == "" {
			pattern = m[3]
		}
		out = append(out, smokeLine{raw: trimmed, pattern: pattern, pkg: m[4]})
	}
	return out
}
