package hdov

// Backend differential suite: the same saved database, reopened on the
// simulated in-memory disk and on the real file backend, must answer
// every query mode identically — all three V-page schemes, raw and codec
// layouts, serial, parallel and coherent traversal. The file backend may
// only differ in wall-clock accounting (MeasuredTime).

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// sameItems fails the test unless both results carry identical item
// lists.
func sameItems(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if len(want.Items) != len(got.Items) {
		t.Fatalf("%s: %d vs %d items", label, len(want.Items), len(got.Items))
	}
	for i := range want.Items {
		a, b := want.Items[i], got.Items[i]
		if a.ObjectID != b.ObjectID || a.NodeID != b.NodeID || a.Level != b.Level ||
			math.Abs(a.DoV-b.DoV) > 1e-12 {
			t.Fatalf("%s item %d: %+v vs %+v", label, i, a, b)
		}
	}
}

// runDifferential drives one saved database through every scheme and
// traversal mode on both backends.
func runDifferential(t *testing.T, dir string) {
	sim, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	fb, err := OpenWith(dir, StorageConfig{Backend: BackendFile})
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()

	cells := []int{0, sim.NumCells() / 3, sim.NumCells() - 1}
	for _, scheme := range []Scheme{SchemeIndexedVertical, SchemeVertical, SchemeHorizontal} {
		sim.SetScheme(scheme)
		fb.SetScheme(scheme)

		// Serial.
		for _, c := range cells {
			a, err := sim.QueryCell(c, 0.002)
			if err != nil {
				t.Fatal(err)
			}
			b, err := fb.QueryCell(c, 0.002)
			if err != nil {
				t.Fatal(err)
			}
			sameItems(t, scheme.String()+"/serial", a, b)
		}

		// Parallel traversal fan-out.
		sim.SetParallel(4)
		fb.SetParallel(4)
		for _, c := range cells {
			a, err := sim.QueryCell(c, 0.002)
			if err != nil {
				t.Fatal(err)
			}
			b, err := fb.QueryCell(c, 0.002)
			if err != nil {
				t.Fatal(err)
			}
			sameItems(t, scheme.String()+"/parallel", a, b)
		}
		sim.SetParallel(1)
		fb.SetParallel(1)

		// Coherent session walk (delta/complement against the previous
		// cell's cut).
		ss, fs := sim.NewSession(), fb.NewSession()
		for _, c := range cells {
			a, err := ss.QueryCellCoherent(c, 0.002)
			if err != nil {
				t.Fatal(err)
			}
			b, err := fs.QueryCellCoherent(c, 0.002)
			if err != nil {
				t.Fatal(err)
			}
			sameItems(t, scheme.String()+"/coherent", a, b)
		}
	}

	// Only the measured wall-clock diverges between the backends.
	if ms := sim.DiskStats().MeasuredTime; ms != 0 {
		t.Fatalf("simulated backend charged MeasuredTime %v", ms)
	}
	if fb.DiskStats().MeasuredTime <= 0 {
		t.Fatal("file backend charged no MeasuredTime")
	}
}

func TestBackendDifferentialRaw(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	runDifferential(t, dir)
}

func TestBackendDifferentialCodec(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scene.Blocks = 2
	cfg.GridCells = 4
	cfg.DoVRays = 128
	cfg.Scene.NominalBytes = 4 << 20
	cfg.Codec = true
	db, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	runDifferential(t, dir)
}

// TestShardingFileBacked shards a file-backed database: every shard arm
// clones the media into its own sibling page file, answers must match
// the unsharded ones, and Close must remove the ephemeral clone files.
func TestShardingFileBacked(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	fb, err := OpenWith(dir, StorageConfig{Backend: BackendFile})
	if err != nil {
		t.Fatal(err)
	}
	base := make([]string, fb.NumCells())
	s := fb.NewSession()
	for c := range base {
		res, err := s.QueryCell(c, 0.003)
		if err != nil {
			t.Fatal(err)
		}
		base[c] = publicFingerprint(res)
	}
	if err := fb.EnableSharding(ShardConfig{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	clones, err := filepath.Glob(filepath.Join(dir, "pages.dat.clone*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(clones) != 2 {
		t.Fatalf("sharding created %d clone page files, want 2: %v", len(clones), clones)
	}
	ss := fb.NewSession()
	for c := range base {
		res, err := ss.QueryCell(c, 0.003)
		if err != nil {
			t.Fatal(err)
		}
		if publicFingerprint(res) != base[c] {
			t.Fatalf("cell %d: sharded file-backed answer diverged", c)
		}
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	for _, c := range clones {
		if _, err := os.Stat(c); !os.IsNotExist(err) {
			t.Fatalf("clone page file %s survived Close: %v", c, err)
		}
	}
}

// TestBuildFileBacked exercises the other entry point: Build directly
// onto the file backend, with the page file in a caller-named directory,
// then Save and a file-backed reopen.
func TestBuildFileBacked(t *testing.T) {
	pagesDir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Scene.Blocks = 2
	cfg.GridCells = 4
	cfg.DoVRays = 128
	cfg.Scene.NominalBytes = 4 << 20
	cfg.Storage = StorageConfig{Backend: BackendFile, Dir: pagesDir}
	db, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := os.Stat(filepath.Join(pagesDir, "pages.dat")); err != nil {
		t.Fatalf("page file not created: %v", err)
	}
	res, err := db.QueryCell(0, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Fetch(res); err != nil {
		t.Fatal(err)
	}
	if db.DiskStats().MeasuredTime <= 0 {
		t.Fatal("file-backed build charged no MeasuredTime")
	}
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	re, err := OpenWith(dir, StorageConfig{Backend: BackendFile})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	a, err := db.QueryCell(1, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	b, err := re.QueryCell(1, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	sameItems(t, "file-backed save/reopen", a, b)
}
