package hdov

import (
	"fmt"
	"time"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/render"
)

// Item is one element of a visibility-query answer: either an object at a
// chosen LoD level, or an internal LoD standing in for a whole subtree.
type Item struct {
	// ObjectID is the object (>= 0), or -1 for internal-LoD items.
	ObjectID int64
	// NodeID identifies the subtree of an internal-LoD item (-1 for
	// object items).
	NodeID int32
	// DoV is the degree of visibility that selected this item.
	DoV float64
	// Detail is the continuous detail coefficient of equations 5/6.
	Detail float64
	// Level is the discrete LoD level retrieved (0 = finest).
	Level int
	// Polygons is the interpolated polygon count.
	Polygons float64
	// Bytes is the payload's nominal on-disk size.
	Bytes int64
}

// Internal reports whether the item is an internal (aggregate) LoD.
func (it Item) Internal() bool { return it.NodeID >= 0 }

// Degradation records one absorbed media fault in a fault-tolerant query:
// which branch was lost, why, and which internal LoD stood in for it.
type Degradation struct {
	// Node is the subtree whose data failed (-1 for cell-flip faults and
	// for object-payload faults).
	Node int32
	// Object is the object whose payload failed (-1 unless the failure
	// was an object payload).
	Object int64
	// Cause classifies the failed read: "node-record", "v-page",
	// "payload" or "cell-flip".
	Cause string
	// Page is the first failing disk page (-1 for decode failures on
	// readable pages).
	Page int64
	// SubstituteNode and SubstituteLevel identify the internal LoD that
	// stood in for the lost branch (-1 / -1 if nothing readable was found
	// — the branch is simply absent from the answer).
	SubstituteNode  int32
	SubstituteLevel int
}

// Result is a visibility-query answer with its cost accounting.
type Result struct {
	// Cell is the viewing cell the query ran in.
	Cell int
	// Eta is the DoV threshold used.
	Eta float64
	// Items is the answer set.
	Items []Item
	// LightIO and HeavyIO are the page reads charged to index traffic
	// (nodes, V-pages) and to model payloads, respectively.
	LightIO, HeavyIO int64
	// SimTime is the simulated disk time of the query (and of Fetch, if
	// it has run on this result).
	SimTime time.Duration
	// Polygons and Bytes total the answer set.
	Polygons float64
	Bytes    int64
	// NodesVisited and EarlyStops describe the traversal.
	NodesVisited, EarlyStops int
	// Retries counts transient read faults the disk retried away during
	// this query (nonzero only under fault injection).
	Retries int64
	// Degradations lists the media faults absorbed by degraded-mode
	// traversal (empty unless fault tolerance is on and faults fired).
	Degradations []Degradation

	inner *core.QueryResult
}

func wrapResult(r *core.QueryResult) *Result {
	out := &Result{
		Cell:         int(r.Cell),
		Eta:          r.Eta,
		LightIO:      r.Stats.LightIO,
		HeavyIO:      r.Stats.HeavyIO,
		SimTime:      r.Stats.SimTime,
		Polygons:     r.Stats.TotalPolygons,
		Bytes:        r.Stats.TotalBytes,
		NodesVisited: r.Stats.NodesVisited,
		EarlyStops:   r.Stats.EarlyStops,
		Retries:      r.Stats.Retries,
		inner:        r,
	}
	if len(r.Degradations) > 0 {
		out.Degradations = make([]Degradation, len(r.Degradations))
		for i, d := range r.Degradations {
			out.Degradations[i] = Degradation{
				Node:            int32(d.Node),
				Object:          d.Object,
				Cause:           d.Cause.String(),
				Page:            int64(d.Page),
				SubstituteNode:  int32(d.SubstituteNode),
				SubstituteLevel: d.SubstituteLevel,
			}
		}
	}
	out.Items = make([]Item, len(r.Items))
	for i, it := range r.Items {
		out.Items[i] = Item{
			ObjectID: it.ObjectID,
			NodeID:   int32(it.NodeID),
			DoV:      it.DoV,
			Detail:   it.Detail,
			Level:    it.Level,
			Polygons: it.Polygons,
			Bytes:    it.Extent.NominalBytes,
		}
	}
	return out
}

// Query answers the visibility query at viewpoint p with the given DoV
// threshold eta (Figure 3 of the paper): every visible object either
// appears directly at its equation-6 LoD or is covered by an ancestor's
// internal LoD. Light I/O (node records, V-pages, cell flip) is charged;
// call Fetch to charge payload retrieval.
func (db *DB) Query(p Point, eta float64) (*Result, error) {
	cell := db.tree.Grid.Locate(p.vec())
	if cell == cells.NoCell {
		return nil, ErrOutsideCells
	}
	return db.QueryCell(int(cell), eta)
}

// QueryCell is Query for an explicit cell index.
func (db *DB) QueryCell(cell int, eta float64) (*Result, error) {
	if cell < 0 || cell >= db.NumCells() {
		return nil, fmt.Errorf("hdov: cell %d out of range [0,%d)", cell, db.NumCells())
	}
	r, err := db.tree.Query(cells.CellID(cell), eta)
	if err != nil {
		return nil, err
	}
	return wrapResult(r), nil
}

// QueryNaive answers with the (cell, list-of-objects) baseline of §5.3.
func (db *DB) QueryNaive(p Point) (*Result, error) {
	cell := db.tree.Grid.Locate(p.vec())
	if cell == cells.NoCell {
		return nil, ErrOutsideCells
	}
	r, err := db.naive.Query(cell)
	if err != nil {
		return nil, err
	}
	return wrapResult(r), nil
}

// Fetch charges the heavy-weight I/O of retrieving every item's payload
// and updates the result's I/O and time accounting. In fault-tolerant
// mode an unreadable payload degrades the item to a coarser readable
// level (recorded in Degradations) instead of failing the call.
func (db *DB) Fetch(r *Result) error {
	return fetchOn(db.tree, r)
}

// Mesh is decoded triangle geometry.
type Mesh struct {
	Vertices  []Point
	Triangles [][3]int
}

// LoadMesh decodes the actual geometry of a result item (charging heavy
// I/O), for rendering or export.
func (db *DB) LoadMesh(it Item) (*Mesh, error) {
	var inner core.ResultItem
	found := false
	// Relocate the payload extent from the item identity.
	if it.ObjectID >= 0 {
		exts := db.tree.ObjExtents[it.ObjectID]
		if it.Level < 0 || it.Level >= len(exts) {
			return nil, fmt.Errorf("hdov: level %d out of range", it.Level)
		}
		inner = core.ResultItem{ObjectID: it.ObjectID, NodeID: core.NilNode, Level: it.Level, Extent: exts[it.Level]}
		found = true
	} else if int(it.NodeID) >= 0 && int(it.NodeID) < db.tree.NumNodes() {
		n := db.tree.Nodes[it.NodeID]
		if it.Level < 0 || it.Level >= len(n.InternalExtents) {
			return nil, fmt.Errorf("hdov: level %d out of range", it.Level)
		}
		inner = core.ResultItem{ObjectID: -1, NodeID: core.NodeID(it.NodeID), Level: it.Level, Extent: n.InternalExtents[it.Level]}
		found = true
	}
	if !found {
		return nil, fmt.Errorf("hdov: item identifies neither object nor node")
	}
	m, err := db.tree.LoadMesh(inner)
	if err != nil {
		return nil, err
	}
	out := &Mesh{
		Vertices:  make([]Point, m.NumVerts()),
		Triangles: make([][3]int, m.NumTriangles()),
	}
	for i, v := range m.Verts {
		out.Vertices[i] = fromVec(v)
	}
	for i := 0; i < m.NumTriangles(); i++ {
		out.Triangles[i] = [3]int{int(m.Tris[3*i]), int(m.Tris[3*i+1]), int(m.Tris[3*i+2])}
	}
	return out, nil
}

// Fidelity scores an answer set against ground-truth visibility at a
// viewpoint (the quantitative form of the paper's Figure 11).
type Fidelity struct {
	// VisibleObjects is the ground-truth count of visible objects.
	VisibleObjects int
	// CoveredObjects is how many the answer represents (directly or via
	// internal LoDs); MissedObjects is the remainder.
	CoveredObjects, MissedObjects int
	// Coverage is covered DoV mass / total DoV mass, in [0, 1].
	Coverage float64
	// DetailFidelity weights covered DoV mass by effective rendered
	// detail (polygon budget relative to full detail), in [0, 1].
	DetailFidelity float64
}

// Fidelity evaluates how faithfully r reproduces the truly visible scene
// at viewpoint p. Computing ground truth casts DoVRays rays, so this is an
// analysis call, not a per-frame one.
func (db *DB) Fidelity(p Point, r *Result) Fidelity {
	truth := db.fidelityTruth(p)
	f := render.Evaluate(db.tree, r.inner.Items, truth)
	return Fidelity{
		VisibleObjects: f.VisibleObjects,
		CoveredObjects: f.CoveredObjects,
		MissedObjects:  f.MissedObjects,
		Coverage:       f.Coverage,
		DetailFidelity: f.DetailFidelity,
	}
}

// DiskStats is the I/O accounting snapshot of the database's disk.
type DiskStats struct {
	Reads, Seeks, LightReads, HeavyReads int64
	// Retries counts transient read faults absorbed by the disk's bounded
	// retry loop (nonzero only under fault injection).
	Retries int64
	SimTime time.Duration
	// MeasuredTime is wall-clock time spent in real media I/O. It is zero
	// on the simulated backend and positive on BackendFile, where it sits
	// alongside the simulated SimTime so the two models can be compared on
	// the same workload.
	MeasuredTime time.Duration
	// PoolHits and PoolMisses count buffer-pool lookups (zero unless
	// SetCacheSize installed a pool). Hits charge no seek or transfer.
	PoolHits, PoolMisses int64
	// PrefetchHits counts demand reads served by a page the background
	// prefetcher warmed; PrefetchWasted counts warmed pages evicted or
	// invalidated before any demand read used them. Together they price
	// the speculative I/O: hits flattened a cell-entry spike, wasted ones
	// were pure overhead.
	PrefetchHits, PrefetchWasted int64
	// VDCacheHits counts V-data decodes served from the horizontal
	// scheme's per-view cell cache (zero unless EnableVDCache).
	VDCacheHits int64
	// CoalescedReads counts buffer-pool misses that piggybacked on
	// another session's in-flight read of the same page instead of
	// performing a second physical read (zero without a pool).
	CoalescedReads int64
}

// DiskStats returns the cumulative disk accounting, summed over every
// session (Session.Stats reports one session's own share). On a sharded
// database the sum spans the single-store disk plus every shard primary
// and replica, so no store's traffic is dropped from the aggregate;
// ShardDiskStats gives the per-shard breakdown.
func (db *DB) DiskStats() DiskStats {
	sum := db.disk.Stats()
	if r := db.currentRouter(); r != nil {
		for _, s := range r.ShardStats() {
			sum = sum.Add(s)
		}
		for _, s := range r.ReplicaStats() {
			sum = sum.Add(s)
		}
	}
	return diskStatsFrom(sum)
}

// ResetDiskStats zeroes the cumulative counters, including every shard
// store's when sharding is enabled.
func (db *DB) ResetDiskStats() {
	db.disk.ResetStats()
	if r := db.currentRouter(); r != nil {
		r.ResetStats()
	}
}
