package hdov

import (
	"context"
	"testing"
	"time"
)

// TestServeChaosSmoke is the CI chaos probe: one ServeContext run with
// everything hostile turned on at once — seeded media faults (transient
// and permanent), jittered retry backoff, a circuit breaker, tight
// admission, fidelity shedding, and a per-frame budget. The contract
// under fire is the PR's headline: clients shed fidelity and skip
// frames, but not one of them sees a hard error, and the database comes
// back clean for whoever runs next.
func TestServeChaosSmoke(t *testing.T) {
	db := testDB(t)
	restoreFaultState(t, db)
	t.Cleanup(func() { db.SetBreaker(BreakerConfig{}) })

	db.SetFaultTolerant(true)
	db.InjectFaults(FaultPlan{
		Seed: 13, PageProb: 0.01, TransientFrac: 0.6,
		MaxRetries: 3, RetryJitter: true,
	})
	db.SetBreaker(BreakerConfig{RegionPages: 64, Threshold: 3, Cooldown: 32})

	stats, err := db.ServeContext(context.Background(), WalkOptions{
		Frames:      150,
		Eta:         0.001,
		Delta:       true,
		FrameBudget: 250 * time.Millisecond,
		Admission:   &AdmissionConfig{MaxConcurrent: 2, MaxQueue: 2},
		Shed:        &ShedConfig{Target: 2 * time.Millisecond},
	}, 6)
	if err != nil {
		t.Fatalf("chaos serve failed to launch: %v", err)
	}
	if stats.Errors != 0 {
		for _, c := range stats.PerClient {
			if c.Err != "" {
				t.Errorf("client error: %s", c.Err)
			}
		}
		t.Fatalf("%d of %d clients aborted under chaos", stats.Errors, stats.Clients)
	}
	if stats.Queries == 0 {
		t.Fatal("no queries served")
	}
	if stats.Degradations == 0 {
		t.Fatal("seeded faults and shedding produced zero degradations")
	}

	// The run must leave no residue: clear the injected chaos and the
	// next plain query answers strictly, with no retries and no shed.
	db.ClearFaults()
	db.SetBreaker(BreakerConfig{})
	db.SetFaultTolerant(false)
	res, err := db.Query(centerPoint(db), 0.001)
	if err != nil {
		t.Fatalf("post-chaos query failed: %v", err)
	}
	if len(res.Degradations) != 0 || res.Retries != 0 {
		t.Fatalf("chaos leaked into a clean run: %d degradations, %d retries",
			len(res.Degradations), res.Retries)
	}
}
