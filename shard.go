package hdov

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cells"
	"repro/internal/dbfile"
	"repro/internal/shard"
)

// Sharded serving (DESIGN.md §16): EnableSharding partitions the
// viewing-cell grid into contiguous cell-range shards, each served by a
// private store — a clone of the database disk with its own cost model,
// stream heads and buffer pool, and the tree plus all three storage
// schemes reopened over it. Sessions created afterwards route every
// query to its owning shard; answers are byte-identical to the
// unsharded baseline (the differential suite enforces this), but N
// shards give the workload N independent disk arms, which is where the
// shardscale experiment's near-linear throughput comes from.

// ShardConfig controls EnableSharding.
type ShardConfig struct {
	// Shards is the number of contiguous cell-range partitions (must be
	// in [1, NumCells]).
	Shards int
	// CachePagesPerShard installs a private buffer pool of that many
	// pages on every store (0 = none). SetCacheSize after enabling
	// splits its aggregate budget evenly instead.
	CachePagesPerShard int
	// TrimVPages releases each store's foreign V-pages — pages owned
	// exclusively by cells of other shards — so a shard's resident
	// footprint approaches its own range. Answers are unchanged (the
	// router never asks a store about foreign cells), but SaveSharded
	// rejects trimmed topologies: a trimmed image would fail the
	// per-shard codec fsck.
	TrimVPages bool
}

// EnableSharding partitions the current epoch across cfg.Shards stores
// and routes all sessions created afterwards through the shard router.
// Existing sessions are untouched (they pinned the unsharded tree).
// Enabling again with a different count re-partitions; Update re-shards
// automatically after installing a new epoch.
func (db *DB) EnableSharding(cfg ShardConfig) error {
	if cfg.Shards < 1 {
		return fmt.Errorf("hdov: sharding needs at least 1 shard, got %d", cfg.Shards)
	}
	r, err := db.buildRouter(cfg)
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.router = r
	db.shardCfg = cfg
	db.mu.Unlock()
	return nil
}

// buildRouter assembles a router over the current epoch's manifests.
func (db *DB) buildRouter(cfg ShardConfig) (*shard.Router, error) {
	db.mu.RLock()
	sc, tree := db.scene, db.tree
	man := shard.Manifests{
		Tree:  tree.Manifest(),
		H:     db.h.Manifest(),
		V:     db.v.Manifest(),
		IV:    db.iv.Manifest(),
		Naive: db.naive.Manifest(),
	}
	scheme := db.cfg.Scheme
	parallel := tree.Parallel
	ft := tree.FaultTolerant
	db.mu.RUnlock()
	r, err := shard.NewRouter(sc, db.disk, man, shard.Config{
		Shards:             cfg.Shards,
		Scheme:             shardScheme(scheme),
		Parallel:           parallel,
		FaultTolerant:      ft,
		CachePagesPerShard: cfg.CachePagesPerShard,
		Trim:               cfg.TrimVPages,
	})
	if err != nil {
		return nil, fmt.Errorf("hdov: sharding: %w", err)
	}
	return r, nil
}

// DisableSharding routes future sessions back through the single store.
// Existing routed sessions keep their pinned shard topology.
func (db *DB) DisableSharding() {
	db.mu.Lock()
	db.router = nil
	db.mu.Unlock()
}

// Sharded reports whether a shard router is active, and how many shards
// it partitions the grid into (0 when unsharded).
func (db *DB) Sharded() (shards int) {
	r := db.currentRouter()
	if r == nil {
		return 0
	}
	return r.Shards()
}

// currentRouter snapshots the active router (nil when unsharded).
func (db *DB) currentRouter() *shard.Router {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.router
}

// shardScheme maps the public scheme to the shard layer's.
func shardScheme(s Scheme) shard.Scheme {
	switch s {
	case SchemeHorizontal:
		return shard.SchemeHorizontal
	case SchemeVertical:
		return shard.SchemeVertical
	default:
		return shard.SchemeIndexedVertical
	}
}

// RebalanceHotCells mirrors the k hottest shard ranges — ranked by the
// per-cell hit EMAs every routed query feeds — onto replica stores.
// Sessions created afterwards spread round-robin across a hot shard's
// primary and mirrors; existing sessions keep their pinned topology, so
// no client ever observes a half-built replica. It returns the promoted
// shard indices (empty when no shard has recorded traffic) and is a
// no-op on an unsharded database.
func (db *DB) RebalanceHotCells(k int) ([]int, error) {
	r := db.currentRouter()
	if r == nil {
		return nil, nil
	}
	return r.PromoteHot(k)
}

// DropReplicas demotes every hot-range replica (no-op when unsharded).
func (db *DB) DropReplicas() {
	if r := db.currentRouter(); r != nil {
		r.DropReplicas()
	}
}

// DecayHeat folds the per-cell hit EMAs one tick toward zero, so
// RebalanceHotCells ranks recent traffic rather than all-time totals.
func (db *DB) DecayHeat() {
	if r := db.currentRouter(); r != nil {
		r.Heat().Decay()
	}
}

// ShardStats is one shard's accounting breakdown.
type ShardStats struct {
	// Shard is the partition index; Cells its owned cell range [Lo, Hi).
	Shard  int
	Lo, Hi int
	// Disk is the primary store's I/O accounting; Replica sums the
	// shard's mirrors (zero without replicas).
	Disk    DiskStats
	Replica DiskStats
	// Replicas is the current mirror count.
	Replicas int
	// Pool is the primary store's buffer-pool accounting.
	Pool PoolStats
}

// ShardDiskStats returns the per-shard accounting breakdown, indexed by
// shard (nil when unsharded). DB.DiskStats and DB.PoolStats report the
// aggregate sum of the same counters.
func (db *DB) ShardDiskStats() []ShardStats {
	r := db.currentRouter()
	if r == nil {
		return nil
	}
	tab := r.Table()
	prim := r.ShardStats()
	reps := r.ReplicaStats()
	pools := r.ShardPoolStats()
	out := make([]ShardStats, len(prim))
	for i := range out {
		lo, hi := tab.Map.Range(i)
		out[i] = ShardStats{
			Shard: i, Lo: int(lo), Hi: int(hi),
			Disk:     diskStatsFrom(prim[i]),
			Replica:  diskStatsFrom(reps[i]),
			Replicas: len(tab.Replicas[i]),
			Pool:     poolStatsFrom(pools[i]),
		}
	}
	return out
}

// shardMapManifest is the persisted form of the shard map
// (shardmap.json in a SaveSharded directory).
type shardMapManifest struct {
	NumCells int      `json:"num_cells"`
	Starts   []int    `json:"starts"`
	Dirs     []string `json:"dirs"`
}

// SaveSharded persists the sharded database: shardmap.json plus one
// complete dbfile directory per shard (shard-000, shard-001, ...), each
// independently openable and fsck-able — hdovfsck verifies every shard
// image and that the map exactly partitions the grid. Requires an
// active, untrimmed shard topology.
func (db *DB) SaveSharded(dir string) error {
	r := db.currentRouter()
	if r == nil {
		return fmt.Errorf("hdov: SaveSharded: sharding is not enabled")
	}
	db.mu.RLock()
	trimmed := db.shardCfg.TrimVPages
	db.mu.RUnlock()
	if trimmed {
		return fmt.Errorf("hdov: SaveSharded: trimmed stores cannot be persisted (foreign V-pages are released)")
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	tab := r.Table()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("hdov: SaveSharded: %w", err)
	}
	man := shardMapManifest{NumCells: tab.Map.NumCells}
	for i, st := range tab.Primaries {
		sub := fmt.Sprintf("shard-%03d", i)
		man.Starts = append(man.Starts, int(tab.Map.Starts[i]))
		man.Dirs = append(man.Dirs, sub)
		sdb := db.database()
		sdb.Disk = st.Disk
		sdb.Tree = st.Tree
		sdb.Horizontal = st.H
		sdb.Vertical = st.V
		sdb.Indexed = st.IV
		sdb.Naive = st.Naive
		if err := dbfile.Save(filepath.Join(dir, sub), sdb); err != nil {
			return fmt.Errorf("hdov: SaveSharded shard %d: %w", i, err)
		}
	}
	blob, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, "shardmap.json.tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("hdov: SaveSharded: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "shardmap.json")); err != nil {
		return fmt.Errorf("hdov: SaveSharded: %w", err)
	}
	return nil
}

// QueryMany scatter-gathers one visibility query per cell through the
// session: cells are grouped by owning shard, shards run concurrently,
// and results land in input order, byte-identical to issuing the
// queries one by one. On an unsharded session the batch runs serially.
func (s *Session) QueryMany(cellIDs []int, eta float64) ([]*Result, error) {
	if s.sh != nil {
		cs := make([]cells.CellID, len(cellIDs))
		for i, c := range cellIDs {
			if c < 0 || c >= s.sh.Grid().NumCells() {
				return nil, fmt.Errorf("hdov: cell %d out of range [0,%d)", c, s.sh.Grid().NumCells())
			}
			cs[i] = cells.CellID(c)
		}
		inner, err := s.sh.QueryMany(cs, eta)
		if err != nil {
			return nil, err
		}
		out := make([]*Result, len(inner))
		for i, r := range inner {
			out[i] = wrapResult(r)
		}
		return out, nil
	}
	out := make([]*Result, len(cellIDs))
	for i, c := range cellIDs {
		r, err := s.QueryCell(c, eta)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
