package hdov

import "testing"

// restoreFaultState puts the shared fixture back the way other tests
// expect it: no injector, no quarantine, strict mode.
func restoreFaultState(t *testing.T, db *DB) {
	t.Helper()
	t.Cleanup(func() {
		db.ClearFaults()
		db.SetFaultTolerant(false)
	})
}

func TestTransientFaultsThroughAPI(t *testing.T) {
	db := testDB(t)
	restoreFaultState(t, db)
	db.InjectFaults(FaultPlan{Seed: 11, PageProb: 1, TransientFrac: 1, MaxRetries: 4})
	res, err := db.Query(centerPoint(db), 0.001)
	if err != nil {
		t.Fatalf("transient-only faults failed a query: %v", err)
	}
	if res.Retries == 0 {
		t.Fatal("every read faulted but no retries surfaced")
	}
	if len(res.Degradations) != 0 {
		t.Fatalf("transient faults degraded the answer: %+v", res.Degradations)
	}
	if db.DiskStats().Retries == 0 {
		t.Fatal("DiskStats.Retries not wired")
	}
}

func TestDegradedModeThroughAPI(t *testing.T) {
	db := testDB(t)
	restoreFaultState(t, db)
	p := centerPoint(db)
	db.SetFaultTolerant(true)
	if !db.FaultTolerant() {
		t.Fatal("SetFaultTolerant did not stick")
	}
	db.InjectFaults(FaultPlan{Seed: 7, PageProb: 0.3, TransientFrac: 0})
	res, err := db.Query(p, 0.001)
	if err != nil {
		t.Fatalf("degraded mode aborted: %v", err)
	}
	if err := db.Fetch(res); err != nil {
		t.Fatalf("degraded fetch aborted: %v", err)
	}
	if len(res.Degradations) == 0 {
		t.Fatal("30% permanent faults produced no degradations")
	}
	for _, d := range res.Degradations {
		switch d.Cause {
		case "node-record", "v-page", "payload", "cell-flip":
		default:
			t.Fatalf("unknown degradation cause %q", d.Cause)
		}
	}

	// Strict mode with the same faults still injected must refuse.
	db.SetFaultTolerant(false)
	sawError := false
	for cell := 0; cell < db.NumCells() && !sawError; cell++ {
		if _, err := db.QueryCell(cell, 0.001); err != nil {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("strict mode absorbed permanent faults")
	}
}

func TestWalkthroughDegradationsThroughAPI(t *testing.T) {
	db := testDB(t)
	restoreFaultState(t, db)
	db.SetFaultTolerant(true)
	db.InjectFaults(FaultPlan{Seed: 3, PageProb: 0.01, TransientFrac: 0.5})
	ws, err := db.Walkthrough(WalkOptions{Frames: 60, Eta: 0.001, Delta: true})
	if err != nil {
		t.Fatalf("faulted walkthrough aborted: %v", err)
	}
	if ws.Frames != 60 {
		t.Fatalf("played %d frames, want 60", ws.Frames)
	}
	if ws.Degradations == 0 && ws.Retries == 0 {
		t.Fatal("1% faults over 60 frames left no trace in WalkStats")
	}
	if ws.DegradedFrames > ws.Frames {
		t.Fatalf("DegradedFrames %d > Frames %d", ws.DegradedFrames, ws.Frames)
	}
}
