package hdov

// Dynamic-scene tests at the public API level: the Update batch
// machinery, epoch pinning under a live writer, and the persistence
// round trip through Save + CommitEpoch + Open.

import (
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func dynConfig() Config {
	cfg := DefaultConfig()
	cfg.Scene.Blocks = 1
	cfg.Scene.BuildingsPerBlock = 3
	cfg.Scene.BlobsPerBlock = 2
	cfg.Scene.NominalBytes = 4 << 20
	cfg.Scene.Seed = 21
	cfg.GridCells = 2
	cfg.DoVRays = 128
	return cfg
}

// dynCanon renders a Result canonically (bit-exact floats, addresses
// included — both sides of every comparison share one disk).
func dynCanon(r *Result) string {
	s := fmt.Sprintf("cell=%d items=%d\n", r.Cell, len(r.Items))
	for _, it := range r.Items {
		s += fmt.Sprintf("obj=%d node=%d lvl=%d dov=%x det=%x poly=%x bytes=%d\n",
			it.ObjectID, it.NodeID, it.Level,
			math.Float64bits(it.DoV), math.Float64bits(it.Detail), math.Float64bits(it.Polygons), it.Bytes)
	}
	return s
}

func dynAnswers(t *testing.T, s *Session) map[int]string {
	t.Helper()
	out := make(map[int]string)
	for c := 0; c < s.tree.Grid.NumCells(); c++ {
		r, err := s.QueryCell(c, 0.001)
		if err != nil {
			t.Fatalf("cell %d: %v", c, err)
		}
		out[c] = dynCanon(r)
	}
	return out
}

func TestDynamicUpdateBasics(t *testing.T) {
	db, err := Build(dynConfig())
	if err != nil {
		t.Fatal(err)
	}
	n0 := db.NumObjects()
	if db.Epoch() != 0 {
		t.Fatalf("fresh build at epoch %d", db.Epoch())
	}

	st, err := db.Update(func(u *Updater) {
		u.Insert(InsertSpec{Seed: 9, X: 30, Y: 30, Radius: 2})
		u.Insert(InsertSpec{Seed: 10, X: 50, Y: 20, Radius: 1.5})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 || st.Ops != 2 || len(st.InsertedIDs) != 2 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if st.InsertedIDs[0] != int64(n0) || st.InsertedIDs[1] != int64(n0)+1 {
		t.Fatalf("inserted IDs %v, want dense from %d", st.InsertedIDs, n0)
	}
	if db.NumObjects() != n0+2 || db.NumAliveObjects() != n0+2 {
		t.Fatalf("object counts %d/%d after insert", db.NumObjects(), db.NumAliveObjects())
	}
	if st.PagesAppended <= 0 {
		t.Fatal("insert appended no pages")
	}

	if err := db.Delete(st.InsertedIDs[0]); err != nil {
		t.Fatal(err)
	}
	if db.NumObjects() != n0+2 || db.NumAliveObjects() != n0+1 {
		t.Fatalf("object counts %d/%d after delete (tombstone must keep IDs dense)",
			db.NumObjects(), db.NumAliveObjects())
	}
	if err := db.Delete(st.InsertedIDs[0]); err == nil {
		t.Fatal("double delete succeeded")
	}
	if err := db.Move(st.InsertedIDs[1], 5, -3, 0); err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != 3 {
		t.Fatalf("epoch %d after 3 batches", db.Epoch())
	}
	if _, err := db.Update(func(u *Updater) {}); err == nil {
		t.Fatal("empty batch succeeded")
	}

	// Every scheme still answers on the updated database.
	for _, sch := range []Scheme{SchemeHorizontal, SchemeVertical, SchemeIndexedVertical} {
		db.SetScheme(sch)
		r, err := db.QueryCell(0, 0.001)
		if err != nil {
			t.Fatalf("%v: %v", sch, err)
		}
		for _, it := range r.Items {
			if it.ObjectID == st.InsertedIDs[0] {
				t.Fatalf("%v: deleted object %d still answered", sch, it.ObjectID)
			}
		}
	}
}

// TestDynamicSnapshotIsolation pins a session, updates the database, and
// asserts the pinned session's answers never change while new sessions
// see the new epoch.
func TestDynamicSnapshotIsolation(t *testing.T) {
	db, err := Build(dynConfig())
	if err != nil {
		t.Fatal(err)
	}
	pinned := db.NewSession()
	before := dynAnswers(t, pinned)

	// (30, 30) sits on a street corner with a clear sightline from at
	// least one cell's sample viewpoint, so the insert is visible at eta 0.
	st, err := db.Update(func(u *Updater) {
		u.Insert(InsertSpec{Seed: 5, X: 30, Y: 30, Radius: 3})
	})
	if err != nil {
		t.Fatal(err)
	}

	after := dynAnswers(t, pinned)
	for c, v := range before {
		if after[c] != v {
			t.Fatalf("pinned session's answer changed at cell %d:\n%s\nvs\n%s", c, v, after[c])
		}
	}
	// A fresh session must see the inserted object somewhere.
	fresh := db.NewSession()
	seen := false
	for c := 0; c < db.NumCells(); c++ {
		r, err := fresh.QueryCell(c, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range r.Items {
			if it.ObjectID == st.InsertedIDs[0] {
				seen = true
			}
		}
	}
	if !seen {
		t.Fatalf("inserted object %d invisible to fresh sessions at eta 0", st.InsertedIDs[0])
	}
}

// TestDynamicWriterReaderStress: one writer applying update batches while
// 8 readers continuously run coherent queries through their own sessions.
// Run under -race in CI, this is the snapshot-isolation gate: readers
// must never observe an error or a torn answer, and a session created
// before all writes must answer byte-identically afterwards.
func TestDynamicWriterReaderStress(t *testing.T) {
	db, err := Build(dynConfig())
	if err != nil {
		t.Fatal(err)
	}
	pinned := db.NewSession()
	ref := dynAnswers(t, pinned)

	const readers = 8
	const batches = 5
	var wrote atomic.Int64
	done := make(chan struct{})
	errs := make(chan error, readers+1)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		var live []int64
		for i := 0; i < batches; i++ {
			st, err := db.Update(func(u *Updater) {
				u.Insert(InsertSpec{Seed: int64(100 + i), X: 20 + float64(i)*7, Y: 25 + float64(i)*5, Radius: 1.5})
				if len(live) > 1 {
					u.Move(live[0], 3, 2, 0)
					u.Delete(live[1])
					live = live[2:]
				}
			})
			if err != nil {
				errs <- fmt.Errorf("writer batch %d: %w", i, err)
				return
			}
			live = append(live, st.InsertedIDs...)
			wrote.Add(1)
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := db.NewSession()
				n := s.tree.Grid.NumCells()
				for c := 0; c < n; c++ {
					res, err := s.QueryCoherent(db.CellViewpoint(c), 0.001)
					if err != nil {
						errs <- fmt.Errorf("reader %d cell %d: %w", r, c, err)
						return
					}
					// The answer must be internally consistent with the
					// session's pinned epoch: no item may reference an
					// object the pinned scene does not have.
					for _, it := range res.Items {
						if it.ObjectID >= int64(len(s.tree.Scene.Objects)) {
							errs <- fmt.Errorf("reader %d cell %d: item references object %d beyond pinned scene (%d objects)",
								r, c, it.ObjectID, len(s.tree.Scene.Objects))
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if wrote.Load() != batches {
		t.Fatalf("writer completed %d/%d batches", wrote.Load(), batches)
	}
	if db.Epoch() != batches {
		t.Fatalf("epoch %d after %d batches", db.Epoch(), batches)
	}

	// The pre-write session still answers from epoch 0, byte for byte.
	again := dynAnswers(t, pinned)
	for c, v := range ref {
		if again[c] != v {
			t.Fatalf("pinned session's answer changed at cell %d after %d epochs:\n%s\nvs\n%s",
				c, batches, v, again[c])
		}
	}
}

// TestDynamicPersistRoundTrip: Save, evolve, CommitEpoch, reopen — the
// reopened database answers byte-identically to the live one, carries the
// op log, and remains updatable.
func TestDynamicPersistRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Build(dynConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}

	st, err := db.Update(func(u *Updater) {
		u.Insert(InsertSpec{Seed: 31, X: 33, Y: 44, Radius: 2})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Update(func(u *Updater) {
		u.Move(st.InsertedIDs[0], -4, 6, 0)
	}); err != nil {
		t.Fatal(err)
	}
	epoch, err := db.CommitEpoch(dir)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("first commit produced epoch %d", epoch)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Epoch() != 1 || re.NumObjects() != db.NumObjects() || re.NumAliveObjects() != db.NumAliveObjects() {
		t.Fatalf("reopened state: epoch %d, objects %d/%d", re.Epoch(), re.NumObjects(), re.NumAliveObjects())
	}
	live := dynAnswers(t, db.NewSession())
	back := dynAnswers(t, re.NewSession())
	for c, v := range live {
		if back[c] != v {
			t.Fatalf("reopened answers diverge at cell %d:\n%s\nvs\n%s", c, v, back[c])
		}
	}

	// The reopened database updates and commits again (second delta).
	if _, err := re.Update(func(u *Updater) {
		u.Insert(InsertSpec{Seed: 32, X: 55, Y: 15, Radius: 1})
	}); err != nil {
		t.Fatal(err)
	}
	if epoch, err = re.CommitEpoch(dir); err != nil || epoch != 2 {
		t.Fatalf("second commit: epoch %d, err %v", epoch, err)
	}
	re2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, b := dynAnswers(t, re.NewSession()), dynAnswers(t, re2.NewSession())
	for c, v := range a {
		if b[c] != v {
			t.Fatalf("after second commit, reopened answers diverge at cell %d", c)
		}
	}

	// A Save into the same directory compacts: the delta chain is
	// superseded and the database still opens to the same answers.
	if err := re2.Save(dir); err != nil {
		t.Fatal(err)
	}
	re3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c3 := dynAnswers(t, re3.NewSession())
	for c, v := range b {
		if c3[c] != v {
			t.Fatalf("after compacting save, answers diverge at cell %d", c)
		}
	}
}
