package hdov

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentSessionsDeterministic: with the pool disabled, every
// session must see the paper's exact single-client accounting (Figure 8
// page counts) no matter how many run at once, and identical answers.
func TestConcurrentSessionsDeterministic(t *testing.T) {
	db := testDB(t)
	p := centerPoint(db)
	cell := db.CellOf(p)

	ref, err := db.NewSession().QueryCell(cell, 0.001)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	results := make([]*Result, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := db.NewSession()
			results[i], errs[i] = s.QueryCell(cell, 0.001)
			if errs[i] != nil {
				return
			}
			st := s.Stats()
			if st.LightReads != ref.LightIO {
				errs[i] = fmt.Errorf("session light reads = %d, single-client reference = %d",
					st.LightReads, ref.LightIO)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if !reflect.DeepEqual(results[i].Items, ref.Items) {
			t.Fatalf("client %d items differ from reference", i)
		}
		if results[i].LightIO != ref.LightIO {
			t.Fatalf("client %d query light IO = %d, want %d", i, results[i].LightIO, ref.LightIO)
		}
	}
}

// TestConcurrentQueriesAndSave hammers one open DB from many goroutines —
// query+fetch traffic, concurrent crash-safe Saves, and pool
// reconfiguration — while the race detector watches. The saved snapshots
// must reopen to byte-identical answers.
func TestConcurrentQueriesAndSave(t *testing.T) {
	db := testDB(t)
	p := centerPoint(db)
	cell := db.CellOf(p)
	tmp := t.TempDir()

	ref, err := db.NewSession().QueryCell(cell, 0.001)
	if err != nil {
		t.Fatal(err)
	}

	db.SetCacheSize(1 << 12)
	defer db.SetCacheSize(0)

	const clients = 6
	const perClient = 12
	var wg sync.WaitGroup
	errs := make([]error, clients+3)

	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := db.NewSession()
			for q := 0; q < perClient; q++ {
				c := (cell + i + q) % db.NumCells()
				r, err := s.QueryCell(c, 0.001)
				if err != nil {
					errs[i] = err
					return
				}
				if q == 0 {
					if err := s.Fetch(r); err != nil {
						errs[i] = err
						return
					}
				}
			}
		}(i)
	}
	// Two concurrent savers snapshotting mid-traffic.
	dirs := []string{filepath.Join(tmp, "a"), filepath.Join(tmp, "b")}
	for j, dir := range dirs {
		wg.Add(1)
		go func(j int, dir string) {
			defer wg.Done()
			errs[clients+j] = db.Save(dir)
		}(j, dir)
	}
	// One goroutine resizing the pool under load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, n := range []int{1 << 10, 0, 1 << 12} {
			db.SetCacheSize(n)
		}
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// Snapshots taken under live read traffic must reopen cleanly and
	// answer exactly like the live database.
	for _, dir := range dirs {
		re, err := Open(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		got, err := re.QueryCell(cell, 0.001)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if !reflect.DeepEqual(got.Items, ref.Items) {
			t.Fatalf("%s: reopened answer differs from live database", dir)
		}
	}
}

// TestServeAPI plays concurrent walkthrough clients through the public
// serving entry point and sanity-checks the aggregate accounting.
func TestServeAPI(t *testing.T) {
	db := testDB(t)
	db.SetCacheSize(1 << 12)
	defer db.SetCacheSize(0)

	stats, err := db.Serve(WalkOptions{Frames: 15, Eta: 0.001, Delta: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors > 0 {
		t.Fatalf("%d clients aborted: %+v", stats.Errors, stats.PerClient)
	}
	if stats.Clients != 3 || len(stats.PerClient) != 3 {
		t.Fatalf("clients = %d, per-client = %d", stats.Clients, len(stats.PerClient))
	}
	if stats.Queries <= 0 || stats.Throughput <= 0 {
		t.Fatalf("no served throughput: %+v", stats)
	}
	sum := 0
	for i, c := range stats.PerClient {
		if c.Queries <= 0 || c.Frames != 15 {
			t.Fatalf("client %d: %+v", i, c)
		}
		if c.Reads <= 0 {
			t.Fatalf("client %d charged no reads (per-session accounting broken)", i)
		}
		sum += c.Queries
	}
	if sum != stats.Queries {
		t.Fatalf("per-client queries sum %d != aggregate %d", sum, stats.Queries)
	}

	if ps := db.PoolStats(); ps.LightHits == 0 {
		t.Fatalf("shared pool saw no hits across 3 walkthrough clients: %+v", ps)
	}

	if _, err := db.Serve(WalkOptions{UseREVIEW: true}, 2); err == nil {
		t.Fatal("Serve accepted UseREVIEW")
	}
}
