// Quickstart: build a small city database, run one visibility query, fetch
// its payloads and check fidelity — the minimal end-to-end use of the
// public API.
package main

import (
	"fmt"
	"log"

	hdov "repro"
)

func main() {
	cfg := hdov.DefaultConfig()
	cfg.Scene.Blocks = 3
	cfg.GridCells = 8
	cfg.DoVRays = 1024
	cfg.Scene.NominalBytes = 64 << 20

	fmt.Println("building HDoV database (city, LoDs, R-tree, per-cell DoV)...")
	db, err := hdov.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d objects, %d tree nodes, %d viewing cells, %d MB nominal\n",
		db.NumObjects(), db.NumNodes(), db.NumCells(), db.NominalBytes()>>20)

	// Stand at a street intersection near the city center.
	eye := db.DefaultViewpoint()

	res, err := db.Query(eye, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvisibility query at %v (eta=0.001):\n", eye)
	fmt.Printf("  %d items (%d internal LoDs), %.0f polygons, %d KB payload\n",
		len(res.Items), countInternal(res.Items), res.Polygons, res.Bytes>>10)
	fmt.Printf("  traversal: %d nodes visited, %d branches answered early\n",
		res.NodesVisited, res.EarlyStops)
	fmt.Printf("  light I/O: %d pages in %v simulated disk time\n", res.LightIO, res.SimTime)

	// Show the five most visible items.
	fmt.Println("\nmost visible items:")
	top := topByDoV(res.Items, 5)
	for _, it := range top {
		kind := fmt.Sprintf("object %d", it.ObjectID)
		if it.Internal() {
			kind = fmt.Sprintf("internal LoD of node %d", it.NodeID)
		}
		fmt.Printf("  DoV %.4f  detail %.2f  level %d  %-26s %6.0f polys\n",
			it.DoV, it.Detail, it.Level, kind, it.Polygons)
	}

	// Retrieve the payloads (heavy I/O) and decode one mesh.
	if err := db.Fetch(res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfetched payloads: %d heavy pages, total simulated time %v\n",
		res.HeavyIO, res.SimTime)
	mesh, err := db.LoadMesh(res.Items[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded first item: %d vertices, %d triangles\n",
		len(mesh.Vertices), len(mesh.Triangles))

	// How faithful is the answer to what is actually visible from here?
	f := db.Fidelity(eye, res)
	fmt.Printf("\nfidelity: %d/%d visible objects covered (%.1f%% of DoV mass), detail %.2f\n",
		f.CoveredObjects, f.VisibleObjects, 100*f.Coverage, f.DetailFidelity)
}

func countInternal(items []hdov.Item) int {
	n := 0
	for _, it := range items {
		if it.Internal() {
			n++
		}
	}
	return n
}

func topByDoV(items []hdov.Item, n int) []hdov.Item {
	out := append([]hdov.Item(nil), items...)
	for i := 0; i < len(out) && i < n; i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].DoV > out[i].DoV {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}
