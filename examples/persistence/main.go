// Persistence: build a database once, save it to disk, reopen it and keep
// querying — the deployment flow the paper's heavy precomputation implies
// (its 1.6 GB dataset took ~1.02 s of DoV computation *per cell* across
// 4000+ cells; nobody rebuilds that per session).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	hdov "repro"
)

func main() {
	dir := filepath.Join(os.TempDir(), "hdov-example-db")
	defer os.RemoveAll(dir)

	cfg := hdov.DefaultConfig()
	cfg.Scene.Blocks = 3
	cfg.GridCells = 8
	cfg.DoVRays = 1024
	cfg.Scene.NominalBytes = 64 << 20

	fmt.Println("building database (the expensive precomputation)...")
	start := time.Now()
	db, err := hdov.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)

	if err := db.Save(dir); err != nil {
		log.Fatal(err)
	}
	var diskBytes int64
	for _, name := range []string{"manifest.json", "disk.img"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %-14s %8.2f MB\n", name, float64(st.Size())/(1<<20))
		diskBytes += st.Size()
	}
	fmt.Printf("  build %v, on-disk footprint %.2f MB\n\n", buildTime.Round(time.Millisecond), float64(diskBytes)/(1<<20))

	fmt.Println("reopening (checksum-verified, structure revalidated)...")
	start = time.Now()
	db2, err := hdov.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  open took %v (build was %v; the gap widens with DoV rays and cells)\n\n",
		time.Since(start).Round(time.Millisecond), buildTime.Round(time.Millisecond))

	// Same answers.
	eye := db.DefaultViewpoint()
	a, err := db.Query(eye, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	b, err := db2.Query(eye, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	same := len(a.Items) == len(b.Items)
	for i := range a.Items {
		if !same || a.Items[i] != b.Items[i] {
			same = false
			break
		}
	}
	fmt.Printf("query at %v: original %d items, reopened %d items, identical: %v\n",
		eye, len(a.Items), len(b.Items), same)
	if !same {
		log.Fatal("reopened database diverged")
	}

	// The reopened database runs full walkthroughs.
	ws, err := db2.Walkthrough(hdov.WalkOptions{
		Session: hdov.SessionNormal, Frames: 300, Eta: 0.001, Delta: true, Prefetch: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("walkthrough on reopened DB: %.2f ms/frame avg over %d frames, %.1f MB peak\n",
		ws.AvgFrameMS, ws.Frames, float64(ws.PeakMemoryBytes)/(1<<20))
}
