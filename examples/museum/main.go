// Museum: the indoor, extreme-occlusion regime. From inside a gallery
// room only that room's exhibits and thin doorway slices of neighbors are
// visible, so the HDoV-tree prunes almost the whole building, while
// REVIEW's spatial boxes drag in every hidden room they overlap — the
// "wasted I/O on hidden objects" problem the paper's introduction opens
// with, at its sharpest.
package main

import (
	"fmt"
	"log"

	hdov "repro"
)

func main() {
	cfg := hdov.DefaultConfig()
	cfg.Scene.Museum = true
	cfg.Scene.Blocks = 4 // 4x4 rooms
	cfg.GridCells = 12
	cfg.DoVRays = 2048
	cfg.Scene.NominalBytes = 100 << 20

	fmt.Println("building museum database (4x4 rooms, doorway-connected)...")
	db, err := hdov.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d objects (walls + exhibits), %d nodes, %d cells\n\n",
		db.NumObjects(), db.NumNodes(), db.NumCells())

	// Stand in a middle room.
	eye := db.DefaultViewpoint()
	res, err := db.Query(eye, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("from a middle room (%v):\n", eye)
	fmt.Printf("  HDoV query answers %d of %d objects — occlusion pruned %0.f%% of the building\n",
		len(res.Items), db.NumObjects(),
		100*(1-float64(len(res.Items))/float64(db.NumObjects())))
	fmt.Printf("  (%d branches cut outright for DoV=0, %d answered by internal LoDs)\n\n",
		db.NumObjects()-len(res.Items), countInternal(res.Items))

	// Walkthrough comparison: the gap between visibility and spatial
	// methods is widest indoors.
	vis, err := db.Walkthrough(hdov.WalkOptions{
		Session: hdov.SessionNormal, Frames: 600, Eta: 0.001, Delta: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	rev, err := db.Walkthrough(hdov.WalkOptions{
		Session: hdov.SessionNormal, Frames: 600, UseREVIEW: true, Delta: true, ReviewBoxDepth: 60,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("walkthrough through the galleries (600 frames):\n")
	fmt.Printf("  %-22s %8.2f ms/frame, %8.1f I/O per query, %6.1f MB peak\n",
		vis.System, vis.AvgFrameMS, vis.AvgQueryIO, float64(vis.PeakMemoryBytes)/(1<<20))
	fmt.Printf("  %-22s %8.2f ms/frame, %8.1f I/O per query, %6.1f MB peak\n",
		rev.System, rev.AvgFrameMS, rev.AvgQueryIO, float64(rev.PeakMemoryBytes)/(1<<20))
	fmt.Printf("\nREVIEW retrieves the exhibits of rooms it cannot see into;\n")
	fmt.Printf("the HDoV-tree's DoV=0 pruning never touches them.\n")
}

func countInternal(items []hdov.Item) int {
	n := 0
	for _, it := range items {
		if it.Internal() {
			n++
		}
	}
	return n
}
