// Visibility-analysis: sweep the DoV threshold eta at one viewpoint and
// watch the fidelity/performance trade-off the HDoV-tree is built around —
// the knob of §3.3 ("eta controls the visual quality and performance while
// traversing the tree").
package main

import (
	"fmt"
	"log"

	hdov "repro"
)

func main() {
	cfg := hdov.DefaultConfig()
	cfg.Scene.Blocks = 4
	cfg.GridCells = 12
	cfg.DoVRays = 4096 // resolve small thresholds
	cfg.Scene.NominalBytes = 200 << 20

	fmt.Println("building HDoV database...")
	db, err := hdov.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Use the cell's own DoV sample point so ground-truth fidelity is
	// measured exactly where the visibility field was precomputed.
	eye := db.CellViewpoint(db.CellOf(db.DefaultViewpoint()))
	fmt.Printf("viewpoint %v, cell %d\n\n", eye, db.CellOf(eye))

	fmt.Printf("%-10s %6s %9s %10s %9s %9s %9s %9s %8s\n",
		"eta", "items", "internal", "polygons", "light IO", "total IO", "time ms", "coverage", "detail")
	etas := []float64{0, 0.0005, 0.001, 0.002, 0.004, 0.008, 0.016}
	for _, eta := range etas {
		res, err := db.Query(eye, eta)
		if err != nil {
			log.Fatal(err)
		}
		light := res.LightIO
		if err := db.Fetch(res); err != nil {
			log.Fatal(err)
		}
		f := db.Fidelity(eye, res)
		internal := 0
		for _, it := range res.Items {
			if it.Internal() {
				internal++
			}
		}
		fmt.Printf("%-10g %6d %9d %10.0f %9d %9d %9.2f %9.3f %8.3f\n",
			eta, len(res.Items), internal, res.Polygons,
			light, res.LightIO+res.HeavyIO,
			float64(res.SimTime.Microseconds())/1000,
			f.Coverage, f.DetailFidelity)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - coverage stays at 1.000: unlike spatial methods, no visible object")
	fmt.Println("    is ever lost — distant ones collapse into internal LoDs instead")
	fmt.Println("  - I/O and time fall as eta grows; detail fidelity degrades gracefully")
	fmt.Println("  - eta=0 degenerates to the (cell, list-of-objects) method")

	// Also demonstrate the naive baseline equivalence at eta=0.
	nres, err := db.QueryNaive(eye)
	if err != nil {
		log.Fatal(err)
	}
	zres, err := db.Query(eye, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive baseline: %d items vs eta=0's %d items (same answer set)\n",
		len(nres.Items), len(zres.Items))
}
