// Storage-tuning: compare the three V-page storage schemes of the paper's
// §4 on the same database — disk footprint (Table 2) and query cost
// (Figure 7) — to pick a layout for a deployment.
package main

import (
	"fmt"
	"log"
	"time"

	hdov "repro"
)

func main() {
	cfg := hdov.DefaultConfig()
	cfg.Scene.Blocks = 4
	cfg.GridCells = 16
	cfg.DoVRays = 2048
	cfg.Scene.NominalBytes = 200 << 20

	fmt.Println("building HDoV database with all three storage schemes...")
	db, err := hdov.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	sz := db.StorageSizes()
	fmt.Printf("\nstorage footprint (Table 2):\n")
	fmt.Printf("  %-18s %8.2f MB\n", "horizontal", float64(sz.Horizontal)/(1<<20))
	fmt.Printf("  %-18s %8.2f MB\n", "vertical", float64(sz.Vertical)/(1<<20))
	fmt.Printf("  %-18s %8.2f MB\n", "indexed-vertical", float64(sz.IndexedVertical)/(1<<20))
	fmt.Printf("  horizontal is %.1fx the indexed-vertical footprint\n",
		float64(sz.Horizontal)/float64(sz.IndexedVertical))

	// Query-cost comparison: sweep every cell once per scheme at a few
	// thresholds and accumulate simulated search time.
	fmt.Printf("\nquery cost per scheme (avg over %d cells):\n", db.NumCells())
	fmt.Printf("  %-18s %12s %12s %12s\n", "scheme", "eta=0", "eta=0.001", "eta=0.008")
	for _, scheme := range []hdov.Scheme{hdov.SchemeHorizontal, hdov.SchemeVertical, hdov.SchemeIndexedVertical} {
		db.SetScheme(scheme)
		fmt.Printf("  %-18s", scheme)
		for _, eta := range []float64{0, 0.001, 0.008} {
			var total time.Duration
			for c := 0; c < db.NumCells(); c++ {
				res, err := db.QueryCell(c, eta)
				if err != nil {
					log.Fatal(err)
				}
				if err := db.Fetch(res); err != nil {
					log.Fatal(err)
				}
				total += res.SimTime
			}
			fmt.Printf(" %9.2f ms", float64(total.Microseconds())/1000/float64(db.NumCells()))
		}
		fmt.Println()
	}
	fmt.Println("\ntakeaway: indexed-vertical matches vertical's speed at the")
	fmt.Println("smallest footprint; horizontal pays a seek per V-page access.")
}
