// Citywalk: play the three walkthrough sessions of the paper's §5.4 on
// both VISUAL (the HDoV-tree system) and REVIEW (the R-tree window-query
// baseline), reproducing the comparison behind Figures 10/12 and Table 3.
package main

import (
	"fmt"
	"log"

	hdov "repro"
)

func main() {
	cfg := hdov.DefaultConfig()
	cfg.Scene.Blocks = 4
	cfg.GridCells = 12
	cfg.DoVRays = 2048
	cfg.Scene.NominalBytes = 200 << 20

	fmt.Println("building HDoV database...")
	db, err := hdov.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d objects, %d nodes, %d cells\n\n", db.NumObjects(), db.NumNodes(), db.NumCells())

	const frames = 900
	sessions := []hdov.SessionKind{hdov.SessionNormal, hdov.SessionTurning, hdov.SessionBackForward}

	fmt.Printf("%-14s %-22s %10s %10s %10s %10s %9s\n",
		"session", "system", "frame ms", "variance", "query ms", "query IO", "peak MB")
	for _, s := range sessions {
		visual, err := db.Walkthrough(hdov.WalkOptions{
			Session: s, Frames: frames, Eta: 0.001, Delta: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		review, err := db.Walkthrough(hdov.WalkOptions{
			Session: s, Frames: frames, UseREVIEW: true, Delta: true, ReviewBoxDepth: 400,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range []*hdov.WalkStats{visual, review} {
			fmt.Printf("%-14s %-22s %10.2f %10.2f %10.2f %10.1f %9.1f\n",
				s, r.System, r.AvgFrameMS, r.VarFrameMS, r.AvgQueryMS, r.AvgQueryIO,
				float64(r.PeakMemoryBytes)/(1<<20))
		}
	}

	// Show the Figure 10(a) effect on session 1: query frames spike, and
	// REVIEW's spikes are taller.
	fmt.Println("\nper-frame times, session 1, first 30 frames (v = VISUAL, r = REVIEW):")
	v, _ := db.Walkthrough(hdov.WalkOptions{Session: hdov.SessionNormal, Frames: 200, Eta: 0.001, Delta: true})
	r, _ := db.Walkthrough(hdov.WalkOptions{Session: hdov.SessionNormal, Frames: 200, UseREVIEW: true, Delta: true})
	for i := 0; i < 30; i++ {
		fmt.Printf("  frame %3d  v %8.2f ms   r %8.2f ms\n", i, v.FrameTimesMS[i], r.FrameTimesMS[i])
	}
}
