package dbfile

// File-backend integration: OpenWith(FileBacked) materializes the
// committed image + delta chain into a real page file and must agree
// byte-for-byte with the simulated open. The crash-point harness is
// replayed against it — the fsync-at-commit protocol makes the manifest
// rename the durable commit point on real media too — and the derived
// page file must never pollute fsck.

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cells"
)

func openFileBacked(t *testing.T, dir string, opts OpenOptions) *Database {
	t.Helper()
	opts.FileBacked = true
	db, err := OpenWith(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	return db
}

// sameImage serializes both disks and compares the bytes: the strongest
// equality the two media can offer.
func sameImage(t *testing.T, a, b *Database) bool {
	t.Helper()
	var ia, ib bytes.Buffer
	if _, err := a.Disk.WriteTo(&ia); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Disk.WriteTo(&ib); err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ia.Bytes(), ib.Bytes())
}

func TestOpenWithFileBackedMatchesSimulated(t *testing.T) {
	db := crashFixtureDB(t)
	dir := t.TempDir()
	if err := Save(dir, db); err != nil {
		t.Fatal(err)
	}
	sim, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []OpenOptions{{}, {NoMmap: true}} {
		fb := openFileBacked(t, dir, opts)
		if !fb.Disk.Timed() {
			t.Fatal("file-backed disk does not report Timed")
		}
		if sim.Disk.Timed() {
			t.Fatal("simulated disk reports Timed")
		}
		if _, err := os.Stat(filepath.Join(dir, PagesFileName)); err != nil {
			t.Fatalf("page file not materialized: %v", err)
		}
		if !sameImage(t, sim, fb) {
			t.Fatal("file-backed image differs from simulated")
		}
		// Queries answer identically off the real file.
		for c := 0; c < fb.Tree.Grid.NumCells(); c += 3 {
			want, err := sim.Tree.Query(cells.CellID(c), 0.002)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fb.Tree.Query(cells.CellID(c), 0.002)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Items) != len(got.Items) {
				t.Fatalf("cell %d: %d vs %d items", c, len(want.Items), len(got.Items))
			}
			for i := range want.Items {
				a, b := want.Items[i], got.Items[i]
				if a.ObjectID != b.ObjectID || a.NodeID != b.NodeID || a.Level != b.Level ||
					math.Abs(a.DoV-b.DoV) > 1e-12 {
					t.Fatalf("cell %d item %d: %+v vs %+v", c, i, a, b)
				}
			}
		}
		if fb.Disk.Stats().MeasuredTime <= 0 {
			t.Fatal("file-backed queries charged no MeasuredTime")
		}
		if sim.Disk.Stats().MeasuredTime != 0 {
			t.Fatal("simulated queries charged MeasuredTime")
		}
		// The page file is derived, not damage and not a stray.
		rep, err := Fsck(dir)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Intact() {
			t.Fatalf("fsck calls the directory damaged: %v", rep.Problems)
		}
		if len(rep.Stray) != 0 {
			t.Fatalf("derived page file reported stray: %v", rep.Stray)
		}
		found := false
		for _, d := range rep.Derived {
			if d == PagesFileName {
				found = true
			}
		}
		if !found {
			t.Fatalf("Derived = %v, want %s listed", rep.Derived, PagesFileName)
		}
		// Close before the next iteration reopens (and truncates) the
		// same page file.
		if err := fb.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSaveCrashFileBackedKeepsOldVersion replays the Save crash table
// against the file backend: after a crash at any write boundary over an
// existing database, a file-backed open still recovers the committed
// version, byte-identical to the simulated recovery.
func TestSaveCrashFileBackedKeepsOldVersion(t *testing.T) {
	db := crashFixtureDB(t)
	for _, stage := range crashStages {
		dir := t.TempDir()
		if err := Save(dir, db); err != nil {
			t.Fatal(err)
		}
		saveWithCrash(t, dir, stage, db)
		sim, err := Open(dir)
		if err != nil {
			t.Fatalf("stage %s: simulated recovery lost: %v", stage, err)
		}
		fb, err := OpenWith(dir, OpenOptions{FileBacked: true})
		if err != nil {
			t.Fatalf("stage %s: file-backed recovery lost: %v", stage, err)
		}
		if !sameImage(t, sim, fb) {
			t.Fatalf("stage %s: file-backed recovery diverged from simulated", stage)
		}
		if err := fb.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCommitEpochCrashFileBacked replays the epoch-commit crash table on
// the file backend: recovery lands on exactly the old or the new epoch,
// and the derived page file stays out of the stray list.
func TestCommitEpochCrashFileBacked(t *testing.T) {
	for _, tc := range epochCrashStages {
		t.Run(tc.stage, func(t *testing.T) {
			f := buildDynFixture(t)
			dir := t.TempDir()
			if err := Save(dir, f.db); err != nil {
				t.Fatal(err)
			}
			baseObjects := len(f.db.Scene.Objects)

			f.evolve(t, dynOps())
			crashPoint = tc.stage
			_, err := CommitEpoch(dir, f.db)
			crashPoint = ""
			if !errors.Is(err, errCrash) {
				t.Fatalf("CommitEpoch err = %v, want injected crash", err)
			}

			got := openFileBacked(t, dir, OpenOptions{})
			wantEpoch, wantObjects := 0, baseObjects
			if tc.committed {
				wantEpoch, wantObjects = 1, baseObjects+1
			}
			if got.Epoch != wantEpoch || len(got.Scene.Objects) != wantObjects {
				t.Fatalf("file-backed recovery: epoch %d with %d objects, want %d/%d",
					got.Epoch, len(got.Scene.Objects), wantEpoch, wantObjects)
			}
			rep, err := Fsck(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Intact() {
				t.Fatalf("fsck calls the recovered directory damaged: %v", rep.Problems)
			}
			for _, s := range rep.Stray {
				if s == PagesFileName {
					t.Fatal("derived page file swept as stray")
				}
			}
		})
	}
}
