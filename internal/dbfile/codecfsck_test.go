package dbfile_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dbfile"
	"repro/internal/testenv"
)

// saveCodecFixture saves a codec-layout database to a temp directory.
func saveCodecFixture(t *testing.T) (string, *testenv.Env) {
	t.Helper()
	cfg := testenv.Small()
	cfg.Codec = true
	env := testenv.Get(cfg)
	dir := t.TempDir()
	db := &dbfile.Database{
		Scene:      env.Scene,
		Disk:       env.Disk,
		Tree:       env.Tree,
		Horizontal: env.H,
		Vertical:   env.V,
		Indexed:    env.IV,
		Naive:      env.Naive,
	}
	if err := dbfile.Save(dir, db); err != nil {
		t.Fatal(err)
	}
	return dir, env
}

// TestFsckCodecIntact: an undamaged codec database passes every check,
// including the codec walk.
func TestFsckCodecIntact(t *testing.T) {
	dir, _ := saveCodecFixture(t)
	rep, err := dbfile.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Intact() || !rep.CodecOK {
		t.Fatalf("codec database not intact: %+v", rep)
	}
	if len(rep.BadCodecPages) != 0 {
		t.Fatalf("unexpected bad codec pages: %v", rep.BadCodecPages)
	}
}

// TestFsckCodecTamperAndRepair is the end-to-end damage story: corrupt a
// codec heap page inside a fully resealed image (manifest checksum, image
// CRC and layout all valid — only the codec walk can notice), verify fsck
// pins the damage to pages, repair by parking them in quarantine.json,
// and verify the repaired database reopens and fscks intact.
func TestFsckCodecTamperAndRepair(t *testing.T) {
	dir, _ := saveCodecFixture(t)

	// Reopen, flip bytes in the middle of the vertical codec heap, and
	// re-save: Save recomputes the image CRC and manifest checksum, so
	// the damage is sealed inside an otherwise valid database.
	db, err := dbfile.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := db.Vertical.Manifest()
	if !m.Codec {
		t.Fatal("fixture is not codec-built")
	}
	page, err := db.Disk.PeekPage(m.HeapBase)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), page...)
	for i := 2; i < 10 && i < len(tampered); i++ {
		tampered[i] ^= 0xA5
	}
	if err := db.Disk.WritePage(m.HeapBase, tampered); err != nil {
		t.Fatal(err)
	}
	if err := dbfile.Save(dir, db); err != nil {
		t.Fatal(err)
	}

	rep, err := dbfile.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ManifestOK || !rep.ImageOK || !rep.LayoutOK {
		t.Fatalf("tamper should only break the codec level: %+v", rep)
	}
	if rep.CodecOK || rep.Intact() {
		t.Fatalf("codec damage not detected: %+v", rep)
	}
	if len(rep.BadCodecPages) == 0 || len(rep.Problems) == 0 {
		t.Fatalf("no pages or problems reported: %+v", rep)
	}

	moved, err := dbfile.Repair(dir, rep)
	if err != nil {
		t.Fatal(err)
	}
	foundSidecar := false
	for _, name := range moved {
		if name == "quarantine.json" {
			foundSidecar = true
		}
	}
	if !foundSidecar {
		t.Fatalf("repair did not write quarantine.json (moved: %v)", moved)
	}

	// The repaired database fscks intact: the parked pages are known
	// damage, excused by the codec walk.
	rep2, err := dbfile.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Intact() {
		t.Fatalf("repaired database still damaged: %+v", rep2)
	}

	// And it reopens, with the damaged pages quarantined on the live disk.
	got, err := dbfile.Open(dir)
	if err != nil {
		t.Fatalf("repaired database does not open: %v", err)
	}
	for _, id := range rep.BadCodecPages {
		if !got.Disk.IsQuarantined(id) {
			t.Fatalf("page %d not quarantined after reopen", id)
		}
	}
}

// TestOpenBadQuarantineSidecar: a malformed or out-of-range sidecar is
// rejected, not silently ignored.
func TestOpenBadQuarantineSidecar(t *testing.T) {
	dir, _ := saveCodecFixture(t)
	qpath := filepath.Join(dir, "quarantine.json")

	if err := os.WriteFile(qpath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dbfile.Open(dir); !errors.Is(err, dbfile.ErrBadDatabase) {
		t.Fatalf("malformed sidecar: got %v, want ErrBadDatabase", err)
	}

	if err := os.WriteFile(qpath, []byte(`{"Pages":[999999999]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dbfile.Open(dir); !errors.Is(err, dbfile.ErrBadDatabase) {
		t.Fatalf("out-of-range sidecar: got %v, want ErrBadDatabase", err)
	}

	if err := os.Remove(qpath); err != nil {
		t.Fatal(err)
	}
	if _, err := dbfile.Open(dir); err != nil {
		t.Fatalf("open after removing sidecar: %v", err)
	}
}

// TestCodecSaveOpenRoundTrip: a codec database round-trips through Save
// and Open with identical query results against the in-memory original.
func TestCodecSaveOpenRoundTrip(t *testing.T) {
	dir, env := saveCodecFixture(t)
	got, err := dbfile.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Horizontal.Codec() || !got.Vertical.Codec() || !got.Indexed.Codec() {
		t.Fatal("codec flag lost through save/open")
	}
	if got.Horizontal.SizeBytes() != env.H.SizeBytes() ||
		got.Vertical.SizeBytes() != env.V.SizeBytes() ||
		got.Indexed.SizeBytes() != env.IV.SizeBytes() {
		t.Fatal("codec scheme sizes changed through save/open")
	}
	hu, hb := env.H.VPageFootprint()
	ghu, ghb := got.Horizontal.VPageFootprint()
	if hu != ghu || hb != ghb {
		t.Fatalf("horizontal footprint changed: (%d,%d) vs (%d,%d)", hu, hb, ghu, ghb)
	}
}
