package dbfile

// Crash-point table tests for the incremental commit protocol: CommitEpoch
// is killed at every write boundary in turn, and the directory must always
// recover to exactly the old epoch or the new one — never a torn state.
// The table mirrors the crashAt call sites in CommitEpoch; a new stage
// added to the protocol without a row here fails TestEpochCrashStagesCovered.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/scene"
	"repro/internal/storage"
	"repro/internal/vstore"
)

// dynFixture is a private (uncached, mutable) tiny database: epoch-commit
// tests evolve its disk in place, so it must not come from testenv.
type dynFixture struct {
	db  *Database
	vis *core.VisData
}

func buildDynFixture(t *testing.T) *dynFixture {
	t.Helper()
	p := scene.DefaultCityParams()
	p.BlocksX, p.BlocksY = 1, 1
	p.BuildingsPerBlock = 3
	p.BlobsPerBlock = 2
	p.BlobDetail = 6
	p.NominalBytes = 4 << 20
	p.Seed = 7
	sc := scene.Generate(p)
	bp := core.DefaultBuildParams()
	bp.Grid = cells.NewGrid(sc.ViewRegion, 2, 2)
	bp.DirsPerViewpoint = 128
	bp.SamplesPerCell = 1
	d := storage.NewDisk(0, storage.DefaultCostModel())
	tr, vis, err := core.Build(sc, d, bp)
	if err != nil {
		t.Fatal(err)
	}
	f := &dynFixture{vis: vis}
	f.db = &Database{Scene: sc, Disk: d, Tree: tr}
	f.rebuildSchemes(t)
	return f
}

func (f *dynFixture) rebuildSchemes(t *testing.T) {
	t.Helper()
	var err error
	if f.db.Horizontal, err = vstore.BuildHorizontalOpts(f.db.Disk, f.vis, vstore.Options{}); err != nil {
		t.Fatal(err)
	}
	if f.db.Vertical, err = vstore.BuildVerticalOpts(f.db.Disk, f.vis, vstore.Options{}); err != nil {
		t.Fatal(err)
	}
	if f.db.Indexed, err = vstore.BuildIndexedVerticalOpts(f.db.Disk, f.vis, vstore.Options{}); err != nil {
		t.Fatal(err)
	}
	if f.db.Naive, err = naive.Build(f.db.Tree, f.vis, 0); err != nil {
		t.Fatal(err)
	}
}

// evolve applies one update batch and rebuilds the derived stores, leaving
// f.db in the exact state DB.Update hands to CommitEpoch.
func (f *dynFixture) evolve(t *testing.T, ops []scene.Op) {
	t.Helper()
	t2, vis2, _, _, err := core.ApplyOps(f.db.Tree, f.vis, ops)
	if err != nil {
		t.Fatal(err)
	}
	f.db.Tree, f.vis = t2, vis2
	f.db.Scene = t2.Scene
	f.db.Epoch++
	f.db.Ops = append(f.db.Ops, ops...)
	f.rebuildSchemes(t)
}

// dynOps is the batch every crash-stage run commits: one insert (visible
// as an object-count change after recovery) and one move.
func dynOps() []scene.Op {
	return []scene.Op{
		{Kind: scene.OpInsert, Insert: &scene.InsertSpec{Seed: 3, X: 30, Y: 30, Radius: 1.5}},
		{Kind: scene.OpMove, ID: 0, DX: 2, DY: 1},
	}
}

// epochCrashStages enumerates every write boundary in CommitEpoch, in
// protocol order, with what the directory must recover to when the
// process dies there.
var epochCrashStages = []struct {
	stage string
	// committed: the manifest rename already happened, so recovery must
	// land on the NEW epoch; otherwise it must land on the old one.
	committed bool
	// strays the crash leaves for fsck to sweep (each matched as a
	// substring of the reported stray list).
	strays []string
}{
	{"epoch-tmp", false, []string{"epoch-1.img.tmp"}},
	{"epoch-rename", false, []string{"epoch-1.img"}},
	{"epoch-manifest-tmp", false, []string{"manifest.json.tmp", "epoch-1.img"}},
	{"epoch-manifest-rename", true, nil},
}

// TestEpochCrashStagesCovered pins the table to the implementation: every
// "epoch-*" crashAt call site in CommitEpoch must have a row, so adding a
// write boundary without deciding its recovery semantics fails loudly.
func TestEpochCrashStagesCovered(t *testing.T) {
	raw, err := os.ReadFile("dbfile.go")
	if err != nil {
		t.Fatal(err)
	}
	inTable := map[string]bool{}
	for _, s := range epochCrashStages {
		inTable[s.stage] = true
	}
	src := string(raw)
	for _, stage := range []string{"epoch-tmp", "epoch-rename", "epoch-manifest-tmp", "epoch-manifest-rename"} {
		if !strings.Contains(src, `"`+stage+`"`) {
			t.Errorf("stage %q in the table but not in dbfile.go", stage)
		}
		delete(inTable, stage)
	}
	for stage := range inTable {
		t.Errorf("stage %q in the table but unknown to this test's stage list", stage)
	}
	// Count the crashAt call sites mentioning epoch stages: a new one
	// must be added to both lists above.
	if n := strings.Count(src, `crashAt("epoch-`); n != 3 {
		t.Errorf("dbfile.go has %d crashAt(\"epoch-…\") sites, table knows 3 (epoch-manifest-tmp routes through writeFileAtomic)", n)
	}
}

// TestCommitEpochCrashTable kills CommitEpoch at each write boundary and
// asserts old-or-new recovery: Open always succeeds, the epoch is exactly
// the pre- or post-commit one, fsck calls the directory intact (listing
// the crash debris as strays), and after sweeping the debris the commit
// can be retried (or, past the commit point, the next epoch committed).
func TestCommitEpochCrashTable(t *testing.T) {
	for _, tc := range epochCrashStages {
		t.Run(tc.stage, func(t *testing.T) {
			f := buildDynFixture(t)
			dir := t.TempDir()
			if err := Save(dir, f.db); err != nil {
				t.Fatal(err)
			}
			baseObjects := len(f.db.Scene.Objects)

			f.evolve(t, dynOps())
			crashPoint = tc.stage
			_, err := CommitEpoch(dir, f.db)
			crashPoint = ""
			if !errors.Is(err, errCrash) {
				t.Fatalf("CommitEpoch err = %v, want injected crash", err)
			}

			// The directory must open — to the old epoch before the
			// manifest rename, to the new one after it.
			got, err := Open(dir)
			if err != nil {
				t.Fatalf("Open after crash: %v", err)
			}
			wantEpoch, wantObjects, wantOps := 0, baseObjects, 0
			if tc.committed {
				wantEpoch, wantObjects, wantOps = 1, baseObjects+1, len(dynOps())
			}
			if got.Epoch != wantEpoch || len(got.Scene.Objects) != wantObjects || len(got.Ops) != wantOps {
				t.Fatalf("recovered to epoch %d with %d objects, %d ops; want %d/%d/%d",
					got.Epoch, len(got.Scene.Objects), len(got.Ops), wantEpoch, wantObjects, wantOps)
			}

			// Fsck: intact either way (a pre-commit crash leaves a good old
			// version plus debris), with the expected strays reported.
			rep, err := Fsck(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Intact() {
				t.Fatalf("fsck calls the recovered directory damaged: %v", rep.Problems)
			}
			if rep.Epoch != wantEpoch || rep.OpsLogged != wantOps || rep.DeltasApplied != wantEpoch {
				t.Fatalf("fsck dynamic state: epoch %d, ops %d, deltas %d; want %d/%d/%d",
					rep.Epoch, rep.OpsLogged, rep.DeltasApplied, wantEpoch, wantOps, wantEpoch)
			}
			for _, want := range tc.strays {
				found := false
				for _, s := range rep.Stray {
					if s == want {
						found = true
					}
				}
				if !found {
					t.Fatalf("stray %q not reported (got %v)", want, rep.Stray)
				}
			}
			if tc.committed && len(rep.Stray) != 0 {
				t.Fatalf("clean commit left strays: %v", rep.Stray)
			}

			// Sweep the debris, then move forward: retry the interrupted
			// commit, or commit the next epoch on top of the landed one.
			if _, err := Repair(dir, rep); err != nil {
				t.Fatal(err)
			}
			if tc.committed {
				f.evolve(t, []scene.Op{{Kind: scene.OpMove, ID: 1, DX: -1, DY: 2}})
			}
			epoch, err := CommitEpoch(dir, f.db)
			if err != nil {
				t.Fatalf("commit after recovery: %v", err)
			}
			wantNext := 1
			if tc.committed {
				wantNext = 2
			}
			if epoch != wantNext {
				t.Fatalf("post-recovery commit produced epoch %d, want %d", epoch, wantNext)
			}
			reopened, err := Open(dir)
			if err != nil {
				t.Fatalf("open after post-recovery commit: %v", err)
			}
			if reopened.Epoch != wantNext || len(reopened.Ops) != len(f.db.Ops) {
				t.Fatalf("post-recovery state: epoch %d, %d ops; want %d, %d",
					reopened.Epoch, len(reopened.Ops), wantNext, len(f.db.Ops))
			}
		})
	}
}

// TestCommitEpochDeltaDamageRepair: a committed delta that is later
// damaged fails fsck (BadDeltas), Open rejects the chain, and Repair
// quarantines the pinning manifest together with the bad delta so a fresh
// Save restores the directory.
func TestCommitEpochDeltaDamageRepair(t *testing.T) {
	f := buildDynFixture(t)
	dir := t.TempDir()
	if err := Save(dir, f.db); err != nil {
		t.Fatal(err)
	}
	f.evolve(t, dynOps())
	if _, err := CommitEpoch(dir, f.db); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the committed delta.
	name := DeltaFileName(1)
	path := filepath.Join(dir, name)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir); !errors.Is(err, ErrBadDatabase) {
		t.Fatalf("Open err = %v, want ErrBadDatabase", err)
	}
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Intact() || rep.ImageOK {
		t.Fatal("fsck calls the damaged delta chain intact")
	}
	if len(rep.BadDeltas) != 1 || rep.BadDeltas[0] != name {
		t.Fatalf("BadDeltas = %v, want [%s]", rep.BadDeltas, name)
	}

	moved, err := Repair(dir, rep)
	if err != nil {
		t.Fatal(err)
	}
	movedSet := map[string]bool{}
	for _, m := range moved {
		movedSet[m] = true
	}
	if !movedSet[manifestName] || !movedSet[name] {
		t.Fatalf("repair moved %v, want the manifest and %s", moved, name)
	}
	// The directory is now manifest-less; a fresh Save of the live state
	// restores it, answers included.
	if err := Save(dir, f.db); err != nil {
		t.Fatalf("save after repair: %v", err)
	}
	got, err := Open(dir)
	if err != nil {
		t.Fatalf("open after repair+save: %v", err)
	}
	if got.Epoch != f.db.Epoch || len(got.Scene.Objects) != len(f.db.Scene.Objects) {
		t.Fatalf("restored epoch %d with %d objects, want %d/%d",
			got.Epoch, len(got.Scene.Objects), f.db.Epoch, len(f.db.Scene.Objects))
	}
}
