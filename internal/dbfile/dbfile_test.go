package dbfile_test

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cells"
	"repro/internal/dbfile"
	"repro/internal/testenv"
)

func saveFixture(t *testing.T) (string, *testenv.Env) {
	t.Helper()
	env := testenv.Get(testenv.Small())
	dir := t.TempDir()
	db := &dbfile.Database{
		Scene:      env.Scene,
		Disk:       env.Disk,
		Tree:       env.Tree,
		Horizontal: env.H,
		Vertical:   env.V,
		Indexed:    env.IV,
		Naive:      env.Naive,
	}
	if err := dbfile.Save(dir, db); err != nil {
		t.Fatal(err)
	}
	return dir, env
}

func TestSaveOpenRoundTrip(t *testing.T) {
	dir, env := saveFixture(t)
	got, err := dbfile.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tree.NumNodes() != env.Tree.NumNodes() {
		t.Fatalf("nodes %d vs %d", got.Tree.NumNodes(), env.Tree.NumNodes())
	}
	if len(got.Scene.Objects) != len(env.Scene.Objects) {
		t.Fatal("scene size changed")
	}
	if got.Tree.SMeasured != env.Tree.SMeasured || got.Tree.RhoMeasured != env.Tree.RhoMeasured {
		t.Fatal("measured constants changed")
	}
	// Node structure identical.
	for i, want := range env.Tree.Nodes {
		n := got.Tree.Nodes[i]
		if n.Leaf != want.Leaf || n.SubtreeHeight != want.SubtreeHeight ||
			n.LeafDescendants != want.LeafDescendants || len(n.Entries) != len(want.Entries) {
			t.Fatalf("node %d structure changed", i)
		}
		for ei := range want.Entries {
			a, b := n.Entries[ei], want.Entries[ei]
			if a.MBR != b.MBR || a.ChildID != b.ChildID || a.ObjectID != b.ObjectID ||
				a.DescCount != b.DescCount || a.DescPolys != b.DescPolys {
				t.Fatalf("node %d entry %d changed", i, ei)
			}
		}
		// Internal LoD meshes reloaded with identical polygon counts.
		if n.InternalLoD.NumLevels() != want.InternalLoD.NumLevels() {
			t.Fatalf("node %d LoD levels changed", i)
		}
		for li := range want.InternalPolys {
			if n.InternalLoD.Levels[li].NumTriangles() != want.InternalPolys[li] {
				t.Fatalf("node %d LoD %d polys changed", i, li)
			}
		}
	}
	// Storage sizes preserved.
	if got.Horizontal.SizeBytes() != env.H.SizeBytes() ||
		got.Vertical.SizeBytes() != env.V.SizeBytes() ||
		got.Indexed.SizeBytes() != env.IV.SizeBytes() ||
		got.Naive.SizeBytes() != env.Naive.SizeBytes() {
		t.Fatal("scheme sizes changed")
	}
}

func TestReopenedQueriesIdentical(t *testing.T) {
	dir, env := saveFixture(t)
	got, err := dbfile.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < env.Tree.Grid.NumCells(); c += 5 {
		for _, eta := range []float64{0, 0.002, 0.01} {
			env.Tree.SetVStore(env.IV)
			want, err := env.Tree.Query(cells.CellID(c), eta)
			if err != nil {
				t.Fatal(err)
			}
			have, err := got.Tree.Query(cells.CellID(c), eta)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Items) != len(have.Items) {
				t.Fatalf("cell %d eta %v: %d vs %d items", c, eta, len(want.Items), len(have.Items))
			}
			for i := range want.Items {
				a, b := want.Items[i], have.Items[i]
				if a.ObjectID != b.ObjectID || a.NodeID != b.NodeID || a.Level != b.Level ||
					math.Abs(a.DoV-b.DoV) > 1e-12 || a.Extent != b.Extent {
					t.Fatalf("cell %d eta %v item %d: %+v vs %+v", c, eta, i, a, b)
				}
			}
			// Naive agrees too.
			nw, err := env.Naive.Query(cells.CellID(c))
			if err != nil {
				t.Fatal(err)
			}
			nh, err := got.Naive.Query(cells.CellID(c))
			if err != nil {
				t.Fatal(err)
			}
			if len(nw.Items) != len(nh.Items) {
				t.Fatalf("cell %d: naive items differ", c)
			}
		}
	}
	// Payload fetch works on the reopened database.
	res, err := got.Tree.Query(0, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got.Tree.FetchPayloads(res, nil); err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Items {
		if _, err := got.Tree.LoadMesh(it); err != nil {
			t.Fatalf("reopened LoadMesh: %v", err)
		}
	}
}

func TestOpenErrors(t *testing.T) {
	dir, _ := saveFixture(t)

	// Missing directory.
	if _, err := dbfile.Open(filepath.Join(dir, "nope")); !errors.Is(err, dbfile.ErrBadDatabase) {
		t.Fatalf("missing dir: %v", err)
	}
	// Corrupt manifest.
	badDir := t.TempDir()
	copyFile(t, filepath.Join(dir, "disk.img"), filepath.Join(badDir, "disk.img"))
	if err := os.WriteFile(filepath.Join(badDir, "manifest.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dbfile.Open(badDir); !errors.Is(err, dbfile.ErrBadDatabase) {
		t.Fatalf("corrupt manifest: %v", err)
	}
	// Corrupt image.
	badDir2 := t.TempDir()
	copyFile(t, filepath.Join(dir, "manifest.json"), filepath.Join(badDir2, "manifest.json"))
	img, err := os.ReadFile(filepath.Join(dir, "disk.img"))
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0xff
	if err := os.WriteFile(filepath.Join(badDir2, "disk.img"), img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dbfile.Open(badDir2); !errors.Is(err, dbfile.ErrBadDatabase) {
		t.Fatalf("corrupt image: %v", err)
	}
	// Wrong format version.
	badDir3 := t.TempDir()
	copyFile(t, filepath.Join(dir, "disk.img"), filepath.Join(badDir3, "disk.img"))
	man, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	man2 := []byte(`{"FormatVersion": 999}`)
	_ = man
	if err := os.WriteFile(filepath.Join(badDir3, "manifest.json"), man2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dbfile.Open(badDir3); !errors.Is(err, dbfile.ErrBadDatabase) {
		t.Fatalf("bad version: %v", err)
	}
}

func TestSaveValidation(t *testing.T) {
	if err := dbfile.Save(t.TempDir(), nil); err == nil {
		t.Fatal("nil database accepted")
	}
	if err := dbfile.Save(t.TempDir(), &dbfile.Database{}); err == nil {
		t.Fatal("empty database accepted")
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
