package dbfile_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dbfile"
	"repro/internal/storage"
)

// TestOpenTruncatedImage: a disk.img cut short (torn write, full disk)
// must be rejected, never half-opened.
func TestOpenTruncatedImage(t *testing.T) {
	dir, _ := saveFixture(t)
	img := filepath.Join(dir, "disk.img")
	raw, err := os.ReadFile(img)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, 1, len(raw) / 2, len(raw) - 1} {
		if err := os.WriteFile(img, raw[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := dbfile.Open(dir); !errors.Is(err, dbfile.ErrBadDatabase) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrBadDatabase", keep, err)
		}
	}
}

// TestOpenMissingManifest: an image without its manifest is not a
// database.
func TestOpenMissingManifest(t *testing.T) {
	dir, _ := saveFixture(t)
	if err := os.Remove(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := dbfile.Open(dir); !errors.Is(err, dbfile.ErrBadDatabase) {
		t.Fatalf("err = %v, want ErrBadDatabase", err)
	}
}

// rewriteManifest loads the fixture manifest, applies mutate, reseals the
// checksum (unless the test wants it stale) and writes it back.
func rewriteManifest(t *testing.T, dir string, reseal bool, mutate func(*dbfile.Manifest)) {
	t.Helper()
	path := filepath.Join(dir, "manifest.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m dbfile.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	mutate(&m)
	if reseal {
		if err := m.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	out, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestOpenLayoutPointersOutOfRange: manifests whose layout pointers point
// past the image (resealed, so only deep validation can catch them) are
// rejected with a layout diagnostic.
func TestOpenLayoutPointersOutOfRange(t *testing.T) {
	mutations := map[string]func(*dbfile.Manifest){
		"node base": func(m *dbfile.Manifest) {
			m.Tree.NodePageBase = storage.PageID(1 << 40)
		},
		"node count": func(m *dbfile.Manifest) {
			m.Tree.NumNodes = 1 << 30
		},
		"object extent": func(m *dbfile.Manifest) {
			m.Tree.ObjExtents[0][0].Start = storage.PageID(1 << 40)
		},
		"vertical segments": func(m *dbfile.Manifest) {
			m.Vertical.SegBase = storage.PageID(1 << 40)
		},
	}
	for name, mutate := range mutations {
		dir, _ := saveFixture(t)
		rewriteManifest(t, dir, true, mutate)
		_, err := dbfile.Open(dir)
		if !errors.Is(err, dbfile.ErrBadDatabase) {
			t.Fatalf("%s: err = %v, want ErrBadDatabase", name, err)
		}
		if !strings.Contains(err.Error(), "exceed") && !strings.Contains(err.Error(), "stride") {
			t.Fatalf("%s: missing layout diagnostic: %v", name, err)
		}
	}
}

// TestOpenManifestChecksumMismatch: a manifest edited without resealing —
// bit rot or a hand edit — is rejected before anything else is trusted.
func TestOpenManifestChecksumMismatch(t *testing.T) {
	dir, _ := saveFixture(t)
	rewriteManifest(t, dir, false, func(m *dbfile.Manifest) {
		m.Tree.SMeasured += 0.001
	})
	_, err := dbfile.Open(dir)
	if !errors.Is(err, dbfile.ErrBadDatabase) {
		t.Fatalf("err = %v, want ErrBadDatabase", err)
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("missing checksum diagnostic: %v", err)
	}
}

// TestOpenStaleManifestImageMismatch: an old (valid, sealed) manifest next
// to an image it did not commit fails the size/CRC cross-check.
func TestOpenStaleManifestImageMismatch(t *testing.T) {
	dir, _ := saveFixture(t)
	img := filepath.Join(dir, "disk.img")
	raw, err := os.ReadFile(img)
	if err != nil {
		t.Fatal(err)
	}
	// Same length, different content: only the CRC cross-check can tell.
	raw[len(raw)/3] ^= 0x01
	if err := os.WriteFile(img, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = dbfile.Open(dir)
	if !errors.Is(err, dbfile.ErrBadDatabase) {
		t.Fatalf("err = %v, want ErrBadDatabase", err)
	}
	if !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("missing CRC diagnostic: %v", err)
	}
}

// TestFsckClassifiesIntactVsDamaged: Fsck says intact exactly when Open
// would accept.
func TestFsckClassifiesIntactVsDamaged(t *testing.T) {
	dir, _ := saveFixture(t)
	rep, err := dbfile.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Intact() || len(rep.Problems) != 0 {
		t.Fatalf("intact database reported damaged: %+v", rep)
	}

	img := filepath.Join(dir, "disk.img")
	raw, err := os.ReadFile(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(img, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = dbfile.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Intact() || rep.ImageOK || !rep.ManifestOK {
		t.Fatalf("truncated image misclassified: %+v", rep)
	}
	moved, err := dbfile.Repair(dir, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 1 || moved[0] != "disk.img" {
		t.Fatalf("repair moved %v, want just disk.img", moved)
	}
	if _, err := os.Stat(filepath.Join(dir, dbfile.QuarantineDirName, "disk.img")); err != nil {
		t.Fatalf("image not quarantined: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatalf("healthy manifest was removed: %v", err)
	}
}
