package dbfile

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/storage"
)

// FsckReport is the outcome of checking one database directory.
type FsckReport struct {
	Dir string
	// ManifestOK: manifest.json exists, parses, has the right format
	// version and a valid self-checksum.
	ManifestOK bool
	// ImageOK: disk.img exists, matches the manifest's committed size and
	// CRC, and parses as a disk image (internal checksum included).
	ImageOK bool
	// LayoutOK: every layout pointer in the manifest stays inside the
	// image.
	LayoutOK bool
	// Problems describes each failed check, in check order.
	Problems []string
	// Stray lists leftover temporary files from interrupted saves.
	Stray []string
}

// Intact reports whether the database passed every check (stray temp
// files alone do not make a database damaged — a crash before the commit
// point leaves them next to a perfectly good previous version).
func (r *FsckReport) Intact() bool {
	return r.ManifestOK && r.ImageOK && r.LayoutOK
}

func (r *FsckReport) problemf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Fsck checks a database directory without fully opening it: manifest
// parse + checksum, image size/CRC (file-level and internal), and layout
// pointer validation. It is read-only. The returned error covers only
// inability to inspect the directory itself, never a damaged database —
// damage is reported in the FsckReport.
func Fsck(dir string) (*FsckReport, error) {
	rep := &FsckReport{Dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dbfile: fsck: %w", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			rep.Stray = append(rep.Stray, e.Name())
		}
	}

	m, err := readManifest(dir)
	if err != nil {
		rep.problemf("manifest: %v", err)
		return rep, nil
	}
	rep.ManifestOK = true

	raw, err := os.ReadFile(filepath.Join(dir, imageName))
	if err != nil {
		rep.problemf("image: %v", err)
		return rep, nil
	}
	if int64(len(raw)) != m.ImageBytes {
		rep.problemf("image: %d bytes, manifest committed %d (torn save?)", len(raw), m.ImageBytes)
		return rep, nil
	}
	if sum := crc32.ChecksumIEEE(raw); sum != m.ImageCRC32 {
		rep.problemf("image: CRC %08x, manifest committed %08x (stale or torn image)", sum, m.ImageCRC32)
		return rep, nil
	}
	disk, err := storage.ReadImage(bytes.NewReader(raw), storage.DefaultCostModel())
	if err != nil {
		rep.problemf("image: %v", err)
		return rep, nil
	}
	rep.ImageOK = true

	if err := validateLayout(m, disk); err != nil {
		rep.problemf("layout: %v", err)
		return rep, nil
	}
	rep.LayoutOK = true
	return rep, nil
}

// QuarantineDirName is where Repair moves damaged artifacts, inside the
// database directory.
const QuarantineDirName = "quarantine"

// Repair moves the damaged artifacts named by rep — plus any stray temp
// files — into dir/quarantine/, so a subsequent Save starts from a clean
// directory while nothing is destroyed. It returns the names of the files
// moved. Repair on an intact report only sweeps strays.
func Repair(dir string, rep *FsckReport) ([]string, error) {
	var doomed []string
	switch {
	case !rep.ManifestOK:
		doomed = append(doomed, manifestName)
	case !rep.ImageOK:
		doomed = append(doomed, imageName)
	case !rep.LayoutOK:
		// Manifest and image each check out alone but disagree on layout:
		// both are suspect.
		doomed = append(doomed, manifestName, imageName)
	}
	doomed = append(doomed, rep.Stray...)

	var moved []string
	for _, name := range doomed {
		src := filepath.Join(dir, name)
		if _, err := os.Stat(src); err != nil {
			continue // already absent — nothing to quarantine
		}
		qdir := filepath.Join(dir, QuarantineDirName)
		if err := os.MkdirAll(qdir, 0o755); err != nil {
			return moved, fmt.Errorf("dbfile: repair: %w", err)
		}
		if err := os.Rename(src, filepath.Join(qdir, name)); err != nil {
			return moved, fmt.Errorf("dbfile: repair: %w", err)
		}
		moved = append(moved, name)
	}
	if len(moved) > 0 {
		if err := syncDir(dir); err != nil {
			return moved, err
		}
	}
	return moved, nil
}
