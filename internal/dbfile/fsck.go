package dbfile

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/storage"
	"repro/internal/vstore"
)

// FsckReport is the outcome of checking one database directory.
type FsckReport struct {
	Dir string
	// ManifestOK: manifest.json exists, parses, has the right format
	// version and a valid self-checksum.
	ManifestOK bool
	// ImageOK: disk.img exists, matches the manifest's committed size and
	// CRC, and parses as a disk image (internal checksum included) —
	// and every committed epoch delta verifies and chains onto it.
	ImageOK bool
	// LayoutOK: every layout pointer in the manifest stays inside the
	// image.
	LayoutOK bool
	// CodecOK: every codec unit in every scheme decodes and passes its
	// CRC (pages already parked in quarantine.json are excused — they
	// are known damage, not new damage). Trivially true for raw-layout
	// databases.
	CodecOK bool
	// BadCodecPages lists the disk pages covered by codec units that
	// failed validation, deduplicated and sorted; Repair parks them in
	// quarantine.json.
	BadCodecPages []storage.PageID
	// BadDeltas lists committed epoch delta files that failed
	// verification (missing, size/CRC mismatch, or broken chaining);
	// Repair quarantines them together with the manifest that pins them.
	BadDeltas []string
	// Problems describes each failed check, in check order.
	Problems []string
	// Stray lists leftover temporary files from interrupted saves and
	// commits, plus epoch delta files no manifest references (the residue
	// of a crash between an epoch's delta rename and its manifest
	// rename, or of a Save compaction).
	Stray []string
	// Derived lists regenerable artifacts of a file-backed open — the
	// pages.dat page file and its .cloneN shard siblings. They are rebuilt
	// from disk.img and the delta chain on every OpenWith, carry no
	// committed state, and are deliberately neither damage nor Stray
	// (Repair leaves them alone).
	Derived []string
	// Epoch, OpsLogged and DeltasApplied summarize the dynamic-scene
	// state of an intact manifest: the committed epoch counter, the op
	// log length, and how many delta images the image chain carries.
	Epoch         int
	OpsLogged     int
	DeltasApplied int
}

// Intact reports whether the database passed every check (stray temp
// files alone do not make a database damaged — a crash before the commit
// point leaves them next to a perfectly good previous version).
func (r *FsckReport) Intact() bool {
	return r.ManifestOK && r.ImageOK && r.LayoutOK && r.CodecOK
}

func (r *FsckReport) problemf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Fsck checks a database directory without fully opening it: manifest
// parse + checksum, image size/CRC (file-level and internal), and layout
// pointer validation. It is read-only. The returned error covers only
// inability to inspect the directory itself, never a damaged database —
// damage is reported in the FsckReport.
func Fsck(dir string) (*FsckReport, error) {
	rep := &FsckReport{Dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dbfile: fsck: %w", err)
	}
	var epochFiles []string
	for _, e := range entries {
		name := e.Name()
		if name == PagesFileName || strings.HasPrefix(name, PagesFileName+".clone") {
			rep.Derived = append(rep.Derived, name)
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			rep.Stray = append(rep.Stray, name)
		}
		if strings.HasPrefix(name, deltaPrefix) && strings.HasSuffix(name, deltaSuffix) {
			epochFiles = append(epochFiles, name)
		}
	}

	m, err := readManifest(dir)
	if err != nil {
		rep.problemf("manifest: %v", err)
		// With no manifest to reference them, every epoch delta is
		// garbage from an interrupted commit.
		rep.Stray = append(rep.Stray, epochFiles...)
		return rep, nil
	}
	rep.ManifestOK = true
	rep.Epoch = m.Epoch
	rep.OpsLogged = len(m.Ops)
	rep.DeltasApplied = len(m.Deltas)
	referenced := map[string]bool{}
	for _, dm := range m.Deltas {
		referenced[dm.Name] = true
	}
	for _, name := range epochFiles {
		if !referenced[name] {
			rep.Stray = append(rep.Stray, name)
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, imageName))
	if err != nil {
		rep.problemf("image: %v", err)
		return rep, nil
	}
	if int64(len(raw)) != m.ImageBytes {
		rep.problemf("image: %d bytes, manifest committed %d (torn save?)", len(raw), m.ImageBytes)
		return rep, nil
	}
	if sum := crc32.ChecksumIEEE(raw); sum != m.ImageCRC32 {
		rep.problemf("image: CRC %08x, manifest committed %08x (stale or torn image)", sum, m.ImageCRC32)
		return rep, nil
	}
	disk, err := storage.ReadImage(bytes.NewReader(raw), storage.DefaultCostModel())
	if err != nil {
		rep.problemf("image: %v", err)
		return rep, nil
	}
	for _, dm := range m.Deltas {
		if err := applyDeltaFile(dir, dm, disk); err != nil {
			rep.problemf("delta %s: %v", dm.Name, err)
			rep.BadDeltas = append(rep.BadDeltas, dm.Name)
			return rep, nil
		}
	}
	if disk.NumPages() != m.AllocatedPages {
		rep.problemf("image: %d pages after deltas, manifest committed %d", disk.NumPages(), m.AllocatedPages)
		return rep, nil
	}
	rep.ImageOK = true

	if err := validateLayout(m, disk); err != nil {
		rep.problemf("layout: %v", err)
		return rep, nil
	}
	rep.LayoutOK = true

	checkCodec(dir, m, disk, rep)
	return rep, nil
}

// checkCodec walks every codec unit of every scheme through the
// unmetered peek path, recording failed units' pages and problems in
// rep. Pages already parked by quarantine.json are applied first so
// known (repaired) damage is not re-reported — a repaired database
// comes back intact.
func checkCodec(dir string, m *Manifest, disk *storage.Disk, rep *FsckReport) {
	if err := applyQuarantine(dir, disk); err != nil {
		rep.problemf("codec: %v", err)
		return
	}
	grid, err := m.Tree.Grid.Grid()
	if err != nil {
		rep.problemf("codec: grid: %v", err)
		return
	}
	type checker interface {
		CodecCheck() ([]storage.PageID, []string)
	}
	open := []struct {
		name string
		fn   func() (checker, error)
	}{
		{"horizontal", func() (checker, error) { return vstore.OpenHorizontal(disk, grid, m.Horizontal) }},
		{"vertical", func() (checker, error) { return vstore.OpenVertical(disk, grid, m.Vertical) }},
		{"indexed", func() (checker, error) { return vstore.OpenIndexedVertical(disk, grid, m.Indexed) }},
	}
	seen := map[storage.PageID]bool{}
	ok := true
	for _, o := range open {
		s, err := o.fn()
		if err != nil {
			rep.problemf("codec: open %s: %v", o.name, err)
			ok = false
			continue
		}
		bad, problems := s.CodecCheck()
		if len(problems) > 0 {
			ok = false
		}
		rep.Problems = append(rep.Problems, problems...)
		for _, id := range bad {
			if !seen[id] {
				seen[id] = true
				rep.BadCodecPages = append(rep.BadCodecPages, id)
			}
		}
	}
	sort.Slice(rep.BadCodecPages, func(i, j int) bool { return rep.BadCodecPages[i] < rep.BadCodecPages[j] })
	rep.CodecOK = ok
}

// QuarantineDirName is where Repair moves damaged artifacts, inside the
// database directory.
const QuarantineDirName = "quarantine"

// Repair moves the damaged artifacts named by rep — plus any stray temp
// files — into dir/quarantine/, so a subsequent Save starts from a clean
// directory while nothing is destroyed. Codec-level damage is repaired
// differently: the failing pages are parked in quarantine.json, so Open
// fails their reads fast (degraded-mode traversal absorbs them) and a
// later Fsck excuses them as known damage. It returns the names of the
// files moved or written. Repair on an intact report only sweeps strays.
func Repair(dir string, rep *FsckReport) ([]string, error) {
	var doomed []string
	switch {
	case !rep.ManifestOK:
		doomed = append(doomed, manifestName)
	case !rep.ImageOK && len(rep.BadDeltas) > 0:
		// The base image checked out but a committed delta did not: the
		// base is fine, the manifest that pins the bad delta is not.
		doomed = append(doomed, manifestName)
		doomed = append(doomed, rep.BadDeltas...)
	case !rep.ImageOK:
		doomed = append(doomed, imageName)
	case !rep.LayoutOK:
		// Manifest and image each check out alone but disagree on layout:
		// both are suspect.
		doomed = append(doomed, manifestName, imageName)
	}
	doomed = append(doomed, rep.Stray...)

	var written []string
	if rep.ManifestOK && rep.ImageOK && rep.LayoutOK && len(rep.BadCodecPages) > 0 {
		if _, err := writeQuarantine(dir, rep.BadCodecPages); err != nil {
			return nil, err
		}
		written = append(written, quarantineName)
	}

	moved := written
	for _, name := range doomed {
		src := filepath.Join(dir, name)
		if _, err := os.Stat(src); err != nil {
			continue // already absent — nothing to quarantine
		}
		qdir := filepath.Join(dir, QuarantineDirName)
		if err := os.MkdirAll(qdir, 0o755); err != nil {
			return moved, fmt.Errorf("dbfile: repair: %w", err)
		}
		if err := os.Rename(src, filepath.Join(qdir, name)); err != nil {
			return moved, fmt.Errorf("dbfile: repair: %w", err)
		}
		moved = append(moved, name)
	}
	if len(moved) > 0 {
		if err := syncDir(dir); err != nil {
			return moved, err
		}
	}
	return moved, nil
}
