package dbfile

// White-box crash-injection tests: the crashPoint hook aborts Save at a
// named write boundary, and Open/Fsck must treat whatever is left behind
// as either the previous intact version or a cleanly rejected torn save.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/testenv"
)

func crashFixtureDB(t *testing.T) *Database {
	t.Helper()
	env := testenv.Get(testenv.Small())
	return &Database{
		Scene:      env.Scene,
		Disk:       env.Disk,
		Tree:       env.Tree,
		Horizontal: env.H,
		Vertical:   env.V,
		Indexed:    env.IV,
		Naive:      env.Naive,
	}
}

func saveWithCrash(t *testing.T, dir, stage string, db *Database) {
	t.Helper()
	crashPoint = stage
	defer func() { crashPoint = "" }()
	if err := Save(dir, db); !errors.Is(err, errCrash) {
		t.Fatalf("stage %s: Save err = %v, want injected crash", stage, err)
	}
}

var crashStages = []string{"image-tmp", "image-rename", "manifest-tmp"}

// TestSaveCrashFreshDirRejected: killing Save at any write boundary in a
// fresh directory leaves something Open cleanly rejects — never a panic,
// never a half-open database.
func TestSaveCrashFreshDirRejected(t *testing.T) {
	db := crashFixtureDB(t)
	for _, stage := range crashStages {
		dir := t.TempDir()
		saveWithCrash(t, dir, stage, db)
		if _, err := Open(dir); !errors.Is(err, ErrBadDatabase) {
			t.Fatalf("stage %s: Open err = %v, want ErrBadDatabase", stage, err)
		}
		rep, err := Fsck(dir)
		if err != nil {
			t.Fatalf("stage %s: fsck: %v", stage, err)
		}
		if rep.Intact() {
			t.Fatalf("stage %s: fsck calls the torn directory intact", stage)
		}
	}
}

// TestSaveCrashOverwriteKeepsOldVersion: a save interrupted while
// overwriting an existing database never destroys the committed version —
// every pre-commit crash leaves a directory that still opens.
func TestSaveCrashOverwriteKeepsOldVersion(t *testing.T) {
	db := crashFixtureDB(t)
	for _, stage := range crashStages {
		dir := t.TempDir()
		if err := Save(dir, db); err != nil {
			t.Fatal(err)
		}
		saveWithCrash(t, dir, stage, db)
		if _, err := Open(dir); err != nil {
			t.Fatalf("stage %s: committed version lost: %v", stage, err)
		}
	}
}

// TestFsckRepairSweepsCrashDebris: Repair quarantines both the damaged
// artifacts and the stray temporaries a crash leaves behind, and a fresh
// Save then succeeds and reopens.
func TestFsckRepairSweepsCrashDebris(t *testing.T) {
	db := crashFixtureDB(t)
	dir := t.TempDir()
	saveWithCrash(t, dir, "manifest-tmp", db)
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Intact() {
		t.Fatal("torn directory called intact")
	}
	if len(rep.Stray) == 0 {
		t.Fatal("stray manifest.json.tmp not found")
	}
	moved, err := Repair(dir, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) == 0 {
		t.Fatal("repair moved nothing")
	}
	for _, name := range moved {
		if _, err := os.Stat(filepath.Join(dir, QuarantineDirName, name)); err != nil {
			t.Fatalf("%s not in quarantine: %v", name, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("stray %s survived repair", e.Name())
		}
	}
	if err := Save(dir, db); err != nil {
		t.Fatalf("save after repair: %v", err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatalf("open after repair+save: %v", err)
	}
}
