// Package dbfile persists a built HDoV database to a directory on the
// real filesystem and reopens it: the paper's precomputation (R-tree
// construction, internal-LoD generation, per-cell DoV evaluation, V-page
// layout) takes orders of magnitude longer than a query session, so a
// production deployment builds once and ships the files.
//
// A database directory holds two files:
//
//	manifest.json — dataset parameters and every layout pointer needed to
//	                reattach the tree, the three storage schemes and the
//	                naive baseline (JSON, human-inspectable, checksummed)
//	disk.img      — the simulated disk's pages (binary, checksummed)
//
// The scene's meshes are not stored twice: the city regenerates
// deterministically from its CityParams, and payload meshes live in the
// disk image.
//
// # Crash safety
//
// Save is atomic at the manifest rename: the image is written to a
// temporary file, fsynced and renamed into place first; the manifest —
// which embeds the image's byte size and CRC and carries its own
// checksum — is written, fsynced and renamed last. A crash at any write
// boundary leaves either the old database intact or a directory with no
// (or a stale) manifest; Open cross-checks manifest checksum, image size,
// and image CRC, so every torn state is rejected with ErrBadDatabase.
package dbfile

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/scene"
	"repro/internal/storage"
	"repro/internal/vstore"
)

const (
	// FormatVersion guards manifest compatibility. Version 2 added the
	// manifest checksum and the image size/CRC cross-check (version-1
	// directories predate crash-safe saves and are rejected). Version 3
	// added the codec V-page layout manifests and the page-quarantine
	// sidecar (quarantine.json).
	FormatVersion = 3
	manifestName  = "manifest.json"
	imageName     = "disk.img"
	// quarantineName is the optional page-quarantine sidecar: disk pages
	// fsck found codec-invalid, parked so queries fail fast (and degrade)
	// on them instead of re-decoding garbage.
	quarantineName = "quarantine.json"
)

// Manifest is the JSON document describing a saved database.
type Manifest struct {
	FormatVersion int
	City          scene.CityParams
	Tree          core.TreeManifest
	Horizontal    vstore.HorizontalManifest
	Vertical      vstore.VerticalManifest
	Indexed       vstore.IndexedVerticalManifest
	Naive         naive.Manifest

	// ImageBytes and ImageCRC32 pin the disk.img this manifest commits:
	// a manifest renamed into place next to a stale or torn image fails
	// the cross-check.
	ImageBytes int64
	ImageCRC32 uint32
	// Checksum is the IEEE CRC32 of this document serialized with
	// Checksum itself zero (see Seal).
	Checksum uint32
}

// Seal recomputes the manifest's checksum. Tests that deliberately tamper
// with a manifest use it to keep the checksum valid so deeper validation
// is exercised.
func (m *Manifest) Seal() error {
	sum, err := m.computeChecksum()
	if err != nil {
		return err
	}
	m.Checksum = sum
	return nil
}

func (m *Manifest) computeChecksum() (uint32, error) {
	mm := *m
	mm.Checksum = 0
	raw, err := json.Marshal(&mm)
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(raw), nil
}

// Database is a reopened (or about-to-be-saved) HDoV database.
type Database struct {
	Scene      *scene.Scene
	Disk       *storage.Disk
	Tree       *core.Tree
	Horizontal *vstore.Horizontal
	Vertical   *vstore.Vertical
	Indexed    *vstore.IndexedVertical
	Naive      *naive.Store
}

// ErrBadDatabase is wrapped into open-time validation failures.
var ErrBadDatabase = errors.New("dbfile: bad database")

// crashPoint aborts Save at a named write boundary (crash-injection
// tests). Empty in production.
var crashPoint string

// errCrash marks an injected crash.
var errCrash = errors.New("dbfile: injected crash")

func crashAt(stage string) error {
	if crashPoint == stage {
		return fmt.Errorf("%w at %s", errCrash, stage)
	}
	return nil
}

// Save writes the database to dir (created if absent). The write order —
// image first, checksummed manifest renamed into place last — makes the
// manifest rename the commit point; a crash anywhere before it leaves the
// previous database state (or a rejectable partial directory) behind.
func Save(dir string, db *Database) error {
	if db == nil || db.Tree == nil || db.Disk == nil {
		return fmt.Errorf("dbfile: save: incomplete database")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dbfile: %w", err)
	}

	imgBytes, imgCRC, err := writeImage(dir, db.Disk)
	if err != nil {
		return err
	}

	m := Manifest{
		FormatVersion: FormatVersion,
		City:          db.Scene.Params,
		Tree:          db.Tree.Manifest(),
		Horizontal:    db.Horizontal.Manifest(),
		Vertical:      db.Vertical.Manifest(),
		Indexed:       db.Indexed.Manifest(),
		Naive:         db.Naive.Manifest(),
		ImageBytes:    imgBytes,
		ImageCRC32:    imgCRC,
	}
	if err := m.Seal(); err != nil {
		return fmt.Errorf("dbfile: manifest: %w", err)
	}
	raw, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("dbfile: manifest: %w", err)
	}
	if err := writeFileAtomic(dir, manifestName, raw, "manifest-tmp"); err != nil {
		return err
	}
	return syncDir(dir)
}

// writeImage writes disk.img via a temporary file and atomic rename,
// returning the byte count and CRC of what landed on disk.
func writeImage(dir string, d *storage.Disk) (int64, uint32, error) {
	tmp := filepath.Join(dir, imageName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, fmt.Errorf("dbfile: image: %w", err)
	}
	h := crc32.NewIEEE()
	n, err := d.WriteTo(io.MultiWriter(f, h))
	if err != nil {
		f.Close()
		return 0, 0, fmt.Errorf("dbfile: image: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, 0, fmt.Errorf("dbfile: image: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, 0, fmt.Errorf("dbfile: image: %w", err)
	}
	if err := crashAt("image-tmp"); err != nil {
		return 0, 0, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, imageName)); err != nil {
		return 0, 0, fmt.Errorf("dbfile: image: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, 0, err
	}
	if err := crashAt("image-rename"); err != nil {
		return 0, 0, err
	}
	return n, h.Sum32(), nil
}

// writeFileAtomic writes name under dir via tmp-file + fsync + rename.
func writeFileAtomic(dir, name string, raw []byte, stage string) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("dbfile: %s: %w", name, err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return fmt.Errorf("dbfile: %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("dbfile: %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dbfile: %s: %w", name, err)
	}
	if err := crashAt(stage); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("dbfile: %s: %w", name, err)
	}
	return nil
}

// syncDir fsyncs a directory so renames within it are durable. Filesystems
// that refuse directory fsync (some CI mounts) are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("dbfile: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return fmt.Errorf("dbfile: fsync %s: %w", dir, err)
	}
	return nil
}

// Open reopens a database directory saved by Save. The manifest's own
// checksum, the image's size and CRC, and every layout pointer are
// verified before anything is trusted; the city is regenerated from its
// parameters and tree and scheme layouts are revalidated against the
// image.
func Open(dir string) (*Database, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}

	raw, err := os.ReadFile(filepath.Join(dir, imageName))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	if int64(len(raw)) != m.ImageBytes {
		return nil, fmt.Errorf("%w: image is %d bytes, manifest committed %d (torn save?)",
			ErrBadDatabase, len(raw), m.ImageBytes)
	}
	if sum := crc32.ChecksumIEEE(raw); sum != m.ImageCRC32 {
		return nil, fmt.Errorf("%w: image CRC %08x, manifest committed %08x (stale or torn image)",
			ErrBadDatabase, sum, m.ImageCRC32)
	}
	disk, err := storage.ReadImage(bytes.NewReader(raw), storage.DefaultCostModel())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	if err := validateLayout(m, disk); err != nil {
		return nil, err
	}

	if err := applyQuarantine(dir, disk); err != nil {
		return nil, err
	}

	sc := scene.Generate(m.City)
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("%w: regenerated scene: %v", ErrBadDatabase, err)
	}
	tree, err := core.OpenTree(sc, disk, m.Tree)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	h, err := vstore.OpenHorizontal(disk, tree.Grid, m.Horizontal)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	v, err := vstore.OpenVertical(disk, tree.Grid, m.Vertical)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	iv, err := vstore.OpenIndexedVertical(disk, tree.Grid, m.Indexed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	nv, err := naive.Open(tree, m.Naive)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	tree.SetVStore(iv)
	return &Database{
		Scene:      sc,
		Disk:       disk,
		Tree:       tree,
		Horizontal: h,
		Vertical:   v,
		Indexed:    iv,
		Naive:      nv,
	}, nil
}

// readManifest loads and structurally verifies manifest.json (parse,
// version, self-checksum) without touching the image.
func readManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrBadDatabase, err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d (want %d)", ErrBadDatabase, m.FormatVersion, FormatVersion)
	}
	sum, err := m.computeChecksum()
	if err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrBadDatabase, err)
	}
	if sum != m.Checksum {
		return nil, fmt.Errorf("%w: manifest checksum %08x, stored %08x", ErrBadDatabase, sum, m.Checksum)
	}
	return &m, nil
}

// validateLayout cross-checks every layout pointer in the manifest
// against the image's allocated page count before any of them is
// dereferenced.
func validateLayout(m *Manifest, disk *storage.Disk) error {
	num := disk.NumPages()
	check := func(what string, start storage.PageID, pages int) error {
		if start == storage.NilPage && pages == 0 {
			return nil
		}
		if start < 0 || pages < 0 || int64(start)+int64(pages) > num {
			return fmt.Errorf("%w: %s pages [%d, %d) exceed image (%d pages)",
				ErrBadDatabase, what, start, int64(start)+int64(pages), num)
		}
		return nil
	}
	pagesFor := func(bytes int64) int { return disk.PagesFor(bytes) }

	if m.Tree.NumNodes < 1 || m.Tree.NodeStride < 1 {
		return fmt.Errorf("%w: tree has %d nodes, stride %d", ErrBadDatabase, m.Tree.NumNodes, m.Tree.NodeStride)
	}
	if err := check("node records", m.Tree.NodePageBase, m.Tree.NumNodes*m.Tree.NodeStride); err != nil {
		return err
	}
	for obj, chain := range m.Tree.ObjExtents {
		for lvl, ext := range chain {
			if err := check(fmt.Sprintf("object %d LoD %d", obj, lvl), ext.Start, pagesFor(ext.NominalBytes)); err != nil {
				return err
			}
		}
	}
	slotPages := func(s vstore.SlotTableManifest) int {
		if s.PerPage <= 0 {
			return 0
		}
		return (s.Count + s.PerPage - 1) / s.PerPage
	}
	numCells := m.Tree.Grid.NX * m.Tree.Grid.NY
	if m.Horizontal.Codec {
		if err := check("horizontal codec heap", m.Horizontal.HeapBase, pagesFor(m.Horizontal.HeapBytes)); err != nil {
			return err
		}
		if err := check("horizontal codec directory", m.Horizontal.DirBase,
			pagesFor(8*int64(m.Horizontal.NumNodes)*int64(numCells))); err != nil {
			return err
		}
	} else if err := check("horizontal V-pages", m.Horizontal.Slots.Base, slotPages(m.Horizontal.Slots)); err != nil {
		return err
	}
	if m.Vertical.Codec {
		if err := check("vertical codec heap", m.Vertical.HeapBase, pagesFor(m.Vertical.HeapBytes)); err != nil {
			return err
		}
	} else {
		if err := check("vertical V-pages", m.Vertical.Slots.Base, slotPages(m.Vertical.Slots)); err != nil {
			return err
		}
		if err := check("vertical segments", m.Vertical.SegBase, m.Vertical.SegPages*numCells); err != nil {
			return err
		}
	}
	if m.Indexed.Codec {
		if err := check("indexed codec heap", m.Indexed.HeapBase, pagesFor(m.Indexed.HeapBytes)); err != nil {
			return err
		}
	} else {
		if err := check("indexed V-pages", m.Indexed.Slots.Base, slotPages(m.Indexed.Slots)); err != nil {
			return err
		}
		for cell, seg := range m.Indexed.Dir {
			if seg.Start == storage.NilPage {
				continue
			}
			if err := check(fmt.Sprintf("indexed segment for cell %d", cell), seg.Start, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// QuarantineFile is the JSON document of the quarantine.json sidecar.
type QuarantineFile struct {
	// Pages lists disk pages parked by fsck -repair: reads of them fail
	// fast with a CorruptError instead of decoding garbage, which
	// degraded-mode traversal absorbs.
	Pages []storage.PageID
}

// applyQuarantine loads the optional quarantine sidecar and parks its
// pages on the freshly opened disk. A missing file is the common case and
// means nothing is parked.
func applyQuarantine(dir string, disk *storage.Disk) error {
	raw, err := os.ReadFile(filepath.Join(dir, quarantineName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	var q QuarantineFile
	if err := json.Unmarshal(raw, &q); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBadDatabase, quarantineName, err)
	}
	num := disk.NumPages()
	for _, id := range q.Pages {
		if id < 0 || int64(id) >= num {
			return fmt.Errorf("%w: %s: page %d outside image (%d pages)", ErrBadDatabase, quarantineName, id, num)
		}
		disk.Quarantine(id)
	}
	return nil
}

// writeQuarantine merges pages into the quarantine sidecar (creating it
// if absent) and writes it atomically. The merged, sorted page list is
// returned.
func writeQuarantine(dir string, pages []storage.PageID) ([]storage.PageID, error) {
	seen := map[storage.PageID]bool{}
	var q QuarantineFile
	if raw, err := os.ReadFile(filepath.Join(dir, quarantineName)); err == nil {
		// A malformed existing sidecar is simply replaced — it carries
		// derived damage records, not primary data.
		_ = json.Unmarshal(raw, &q)
	}
	merged := make([]storage.PageID, 0, len(q.Pages)+len(pages))
	for _, list := range [][]storage.PageID{q.Pages, pages} {
		for _, id := range list {
			if !seen[id] {
				seen[id] = true
				merged = append(merged, id)
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	raw, err := json.MarshalIndent(&QuarantineFile{Pages: merged}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dbfile: %s: %w", quarantineName, err)
	}
	if err := writeFileAtomic(dir, quarantineName, raw, "quarantine-tmp"); err != nil {
		return nil, err
	}
	return merged, syncDir(dir)
}
