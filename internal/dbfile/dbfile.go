// Package dbfile persists a built HDoV database to a directory on the
// real filesystem and reopens it: the paper's precomputation (R-tree
// construction, internal-LoD generation, per-cell DoV evaluation, V-page
// layout) takes orders of magnitude longer than a query session, so a
// production deployment builds once and ships the files.
//
// A database directory holds two files:
//
//	manifest.json — dataset parameters and every layout pointer needed to
//	                reattach the tree, the three storage schemes and the
//	                naive baseline (JSON, human-inspectable)
//	disk.img      — the simulated disk's pages (binary, checksummed)
//
// The scene's meshes are not stored twice: the city regenerates
// deterministically from its CityParams, and payload meshes live in the
// disk image.
package dbfile

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/scene"
	"repro/internal/storage"
	"repro/internal/vstore"
)

const (
	// FormatVersion guards manifest compatibility.
	FormatVersion = 1
	manifestName  = "manifest.json"
	imageName     = "disk.img"
)

// Manifest is the JSON document describing a saved database.
type Manifest struct {
	FormatVersion int
	City          scene.CityParams
	Tree          core.TreeManifest
	Horizontal    vstore.HorizontalManifest
	Vertical      vstore.VerticalManifest
	Indexed       vstore.IndexedVerticalManifest
	Naive         naive.Manifest
}

// Database is a reopened (or about-to-be-saved) HDoV database.
type Database struct {
	Scene      *scene.Scene
	Disk       *storage.Disk
	Tree       *core.Tree
	Horizontal *vstore.Horizontal
	Vertical   *vstore.Vertical
	Indexed    *vstore.IndexedVertical
	Naive      *naive.Store
}

// ErrBadDatabase is wrapped into open-time validation failures.
var ErrBadDatabase = errors.New("dbfile: bad database")

// Save writes the database to dir (created if absent).
func Save(dir string, db *Database) error {
	if db == nil || db.Tree == nil || db.Disk == nil {
		return fmt.Errorf("dbfile: save: incomplete database")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dbfile: %w", err)
	}
	m := Manifest{
		FormatVersion: FormatVersion,
		City:          db.Scene.Params,
		Tree:          db.Tree.Manifest(),
		Horizontal:    db.Horizontal.Manifest(),
		Vertical:      db.Vertical.Manifest(),
		Indexed:       db.Indexed.Manifest(),
		Naive:         db.Naive.Manifest(),
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("dbfile: manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), raw, 0o644); err != nil {
		return fmt.Errorf("dbfile: manifest: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, imageName))
	if err != nil {
		return fmt.Errorf("dbfile: image: %w", err)
	}
	defer f.Close()
	if _, err := db.Disk.WriteTo(f); err != nil {
		return fmt.Errorf("dbfile: image: %w", err)
	}
	return f.Close()
}

// Open reopens a database directory saved by Save. The city is
// regenerated from its parameters; the disk image is verified against its
// checksum; tree and scheme layouts are revalidated against the image.
func Open(dir string) (*Database, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrBadDatabase, err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d (want %d)", ErrBadDatabase, m.FormatVersion, FormatVersion)
	}

	f, err := os.Open(filepath.Join(dir, imageName))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	defer f.Close()
	disk, err := storage.ReadImage(f, storage.DefaultCostModel())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}

	sc := scene.Generate(m.City)
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("%w: regenerated scene: %v", ErrBadDatabase, err)
	}
	tree, err := core.OpenTree(sc, disk, m.Tree)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	h, err := vstore.OpenHorizontal(disk, tree.Grid, m.Horizontal)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	v, err := vstore.OpenVertical(disk, tree.Grid, m.Vertical)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	iv, err := vstore.OpenIndexedVertical(disk, tree.Grid, m.Indexed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	nv, err := naive.Open(tree, m.Naive)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	tree.SetVStore(iv)
	return &Database{
		Scene:      sc,
		Disk:       disk,
		Tree:       tree,
		Horizontal: h,
		Vertical:   v,
		Indexed:    iv,
		Naive:      nv,
	}, nil
}
