// Package dbfile persists a built HDoV database to a directory on the
// real filesystem and reopens it: the paper's precomputation (R-tree
// construction, internal-LoD generation, per-cell DoV evaluation, V-page
// layout) takes orders of magnitude longer than a query session, so a
// production deployment builds once and ships the files.
//
// A database directory holds two files, plus one per committed epoch:
//
//	manifest.json — dataset parameters and every layout pointer needed to
//	                reattach the tree, the three storage schemes and the
//	                naive baseline (JSON, human-inspectable, checksummed)
//	disk.img      — the simulated disk's pages (binary, checksummed)
//	epoch-N.img   — the pages appended by incremental update epoch N
//	                (binary, checksummed; absent on static databases)
//
// The scene's meshes are not stored twice: the city regenerates
// deterministically from its CityParams (plus, for dynamic scenes, a
// replay of the manifest's op log), and payload meshes live in the disk
// image.
//
// # Crash safety
//
// Save is atomic at the manifest rename: the image is written to a
// temporary file, fsynced and renamed into place first; the manifest —
// which embeds the image's byte size and CRC and carries its own
// checksum — is written, fsynced and renamed last. A crash at any write
// boundary leaves either the old database intact or a directory with no
// (or a stale) manifest; Open cross-checks manifest checksum, image size,
// and image CRC, so every torn state is rejected with ErrBadDatabase.
//
// CommitEpoch extends the same protocol to incremental updates: the
// epoch's appended pages are committed as an epoch-N.img delta (tmp +
// fsync + rename), and only then is the manifest — which pins every
// delta's size and CRC and carries the new op log — renamed into place.
// A crash before the manifest rename leaves the previous epoch fully
// intact (the unreferenced delta file is garbage fsck sweeps); a crash
// after it leaves the new epoch committed. There is no reachable torn
// state.
package dbfile

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/scene"
	"repro/internal/storage"
	"repro/internal/storage/filestore"
	"repro/internal/vstore"
)

const (
	// FormatVersion guards manifest compatibility. Version 2 added the
	// manifest checksum and the image size/CRC cross-check (version-1
	// directories predate crash-safe saves and are rejected). Version 3
	// added the codec V-page layout manifests and the page-quarantine
	// sidecar (quarantine.json). Version 4 added dynamic scenes: the op
	// log, the epoch counter, and the epoch-N.img delta chain.
	FormatVersion = 4
	manifestName  = "manifest.json"
	imageName     = "disk.img"
	// deltaPrefix/deltaSuffix frame epoch delta file names (epoch-N.img).
	deltaPrefix = "epoch-"
	deltaSuffix = ".img"
	// quarantineName is the optional page-quarantine sidecar: disk pages
	// fsck found codec-invalid, parked so queries fail fast (and degrade)
	// on them instead of re-decoding garbage.
	quarantineName = "quarantine.json"
)

// PagesFileName is the page file a file-backed open materializes inside
// the database directory. It is derived state — rebuilt from disk.img and
// the delta chain on every OpenWith — never part of the commit protocol,
// so fsck classifies it (and its .cloneN shard siblings) as Derived, not
// Stray.
const PagesFileName = "pages.dat"

// Manifest is the JSON document describing a saved database.
type Manifest struct {
	FormatVersion int
	City          scene.CityParams
	Tree          core.TreeManifest
	Horizontal    vstore.HorizontalManifest
	Vertical      vstore.VerticalManifest
	Indexed       vstore.IndexedVerticalManifest
	Naive         naive.Manifest

	// Epoch counts committed incremental update epochs; 0 is a freshly
	// built (or Save-compacted) database. Ops is the dynamic-scene op
	// log: the scene is reconstructed as Generate(City) + Replay(Ops).
	Epoch int        `json:",omitempty"`
	Ops   []scene.Op `json:",omitempty"`
	// Deltas lists the epoch delta images applied on top of disk.img, in
	// commit order; AllocatedPages is the disk's total allocation after
	// all of them — the watermark the next epoch's delta starts at. Save
	// compacts: a full image, no deltas.
	Deltas         []DeltaManifest `json:",omitempty"`
	AllocatedPages int64

	// ImageBytes and ImageCRC32 pin the disk.img this manifest commits:
	// a manifest renamed into place next to a stale or torn image fails
	// the cross-check.
	ImageBytes int64
	ImageCRC32 uint32
	// Checksum is the IEEE CRC32 of this document serialized with
	// Checksum itself zero (see Seal).
	Checksum uint32
}

// Seal recomputes the manifest's checksum. Tests that deliberately tamper
// with a manifest use it to keep the checksum valid so deeper validation
// is exercised.
func (m *Manifest) Seal() error {
	sum, err := m.computeChecksum()
	if err != nil {
		return err
	}
	m.Checksum = sum
	return nil
}

func (m *Manifest) computeChecksum() (uint32, error) {
	mm := *m
	mm.Checksum = 0
	raw, err := json.Marshal(&mm)
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(raw), nil
}

// DeltaManifest pins one committed epoch delta file: name, byte size and
// file-level CRC, the same cross-check ImageBytes/ImageCRC32 give the
// base image.
type DeltaManifest struct {
	Name  string
	Bytes int64
	CRC32 uint32
}

// Database is a reopened (or about-to-be-saved) HDoV database.
type Database struct {
	Scene      *scene.Scene
	Disk       *storage.Disk
	Tree       *core.Tree
	Horizontal *vstore.Horizontal
	Vertical   *vstore.Vertical
	Indexed    *vstore.IndexedVertical
	Naive      *naive.Store
	// Epoch and Ops mirror the manifest's dynamic-scene state: how many
	// update epochs have been applied and the full op log that evolves
	// the generated base city into Scene.
	Epoch int
	Ops   []scene.Op
}

// Close releases the database's storage media — the page file handle and
// mmap window of a file-backed open; a no-op on simulated media. The
// database must not be used afterwards.
func (db *Database) Close() error {
	if db == nil || db.Disk == nil {
		return nil
	}
	return db.Disk.Close()
}

// ErrBadDatabase is wrapped into open-time validation failures.
var ErrBadDatabase = errors.New("dbfile: bad database")

// crashPoint aborts Save at a named write boundary (crash-injection
// tests). Empty in production.
var crashPoint string

// errCrash marks an injected crash.
var errCrash = errors.New("dbfile: injected crash")

func crashAt(stage string) error {
	if crashPoint == stage {
		return fmt.Errorf("%w at %s", errCrash, stage)
	}
	return nil
}

// Save writes the database to dir (created if absent). The write order —
// image first, checksummed manifest renamed into place last — makes the
// manifest rename the commit point; a crash anywhere before it leaves the
// previous database state (or a rejectable partial directory) behind.
func Save(dir string, db *Database) error {
	if db == nil || db.Tree == nil || db.Disk == nil {
		return fmt.Errorf("dbfile: save: incomplete database")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dbfile: %w", err)
	}

	imgBytes, imgCRC, err := writeImage(dir, db.Disk)
	if err != nil {
		return err
	}
	// Flush the live media before the manifest rename declares the save
	// committed: on a file-backed disk this fsyncs pages.dat, so the state
	// the image snapshotted is also durable in the page file (a no-op on
	// simulated media).
	if err := db.Disk.Sync(); err != nil {
		return fmt.Errorf("dbfile: save: sync media: %w", err)
	}

	m := Manifest{
		FormatVersion:  FormatVersion,
		City:           db.Scene.Params,
		Tree:           db.Tree.Manifest(),
		Horizontal:     db.Horizontal.Manifest(),
		Vertical:       db.Vertical.Manifest(),
		Indexed:        db.Indexed.Manifest(),
		Naive:          db.Naive.Manifest(),
		Epoch:          db.Epoch,
		Ops:            db.Ops,
		AllocatedPages: db.Disk.NumPages(),
		ImageBytes:     imgBytes,
		ImageCRC32:     imgCRC,
	}
	return commitManifest(dir, &m, "manifest-tmp")
}

// commitManifest seals, serializes and atomically installs a manifest.
func commitManifest(dir string, m *Manifest, stage string) error {
	if err := m.Seal(); err != nil {
		return fmt.Errorf("dbfile: manifest: %w", err)
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("dbfile: manifest: %w", err)
	}
	if err := writeFileAtomic(dir, manifestName, raw, stage); err != nil {
		return err
	}
	return syncDir(dir)
}

// DeltaFileName returns the file name of epoch n's delta image.
func DeltaFileName(n int) string {
	return fmt.Sprintf("%s%d%s", deltaPrefix, n, deltaSuffix)
}

// CommitEpoch commits one incremental update epoch to an existing
// database directory: the pages the update appended (everything past the
// previously committed allocation watermark) are written as an epoch
// delta image, then the manifest — carrying the new layout pointers, the
// extended op log and the delta's size and CRC — is atomically renamed
// into place. The manifest rename is the commit point: a crash anywhere
// before it leaves the previous epoch intact, with at worst an
// unreferenced delta or temp file for fsck to sweep.
//
// The db must hold the post-update state (new tree, schemes, op log);
// CommitEpoch derives the epoch number from the directory and returns it.
func CommitEpoch(dir string, db *Database) (int, error) {
	if db == nil || db.Tree == nil || db.Disk == nil {
		return 0, fmt.Errorf("dbfile: commit: incomplete database")
	}
	prev, err := readManifest(dir)
	if err != nil {
		return 0, fmt.Errorf("dbfile: commit: %w", err)
	}
	if len(db.Ops) < len(prev.Ops) {
		return 0, fmt.Errorf("dbfile: commit: op log shrank (%d < %d committed)", len(db.Ops), len(prev.Ops))
	}
	watermark := storage.PageID(prev.AllocatedPages)
	if db.Disk.NumPages() < prev.AllocatedPages {
		return 0, fmt.Errorf("dbfile: commit: disk has %d pages, %d committed (wrong directory?)",
			db.Disk.NumPages(), prev.AllocatedPages)
	}
	epoch := prev.Epoch + 1
	name := DeltaFileName(epoch)

	// Delta image first: tmp + fsync + rename, like the base image.
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("dbfile: delta: %w", err)
	}
	h := crc32.NewIEEE()
	n, err := db.Disk.WriteDeltaTo(io.MultiWriter(f, h), watermark)
	if err != nil {
		f.Close()
		return 0, fmt.Errorf("dbfile: delta: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("dbfile: delta: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("dbfile: delta: %w", err)
	}
	if err := crashAt("epoch-tmp"); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return 0, fmt.Errorf("dbfile: delta: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	if err := crashAt("epoch-rename"); err != nil {
		return 0, err
	}

	// Flush the live media before the commit point, mirroring Save: the
	// epoch's appended pages are durable in a file-backed page file before
	// the manifest that references them lands.
	if err := db.Disk.Sync(); err != nil {
		return 0, fmt.Errorf("dbfile: commit: sync media: %w", err)
	}

	// Manifest last — its rename commits the epoch.
	m := Manifest{
		FormatVersion:  FormatVersion,
		City:           db.Scene.Params,
		Tree:           db.Tree.Manifest(),
		Horizontal:     db.Horizontal.Manifest(),
		Vertical:       db.Vertical.Manifest(),
		Indexed:        db.Indexed.Manifest(),
		Naive:          db.Naive.Manifest(),
		Epoch:          epoch,
		Ops:            db.Ops,
		Deltas:         append(append([]DeltaManifest(nil), prev.Deltas...), DeltaManifest{Name: name, Bytes: n, CRC32: h.Sum32()}),
		AllocatedPages: db.Disk.NumPages(),
		ImageBytes:     prev.ImageBytes,
		ImageCRC32:     prev.ImageCRC32,
	}
	if err := commitManifest(dir, &m, "epoch-manifest-tmp"); err != nil {
		return 0, err
	}
	if err := crashAt("epoch-manifest-rename"); err != nil {
		return 0, err
	}
	return epoch, nil
}

// writeImage writes disk.img via a temporary file and atomic rename,
// returning the byte count and CRC of what landed on disk.
func writeImage(dir string, d *storage.Disk) (int64, uint32, error) {
	tmp := filepath.Join(dir, imageName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, fmt.Errorf("dbfile: image: %w", err)
	}
	h := crc32.NewIEEE()
	n, err := d.WriteTo(io.MultiWriter(f, h))
	if err != nil {
		f.Close()
		return 0, 0, fmt.Errorf("dbfile: image: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, 0, fmt.Errorf("dbfile: image: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, 0, fmt.Errorf("dbfile: image: %w", err)
	}
	if err := crashAt("image-tmp"); err != nil {
		return 0, 0, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, imageName)); err != nil {
		return 0, 0, fmt.Errorf("dbfile: image: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, 0, err
	}
	if err := crashAt("image-rename"); err != nil {
		return 0, 0, err
	}
	return n, h.Sum32(), nil
}

// writeFileAtomic writes name under dir via tmp-file + fsync + rename.
func writeFileAtomic(dir, name string, raw []byte, stage string) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("dbfile: %s: %w", name, err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return fmt.Errorf("dbfile: %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("dbfile: %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dbfile: %s: %w", name, err)
	}
	if err := crashAt(stage); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("dbfile: %s: %w", name, err)
	}
	return nil
}

// syncDir fsyncs a directory so renames within it are durable. Filesystems
// that refuse directory fsync (some CI mounts) are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("dbfile: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return fmt.Errorf("dbfile: fsync %s: %w", dir, err)
	}
	return nil
}

// OpenOptions selects the storage media a database is reopened onto.
// The zero value reproduces Open: the simulated in-memory disk.
type OpenOptions struct {
	// FileBacked materializes the committed image and delta chain into a
	// page file (PagesFileName) inside the database directory and serves
	// reads through the real-file backend — mmap window, vectored preads,
	// wall-clock MeasuredTime — instead of the simulated in-memory media.
	// The page file is derived state: it is truncated and rebuilt on every
	// open, so a torn previous page file is harmless, and fsck never
	// counts it against the database. Because every open truncates the
	// same page file, at most one file-backed Database per directory may
	// be live at a time (Close the previous one first).
	FileBacked bool
	// NoMmap disables the file backend's mmap read window (pure pread).
	// Meaningful only with FileBacked.
	NoMmap bool
	// OSync opens the page file O_SYNC, making every page write durable
	// when it returns. Meaningful only with FileBacked.
	OSync bool
	// Cost overrides the simulator cost model the disk is opened with
	// (e.g. one fitted by hardware calibration). Nil keeps the default.
	Cost *storage.CostModel
}

// Open reopens a database directory saved by Save onto the simulated
// in-memory disk. The manifest's own checksum, the image's size and CRC,
// and every layout pointer are verified before anything is trusted; the
// city is regenerated from its parameters and tree and scheme layouts are
// revalidated against the image.
func Open(dir string) (*Database, error) {
	return OpenWith(dir, OpenOptions{})
}

// OpenWith is Open with explicit media selection: the same validation and
// reattachment, onto either the simulated disk or a real page file inside
// the database directory (see OpenOptions.FileBacked).
func OpenWith(dir string, opts OpenOptions) (*Database, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}

	raw, err := os.ReadFile(filepath.Join(dir, imageName))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	if int64(len(raw)) != m.ImageBytes {
		return nil, fmt.Errorf("%w: image is %d bytes, manifest committed %d (torn save?)",
			ErrBadDatabase, len(raw), m.ImageBytes)
	}
	if sum := crc32.ChecksumIEEE(raw); sum != m.ImageCRC32 {
		return nil, fmt.Errorf("%w: image CRC %08x, manifest committed %08x (stale or torn image)",
			ErrBadDatabase, sum, m.ImageCRC32)
	}
	cost := storage.DefaultCostModel()
	if opts.Cost != nil {
		cost = *opts.Cost
	}
	var newBackend func(pageSize int, pages int64) (storage.Backend, error)
	if opts.FileBacked {
		newBackend = func(pageSize int, pages int64) (storage.Backend, error) {
			return filestore.Create(filepath.Join(dir, PagesFileName), pageSize,
				filestore.Options{NoMmap: opts.NoMmap, OSync: opts.OSync})
		}
	}
	disk, err := storage.ReadImageInto(bytes.NewReader(raw), cost, newBackend)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	// From here on the disk may own real resources (page file, mmap
	// window); every validation failure must release them.
	fail := func(err error) (*Database, error) {
		_ = disk.Close()
		return nil, err
	}
	for _, dm := range m.Deltas {
		if err := applyDeltaFile(dir, dm, disk); err != nil {
			return fail(err)
		}
	}
	if disk.NumPages() != m.AllocatedPages {
		return nil, fmt.Errorf("%w: %d pages after deltas, manifest committed %d",
			ErrBadDatabase, disk.NumPages(), m.AllocatedPages)
	}
	if err := validateLayout(m, disk); err != nil {
		return fail(err)
	}

	if err := applyQuarantine(dir, disk); err != nil {
		return fail(err)
	}

	base := scene.Generate(m.City)
	if err := base.Validate(); err != nil {
		return fail(fmt.Errorf("%w: regenerated scene: %v", ErrBadDatabase, err))
	}
	sc, err := scene.Replay(base, m.Ops)
	if err != nil {
		return fail(fmt.Errorf("%w: op log: %v", ErrBadDatabase, err))
	}
	if err := sc.Validate(); err != nil {
		return fail(fmt.Errorf("%w: replayed scene: %v", ErrBadDatabase, err))
	}
	tree, err := core.OpenTree(sc, disk, m.Tree)
	if err != nil {
		return fail(fmt.Errorf("%w: %v", ErrBadDatabase, err))
	}
	h, err := vstore.OpenHorizontal(disk, tree.Grid, m.Horizontal)
	if err != nil {
		return fail(fmt.Errorf("%w: %v", ErrBadDatabase, err))
	}
	v, err := vstore.OpenVertical(disk, tree.Grid, m.Vertical)
	if err != nil {
		return fail(fmt.Errorf("%w: %v", ErrBadDatabase, err))
	}
	iv, err := vstore.OpenIndexedVertical(disk, tree.Grid, m.Indexed)
	if err != nil {
		return fail(fmt.Errorf("%w: %v", ErrBadDatabase, err))
	}
	nv, err := naive.Open(tree, m.Naive)
	if err != nil {
		return fail(fmt.Errorf("%w: %v", ErrBadDatabase, err))
	}
	tree.SetVStore(iv)
	return &Database{
		Scene:      sc,
		Disk:       disk,
		Tree:       tree,
		Horizontal: h,
		Vertical:   v,
		Indexed:    iv,
		Naive:      nv,
		Epoch:      m.Epoch,
		Ops:        m.Ops,
	}, nil
}

// applyDeltaFile verifies one committed epoch delta against its manifest
// pin (size, file CRC) and applies it to the disk; the delta's own
// checksum and chaining watermark are enforced by storage.ApplyDelta.
func applyDeltaFile(dir string, dm DeltaManifest, disk *storage.Disk) error {
	raw, err := os.ReadFile(filepath.Join(dir, dm.Name))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	if int64(len(raw)) != dm.Bytes {
		return fmt.Errorf("%w: delta %s is %d bytes, manifest committed %d (torn commit?)",
			ErrBadDatabase, dm.Name, len(raw), dm.Bytes)
	}
	if sum := crc32.ChecksumIEEE(raw); sum != dm.CRC32 {
		return fmt.Errorf("%w: delta %s CRC %08x, manifest committed %08x",
			ErrBadDatabase, dm.Name, sum, dm.CRC32)
	}
	if err := disk.ApplyDelta(bytes.NewReader(raw)); err != nil {
		return fmt.Errorf("%w: delta %s: %v", ErrBadDatabase, dm.Name, err)
	}
	return nil
}

// readManifest loads and structurally verifies manifest.json (parse,
// version, self-checksum) without touching the image.
func readManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrBadDatabase, err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d (want %d)", ErrBadDatabase, m.FormatVersion, FormatVersion)
	}
	sum, err := m.computeChecksum()
	if err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrBadDatabase, err)
	}
	if sum != m.Checksum {
		return nil, fmt.Errorf("%w: manifest checksum %08x, stored %08x", ErrBadDatabase, sum, m.Checksum)
	}
	return &m, nil
}

// validateLayout cross-checks every layout pointer in the manifest
// against the image's allocated page count before any of them is
// dereferenced.
func validateLayout(m *Manifest, disk *storage.Disk) error {
	num := disk.NumPages()
	check := func(what string, start storage.PageID, pages int) error {
		if start == storage.NilPage && pages == 0 {
			return nil
		}
		if start < 0 || pages < 0 || int64(start)+int64(pages) > num {
			return fmt.Errorf("%w: %s pages [%d, %d) exceed image (%d pages)",
				ErrBadDatabase, what, start, int64(start)+int64(pages), num)
		}
		return nil
	}
	pagesFor := func(bytes int64) int { return disk.PagesFor(bytes) }

	if m.Tree.NumNodes < 1 || m.Tree.NodeStride < 1 {
		return fmt.Errorf("%w: tree has %d nodes, stride %d", ErrBadDatabase, m.Tree.NumNodes, m.Tree.NodeStride)
	}
	if err := check("node records", m.Tree.NodePageBase, m.Tree.NumNodes*m.Tree.NodeStride); err != nil {
		return err
	}
	for obj, chain := range m.Tree.ObjExtents {
		for lvl, ext := range chain {
			if err := check(fmt.Sprintf("object %d LoD %d", obj, lvl), ext.Start, pagesFor(ext.NominalBytes)); err != nil {
				return err
			}
		}
	}
	slotPages := func(s vstore.SlotTableManifest) int {
		if s.PerPage <= 0 {
			return 0
		}
		return (s.Count + s.PerPage - 1) / s.PerPage
	}
	numCells := m.Tree.Grid.NX * m.Tree.Grid.NY
	if m.Horizontal.Codec {
		if err := check("horizontal codec heap", m.Horizontal.HeapBase, pagesFor(m.Horizontal.HeapBytes)); err != nil {
			return err
		}
		if err := check("horizontal codec directory", m.Horizontal.DirBase,
			pagesFor(8*int64(m.Horizontal.NumNodes)*int64(numCells))); err != nil {
			return err
		}
	} else if err := check("horizontal V-pages", m.Horizontal.Slots.Base, slotPages(m.Horizontal.Slots)); err != nil {
		return err
	}
	if m.Vertical.Codec {
		if err := check("vertical codec heap", m.Vertical.HeapBase, pagesFor(m.Vertical.HeapBytes)); err != nil {
			return err
		}
	} else {
		if err := check("vertical V-pages", m.Vertical.Slots.Base, slotPages(m.Vertical.Slots)); err != nil {
			return err
		}
		if err := check("vertical segments", m.Vertical.SegBase, m.Vertical.SegPages*numCells); err != nil {
			return err
		}
	}
	if m.Indexed.Codec {
		if err := check("indexed codec heap", m.Indexed.HeapBase, pagesFor(m.Indexed.HeapBytes)); err != nil {
			return err
		}
	} else {
		if err := check("indexed V-pages", m.Indexed.Slots.Base, slotPages(m.Indexed.Slots)); err != nil {
			return err
		}
		for cell, seg := range m.Indexed.Dir {
			if seg.Start == storage.NilPage {
				continue
			}
			if err := check(fmt.Sprintf("indexed segment for cell %d", cell), seg.Start, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// QuarantineFile is the JSON document of the quarantine.json sidecar.
type QuarantineFile struct {
	// Pages lists disk pages parked by fsck -repair: reads of them fail
	// fast with a CorruptError instead of decoding garbage, which
	// degraded-mode traversal absorbs.
	Pages []storage.PageID
}

// applyQuarantine loads the optional quarantine sidecar and parks its
// pages on the freshly opened disk. A missing file is the common case and
// means nothing is parked.
func applyQuarantine(dir string, disk *storage.Disk) error {
	raw, err := os.ReadFile(filepath.Join(dir, quarantineName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	var q QuarantineFile
	if err := json.Unmarshal(raw, &q); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBadDatabase, quarantineName, err)
	}
	num := disk.NumPages()
	for _, id := range q.Pages {
		if id < 0 || int64(id) >= num {
			return fmt.Errorf("%w: %s: page %d outside image (%d pages)", ErrBadDatabase, quarantineName, id, num)
		}
		disk.Quarantine(id)
	}
	return nil
}

// writeQuarantine merges pages into the quarantine sidecar (creating it
// if absent) and writes it atomically. The merged, sorted page list is
// returned.
func writeQuarantine(dir string, pages []storage.PageID) ([]storage.PageID, error) {
	seen := map[storage.PageID]bool{}
	var q QuarantineFile
	if raw, err := os.ReadFile(filepath.Join(dir, quarantineName)); err == nil {
		// A malformed existing sidecar is simply replaced — it carries
		// derived damage records, not primary data.
		_ = json.Unmarshal(raw, &q)
	}
	merged := make([]storage.PageID, 0, len(q.Pages)+len(pages))
	for _, list := range [][]storage.PageID{q.Pages, pages} {
		for _, id := range list {
			if !seen[id] {
				seen[id] = true
				merged = append(merged, id)
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	raw, err := json.MarshalIndent(&QuarantineFile{Pages: merged}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dbfile: %s: %w", quarantineName, err)
	}
	if err := writeFileAtomic(dir, quarantineName, raw, "quarantine-tmp"); err != nil {
		return nil, err
	}
	return merged, syncDir(dir)
}
