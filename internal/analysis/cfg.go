package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the shared control-flow layer under the path-sensitive
// passes (pinrelease, errflow, atomicpub): a per-function CFG over the
// raw go/ast, built without any dependency outside the standard library.
//
// The graph decomposes short-circuit conditions, so every edge out of a
// condition block carries the *leaf* comparison that is known true (or
// false, when Negate is set) on that edge — exactly what a dataflow
// client needs to refine facts like "err is non-nil here" or "the pin is
// nil on this path". Loops, labeled break/continue, goto, switch (with
// fallthrough), type switch, and select are all wired; `defer` keeps its
// syntactic position as an ordinary node (the registration point is what
// obligation-style passes reason about) and is additionally collected in
// CFG.Defers. A `panic(...)` statement terminates its path without an
// edge to Exit: the unwinding path is outside the passes' contracts,
// matching the previous hand-rolled walkers.
type CFG struct {
	Entry *CFGBlock
	// Exit is the single synthetic exit: every return statement and
	// every fall-off-the-end path edges here. A block's dataflow fact at
	// Exit is the "function is over" state.
	Exit   *CFGBlock
	Blocks []*CFGBlock
	// Defers lists every defer statement in syntactic order.
	Defers []*ast.DeferStmt
}

// CFGBlock is a straight-line run of statements and leaf condition
// expressions with no internal control flow.
type CFGBlock struct {
	Index int
	// Nodes holds, in execution order: simple statements (assignments,
	// expression statements, send/incdec/decl/go/defer/return), switch
	// tags and type-switch assignments, select comm statements, range
	// statements (standing for the per-iteration binding), and leaf
	// condition expressions produced by short-circuit decomposition.
	Nodes []ast.Node
	Succs []CFGEdge
}

// CFGEdge is one control transfer. When Cond is non-nil the edge is
// taken exactly when Cond evaluates to !Negate.
type CFGEdge struct {
	To     *CFGBlock
	Cond   ast.Expr
	Negate bool
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}, labels: make(map[string]*CFGBlock)}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	end := b.stmtList(body.List, b.g.Entry)
	b.edge(end, b.g.Exit, nil, false)
	// goto targets may be declared after the jump; resolve at the end.
	for _, pj := range b.gotos {
		if to := b.labels[pj.label]; to != nil {
			b.edge(pj.from, to, nil, false)
		}
	}
	return b.g
}

type jumpScope struct {
	label string
	to    *CFGBlock
}

type pendingJump struct {
	from  *CFGBlock
	label string
}

type cfgBuilder struct {
	g      *CFG
	breaks []jumpScope // innermost-last break targets (loops, switch, select)
	conts  []jumpScope // innermost-last continue targets (loops only)
	labels map[string]*CFGBlock
	gotos  []pendingJump
	fallTo *CFGBlock // next case body, inside a switch clause
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFGBlock, cond ast.Expr, negate bool) {
	from.Succs = append(from.Succs, CFGEdge{To: to, Cond: cond, Negate: negate})
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, cur *CFGBlock) *CFGBlock {
	for _, s := range list {
		cur = b.stmt(s, cur, "")
	}
	return cur
}

// stmt wires one statement starting in cur and returns the block where
// control continues. Terminating statements (return, break, panic)
// return a fresh block with no predecessors: anything appended there is
// dead code and stays unreached by the solver.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *CFGBlock, label string) *CFGBlock {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(st.List, cur)

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edge(cur, lb, nil, false)
		b.labels[st.Label.Name] = lb
		return b.stmt(st.Stmt, lb, st.Label.Name)

	case *ast.IfStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur, "")
		}
		thenB := b.newBlock()
		join := b.newBlock()
		elseB := join
		if st.Else != nil {
			elseB = b.newBlock()
		}
		b.cond(st.Cond, cur, thenB, elseB)
		b.edge(b.stmtList(st.Body.List, thenB), join, nil, false)
		if st.Else != nil {
			b.edge(b.stmt(st.Else, elseB, ""), join, nil, false)
		}
		return join

	case *ast.ForStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur, "")
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		exit := b.newBlock()
		b.edge(cur, head, nil, false)
		if st.Cond != nil {
			b.cond(st.Cond, head, body, exit)
		} else {
			b.edge(head, body, nil, false)
		}
		b.pushLoop(label, exit, post)
		bodyEnd := b.stmtList(st.Body.List, body)
		b.popLoop()
		b.edge(bodyEnd, post, nil, false)
		if st.Post != nil {
			post.Nodes = append(post.Nodes, st.Post)
		}
		b.edge(post, head, nil, false) // back edge
		return exit

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		// The RangeStmt node stands for the per-iteration key/value
		// binding (and the once-evaluated range operand).
		head.Nodes = append(head.Nodes, st)
		b.edge(cur, head, nil, false)
		b.edge(head, body, nil, false)
		b.edge(head, exit, nil, false)
		b.pushLoop(label, exit, head)
		bodyEnd := b.stmtList(st.Body.List, body)
		b.popLoop()
		b.edge(bodyEnd, head, nil, false) // back edge
		return exit

	case *ast.SwitchStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur, "")
		}
		if st.Tag != nil {
			cur.Nodes = append(cur.Nodes, st.Tag)
		}
		return b.cases(st.Body, cur, label, false)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur, "")
		}
		cur.Nodes = append(cur.Nodes, st.Assign)
		return b.cases(st.Body, cur, label, false)

	case *ast.SelectStmt:
		return b.cases(st.Body, cur, label, true)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, st)
		b.edge(cur, b.g.Exit, nil, false)
		return b.newBlock()

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			if to := b.target(b.breaks, st.Label); to != nil {
				b.edge(cur, to, nil, false)
			}
		case token.CONTINUE:
			if to := b.target(b.conts, st.Label); to != nil {
				b.edge(cur, to, nil, false)
			}
		case token.GOTO:
			b.gotos = append(b.gotos, pendingJump{from: cur, label: st.Label.Name})
		case token.FALLTHROUGH:
			if b.fallTo != nil {
				b.edge(cur, b.fallTo, nil, false)
			}
		}
		return b.newBlock()

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, st)
		cur.Nodes = append(cur.Nodes, st)
		return cur

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, st)
		if isPanicCall(st.X) {
			return b.newBlock()
		}
		return cur

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, EmptyStmt.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// cases wires a switch/type-switch/select body: every clause entry hangs
// off cur, the clause ends join at a shared exit, and fallthrough jumps
// to the next clause's body. A switch without a default keeps the
// no-case-taken edge to the exit; a select without a default blocks, so
// it gets none.
func (b *cfgBuilder) cases(body *ast.BlockStmt, cur *CFGBlock, label string, isSelect bool) *CFGBlock {
	exit := b.newBlock()
	b.breaks = append(b.breaks, jumpScope{label: label, to: exit})
	var entries []*CFGBlock
	var bodies [][]ast.Stmt
	sawDefault := false
	for _, cl := range body.List {
		eb := b.newBlock()
		b.edge(cur, eb, nil, false)
		switch c := cl.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				sawDefault = true
			}
			for _, e := range c.List {
				eb.Nodes = append(eb.Nodes, e)
			}
			bodies = append(bodies, c.Body)
		case *ast.CommClause:
			if c.Comm == nil {
				sawDefault = true
			} else {
				eb.Nodes = append(eb.Nodes, c.Comm)
			}
			bodies = append(bodies, c.Body)
		}
		entries = append(entries, eb)
	}
	if !sawDefault && !isSelect {
		b.edge(cur, exit, nil, false)
	}
	for i, eb := range entries {
		savedFall := b.fallTo
		if !isSelect && i+1 < len(entries) {
			b.fallTo = entries[i+1]
		} else {
			b.fallTo = nil
		}
		b.edge(b.stmtList(bodies[i], eb), exit, nil, false)
		b.fallTo = savedFall
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	return exit
}

// cond wires e evaluated for truth starting in cur: control reaches t
// when e is true and f when false. Short-circuit operators split into
// chained condition blocks so each out-edge carries one leaf comparison.
func (b *cfgBuilder) cond(e ast.Expr, cur, t, f *CFGBlock) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, cur, t, f)
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, cur, f, t)
			return
		}
		b.leaf(e, cur, t, f)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(x.X, cur, mid, f)
			b.cond(x.Y, mid, t, f)
		case token.LOR:
			mid := b.newBlock()
			b.cond(x.X, cur, t, mid)
			b.cond(x.Y, mid, t, f)
		default:
			b.leaf(e, cur, t, f)
		}
	default:
		b.leaf(e, cur, t, f)
	}
}

// leaf records the evaluated condition as a node (its sub-expressions
// run on this path) and emits the true/false edges carrying it.
func (b *cfgBuilder) leaf(e ast.Expr, cur, t, f *CFGBlock) {
	cur.Nodes = append(cur.Nodes, e)
	b.edge(cur, t, e, false)
	b.edge(cur, f, e, true)
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *CFGBlock) {
	b.breaks = append(b.breaks, jumpScope{label: label, to: brk})
	b.conts = append(b.conts, jumpScope{label: label, to: cont})
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
}

// target resolves a break/continue: the innermost scope when unlabeled,
// the matching label otherwise.
func (b *cfgBuilder) target(stack []jumpScope, lbl *ast.Ident) *CFGBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		if lbl == nil || stack[i].label == lbl.Name {
			return stack[i].to
		}
	}
	return nil
}

// isPanicCall matches a direct panic(...) call statement.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
