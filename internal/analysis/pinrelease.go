package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PinReleasePass enforces the buffer-pool pin/release contract
// (DESIGN.md §10): every page pinned with PinPage (or any call returning
// a *storage.PinnedPage) must reach Release() on every control-flow path
// of the acquiring function, or visibly transfer ownership (be returned,
// stored into a composite/field, or passed to another function as the
// pin value itself — reading p.Data transfers nothing).
//
// The checker is defer-aware — `defer p.Release()` covers every later
// path including panics — and path-sensitive over the statement
// structure: an early return inside a branch taken before the release is
// a leak even when the fall-through path releases correctly.
type PinReleasePass struct{}

// Name implements Pass.
func (*PinReleasePass) Name() string { return "pinrelease" }

// Run implements Pass.
func (p *PinReleasePass) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			c := &pinChecker{pkg: pkg}
			exit := c.checkBlock(body.List, nil)
			for _, v := range exit {
				c.report(v, "can fall off the end of the function")
			}
			out = append(out, c.findings...)
			// Keep walking: nested function literals get their own
			// independent analysis.
			return true
		})
	}
	return out
}

// isPinAcquisition reports whether call returns a pinned page as its
// first result: any call whose first result type is *PinnedPage. Matching
// on the result type (not the callee name) catches wrappers around
// PinPage too.
func isPinAcquisition(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return false
	}
	first := tv.Type
	if tup, ok := tv.Type.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		first = tup.At(0).Type()
	}
	ptr, ok := first.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "PinnedPage"
}

// pinVar is one tracked pinned-page variable within a function body.
type pinVar struct {
	obj types.Object // nil for a discarded result
	pos token.Pos    // acquisition site, for the diagnostic
	// errObj is the error variable bound alongside the pin (`p, err :=
	// PinPage(...)`); on paths where errObj is known non-nil the pin is
	// nil, so the obligation does not exist there.
	errObj types.Object
}

// pinState is the set of live (unreleased, unescaped) pins on the
// current path.
type pinState []*pinVar

func (s pinState) without(obj types.Object) pinState {
	out := make(pinState, 0, len(s))
	for _, v := range s {
		if v.obj != obj {
			out = append(out, v)
		}
	}
	return out
}

func (s pinState) has(obj types.Object) bool {
	for _, v := range s {
		if v.obj == obj {
			return true
		}
	}
	return false
}

// mergePins unions two path states (a pin unreleased on either path is
// still an obligation).
func mergePins(a, b pinState) pinState {
	out := append(pinState{}, a...)
	for _, v := range b {
		if v.obj == nil || !out.has(v.obj) {
			out = append(out, v)
		}
	}
	return out
}

type pinChecker struct {
	pkg      *Package
	findings []Finding
}

func (c *pinChecker) report(v *pinVar, why string) {
	name := "pinned page"
	if v.obj != nil {
		name = "pinned page " + v.obj.Name()
	}
	c.findings = append(c.findings, finding("pinrelease", c.pkg.Fset, v.pos,
		"%s %s without Release (a leaked pin keeps its frame unevictable)", name, why))
}

// checkBlock walks stmts with the set of live pins, returning the live
// set at the fall-through exit. Terminating paths (return) are checked
// inline.
func (c *pinChecker) checkBlock(stmts []ast.Stmt, live pinState) pinState {
	for _, s := range stmts {
		live = c.checkStmt(s, live)
	}
	return live
}

// checkStmt processes one statement, returning the updated live set.
func (c *pinChecker) checkStmt(s ast.Stmt, live pinState) pinState {
	switch st := s.(type) {
	case *ast.AssignStmt:
		return c.checkAssign(st, live)
	case *ast.DeferStmt:
		if obj := c.releaseTarget(st.Call); obj != nil {
			return live.without(obj)
		}
		return c.escapeThroughCall(st.Call, live)
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if obj := c.releaseTarget(call); obj != nil {
				return live.without(obj)
			}
			if isPinAcquisition(c.pkg, call) {
				c.report(&pinVar{pos: call.Pos()}, "is discarded")
				return live
			}
			return c.escapeThroughCall(call, live)
		}
		return live
	case *ast.ReturnStmt:
		escaped := make(map[types.Object]bool)
		for _, r := range st.Results {
			c.collectEscapes(r, escaped)
		}
		for _, v := range live {
			if !escaped[v.obj] {
				c.report(v, "can leave the function on this return path")
			}
		}
		return nil
	case *ast.BranchStmt:
		// break/continue/goto: the pins stay live on the jumped-to path;
		// approximating it with the current state keeps loops sound
		// enough without a full CFG.
		return live
	case *ast.IfStmt:
		if st.Init != nil {
			live = c.checkStmt(st.Init, live)
		}
		thenLive, elseLive := c.splitOnErrCheck(st.Cond, live)
		thenOut := c.checkBlock(st.Body.List, thenLive)
		elseOut := elseLive
		if st.Else != nil {
			elseOut = c.checkStmt(st.Else, elseLive)
		}
		return mergePins(thenOut, elseOut)
	case *ast.BlockStmt:
		return c.checkBlock(st.List, live)
	case *ast.ForStmt:
		if st.Init != nil {
			live = c.checkStmt(st.Init, live)
		}
		// The body may run zero times, so pins released only inside it
		// are still live on the fall-through path.
		c.checkBlock(st.Body.List, live)
		return live
	case *ast.RangeStmt:
		c.checkBlock(st.Body.List, live)
		return live
	case *ast.SwitchStmt:
		if st.Init != nil {
			live = c.checkStmt(st.Init, live)
		}
		return c.checkCases(st.Body, live)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			live = c.checkStmt(st.Init, live)
		}
		return c.checkCases(st.Body, live)
	case *ast.SelectStmt:
		return c.checkCases(st.Body, live)
	case *ast.GoStmt:
		return c.escapeThroughCall(st.Call, live)
	case *ast.SendStmt:
		escaped := make(map[types.Object]bool)
		c.collectEscapes(st.Value, escaped)
		return live.withoutAll(escaped)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			escaped := make(map[types.Object]bool)
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						c.collectEscapes(val, escaped)
					}
				}
			}
			return live.withoutAll(escaped)
		}
		return live
	default:
		return live
	}
}

// splitOnErrCheck refines the live set per branch of `if <cond>`: inside
// `err != nil` the pins acquired alongside err are nil and carry no
// obligation; inside `err == nil` (and after its else) they do.
func (c *pinChecker) splitOnErrCheck(cond ast.Expr, live pinState) (thenLive, elseLive pinState) {
	thenLive, elseLive = live, live
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return
	}
	var errIdent *ast.Ident
	if id, isID := bin.X.(*ast.Ident); isID && isNilIdent(bin.Y) {
		errIdent = id
	} else if id, isID := bin.Y.(*ast.Ident); isID && isNilIdent(bin.X) {
		errIdent = id
	}
	if errIdent == nil {
		return
	}
	obj := c.pkg.Info.Uses[errIdent]
	if obj == nil {
		return
	}
	drop := func(s pinState) pinState {
		out := s
		for _, v := range s {
			if v.errObj == obj {
				out = out.without(v.obj)
			}
		}
		return out
	}
	switch bin.Op {
	case token.NEQ: // err != nil: pin is nil in the then-branch
		thenLive = drop(live)
	case token.EQL: // err == nil: pin is nil in the else-branch
		elseLive = drop(live)
	}
	return
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func (s pinState) withoutAll(objs map[types.Object]bool) pinState {
	out := s
	for obj := range objs {
		out = out.without(obj)
	}
	return out
}

// checkCases walks each case clause of a switch/select body as an
// independent branch and merges the exits.
func (c *pinChecker) checkCases(body *ast.BlockStmt, live pinState) pinState {
	var merged pinState
	sawDefault := false
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
			if cl.List == nil {
				sawDefault = true
			}
		case *ast.CommClause:
			stmts = cl.Body
			if cl.Comm == nil {
				sawDefault = true
			}
		}
		merged = mergePins(merged, c.checkBlock(stmts, live))
	}
	if !sawDefault {
		// Without a default clause the no-case-taken path keeps the
		// incoming obligations alive.
		merged = mergePins(merged, live)
	}
	return merged
}

// checkAssign handles `p, err := d.PinPage(...)` acquisitions, and
// escapes through the RHS of ordinary assignments.
func (c *pinChecker) checkAssign(st *ast.AssignStmt, live pinState) pinState {
	if len(st.Rhs) == 1 {
		if call, ok := st.Rhs[0].(*ast.CallExpr); ok && isPinAcquisition(c.pkg, call) {
			live = c.escapeThroughCall(call, live)
			if len(st.Lhs) >= 1 {
				switch lhs := st.Lhs[0].(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						c.report(&pinVar{pos: call.Pos()}, "is discarded")
						return live
					}
					var obj types.Object
					if o := c.pkg.Info.Defs[lhs]; o != nil {
						obj = o
					} else if o := c.pkg.Info.Uses[lhs]; o != nil {
						obj = o
					}
					if obj == nil {
						return live
					}
					if live.has(obj) {
						for _, v := range live {
							if v.obj == obj {
								c.report(v, "is overwritten by a new acquisition")
							}
						}
						live = live.without(obj)
					}
					var errObj types.Object
					if len(st.Lhs) >= 2 {
						if eid, ok := st.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
							if o := c.pkg.Info.Defs[eid]; o != nil {
								errObj = o
							} else if o := c.pkg.Info.Uses[eid]; o != nil {
								errObj = o
							}
						}
					}
					return append(live[:len(live):len(live)], &pinVar{obj: obj, pos: call.Pos(), errObj: errObj})
				default:
					// Stored straight into a field, slice element, or map:
					// ownership transfers to the container.
					return live
				}
			}
			return live
		}
	}
	escaped := make(map[types.Object]bool)
	for _, r := range st.Rhs {
		c.collectEscapes(r, escaped)
	}
	return live.withoutAll(escaped)
}

// releaseTarget returns the tracked object released by an `x.Release()`
// call, or nil.
func (c *pinChecker) releaseTarget(call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" || len(call.Args) != 0 {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return c.pkg.Info.Uses[id]
}

// escapeThroughCall drops pins passed as arguments: ownership moves to
// the callee.
func (c *pinChecker) escapeThroughCall(call *ast.CallExpr, live pinState) pinState {
	escaped := make(map[types.Object]bool)
	for _, a := range call.Args {
		c.collectEscapes(a, escaped)
	}
	return live.withoutAll(escaped)
}

// collectEscapes records tracked variables whose pin *value* flows into
// e: a bare identifier (possibly parenthesized, address-taken, or nested
// in a composite literal or call argument). Selections like p.Data and
// comparisons like p != nil do not transfer the obligation — only the
// *PinnedPage itself moving on counts, so the pass stays quiet on normal
// read-the-data usage.
func (c *pinChecker) collectEscapes(e ast.Expr, out map[types.Object]bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if o := c.pkg.Info.Uses[x]; o != nil {
			out[o] = true
		}
	case *ast.ParenExpr:
		c.collectEscapes(x.X, out)
	case *ast.UnaryExpr:
		c.collectEscapes(x.X, out)
	case *ast.StarExpr:
		c.collectEscapes(x.X, out)
	case *ast.CallExpr:
		for _, a := range x.Args {
			c.collectEscapes(a, out)
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			c.collectEscapes(el, out)
		}
	case *ast.KeyValueExpr:
		c.collectEscapes(x.Value, out)
	case *ast.FuncLit:
		// A closure capturing the pin takes over the obligation.
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if o := c.pkg.Info.Uses[id]; o != nil {
					out[o] = true
				}
			}
			return true
		})
	}
}
