package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PinReleasePass enforces the buffer-pool pin/release contract
// (DESIGN.md §10): every page pinned with PinPage (or any call returning
// a *storage.PinnedPage) must reach Release() on every control-flow path
// of the acquiring function, or visibly transfer ownership (be returned,
// stored into a composite/field, or passed to another function as the
// pin value itself — reading p.Data transfers nothing).
//
// The pass runs on the shared CFG/dataflow engine: the live-pin set is a
// forward dataflow fact (join = union — a pin unreleased on either
// incoming path is still an obligation), and nil-ness refinement comes
// from the CFG's decomposed condition edges, so `if err != nil` after
// the acquisition carries no obligation on its true edge and `if p ==
// nil` drops the pin on its true edge — including through short-circuit
// chains the old structural walker could not see. `defer p.Release()`
// covers every later path from its registration point, and loop back
// edges propagate an unreleased in-loop acquisition to the loop exit.
type PinReleasePass struct{}

// Name implements Pass.
func (*PinReleasePass) Name() string { return "pinrelease" }

// Run implements Pass.
func (p *PinReleasePass) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			out = append(out, runPinRelease(pkg, body)...)
			// Keep walking: nested function literals get their own
			// independent analysis.
			return true
		})
	}
	return out
}

// runPinRelease solves the live-pin dataflow over one function body,
// then replays each reached block once in reporting mode so every
// diagnostic is emitted exactly once.
func runPinRelease(pkg *Package, body *ast.BlockStmt) []Finding {
	g := BuildCFG(body)
	flow := &pinFlow{pkg: pkg}
	res := Solve(g, flow)
	flow.report = true
	for _, blk := range g.Blocks {
		if !res.Reached[blk.Index] || blk == g.Exit {
			continue
		}
		ReplayBlock(blk, res.In[blk.Index], flow)
	}
	if res.Reached[g.Exit.Index] {
		for _, v := range res.In[g.Exit.Index].(pinFact) {
			flow.reportPin(v, "can fall off the end of the function")
		}
	}
	return flow.findings
}

// isPinAcquisition reports whether call returns a pinned page as its
// first result: any call whose first result type is *PinnedPage. Matching
// on the result type (not the callee name) catches wrappers around
// PinPage too.
func isPinAcquisition(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return false
	}
	first := tv.Type
	if tup, ok := tv.Type.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		first = tup.At(0).Type()
	}
	ptr, ok := first.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "PinnedPage"
}

// pinVar is one tracked pinned-page variable within a function body.
type pinVar struct {
	obj types.Object // the pin variable
	pos token.Pos    // acquisition site, for the diagnostic
	// errObj is the error variable bound alongside the pin (`p, err :=
	// PinPage(...)`); on edges where errObj is known non-nil the pin is
	// nil, so the obligation does not exist there.
	errObj types.Object
}

// pinFact is the set of live (unreleased, unescaped) pins, kept in
// canonical order (by the pin object's declaration position) so Equal
// is a plain deep comparison. Facts are immutable values.
type pinFact []pinVar

func (s pinFact) has(obj types.Object) bool {
	for _, v := range s {
		if v.obj == obj {
			return true
		}
	}
	return false
}

func (s pinFact) without(obj types.Object) pinFact {
	if !s.has(obj) {
		return s
	}
	out := make(pinFact, 0, len(s))
	for _, v := range s {
		if v.obj != obj {
			out = append(out, v)
		}
	}
	return out
}

func (s pinFact) withoutAll(objs map[types.Object]bool) pinFact {
	out := s
	for obj := range objs {
		out = out.without(obj)
	}
	return out
}

func (s pinFact) with(v pinVar) pinFact {
	out := make(pinFact, len(s), len(s)+1)
	copy(out, s)
	out = append(out, v)
	sort.Slice(out, func(i, j int) bool { return out[i].obj.Pos() < out[j].obj.Pos() })
	return out
}

// pinFlow is the FlowClient: solving mode computes facts, reporting
// mode replays them and emits findings.
type pinFlow struct {
	pkg      *Package
	report   bool
	findings []Finding
}

// Entry implements FlowClient.
func (c *pinFlow) Entry() any { return pinFact(nil) }

// Join implements FlowClient: union — an obligation on either path
// survives. On a conflict the earlier acquisition position wins and a
// disagreeing error binding degrades to none (no refinement).
func (c *pinFlow) Join(a, b any) any {
	fa, fb := a.(pinFact), b.(pinFact)
	if len(fb) == 0 {
		return fa
	}
	if len(fa) == 0 {
		return fb
	}
	out := append(pinFact{}, fa...)
	for _, v := range fb {
		merged := false
		for i := range out {
			if out[i].obj == v.obj {
				if v.pos < out[i].pos {
					out[i].pos = v.pos
				}
				if out[i].errObj != v.errObj {
					out[i].errObj = nil
				}
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].obj.Pos() < out[j].obj.Pos() })
	return out
}

// Equal implements FlowClient.
func (c *pinFlow) Equal(a, b any) bool {
	fa, fb := a.(pinFact), b.(pinFact)
	if len(fa) != len(fb) {
		return false
	}
	for i := range fa {
		if fa[i] != fb[i] {
			return false
		}
	}
	return true
}

// Refine implements FlowClient: on an edge where `x != nil` holds, pins
// acquired alongside the error x are dropped (the pin is nil there); on
// an edge where `x == nil` holds, the pin x itself is nil and carries
// no obligation.
func (c *pinFlow) Refine(cond ast.Expr, negate bool, fact any) any {
	live := fact.(pinFact)
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return live
	}
	var id *ast.Ident
	if i, isID := bin.X.(*ast.Ident); isID && isNilIdent(bin.Y) {
		id = i
	} else if i, isID := bin.Y.(*ast.Ident); isID && isNilIdent(bin.X) {
		id = i
	}
	if id == nil {
		return live
	}
	obj := c.pkg.Info.Uses[id]
	if obj == nil {
		return live
	}
	op := bin.Op
	if negate {
		switch op {
		case token.NEQ:
			op = token.EQL
		case token.EQL:
			op = token.NEQ
		default:
			return live
		}
	}
	switch op {
	case token.NEQ: // x != nil holds: err-bound pins failed to acquire
		out := live
		for _, v := range live {
			if v.errObj == obj {
				out = out.without(v.obj)
			}
		}
		return out
	case token.EQL: // x == nil holds: the pin itself is nil
		return live.without(obj)
	}
	return live
}

// Transfer implements FlowClient.
func (c *pinFlow) Transfer(n ast.Node, fact any) any {
	live := fact.(pinFact)
	switch st := n.(type) {
	case *ast.AssignStmt:
		return c.assign(st, live)
	case *ast.DeferStmt:
		if obj := c.releaseTarget(st.Call); obj != nil {
			return live.without(obj)
		}
		return c.escapeThroughCall(st.Call, live)
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if obj := c.releaseTarget(call); obj != nil {
				return live.without(obj)
			}
			if isPinAcquisition(c.pkg, call) {
				c.reportAt(call.Pos(), nil, "is discarded")
				return live
			}
			return c.escapeThroughCall(call, live)
		}
		return live
	case *ast.GoStmt:
		return c.escapeThroughCall(st.Call, live)
	case *ast.SendStmt:
		escaped := make(map[types.Object]bool)
		c.collectEscapes(st.Value, escaped)
		return live.withoutAll(escaped)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			escaped := make(map[types.Object]bool)
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						c.collectEscapes(val, escaped)
					}
				}
			}
			return live.withoutAll(escaped)
		}
		return live
	case *ast.ReturnStmt:
		escaped := make(map[types.Object]bool)
		for _, r := range st.Results {
			c.collectEscapes(r, escaped)
		}
		for _, v := range live {
			if !escaped[v.obj] {
				c.reportPin(v, "can leave the function on this return path")
			}
		}
		return pinFact(nil)
	case *ast.RangeStmt:
		escaped := make(map[types.Object]bool)
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			for _, a := range call.Args {
				c.collectEscapes(a, escaped)
			}
		}
		return live.withoutAll(escaped)
	case ast.Expr:
		// Leaf condition, switch tag, or case expression: a call there
		// passes ownership through its arguments like any other call.
		if call, ok := n.(*ast.CallExpr); ok {
			return c.escapeThroughCall(call, live)
		}
		return live
	default:
		return live
	}
}

// assign handles `p, err := d.PinPage(...)` acquisitions, and escapes
// through the RHS of ordinary assignments.
func (c *pinFlow) assign(st *ast.AssignStmt, live pinFact) pinFact {
	if len(st.Rhs) == 1 {
		if call, ok := st.Rhs[0].(*ast.CallExpr); ok && isPinAcquisition(c.pkg, call) {
			live = c.escapeThroughCall(call, live)
			if len(st.Lhs) >= 1 {
				switch lhs := st.Lhs[0].(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						c.reportAt(call.Pos(), nil, "is discarded")
						return live
					}
					var obj types.Object
					if o := c.pkg.Info.Defs[lhs]; o != nil {
						obj = o
					} else if o := c.pkg.Info.Uses[lhs]; o != nil {
						obj = o
					}
					if obj == nil {
						return live
					}
					if live.has(obj) {
						for _, v := range live {
							if v.obj == obj {
								c.reportPin(v, "is overwritten by a new acquisition")
							}
						}
						live = live.without(obj)
					}
					var errObj types.Object
					if len(st.Lhs) >= 2 {
						if eid, ok := st.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
							if o := c.pkg.Info.Defs[eid]; o != nil {
								errObj = o
							} else if o := c.pkg.Info.Uses[eid]; o != nil {
								errObj = o
							}
						}
					}
					return live.with(pinVar{obj: obj, pos: call.Pos(), errObj: errObj})
				default:
					// Stored straight into a field, slice element, or map:
					// ownership transfers to the container.
					return live
				}
			}
			return live
		}
	}
	escaped := make(map[types.Object]bool)
	for _, r := range st.Rhs {
		c.collectEscapes(r, escaped)
	}
	return live.withoutAll(escaped)
}

func (c *pinFlow) reportPin(v pinVar, why string) {
	c.reportAt(v.pos, v.obj, why)
}

func (c *pinFlow) reportAt(pos token.Pos, obj types.Object, why string) {
	if !c.report {
		return
	}
	name := "pinned page"
	if obj != nil {
		name = "pinned page " + obj.Name()
	}
	c.findings = append(c.findings, finding("pinrelease", c.pkg.Fset, pos,
		"%s %s without Release (a leaked pin keeps its frame unevictable)", name, why))
}

// releaseTarget returns the tracked object released by an `x.Release()`
// call, or nil.
func (c *pinFlow) releaseTarget(call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" || len(call.Args) != 0 {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return c.pkg.Info.Uses[id]
}

// escapeThroughCall drops pins passed as arguments: ownership moves to
// the callee.
func (c *pinFlow) escapeThroughCall(call *ast.CallExpr, live pinFact) pinFact {
	escaped := make(map[types.Object]bool)
	for _, a := range call.Args {
		c.collectEscapes(a, escaped)
	}
	return live.withoutAll(escaped)
}

// collectEscapes records tracked variables whose pin *value* flows into
// e: a bare identifier (possibly parenthesized, address-taken, or nested
// in a composite literal or call argument). Selections like p.Data and
// comparisons like p != nil do not transfer the obligation — only the
// *PinnedPage itself moving on counts, so the pass stays quiet on normal
// read-the-data usage.
func (c *pinFlow) collectEscapes(e ast.Expr, out map[types.Object]bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if o := c.pkg.Info.Uses[x]; o != nil {
			out[o] = true
		}
	case *ast.ParenExpr:
		c.collectEscapes(x.X, out)
	case *ast.UnaryExpr:
		c.collectEscapes(x.X, out)
	case *ast.StarExpr:
		c.collectEscapes(x.X, out)
	case *ast.CallExpr:
		for _, a := range x.Args {
			c.collectEscapes(a, out)
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			c.collectEscapes(el, out)
		}
	case *ast.KeyValueExpr:
		c.collectEscapes(x.Value, out)
	case *ast.FuncLit:
		// A closure capturing the pin takes over the obligation.
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if o := c.pkg.Info.Uses[id]; o != nil {
					out[o] = true
				}
			}
			return true
		})
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
