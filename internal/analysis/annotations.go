package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The snapshot-immutability and publication passes are driven by
// machine-readable annotations inside ordinary doc comments, so the
// contract lives next to the code it governs:
//
//	hdov:frozen-after-publish      (type doc)   instances are immutable
//	                                            once reachable from a
//	                                            published epoch
//	hdov:construction-window       (func doc)   this function builds
//	                                            not-yet-published state;
//	                                            stores to frozen types are
//	                                            legal here
//	hdov:guarded-by <lock|atomic>  (field doc/  stores require the named
//	                                line)       sibling mutex held, or the
//	                                            value "atomic" to forbid
//	                                            direct stores entirely
//	hdov:caller-holds <lock>       (func doc)   callers acquire the named
//	                                            lock before calling; the
//	                                            analysis seeds it as held
//	hdov:hot-path                  (func doc)   allocation-disciplined
//	                                            traversal frontier; loops
//	                                            here reject per-iteration
//	                                            allocation
//
// Annotations on types and fields are resolved in the *declaring*
// package, which may differ from the package under analysis (e.g. the
// root package storing into core types), so lookups go through the
// Loader's package cache via LoaderAware.

// LoaderAware is implemented by passes that need to resolve symbols in
// packages other than the one under analysis; the driver hands them the
// loader before running.
type LoaderAware interface {
	SetLoader(*Loader)
}

// Cached returns an already-loaded (or module-loadable) package by
// import path, or nil when the path is outside the module.
func (l *Loader) Cached(path string) *Package {
	if p, ok := l.cache[path]; ok {
		return p
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		if p, err := l.Load(path); err == nil {
			return p
		}
	}
	return nil
}

// annotations resolves hdov: markers for one package under analysis,
// following objects to their declaring packages through the loader.
type annotations struct {
	pkg    *Package
	loader *Loader
}

func newAnnotations(pkg *Package, loader *Loader) *annotations {
	return &annotations{pkg: pkg, loader: loader}
}

// commentAnnotation reports whether any comment line carries the
// annotation, and returns the first word following it (the annotation's
// value). The annotation must open its comment line — `// hdov:...` —
// so prose that merely *mentions* an annotation name (a pass's own doc
// comment, say) does not accidentally annotate its declaration.
func commentAnnotation(groups []*ast.CommentGroup, name string) (string, bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			line := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(line, name)
			if !ok {
				continue
			}
			// Require a word boundary so hdov:hot-path does not match a
			// longer annotation name.
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != '.' && rest[0] != ',' && rest[0] != ')' {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				return strings.TrimRight(fields[0], ".,;:)"), true
			}
			return "", true
		}
	}
	return "", false
}

// declaringPackage locates the package that declares obj: the package
// under analysis, or a module sibling through the loader cache.
func (a *annotations) declaringPackage(obj types.Object) *Package {
	if obj.Pkg() == nil {
		return nil
	}
	if obj.Pkg() == a.pkg.Types {
		return a.pkg
	}
	if a.loader == nil {
		return nil
	}
	return a.loader.Cached(obj.Pkg().Path())
}

// typeAnnotation looks up an annotation on the type declaration of a
// named type.
func (a *annotations) typeAnnotation(tn *types.TypeName, name string) (string, bool) {
	pkg := a.declaringPackage(tn)
	if pkg == nil {
		return "", false
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Pos() != tn.Pos() {
					continue
				}
				return commentAnnotation([]*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment}, name)
			}
		}
	}
	return "", false
}

// fieldAnnotation looks up an annotation on a struct field declaration
// (doc comment above it or line comment beside it).
func (a *annotations) fieldAnnotation(field *types.Var, name string) (string, bool) {
	pkg := a.declaringPackage(field)
	if pkg == nil {
		return "", false
	}
	var val string
	var found bool
	for _, f := range pkg.Files {
		if found {
			break
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			fd, ok := n.(*ast.Field)
			if !ok {
				return true
			}
			for _, nm := range fd.Names {
				if nm.Pos() == field.Pos() {
					val, found = commentAnnotation([]*ast.CommentGroup{fd.Doc, fd.Comment}, name)
					return false
				}
			}
			return true
		})
	}
	return val, found
}

// funcAnnotation looks up an annotation on a function declaration's doc
// comment.
func (a *annotations) funcAnnotation(fn *types.Func, name string) (string, bool) {
	pkg := a.declaringPackage(fn)
	if pkg == nil {
		return "", false
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Pos() == fn.Pos() {
				return commentAnnotation([]*ast.CommentGroup{fd.Doc}, name)
			}
		}
	}
	return "", false
}

// frozenType returns the named type's TypeName when t (after stripping
// pointers) is annotated hdov:frozen-after-publish.
func (a *annotations) frozenType(t types.Type) *types.TypeName {
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	tn := named.Obj()
	if _, ok := a.typeAnnotation(tn, "hdov:frozen-after-publish"); ok {
		return tn
	}
	return nil
}
