package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrFlowPass flags dropped errors on the serialization and storage
// write paths, where a swallowed failure corrupts data silently instead
// of failing the build or query:
//
//   - binary.Read / binary.Write with the error unchecked;
//   - segment/page decoders (functions named Decode*/decode*) whose
//     error result is discarded;
//   - storage writes (WritePage / WriteBytes / WriteTo) whose error is
//     assigned to the blank identifier or ignored as a statement;
//   - the incremental-update write path (ApplyOp / ApplyOps / WriteDeltaTo
//     / ApplyDelta / CommitEpoch): a dropped error there either publishes
//     an epoch that never applied or commits a delta that never landed,
//     exactly the torn states the crash-point harness exists to rule out.
//
// Unlike a general errcheck, the pass is deliberately narrow: these are
// the calls whose failure modes the fault-injection and crash-safety
// suites exercise, so ignoring them defeats tested recovery machinery.
type ErrFlowPass struct{}

// Name implements Pass.
func (*ErrFlowPass) Name() string { return "errflow" }

// watchedWriters are method and function names whose error results must
// be consumed (matched as method selectors and as package-qualified
// calls).
var watchedWriters = map[string]bool{
	"WritePage":  true,
	"WriteBytes": true,
	"WriteTo":    true,
	// The incremental-update write path.
	"ApplyOp":      true,
	"ApplyOps":     true,
	"WriteDeltaTo": true,
	"ApplyDelta":   true,
	"CommitEpoch":  true,
}

// Run implements Pass.
func (p *ErrFlowPass) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if name, ok := p.watched(pkg, call); ok {
						out = append(out, finding("errflow", pkg.Fset, call.Pos(),
							"result of %s is ignored (a dropped error here corrupts data silently)", name))
					}
				}
			case *ast.AssignStmt:
				out = append(out, p.checkAssign(pkg, st)...)
			case *ast.GoStmt:
				if name, ok := p.watched(pkg, st.Call); ok {
					out = append(out, finding("errflow", pkg.Fset, st.Call.Pos(),
						"result of %s is lost in a go statement", name))
				}
			case *ast.DeferStmt:
				if name, ok := p.watched(pkg, st.Call); ok {
					out = append(out, finding("errflow", pkg.Fset, st.Call.Pos(),
						"result of %s is lost in a defer", name))
				}
			}
			return true
		})
	}
	return out
}

// watched reports whether call is one of the guarded functions, with a
// printable name.
func (p *ErrFlowPass) watched(pkg *Package, call *ast.CallExpr) (string, bool) {
	if !callReturnsError(pkg, call) {
		return "", false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		// binary.Read / binary.Write.
		if id, ok := fun.X.(*ast.Ident); ok {
			if obj, ok := pkg.Info.Uses[id]; ok {
				if pn, ok := obj.(*types.PkgName); ok {
					if pn.Imported().Path() == "encoding/binary" && (name == "Read" || name == "Write") {
						return "binary." + name, true
					}
					// Package-level decoders (vstore.DecodeX) and write-path
					// functions (core.ApplyOps, dbfile.CommitEpoch).
					if isDecoderName(name) || watchedWriters[name] {
						return pn.Imported().Name() + "." + name, true
					}
					return "", false
				}
			}
		}
		if watchedWriters[name] || isDecoderName(name) {
			return exprString(fun.X) + "." + name, true
		}
	case *ast.Ident:
		if isDecoderName(fun.Name) || watchedWriters[fun.Name] {
			return fun.Name, true
		}
	}
	return "", false
}

// isDecoderName matches the project's decoder naming convention.
func isDecoderName(name string) bool {
	return strings.HasPrefix(name, "Decode") || strings.HasPrefix(name, "decode")
}

// callReturnsError reports whether any result of call has type error.
func callReturnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return false
	}
	isErr := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErr(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErr(tv.Type)
}

// checkAssign flags `_ = watchedCall(...)` and multi-assigns that blank
// the error position.
func (p *ErrFlowPass) checkAssign(pkg *Package, st *ast.AssignStmt) []Finding {
	var out []Finding
	if len(st.Rhs) != 1 {
		return nil
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	name, ok := p.watched(pkg, call)
	if !ok {
		return nil
	}
	// Which result positions hold the error?
	tv := pkg.Info.Types[call]
	errIdx := []int{}
	if tup, isTup := tv.Type.(*types.Tuple); isTup {
		for i := 0; i < tup.Len(); i++ {
			if named, isNamed := tup.At(i).Type().(*types.Named); isNamed &&
				named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				errIdx = append(errIdx, i)
			}
		}
	} else {
		errIdx = append(errIdx, 0)
	}
	for _, i := range errIdx {
		if i >= len(st.Lhs) {
			continue
		}
		if id, isID := st.Lhs[i].(*ast.Ident); isID && id.Name == "_" {
			out = append(out, finding("errflow", pkg.Fset, st.Pos(),
				"error from %s is assigned to _ (a dropped error here corrupts data silently)", name))
		}
	}
	return out
}
