package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ErrFlowPass flags dropped errors on the serialization and storage
// write paths, where a swallowed failure corrupts data silently instead
// of failing the build or query:
//
//   - binary.Read / binary.Write with the error unchecked;
//   - segment/page decoders (functions named Decode*/decode*) whose
//     error result is discarded;
//   - storage writes (WritePage / WriteBytes / WriteTo) and media
//     flushes (Sync — on the file backend a dropped Sync error silently
//     forfeits the fsync-at-commit durability guarantee) whose error is
//     assigned to the blank identifier or ignored as a statement;
//   - the incremental-update write path (ApplyOp / ApplyOps / WriteDeltaTo
//     / ApplyDelta / CommitEpoch): a dropped error there either publishes
//     an epoch that never applied or commits a delta that never landed,
//     exactly the torn states the crash-point harness exists to rule out.
//
// The pass runs on the shared CFG/dataflow engine, which adds two
// path-sensitive checks the statement-local walk could not see: a
// watched error *captured* into a variable but never read on any path
// to the function exit (typically a reassignment after the last check),
// and a watched error passed to an intra-package callee whose error
// parameter is never read (the call-graph's drops-error summary).
//
// Unlike a general errcheck, the pass is deliberately narrow: these are
// the calls whose failure modes the fault-injection and crash-safety
// suites exercise, so ignoring them defeats tested recovery machinery.
type ErrFlowPass struct{}

// Name implements Pass.
func (*ErrFlowPass) Name() string { return "errflow" }

// watchedWriters are method and function names whose error results must
// be consumed (matched as method selectors and as package-qualified
// calls).
var watchedWriters = map[string]bool{
	"WritePage":  true,
	"WriteBytes": true,
	"WriteTo":    true,
	// Media flushes: the file backend's durability hinges on the fsync at
	// the commit point actually being checked.
	"Sync": true,
	// The incremental-update write path.
	"ApplyOp":      true,
	"ApplyOps":     true,
	"WriteDeltaTo": true,
	"ApplyDelta":   true,
	"CommitEpoch":  true,
}

// Run implements Pass.
func (p *ErrFlowPass) Run(pkg *Package) []Finding {
	cg := BuildCallGraph(pkg)
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			out = append(out, runErrFlow(pkg, cg, body)...)
			// Nested function literals get their own analysis.
			return true
		})
	}
	return out
}

// runErrFlow solves the pending-error dataflow over one function body
// and replays it once for reporting.
func runErrFlow(pkg *Package, cg *CallGraph, body *ast.BlockStmt) []Finding {
	g := BuildCFG(body)
	flow := &errFlowClient{pkg: pkg, cg: cg}
	res := Solve(g, flow)
	flow.report = true
	for _, blk := range g.Blocks {
		if !res.Reached[blk.Index] || blk == g.Exit {
			continue
		}
		ReplayBlock(blk, res.In[blk.Index], flow)
	}
	if res.Reached[g.Exit.Index] {
		if exit, ok := res.In[g.Exit.Index].(errPending); ok {
			flow.reportPending(exit)
		}
	}
	return flow.findings
}

// pendingErr is an unexamined watched error sitting in a variable.
type pendingErr struct {
	pos  token.Pos // the capturing assignment
	name string    // printable callee, e.g. "d.WriteBytes"
}

// errPending maps error variables to their unexamined capture. Facts
// are immutable: transfers copy before changing.
type errPending map[types.Object]pendingErr

// pathEnd marks a path discharged at a return statement: any pending
// error there has already been reported at the return, so the path is
// an identity for the exit join — without it, an early `return` (empty
// pending) would intersect away obligations still live on the
// fall-through path.
type pathEnd struct{}

func (m errPending) cloneWithout(obj types.Object) errPending {
	out := make(errPending, len(m))
	for k, v := range m {
		if k != obj {
			out[k] = v
		}
	}
	return out
}

// errFlowClient is the FlowClient for the pending-error analysis; it
// also hosts the statement-local checks during the reporting replay.
type errFlowClient struct {
	pkg      *Package
	cg       *CallGraph
	report   bool
	findings []Finding
}

// Entry implements FlowClient.
func (c *errFlowClient) Entry() any { return errPending(nil) }

// Join implements FlowClient: intersection — an error is only "never
// checked" if no incoming path checked it. The earlier capture wins a
// position disagreement, keeping reports deterministic.
func (c *errFlowClient) Join(a, b any) any {
	if _, ok := a.(pathEnd); ok {
		return b
	}
	if _, ok := b.(pathEnd); ok {
		return a
	}
	fa, fb := a.(errPending), b.(errPending)
	if len(fa) == 0 || len(fb) == 0 {
		return errPending(nil)
	}
	out := make(errPending)
	for k, va := range fa {
		if vb, ok := fb[k]; ok {
			if vb.pos < va.pos {
				va = vb
			}
			out[k] = va
		}
	}
	return out
}

// Equal implements FlowClient.
func (c *errFlowClient) Equal(a, b any) bool {
	_, ea := a.(pathEnd)
	_, eb := b.(pathEnd)
	if ea || eb {
		return ea && eb
	}
	fa, fb := a.(errPending), b.(errPending)
	if len(fa) != len(fb) {
		return false
	}
	for k, va := range fa {
		if vb, ok := fb[k]; !ok || va != vb {
			return false
		}
	}
	return true
}

// Refine implements FlowClient: reads already clear pending errors when
// the condition node transfers, so edges need no extra narrowing.
func (c *errFlowClient) Refine(cond ast.Expr, negate bool, fact any) any { return fact }

// Transfer implements FlowClient.
func (c *errFlowClient) Transfer(n ast.Node, fact any) any {
	pending, ok := fact.(errPending)
	if !ok {
		// Past a path end (only the exit block's joined input can carry
		// the sentinel, and the exit has no nodes; stay defensive).
		return fact
	}

	// Statement-local checks (reporting replay only).
	if c.report {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if name, ok := c.watched(call); ok {
					c.findings = append(c.findings, finding("errflow", c.pkg.Fset, call.Pos(),
						"result of %s is ignored (a dropped error here corrupts data silently)", name))
				}
			}
		case *ast.AssignStmt:
			c.findings = append(c.findings, c.checkAssign(st)...)
		case *ast.GoStmt:
			if name, ok := c.watched(st.Call); ok {
				c.findings = append(c.findings, finding("errflow", c.pkg.Fset, st.Call.Pos(),
					"result of %s is lost in a go statement", name))
			}
		case *ast.DeferStmt:
			if name, ok := c.watched(st.Call); ok {
				c.findings = append(c.findings, finding("errflow", c.pkg.Fset, st.Call.Pos(),
					"result of %s is lost in a defer", name))
			}
		}
	}

	// Dropped-in-callee: a pending error handed to a function whose
	// error parameter is never read is dropped right there.
	if len(pending) > 0 {
		pending = c.checkSinks(n, pending)
	}

	// Any read of a pending variable counts as the check happening.
	if len(pending) > 0 {
		pending = c.clearReads(n, pending)
	}

	// New captures: `v, err = watchedCall(...)` re-arms the obligation.
	if st, isAssign := n.(*ast.AssignStmt); isAssign {
		pending = c.capture(st, pending)
	}

	// A return ends the path: whatever is still pending here was never
	// checked before the function gave up control, so report it now and
	// discharge the path (pathEnd joins as identity at the exit).
	if _, isRet := n.(*ast.ReturnStmt); isRet {
		c.reportPending(pending)
		return pathEnd{}
	}
	return pending
}

// reportPending emits the never-checked finding for each live capture,
// ordered by capture position for determinism.
func (c *errFlowClient) reportPending(pending errPending) {
	if !c.report || len(pending) == 0 {
		return
	}
	objs := make([]types.Object, 0, len(pending))
	for o := range pending {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return pending[objs[i]].pos < pending[objs[j]].pos })
	for _, o := range objs {
		pe := pending[o]
		c.findings = append(c.findings, finding("errflow", c.pkg.Fset, pe.pos,
			"error from %s is captured in %s but never checked (a dropped error here corrupts data silently)",
			pe.name, o.Name()))
	}
}

// checkSinks reports pending errors passed to intra-package callees
// that ignore their error parameter, and clears them (the sink consumed
// the value, however uselessly).
func (c *errFlowClient) checkSinks(n ast.Node, pending errPending) errPending {
	ast.Inspect(n, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		sum := c.cg.Summary(call)
		if sum == nil {
			return true
		}
		for a, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			obj := c.pkg.Info.Uses[id]
			if obj == nil {
				continue
			}
			pe, isPending := pending[obj]
			if !isPending {
				continue
			}
			i := sum.CallArgIndex(call, a)
			if i < 0 || i >= len(sum.IgnoresErrorParam) || !sum.IgnoresErrorParam[i] {
				continue
			}
			if c.report {
				c.findings = append(c.findings, finding("errflow", c.pkg.Fset, call.Pos(),
					"error from %s is passed to %s, which never reads its error parameter (a dropped error here corrupts data silently)",
					pe.name, sum.Obj.Name()))
			}
			pending = pending.cloneWithout(obj)
		}
		return true
	})
	return pending
}

// clearReads drops pending entries for every variable the node reads.
// Assignment targets are writes, not reads, so plain identifier LHS
// positions are skipped.
func (c *errFlowClient) clearReads(n ast.Node, pending errPending) errPending {
	skip := make(map[*ast.Ident]bool)
	if st, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range st.Lhs {
			if id, isID := ast.Unparen(lhs).(*ast.Ident); isID {
				skip[id] = true
			}
		}
	}
	ast.Inspect(n, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		if obj := c.pkg.Info.Uses[id]; obj != nil {
			if _, isPending := pending[obj]; isPending {
				pending = pending.cloneWithout(obj)
			}
		}
		return true
	})
	return pending
}

// capture arms the pending obligation for `v, err = watched(...)`
// (including plain `err = watched(...)`). A `:=` definition whose error
// is never read fails compilation already, but reassignment compiles
// quietly — exactly the hole this closes. An overwritten pending entry
// is replaced silently; the exit report points at the live capture.
func (c *errFlowClient) capture(st *ast.AssignStmt, pending errPending) errPending {
	if len(st.Rhs) != 1 {
		return pending
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return pending
	}
	name, ok := c.watched(call)
	if !ok {
		return pending
	}
	for _, i := range c.errorResultIndexes(call) {
		if i >= len(st.Lhs) {
			continue
		}
		id, isID := st.Lhs[i].(*ast.Ident)
		if !isID || id.Name == "_" {
			continue
		}
		var obj types.Object
		if o := c.pkg.Info.Defs[id]; o != nil {
			obj = o
		} else if o := c.pkg.Info.Uses[id]; o != nil {
			obj = o
		}
		if obj == nil {
			continue
		}
		out := make(errPending, len(pending)+1)
		for k, v := range pending {
			out[k] = v
		}
		out[obj] = pendingErr{pos: st.Pos(), name: name}
		pending = out
	}
	return pending
}

// watched reports whether call is one of the guarded functions, with a
// printable name.
func (c *errFlowClient) watched(call *ast.CallExpr) (string, bool) {
	pkg := c.pkg
	if !callReturnsError(pkg, call) {
		return "", false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		// binary.Read / binary.Write.
		if id, ok := fun.X.(*ast.Ident); ok {
			if obj, ok := pkg.Info.Uses[id]; ok {
				if pn, ok := obj.(*types.PkgName); ok {
					if pn.Imported().Path() == "encoding/binary" && (name == "Read" || name == "Write") {
						return "binary." + name, true
					}
					// Package-level decoders (vstore.DecodeX) and write-path
					// functions (core.ApplyOps, dbfile.CommitEpoch).
					if isDecoderName(name) || watchedWriters[name] {
						return pn.Imported().Name() + "." + name, true
					}
					return "", false
				}
			}
		}
		if watchedWriters[name] || isDecoderName(name) {
			return exprString(fun.X) + "." + name, true
		}
	case *ast.Ident:
		if isDecoderName(fun.Name) || watchedWriters[fun.Name] {
			return fun.Name, true
		}
	}
	return "", false
}

// isDecoderName matches the project's decoder naming convention.
func isDecoderName(name string) bool {
	return strings.HasPrefix(name, "Decode") || strings.HasPrefix(name, "decode")
}

// callReturnsError reports whether any result of call has type error.
func callReturnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return false
	}
	isErr := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErr(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErr(tv.Type)
}

// errorResultIndexes lists the result positions of call that have type
// error (position 0 for a single non-tuple result).
func (c *errFlowClient) errorResultIndexes(call *ast.CallExpr) []int {
	tv := c.pkg.Info.Types[call]
	var errIdx []int
	if tup, isTup := tv.Type.(*types.Tuple); isTup {
		for i := 0; i < tup.Len(); i++ {
			if named, isNamed := tup.At(i).Type().(*types.Named); isNamed &&
				named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				errIdx = append(errIdx, i)
			}
		}
	} else {
		errIdx = append(errIdx, 0)
	}
	return errIdx
}

// checkAssign flags `_ = watchedCall(...)` and multi-assigns that blank
// the error position.
func (c *errFlowClient) checkAssign(st *ast.AssignStmt) []Finding {
	var out []Finding
	if len(st.Rhs) != 1 {
		return nil
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	name, ok := c.watched(call)
	if !ok {
		return nil
	}
	for _, i := range c.errorResultIndexes(call) {
		if i >= len(st.Lhs) {
			continue
		}
		if id, isID := st.Lhs[i].(*ast.Ident); isID && id.Name == "_" {
			out = append(out, finding("errflow", c.pkg.Fset, st.Pos(),
				"error from %s is assigned to _ (a dropped error here corrupts data silently)", name))
		}
	}
	return out
}
