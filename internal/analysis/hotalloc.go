package analysis

import (
	"go/ast"
	"go/types"
)

// HotAllocPass keeps the traversal frontier and the codec decode path
// allocation-free: the paper's speed argument rests on the per-node
// visit cost, and a per-iteration heap allocation (or the GC pressure
// it feeds) dwarfs the distance computations the cost model counts.
// Functions opt in with hdov:hot-path in their doc comment; inside
// every loop of such a function the pass flags:
//
//   - pointer composite literals (&T{...}) and slice/map literals —
//     each iteration allocates; hoist the value or reuse a scratch
//     buffer. Plain value struct literals (T{...}) stay legal: they
//     live in the frame;
//   - make(...) and new(...);
//   - fmt.* calls (formatting allocates even when the result is
//     discarded);
//   - string <-> []byte conversions (each copies);
//   - boxing a concrete value into an interface (argument or
//     assignment) — the header escapes;
//   - append to a slice declared in this function without capacity —
//     growth reallocates every few iterations; preallocate with
//     make(T, 0, n).
//
// Allocations inside a return statement are exempt: a return terminates
// the loop, so whatever it allocates (typically a corrupt-input error)
// happens at most once per call, not per iteration. Other cold paths
// inside a hot function (stats under a debug flag, say) are justified
// case by case with `//lint:ignore hotalloc <why>`.
type HotAllocPass struct {
	loader *Loader
}

// Name implements Pass.
func (*HotAllocPass) Name() string { return "hotalloc" }

// SetLoader implements LoaderAware.
func (p *HotAllocPass) SetLoader(l *Loader) { p.loader = l }

// Run implements Pass.
func (p *HotAllocPass) Run(pkg *Package) []Finding {
	ann := newAnnotations(pkg, p.loader)
	var out []Finding
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if _, hot := ann.funcAnnotation(obj, "hdov:hot-path"); !hot {
				continue
			}
			out = append(out, p.checkFunc(pkg, fd)...)
		}
	}
	return out
}

func (p *HotAllocPass) checkFunc(pkg *Package, fd *ast.FuncDecl) []Finding {
	prealloc := preallocatedSlices(pkg, fd.Body)
	var out []Finding
	// Find every loop, then check its body; nested loops are reached
	// through the outer body walk, and a node inside two loops is only
	// reported once (the outer walk skips descending into inner loops).
	var checkLoop func(body *ast.BlockStmt)
	inspectLoops := func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.ForStmt:
			checkLoop(loop.Body)
			return false
		case *ast.RangeStmt:
			checkLoop(loop.Body)
			return false
		}
		return true
	}
	checkLoop = func(body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			switch x := n.(type) {
			case *ast.ReturnStmt:
				// A return exits the loop: its allocations happen at
				// most once per call, not per iteration.
				return false
			case *ast.FuncLit:
				// A closure defined per iteration is itself an
				// allocation; its body runs elsewhere.
				out = append(out, finding("hotalloc", pkg.Fset, x.Pos(),
					"function literal allocates a closure per iteration in a hot-path loop"))
				return false
			case *ast.UnaryExpr:
				if x.Op.String() == "&" {
					if _, isLit := ast.Unparen(x.X).(*ast.CompositeLit); isLit {
						out = append(out, finding("hotalloc", pkg.Fset, x.Pos(),
							"composite literal escapes to the heap per iteration in a hot-path loop; reuse a scratch value"))
						return false
					}
				}
			case *ast.CompositeLit:
				if tv, ok := pkg.Info.Types[x]; ok && tv.Type != nil {
					switch tv.Type.Underlying().(type) {
					case *types.Slice, *types.Map:
						out = append(out, finding("hotalloc", pkg.Fset, x.Pos(),
							"slice or map literal allocates per iteration in a hot-path loop; hoist it or reuse a buffer"))
						return false
					}
				}
			case *ast.CallExpr:
				if f := p.checkCall(pkg, prealloc, x); f != nil {
					out = append(out, *f)
				}
			}
			return true
		})
	}
	for _, st := range fd.Body.List {
		ast.Inspect(st, inspectLoops)
	}
	// Boxing in assignments: `var x interface{} = v` style inside loops
	// is covered by the call walk below only for call args; assignment
	// boxing is rare on these paths and the conversions dominate, so the
	// pass keeps to calls and conversions.
	return out
}

// checkCall classifies one call inside a hot loop.
func (p *HotAllocPass) checkCall(pkg *Package, prealloc map[types.Object]bool, call *ast.CallExpr) *Finding {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				f := finding("hotalloc", pkg.Fset, call.Pos(),
					"make allocates per iteration in a hot-path loop; hoist it outside the loop")
				return &f
			case "new":
				f := finding("hotalloc", pkg.Fset, call.Pos(),
					"new allocates per iteration in a hot-path loop; reuse a scratch value")
				return &f
			case "append":
				return p.checkAppend(pkg, prealloc, call)
			}
			return nil
		}
		// Conversion to string or []byte: string(b) / []byte(s).
		if f := p.checkConversion(pkg, call); f != nil {
			return f
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
				if pn.Imported().Path() == "fmt" {
					f := finding("hotalloc", pkg.Fset, call.Pos(),
						"fmt.%s allocates per iteration in a hot-path loop; move formatting off the traversal path", fun.Sel.Name)
					return &f
				}
			}
		}
	case *ast.ArrayType, *ast.InterfaceType:
		// []byte(s) conversion spelled with a type literal.
		if f := p.checkConversion(pkg, call); f != nil {
			return f
		}
	}
	// Interface boxing of concrete arguments.
	return p.checkBoxing(pkg, call)
}

// checkConversion flags string <-> []byte conversions.
func (p *HotAllocPass) checkConversion(pkg *Package, call *ast.CallExpr) *Finding {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return nil
	}
	to := tv.Type
	argTV, ok := pkg.Info.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return nil
	}
	from := argTV.Type
	if (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from)) {
		f := finding("hotalloc", pkg.Fset, call.Pos(),
			"string/[]byte conversion copies per iteration in a hot-path loop")
		return &f
	}
	return nil
}

// checkBoxing flags a concrete value passed where an interface is
// expected.
func (p *HotAllocPass) checkBoxing(pkg *Package, call *ast.CallExpr) *Finding {
	sigTV, ok := pkg.Info.Types[call.Fun]
	if !ok || sigTV.Type == nil {
		return nil
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		pt := params.At(pi).Type()
		if sig.Variadic() && pi == params.Len()-1 {
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		argTV, ok := pkg.Info.Types[arg]
		if !ok || argTV.Type == nil || argTV.IsNil() {
			continue
		}
		if _, argIface := argTV.Type.Underlying().(*types.Interface); argIface {
			continue
		}
		f := finding("hotalloc", pkg.Fset, arg.Pos(),
			"value of type %s is boxed into an interface per iteration in a hot-path loop",
			argTV.Type.String())
		return &f
	}
	return nil
}

// checkAppend flags growth on slices declared in this function without
// an explicit capacity.
func (p *HotAllocPass) checkAppend(pkg *Package, prealloc map[types.Object]bool, call *ast.CallExpr) *Finding {
	if len(call.Args) == 0 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		return nil
	}
	known, declaredHere := prealloc[obj]
	if !declaredHere || known {
		// Slices from parameters or other functions carry their own
		// capacity story; preallocated locals are fine.
		return nil
	}
	f := finding("hotalloc", pkg.Fset, call.Pos(),
		"append to %s grows per iteration in a hot-path loop; preallocate with make(..., 0, n)", id.Name)
	return &f
}

// preallocatedSlices maps every slice variable declared in the body to
// whether its declaration reserves capacity: make with a capacity (or
// length) argument counts, `var s []T` and `s := []T{}` do not.
func preallocatedSlices(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	note := func(id *ast.Ident, rhs ast.Expr) {
		obj := pkg.Info.Defs[id]
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		pre := false
		if call, ok := rhsCall(rhs); ok {
			if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, isB := pkg.Info.Uses[fid].(*types.Builtin); isB && b.Name() == "make" && len(call.Args) >= 2 {
					// make([]T, n) or make([]T, 0, c): capacity reserved.
					pre = true
				}
			}
		}
		out[obj] = pre
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
						note(id, st.Rhs[i])
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, id := range vs.Names {
							var rhs ast.Expr
							if i < len(vs.Values) {
								rhs = vs.Values[i]
							}
							note(id, rhs)
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// rhsCall unwraps a (possibly nil) initializer to a call expression.
func rhsCall(rhs ast.Expr) (*ast.CallExpr, bool) {
	if rhs == nil {
		return nil, false
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	return call, ok
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
