package analysis

import "go/ast"

// FlowClient defines one forward dataflow problem over a CFG. Facts are
// opaque to the solver; a client must treat them as immutable values —
// Transfer, Refine, and Join return fresh facts and never mutate their
// inputs, or the worklist's sharing of facts across edges corrupts the
// analysis. Termination requires the usual conditions: Join is an upper
// bound and the fact lattice has finite height over the function's
// objects (every pass here tracks finite sets of locals, so both hold).
type FlowClient interface {
	// Entry is the fact at function entry.
	Entry() any
	// Transfer applies one CFG node (a simple statement or a leaf
	// condition expression) to the incoming fact.
	Transfer(n ast.Node, fact any) any
	// Refine narrows a fact along a conditional edge: cond is the leaf
	// condition, which is known true when !negate and false otherwise.
	Refine(cond ast.Expr, negate bool, fact any) any
	// Join merges the facts of two incoming edges.
	Join(a, b any) any
	// Equal reports whether two facts carry the same information; the
	// solver stops re-queuing a block when its input stops changing.
	Equal(a, b any) bool
}

// FlowResult carries the solved per-block input facts. Blocks never
// reached from the entry (dead code, unresolved jumps) have Reached
// false and a nil fact; reporting replays must skip them.
type FlowResult struct {
	In      []any
	Reached []bool
}

// Solve runs the forward worklist to a fixpoint and returns each
// block's input fact. The worklist is FIFO over the deterministic block
// order produced by BuildCFG, so results (and any fact tie-breaking
// inside Join) are reproducible run to run.
func Solve(g *CFG, c FlowClient) *FlowResult {
	n := len(g.Blocks)
	r := &FlowResult{In: make([]any, n), Reached: make([]bool, n)}
	r.In[g.Entry.Index] = c.Entry()
	r.Reached[g.Entry.Index] = true
	work := []*CFGBlock{g.Entry}
	queued := make([]bool, n)
	queued[g.Entry.Index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		out := r.In[blk.Index]
		for _, nd := range blk.Nodes {
			out = c.Transfer(nd, out)
		}
		for _, e := range blk.Succs {
			f := out
			if e.Cond != nil {
				f = c.Refine(e.Cond, e.Negate, f)
			}
			ti := e.To.Index
			if !r.Reached[ti] {
				r.Reached[ti] = true
				r.In[ti] = f
			} else {
				j := c.Join(r.In[ti], f)
				if c.Equal(j, r.In[ti]) {
					continue
				}
				r.In[ti] = j
			}
			if !queued[ti] {
				queued[ti] = true
				work = append(work, e.To)
			}
		}
	}
	return r
}

// ReplayBlock re-applies Transfer over one block from its solved input
// fact. After Solve has reached the fixpoint, passes run one reporting
// replay per block — with their client switched into reporting mode — so
// every diagnostic is emitted exactly once, no matter how many times the
// solver visited the block on its way to the fixpoint.
func ReplayBlock(blk *CFGBlock, in any, c FlowClient) any {
	out := in
	for _, nd := range blk.Nodes {
		out = c.Transfer(nd, out)
	}
	return out
}
