package analysis

import (
	"go/ast"
	"go/types"
)

// SnapFreezePass enforces the snapshot-immutability contract at the
// heart of the COW epoch model: once a tree (nodes, entries, V-page
// directory) is reachable from a published epoch, readers traverse it
// with no locks, so *any* store into it is a data race — even a benign-
// looking counter bump. Types opt in with hdov:frozen-after-publish on
// their declaration; functions that legitimately build not-yet-published
// state (bulk load, decode, ApplyOps's clone path) open a construction
// window with hdov:construction-window in their doc comment.
//
// The pass flags, outside construction windows:
//
//   - direct stores through a frozen value (field assignment, element
//     assignment, deref store, ++/--), unless the value is provably a
//     fresh local (allocated in this function and not yet escaped);
//   - calls that hand a frozen value to an intra-package callee whose
//     summary says it mutates that parameter (the call-graph's
//     MutatesParam), unless the callee is itself a construction window.
//
// The freshness exemption keeps the annotation honest without drowning
// tests: `n := &Node{...}; n.Count = 3` is construction wherever it
// appears, because no published epoch can reach n yet.
type SnapFreezePass struct {
	loader *Loader
}

// Name implements Pass.
func (*SnapFreezePass) Name() string { return "snapfreeze" }

// SetLoader implements LoaderAware: frozen types are usually declared in
// a different package (internal/core) than the stores under analysis.
func (p *SnapFreezePass) SetLoader(l *Loader) { p.loader = l }

// Run implements Pass.
func (p *SnapFreezePass) Run(pkg *Package) []Finding {
	ann := newAnnotations(pkg, p.loader)
	cg := BuildCallGraph(pkg)
	var out []Finding
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				if _, window := ann.funcAnnotation(obj, "hdov:construction-window"); window {
					continue
				}
			}
			out = append(out, p.checkFunc(pkg, ann, cg, fd)...)
		}
	}
	return out
}

func (p *SnapFreezePass) checkFunc(pkg *Package, ann *annotations, cg *CallGraph, fd *ast.FuncDecl) []Finding {
	fresh := freshLocals(pkg, fd.Body)
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			// Function literals share the enclosing function's window
			// status and fresh-local view (captured variables), so keep
			// descending.
			return true
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				out = append(out, p.checkStore(pkg, ann, fresh, lhs)...)
			}
		case *ast.IncDecStmt:
			out = append(out, p.checkStore(pkg, ann, fresh, st.X)...)
		case *ast.CallExpr:
			out = append(out, p.checkCall(pkg, ann, cg, fresh, st)...)
		}
		return true
	})
	return out
}

// checkStore reports a store whose access path passes through a frozen
// value that is not a fresh local.
func (p *SnapFreezePass) checkStore(pkg *Package, ann *annotations, fresh map[types.Object]bool, lhs ast.Expr) []Finding {
	base, tn := p.frozenBase(pkg, ann, lhs)
	if tn == nil {
		return nil
	}
	if obj := rootObject(pkg, base); obj != nil {
		if fresh[obj] {
			return nil
		}
		// A direct field store on a value-typed local or parameter hits
		// the function's own copy, not published memory. (Stores through
		// a slice/map field still reach the shared backing store and are
		// not exempt: base is the field chain there, not the ident.)
		if id, ok := ast.Unparen(base).(*ast.Ident); ok && pkg.Info.ObjectOf(id) == obj {
			if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
				if _, isVar := obj.(*types.Var); isVar && obj.Parent() != obj.Pkg().Scope() {
					return nil
				}
			}
		}
	}
	return []Finding{finding("snapfreeze", pkg.Fset, lhs.Pos(),
		"store to %s mutates %s.%s, which is hdov:frozen-after-publish; published snapshots are traversed lock-free, so move this into a construction window",
		exprString(lhs), tn.Pkg().Name(), tn.Name())}
}

// checkCall reports a frozen value handed to an intra-package callee
// that mutates the matching parameter (and is not itself a construction
// window).
func (p *SnapFreezePass) checkCall(pkg *Package, ann *annotations, cg *CallGraph, fresh map[types.Object]bool, call *ast.CallExpr) []Finding {
	sum := cg.Summary(call)
	if sum == nil {
		return nil
	}
	if _, window := ann.funcAnnotation(sum.Obj, "hdov:construction-window"); window {
		return nil
	}
	var out []Finding
	check := func(arg ast.Expr, idx int) {
		if idx < 0 || idx >= len(sum.MutatesParam) || !sum.MutatesParam[idx] {
			return
		}
		tn := ann.frozenType(pkg.Info.Types[arg].Type)
		if tn == nil {
			return
		}
		if obj := rootObject(pkg, arg); obj != nil && fresh[obj] {
			return
		}
		out = append(out, finding("snapfreeze", pkg.Fset, arg.Pos(),
			"%s (hdov:frozen-after-publish %s.%s) is passed to %s, which mutates that parameter; published snapshots are immutable",
			exprString(arg), tn.Pkg().Name(), tn.Name(), sum.Obj.Name()))
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sum.Decl.Recv != nil {
		check(sel.X, 0)
	}
	for a, arg := range call.Args {
		check(arg, sum.CallArgIndex(call, a))
	}
	return out
}

// frozenBase walks a store target's access path outward and returns the
// innermost sub-expression whose type is frozen (plus the frozen type),
// or nil. The full LHS expression itself is not a base: `x = v` with x
// of frozen type rebinds a variable, it does not mutate the object.
func (p *SnapFreezePass) frozenBase(pkg *Package, ann *annotations, lhs ast.Expr) (ast.Expr, *types.TypeName) {
	e := lhs
	for {
		var inner ast.Expr
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.SelectorExpr:
			inner = x.X
		case *ast.IndexExpr:
			inner = x.X
		case *ast.StarExpr:
			inner = x.X
		default:
			// A plain identifier (or anything unrecognised) rebinds a
			// variable rather than storing through memory.
			return nil, nil
		}
		if tv, ok := pkg.Info.Types[inner]; ok && tv.Type != nil {
			if tn := ann.frozenType(tv.Type); tn != nil {
				return inner, tn
			}
			// A slice element store mutates the backing array the frozen
			// struct published: []Entry fields keep the Entry type's
			// annotation in force through the index.
			if sl, ok := tv.Type.Underlying().(*types.Slice); ok {
				if tn := ann.frozenType(sl.Elem()); tn != nil {
					return inner, tn
				}
			}
		}
		e = inner
	}
}

// rootObject returns the object of the identifier at the root of an
// access chain, or nil.
func rootObject(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.Ident:
			if o := pkg.Info.Uses[x]; o != nil {
				return o
			}
			return pkg.Info.Defs[x]
		default:
			return nil
		}
	}
}

// freshLocals collects local variables that provably hold memory
// allocated inside this function: `x := &T{...}`, `x := new(T)`, or a
// value-typed `var x T` / `x := T{...}` (a value local is the
// function's own copy). Reassigning such a variable from anything else
// removes its freshness; the map is the conservative intersection over
// the whole body, order-insensitive.
func freshLocals(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	poisoned := make(map[types.Object]bool)
	note := func(id *ast.Ident, rhs ast.Expr) {
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if rhs != nil && isFreshAlloc(pkg, rhs) {
			fresh[obj] = true
		} else if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr && rhs == nil {
			// `var x T` zero value: the function's own storage.
			fresh[obj] = true
		} else {
			poisoned[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
						note(id, st.Rhs[i])
					}
				}
			} else {
				for _, lhs := range st.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
						note(id, st.Rhs[0])
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, id := range vs.Names {
							var rhs ast.Expr
							if i < len(vs.Values) {
								rhs = vs.Values[i]
							}
							note(id, rhs)
						}
					}
				}
			}
		case *ast.UnaryExpr:
			// &x escapes the local: a callee may publish it.
			if st.Op.String() == "&" {
				if id, ok := ast.Unparen(st.X).(*ast.Ident); ok {
					if obj := pkg.Info.Uses[id]; obj != nil {
						poisoned[obj] = true
					}
				}
			}
		}
		return true
	})
	for obj := range poisoned {
		delete(fresh, obj)
	}
	return fresh
}

// isFreshAlloc reports whether rhs evaluates to memory this function
// just allocated: &T{...}, new(T), T{...}, or make of a slice/map.
func isFreshAlloc(pkg *Package, rhs ast.Expr) bool {
	switch x := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			_, isLit := ast.Unparen(x.X).(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if id.Name == "new" || id.Name == "make" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
	}
	return false
}
