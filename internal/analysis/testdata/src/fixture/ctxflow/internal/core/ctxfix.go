// Package core is the ctxflow fixture: deadline chains that break on a
// traversal path, plus the shapes the pass must leave alone.
package core

import "context"

// Bad: minting a fresh unbounded context mid-path.
func freshMint() context.Context {
	return context.Background() // want ctxflow
}

// Bad: TODO is the same severed chain with a sheepish name.
func todoMint() context.Context {
	return context.TODO() // want ctxflow
}

// Bad: the declared deadline is accepted but never honored.
func dropped(ctx context.Context, cell int) int { // want ctxflow
	return cell * 2
}

// Bad: a function literal drops its context too.
var droppedLit = func(ctx context.Context) int { // want ctxflow
	return 1
}

// Good: the context is threaded through.
func threaded(ctx context.Context, cell int) error {
	return ctx.Err()
}

// Good: a blank parameter is an explicit, reviewable non-use.
func blank(_ context.Context, cell int) int {
	return cell
}

// Good: the outer context flowing into an inner literal counts as use.
func closure(ctx context.Context) func() error {
	return func() error { return ctx.Err() }
}

// Good: a justified suppression keeps working.
//
//lint:ignore ctxflow compat wrappers deliberately run unbounded
var bg = context.Background()

func use() (context.Context, context.Context, int, int) {
	return freshMint(), todoMint(), dropped(bg, 1), droppedLit(bg)
}

var _ = threaded
var _ = blank
var _ = closure
