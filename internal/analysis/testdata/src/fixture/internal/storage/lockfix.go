// Package storagefix is the lockorder fixture. Its import path ends in
// internal/storage, so the pass's default scope applies; the mutex
// fields deliberately reuse the real Disk's names (mu outer, statsMu
// inner).
package storagefix

import (
	"io"
	"sync"
)

// Disk mirrors the real disk's two-lock layout.
type Disk struct {
	mu      sync.RWMutex
	statsMu sync.Mutex
	n       int
}

// SelfNest locks mu twice without an intervening unlock.
func (d *Disk) SelfNest() {
	d.mu.Lock()
	d.mu.Lock() // want lockorder
	d.mu.Unlock()
	d.mu.Unlock()
}

// Inversion acquires the outer mu while the inner statsMu is held.
func (d *Disk) Inversion() {
	d.statsMu.Lock()
	d.mu.Lock() // want lockorder
	d.mu.Unlock()
	d.statsMu.Unlock()
}

// CorrectOrder takes mu before statsMu, the documented direction: clean.
func (d *Disk) CorrectOrder() {
	d.mu.Lock()
	d.statsMu.Lock()
	d.statsMu.Unlock()
	d.mu.Unlock()
}

// IOUnderLock writes through an interface while holding mu (the defer
// keeps it held to function exit).
func (d *Disk) IOUnderLock(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, err := w.Write(nil) // want lockorder
	return err
}

// IOAfterUnlock snapshots under the lock and writes after: clean.
func (d *Disk) IOAfterUnlock(w io.Writer) error {
	d.mu.Lock()
	n := d.n
	d.mu.Unlock()
	_, err := w.Write(make([]byte, n))
	return err
}

// CallbackUnderLock hands control to an unknown func value under mu.
func (d *Disk) CallbackUnderLock(fn func()) {
	d.mu.Lock()
	fn() // want lockorder
	d.mu.Unlock()
}
