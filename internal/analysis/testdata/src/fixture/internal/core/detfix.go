// Package corefix is the determinism fixture; its import path ends in
// internal/core, so the pass's default query-path scope applies.
package corefix

import (
	"math/rand" // want determinism
	"time"
)

// Timestamp reads the wall clock.
func Timestamp() int64 {
	return time.Now().UnixNano() // want determinism
}

// Roll draws randomness.
func Roll() int {
	return rand.Intn(6) // want determinism
}

// MapWalk ranges over a map: iteration order changes per run.
func MapWalk(m map[int]int) []int {
	var out []int
	for _, v := range m { // want determinism
		out = append(out, v)
	}
	return out
}

// SortedWalk enumerates through a caller-ordered key slice: clean.
func SortedWalk(m map[int]int, keys []int) []int {
	var out []int
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// SuppressedWalk documents why order cannot leak; the directive
// suppresses the finding.
func SuppressedWalk(m map[int]int) int {
	s := 0
	//lint:ignore determinism fixture: an integer sum is iteration-order independent
	for _, v := range m {
		s += v
	}
	return s
}

// QueryResult mirrors the real core.QueryResult for the prefetch
// isolation fixtures: its package path ends in internal/core, which is
// what the rule matches on.
type QueryResult struct {
	Items []int
}
