// Package dbfix is the persistence-layer determinism fixture; its import
// path ends in internal/dbfile, so the pass's default scope applies: the
// manifest, op-log and delta-chain serialization must not depend on map
// iteration order or the wall clock, or a committed epoch would not
// reproduce byte-for-byte.
package dbfix

import (
	"sort"
	"time"
)

// StampManifest reads the wall clock into a "manifest" field.
func StampManifest() int64 {
	return time.Now().Unix() // want determinism
}

// SerializeDeltas walks a map while emitting the delta list: the on-disk
// order would change per run.
func SerializeDeltas(deltas map[string]int64) []string {
	var out []string
	for name := range deltas { // want determinism
		out = append(out, name)
	}
	return out
}

// SerializeDeltasSorted collects keys and sorts before anything order-
// dependent happens; the directive records that argument.
func SerializeDeltasSorted(deltas map[string]int64) []string {
	names := make([]string, 0, len(deltas))
	//lint:ignore determinism fixture: keys are sorted before any output is derived
	for name := range deltas {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CountDeltas documents why order cannot leak; the directive suppresses
// the finding.
func CountDeltas(deltas map[string]int64) int64 {
	var total int64
	//lint:ignore determinism fixture: a sum is iteration-order independent
	for _, n := range deltas {
		total += n
	}
	return total
}
