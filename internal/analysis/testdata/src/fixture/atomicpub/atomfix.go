// Package atomfix exercises atomicpub: stores to fields annotated
// hdov:guarded-by must happen with the named lock write-held on every
// path, and guarded-by atomic forbids direct stores entirely.
package atomfix

import "sync"

// DB mirrors the root handle's publication fields.
type DB struct {
	mu sync.Mutex
	// epoch is the published epoch number.
	// hdov:guarded-by mu
	epoch int64
	// tree is the published root pointer; readers snapshot it with an
	// atomic load, so writers must publish with an atomic store.
	// hdov:guarded-by atomic
	tree *int
	statsMu sync.RWMutex
	// hits counts lookups under the stats lock.
	// hdov:guarded-by statsMu
	hits int
}

// Publish swaps the epoch under the lock: clean.
func (d *DB) Publish(e int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.epoch = e
}

// PublishInline unlocks explicitly after the store: clean.
func (d *DB) PublishInline(e int64) {
	d.mu.Lock()
	d.epoch = e
	d.mu.Unlock()
}

// Torn stores with no lock at all: flagged.
func (d *DB) Torn(e int64) {
	d.epoch = e // want atomicpub
}

// UnlockedEarly releases before the store: flagged.
func (d *DB) UnlockedEarly(e int64) {
	d.mu.Lock()
	d.mu.Unlock()
	d.epoch = e // want atomicpub
}

// OneBranch locks on only one path to the store: flagged, because the
// intersection join drops a lock not held on every incoming path.
func (d *DB) OneBranch(e int64, fast bool) {
	if !fast {
		d.mu.Lock()
		defer d.mu.Unlock()
	}
	d.epoch = e // want atomicpub
}

// ReadHold stores under a read lock: flagged, RLock cannot order
// writers against each other.
func (d *DB) ReadHold() {
	d.statsMu.RLock()
	defer d.statsMu.RUnlock()
	d.hits++ // want atomicpub
}

// WriteHold is the correct stats-counter protocol: clean.
func (d *DB) WriteHold() {
	d.statsMu.Lock()
	d.hits++
	d.statsMu.Unlock()
}

// DirectTree bypasses the atomic publication protocol; holding mu does
// not help, readers load the pointer without it: flagged.
func (d *DB) DirectTree(t *int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tree = t // want atomicpub
}

// applyLocked documents that its callers hold mu: the annotation seeds
// the entry fact, so the store is clean.
// hdov:caller-holds mu
func (d *DB) applyLocked(e int64) {
	d.epoch = e
}

// Apply drives applyLocked under the lock the way callers must.
func (d *DB) Apply(e int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.applyLocked(e)
}
