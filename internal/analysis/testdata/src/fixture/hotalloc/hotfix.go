// Package hotfix exercises hotalloc: per-iteration allocation inside
// loops of functions annotated hdov:hot-path.
package hotfix

import "fmt"

// Item is a result candidate.
type Item struct {
	ID   int64
	Dist float64
}

// visit mirrors the traversal frontier: per-node work must not allocate.
// hdov:hot-path
func visit(ids []int64, dists []float64) []*Item {
	out := make([]*Item, 0, len(ids))
	for i, id := range ids {
		it := &Item{ID: id, Dist: dists[i]} // want hotalloc
		out = append(out, it)
	}
	return out
}

// labels formats inside the loop: flagged.
// hdov:hot-path
func labels(ids []int64) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, fmt.Sprintf("n%d", id)) // want hotalloc
	}
	return out
}

// grow appends to a slice declared without capacity: every few
// iterations the backing array reallocates.
// hdov:hot-path
func grow(ids []int64) []int64 {
	var out []int64
	for _, id := range ids {
		if id > 0 {
			out = append(out, id) // want hotalloc
		}
	}
	return out
}

// scratch builds a map per iteration: flagged.
// hdov:hot-path
func scratch(ids []int64) int {
	n := 0
	for range ids {
		seen := map[int64]bool{} // want hotalloc
		_ = seen
		n++
	}
	return n
}

// buffers makes a buffer per iteration: flagged.
// hdov:hot-path
func buffers(ids []int64) int {
	total := 0
	for range ids {
		buf := make([]byte, 64) // want hotalloc
		total += len(buf)
	}
	return total
}

// keys converts []byte to string per iteration: flagged.
// hdov:hot-path
func keys(names [][]byte) int {
	n := 0
	for _, b := range names {
		if string(b) == "root" { // want hotalloc
			n++
		}
	}
	return n
}

// sink accepts anything.
func sink(v any) {}

// box passes a concrete value where an interface is expected: the
// header escapes per iteration.
// hdov:hot-path
func box(ids []int64) {
	for _, id := range ids {
		sink(id) // want hotalloc
	}
}

// spawn builds a closure per iteration: flagged.
// hdov:hot-path
func spawn(ids []int64, run func(func())) {
	for _, id := range ids {
		run(func() { _ = id }) // want hotalloc
	}
}

// rare allocates only on the corrupt-input return: exempt by design,
// since a return terminates the loop and so runs at most once per call.
// hdov:hot-path
func rare(ids []int64) error {
	for _, id := range ids {
		if id < 0 {
			return fmt.Errorf("bad id %d", id)
		}
	}
	return nil
}

// step is a no-op loop body.
func step(int64) {}

// trace formats per iteration under a debug flag — a genuine recurring
// allocation, but one the justification declares acceptably cold.
// hdov:hot-path
func trace(ids []int64, debug bool) {
	for _, id := range ids {
		if debug {
			//lint:ignore hotalloc debug tracing is off by default
			_ = fmt.Sprint("visit ", id)
		}
		step(id)
	}
}

// cold does the same work as visit without the annotation: quiet, the
// pass only governs declared hot paths.
func cold(ids []int64) []*Item {
	var out []*Item
	for _, id := range ids {
		out = append(out, &Item{ID: id})
	}
	return out
}
