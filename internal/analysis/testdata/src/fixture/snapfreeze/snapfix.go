// Package snapfix exercises snapfreeze: stores into types marked
// hdov:frozen-after-publish are flagged outside construction windows,
// with exemptions for provably fresh locals and value copies.
package snapfix

// Node is a snapshot tree node; once reachable from a published epoch
// it is traversed lock-free and must never change.
// hdov:frozen-after-publish
type Node struct {
	Count   int
	Entries []Entry
	Left    *Node
}

// Entry is one frozen child slot.
// hdov:frozen-after-publish
type Entry struct {
	Pid int64
}

// Mutate stores into a node someone may have published: flagged.
func Mutate(n *Node) {
	n.Count = 7 // want snapfreeze
}

// MutateEntry stores through the entry slice into the shared backing
// array: flagged.
func MutateEntry(n *Node) {
	n.Entries[0].Pid = 4 // want snapfreeze
}

// MutateDeep reaches a frozen node through a frozen node: flagged.
func MutateDeep(n *Node) {
	n.Left.Count = 1 // want snapfreeze
}

// Republish mutates a node fetched from shared state: the freshness
// exemption does not apply to values that came from elsewhere.
func Republish(reg []*Node) {
	n := reg[0]
	n.Count = 5 // want snapfreeze
}

// Build is a construction window: it assembles a tree nothing has
// published yet, so its stores are legal.
// hdov:construction-window
func Build(entries []Entry) *Node {
	n := &Node{}
	n.Count = len(entries)
	n.Entries = entries
	return n
}

// FreshLocal allocates its own node: no published epoch can reach it,
// so the stores are quiet even without a window annotation.
func FreshLocal() *Node {
	n := &Node{}
	n.Count = 3
	return n
}

// ValueCopy mutates the function's own copy of a value parameter:
// quiet, the caller's node is untouched.
func ValueCopy(n Node) int {
	n.Count = 2
	return n.Count
}

// ValueCopySharedBacking looks like a copy but the entry slice still
// points at the published backing array: flagged.
func ValueCopySharedBacking(n Node) {
	n.Entries[0].Pid = 9 // want snapfreeze
}

// poke mutates its parameter: the store is flagged here, and the
// call-graph summary marks poke as a mutator for call-site checks.
func poke(n *Node) {
	n.Count++ // want snapfreeze
}

// PokePublished hands a possibly-published node to a mutator: the call
// site is flagged through the MutatesParam summary.
func PokePublished(n *Node) {
	poke(n) // want snapfreeze
}

// PokeFresh hands a fresh node to the same mutator: quiet at the call
// site (poke's own store is reported once, above).
func PokeFresh() *Node {
	n := &Node{}
	poke(n)
	return n
}
