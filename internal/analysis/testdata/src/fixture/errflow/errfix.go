// Package errfix is the errflow fixture: storage-write shaped methods,
// binary encoding calls, and decoder-named functions whose error results
// are variously dropped and consumed.
package errfix

import (
	"bytes"
	"encoding/binary"
)

// Disk carries a WriteBytes method matching the watched writer names.
type Disk struct{}

// WriteBytes mirrors the storage write API.
func (d *Disk) WriteBytes(p int64, b []byte) error {
	return nil
}

// DecodeThing matches the project's decoder naming convention.
func DecodeThing(b []byte) (int, error) {
	return len(b), nil
}

// IgnoredWrite drops the write error as a bare statement.
func IgnoredWrite(d *Disk) {
	d.WriteBytes(0, nil) // want errflow
}

// BlankWrite assigns the error to the blank identifier.
func BlankWrite(d *Disk) {
	_ = d.WriteBytes(0, nil) // want errflow
}

// CheckedWrite propagates the error: clean.
func CheckedWrite(d *Disk) error {
	return d.WriteBytes(0, nil)
}

// IgnoredBinary drops binary.Write's error.
func IgnoredBinary(buf *bytes.Buffer) {
	binary.Write(buf, binary.LittleEndian, uint32(1)) // want errflow
}

// BlankDecode blanks the decoder error position.
func BlankDecode(b []byte) int {
	v, _ := DecodeThing(b) // want errflow
	return v
}

// CheckedDecode propagates: clean.
func CheckedDecode(b []byte) (int, error) {
	return DecodeThing(b)
}

// DeferredWrite loses the error in a defer.
func DeferredWrite(d *Disk) {
	defer d.WriteBytes(0, nil) // want errflow
}

// The codec decoders (DESIGN.md §13) return the error in positions the
// original fixtures never exercised: last of two non-error results, and
// slice-valued decodes whose partial result must never be used on error.

// DecodeUnitC mirrors DecodeVPageC: slice result plus error.
func DecodeUnitC(b []byte) ([]uint64, error) {
	return nil, nil
}

// DecodeSegmentC mirrors DecodePointerSegmentC: two payload results with
// the error in the third position.
func DecodeSegmentC(b []byte, n int) ([]int64, []int32, error) {
	return nil, nil, nil
}

// BlankDecodeUnit blanks the slice decoder's error.
func BlankDecodeUnit(b []byte) []uint64 {
	v, _ := DecodeUnitC(b) // want errflow
	return v
}

// BlankDecodeSegment blanks the error in the third result position.
func BlankDecodeSegment(b []byte) ([]int64, []int32) {
	offs, lens, _ := DecodeSegmentC(b, 4) // want errflow
	return offs, lens
}

// IgnoredDecode drops a decode as a bare statement.
func IgnoredDecode(b []byte) {
	DecodeUnitC(b) // want errflow
}

// GoDecode loses the decoder error in a go statement.
func GoDecode(b []byte) {
	go DecodeSegmentC(b, 4) // want errflow
}

// CheckedDecodeSegment propagates: clean.
func CheckedDecodeSegment(b []byte) ([]int64, []int32, error) {
	return DecodeSegmentC(b, 4)
}

// The incremental-update write path (dynamic scenes): op application,
// delta serialization and the epoch commit. A dropped error on any of
// these publishes state that never durably applied.

// ApplyOps mirrors core.ApplyOps: evolved state plus error.
func ApplyOps(ops []int) ([]int, error) {
	return ops, nil
}

// WriteDeltaTo mirrors storage.Disk.WriteDeltaTo.
func (d *Disk) WriteDeltaTo(w *bytes.Buffer, from int64) (int64, error) {
	return 0, nil
}

// ApplyDelta mirrors storage.Disk.ApplyDelta.
func (d *Disk) ApplyDelta(b []byte) error {
	return nil
}

// CommitEpoch mirrors dbfile.CommitEpoch / DB.CommitEpoch.
func (d *Disk) CommitEpoch(dir string) (int, error) {
	return 0, nil
}

// BlankApplyOps blanks the op-application error: the caller would
// publish a tree the batch never produced.
func BlankApplyOps(ops []int) []int {
	t, _ := ApplyOps(ops) // want errflow
	return t
}

// IgnoredDelta drops the delta-write error as a bare statement.
func IgnoredDelta(d *Disk, buf *bytes.Buffer) {
	d.WriteDeltaTo(buf, 0) // want errflow
}

// BlankApplyDelta blanks the delta-application error.
func BlankApplyDelta(d *Disk, b []byte) {
	_ = d.ApplyDelta(b) // want errflow
}

// BlankCommit blanks the commit error while keeping the epoch number —
// the caller would report an epoch that never committed.
func BlankCommit(d *Disk) int {
	epoch, _ := d.CommitEpoch("dir") // want errflow
	return epoch
}

// DeferredCommit loses the commit error in a defer.
func DeferredCommit(d *Disk) {
	defer d.CommitEpoch("dir") // want errflow
}

// CheckedCommit propagates: clean.
func CheckedCommit(d *Disk) (int, error) {
	if err := d.ApplyDelta(nil); err != nil {
		return 0, err
	}
	return d.CommitEpoch("dir")
}

// The path-sensitive checks added with the CFG engine: errors captured
// into a variable but never read on any path to exit, and errors handed
// to a callee that never reads its error parameter.

// ReassignedUnchecked checks the first write but silently overwrites the
// checked variable with a second, never-checked error before returning.
func ReassignedUnchecked(d *Disk) {
	err := d.WriteBytes(0, nil)
	if err != nil {
		return
	}
	err = d.WriteBytes(1, nil) // want errflow
}

// ReassignedChecked re-checks after the reassignment: clean.
func ReassignedChecked(d *Disk) error {
	err := d.WriteBytes(0, nil)
	if err != nil {
		return err
	}
	err = d.WriteBytes(1, nil)
	return err
}

// CheckedOnOnePath only examines the second error on one branch, but a
// merge where any incoming path checked it stays quiet (intersection
// join): clean by design.
func CheckedOnOnePath(d *Disk, verbose bool) {
	err := d.WriteBytes(0, nil)
	if verbose {
		_ = err.Error()
	}
}

// sinkErr accepts an error and never reads it.
func sinkErr(severity int, err error) {
	_ = severity
}

// logErr reads its error parameter: a legitimate handler.
func logErr(err error) {
	if err != nil {
		_ = err.Error()
	}
}

// PassedToSink hands the write error to a callee that drops it.
func PassedToSink(d *Disk) {
	err := d.WriteBytes(0, nil)
	sinkErr(1, err) // want errflow
}

// PassedToHandler hands the error to a real handler: clean.
func PassedToHandler(d *Disk) {
	err := d.WriteBytes(0, nil)
	logErr(err)
}
