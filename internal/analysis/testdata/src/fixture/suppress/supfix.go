// Package supfix exercises the suppression machinery: a justified
// directive silences its finding, a wrong-pass directive does not, a
// reason-less directive is itself reported (pass "suppress") and
// suppresses nothing, and the "all" wildcard covers every pass.
package supfix

// PinnedPage mirrors the storage pin handle's shape.
type PinnedPage struct {
	Data []byte
}

// Release unpins the page.
func (p *PinnedPage) Release() {}

// Disk mirrors the storage pin acquisition API.
type Disk struct{}

// PinPage acquires a pin.
func (d *Disk) PinPage(id int) (*PinnedPage, error) {
	return nil, nil
}

// Good leaks, but the justified directive suppresses the finding.
func Good(d *Disk) {
	//lint:ignore pinrelease fixture: pin ownership is tracked out of band
	p, _ := d.PinPage(1)
	_ = p.Data
}

// WrongPass suppresses a different pass; the pinrelease finding survives.
func WrongPass(d *Disk) {
	//lint:ignore lockorder fixture: names the wrong pass on purpose
	p, _ := d.PinPage(2)
	_ = p.Data
}

// Malformed omits the mandatory reason: the directive is reported as a
// "suppress" finding and the leak is reported too.
func Malformed(d *Disk) {
	//lint:ignore pinrelease
	p, _ := d.PinPage(3)
	_ = p.Data
}

// Wildcard uses the "all" pass name to cover any finding on the line.
func Wildcard(d *Disk) {
	//lint:ignore all fixture: wildcard suppression
	p, _ := d.PinPage(4)
	_ = p.Data
}

// Unused carries a directive with nothing left to suppress — the code
// it once excused was fixed. The stale directive is itself reported.
func Unused(d *Disk) {
	//lint:ignore pinrelease fixture: stale, the leak below was fixed
	p, err := d.PinPage(5)
	if err == nil {
		p.Release()
	}
}

// UnknownPass names a pass that does not exist (a typo): the directive
// is reported and the leak it meant to excuse is reported too.
func UnknownPass(d *Disk) {
	//lint:ignore pinfree fixture: typo for pinrelease
	p, _ := d.PinPage(6)
	_ = p.Data
}
