// Package fixture is the root package of the analyzer's fixture module.
// Its exported surface exercises the apisnapshot pass: the fixture tests
// snapshot this API, then mutate the golden file and assert the pass
// reports both the lost and the unexpected declarations.
package fixture

// Version is the fixture API version.
const Version = 1

// DefaultName is the zero-config widget name.
var DefaultName = "widget"

// Widget is an exported type with one exported and one hidden field;
// only the exported field may appear in the API surface.
type Widget struct {
	Name   string
	hidden int
}

// Grow returns a copy of w grown by n sizes.
func (w *Widget) Grow(n int) Widget {
	out := *w
	out.hidden += n
	return out
}

// MakeWidget constructs a named widget.
func MakeWidget(name string) *Widget {
	return &Widget{Name: name}
}

// Sizer measures widgets.
type Sizer interface {
	Size(w Widget) int
}
