// Package prefix is the prefetch-isolation fixture. Its import path
// ends in internal/storage, so both rules apply: goroutine bodies and
// Enqueue closures may not reference core's QueryResult.
package prefix

import corefix "fixture/internal/core"

// Queue mimics the prefetcher's enqueue surface; the rule matches the
// method name, not the receiver type.
type Queue struct{}

// Enqueue accepts a job closure.
func (q *Queue) Enqueue(job func() int) bool { _ = job; return true }

// WorkerTouchesResult spawns a goroutine that reads query state.
func WorkerTouchesResult(res *corefix.QueryResult) {
	go func() {
		_ = res.Items // want determinism
	}()
}

// WorkerCounts touches only a counter from its goroutine: clean.
func WorkerCounts(n *int) {
	go func() {
		*n++
	}()
}

// JobCapturesResult hands the queue a closure over query state.
func JobCapturesResult(q *Queue, res *corefix.QueryResult) {
	q.Enqueue(func() int {
		return len(res.Items) // want determinism
	})
}

// JobCapturesIDs captures only plain identifiers: clean.
func JobCapturesIDs(q *Queue, cell int) {
	q.Enqueue(func() int { return cell })
}
