// Package walkfix is the walkthrough half of the prefetch-isolation
// fixture: the Enqueue-closure rule applies here too (the player is
// where jobs are built), but the goroutine rule does not — players
// legitimately move results across goroutines in the session manager.
package walkfix

import corefix "fixture/internal/core"

type queue struct{}

func (q *queue) Enqueue(job func() int) bool { _ = job; return true }

// PlayerGoroutine touches a result from a plain goroutine: allowed in
// this package.
func PlayerGoroutine(res *corefix.QueryResult) {
	done := make(chan struct{})
	go func() {
		_ = res.Items
		close(done)
	}()
	<-done
}

// EnqueueResult captures a result in a prefetch job: flagged.
func EnqueueResult(q *queue, res *corefix.QueryResult) {
	q.Enqueue(func() int {
		return len(res.Items) // want determinism
	})
}

// EnqueueCell captures only a cell identifier: clean.
func EnqueueCell(q *queue, cell int) {
	q.Enqueue(func() int { return cell })
}
