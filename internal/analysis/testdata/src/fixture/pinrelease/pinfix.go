// Package pinfix is the pinrelease fixture: the pass matches any call
// whose first result is a *PinnedPage, so the fixture carries its own
// miniature pin API and needs no dependency on internal/storage.
//
// Lines expecting a finding carry a trailing `// want pinrelease`
// marker; the driver test fails if the findings and markers disagree in
// either direction.
package pinfix

// PinnedPage mirrors the storage pin handle's shape.
type PinnedPage struct {
	Data []byte
}

// Release unpins the page.
func (p *PinnedPage) Release() {}

// Disk mirrors the storage pin acquisition API.
type Disk struct{}

// PinPage acquires a pin.
func (d *Disk) PinPage(id int) (*PinnedPage, error) {
	return nil, nil
}

// LeakStraight never releases: flagged at the acquisition.
func LeakStraight(d *Disk) {
	p, err := d.PinPage(1) // want pinrelease
	if err != nil {
		return
	}
	_ = p.Data
}

// LeakOnBranch releases on the fall-through path but leaks on the early
// return: still flagged at the acquisition.
func LeakOnBranch(d *Disk, cond bool) error {
	p, err := d.PinPage(2) // want pinrelease
	if err != nil {
		return err
	}
	if cond {
		return nil
	}
	p.Release()
	return nil
}

// ReleaseBothBranches releases on every path: clean.
func ReleaseBothBranches(d *Disk, cond bool) {
	p, err := d.PinPage(3)
	if err != nil {
		return
	}
	if cond {
		p.Release()
		return
	}
	p.Release()
}

// DeferRelease covers every later path with one defer: clean.
func DeferRelease(d *Disk, cond bool) error {
	p, err := d.PinPage(4)
	if err != nil {
		return err
	}
	defer p.Release()
	if cond {
		return nil
	}
	_ = p.Data
	return nil
}

// Discard drops the pin as a bare statement.
func Discard(d *Disk) {
	d.PinPage(5) // want pinrelease
}

// DiscardBlank drops the pin into the blank identifier.
func DiscardBlank(d *Disk) {
	_, _ = d.PinPage(6) // want pinrelease
}

// Overwrite reacquires into a live pin variable: the first acquisition
// is flagged, the second is released.
func Overwrite(d *Disk) {
	p, _ := d.PinPage(7) // want pinrelease
	p, _ = d.PinPage(8)
	p.Release()
}

// AcquireFor returns the pin: ownership transfers to the caller, clean.
func AcquireFor(d *Disk) (*PinnedPage, error) {
	p, err := d.PinPage(9)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// holder keeps a pin alive across calls.
type holder struct {
	p *PinnedPage
}

// Stash stores the pin into a struct: ownership transfers, clean.
func Stash(d *Disk, h *holder) {
	p, err := d.PinPage(10)
	if err != nil {
		return
	}
	h.p = p
}
