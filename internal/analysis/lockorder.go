package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockOrderPass enforces the storage locking protocol (DESIGN.md §10).
// Within internal/storage:
//
//  1. Ordering: d.statsMu is the innermost lock. Acquiring mu (Lock or
//     RLock) while statsMu is held inverts the documented order and can
//     deadlock against the mu→statsMu direction.
//  2. No self-nesting: locking a mutex already held by the same function
//     (without an intervening unlock) self-deadlocks for sync.Mutex and
//     write-starves for RWMutex.
//  3. No I/O or callbacks under mu: while any mutex is held, calling
//     through an interface value (io.Writer etc.) or a func-typed
//     variable hands control to unknown code that may block or reenter
//     the disk — the lock-hold regions must stay short and self-contained.
//
// The analysis is intraprocedural and syntactic over each function body,
// tracking held locks by their selector spelling (`d.mu`, `s.statsMu`),
// with defer-awareness: `defer x.Unlock()` keeps x held to the end of
// the function rather than releasing it mid-body.
//
// internal/shard is in scope too: the router's topology mutex serializes
// only pointer swaps and replica publication — rule 3 keeps store opens,
// clones and any other I/O out of its critical sections, so a promotion
// can never stall in-flight queries.
type LockOrderPass struct {
	// Packages restricts the pass (import-path suffix match). Empty means
	// the storage default.
	Packages []string
}

// Name implements Pass.
func (*LockOrderPass) Name() string { return "lockorder" }

// lockOrderScope reports whether the pass applies to pkg.
func (p *LockOrderPass) scope(pkg *Package) bool {
	pats := p.Packages
	if len(pats) == 0 {
		pats = []string{"internal/storage", "internal/shard"}
	}
	for _, s := range pats {
		if strings.HasSuffix(pkg.Path, s) {
			return true
		}
	}
	return false
}

// innerLocks are the mutexes that must never be held when acquiring an
// outer one. statsMu protects leaf accounting; holding it across a mu
// acquisition inverts the documented order.
var innerLocks = map[string]bool{"statsMu": true}

// outerLocks are the locks whose critical sections must not call unknown
// code.
var outerLocks = map[string]bool{"mu": true}

// ioMethodNames are interface-method names that move bytes: calling one
// through an interface value while holding mu performs I/O (or reenters
// arbitrary code) under the structural lock.
var ioMethodNames = map[string]bool{
	"Read": true, "Write": true, "Close": true, "Flush": true,
	"Sync": true, "Seek": true, "ReadFrom": true, "WriteTo": true,
}

// ioPkgFuncs are the package-io functions that perform transfers (the
// constructors are pure).
var ioPkgFuncs = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true,
	"ReadFull": true, "WriteString": true, "ReadAtLeast": true,
}

// Run implements Pass.
func (p *LockOrderPass) Run(pkg *Package) []Finding {
	if !p.scope(pkg) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			c := &lockChecker{pkg: pkg, held: map[string]bool{}}
			c.walkBlock(body.List)
			out = append(out, c.findings...)
			return true
		})
	}
	return out
}

type lockChecker struct {
	pkg      *Package
	held     map[string]bool // lock key ("mu", "statsMu", ...) -> held
	findings []Finding
}

func (c *lockChecker) report(pos ast.Node, format string, args ...any) {
	c.findings = append(c.findings, finding("lockorder", c.pkg.Fset, pos.Pos(), format, args...))
}

// lockCall decomposes `x.y.Lock()` into (lock field name, method). It
// returns ok=false for calls that are not mutex operations.
func (c *lockChecker) lockCall(call *ast.CallExpr) (field, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	method = sel.Sel.Name
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	// Receiver must be a sync.Mutex/RWMutex-shaped field or variable; its
	// final selector component is the lock's identity within the pass.
	inner, isSel := sel.X.(*ast.SelectorExpr)
	if isSel {
		field = inner.Sel.Name
	} else if id, isID := sel.X.(*ast.Ident); isID {
		field = id.Name
	} else {
		return "", "", false
	}
	if tv, found := c.pkg.Info.Types[sel.X]; found {
		t := tv.Type.String()
		if !strings.HasSuffix(t, "sync.Mutex") && !strings.HasSuffix(t, "sync.RWMutex") {
			return "", "", false
		}
	}
	return field, method, true
}

// walkBlock processes statements in order, updating the held-lock set.
// Branch bodies are visited with a copy of the current state; the state
// after a branch is the fall-through state (syntactic approximation —
// the storage code keeps lock regions straight-line, and anything
// cleverer belongs behind a suppression with a written justification).
func (c *lockChecker) walkBlock(stmts []ast.Stmt) {
	for _, s := range stmts {
		c.walkStmt(s)
	}
}

func (c *lockChecker) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			c.handleCall(call, false)
			return
		}
	case *ast.DeferStmt:
		c.handleCall(st.Call, true)
		return
	case *ast.IfStmt:
		if st.Init != nil {
			c.walkStmt(st.Init)
		}
		c.checkExprCalls(st.Cond)
		saved := c.snapshot()
		c.walkBlock(st.Body.List)
		c.restore(saved)
		if st.Else != nil {
			c.walkStmt(st.Else)
			c.restore(saved)
		}
		return
	case *ast.BlockStmt:
		c.walkBlock(st.List)
		return
	case *ast.ForStmt:
		saved := c.snapshot()
		if st.Init != nil {
			c.walkStmt(st.Init)
		}
		c.checkExprCalls(st.Cond)
		c.walkBlock(st.Body.List)
		c.restore(saved)
		return
	case *ast.RangeStmt:
		c.checkExprCalls(st.X)
		saved := c.snapshot()
		c.walkBlock(st.Body.List)
		c.restore(saved)
		return
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		saved := c.snapshot()
		ast.Inspect(s, func(n ast.Node) bool {
			if cl, ok := n.(*ast.CaseClause); ok {
				c.walkBlock(cl.Body)
				c.restore(saved)
				return false
			}
			if cl, ok := n.(*ast.CommClause); ok {
				c.walkBlock(cl.Body)
				c.restore(saved)
				return false
			}
			return true
		})
		return
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			c.checkExprCalls(r)
		}
		return
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			c.checkExprCalls(r)
		}
		return
	case *ast.GoStmt:
		// The goroutine body runs without the caller's locks; its own
		// literal is analyzed as a separate function by Run.
		return
	}
	// Fallback: scan any other statement shape for embedded calls.
	if s != nil {
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				c.checkUnknownCall(call)
				return false
			}
			return true
		})
	}
}

func (c *lockChecker) snapshot() map[string]bool {
	out := make(map[string]bool, len(c.held))
	for k, v := range c.held {
		out[k] = v
	}
	return out
}

func (c *lockChecker) restore(saved map[string]bool) {
	c.held = make(map[string]bool, len(saved))
	for k, v := range saved {
		c.held[k] = v
	}
}

// handleCall processes a direct call statement (or deferred call).
func (c *lockChecker) handleCall(call *ast.CallExpr, deferred bool) {
	if field, method, ok := c.lockCall(call); ok {
		switch method {
		case "Lock", "RLock":
			if deferred {
				return // deferred acquisition is nonsense; vet territory
			}
			if c.held[field] {
				c.report(call, "%s.%s while %q is already held (self-deadlock / nested lock)", field, method, field)
			}
			if outerLocks[field] {
				for h := range c.held {
					if innerLocks[h] && c.held[h] {
						c.report(call, "acquiring %q while holding %q inverts the lock order (mu before statsMu)", field, h)
					}
				}
			}
			c.held[field] = true
		case "Unlock", "RUnlock":
			if deferred {
				// Held until function exit: leave it held for the rest of
				// the body.
				return
			}
			delete(c.held, field)
		}
		return
	}
	c.checkUnknownCall(call)
	for _, a := range call.Args {
		c.checkExprCalls(a)
	}
}

// checkExprCalls scans an expression for nested calls made while locks
// are held.
func (c *lockChecker) checkExprCalls(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, isLock := c.lockCall(call); !isLock {
				c.checkUnknownCall(call)
			}
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed separately
		}
		return true
	})
}

// checkUnknownCall reports calls that hand control to unknown code while
// an outer lock is held: interface-method calls and func-value calls.
// Concrete method/function calls within the package are assumed to honor
// the protocol themselves (they are analyzed too).
func (c *lockChecker) checkUnknownCall(call *ast.CallExpr) {
	holding := ""
	for h := range c.held {
		if outerLocks[h] && c.held[h] {
			holding = h
			break
		}
	}
	if holding == "" {
		return
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if selInfo, ok := c.pkg.Info.Selections[fun]; ok {
			recv := selInfo.Recv()
			// Only I/O-shaped interface methods: a Stringer or hash
			// accessor under the lock is harmless; a Write/Read hands the
			// lock-hold region to an unknown writer.
			if types.IsInterface(recv) && ioMethodNames[fun.Sel.Name] {
				c.report(call, "interface call %s.%s while holding %q (I/O or reentrancy under the structural lock)",
					exprString(fun.X), fun.Sel.Name, holding)
			}
			return
		}
		// Qualified identifier (pkg.Func): opaque external call. Flag the
		// functions that actually perform I/O; constructors (io.MultiWriter,
		// bufio.NewWriter) and pure helpers (fmt.Errorf) are fine.
		if id, ok := fun.X.(*ast.Ident); ok {
			if obj, ok := c.pkg.Info.Uses[id]; ok {
				if pn, ok := obj.(*types.PkgName); ok {
					path := pn.Imported().Path()
					name := fun.Sel.Name
					switch {
					case path == "os" || path == "net":
						c.report(call, "call into package %s while holding %q", path, holding)
					case path == "fmt" && strings.HasPrefix(name, "Fprint"):
						c.report(call, "fmt.%s while holding %q (writes to an external writer)", name, holding)
					case path == "io" && ioPkgFuncs[name]:
						c.report(call, "io.%s while holding %q", name, holding)
					}
				}
			}
		}
	case *ast.Ident:
		obj, ok := c.pkg.Info.Uses[fun]
		if !ok {
			return
		}
		if v, isVar := obj.(*types.Var); isVar {
			if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
				c.report(call, "func-value call %s(...) while holding %q (callback under the structural lock)",
					fun.Name, holding)
			}
		}
	}
}

// exprString renders a short selector expression for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	default:
		return "expr"
	}
}
