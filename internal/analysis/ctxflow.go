package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlowPass guards the cancellation contract of the serving stack
// (DESIGN.md §14): every query, fetch, and playback entry point takes a
// context.Context and threads it down to the storage layer, so a
// deadline set at the public API is observed at every node expansion and
// before every media read. Two ways that chain silently breaks, both of
// which this pass forbids on the traversal path (internal/core,
// internal/storage, internal/vstore, internal/walkthrough,
// internal/overload):
//
//   - Minting a fresh unbounded context mid-path: calls to
//     context.Background() or context.TODO() sever the caller's deadline
//     from everything below. The compat wrappers that deliberately run
//     unbounded carry a //lint:ignore ctxflow justification.
//   - Dropping a received context: a function that declares a
//     context.Context parameter and never reads it accepts a deadline it
//     will not honor — the API lies to its caller.
type CtxFlowPass struct {
	// Packages restricts the pass (import-path suffix match). Empty means
	// the traversal-path default.
	Packages []string
}

// Name implements Pass.
func (*CtxFlowPass) Name() string { return "ctxflow" }

func (p *CtxFlowPass) scope(pkg *Package) bool {
	pats := p.Packages
	if len(pats) == 0 {
		pats = []string{
			"internal/core", "internal/storage", "internal/vstore",
			"internal/walkthrough", "internal/overload",
		}
	}
	for _, s := range pats {
		if strings.HasSuffix(pkg.Path, s) {
			return true
		}
	}
	return false
}

// Run implements Pass.
func (p *CtxFlowPass) Run(pkg *Package) []Finding {
	if !p.scope(pkg) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if name := freshContextCall(pkg, x); name != "" {
					out = append(out, finding("ctxflow", pkg.Fset, x.Pos(),
						"%s severs the caller's deadline on a traversal path; thread the incoming context instead", name))
				}
			case *ast.FuncDecl:
				if x.Body != nil {
					out = append(out, droppedContexts(pkg, x.Type, x.Body)...)
				}
			case *ast.FuncLit:
				out = append(out, droppedContexts(pkg, x.Type, x.Body)...)
			}
			return true
		})
	}
	return out
}

// freshContextCall matches context.Background() / context.TODO().
func freshContextCall(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return ""
	}
	return "context." + sel.Sel.Name + "()"
}

// droppedContexts reports named context.Context parameters of ft that
// body never reads. Blank (_) parameters are not reported: they are an
// explicit, reviewable statement that the context is unused (interface
// conformance), unlike a named parameter that quietly stops flowing.
func droppedContexts(pkg *Package, ft *ast.FuncType, body *ast.BlockStmt) []Finding {
	var out []Finding
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		tv, ok := pkg.Info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pkg.Info.Defs[name]
			if obj == nil || usesObject(pkg, body, obj) {
				continue
			}
			out = append(out, finding("ctxflow", pkg.Fset, name.Pos(),
				"context parameter %s is never used: the declared deadline is accepted but not honored", name.Name))
		}
	}
	return out
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// usesObject reports whether body contains a use of obj.
func usesObject(pkg *Package, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
