package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// The engine tests work on syntax alone: BuildCFG needs no type
// information, so each case parses a single function and asserts
// structural properties of the graph — which marks are reachable, which
// leaf conditions guard which edges, where a labeled break lands.

// parseBody parses src (a complete function declaration) and returns
// its body.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file, err := parser.ParseFile(token.NewFileSet(), "t.go", "package p\n\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatalf("no function in %q", src)
	return nil
}

// markCalls returns the mark("...") literals appearing in a node.
func markCalls(n ast.Node) []string {
	var out []string
	ast.Inspect(n, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" && len(call.Args) == 1 {
			if lit, ok := call.Args[0].(*ast.BasicLit); ok {
				out = append(out, strings.Trim(lit.Value, `"`))
			}
		}
		return true
	})
	return out
}

// blockWithMark finds the block whose nodes contain mark(name).
func blockWithMark(t *testing.T, g *CFG, name string) *CFGBlock {
	t.Helper()
	for _, blk := range g.Blocks {
		for _, nd := range blk.Nodes {
			for _, m := range markCalls(nd) {
				if m == name {
					return blk
				}
			}
		}
	}
	t.Fatalf("no block contains mark(%q)", name)
	return nil
}

// reachable returns the set of block indexes reachable from blk,
// excluding blocks in avoid.
func reachable(g *CFG, from *CFGBlock, avoid ...*CFGBlock) map[int]bool {
	skip := make(map[int]bool)
	for _, a := range avoid {
		skip[a.Index] = true
	}
	seen := map[int]bool{from.Index: true}
	work := []*CFGBlock{from}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		for _, e := range blk.Succs {
			if seen[e.To.Index] || skip[e.To.Index] {
				continue
			}
			seen[e.To.Index] = true
			work = append(work, e.To)
		}
	}
	return seen
}

// reachedMarks collects every mark reachable from the entry.
func reachedMarks(g *CFG) []string {
	seen := reachable(g, g.Entry)
	var out []string
	for _, blk := range g.Blocks {
		if !seen[blk.Index] {
			continue
		}
		for _, nd := range blk.Nodes {
			out = append(out, markCalls(nd)...)
		}
	}
	sort.Strings(out)
	return out
}

func TestCFGShortCircuitAnd(t *testing.T) {
	g := BuildCFG(parseBody(t, `
func f(a, b bool) {
	if a && b {
		mark("then")
	} else {
		mark("else")
	}
	mark("after")
}`))
	// Locate the leaf-condition blocks for a and b.
	var blkA, blkB *CFGBlock
	for _, blk := range g.Blocks {
		for _, nd := range blk.Nodes {
			if id, ok := nd.(*ast.Ident); ok {
				switch id.Name {
				case "a":
					blkA = blk
				case "b":
					blkB = blk
				}
			}
		}
	}
	if blkA == nil || blkB == nil {
		t.Fatalf("short-circuit leaves not decomposed into separate blocks")
	}
	thenB := blockWithMark(t, g, "then")
	elseB := blockWithMark(t, g, "else")

	// a's true edge must lead to b's evaluation; a's false edge must
	// skip b entirely and land on the else branch.
	var aTrue, aFalse *CFGBlock
	for _, e := range blkA.Succs {
		if id, ok := e.Cond.(*ast.Ident); !ok || id.Name != "a" {
			t.Fatalf("edge out of a's block carries cond %v", e.Cond)
		}
		if e.Negate {
			aFalse = e.To
		} else {
			aTrue = e.To
		}
	}
	if aTrue == nil || aFalse == nil {
		t.Fatalf("a's block lacks a true/false edge pair")
	}
	if !reachable(g, aTrue)[blkB.Index] {
		t.Errorf("a=true edge does not reach evaluation of b")
	}
	if !reachable(g, aFalse, blkB)[elseB.Index] {
		t.Errorf("a=false edge does not reach else without evaluating b")
	}
	if reachable(g, aFalse, blkB)[thenB.Index] {
		t.Errorf("a=false edge reaches then branch without b")
	}

	// b's true edge reaches then; b's false edge reaches else.
	var bTrue, bFalse *CFGBlock
	for _, e := range blkB.Succs {
		if e.Negate {
			bFalse = e.To
		} else {
			bTrue = e.To
		}
	}
	if !reachable(g, bTrue)[thenB.Index] || reachable(g, bFalse, thenB)[thenB.Index] {
		t.Errorf("b's edges do not select the then branch correctly")
	}
	if !reachable(g, bFalse)[elseB.Index] {
		t.Errorf("b=false edge does not reach else")
	}
}

func TestCFGShortCircuitOr(t *testing.T) {
	g := BuildCFG(parseBody(t, `
func f(a, b bool) {
	if a || b {
		mark("then")
	}
	mark("after")
}`))
	var blkA, blkB *CFGBlock
	for _, blk := range g.Blocks {
		for _, nd := range blk.Nodes {
			if id, ok := nd.(*ast.Ident); ok {
				switch id.Name {
				case "a":
					blkA = blk
				case "b":
					blkB = blk
				}
			}
		}
	}
	if blkA == nil || blkB == nil {
		t.Fatalf("|| leaves not decomposed")
	}
	thenB := blockWithMark(t, g, "then")
	var aTrue *CFGBlock
	for _, e := range blkA.Succs {
		if !e.Negate {
			aTrue = e.To
		}
	}
	// a=true short-circuits straight to then, never evaluating b.
	if !reachable(g, aTrue, blkB)[thenB.Index] {
		t.Errorf("a=true edge does not reach then without evaluating b")
	}
}

func TestCFGLabeledBreakAndContinue(t *testing.T) {
	g := BuildCFG(parseBody(t, `
func f(n int) {
Outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if stop() {
				break Outer
			}
			if skip() {
				continue Outer
			}
			mark("inner")
		}
	}
	mark("after")
}`))
	inner := blockWithMark(t, g, "inner")
	after := blockWithMark(t, g, "after")

	// Locate the post block of the outer loop (contains i++) and assert
	// continue Outer lands there while break Outer reaches after
	// without re-entering the inner body.
	var breakTo, continueTo *CFGBlock
	var outerPost *CFGBlock
	for _, blk := range g.Blocks {
		for _, nd := range blk.Nodes {
			if inc, ok := nd.(*ast.IncDecStmt); ok {
				if id, ok := inc.X.(*ast.Ident); ok && id.Name == "i" {
					outerPost = blk
				}
			}
		}
	}
	if outerPost == nil {
		t.Fatalf("outer post block (i++) not found")
	}
	// Walk every empty block with one successor that was produced by a
	// BranchStmt: one of them must edge directly to the outer post
	// (continue Outer) and one must lead to after without touching the
	// inner body (break Outer).
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.To == outerPost && blk != inner && len(blk.Nodes) == 0 {
				continueTo = e.To
			}
		}
		if len(blk.Nodes) == 0 && len(blk.Succs) == 1 {
			to := blk.Succs[0].To
			r := reachable(g, to, inner, outerPost)
			if r[after.Index] && to != g.Exit && blk != g.Entry {
				breakTo = to
			}
		}
	}
	if continueTo == nil {
		t.Errorf("continue Outer does not edge to the outer loop's post block")
	}
	if breakTo == nil {
		t.Errorf("break Outer does not reach the code after the outer loop without re-entering it")
	}
	// Sanity: everything is still reachable from the entry.
	marks := reachedMarks(g)
	if strings.Join(marks, ",") != "after,inner" {
		t.Errorf("reachable marks = %v, want [after inner]", marks)
	}
}

func TestCFGDeferInLoop(t *testing.T) {
	g := BuildCFG(parseBody(t, `
func f(n int) {
	defer mark("outerdefer")
	for i := 0; i < n; i++ {
		defer mark("loopdefer")
		mark("body")
	}
	mark("after")
}`))
	if len(g.Defers) != 2 {
		t.Fatalf("Defers = %d, want 2", len(g.Defers))
	}
	// The loop defer keeps its syntactic position: it sits in the same
	// block as the body mark, and that block loops back to the head.
	body := blockWithMark(t, g, "body")
	foundDefer := false
	for _, nd := range body.Nodes {
		if _, ok := nd.(*ast.DeferStmt); ok {
			foundDefer = true
		}
	}
	if !foundDefer {
		t.Errorf("loop-body defer is not a node of the loop body block")
	}
	// The body participates in the loop: it can reach itself again.
	if !reachable(g, body)[body.Index] {
		t.Errorf("loop body has no back edge to itself")
	}
	// And the function still terminates: after is reachable.
	if !reachable(g, g.Entry)[blockWithMark(t, g, "after").Index] {
		t.Errorf("code after the loop unreachable")
	}
}

func TestCFGReturnMakesDeadCode(t *testing.T) {
	g := BuildCFG(parseBody(t, `
func f() {
	mark("live")
	return
	mark("dead")
}`))
	marks := reachedMarks(g)
	if strings.Join(marks, ",") != "live" {
		t.Errorf("reachable marks = %v, want [live]", marks)
	}
	if !reachable(g, g.Entry)[g.Exit.Index] {
		t.Errorf("exit unreachable")
	}
}

func TestCFGPanicTerminatesPath(t *testing.T) {
	g := BuildCFG(parseBody(t, `
func f(c bool) {
	if c {
		panic("boom")
	}
	mark("after")
}`))
	// The panic block must have no successors: the panicking path never
	// merges back.
	var panicBlk *CFGBlock
	for _, blk := range g.Blocks {
		for _, nd := range blk.Nodes {
			if es, ok := nd.(*ast.ExprStmt); ok && isPanicCall(es.X) {
				panicBlk = blk
			}
		}
	}
	if panicBlk == nil {
		t.Fatalf("panic statement not placed in any block")
	}
	if len(panicBlk.Succs) != 0 {
		t.Errorf("panic block has %d successors, want 0", len(panicBlk.Succs))
	}
	if !reachable(g, g.Entry)[blockWithMark(t, g, "after").Index] {
		t.Errorf("non-panicking path lost")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := BuildCFG(parseBody(t, `
func f(x int) {
	switch x {
	case 1:
		mark("one")
		fallthrough
	case 2:
		mark("two")
	default:
		mark("def")
	}
	mark("after")
}`))
	one := blockWithMark(t, g, "one")
	two := blockWithMark(t, g, "two")
	def := blockWithMark(t, g, "def")
	// fallthrough: case 1's body must reach case 2's body directly.
	if !reachable(g, one, g.Entry)[two.Index] {
		t.Errorf("fallthrough from case 1 does not reach case 2's body")
	}
	// but not the default body.
	if reachable(g, one, g.Entry)[def.Index] {
		t.Errorf("fallthrough leaks into the default body")
	}
	marks := reachedMarks(g)
	if strings.Join(marks, ",") != "after,def,one,two" {
		t.Errorf("reachable marks = %v", marks)
	}
}

// markFlow is a tiny FlowClient used to test the solver: the fact is
// the sorted comma-joined set of marks executed on some path.
type markFlow struct{}

func (markFlow) Entry() any { return "" }

func (markFlow) Transfer(n ast.Node, fact any) any {
	ms := markCalls(n)
	if len(ms) == 0 {
		return fact
	}
	set := make(map[string]bool)
	for _, m := range strings.Split(fact.(string), ",") {
		if m != "" {
			set[m] = true
		}
	}
	for _, m := range ms {
		set[m] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

func (markFlow) Refine(cond ast.Expr, negate bool, fact any) any { return fact }

func (markFlow) Join(a, b any) any {
	set := make(map[string]bool)
	for _, f := range []any{a, b} {
		for _, m := range strings.Split(f.(string), ",") {
			if m != "" {
				set[m] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

func (markFlow) Equal(a, b any) bool { return a == b }

func TestSolveFixpointThroughLoop(t *testing.T) {
	g := BuildCFG(parseBody(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		if odd(i) {
			mark("odd")
			continue
		}
		mark("even")
	}
	mark("done")
}`))
	res := Solve(g, markFlow{})
	if !res.Reached[g.Exit.Index] {
		t.Fatalf("exit not reached")
	}
	// Both loop-path marks must have flowed around the back edge and
	// out of the loop to the exit.
	got := res.In[g.Exit.Index].(string)
	want := "done,even,odd"
	if got != want {
		t.Errorf("facts at exit = %q, want %q", got, want)
	}
}

func TestSolveSkipsDeadBlocks(t *testing.T) {
	g := BuildCFG(parseBody(t, `
func f() {
	mark("live")
	return
	mark("dead")
}`))
	res := Solve(g, markFlow{})
	dead := blockWithMark(t, g, "dead")
	if res.Reached[dead.Index] {
		t.Errorf("solver visited dead code")
	}
	if got := res.In[g.Exit.Index].(string); got != "live" {
		t.Errorf("facts at exit = %q, want %q", got, "live")
	}
}
