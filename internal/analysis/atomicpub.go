package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// AtomicPubPass checks the publication protocol of shared state: every
// store to a field annotated `hdov:guarded-by <lock>` must happen with
// that lock write-held on every path to the store, and a field
// annotated `hdov:guarded-by atomic` may not be stored to directly at
// all (its writers go through sync/atomic so readers can load it
// without the lock).
//
// Held locks are tracked with the shared CFG/dataflow engine: Lock()
// adds the receiver's spelling (the same selector-path identity the
// lockorder pass uses), Unlock() removes it, `defer mu.Unlock()` keeps
// the lock held to the end of the function, and the join is the
// intersection — a store is only safe if the lock is held on *all*
// paths reaching it. RLock does not satisfy a write guard. Functions
// whose callers acquire the lock declare it with `hdov:caller-holds
// <lock>`, which seeds the entry fact.
//
// The pass is annotation-driven, so it fires only where a guarded field
// is declared — the epoch-publication fields in the root DB and the
// backbone hand-off in internal/core are the intended customers: a
// store there outside the lock tears the epoch swap that readers
// snapshot lock-free.
type AtomicPubPass struct {
	loader *Loader
}

// Name implements Pass.
func (*AtomicPubPass) Name() string { return "atomicpub" }

// SetLoader implements LoaderAware.
func (p *AtomicPubPass) SetLoader(l *Loader) { p.loader = l }

// Run implements Pass.
func (p *AtomicPubPass) Run(pkg *Package) []Finding {
	ann := newAnnotations(pkg, p.loader)
	var out []Finding
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, p.checkFunc(pkg, ann, fd)...)
		}
	}
	return out
}

func (p *AtomicPubPass) checkFunc(pkg *Package, ann *annotations, fd *ast.FuncDecl) []Finding {
	entry := lockSet{}
	if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		if name, held := ann.funcAnnotation(obj, "hdov:caller-holds"); held && name != "" {
			entry = entry.with(name)
		}
	}
	g := BuildCFG(fd.Body)
	flow := &lockFlow{pkg: pkg, ann: ann, entry: entry}
	// Deferred unlocks run at function exit, not at their syntactic
	// position: a lock whose Unlock is deferred stays held for the rest
	// of the body.
	for _, df := range g.Defers {
		if name, isUnlock := lockCallee(df.Call); isUnlock == unlockCall || isUnlock == rUnlockCall {
			flow.deferredUnlocks = append(flow.deferredUnlocks, name)
		}
	}
	res := Solve(g, flow)
	flow.report = true
	for _, blk := range g.Blocks {
		if !res.Reached[blk.Index] || blk == g.Exit {
			continue
		}
		ReplayBlock(blk, res.In[blk.Index], flow)
	}
	return flow.findings
}

// lockSet is the immutable set of held-lock spellings; values are true
// for a write lock and false for a read lock.
type lockSet map[string]bool

func (s lockSet) with(name string) lockSet {
	out := make(lockSet, len(s)+1)
	for k, v := range s {
		out[k] = v
	}
	out[name] = true
	return out
}

func (s lockSet) withRead(name string) lockSet {
	out := make(lockSet, len(s)+1)
	for k, v := range s {
		out[k] = v
	}
	if !out[name] {
		out[name] = false
	}
	return out
}

func (s lockSet) without(name string) lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		if k != name {
			out[k] = v
		}
	}
	return out
}

// holdsWrite reports whether the set write-holds a lock matching the
// required spelling: exact match, or a caller-holds seed matching the
// spelling's last component.
func (s lockSet) holdsWrite(required string) bool {
	if s[required] {
		return true
	}
	if i := strings.LastIndex(required, "."); i >= 0 {
		if s[required[i+1:]] {
			return true
		}
	}
	return false
}

type lockKind int

const (
	notLockCall lockKind = iota
	lockCall
	rLockCall
	unlockCall
	rUnlockCall
)

// lockCallee classifies a call as a mutex operation and returns the
// receiver's spelling (e.g. "d.mu").
func lockCallee(call *ast.CallExpr) (string, lockKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", notLockCall
	}
	var kind lockKind
	switch sel.Sel.Name {
	case "Lock":
		kind = lockCall
	case "RLock":
		kind = rLockCall
	case "Unlock":
		kind = unlockCall
	case "RUnlock":
		kind = rUnlockCall
	default:
		return "", notLockCall
	}
	return exprString(sel.X), kind
}

// lockFlow is the FlowClient tracking held locks and checking guarded
// stores during the reporting replay.
type lockFlow struct {
	pkg             *Package
	ann             *annotations
	entry           lockSet
	deferredUnlocks []string
	report          bool
	findings        []Finding
}

// Entry implements FlowClient.
func (c *lockFlow) Entry() any { return c.entry }

// Join implements FlowClient: intersection — a guard only counts when
// held on every incoming path; a read-hold on either side demotes a
// write-hold.
func (c *lockFlow) Join(a, b any) any {
	fa, fb := a.(lockSet), b.(lockSet)
	out := make(lockSet)
	for k, va := range fa {
		if vb, ok := fb[k]; ok {
			out[k] = va && vb
		}
	}
	return out
}

// Equal implements FlowClient.
func (c *lockFlow) Equal(a, b any) bool {
	fa, fb := a.(lockSet), b.(lockSet)
	if len(fa) != len(fb) {
		return false
	}
	for k, va := range fa {
		if vb, ok := fb[k]; !ok || va != vb {
			return false
		}
	}
	return true
}

// Refine implements FlowClient: lock state does not depend on branch
// conditions.
func (c *lockFlow) Refine(cond ast.Expr, negate bool, fact any) any { return fact }

// Transfer implements FlowClient.
func (c *lockFlow) Transfer(n ast.Node, fact any) any {
	held := fact.(lockSet)

	// Guarded stores are checked against the fact *before* this node's
	// own lock transitions (a store in the same statement as the Lock
	// call cannot exist in Go anyway).
	if c.report {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				c.checkGuardedStore(lhs, held)
			}
		case *ast.IncDecStmt:
			c.checkGuardedStore(st.X, held)
		}
	}

	switch st := n.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			name, kind := lockCallee(call)
			switch kind {
			case lockCall:
				held = held.with(name)
			case rLockCall:
				held = held.withRead(name)
			case unlockCall, rUnlockCall:
				if c.isDeferred(name) {
					break
				}
				held = held.without(name)
			}
		}
	case *ast.DeferStmt:
		// Deferred Lock would be bizarre; deferred Unlock is handled by
		// keeping the lock held (collected before the solve).
	}
	return held
}

// isDeferred reports whether an Unlock spelling appears as a deferred
// call, meaning its syntactic position is not where it runs.
func (c *lockFlow) isDeferred(name string) bool {
	for _, d := range c.deferredUnlocks {
		if d == name {
			return true
		}
	}
	return false
}

// checkGuardedStore reports a store to a guarded field without its
// guard.
func (c *lockFlow) checkGuardedStore(lhs ast.Expr, held lockSet) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fieldObj, ok := c.pkg.Info.Selections[sel]
	if !ok {
		return
	}
	fv, ok := fieldObj.Obj().(*types.Var)
	if !ok || !fv.IsField() {
		return
	}
	guard, ok := c.ann.fieldAnnotation(fv, "hdov:guarded-by")
	if !ok || guard == "" {
		return
	}
	if guard == "atomic" {
		c.findings = append(c.findings, finding("atomicpub", c.pkg.Fset, lhs.Pos(),
			"direct store to %s, which is hdov:guarded-by atomic; publish through sync/atomic so lock-free readers never see a torn value",
			exprString(lhs)))
		return
	}
	required := exprString(sel.X) + "." + guard
	if held.holdsWrite(required) {
		return
	}
	c.findings = append(c.findings, finding("atomicpub", c.pkg.Fset, lhs.Pos(),
		"store to %s without write-holding %s (hdov:guarded-by %s): %s",
		exprString(lhs), required, guard, c.heldDescription(held)))
}

// heldDescription renders the held set for the diagnostic.
func (c *lockFlow) heldDescription(held lockSet) string {
	if len(held) == 0 {
		return "no lock is held on some path to this store"
	}
	names := make([]string, 0, len(held))
	for k, w := range held {
		if w {
			names = append(names, k)
		} else {
			names = append(names, k+" (read)")
		}
	}
	sort.Strings(names)
	return "held here: " + strings.Join(names, ", ")
}
