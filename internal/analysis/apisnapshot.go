package analysis

import (
	"fmt"
	"go/types"
	"os"
	"sort"
	"strings"
)

// APISnapshotPass diffs the exported API of the module's root package
// against a committed golden file (api.golden), so accidental breaking
// changes — a renamed method, a narrowed signature, a vanished type —
// fail CI with an explicit diff instead of surfacing in downstream
// breakage. Intentional changes regenerate the snapshot with
// `hdovlint -update-api`, which makes API evolution a reviewed, visible
// hunk in the same commit as the code that causes it.
type APISnapshotPass struct {
	// GoldenPath locates the committed snapshot.
	GoldenPath string
}

// Name implements Pass.
func (*APISnapshotPass) Name() string { return "apisnapshot" }

// Run implements Pass.
func (p *APISnapshotPass) Run(pkg *Package) []Finding {
	if strings.Contains(pkg.Path, "/") {
		return nil // root package only
	}
	current := APISurface(pkg.Types)
	raw, err := os.ReadFile(p.GoldenPath)
	if err != nil {
		return []Finding{{
			Pass: "apisnapshot", File: p.GoldenPath, Line: 1, Col: 1,
			Message: fmt.Sprintf("apisnapshot: cannot read golden snapshot: %v (regenerate with hdovlint -update-api)", err),
		}}
	}
	golden := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")

	have := make(map[string]bool, len(current))
	for _, l := range current {
		have[l] = true
	}
	want := make(map[string]bool, len(golden))
	for _, l := range golden {
		if l != "" {
			want[l] = true
		}
	}
	var out []Finding
	for _, l := range golden {
		if l != "" && !have[l] {
			out = append(out, Finding{
				Pass: "apisnapshot", File: p.GoldenPath, Line: 1, Col: 1,
				Message: fmt.Sprintf("apisnapshot: exported API lost or changed: %q (breaking change? update api.golden deliberately)", l),
			})
		}
	}
	for _, l := range current {
		if !want[l] {
			out = append(out, Finding{
				Pass: "apisnapshot", File: p.GoldenPath, Line: 1, Col: 1,
				Message: fmt.Sprintf("apisnapshot: new exported API not in snapshot: %q (run hdovlint -update-api and commit)", l),
			})
		}
	}
	return out
}

// APISurface renders the exported surface of a package as sorted,
// stable, one-per-line declarations. Unexported struct fields and
// methods are omitted — they can change freely.
func APISurface(pkg *types.Package) []string {
	qual := types.RelativeTo(pkg)
	var lines []string
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Const:
			lines = append(lines, fmt.Sprintf("const %s %s", name, types.TypeString(o.Type(), qual)))
		case *types.Var:
			lines = append(lines, fmt.Sprintf("var %s %s", name, types.TypeString(o.Type(), qual)))
		case *types.Func:
			lines = append(lines, fmt.Sprintf("func %s%s", name, signatureString(o.Type().(*types.Signature), qual)))
		case *types.TypeName:
			lines = append(lines, typeLines(o, qual)...)
		}
	}
	sort.Strings(lines)
	return lines
}

// typeLines renders one exported type: its shape plus its exported
// method set.
func typeLines(o *types.TypeName, qual types.Qualifier) []string {
	name := o.Name()
	var lines []string
	if o.IsAlias() {
		lines = append(lines, fmt.Sprintf("type %s = %s", name, types.TypeString(o.Type(), qual)))
		return lines
	}
	named, ok := o.Type().(*types.Named)
	if !ok {
		return lines
	}
	switch u := named.Underlying().(type) {
	case *types.Struct:
		var fields []string
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			fields = append(fields, f.Name()+" "+types.TypeString(f.Type(), qual))
		}
		lines = append(lines, fmt.Sprintf("type %s struct { %s }", name, strings.Join(fields, "; ")))
	case *types.Interface:
		var methods []string
		for i := 0; i < u.NumMethods(); i++ {
			m := u.Method(i)
			methods = append(methods, m.Name()+signatureString(m.Type().(*types.Signature), qual))
		}
		sort.Strings(methods)
		lines = append(lines, fmt.Sprintf("type %s interface { %s }", name, strings.Join(methods, "; ")))
	default:
		lines = append(lines, fmt.Sprintf("type %s %s", name, types.TypeString(u, qual)))
	}
	// Exported methods, through the pointer method set (covers both
	// receiver kinds).
	mset := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < mset.Len(); i++ {
		m := mset.At(i).Obj()
		if !m.Exported() {
			continue
		}
		fn, ok := m.(*types.Func)
		if !ok {
			continue
		}
		lines = append(lines, fmt.Sprintf("method (%s) %s%s", name, m.Name(),
			signatureString(fn.Type().(*types.Signature), qual)))
	}
	return lines
}

// signatureString renders a function signature without the receiver.
func signatureString(sig *types.Signature, qual types.Qualifier) string {
	bare := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	s := types.TypeString(bare, qual)
	return strings.TrimPrefix(s, "func")
}

// WriteAPIGolden regenerates the snapshot file from the given package.
func WriteAPIGolden(pkg *types.Package, path string) error {
	lines := APISurface(pkg)
	return os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644)
}
