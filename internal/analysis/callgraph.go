package analysis

import (
	"go/ast"
	"go/types"
)

// The call-graph layer computes per-function summaries inside one
// package, so path-sensitive passes can reason one call deep without
// whole-program analysis: does a callee mutate memory reachable from a
// parameter (snapfreeze's aliasing check), may a result alias a
// parameter, and does the callee accept an error it never reads
// (errflow's dropped-in-callee check). Mutation is propagated
// transitively through intra-package calls to a fixpoint; cross-package
// and interface calls are conservatively treated as opaque.

// FuncSummary is the flow-relevant behaviour of one declared function.
// Parameter indexes are over the combined list: for methods, index 0 is
// the receiver and declared parameters follow.
type FuncSummary struct {
	Decl *ast.FuncDecl
	Obj  *types.Func
	// Params is the combined receiver-first parameter object list.
	Params []types.Object
	// MutatesParam[i] reports a store through parameter i into memory
	// the caller can observe (through a pointer, slice, or map), either
	// directly or via an intra-package callee.
	MutatesParam []bool
	// ReturnsAlias[i] reports that some return statement's result is
	// rooted at parameter i, so a caller's result may alias its argument.
	ReturnsAlias []bool
	// IgnoresErrorParam[i] reports that parameter i has type error and
	// the body never reads it: an error handed to this function is
	// dropped on the floor.
	IgnoresErrorParam []bool
}

// CallGraph holds the summaries of every function declared in one
// package, keyed by their types.Func objects.
type CallGraph struct {
	pkg   *Package
	Funcs map[*types.Func]*FuncSummary
}

// BuildCallGraph computes summaries for every function declaration in
// pkg, including the transitive-mutation fixpoint.
func BuildCallGraph(pkg *Package) *CallGraph {
	cg := &CallGraph{pkg: pkg, Funcs: make(map[*types.Func]*FuncSummary)}
	var decls []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, fd)
			cg.Funcs[obj] = cg.direct(fd, obj)
		}
	}
	cg.propagateMutation(decls)
	return cg
}

// Summary resolves a call expression to the summary of an
// intra-package declared function, or nil for anything opaque
// (cross-package, interface method, func value, builtin).
func (cg *CallGraph) Summary(call *ast.CallExpr) *FuncSummary {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := cg.pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return cg.Funcs[fn]
}

// CallArgIndex maps argument position a of call to the callee's
// combined parameter index (receiver-first for method calls through a
// selector; variadic arguments collapse onto the last parameter).
func (s *FuncSummary) CallArgIndex(call *ast.CallExpr, a int) int {
	i := a
	if s.Decl.Recv != nil {
		// A method called as x.M(args): args start after the receiver.
		if _, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			i = a + 1
		}
	}
	if i >= len(s.Params) {
		i = len(s.Params) - 1
	}
	return i
}

// direct computes the non-transitive parts of one summary.
func (cg *CallGraph) direct(fd *ast.FuncDecl, obj *types.Func) *FuncSummary {
	s := &FuncSummary{Decl: fd, Obj: obj}
	paramIdx := make(map[types.Object]int)
	addParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				// Unnamed (or receiver without a name): untouchable, so
				// ignored by definition; keep the slot for indexing.
				s.Params = append(s.Params, nil)
				continue
			}
			for _, name := range field.Names {
				var o types.Object
				if name.Name != "_" {
					o = cg.pkg.Info.Defs[name]
				}
				if o != nil {
					paramIdx[o] = len(s.Params)
				}
				s.Params = append(s.Params, o)
			}
		}
	}
	addParams(fd.Recv)
	addParams(fd.Type.Params)
	n := len(s.Params)
	s.MutatesParam = make([]bool, n)
	s.ReturnsAlias = make([]bool, n)
	s.IgnoresErrorParam = make([]bool, n)

	used := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.Ident:
			if o := cg.pkg.Info.Uses[x]; o != nil {
				used[o] = true
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if o := cg.mutationRoot(lhs, paramIdx); o != nil {
					s.MutatesParam[paramIdx[o]] = true
				}
			}
		case *ast.IncDecStmt:
			if o := cg.mutationRoot(x.X, paramIdx); o != nil {
				s.MutatesParam[paramIdx[o]] = true
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if o := aliasRoot(cg.pkg, res, paramIdx); o != nil {
					s.ReturnsAlias[paramIdx[o]] = true
				}
			}
		}
		return true
	})

	isErrType := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
	}
	for i, o := range s.Params {
		if o == nil {
			// A blank or unnamed parameter can never be read; only error
			// slots are interesting enough to flag, and we cannot see the
			// type without the object, so leave unnamed slots alone.
			continue
		}
		if isErrType(o.Type()) && !used[o] {
			s.IgnoresErrorParam[i] = true
		}
	}
	return s
}

// mutationRoot returns the parameter object whose caller-visible memory
// the assignment target writes: the target's root must be a parameter
// and the access chain must cross a pointer, slice, or map boundary
// (writing a value parameter's own copy mutates nothing the caller
// sees).
func (cg *CallGraph) mutationRoot(e ast.Expr, params map[types.Object]int) types.Object {
	crossed := false
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			crossed = true
			e = x.X
		case *ast.SelectorExpr:
			if tv, ok := cg.pkg.Info.Types[x.X]; ok && tv.Type != nil {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					crossed = true
				}
			}
			e = x.X
		case *ast.IndexExpr:
			if tv, ok := cg.pkg.Info.Types[x.X]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					crossed = true
				}
			}
			e = x.X
		case *ast.Ident:
			o := cg.pkg.Info.Uses[x]
			if o == nil {
				o = cg.pkg.Info.Defs[x]
			}
			if o != nil && crossed {
				if _, ok := params[o]; ok {
					return o
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// aliasRoot returns the parameter a result expression is rooted at
// (ident, field chain, index, deref, or address-of), or nil.
func aliasRoot(pkg *Package, e ast.Expr, params map[types.Object]int) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			if o := pkg.Info.Uses[x]; o != nil {
				if _, ok := params[o]; ok {
					return o
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// propagateMutation closes MutatesParam over intra-package calls: a
// parameter handed as-is to a callee that mutates the matching position
// is itself mutated. Iterates to a fixpoint (summaries only ever gain
// bits, so this terminates).
func (cg *CallGraph) propagateMutation(decls []*ast.FuncDecl) {
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			obj, _ := cg.pkg.Info.Defs[fd.Name].(*types.Func)
			s := cg.Funcs[obj]
			if s == nil {
				continue
			}
			paramIdx := make(map[types.Object]int)
			for i, o := range s.Params {
				if o != nil {
					paramIdx[o] = i
				}
			}
			ast.Inspect(fd.Body, func(nd ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := cg.Summary(call)
				if callee == nil {
					return true
				}
				// Receiver position of a method call.
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && callee.Decl.Recv != nil {
					if len(callee.MutatesParam) > 0 && callee.MutatesParam[0] {
						if o := passedParam(cg.pkg, sel.X, paramIdx); o != nil && !s.MutatesParam[paramIdx[o]] {
							s.MutatesParam[paramIdx[o]] = true
							changed = true
						}
					}
				}
				for a, arg := range call.Args {
					i := callee.CallArgIndex(call, a)
					if i < 0 || i >= len(callee.MutatesParam) || !callee.MutatesParam[i] {
						continue
					}
					if o := passedParam(cg.pkg, arg, paramIdx); o != nil && !s.MutatesParam[paramIdx[o]] {
						s.MutatesParam[paramIdx[o]] = true
						changed = true
					}
				}
				return true
			})
		}
	}
}

// passedParam reports the pointer/slice/map-typed parameter an argument
// passes along unchanged (the only shape whose mutation by the callee
// is visible to our caller).
func passedParam(pkg *Package, arg ast.Expr, params map[types.Object]int) types.Object {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return nil
	}
	o := pkg.Info.Uses[id]
	if o == nil {
		return nil
	}
	if _, isParam := params[o]; !isParam {
		return nil
	}
	switch o.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return o
	}
	return nil
}
