package analysis

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestDesignDocumentsEveryPass pins DESIGN.md §11 to the registry:
// every pass hdovlint can run (including the suppress directive pass)
// must be documented with a `**name**` bullet in the static-invariants
// section. A pass added without prose — or renamed away from its
// documentation — fails here.
func TestDesignDocumentsEveryPass(t *testing.T) {
	data, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatalf("read DESIGN.md: %v", err)
	}
	doc := string(data)
	start := strings.Index(doc, "## 11.")
	if start < 0 {
		t.Fatal("DESIGN.md has no `## 11.` section")
	}
	section := doc[start:]
	if end := strings.Index(section[1:], "\n## "); end >= 0 {
		section = section[:end+1]
	}
	for _, name := range KnownPassNames() {
		if !strings.Contains(section, fmt.Sprintf("**%s**", name)) {
			t.Errorf("pass %q is registered but has no **%s** bullet in DESIGN.md §11", name, name)
		}
	}
}
