// Package analysis implements hdovlint, the project-invariant static
// analyzer. The HDoV codebase carries invariants that ordinary Go vetting
// cannot see — pinned buffer-pool pages must reach Release on every path,
// Disk.mu must never be acquired under Disk.statsMu, query traversal must
// stay deterministic so the differential suite's byte-identical guarantee
// holds, and decoder/write errors must not be dropped. Each invariant is a
// Pass; the driver type-checks packages with the standard library only
// (go/parser + go/types with a source importer, no module dependencies)
// and reports findings with file:line positions.
//
// A finding can be suppressed with a comment on the same line or the line
// directly above it:
//
//	//lint:ignore <pass> reason
//
// The reason is mandatory; suppressions without one are themselves
// reported. See DESIGN.md §11 for the invariant catalogue.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pass    string         `json:"pass"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`
}

// String formats the finding the way compilers do, so editors can jump to
// it: file:line:col: [pass] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Pass, f.Message)
}

// Package is one type-checked package handed to the passes.
type Package struct {
	Path  string // import path, e.g. "repro/internal/storage"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass is one invariant checker.
type Pass interface {
	// Name is the pass identifier used in output and suppression comments.
	Name() string
	// Run inspects one package and returns its findings. Findings are
	// filtered through suppression comments by the driver.
	Run(pkg *Package) []Finding
}

// Passes returns the full hdovlint pass set. apiGoldenPath locates the
// committed API snapshot for the apisnapshot pass (empty disables it).
func Passes(apiGoldenPath string) []Pass {
	ps := []Pass{
		&PinReleasePass{},
		&LockOrderPass{},
		&DeterminismPass{},
		&ErrFlowPass{},
		&CtxFlowPass{},
		&SnapFreezePass{},
		&AtomicPubPass{},
		&HotAllocPass{},
	}
	if apiGoldenPath != "" {
		ps = append(ps, &APISnapshotPass{GoldenPath: apiGoldenPath})
	}
	return ps
}

// KnownPassNames lists every pass identifier a suppression directive may
// name (plus the wildcard "all" and the driver's own "suppress"
// findings). A directive naming anything else is itself reported: it
// silently suppresses nothing, which usually means a typo is hiding a
// real finding.
func KnownPassNames() []string {
	names := []string{"suppress"}
	for _, p := range Passes("unused") {
		names = append(names, p.Name())
	}
	sort.Strings(names)
	return names
}

// Loader parses and type-checks packages of the repro module from source,
// resolving standard-library imports through the toolchain's source
// importer and module-internal imports from the repository tree itself.
type Loader struct {
	Root string // repository root (directory containing go.mod)
	Fset *token.FileSet

	module   string // module path from go.mod ("repro")
	fallback types.ImporterFrom
	cache    map[string]*Package
}

// NewLoader returns a loader rooted at the repository directory.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:     abs,
		Fset:     fset,
		module:   mod,
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:    make(map[string]*Package),
	}, nil
}

// modulePath reads the module directive from go.mod.
func modulePath(root string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// Import implements types.Importer over the module tree + stdlib.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.fallback.Import(path)
}

// dirFor maps an import path inside the module to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// Load parses and type-checks one module package by import path,
// memoized. Test files (_test.go) are excluded: the invariants govern
// shipping code, and test packages may deliberately violate them.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir := l.dirFor(path)
	pkg, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// loadDir parses the non-test Go files of dir and type-checks them as
// import path "path".
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		// Honor build constraints (//go:build lines and _GOOS.go name
		// suffixes) the way go build does, so per-platform shims such as
		// filestore's mmap files don't collide in one type-check.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: %s: no Go files in %s", path, dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// ModulePackages walks the repository and returns the import paths of
// every buildable package, skipping testdata, hidden directories, and the
// analyzer's own fixture trees.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if base == "testdata" || (strings.HasPrefix(base, ".") && p != l.Root) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				rel, err := filepath.Rel(l.Root, p)
				if err != nil {
					return err
				}
				if rel == "." {
					paths = append(paths, l.module)
				} else {
					paths = append(paths, l.module+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// Run executes every pass over every named package, applies suppression
// comments, and returns the surviving findings sorted by position.
// Besides the pass findings it reports malformed directives, directives
// naming an unknown pass, and directives that suppressed nothing on this
// run (unused suppressions go stale when the code they excused is fixed,
// and a stale directive will one day hide a real finding). Unused
// reporting is gated on the directive's pass being part of this run, so
// a partial run does not cry wolf about directives for passes it never
// executed.
func Run(l *Loader, passes []Pass, paths []string) ([]Finding, error) {
	ran := make(map[string]bool)
	for _, p := range passes {
		ran[p.Name()] = true
		if la, ok := p.(LoaderAware); ok {
			la.SetLoader(l)
		}
	}
	var out []Finding
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		sup := collectSuppressions(pkg)
		for _, p := range passes {
			for _, f := range p.Run(pkg) {
				if sup.matches(f) {
					continue
				}
				out = append(out, f)
			}
		}
		out = append(out, sup.malformed...)
		out = append(out, sup.unused(ran)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out, nil
}

// position converts a token.Pos into a Finding-ready position.
func position(fset *token.FileSet, pos token.Pos) token.Position {
	return fset.Position(pos)
}

// finding builds a Finding at pos.
func finding(pass string, fset *token.FileSet, pos token.Pos, format string, args ...any) Finding {
	p := position(fset, pos)
	return Finding{
		Pass:    pass,
		Pos:     p,
		File:    p.Filename,
		Line:    p.Line,
		Col:     p.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// supRecord is one //lint:ignore directive with its match bookkeeping.
type supRecord struct {
	pkg  *Package
	pos  token.Pos
	pass string
	used bool
}

// suppressions indexes //lint:ignore comments by file and line.
type suppressions struct {
	// byLine maps file -> covered line -> the directives covering it.
	byLine    map[string]map[int][]*supRecord
	records   []*supRecord
	malformed []Finding
}

// collectSuppressions scans the package's comments for lint directives.
func collectSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]*supRecord)}
	known := make(map[string]bool)
	for _, n := range KnownPassNames() {
		known[n] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := position(pkg.Fset, c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, finding("suppress", pkg.Fset, c.Pos(),
						"malformed directive: want //lint:ignore <pass> <reason>"))
					continue
				}
				pass := fields[0]
				if pass != "all" && !known[pass] {
					s.malformed = append(s.malformed, finding("suppress", pkg.Fset, c.Pos(),
						"directive names unknown pass %q; it suppresses nothing (known: all, %s)",
						pass, strings.Join(KnownPassNames(), ", ")))
					continue
				}
				rec := &supRecord{pkg: pkg, pos: c.Pos(), pass: pass}
				s.records = append(s.records, rec)
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*supRecord)
					s.byLine[pos.Filename] = lines
				}
				// A directive covers its own line and the line below it, so
				// both same-line trailing comments and above-line comments
				// work.
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					lines[ln] = append(lines[ln], rec)
				}
			}
		}
	}
	return s
}

// matches reports whether a finding is covered by a directive, and marks
// every covering directive used.
func (s *suppressions) matches(f Finding) bool {
	lines, ok := s.byLine[f.File]
	if !ok {
		return false
	}
	matched := false
	for _, rec := range lines[f.Line] {
		if rec.pass == f.Pass || rec.pass == "all" {
			rec.used = true
			matched = true
		}
	}
	return matched
}

// unused reports directives that suppressed nothing. A directive naming
// a pass outside this run's set is skipped — whether it is stale cannot
// be known without running that pass. The wildcard "all" is checked on
// every run: if the full pass set over its lines is quiet, the directive
// is dead weight.
func (s *suppressions) unused(ran map[string]bool) []Finding {
	var out []Finding
	for _, rec := range s.records {
		if rec.used {
			continue
		}
		if rec.pass != "all" && !ran[rec.pass] {
			continue
		}
		out = append(out, finding("suppress", rec.pkg.Fset, rec.pos,
			"unused suppression: no %s finding on this or the next line; remove the directive before it hides a real one",
			rec.pass))
	}
	return out
}
