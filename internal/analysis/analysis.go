// Package analysis implements hdovlint, the project-invariant static
// analyzer. The HDoV codebase carries invariants that ordinary Go vetting
// cannot see — pinned buffer-pool pages must reach Release on every path,
// Disk.mu must never be acquired under Disk.statsMu, query traversal must
// stay deterministic so the differential suite's byte-identical guarantee
// holds, and decoder/write errors must not be dropped. Each invariant is a
// Pass; the driver type-checks packages with the standard library only
// (go/parser + go/types with a source importer, no module dependencies)
// and reports findings with file:line positions.
//
// A finding can be suppressed with a comment on the same line or the line
// directly above it:
//
//	//lint:ignore <pass> reason
//
// The reason is mandatory; suppressions without one are themselves
// reported. See DESIGN.md §11 for the invariant catalogue.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pass    string         `json:"pass"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`
}

// String formats the finding the way compilers do, so editors can jump to
// it: file:line:col: [pass] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Pass, f.Message)
}

// Package is one type-checked package handed to the passes.
type Package struct {
	Path  string // import path, e.g. "repro/internal/storage"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass is one invariant checker.
type Pass interface {
	// Name is the pass identifier used in output and suppression comments.
	Name() string
	// Run inspects one package and returns its findings. Findings are
	// filtered through suppression comments by the driver.
	Run(pkg *Package) []Finding
}

// Passes returns the full hdovlint pass set. apiGoldenPath locates the
// committed API snapshot for the apisnapshot pass (empty disables it).
func Passes(apiGoldenPath string) []Pass {
	ps := []Pass{
		&PinReleasePass{},
		&LockOrderPass{},
		&DeterminismPass{},
		&ErrFlowPass{},
		&CtxFlowPass{},
	}
	if apiGoldenPath != "" {
		ps = append(ps, &APISnapshotPass{GoldenPath: apiGoldenPath})
	}
	return ps
}

// Loader parses and type-checks packages of the repro module from source,
// resolving standard-library imports through the toolchain's source
// importer and module-internal imports from the repository tree itself.
type Loader struct {
	Root string // repository root (directory containing go.mod)
	Fset *token.FileSet

	module   string // module path from go.mod ("repro")
	fallback types.ImporterFrom
	cache    map[string]*Package
}

// NewLoader returns a loader rooted at the repository directory.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:     abs,
		Fset:     fset,
		module:   mod,
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:    make(map[string]*Package),
	}, nil
}

// modulePath reads the module directive from go.mod.
func modulePath(root string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// Import implements types.Importer over the module tree + stdlib.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.fallback.Import(path)
}

// dirFor maps an import path inside the module to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// Load parses and type-checks one module package by import path,
// memoized. Test files (_test.go) are excluded: the invariants govern
// shipping code, and test packages may deliberately violate them.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir := l.dirFor(path)
	pkg, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// loadDir parses the non-test Go files of dir and type-checks them as
// import path "path".
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: %s: no Go files in %s", path, dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// ModulePackages walks the repository and returns the import paths of
// every buildable package, skipping testdata, hidden directories, and the
// analyzer's own fixture trees.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if base == "testdata" || (strings.HasPrefix(base, ".") && p != l.Root) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				rel, err := filepath.Rel(l.Root, p)
				if err != nil {
					return err
				}
				if rel == "." {
					paths = append(paths, l.module)
				} else {
					paths = append(paths, l.module+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// Run executes every pass over every named package, applies suppression
// comments, and returns the surviving findings sorted by position.
func Run(l *Loader, passes []Pass, paths []string) ([]Finding, error) {
	var out []Finding
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		sup := collectSuppressions(pkg)
		for _, p := range passes {
			for _, f := range p.Run(pkg) {
				if sup.matches(f) {
					continue
				}
				out = append(out, f)
			}
		}
		out = append(out, sup.malformed...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out, nil
}

// position converts a token.Pos into a Finding-ready position.
func position(fset *token.FileSet, pos token.Pos) token.Position {
	return fset.Position(pos)
}

// finding builds a Finding at pos.
func finding(pass string, fset *token.FileSet, pos token.Pos, format string, args ...any) Finding {
	p := position(fset, pos)
	return Finding{
		Pass:    pass,
		Pos:     p,
		File:    p.Filename,
		Line:    p.Line,
		Col:     p.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// suppressions indexes //lint:ignore comments by file and line.
type suppressions struct {
	// byLine maps file -> line -> set of suppressed pass names.
	byLine    map[string]map[int]map[string]bool
	malformed []Finding
}

// collectSuppressions scans the package's comments for lint directives.
func collectSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := position(pkg.Fset, c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, finding("suppress", pkg.Fset, c.Pos(),
						"malformed directive: want //lint:ignore <pass> <reason>"))
					continue
				}
				pass := fields[0]
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					s.byLine[pos.Filename] = lines
				}
				// A directive covers its own line and the line below it, so
				// both same-line trailing comments and above-line comments
				// work.
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					set := lines[ln]
					if set == nil {
						set = make(map[string]bool)
						lines[ln] = set
					}
					set[pass] = true
				}
			}
		}
	}
	return s
}

// matches reports whether a finding is covered by a directive.
func (s *suppressions) matches(f Finding) bool {
	lines, ok := s.byLine[f.File]
	if !ok {
		return false
	}
	set, ok := lines[f.Line]
	if !ok {
		return false
	}
	return set[f.Pass] || set["all"]
}
