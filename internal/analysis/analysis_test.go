package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// fixtureRoot is the analyzer's self-contained fixture module. Its
// packages deliberately violate the invariants on marked lines; the
// driver tests fail if a pass stops firing (or starts over-firing).
const fixtureRoot = "testdata/src/fixture"

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(fixtureRoot)
	if err != nil {
		t.Fatalf("NewLoader(%s): %v", fixtureRoot, err)
	}
	return l
}

// wantMarkers scans a loaded package for `// want <pass>` comments and
// returns the expected "line pass" keys.
func wantMarkers(pkg *Package) map[string]int {
	want := make(map[string]int)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, pass := range strings.Fields(rest) {
					want[fmt.Sprintf("%d %s", line, pass)]++
				}
			}
		}
	}
	return want
}

// TestPassFixtures is the table-driven fixture suite: each pass runs
// over its fixture package and the findings must match the `// want`
// markers exactly — both missing and unexpected findings fail, so the
// test breaks if a pass's detection logic is disabled.
func TestPassFixtures(t *testing.T) {
	cases := []struct {
		pass Pass
		path string
	}{
		{&PinReleasePass{}, "fixture/pinrelease"},
		{&LockOrderPass{}, "fixture/internal/storage"},
		{&DeterminismPass{}, "fixture/internal/core"},
		{&DeterminismPass{}, "fixture/internal/dbfile"},
		{&DeterminismPass{}, "fixture/prefetch/internal/storage"},
		{&DeterminismPass{}, "fixture/prefetch/internal/walkthrough"},
		{&ErrFlowPass{}, "fixture/errflow"},
		{&CtxFlowPass{}, "fixture/ctxflow/internal/core"},
		{&SnapFreezePass{}, "fixture/snapfreeze"},
		{&AtomicPubPass{}, "fixture/atomicpub"},
		{&HotAllocPass{}, "fixture/hotalloc"},
	}
	l := fixtureLoader(t)
	for _, tc := range cases {
		t.Run(tc.pass.Name(), func(t *testing.T) {
			pkg, err := l.Load(tc.path)
			if err != nil {
				t.Fatalf("load %s: %v", tc.path, err)
			}
			want := wantMarkers(pkg)
			if len(want) == 0 {
				t.Fatalf("fixture %s has no // want markers", tc.path)
			}
			findings, err := Run(l, []Pass{tc.pass}, []string{tc.path})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			got := make(map[string]int)
			for _, f := range findings {
				got[fmt.Sprintf("%d %s", f.Line, f.Pass)]++
			}
			for k, n := range want {
				if got[k] != n {
					t.Errorf("marker %q: want %d finding(s), got %d", k, n, got[k])
				}
			}
			for k, n := range got {
				if want[k] != n {
					t.Errorf("unexpected finding(s) %q (count %d); full set:\n%s", k, n, renderFindings(findings))
				}
			}
		})
	}
}

func renderFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f.String())
	}
	return b.String()
}

// TestSuppression exercises the directive machinery end to end: a
// justified directive and the "all" wildcard silence their findings, a
// wrong-pass directive does not, a reason-less directive is itself
// reported without suppressing anything, a stale directive with nothing
// to suppress is reported, and a directive naming an unknown pass is
// reported. The WrongPass directive (a real pass outside this run's
// set) must NOT be reported unused: this run never executed lockorder,
// so its staleness is unknowable here.
func TestSuppression(t *testing.T) {
	l := fixtureLoader(t)
	findings, err := Run(l, []Pass{&PinReleasePass{}}, []string{"fixture/suppress"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	byPass := make(map[string]int)
	for _, f := range findings {
		byPass[f.Pass]++
	}
	// WrongPass, Malformed, and UnknownPass leak through (3 pinrelease);
	// the malformed directive, the unknown-pass directive, and the stale
	// Unused directive are reported (3 suppress); Good and Wildcard are
	// silent.
	if byPass["pinrelease"] != 3 || byPass["suppress"] != 3 || len(findings) != 6 {
		t.Fatalf("want 3 pinrelease + 3 suppress, got:\n%s", renderFindings(findings))
	}
	var sawUnused, sawUnknown bool
	for _, f := range findings {
		if strings.Contains(f.Message, "unused suppression") {
			sawUnused = true
		}
		if strings.Contains(f.Message, "unknown pass") {
			sawUnknown = true
		}
	}
	if !sawUnused || !sawUnknown {
		t.Fatalf("missing unused/unknown directive findings (unused=%v unknown=%v):\n%s",
			sawUnused, sawUnknown, renderFindings(findings))
	}
}

// TestAPISnapshot checks the three golden-file regimes: in-sync (clean),
// stale (both diff directions reported), and missing (explicit error
// finding).
func TestAPISnapshot(t *testing.T) {
	l := fixtureLoader(t)
	pkg, err := l.Load("fixture")
	if err != nil {
		t.Fatalf("load fixture root: %v", err)
	}

	surface := APISurface(pkg.Types)
	for _, wantLine := range []string{
		"func MakeWidget(name string) *Widget",
		"method (Widget) Grow(n int) Widget",
		"type Widget struct { Name string }",
		"type Sizer interface { Size(w Widget) int }",
		"var DefaultName string",
	} {
		if !contains(surface, wantLine) {
			t.Errorf("APISurface missing %q; got:\n  %s", wantLine, strings.Join(surface, "\n  "))
		}
	}
	if !sort.StringsAreSorted(surface) {
		t.Error("APISurface output is not sorted")
	}

	run := func(golden string) []Finding {
		t.Helper()
		fs, err := Run(l, []Pass{&APISnapshotPass{GoldenPath: golden}}, []string{"fixture"})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return fs
	}

	good := filepath.Join(t.TempDir(), "api.golden")
	if err := WriteAPIGolden(pkg.Types, good); err != nil {
		t.Fatalf("WriteAPIGolden: %v", err)
	}
	if fs := run(good); len(fs) != 0 {
		t.Errorf("in-sync golden: want 0 findings, got:\n%s", renderFindings(fs))
	}

	// Stale golden: drop one real line, add one bogus line.
	stale := filepath.Join(t.TempDir(), "stale.golden")
	mutated := append([]string{"func Vanished() int"}, surface[1:]...)
	if err := os.WriteFile(stale, []byte(strings.Join(mutated, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := run(stale)
	if len(fs) != 2 {
		t.Fatalf("stale golden: want 2 findings, got:\n%s", renderFindings(fs))
	}
	var sawLost, sawNew bool
	for _, f := range fs {
		if strings.Contains(f.Message, `"func Vanished() int"`) {
			sawLost = true
		}
		if strings.Contains(f.Message, fmt.Sprintf("%q", surface[0])) {
			sawNew = true
		}
	}
	if !sawLost || !sawNew {
		t.Errorf("stale golden diff incomplete (lost=%v new=%v):\n%s", sawLost, sawNew, renderFindings(fs))
	}

	if fs := run(filepath.Join(t.TempDir(), "missing.golden")); len(fs) != 1 ||
		!strings.Contains(fs[0].Message, "cannot read golden snapshot") {
		t.Errorf("missing golden: want 1 read-error finding, got:\n%s", renderFindings(fs))
	}
}

func contains(lines []string, want string) bool {
	for _, l := range lines {
		if l == want {
			return true
		}
	}
	return false
}

// TestModulePackages checks discovery over the real repository: the
// analyzer's own fixture trees (under testdata) must be skipped, and the
// known packages must be present.
func TestModulePackages(t *testing.T) {
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"repro", "repro/internal/analysis", "repro/internal/storage", "repro/internal/core"} {
		if !contains(paths, want) {
			t.Errorf("ModulePackages missing %s; got %v", want, paths)
		}
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("ModulePackages leaked a fixture package: %s", p)
		}
	}
}
