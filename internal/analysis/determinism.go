package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismPass guards the reproducibility contract of the query path
// (DESIGN.md §10): the differential suite asserts byte-identical results
// across storage schemes, client counts, and serial/parallel traversal,
// and the paper's scheme comparison (§4–5) is only fair if every run
// takes the same access path. Within the root package, internal/core and
// internal/vstore it therefore forbids:
//
//   - time.Now / time.Since / time.After — wall-clock reads make output
//     run-dependent;
//   - importing math/rand — unseeded (or shared-seed) randomness in the
//     result path breaks replay;
//   - ranging over a map — iteration order is randomized per run, so any
//     map walk that feeds results, encoding, or I/O ordering must
//     enumerate sorted keys (or cell IDs) instead.
//
// Order-insensitive map walks (pure counting) exist; those sites carry a
// //lint:ignore determinism comment with the argument for why order
// cannot leak, which is exactly the review trail the invariant wants.
//
// internal/dbfile is in scope too: the persistence layer serializes the
// manifest, the op log and the delta chain, and a map-order- or
// clock-dependent write there would make a committed epoch irreproducible
// (the crash-point harness compares recovered directories byte-for-byte
// against what the commit protocol promised).
//
// internal/shard is in scope for the same reason: the router's merge
// discipline promises answers byte-identical to the single-store
// baseline, so shard iteration, scatter grouping and stats aggregation
// must walk slices in index order — a map range over shards would
// reorder per-store access sequences between runs.
//
// The pass additionally enforces prefetch isolation (DESIGN.md §12): the
// background prefetcher must never see query state, or its timing could
// leak into answers. In internal/storage, goroutine bodies may not
// reference core.QueryResult; in internal/storage and
// internal/walkthrough, closures handed to an Enqueue call may not
// either — jobs carry page and cell identifiers only.
type DeterminismPass struct {
	// Packages restricts the pass (import-path suffix match, "" entry
	// meaning the module root). Empty means the query-path default.
	Packages []string
}

// Name implements Pass.
func (*DeterminismPass) Name() string { return "determinism" }

func (p *DeterminismPass) scope(pkg *Package) bool {
	pats := p.Packages
	if len(pats) == 0 {
		pats = []string{"internal/core", "internal/vstore", "internal/dbfile", "internal/shard", "root"}
	}
	for _, s := range pats {
		if s == "root" {
			if !strings.Contains(pkg.Path, "/") {
				return true
			}
			continue
		}
		if strings.HasSuffix(pkg.Path, s) {
			return true
		}
	}
	return false
}

// bannedCalls maps qualified call names to the reason they break replay.
var bannedCalls = map[string]string{
	"time.Now":   "wall-clock read",
	"time.Since": "wall-clock read",
	"time.Until": "wall-clock read",
	"time.After": "wall-clock timer",
	"time.Tick":  "wall-clock timer",
}

// Run implements Pass.
func (p *DeterminismPass) Run(pkg *Package) []Finding {
	out := p.prefetchIsolation(pkg)
	if !p.scope(pkg) {
		return out
	}
	for _, file := range pkg.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, finding("determinism", pkg.Fset, imp.Pos(),
					"import of %s in a determinism-critical package (query results must replay bit-identically)", path))
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if name, reason := p.bannedCall(pkg, x); name != "" {
					out = append(out, finding("determinism", pkg.Fset, x.Pos(),
						"%s in a determinism-critical package (%s makes runs diverge)", name, reason))
				}
			case *ast.RangeStmt:
				if tv, ok := pkg.Info.Types[x.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						out = append(out, finding("determinism", pkg.Fset, x.Pos(),
							"range over map %s: iteration order is randomized per run; walk sorted keys instead", exprString(x.X)))
					}
				}
			}
			return true
		})
	}
	return out
}

// prefetchIsolation is the prefetcher's no-query-state contract: the
// worker goroutine and every enqueued job see page IDs, never results.
func (p *DeterminismPass) prefetchIsolation(pkg *Package) []Finding {
	isStorage := strings.HasSuffix(pkg.Path, "internal/storage")
	isWalk := strings.HasSuffix(pkg.Path, "internal/walkthrough")
	if !isStorage && !isWalk {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				// Walkthrough players legitimately move results across
				// goroutines (the session manager); only storage-side
				// goroutines are the prefetch worker's domain.
				if !isStorage {
					return true
				}
				if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
					if pos, name := queryResultRef(pkg, fl.Body); name != "" {
						out = append(out, finding("determinism", pkg.Fset, pos,
							"goroutine in internal/storage references core.QueryResult (%s): the prefetch worker must see only page IDs", name))
					}
				}
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Enqueue" {
					return true
				}
				for _, arg := range x.Args {
					fl, ok := arg.(*ast.FuncLit)
					if !ok {
						continue
					}
					if pos, name := queryResultRef(pkg, fl.Body); name != "" {
						out = append(out, finding("determinism", pkg.Fset, pos,
							"prefetch job references core.QueryResult (%s): enqueued closures may capture only page and cell identifiers", name))
					}
				}
			}
			return true
		})
	}
	return out
}

// queryResultRef finds the first identifier in body whose type involves
// core's QueryResult.
func queryResultRef(pkg *Package, body *ast.BlockStmt) (token.Pos, string) {
	var pos token.Pos
	var name string
	ast.Inspect(body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			obj = pkg.Info.Defs[id]
		}
		if obj == nil {
			return true
		}
		if mentionsQueryResult(obj.Type()) {
			pos, name = id.Pos(), id.Name
			return false
		}
		return true
	})
	return pos, name
}

// mentionsQueryResult unwraps reference-like wrappers and reports whether
// the underlying named type is internal/core's QueryResult.
func mentionsQueryResult(t types.Type) bool {
	for i := 0; i < 8; i++ {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Slice:
			t = x.Elem()
		case *types.Array:
			t = x.Elem()
		case *types.Chan:
			t = x.Elem()
		case *types.Map:
			t = x.Elem()
		case *types.Named:
			obj := x.Obj()
			return obj.Name() == "QueryResult" && obj.Pkg() != nil &&
				strings.HasSuffix(obj.Pkg().Path(), "internal/core")
		default:
			return false
		}
	}
	return false
}

// bannedCall matches pkg-qualified calls against the banned set.
func (p *DeterminismPass) bannedCall(pkg *Package, call *ast.CallExpr) (name, reason string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	obj, ok := pkg.Info.Uses[id]
	if !ok {
		return "", ""
	}
	pn, ok := obj.(*types.PkgName)
	if !ok {
		return "", ""
	}
	qualified := pn.Imported().Name() + "." + sel.Sel.Name
	if reason, banned := bannedCalls[qualified]; banned {
		return qualified, reason
	}
	if pn.Imported().Path() == "math/rand" || pn.Imported().Path() == "math/rand/v2" {
		return pn.Imported().Path() + "." + sel.Sel.Name, "randomness"
	}
	return "", ""
}
