package storage

import "sync"

// Per-region circuit breaker. Quarantine (PR-1) stops re-probing a page
// once recovery code has seen it fail, but damaged media is rarely a
// single page: a scratched region takes out a run of sectors, and every
// first touch of a fresh page in that run still pays a full seek plus the
// whole retry/backoff ladder before failing. The breaker closes that gap:
// it watches permanent-fault outcomes per fixed-size page region and,
// after Threshold consecutive failures in a region, trips the region open
// so further reads fail fast with a degradable CorruptError — charging no
// seek, transfer, retry, or backoff — exactly like a quarantined page.
// After Cooldown fail-fast rejections the region goes half-open and lets
// a single probe read through: a success closes the region again (the
// media was repaired or the faults were transient after all), a failure
// re-opens it. A successful WritePage into the region heals it outright,
// mirroring the quarantine-lifting rewrite contract.
//
// The cooldown is counted in rejected reads, not wall-clock time, so
// breaker behavior is deterministic for a given access sequence — the
// same property the seeded fault injector and the simulated cost model
// already guarantee (DESIGN.md §14).

// BreakerConfig configures the per-region circuit breaker installed by
// SetBreaker.
type BreakerConfig struct {
	// RegionPages is the breaker's tracking granularity in pages; ids in
	// [k·RegionPages, (k+1)·RegionPages) share one state machine.
	// Non-positive selects the default of 64 pages (256 KiB).
	RegionPages int
	// Threshold is how many consecutive permanent faults trip a region
	// open. Non-positive selects the default of 3.
	Threshold int
	// Cooldown is how many fail-fast rejections an open region absorbs
	// before allowing a half-open probe. Non-positive selects the default
	// of 32.
	Cooldown int
}

// BreakerStats is a consistent snapshot of breaker activity.
type BreakerStats struct {
	// Trips counts closed→open transitions; Rejections counts reads
	// failed fast by an open region; Probes counts half-open probe reads
	// allowed through.
	Trips, Rejections, Probes int64
	// OpenRegions is the number of regions currently open or half-open.
	OpenRegions int
}

// breaker region states.
const (
	regionClosed = iota
	regionOpen
	regionHalfOpen
)

type breakerRegion struct {
	state int
	fails int // consecutive permanent faults while closed
	cool  int // rejections since the region opened
}

type breaker struct {
	regionPages PageID
	threshold   int
	cooldown    int

	mu      sync.Mutex
	regions map[PageID]*breakerRegion
	stats   BreakerStats
}

// SetBreaker installs a per-region circuit breaker in front of the media
// read path. Passing the zero BreakerConfig removes any installed
// breaker; installing one resets all region state. Non-positive fields
// select defaults (64 pages / 3 faults / 32 rejections).
func (d *Disk) SetBreaker(cfg BreakerConfig) {
	var br *breaker
	if cfg != (BreakerConfig{}) {
		if cfg.RegionPages <= 0 {
			cfg.RegionPages = 64
		}
		if cfg.Threshold <= 0 {
			cfg.Threshold = 3
		}
		if cfg.Cooldown <= 0 {
			cfg.Cooldown = 32
		}
		br = &breaker{
			regionPages: PageID(cfg.RegionPages),
			threshold:   cfg.Threshold,
			cooldown:    cfg.Cooldown,
			regions:     make(map[PageID]*breakerRegion),
		}
	}
	d.mu.Lock()
	d.breaker = br
	d.mu.Unlock()
}

// BreakerStats returns a snapshot of breaker activity (zeros when no
// breaker is installed).
func (d *Disk) BreakerStats() BreakerStats {
	d.mu.RLock()
	br := d.breaker
	d.mu.RUnlock()
	if br == nil {
		return BreakerStats{}
	}
	br.mu.Lock()
	defer br.mu.Unlock()
	out := br.stats
	for _, r := range br.regions {
		if r.state != regionClosed {
			out.OpenRegions++
		}
	}
	return out
}

// breakerErr is the read-path fail-fast gate: a page in an open region
// fails immediately with a degradable, breaker-tagged CorruptError before
// any cost is accounted. Placed with the quarantine pre-checks.
func (d *Disk) breakerErr(id PageID) error {
	d.mu.RLock()
	br := d.breaker
	d.mu.RUnlock()
	if br == nil {
		return nil
	}
	return br.allow(id)
}

func (b *breaker) region(id PageID) PageID { return id / b.regionPages }

// allow decides whether a read of page id may proceed.
func (b *breaker) allow(id PageID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	r := b.regions[b.region(id)]
	if r == nil || r.state == regionClosed {
		return nil
	}
	if r.state == regionHalfOpen {
		// One probe is already in flight; further reads keep failing fast
		// until its outcome is observed.
		b.stats.Rejections++
		return &CorruptError{Page: id, Tripped: true}
	}
	r.cool++
	if r.cool >= b.cooldown {
		// Let the next read through as a half-open probe.
		r.state = regionHalfOpen
		b.stats.Probes++
		return nil
	}
	b.stats.Rejections++
	return &CorruptError{Page: id, Tripped: true}
}

// observe records the outcome of a physical read of page id: ok is false
// exactly when the read failed permanently (after exhausting retries).
func (b *breaker) observe(id PageID, ok bool) {
	key := b.region(id)
	b.mu.Lock()
	defer b.mu.Unlock()
	r := b.regions[key]
	if r == nil {
		if ok {
			return
		}
		r = &breakerRegion{}
		b.regions[key] = r
	}
	switch {
	case ok:
		// Success closes a half-open region and clears the failure run.
		r.state = regionClosed
		r.fails = 0
		r.cool = 0
	case r.state == regionHalfOpen:
		// The probe failed: re-open and restart the cooldown.
		r.state = regionOpen
		r.cool = 0
	case r.state == regionClosed:
		r.fails++
		if r.fails >= b.threshold {
			r.state = regionOpen
			r.cool = 0
			b.stats.Trips++
		}
	}
}

// heal clears the region containing id — called on a successful WritePage,
// which remaps the damaged sectors.
func (b *breaker) heal(id PageID) {
	b.mu.Lock()
	delete(b.regions, b.region(id))
	b.mu.Unlock()
}
