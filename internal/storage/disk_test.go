package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func newTestDisk() *Disk {
	return NewDisk(256, CostModel{Seek: 10 * time.Millisecond, TransferPage: 1 * time.Millisecond})
}

func TestAllocAndSize(t *testing.T) {
	d := newTestDisk()
	if d.NumPages() != 0 || d.SizeBytes() != 0 {
		t.Fatal("new disk not empty")
	}
	p0 := d.AllocPages(4)
	p1 := d.AllocPages(2)
	if p0 != 0 || p1 != 4 {
		t.Fatalf("allocs at %d, %d", p0, p1)
	}
	if d.NumPages() != 6 || d.SizeBytes() != 6*256 {
		t.Fatalf("pages=%d size=%d", d.NumPages(), d.SizeBytes())
	}
	if got := d.AllocPages(0); got != 6 {
		t.Fatalf("zero alloc at %d", got)
	}
	if d.NumPages() != 7 {
		t.Fatal("zero alloc should clamp to 1 page")
	}
}

func TestPagesFor(t *testing.T) {
	d := newTestDisk()
	cases := []struct {
		bytes int64
		want  int
	}{{0, 1}, {1, 1}, {256, 1}, {257, 2}, {512, 2}, {1000, 4}}
	for _, c := range cases {
		if got := d.PagesFor(c.bytes); got != c.want {
			t.Fatalf("PagesFor(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestWriteReadPage(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(2)
	payload := []byte("hello, page")
	if err := d.WritePage(p, payload); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadPage(p, ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(payload)], payload) {
		t.Fatalf("read back %q", got[:len(payload)])
	}
	if len(got) != 256 {
		t.Fatalf("page length %d", len(got))
	}
	// Unwritten page reads zero-filled.
	z, err := d.ReadPage(p+1, ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range z {
		if b != 0 {
			t.Fatal("sparse page not zero")
		}
	}
}

func TestWriteErrors(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(1)
	if err := d.WritePage(p+5, []byte("x")); !IsOutOfRange(err) {
		t.Fatalf("out-of-range write: %v", err)
	}
	if err := d.WritePage(p, make([]byte, 257)); err == nil {
		t.Fatal("oversized write accepted")
	}
	if _, err := d.ReadPage(PageID(99), ClassLight); !IsOutOfRange(err) {
		t.Fatalf("out-of-range read: %v", err)
	}
	if _, err := d.ReadPage(NilPage, ClassLight); !IsOutOfRange(err) {
		t.Fatalf("nil page read: %v", err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	d := newTestDisk()
	data := make([]byte, 1000)
	r := rand.New(rand.NewSource(3))
	r.Read(data)
	start := d.AllocPages(d.PagesFor(int64(len(data))))
	if err := d.WriteBytes(start, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadBytes(start, len(data), ClassHeavy)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	// Reading an extent past the end fails.
	if _, err := d.ReadBytes(start, 5000, ClassHeavy); !IsOutOfRange(err) {
		t.Fatalf("overlong read: %v", err)
	}
	if _, err := d.ReadBytes(start, -1, ClassHeavy); err == nil {
		t.Fatal("negative read accepted")
	}
}

func TestIOAccountingClasses(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(10)
	_, _ = d.ReadPage(p, ClassLight)
	_, _ = d.ReadPage(p+1, ClassLight) // sequential
	_ = d.ReadExtent(p+5, 3, ClassHeavy)
	s := d.Stats()
	if s.Reads != 5 {
		t.Fatalf("reads = %d", s.Reads)
	}
	if s.LightReads != 2 || s.HeavyReads != 3 {
		t.Fatalf("light=%d heavy=%d", s.LightReads, s.HeavyReads)
	}
	// Seeks: first read seeks, second is sequential, extent read seeks.
	if s.Seeks != 2 {
		t.Fatalf("seeks = %d", s.Seeks)
	}
	want := 2*10*time.Millisecond + 5*1*time.Millisecond
	if s.SimTime != want {
		t.Fatalf("sim time = %v, want %v", s.SimTime, want)
	}
}

func TestSequentialVsRandomCost(t *testing.T) {
	// Sequential scan of 100 pages must be far cheaper than 100 random
	// reads — the property the vertical scheme's depth-first V-page layout
	// exploits (§4.2).
	seq := newTestDisk()
	p := seq.AllocPages(100)
	for i := 0; i < 100; i++ {
		_, _ = seq.ReadPage(p+PageID(i), ClassLight)
	}
	rnd := newTestDisk()
	p2 := rnd.AllocPages(100)
	r := rand.New(rand.NewSource(1))
	perm := r.Perm(100)
	// Ensure the permutation is not accidentally sequential anywhere long.
	for i := 0; i < 100; i++ {
		_, _ = rnd.ReadPage(p2+PageID(perm[i]), ClassLight)
	}
	if seq.Stats().SimTime*5 > rnd.Stats().SimTime {
		t.Fatalf("sequential %v not much cheaper than random %v",
			seq.Stats().SimTime, rnd.Stats().SimTime)
	}
}

func TestStatsSubAndReset(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(5)
	_, _ = d.ReadPage(p, ClassLight)
	before := d.Stats()
	_, _ = d.ReadPage(p+3, ClassHeavy)
	delta := d.Stats().Sub(before)
	if delta.Reads != 1 || delta.HeavyReads != 1 || delta.LightReads != 0 {
		t.Fatalf("delta = %+v", delta)
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatal("reset did not zero stats")
	}
}

func TestCorruption(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(3)
	_ = d.WriteBytes(p, make([]byte, 700))
	d.CorruptPage(p + 1)
	if _, err := d.ReadPage(p+1, ClassLight); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt read: %v", err)
	}
	if _, err := d.ReadBytes(p, 700, ClassLight); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt extent read: %v", err)
	}
	if err := d.ReadExtent(p, 3, ClassLight); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt ReadExtent: %v", err)
	}
	d.HealPage(p + 1)
	if _, err := d.ReadBytes(p, 700, ClassLight); err != nil {
		t.Fatalf("healed read: %v", err)
	}
	// Other pages unaffected while corrupt.
	d.CorruptPage(p + 2)
	if _, err := d.ReadPage(p, ClassLight); err != nil {
		t.Fatalf("unrelated page: %v", err)
	}
}

func TestResidentVsNominal(t *testing.T) {
	// A large allocated extent with a small written prefix stays sparse.
	d := NewDisk(4096, DefaultCostModel())
	start := d.AllocPages(100000) // 400 MB nominal
	_ = d.WriteBytes(start, make([]byte, 8192))
	if d.SizeBytes() != 100000*4096 {
		t.Fatalf("nominal = %d", d.SizeBytes())
	}
	if d.ResidentBytes() > 3*4096 {
		t.Fatalf("resident = %d, want sparse", d.ResidentBytes())
	}
	// Extent read over sparse region is charged but allocates nothing.
	if err := d.ReadExtent(start, 100000, ClassHeavy); err != nil {
		t.Fatal(err)
	}
	if d.Stats().HeavyReads != 100000 {
		t.Fatalf("heavy reads = %d", d.Stats().HeavyReads)
	}
	if d.ResidentBytes() > 3*4096 {
		t.Fatal("extent read materialized pages")
	}
}

func TestDefaultConstants(t *testing.T) {
	d := NewDisk(0, DefaultCostModel())
	if d.PageSize() != DefaultPageSize {
		t.Fatalf("page size = %d", d.PageSize())
	}
	cm := DefaultCostModel()
	if cm.Seek <= cm.TransferPage {
		t.Fatal("seek should dominate transfer")
	}
}

func TestPropBytesRoundTripAnySize(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		r := rand.New(rand.NewSource(seed))
		data := make([]byte, n)
		r.Read(data)
		d := newTestDisk()
		start := d.AllocPages(d.PagesFor(int64(n)))
		if err := d.WriteBytes(start, data); err != nil {
			return false
		}
		got, err := d.ReadBytes(start, n, ClassLight)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
