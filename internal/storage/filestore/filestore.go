// Package filestore is the real-hardware page media behind
// storage.Backend (DESIGN.md §17): a page-granular OS file, read through
// a shared read-only mmap window when the platform supports it and plain
// preads otherwise, written with pwrites (optionally O_SYNC) and made
// durable by fsync. The Disk's vectored reads land here as single
// syscalls — one pread (or one memcpy out of the mapping) per extent or
// coalesced batch, however many pages it spans — which is what turns the
// codec's byte reduction and the prefetcher's warm path into wall-clock
// wins.
//
// The file is sparse: Allocate only truncates (with headroom, so builds
// that grow page by page do not remap per allocation), never-written
// pages read back as holes (zeros), and Release punches holes so trimmed
// shard stores shrink their real footprint too. A written-page set is
// kept in memory for StoredPages/StoredCount — the store always starts
// empty (Create truncates) and is repopulated by replaying an image, so
// the set is exact.
package filestore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// sortPageIDs orders page IDs ascending (the StoredPages contract).
func sortPageIDs(ids []storage.PageID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Options shapes a Store.
type Options struct {
	// NoMmap forces the pread path even where mmap is available.
	NoMmap bool
	// OSync opens the file O_SYNC: every page write is synchronous, so
	// no separate fsync is needed at commit points (at the price of
	// slower writes). Without it, writes are buffered and Sync fsyncs.
	OSync bool
	// ephemeral removes the file on Close — clone siblings use it so
	// shard arms clean up after themselves.
	ephemeral bool
}

// minPages is the initial/minimum file capacity (in pages) a store is
// truncated to, so tiny databases do not remap on every allocation.
const minPages = 1024

// Store is a page file implementing storage.Backend. Safe for concurrent
// use: the OS serializes preads/pwrites on the shared fd, and the
// written set, capacity, and mmap window are guarded by mu. The mmap
// window is MAP_SHARED, so pwrites through the fd are coherently visible
// to mapped reads.
type Store struct {
	path     string
	pageSize int
	f        *os.File
	nommap   bool
	osync    bool
	ephem    bool

	// mu guards written, capPages, and mm. Mapped-window copies happen
	// under the read lock so remapping (which unmaps the old window) is
	// safe under the write lock.
	mu       sync.RWMutex
	written  map[storage.PageID]struct{}
	capPages int64 // file capacity in pages (>= the disk's watermark)
	mm       []byte
	closed   bool

	clones atomic.Int64

	reads, pagesRead, bytesRead, mmapReads, writes, syncs atomic.Int64
}

// Create creates (or truncates) the page file at path and returns a
// store over it. The caller owns the path; Close closes the fd (and for
// clone siblings removes the file).
func Create(path string, pageSize int, opts Options) (*Store, error) {
	if pageSize <= 0 {
		pageSize = storage.DefaultPageSize
	}
	flag := os.O_RDWR | os.O_CREATE | os.O_TRUNC
	if opts.OSync {
		flag |= os.O_SYNC
	}
	f, err := os.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, fmt.Errorf("filestore: %w", err)
	}
	s := &Store{
		path:     path,
		pageSize: pageSize,
		f:        f,
		nommap:   opts.NoMmap,
		osync:    opts.OSync,
		ephem:    opts.ephemeral,
		written:  make(map[storage.PageID]struct{}),
	}
	if err := s.Allocate(minPages); err != nil {
		_ = f.Close()
		return nil, err
	}
	return s, nil
}

// Path returns the backing file's path.
func (s *Store) Path() string { return s.path }

// PageSize returns the page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// Mapped reports whether reads are currently served from an mmap window
// (false when mmap is unavailable, disabled, or the map failed).
func (s *Store) Mapped() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mm != nil
}

// ReadPage fills dst (one page) with the content of page id.
func (s *Store) ReadPage(id storage.PageID, dst []byte) error {
	return s.ReadPages(id, 1, dst)
}

// ReadPages fills dst with n consecutive pages starting at start — one
// memcpy out of the mmap window when it covers the range, one pread
// otherwise. This is the vectored path: however many pages the Disk
// coalesced, the media sees one operation.
func (s *Store) ReadPages(start storage.PageID, n int, dst []byte) error {
	if n <= 0 {
		return nil
	}
	want := n * s.pageSize
	if len(dst) < want {
		return fmt.Errorf("filestore: read [%d,+%d): dst holds %d bytes, want %d", start, n, len(dst), want)
	}
	if start < 0 {
		return fmt.Errorf("filestore: read [%d,+%d): negative page", start, n)
	}
	off := int64(start) * int64(s.pageSize)
	end := off + int64(want)
	s.mu.RLock()
	if s.mm != nil && end <= int64(len(s.mm)) {
		// Copy while holding the read lock: a concurrent Allocate remaps
		// (and unmaps the old window) only under the write lock, so the
		// window cannot vanish mid-copy.
		copy(dst[:want], s.mm[off:end])
		s.mu.RUnlock()
		s.reads.Add(1)
		s.mmapReads.Add(1)
		s.pagesRead.Add(int64(n))
		s.bytesRead.Add(int64(want))
		return nil
	}
	s.mu.RUnlock()
	return s.pread(off, dst[:want], n)
}

// pread issues one positioned read, zero-filling past EOF (pages beyond
// the file's current size are unwritten holes by definition).
func (s *Store) pread(off int64, dst []byte, pages int) error {
	n, err := s.f.ReadAt(dst, off)
	if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
		clear(dst[n:])
		err = nil
	}
	if err != nil {
		return fmt.Errorf("filestore: pread %d bytes at %d: %w", len(dst), off, err)
	}
	s.reads.Add(1)
	s.pagesRead.Add(int64(pages))
	s.bytesRead.Add(int64(len(dst)))
	return nil
}

// WritePage stores one full page with a single pwrite.
func (s *Store) WritePage(id storage.PageID, data []byte) error {
	if len(data) != s.pageSize {
		return fmt.Errorf("filestore: write page %d: %d bytes, want %d", id, len(data), s.pageSize)
	}
	if id < 0 {
		return fmt.Errorf("filestore: write page %d: negative page", id)
	}
	if _, err := s.f.WriteAt(data, int64(id)*int64(s.pageSize)); err != nil {
		return fmt.Errorf("filestore: write page %d: %w", id, err)
	}
	s.mu.Lock()
	s.written[id] = struct{}{}
	s.mu.Unlock()
	s.writes.Add(1)
	return nil
}

// Allocate grows the file to hold at least totalPages pages. Growth is
// chunked (doubling, floor minPages) so page-by-page build allocations
// truncate and remap a handful of times, not thousands; the extra tail
// is sparse and invisible to readers (holes read zero either way).
func (s *Store) Allocate(totalPages int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if totalPages <= s.capPages {
		return nil
	}
	grow := s.capPages * 2
	if grow < totalPages {
		grow = totalPages
	}
	if grow < minPages {
		grow = minPages
	}
	if err := s.f.Truncate(grow * int64(s.pageSize)); err != nil {
		return fmt.Errorf("filestore: grow to %d pages: %w", grow, err)
	}
	s.capPages = grow
	s.remapLocked()
	return nil
}

// remapLocked rebuilds the mmap window over the file's current capacity.
// Requires mu held for writing. A failed (or unavailable) map silently
// degrades to the pread path — mmap is an optimization, never
// load-bearing.
func (s *Store) remapLocked() {
	if s.nommap {
		return
	}
	if s.mm != nil {
		_ = munmapFile(s.mm)
		s.mm = nil
	}
	size := s.capPages * int64(s.pageSize)
	if size <= 0 {
		return
	}
	mm, err := mmapFile(s.f, int(size))
	if err != nil {
		return
	}
	s.mm = mm
}

// Release punches the given pages out of the file (falling back to
// writing zeros where hole-punching is unsupported), returning how many
// held data.
func (s *Store) Release(ids []storage.PageID) int {
	n := 0
	s.mu.Lock()
	defer s.mu.Unlock()
	var zeros []byte
	for _, id := range ids {
		if _, ok := s.written[id]; !ok {
			continue
		}
		delete(s.written, id)
		n++
		off := int64(id) * int64(s.pageSize)
		if err := punchHole(s.f, off, int64(s.pageSize)); err != nil {
			if zeros == nil {
				zeros = make([]byte, s.pageSize)
			}
			// Zero-write fallback keeps read-back semantics identical
			// even where the blocks stay allocated.
			_, _ = s.f.WriteAt(zeros, off)
		}
	}
	return n
}

// StoredPages returns the written page IDs >= from, ascending.
func (s *Store) StoredPages(from storage.PageID) []storage.PageID {
	s.mu.RLock()
	ids := make([]storage.PageID, 0, len(s.written))
	for id := range s.written {
		if id >= from {
			ids = append(ids, id)
		}
	}
	s.mu.RUnlock()
	// Insertion sort would be quadratic at database scale; keep it simple
	// with the stdlib.
	sortPageIDs(ids)
	return ids
}

// StoredCount returns how many pages hold written content.
func (s *Store) StoredCount() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.written))
}

// Sync fsyncs the file. With OSync writes are already synchronous and
// this only flushes metadata.
func (s *Store) Sync() error {
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("filestore: sync %s: %w", s.path, err)
	}
	s.syncs.Add(1)
	return nil
}

// Clone copies the written pages into a sibling file (path.cloneN) and
// returns an independent store over it. The sibling is ephemeral: its
// Close removes the file. Shard stores clone the database disk through
// this, giving every shard a genuinely separate set of OS pages.
func (s *Store) Clone() (storage.Backend, error) {
	path := fmt.Sprintf("%s.clone%d", s.path, s.clones.Add(1))
	c, err := Create(path, s.pageSize, Options{NoMmap: s.nommap, OSync: s.osync, ephemeral: true})
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	capPages := s.capPages
	s.mu.RUnlock()
	if err := c.Allocate(capPages); err != nil {
		_ = c.Close()
		return nil, err
	}
	buf := make([]byte, s.pageSize)
	for _, id := range s.StoredPages(0) {
		if err := s.ReadPage(id, buf); err != nil {
			_ = c.Close()
			return nil, err
		}
		if _, err := c.f.WriteAt(buf, int64(id)*int64(s.pageSize)); err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("filestore: clone page %d: %w", id, err)
		}
		c.mu.Lock()
		c.written[id] = struct{}{}
		c.mu.Unlock()
	}
	return c, nil
}

// Stats returns the media-level operation counters.
func (s *Store) Stats() storage.BackendStats {
	return storage.BackendStats{
		Reads:     s.reads.Load(),
		PagesRead: s.pagesRead.Load(),
		BytesRead: s.bytesRead.Load(),
		MmapReads: s.mmapReads.Load(),
		Writes:    s.writes.Load(),
		Syncs:     s.syncs.Load(),
	}
}

// Timed reports true: this media does real I/O, so the Disk charges
// wall-clock MeasuredTime beside the simulated cost.
func (s *Store) Timed() bool { return true }

// Close unmaps the window and closes the file (removing it for clone
// siblings). Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.mm != nil {
		_ = munmapFile(s.mm)
		s.mm = nil
	}
	err := s.f.Close()
	if s.ephem {
		if rmErr := os.Remove(s.path); rmErr != nil && err == nil {
			err = rmErr
		}
	}
	if err != nil {
		return fmt.Errorf("filestore: close %s: %w", s.path, err)
	}
	return nil
}
