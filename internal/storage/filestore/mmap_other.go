//go:build !linux

package filestore

import (
	"errors"
	"os"
)

// mmapFile reports mmap as unavailable; the store falls back to preads.
func mmapFile(f *os.File, length int) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

// munmapFile is never reached without a successful mmapFile.
func munmapFile(b []byte) error { return nil }

// punchHole reports hole-punching as unavailable; Release falls back to
// writing zeros.
func punchHole(f *os.File, off, length int64) error {
	return errors.ErrUnsupported
}
