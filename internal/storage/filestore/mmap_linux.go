//go:build linux

package filestore

import (
	"os"
	"syscall"
)

// mmapFile maps length bytes of f read-only and shared, so pwrites
// through the fd are coherently visible to mapped reads.
func mmapFile(f *os.File, length int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, length, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a window returned by mmapFile.
func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}

// Linux fallocate mode bits (not exported by the stdlib syscall package).
const (
	fallocFlKeepSize  = 0x1
	fallocFlPunchHole = 0x2
)

// punchHole deallocates [off, off+length) so the blocks are returned to
// the filesystem and read back as zeros.
func punchHole(f *os.File, off, length int64) error {
	return syscall.Fallocate(int(f.Fd()), fallocFlPunchHole|fallocFlKeepSize, off, length)
}
