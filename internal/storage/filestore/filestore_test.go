package filestore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

func newStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Create(filepath.Join(t.TempDir(), "pages.dat"), 64, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func page(b byte, size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestRoundTripAndZeroFill(t *testing.T) {
	for _, opts := range []Options{{}, {NoMmap: true}, {OSync: true}} {
		s := newStore(t, opts)
		if err := s.Allocate(16); err != nil {
			t.Fatal(err)
		}
		if err := s.WritePage(3, page(0xAB, 64)); err != nil {
			t.Fatal(err)
		}
		if err := s.WritePage(5, page(0xCD, 64)); err != nil {
			t.Fatal(err)
		}
		// Vectored read spanning written pages and holes.
		got := page(0xFF, 4*64)
		if err := s.ReadPages(2, 4, got); err != nil {
			t.Fatal(err)
		}
		want := append(append(append(
			page(0, 64), page(0xAB, 64)...), page(0, 64)...), page(0xCD, 64)...)
		if !bytes.Equal(got, want) {
			t.Fatalf("opts %+v: vectored read mismatch", opts)
		}
		one := make([]byte, 64)
		if err := s.ReadPage(5, one); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(one, page(0xCD, 64)) {
			t.Fatal("single-page read mismatch")
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMmapAndPreadAgree(t *testing.T) {
	mm := newStore(t, Options{})
	pr := newStore(t, Options{NoMmap: true})
	if !mm.Mapped() {
		t.Skip("mmap unavailable on this platform")
	}
	if pr.Mapped() {
		t.Fatal("NoMmap store reports a mapping")
	}
	for _, s := range []*Store{mm, pr} {
		for i := storage.PageID(0); i < 40; i += 3 {
			if err := s.WritePage(i, page(byte(i+1), 64)); err != nil {
				t.Fatal(err)
			}
		}
	}
	a, b := make([]byte, 40*64), make([]byte, 40*64)
	if err := mm.ReadPages(0, 40, a); err != nil {
		t.Fatal(err)
	}
	if err := pr.ReadPages(0, 40, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("mmap and pread paths disagree")
	}
	if mm.Stats().MmapReads == 0 {
		t.Fatal("mapped store served no reads from the window")
	}
	if pr.Stats().MmapReads != 0 {
		t.Fatal("NoMmap store counted mmap reads")
	}
}

func TestGrowthRemapsAndReadsBack(t *testing.T) {
	s := newStore(t, Options{})
	if err := s.WritePage(1, page(0x11, 64)); err != nil {
		t.Fatal(err)
	}
	// Grow far beyond the initial capacity, forcing truncate + remap.
	if err := s.Allocate(minPages * 8); err != nil {
		t.Fatal(err)
	}
	far := storage.PageID(minPages*8 - 1)
	if err := s.WritePage(far, page(0x22, 64)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := s.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(0x11, 64)) {
		t.Fatal("pre-growth page lost after remap")
	}
	if err := s.ReadPage(far, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(0x22, 64)) {
		t.Fatal("post-growth page unreadable")
	}
}

func TestStoredPagesAndRelease(t *testing.T) {
	s := newStore(t, Options{})
	for _, id := range []storage.PageID{9, 2, 7, 4} {
		if err := s.WritePage(id, page(byte(id), 64)); err != nil {
			t.Fatal(err)
		}
	}
	ids := s.StoredPages(0)
	want := []storage.PageID{2, 4, 7, 9}
	if len(ids) != len(want) {
		t.Fatalf("stored %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("stored %v, want %v (ascending)", ids, want)
		}
	}
	if got := s.StoredPages(5); len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Fatalf("StoredPages(5) = %v", got)
	}
	if n := s.Release([]storage.PageID{2, 7, 100}); n != 2 {
		t.Fatalf("released %d, want 2", n)
	}
	if s.StoredCount() != 2 {
		t.Fatalf("stored count %d, want 2", s.StoredCount())
	}
	buf := page(0xFF, 64)
	if err := s.ReadPage(2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(0, 64)) {
		t.Fatal("released page does not read back zero")
	}
}

func TestCloneIsIndependentAndEphemeral(t *testing.T) {
	s := newStore(t, Options{})
	if err := s.WritePage(2, page(0x33, 64)); err != nil {
		t.Fatal(err)
	}
	cb, err := s.Clone()
	if err != nil {
		t.Fatal(err)
	}
	c := cb.(*Store)
	buf := make([]byte, 64)
	if err := c.ReadPage(2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(0x33, 64)) {
		t.Fatal("clone missing source content")
	}
	// Writes after the clone are invisible across the boundary, both ways.
	if err := s.WritePage(2, page(0x44, 64)); err != nil {
		t.Fatal(err)
	}
	if err := c.ReadPage(2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(0x33, 64)) {
		t.Fatal("source write leaked into clone")
	}
	if err := c.WritePage(3, page(0x55, 64)); err != nil {
		t.Fatal(err)
	}
	if s.StoredCount() != 1 {
		t.Fatal("clone write leaked into source")
	}
	path := c.Path()
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("ephemeral clone file survived Close: %v", err)
	}
	// Close is idempotent.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTimedAndStats(t *testing.T) {
	s := newStore(t, Options{})
	if !s.Timed() {
		t.Fatal("file store must report Timed")
	}
	if err := s.WritePage(0, page(1, 64)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3*64)
	if err := s.ReadPages(0, 3, buf); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Writes != 1 || st.Reads == 0 || st.PagesRead < 3 || st.BytesRead < 3*64 {
		t.Fatalf("stats %+v", st)
	}
}
