package storage

import "sync"

// flight is a minimal singleflight keyed by PageID: concurrent callers of
// do with the same id share one execution of load. The buffer-pool miss
// path uses it so N sessions flipping into the same cell perform one
// physical read of each segment page instead of N identical ones.
type flight struct {
	// mu guards only the calls map; load runs outside the lock.
	mu    sync.Mutex
	calls map[PageID]*flightCall
}

// flightCall is one in-progress load; done is closed when data/err are
// final.
type flightCall struct {
	done chan struct{}
	data []byte
	err  error
}

// do returns load()'s result, running it once per id across concurrent
// callers. leader reports whether this caller performed the load (false
// means the result was coalesced from another caller's read).
func (f *flight) do(id PageID, load func() ([]byte, error)) (data []byte, err error, leader bool) {
	f.mu.Lock()
	if c, ok := f.calls[id]; ok {
		f.mu.Unlock()
		<-c.done
		return c.data, c.err, false
	}
	c := &flightCall{done: make(chan struct{})}
	f.calls[id] = c
	f.mu.Unlock()

	c.data, c.err = load()

	f.mu.Lock()
	delete(f.calls, id)
	f.mu.Unlock()
	close(c.done)
	return c.data, c.err, true
}
