package storage

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightCoalescesFollowers: followers that arrive while a load is in
// flight share its result without running load again.
func TestFlightCoalescesFollowers(t *testing.T) {
	f := flight{calls: map[PageID]*flightCall{}}
	const followers = 4
	var loads atomic.Int64
	started := make([]chan struct{}, followers)
	for i := range started {
		started[i] = make(chan struct{})
	}

	release := make(chan struct{})
	leaderLoad := func() ([]byte, error) {
		loads.Add(1)
		<-release
		return []byte{0xAB}, nil
	}

	type result struct {
		data   []byte
		err    error
		leader bool
	}
	results := make(chan result, followers+1)
	go func() {
		data, err, leader := f.do(7, leaderLoad)
		results <- result{data, err, leader}
	}()
	// Wait until the leader is inside load (its call is registered).
	for {
		f.mu.Lock()
		_, inFlight := f.calls[7]
		f.mu.Unlock()
		if inFlight {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < followers; i++ {
		go func(i int) {
			close(started[i])
			data, err, leader := f.do(7, func() ([]byte, error) {
				loads.Add(1)
				return nil, errors.New("follower ran its own load")
			})
			results <- result{data, err, leader}
		}(i)
	}
	// Release the leader only after every follower has reached do (plus a
	// grace period for the last few instructions to the map lookup).
	go func() {
		for i := range started {
			<-started[i]
		}
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()

	leaders := 0
	for i := 0; i < followers+1; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("result %d: %v", i, r.err)
		}
		if len(r.data) != 1 || r.data[0] != 0xAB {
			t.Fatalf("result %d: wrong data %v", i, r.data)
		}
		if r.leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want exactly 1", leaders)
	}
	if n := loads.Load(); n != 1 {
		t.Fatalf("load ran %d times, want 1", n)
	}
	if len(f.calls) != 0 {
		t.Fatalf("%d stale in-flight entries", len(f.calls))
	}
}

// TestFlightPropagatesError: a failed load reaches every coalesced caller.
func TestFlightPropagatesError(t *testing.T) {
	f := flight{calls: map[PageID]*flightCall{}}
	sentinel := errors.New("media gone")
	release := make(chan struct{})
	errs := make(chan error, 2)
	go func() {
		_, err, _ := f.do(3, func() ([]byte, error) {
			<-release
			return nil, sentinel
		})
		errs <- err
	}()
	for {
		f.mu.Lock()
		_, inFlight := f.calls[3]
		f.mu.Unlock()
		if inFlight {
			break
		}
		time.Sleep(time.Millisecond)
	}
	go func() {
		_, err, _ := f.do(3, func() ([]byte, error) { return nil, nil })
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, sentinel) {
			t.Fatalf("caller %d: got %v, want sentinel", i, err)
		}
	}
	// Distinct ids never coalesce: a fresh id runs its own load.
	data, err, leader := f.do(4, func() ([]byte, error) { return []byte{1}, nil })
	if err != nil || !leader || len(data) != 1 {
		t.Fatalf("fresh id: data=%v err=%v leader=%v", data, err, leader)
	}
}

// TestCoalescedReadsAccounting: under concurrent same-page reads through
// a pooled disk, every request resolves as exactly one of {pool hit,
// physical read, coalesced read} — the counter invariant the DiskStats
// surface documents.
func TestCoalescedReadsAccounting(t *testing.T) {
	d := NewDisk(256, DefaultCostModel())
	const pages = 4
	base := d.AllocPages(pages)
	for i := 0; i < pages; i++ {
		if err := d.WritePage(base+PageID(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	d.SetCacheSize(2) // smaller than the working set: misses keep happening
	defer d.SetCacheSize(0)
	d.ResetStats()

	const goroutines = 8
	const iters = 400
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := base + PageID((g+i)%pages)
				p, err := d.ReadPage(id, ClassLight)
				if err != nil || p[0] != byte((g+i)%pages) {
					failures.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatal("concurrent reads failed or returned wrong data")
	}
	st := d.Stats()
	total := int64(goroutines * iters)
	if got := st.LightReads + st.CoalescedReads + st.PoolLightHits; got != total {
		t.Fatalf("LightReads %d + CoalescedReads %d + PoolLightHits %d = %d, want %d requests",
			st.LightReads, st.CoalescedReads, st.PoolLightHits, got, total)
	}
	if st.LightReads == 0 {
		t.Fatal("no physical reads at all")
	}
}

// TestCoalescedReadsSequentialZero: without concurrency there is nothing
// to coalesce — the counter must stay at zero, and single-threaded
// costs are unchanged by the singleflight layer.
func TestCoalescedReadsSequentialZero(t *testing.T) {
	d := newTestDisk()
	base := d.AllocPages(4)
	d.SetCacheSize(2)
	defer d.SetCacheSize(0)
	d.ResetStats()
	for i := 0; i < 40; i++ {
		if _, err := d.ReadPage(base+PageID(i%4), ClassLight); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.CoalescedReads != 0 {
		t.Fatalf("sequential reads coalesced: %d", st.CoalescedReads)
	}
	if st.LightReads+st.PoolLightHits != 40 {
		t.Fatalf("LightReads %d + PoolLightHits %d != 40", st.LightReads, st.PoolLightHits)
	}
}

// TestCoalescedReadsClientAttribution: a follower's own client is charged
// the coalesced read, not the leader's.
func TestCoalescedReadsClientAttribution(t *testing.T) {
	d := NewDisk(256, DefaultCostModel())
	base := d.AllocPages(1)
	if err := d.WritePage(base, []byte{0x42}); err != nil {
		t.Fatal(err)
	}
	d.SetCacheSize(4)
	defer d.SetCacheSize(0)
	d.ResetStats()

	leader := d.NewClient()
	follower := d.NewClient()
	if _, err := d.readPage(base, ClassLight, leader); err != nil {
		t.Fatal(err)
	}
	if st := leader.Stats(); st.Reads != 1 || st.CoalescedReads != 0 {
		t.Fatalf("leader stats: %+v", st)
	}
	// The page is pooled now; the follower hits the pool, no coalesce.
	if _, err := d.readPage(base, ClassLight, follower); err != nil {
		t.Fatal(err)
	}
	if st := follower.Stats(); st.PoolLightHits != 1 || st.CoalescedReads != 0 {
		t.Fatalf("follower stats: %+v", st)
	}
	// The global ledger agrees with per-client attribution.
	if st := d.Stats(); st.CoalescedReads != 0 || st.LightReads != 1 || st.PoolLightHits != 1 {
		t.Fatalf("disk stats: %+v", st)
	}
}
