package storage

import (
	"errors"
	"testing"
)

// Prefetched-then-read pages must count as prefetch hits, charge the
// prefetcher (not the demand client) for the I/O, and cost the demand
// reader nothing.
func TestPrefetchWarmsPoolAndCountsHits(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(4)
	_ = d.WriteBytes(p, []byte("abcd"))
	d.SetCacheSize(16)

	pf := NewPrefetcher(d, 8)
	defer pf.Close()
	if !pf.Enqueue(func(r Reader) ([]PageID, error) {
		return []PageID{p, p + 1}, nil
	}) {
		t.Fatal("enqueue rejected on empty queue")
	}
	pf.Close() // drain

	if got := pf.Warmed(); got != 2 {
		t.Fatalf("warmed = %d, want 2", got)
	}
	if pf.Stats().Reads != 2 {
		t.Fatalf("prefetcher charged %d reads, want 2", pf.Stats().Reads)
	}

	c := d.NewClient()
	before := d.Stats()
	if _, err := c.ReadPage(p, ClassLight); err != nil {
		t.Fatal(err)
	}
	if delta := d.Stats().Sub(before); delta.Reads != 0 || delta.SimTime != 0 {
		t.Fatalf("demand read of prefetched page charged I/O: %+v", delta)
	}
	if hits := d.Stats().PrefetchHits; hits != 1 {
		t.Fatalf("PrefetchHits = %d, want 1", hits)
	}
	// The second demand read of the same page is an ordinary pool hit —
	// the prefetched mark is consumed exactly once.
	_, _ = c.ReadPage(p, ClassLight)
	if hits := d.Stats().PrefetchHits; hits != 1 {
		t.Fatalf("PrefetchHits after re-read = %d, want 1", hits)
	}
}

// Prefetched pages evicted before any demand read count as wasted.
func TestPrefetchWastedOnEviction(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(8)
	d.SetCacheSize(2)

	pf := NewPrefetcher(d, 8)
	pf.Enqueue(func(r Reader) ([]PageID, error) { return []PageID{p}, nil })
	pf.Close()

	// Flood the tiny pool so the prefetched frame is evicted untouched.
	for i := int64(1); i < 8; i++ {
		_, _ = d.ReadPage(p+PageID(i), ClassLight)
	}
	s := d.Stats()
	if s.PrefetchWasted != 1 {
		t.Fatalf("PrefetchWasted = %d, want 1 (stats: hits=%d)", s.PrefetchWasted, s.PrefetchHits)
	}
	if s.PrefetchHits != 0 {
		t.Fatalf("PrefetchHits = %d, want 0", s.PrefetchHits)
	}
}

// A full queue sheds jobs instead of blocking the caller, and Close is
// idempotent with Enqueue refused afterwards.
func TestPrefetchQueueBoundsAndClose(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(1)

	gate := make(chan struct{})
	started := make(chan struct{})
	pf := NewPrefetcher(d, 1)
	// First job parks the worker so later jobs pile up in the queue.
	pf.Enqueue(func(r Reader) ([]PageID, error) { close(started); <-gate; return nil, nil })
	<-started
	pf.Enqueue(func(r Reader) ([]PageID, error) { return []PageID{p}, nil }) // fills queue
	if pf.Enqueue(func(r Reader) ([]PageID, error) { return []PageID{p}, nil }) {
		t.Fatal("enqueue succeeded on full queue")
	}
	if pf.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", pf.Dropped())
	}
	close(gate)
	pf.Close()
	pf.Close() // idempotent
	if pf.Enqueue(func(r Reader) ([]PageID, error) { return nil, nil }) {
		t.Fatal("enqueue succeeded after Close")
	}
}

// Job errors and quarantined pages are skipped silently; prefetch is
// advisory and must never surface faults.
func TestPrefetchSkipsFaultyPages(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(2)
	d.SetCacheSize(16)
	d.Quarantine(p)

	pf := NewPrefetcher(d, 4)
	pf.Enqueue(func(r Reader) ([]PageID, error) { return nil, errors.New("stale prediction") })
	pf.Enqueue(func(r Reader) ([]PageID, error) { return []PageID{p, p + 1}, nil })
	pf.Close()
	if got := pf.Warmed(); got != 1 {
		t.Fatalf("warmed = %d, want 1 (quarantined page skipped)", got)
	}
}

// Without a buffer pool there is nowhere to warm: prefetch performs no
// I/O at all rather than paying for reads it cannot retain.
func TestPrefetchNoPoolIsNoop(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(1)
	pf := NewPrefetcher(d, 4)
	pf.Enqueue(func(r Reader) ([]PageID, error) { return []PageID{p}, nil })
	pf.Close()
	if pf.Stats().Reads != 0 {
		t.Fatalf("prefetch without pool performed %d reads", pf.Stats().Reads)
	}
}
