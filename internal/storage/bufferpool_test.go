package storage

import (
	"bytes"
	"testing"
)

func TestBufferPoolHitsSkipIO(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(4)
	_ = d.WriteBytes(p, []byte("abcd"))
	d.SetCacheSize(16)

	if _, err := d.ReadPage(p, ClassLight); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	got, err := d.ReadPage(p, ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:4], []byte("abcd")) {
		t.Fatal("cached content wrong")
	}
	if delta := d.Stats().Sub(before); delta.Reads != 0 || delta.SimTime != 0 {
		t.Fatalf("cached read charged I/O: %+v", delta)
	}
	hits, misses := d.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestBufferPoolHeavyNotCached(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(2)
	d.SetCacheSize(16)
	_, _ = d.ReadPage(p, ClassHeavy)
	before := d.Stats()
	_, _ = d.ReadPage(p, ClassHeavy)
	if d.Stats().Sub(before).Reads != 1 {
		t.Fatal("heavy read was cached")
	}
}

func TestBufferPoolLRUEviction(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(5)
	d.SetCacheSize(2)
	_, _ = d.ReadPage(p, ClassLight)   // cache: [0]
	_, _ = d.ReadPage(p+1, ClassLight) // cache: [1 0]
	_, _ = d.ReadPage(p, ClassLight)   // hit: [0 1]
	_, _ = d.ReadPage(p+2, ClassLight) // evicts 1: [2 0]
	before := d.Stats()
	_, _ = d.ReadPage(p, ClassLight) // still cached
	if d.Stats().Sub(before).Reads != 0 {
		t.Fatal("page 0 evicted prematurely")
	}
	before = d.Stats()
	_, _ = d.ReadPage(p+1, ClassLight) // was evicted
	if d.Stats().Sub(before).Reads != 1 {
		t.Fatal("page 1 should have been evicted")
	}
}

func TestBufferPoolWriteInvalidates(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(1)
	_ = d.WritePage(p, []byte("old"))
	d.SetCacheSize(4)
	_, _ = d.ReadPage(p, ClassLight) // cache "old"
	if err := d.WritePage(p, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadPage(p, ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:3], []byte("new")) {
		t.Fatalf("stale cache: %q", got[:3])
	}
}

func TestBufferPoolReadBytesPath(t *testing.T) {
	d := newTestDisk()
	data := make([]byte, 700)
	for i := range data {
		data[i] = byte(i)
	}
	start := d.AllocPages(d.PagesFor(int64(len(data))))
	_ = d.WriteBytes(start, data)
	d.SetCacheSize(8)
	got, err := d.ReadBytes(start, len(data), ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("first multi-page read wrong")
	}
	before := d.Stats()
	got, err = d.ReadBytes(start, len(data), ClassLight)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("cached multi-page read wrong")
	}
	if d.Stats().Sub(before).Reads != 0 {
		t.Fatal("cached multi-page read charged I/O")
	}
}

func TestBufferPoolDisable(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(1)
	d.SetCacheSize(4)
	_, _ = d.ReadPage(p, ClassLight)
	d.SetCacheSize(0)
	if h, m := d.CacheStats(); h != 0 || m != 0 {
		t.Fatal("disabled pool reports stats")
	}
	before := d.Stats()
	_, _ = d.ReadPage(p, ClassLight)
	if d.Stats().Sub(before).Reads != 1 {
		t.Fatal("disabled pool still caching")
	}
}

func TestBufferPoolCorruptPropagates(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(1)
	d.SetCacheSize(4)
	d.CorruptPage(p)
	if _, err := d.ReadPage(p, ClassLight); err == nil {
		t.Fatal("corrupt page cached/read")
	}
	d.HealPage(p)
	if _, err := d.ReadPage(p, ClassLight); err != nil {
		t.Fatal("healed read failed")
	}
}
