package storage

import (
	"bytes"
	"sync"
	"testing"
)

func TestBufferPoolHitsSkipIO(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(4)
	_ = d.WriteBytes(p, []byte("abcd"))
	d.SetCacheSize(16)

	if _, err := d.ReadPage(p, ClassLight); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	got, err := d.ReadPage(p, ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:4], []byte("abcd")) {
		t.Fatal("cached content wrong")
	}
	if delta := d.Stats().Sub(before); delta.Reads != 0 || delta.SimTime != 0 {
		t.Fatalf("cached read charged I/O: %+v", delta)
	}
	hits, misses := d.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestBufferPoolHeavyNotCached(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(2)
	d.SetCacheSize(16)
	_, _ = d.ReadPage(p, ClassHeavy)
	before := d.Stats()
	_, _ = d.ReadPage(p, ClassHeavy)
	if d.Stats().Sub(before).Reads != 1 {
		t.Fatal("heavy read was cached")
	}
}

func TestBufferPoolLRUEviction(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(5)
	d.SetCacheSize(2)
	_, _ = d.ReadPage(p, ClassLight)   // cache: [0]
	_, _ = d.ReadPage(p+1, ClassLight) // cache: [1 0]
	_, _ = d.ReadPage(p, ClassLight)   // hit: [0 1]
	_, _ = d.ReadPage(p+2, ClassLight) // evicts 1: [2 0]
	before := d.Stats()
	_, _ = d.ReadPage(p, ClassLight) // still cached
	if d.Stats().Sub(before).Reads != 0 {
		t.Fatal("page 0 evicted prematurely")
	}
	before = d.Stats()
	_, _ = d.ReadPage(p+1, ClassLight) // was evicted
	if d.Stats().Sub(before).Reads != 1 {
		t.Fatal("page 1 should have been evicted")
	}
}

func TestBufferPoolWriteInvalidates(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(1)
	_ = d.WritePage(p, []byte("old"))
	d.SetCacheSize(4)
	_, _ = d.ReadPage(p, ClassLight) // cache "old"
	if err := d.WritePage(p, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadPage(p, ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:3], []byte("new")) {
		t.Fatalf("stale cache: %q", got[:3])
	}
}

func TestBufferPoolReadBytesPath(t *testing.T) {
	d := newTestDisk()
	data := make([]byte, 700)
	for i := range data {
		data[i] = byte(i)
	}
	start := d.AllocPages(d.PagesFor(int64(len(data))))
	_ = d.WriteBytes(start, data)
	d.SetCacheSize(8)
	got, err := d.ReadBytes(start, len(data), ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("first multi-page read wrong")
	}
	before := d.Stats()
	got, err = d.ReadBytes(start, len(data), ClassLight)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("cached multi-page read wrong")
	}
	if d.Stats().Sub(before).Reads != 0 {
		t.Fatal("cached multi-page read charged I/O")
	}
}

func TestBufferPoolDisable(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(1)
	d.SetCacheSize(4)
	_, _ = d.ReadPage(p, ClassLight)
	d.SetCacheSize(0)
	if h, m := d.CacheStats(); h != 0 || m != 0 {
		t.Fatal("disabled pool reports stats")
	}
	before := d.Stats()
	_, _ = d.ReadPage(p, ClassLight)
	if d.Stats().Sub(before).Reads != 1 {
		t.Fatal("disabled pool still caching")
	}
}

func TestBufferPoolCorruptPropagates(t *testing.T) {
	d := newTestDisk()
	p := d.AllocPages(1)
	d.SetCacheSize(4)
	d.CorruptPage(p)
	if _, err := d.ReadPage(p, ClassLight); err == nil {
		t.Fatal("corrupt page cached/read")
	}
	d.HealPage(p)
	if _, err := d.ReadPage(p, ClassLight); err != nil {
		t.Fatal("healed read failed")
	}
}

// TestPinnedPageDoubleRelease is the regression test for the idempotent
// Release contract: a second (even concurrent) Release must not decrement
// the frame's pin count again, or the pool could evict a frame another
// pin holder still depends on.
func TestPinnedPageDoubleRelease(t *testing.T) {
	d := newTestDisk()
	id := d.AllocPages(1)
	_ = d.WriteBytes(id, []byte("pinned"))
	d.SetCacheSize(8)

	// Two independent pins on the same page: pin count 2.
	p1, err := d.PinPage(id, ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.PinPage(id, ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.PoolStats().Pinned; got != 1 {
		t.Fatalf("pinned frames = %d, want 1", got)
	}

	// Hammer Release on p1 from many goroutines: exactly one decrement.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p1.Release()
		}()
	}
	wg.Wait()
	p1.Release() // and a late sequential double-release for good measure

	// p2's pin must still hold the frame.
	if got := d.PoolStats().Pinned; got != 1 {
		t.Fatalf("after releasing p1 %d times, pinned frames = %d, want 1 (p2 still holds)", 17, got)
	}
	p2.Release()
	if got := d.PoolStats().Pinned; got != 0 {
		t.Fatalf("after releasing both pins, pinned frames = %d, want 0", got)
	}

	// A released frame must be evictable again: fill the pool past
	// capacity and check the page can be evicted (no stuck pin).
	for i := 0; i < 16; i++ {
		pg := d.AllocPages(1)
		if _, err := d.ReadPage(pg, ClassLight); err != nil {
			t.Fatal(err)
		}
	}
	if ev := d.PoolStats().Evictions; ev == 0 {
		t.Fatalf("expected evictions after over-filling an unpinned pool, got 0")
	}
}

// TestPinnedPageNilRelease: Release on a nil pin is a documented no-op.
func TestPinnedPageNilRelease(t *testing.T) {
	var p *PinnedPage
	p.Release()
}
