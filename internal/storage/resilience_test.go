package storage

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// --- retry accounting boundaries ---

// TestRetryAccountingPermanent: a permanent fault charges exactly
// MaxRetries retries (with non-positive values coerced to the default 3)
// before surfacing CorruptError.
func TestRetryAccountingPermanent(t *testing.T) {
	for _, tc := range []struct {
		maxRetries  int
		wantRetries int64
	}{
		{0, 3}, // coerced to the default
		{1, 1},
		{3, 3},
	} {
		d, start := faultDisk(t, 8)
		d.InjectFaults(FaultConfig{MaxRetries: tc.maxRetries})
		d.InjectPageFault(start, FaultPermanent, 0)
		before := d.Stats()
		if _, err := d.ReadPage(start, ClassLight); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("MaxRetries=%d: err = %v, want ErrCorrupt", tc.maxRetries, err)
		}
		if got := d.Stats().Retries - before.Retries; got != tc.wantRetries {
			t.Errorf("MaxRetries=%d: retries = %d, want %d", tc.maxRetries, got, tc.wantRetries)
		}
	}
}

// TestRetryAccountingTransient: a transient fault that clears within the
// budget charges exactly as many retries as it failed attempts, and the
// read succeeds.
func TestRetryAccountingTransient(t *testing.T) {
	for _, tc := range []struct {
		maxRetries  int
		planted     int
		wantRetries int64
		wantOK      bool
	}{
		{0, 3, 3, true},  // coerced default budget of 3 just covers it
		{1, 1, 1, true},  // one failure, one retry
		{1, 2, 1, false}, // budget exhausted before the fault wears out
		{3, 2, 2, true},
	} {
		d, start := faultDisk(t, 8)
		d.InjectFaults(FaultConfig{MaxRetries: tc.maxRetries})
		d.InjectPageFault(start, FaultTransient, tc.planted)
		before := d.Stats()
		_, err := d.ReadPage(start, ClassLight)
		if (err == nil) != tc.wantOK {
			t.Fatalf("MaxRetries=%d planted=%d: err = %v, want ok=%v",
				tc.maxRetries, tc.planted, err, tc.wantOK)
		}
		if got := d.Stats().Retries - before.Retries; got != tc.wantRetries {
			t.Errorf("MaxRetries=%d planted=%d: retries = %d, want %d",
				tc.maxRetries, tc.planted, got, tc.wantRetries)
		}
	}
}

// --- deadline-aware reads ---

// TestExpiredContextFailsFast: a read through a client whose bound
// context is already done fails with the context's error before paying
// any cost — no seek, no transfer, no retries, no fault draw.
func TestExpiredContextFailsFast(t *testing.T) {
	d, start := faultDisk(t, 8)
	// Faults armed: a fail-fast read must not even draw from the injector.
	d.InjectFaults(FaultConfig{Seed: 3, PageProb: 1, TransientFrac: 1})
	c := d.NewClient()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c.BindContext(ctx)

	before := d.Stats()
	if _, err := c.ReadPage(start, ClassLight); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadPage err = %v, want context.Canceled", err)
	}
	if err := c.ReadExtent(start, 4, ClassHeavy); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadExtent err = %v, want context.Canceled", err)
	}
	if _, err := c.ReadBytes(start, 100, ClassLight); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadBytes err = %v, want context.Canceled", err)
	}
	if got := d.Stats(); got != before {
		t.Fatalf("fail-fast reads charged cost: %+v vs %+v", got, before)
	}

	// Unbinding (nil) restores unbounded reads.
	c.BindContext(nil)
	if _, err := c.ReadPage(start, ClassLight); err != nil {
		t.Fatalf("unbound read failed: %v", err)
	}
}

// TestDeadlineExpiresMidRetryLadder: a context that expires while a read
// is retrying aborts the ladder at the next attempt instead of burning
// the rest of the budget. An already-expired deadline (the boundary
// case) charges zero retries and zero backoff time.
func TestDeadlineExpiresMidRetryLadder(t *testing.T) {
	d, start := faultDisk(t, 8)
	d.InjectFaults(FaultConfig{MaxRetries: 3})
	d.InjectPageFault(start, FaultTransient, 3)
	c := d.NewClient()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c.BindContext(ctx)

	before := d.Stats()
	_, err := c.ReadPage(start, ClassLight)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	d2 := d.Stats().Sub(before)
	if d2.Retries != 0 {
		t.Fatalf("expired-deadline read charged %d retries, want 0", d2.Retries)
	}
	if d2.SimTime != 0 {
		t.Fatalf("expired-deadline read charged %v simulated backoff, want 0", d2.SimTime)
	}
	// The planted fault is untouched: a fresh unbounded client still sees
	// all three failures (and absorbs them within the default budget).
	c2 := d.NewClient()
	before = d.Stats()
	if _, err := c2.ReadPage(start, ClassLight); err != nil {
		t.Fatalf("follow-up read failed: %v", err)
	}
	if got := d.Stats().Retries - before.Retries; got != 3 {
		t.Fatalf("follow-up retries = %d, want 3 (fail-fast read must not consume the fault)", got)
	}
}

// --- retry jitter ---

// TestRetryJitterCostOnly: enabling Jitter never changes which reads
// draw faults or how many retries fire — only the simulated backoff
// grows. The fault stream and the jitter stream are separate rngs.
func TestRetryJitterCostOnly(t *testing.T) {
	run := func(jitter bool) ([]bool, int64, time.Duration) {
		d, start := faultDisk(t, 64)
		d.InjectFaults(FaultConfig{Seed: 11, PageProb: 0.5, TransientFrac: 1, Jitter: jitter})
		outcomes := make([]bool, 64)
		for i := range outcomes {
			_, err := d.ReadPage(start+PageID(i), ClassLight)
			outcomes[i] = err == nil
		}
		s := d.Stats()
		return outcomes, s.Retries, s.SimTime
	}
	plain, pr, pt := run(false)
	jit, jr, jt := run(true)
	for i := range plain {
		if plain[i] != jit[i] {
			t.Fatalf("page %d: fault outcome changed by jitter", i)
		}
	}
	if pr != jr {
		t.Fatalf("retries changed by jitter: %d vs %d", pr, jr)
	}
	if pr == 0 {
		t.Fatal("workload drew no retries; jitter not exercised")
	}
	if jt <= pt {
		t.Fatalf("jittered sim time %v not greater than plain %v", jt, pt)
	}
}

// --- circuit breaker ---

// TestBreakerTripAndCooldown walks the full region state machine:
// consecutive permanent faults trip the region, tripped reads fail fast
// with zero cost, the counted cooldown admits a half-open probe, and a
// successful probe closes the region.
func TestBreakerTripAndCooldown(t *testing.T) {
	d, start := faultDisk(t, 16)
	d.SetBreaker(BreakerConfig{RegionPages: 16, Threshold: 3, Cooldown: 4})
	for i := 0; i < 3; i++ {
		d.InjectPageFault(start+PageID(i), FaultPermanent, 0)
		if _, err := d.ReadPage(start+PageID(i), ClassLight); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("faulted read %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	if s := d.BreakerStats(); s.Trips != 1 || s.OpenRegions != 1 {
		t.Fatalf("after threshold faults: %+v, want 1 trip / 1 open region", s)
	}

	// A healthy page in the tripped region fails fast: breaker-tagged,
	// degradable, and free.
	before := d.Stats()
	var ce *CorruptError
	if _, err := d.ReadPage(start+10, ClassLight); !errors.As(err, &ce) || !ce.Tripped {
		t.Fatalf("tripped-region read: err = %v, want breaker CorruptError", err)
	}
	if got := d.Stats(); got != before {
		t.Fatalf("tripped read charged cost: %+v vs %+v", got, before)
	}

	// Two more rejections exhaust the cooldown of 4; the next read is the
	// half-open probe, succeeds on healthy media, and closes the region.
	for i := 0; i < 2; i++ {
		if _, err := d.ReadPage(start+10, ClassLight); !errors.As(err, &ce) || !ce.Tripped {
			t.Fatalf("cooldown read %d: err = %v, want breaker CorruptError", i, err)
		}
	}
	if _, err := d.ReadPage(start+10, ClassLight); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	s := d.BreakerStats()
	if s.Probes != 1 || s.Rejections != 3 || s.OpenRegions != 0 {
		t.Fatalf("after probe: %+v, want 1 probe / 3 rejections / 0 open", s)
	}
	if _, err := d.ReadPage(start+11, ClassLight); err != nil {
		t.Fatalf("closed-region read failed: %v", err)
	}
}

// TestBreakerProbeFailureReopens: a failing half-open probe re-opens the
// region and restarts the cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	d, start := faultDisk(t, 16)
	d.SetBreaker(BreakerConfig{RegionPages: 16, Threshold: 2, Cooldown: 2})
	for i := 0; i < 2; i++ {
		d.InjectPageFault(start+PageID(i), FaultPermanent, 0)
		if _, err := d.ReadPage(start+PageID(i), ClassLight); err == nil {
			t.Fatal("faulted read succeeded")
		}
	}
	d.InjectPageFault(start+5, FaultPermanent, 0)
	var ce *CorruptError
	// One rejection, then the probe — which hits the faulted page 5 and
	// fails, re-opening the region.
	if _, err := d.ReadPage(start+5, ClassLight); !errors.As(err, &ce) || !ce.Tripped {
		t.Fatalf("rejection read: err = %v, want breaker CorruptError", err)
	}
	if _, err := d.ReadPage(start+5, ClassLight); !errors.Is(err, ErrCorrupt) {
		t.Fatal("probe read did not reach media")
	}
	s := d.BreakerStats()
	if s.Trips != 1 || s.Probes != 1 || s.OpenRegions != 1 {
		t.Fatalf("after failed probe: %+v, want region re-opened", s)
	}
}

// TestBreakerHealsOnWrite: a successful WritePage into a tripped region
// clears it outright — the rewrite remapped the damaged sectors.
func TestBreakerHealsOnWrite(t *testing.T) {
	d, start := faultDisk(t, 16)
	d.SetBreaker(BreakerConfig{RegionPages: 16, Threshold: 1, Cooldown: 100})
	d.InjectPageFault(start, FaultPermanent, 0)
	if _, err := d.ReadPage(start, ClassLight); err == nil {
		t.Fatal("faulted read succeeded")
	}
	if s := d.BreakerStats(); s.OpenRegions != 1 {
		t.Fatalf("region not tripped: %+v", s)
	}
	if err := d.WritePage(start, make([]byte, d.PageSize())); err != nil {
		t.Fatal(err)
	}
	if s := d.BreakerStats(); s.OpenRegions != 0 {
		t.Fatalf("write did not heal the region: %+v", s)
	}
	if _, err := d.ReadPage(start+3, ClassLight); err != nil {
		t.Fatalf("healed-region read failed: %v", err)
	}
}

// TestBreakerRemoval: the zero config removes the breaker and reads in a
// previously tripped region flow again.
func TestBreakerRemoval(t *testing.T) {
	d, start := faultDisk(t, 16)
	d.SetBreaker(BreakerConfig{RegionPages: 16, Threshold: 1, Cooldown: 100})
	d.InjectPageFault(start, FaultPermanent, 0)
	if _, err := d.ReadPage(start, ClassLight); err == nil {
		t.Fatal("faulted read succeeded")
	}
	d.SetBreaker(BreakerConfig{})
	if _, err := d.ReadPage(start+1, ClassLight); err != nil {
		t.Fatalf("read after breaker removal failed: %v", err)
	}
	if s := d.BreakerStats(); s != (BreakerStats{}) {
		t.Fatalf("removed breaker still reports state: %+v", s)
	}
}

// --- prefetcher under faults and cancellation ---

// TestPrefetchFaultsNeverSurface: seeded transient and permanent faults
// on prefetched pages never become query-visible errors — warming just
// skips the bad pages, and only the counters record the difference.
func TestPrefetchFaultsNeverSurface(t *testing.T) {
	d, start := faultDisk(t, 64)
	d.SetCacheSize(256)
	d.InjectFaults(FaultConfig{Seed: 9, PageProb: 0.5, TransientFrac: 0.5})
	p := NewPrefetcher(d, 32)
	defer p.Close()

	for i := 0; i < 64; i += 8 {
		base := start + PageID(i)
		p.Enqueue(func(r Reader) ([]PageID, error) {
			ids := make([]PageID, 8)
			for j := range ids {
				ids[j] = base + PageID(j)
			}
			return ids, nil
		})
	}
	p.Quiesce()
	if p.Warmed() == 0 {
		t.Fatal("no pages warmed despite mostly-readable media")
	}
	// Every page the prefetcher warmed — or skipped — must still be
	// readable or fail only on its own (sticky permanent) fault; the
	// demand path decides, the prefetcher stays silent either way.
	var demandErrs int
	for i := 0; i < 64; i++ {
		if _, err := d.ReadPage(start+PageID(i), ClassLight); err != nil {
			demandErrs++
		}
	}
	if demandErrs == 0 {
		t.Log("all demand reads clean (permanent faults already absorbed by retries)")
	}
}

// TestPrefetchCancelPending: canceling invalidates queued jobs — they
// are discarded and counted, never resolved — while Quiesce still
// returns because stale entries complete for its accounting.
func TestPrefetchCancelPending(t *testing.T) {
	d, start := faultDisk(t, 16)
	d.SetCacheSize(64)
	p := NewPrefetcher(d, 64)
	defer p.Close()

	var resolved sync.Map
	block := make(chan struct{})
	entered := make(chan struct{})
	// First job parks the worker so everything behind it stays queued —
	// and signals once it is actually running, so the cancellation below
	// is guaranteed to hit only the 16 queued jobs.
	p.Enqueue(func(r Reader) ([]PageID, error) {
		close(entered)
		<-block
		return nil, nil
	})
	<-entered
	for i := 0; i < 16; i++ {
		i := i
		p.Enqueue(func(r Reader) ([]PageID, error) {
			resolved.Store(i, true)
			return []PageID{start + PageID(i)}, nil
		})
	}
	p.CancelPending()
	close(block)
	p.Quiesce()

	if got := p.Canceled(); got != 16 {
		t.Fatalf("Canceled = %d, want 16", got)
	}
	resolved.Range(func(k, v any) bool {
		t.Errorf("canceled job %v still resolved", k)
		return true
	})

	// Jobs enqueued after the cancellation run normally.
	p.Enqueue(func(r Reader) ([]PageID, error) {
		return []PageID{start}, nil
	})
	p.Quiesce()
	if p.Warmed() == 0 {
		t.Fatal("post-cancel job did not warm its page")
	}
}

// TestPrefetchFaultsRacingQuiesce: faults firing on the worker while
// Quiesce waits must neither deadlock the barrier nor surface anywhere.
// Run with -race.
func TestPrefetchFaultsRacingQuiesce(t *testing.T) {
	d, start := faultDisk(t, 64)
	d.SetCacheSize(32)
	d.InjectFaults(FaultConfig{Seed: 21, PageProb: 0.3, TransientFrac: 0.3})
	p := NewPrefetcher(d, 8)
	defer p.Close()

	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				id := start + PageID((round*8+i)%64)
				p.Enqueue(func(r Reader) ([]PageID, error) {
					return []PageID{id}, nil
				})
			}
			if round%2 == 0 {
				p.CancelPending()
			}
			p.Quiesce()
		}(round)
	}
	wg.Wait()
}

// --- snapshot consistency (the PR's bugfix regression test) ---

// TestStatsSnapshotConsistency: Stats() is one critical section, so a
// snapshot taken mid-run can never show more physical or coalesced reads
// than pool misses — each light read is counted a miss before it goes to
// media or joins a flight. Before the fix, pool counters lived behind a
// separate lock and concurrent snapshots could see LightReads ahead of
// PoolLightMisses. Run with -race.
func TestStatsSnapshotConsistency(t *testing.T) {
	d, start := faultDisk(t, 256)
	d.SetCacheSize(32) // far smaller than the working set: constant misses

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := d.NewClient()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.ReadPage(start+PageID((w*37+i)%256), ClassLight); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(w)
	}
	// Snapshot until the workers have racked up real traffic — a fixed
	// iteration count can finish before the goroutines are even scheduled.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := d.Stats()
		if s.LightReads+s.CoalescedReads > s.PoolLightMisses {
			close(stop)
			wg.Wait()
			t.Fatalf("torn snapshot: LightReads %d + CoalescedReads %d > PoolLightMisses %d",
				s.LightReads, s.CoalescedReads, s.PoolLightMisses)
		}
		if s.PoolLightMisses >= 2000 || time.Now().After(deadline) {
			break
		}
	}
	close(stop)
	wg.Wait()
	s := d.Stats()
	if s.PoolLightMisses == 0 || s.LightReads == 0 {
		t.Fatalf("workload never missed the pool: %+v", s)
	}
}
