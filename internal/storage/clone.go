package storage

// Clone support for cell-range sharding (DESIGN.md §16): a shard store is
// an independent Disk with the same page-level content and layout as the
// source, so a tree/scheme reopened over it answers byte-identically to
// the original, while seeks, transfers, stats, the buffer pool and fault
// state are all private to the clone — one disk arm per shard.

// Clone returns an independent disk with the same page size, cost model,
// allocation watermark, page contents, and corruption/quarantine marks as
// d, and entirely fresh dynamics: zeroed stats, parked stream heads, no
// buffer pool, no fault injector, no circuit breaker.
//
// Page data slices are shared, not copied: WritePage always installs a
// freshly allocated slice (it never mutates one in place), and readers
// never write through returned slices, so sharing is safe and a clone of
// a multi-gigabyte simulated database costs only the page map. Writes to
// either disk after the clone are invisible to the other — the writer
// replaces its own map entry.
func (d *Disk) Clone() *Disk {
	c := &Disk{
		cost:     d.cost,
		inflight: flight{calls: make(map[PageID]*flightCall)},
	}
	for i := range c.streams {
		c.streams[i] = -2
	}
	d.mu.RLock()
	c.pageSize = d.pageSize
	c.allocated = d.allocated
	c.data = make(map[PageID][]byte, len(d.data))
	for id, p := range d.data {
		c.data[id] = p
	}
	c.corrupt = make(map[PageID]bool, len(d.corrupt))
	for id := range d.corrupt {
		c.corrupt[id] = true
	}
	c.quarantined = make(map[PageID]bool, len(d.quarantined))
	for id := range d.quarantined {
		c.quarantined[id] = true
	}
	d.mu.RUnlock()
	return c
}

// ReleasePages drops the materialized content of the given pages,
// returning how many held data. The pages stay allocated — they read back
// zero-filled, like extents that were never written — so the disk's
// layout and cost accounting are unchanged; only ResidentBytes shrinks.
// Shard stores use this to trim V-pages owned by other shards.
func (d *Disk) ReleasePages(ids []PageID) int {
	n := 0
	d.mu.Lock()
	for _, id := range ids {
		if _, ok := d.data[id]; ok {
			delete(d.data, id)
			n++
		}
	}
	d.mu.Unlock()
	return n
}
