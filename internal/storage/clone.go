package storage

// Clone support for cell-range sharding (DESIGN.md §16): a shard store is
// an independent Disk with the same page-level content and layout as the
// source, so a tree/scheme reopened over it answers byte-identically to
// the original, while seeks, transfers, stats, the buffer pool and fault
// state are all private to the clone — one disk arm per shard.

// Clone returns an independent disk with the same page size, cost model,
// allocation watermark, page contents, and corruption/quarantine marks as
// d, and entirely fresh dynamics: zeroed stats, parked stream heads, no
// buffer pool, no fault injector, no circuit breaker.
//
// The media is cloned through the backend: the in-memory backend shares
// page slices zero-copy (WritePage always installs a freshly allocated
// slice, never mutates one in place), so a clone of a multi-gigabyte
// simulated database costs only the page map; the file backend copies
// its written pages into a sibling file, giving the shard a genuinely
// separate set of OS pages. Either way, writes to one side after the
// clone are invisible to the other.
func (d *Disk) Clone() (*Disk, error) {
	m, err := d.media.Clone()
	if err != nil {
		return nil, err
	}
	c := NewDiskOn(m, d.cost)
	d.mu.RLock()
	c.allocated = d.allocated
	for id := range d.corrupt {
		c.corrupt[id] = true
	}
	for id := range d.quarantined {
		c.quarantined[id] = true
	}
	d.mu.RUnlock()
	return c, nil
}

// ReleasePages drops the materialized content of the given pages,
// returning how many held data. The pages stay allocated — they read back
// zero-filled, like extents that were never written — so the disk's
// layout and cost accounting are unchanged; only ResidentBytes shrinks
// (on the file backend the pages' blocks are punched out of the file).
// Shard stores use this to trim V-pages owned by other shards.
func (d *Disk) ReleasePages(ids []PageID) int {
	return d.media.Release(ids)
}
