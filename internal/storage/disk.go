// Package storage provides the paged-disk substrate under the HDoV-tree's
// storage schemes. It simulates a 2003-era disk with an explicit cost
// model (seek + per-page transfer), counts every page access, and
// classifies I/O as light-weight (tree nodes, V-pages, V-page-index — the
// traffic of Figure 8(b)) or heavy-weight (model payload — included in
// Figure 8(a)).
//
// Pages with written content hold real bytes; extents that were allocated
// but never written read back as zero-filled pages. This keeps the
// simulated database sparse in memory while preserving exact page-level
// layout, so the gigabyte-scale nominal datasets of the paper's Figure 9
// produce the same page counts they would on a real disk (DESIGN.md §3.4).
package storage

import (
	"errors"
	"fmt"
	"time"
)

// PageID addresses a page on the simulated disk. The zero page is valid;
// NilPage is the sentinel "no page" value (the nil V-page pointer of §4.2).
type PageID int64

// NilPage is the null page pointer.
const NilPage PageID = -1

// Class labels an I/O for the paper's light/heavy accounting split.
type Class uint8

const (
	// ClassLight covers index traffic: tree nodes, V-pages, V-page-index
	// segments. Figure 8(b) reports exactly this.
	ClassLight Class = iota
	// ClassHeavy covers model payload (LoD mesh records). Figure 8(a)
	// reports light + heavy.
	ClassHeavy
)

// DefaultPageSize is the disk page size in bytes. 4 KiB matches the
// filesystem pages of the paper's era and is the V-page granularity.
const DefaultPageSize = 4096

// CostModel is the simulated time cost of disk operations. Defaults are
// typical of a 7200 rpm disk circa 2003: ~9 ms average seek+rotation, and
// ~40 MB/s sustained transfer (≈0.1 ms per 4 KiB page).
type CostModel struct {
	Seek         time.Duration // cost of a non-sequential access
	TransferPage time.Duration // cost per page transferred
}

// DefaultCostModel returns the 2003-era disk parameters used by all
// experiments unless overridden.
func DefaultCostModel() CostModel {
	return CostModel{
		Seek:         9 * time.Millisecond,
		TransferPage: 100 * time.Microsecond,
	}
}

// Stats is the I/O accounting snapshot of a Disk.
type Stats struct {
	Reads      int64 // total pages read
	Writes     int64 // total pages written
	Seeks      int64 // non-sequential repositionings
	LightReads int64 // pages read with ClassLight
	HeavyReads int64 // pages read with ClassHeavy
	// Retries counts re-read attempts issued for faulted pages while a
	// fault-injection policy is installed (see InjectFaults). Retries are
	// not added to Reads so the paper's I/O figures stay comparable; their
	// time cost is charged to SimTime.
	Retries int64
	SimTime time.Duration
}

// Sub returns s - o, for measuring a window of activity.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:      s.Reads - o.Reads,
		Writes:     s.Writes - o.Writes,
		Seeks:      s.Seeks - o.Seeks,
		LightReads: s.LightReads - o.LightReads,
		HeavyReads: s.HeavyReads - o.HeavyReads,
		Retries:    s.Retries - o.Retries,
		SimTime:    s.SimTime - o.SimTime,
	}
}

// numStreams is how many concurrent sequential read streams the disk
// model recognizes. A real OS issues readahead per open file, so a query
// that interleaves node-record reads with V-page reads still enjoys
// sequential transfer within each file; modeling a handful of stream heads
// reproduces that without a full file abstraction.
const numStreams = 8

// Disk is a simulated paged disk. It is not safe for concurrent use; the
// walkthrough engine owns one disk per session.
type Disk struct {
	pageSize  int
	allocated PageID // next free page
	data      map[PageID][]byte
	corrupt   map[PageID]bool
	// quarantined pages fail immediately with no seek or retry cost —
	// callers that detected damage park the page here so repeated frames
	// stop re-seeking it (see Quarantine).
	quarantined map[PageID]bool
	// faults is the optional deterministic fault injector (InjectFaults).
	faults *faultInjector
	cost   CostModel
	stats  Stats
	// streams holds the positions of recent sequential runs (see
	// numStreams); streamAge implements LRU replacement.
	streams   [numStreams]PageID
	streamAge [numStreams]int64
	clock     int64
	// pool is the optional light-page buffer pool (see SetCacheSize).
	pool *bufferPool
}

// NewDisk creates an empty disk with the given page size (DefaultPageSize
// if non-positive) and cost model.
func NewDisk(pageSize int, cost CostModel) *Disk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	d := &Disk{
		pageSize:    pageSize,
		data:        make(map[PageID][]byte),
		corrupt:     make(map[PageID]bool),
		quarantined: make(map[PageID]bool),
		cost:        cost,
	}
	// All stream heads start parked: the first access is always a seek.
	for i := range d.streams {
		d.streams[i] = -2
	}
	return d
}

// PageSize returns the page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// NumPages returns the number of allocated pages.
func (d *Disk) NumPages() int64 { return int64(d.allocated) }

// SizeBytes returns the allocated size of the disk in bytes — the quantity
// Table 2 reports per storage scheme.
func (d *Disk) SizeBytes() int64 { return int64(d.allocated) * int64(d.pageSize) }

// ResidentBytes returns the bytes actually materialized in memory
// (written, non-sparse pages); always ≤ SizeBytes.
func (d *Disk) ResidentBytes() int64 { return int64(len(d.data)) * int64(d.pageSize) }

// Stats returns the accounting snapshot.
func (d *Disk) Stats() Stats { return d.stats }

// ResetStats zeroes the counters (the head position is kept).
func (d *Disk) ResetStats() { d.stats = Stats{} }

// AllocPages reserves n contiguous pages and returns the first PageID.
func (d *Disk) AllocPages(n int) PageID {
	if n < 1 {
		n = 1
	}
	start := d.allocated
	d.allocated += PageID(n)
	return start
}

// PagesFor returns how many pages are needed for n bytes.
func (d *Disk) PagesFor(n int64) int {
	if n <= 0 {
		return 1
	}
	return int((n + int64(d.pageSize) - 1) / int64(d.pageSize))
}

// errOutOfRange is wrapped into range errors for errors.Is checks.
var errOutOfRange = errors.New("page out of range")

// ErrCorrupt is returned when a read hits a page marked corrupt by the
// failure-injection hook.
var ErrCorrupt = errors.New("storage: corrupt page")

// CorruptError is the concrete error for an unreadable page. It wraps
// ErrCorrupt (errors.Is keeps working) and carries the failing PageID so
// recovery code can quarantine exactly the damaged page.
type CorruptError struct {
	Page PageID
	// Quarantined is true when the read failed fast on a quarantined page
	// rather than on fresh media damage.
	Quarantined bool
}

func (e *CorruptError) Error() string {
	if e.Quarantined {
		return fmt.Sprintf("storage: corrupt page: page %d (quarantined)", e.Page)
	}
	return fmt.Sprintf("storage: corrupt page: page %d", e.Page)
}

// Unwrap lets errors.Is(err, ErrCorrupt) see through the structured error.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// Quarantine parks a page: subsequent reads fail immediately with a
// CorruptError, charging no seek, transfer, or retry cost. Recovery code
// quarantines pages it has seen fail so repeated frames stop re-seeking
// damaged media. A successful WritePage lifts the quarantine (the sector
// was remapped by the rewrite).
func (d *Disk) Quarantine(id PageID) {
	if id >= 0 && id < d.allocated {
		d.quarantined[id] = true
	}
}

// IsQuarantined reports whether a page is parked.
func (d *Disk) IsQuarantined(id PageID) bool { return d.quarantined[id] }

// NumQuarantined returns how many pages are parked.
func (d *Disk) NumQuarantined() int { return len(d.quarantined) }

// ClearQuarantine lifts every quarantine mark (tests and repair tools).
func (d *Disk) ClearQuarantine() { d.quarantined = make(map[PageID]bool) }

// mediaErr simulates the outcome of physically reading page id: nil on
// success, a CorruptError on an unreadable sector. With a fault injector
// installed it also draws injected faults and performs bounded
// retry-with-backoff (transient faults are absorbed, with retries counted
// in Stats); without one it only honors explicit CorruptPage marks,
// exactly the pre-injection behavior.
func (d *Disk) mediaErr(id PageID) error {
	if d.faults != nil {
		return d.faults.check(d, id)
	}
	if d.corrupt[id] {
		return &CorruptError{Page: id}
	}
	return nil
}

// WritePage stores data (at most one page) at id. Write cost is charged as
// one page transfer; experiments only measure reads, matching the paper's
// read-only query workload. A successful write clears any corruption or
// quarantine mark on the page — rewriting a bad sector remaps it, which is
// what repair paths rely on.
func (d *Disk) WritePage(id PageID, data []byte) error {
	if id < 0 || id >= d.allocated {
		return fmt.Errorf("storage: write page %d: %w", id, errOutOfRange)
	}
	if len(data) > d.pageSize {
		return fmt.Errorf("storage: write of %d bytes exceeds page size %d", len(data), d.pageSize)
	}
	page := make([]byte, d.pageSize)
	copy(page, data)
	d.data[id] = page
	d.stats.Writes++
	delete(d.corrupt, id)
	delete(d.quarantined, id)
	if d.faults != nil {
		d.faults.heal(id)
	}
	if d.pool != nil {
		d.pool.invalidate(id)
	}
	return nil
}

// ReadPage returns the content of page id, charging one page I/O of the
// given class. Never-written pages read back zero-filled. Light-class
// reads served by the buffer pool (SetCacheSize) cost nothing.
func (d *Disk) ReadPage(id PageID, class Class) ([]byte, error) {
	if id < 0 || id >= d.allocated {
		return nil, fmt.Errorf("storage: read page %d: %w", id, errOutOfRange)
	}
	if d.pool != nil && class == ClassLight {
		if p, ok := d.pool.get(id); ok {
			return p, nil
		}
	}
	if d.quarantined[id] {
		return nil, &CorruptError{Page: id, Quarantined: true}
	}
	d.account(id, 1, class)
	if err := d.mediaErr(id); err != nil {
		return nil, err
	}
	var page []byte
	if p, ok := d.data[id]; ok {
		page = p
	} else {
		page = make([]byte, d.pageSize)
	}
	if d.pool != nil && class == ClassLight {
		d.pool.put(id, page)
	}
	return page, nil
}

// PeekPage returns page content without charging any I/O. Build-time
// read-modify-write paths use it so that construction does not pollute the
// experiment counters; queries must use ReadPage. Peeks honor corruption
// and quarantine marks but do not draw injected faults — they model setup
// access, not the measured query workload.
func (d *Disk) PeekPage(id PageID) ([]byte, error) {
	if id < 0 || id >= d.allocated {
		return nil, fmt.Errorf("storage: peek page %d: %w", id, errOutOfRange)
	}
	if d.quarantined[id] {
		return nil, &CorruptError{Page: id, Quarantined: true}
	}
	if d.corrupt[id] {
		return nil, &CorruptError{Page: id}
	}
	if p, ok := d.data[id]; ok {
		return p, nil
	}
	return make([]byte, d.pageSize), nil
}

// account charges n sequential page reads starting at id. The access is
// sequential if it continues one of the recent stream heads; otherwise it
// seeks and claims the least-recently-used stream slot.
func (d *Disk) account(id PageID, n int64, class Class) {
	d.clock++
	slot := -1
	for i := range d.streams {
		// Continuing a stream, or re-reading its current page (served by
		// the drive's track buffer), costs no seek.
		if d.streams[i]+1 == id || d.streams[i] == id {
			slot = i
			break
		}
	}
	if slot < 0 {
		d.stats.Seeks++
		d.stats.SimTime += d.cost.Seek
		slot = 0
		for i := 1; i < numStreams; i++ {
			if d.streamAge[i] < d.streamAge[slot] {
				slot = i
			}
		}
	}
	d.streams[slot] = id + PageID(n) - 1
	d.streamAge[slot] = d.clock
	d.stats.Reads += n
	d.stats.SimTime += time.Duration(n) * d.cost.TransferPage
	switch class {
	case ClassHeavy:
		d.stats.HeavyReads += n
	default:
		d.stats.LightReads += n
	}
}

// WriteBytes stores data starting at page start, spanning as many pages as
// needed.
func (d *Disk) WriteBytes(start PageID, data []byte) error {
	for off := 0; off < len(data); off += d.pageSize {
		end := off + d.pageSize
		if end > len(data) {
			end = len(data)
		}
		if err := d.WritePage(start+PageID(off/d.pageSize), data[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes reads length bytes starting at page start. All pages of the
// extent are charged as one sequential run.
func (d *Disk) ReadBytes(start PageID, length int, class Class) ([]byte, error) {
	if length < 0 {
		return nil, errors.New("storage: negative read length")
	}
	n := d.PagesFor(int64(length))
	if start < 0 || start+PageID(n) > d.allocated {
		return nil, fmt.Errorf("storage: read extent [%d,%d): %w", start, int64(start)+int64(n), errOutOfRange)
	}
	if d.pool != nil && class == ClassLight {
		// Page-at-a-time through the buffer pool; consecutive misses
		// still count as one sequential run via the stream heads.
		out := make([]byte, 0, n*d.pageSize)
		for i := 0; i < n; i++ {
			p, err := d.ReadPage(start+PageID(i), class)
			if err != nil {
				return nil, err
			}
			out = append(out, p...)
		}
		return out[:length], nil
	}
	for i := 0; i < n; i++ {
		if id := start + PageID(i); d.quarantined[id] {
			return nil, &CorruptError{Page: id, Quarantined: true}
		}
	}
	d.account(start, int64(n), class)
	out := make([]byte, 0, n*d.pageSize)
	for i := 0; i < n; i++ {
		id := start + PageID(i)
		if err := d.mediaErr(id); err != nil {
			return nil, err
		}
		if p, ok := d.data[id]; ok {
			out = append(out, p...)
		} else {
			out = append(out, make([]byte, d.pageSize)...)
		}
	}
	return out[:length], nil
}

// ReadExtent charges n sequential page reads starting at start without
// materializing data. Heavy model payloads whose bytes the caller does not
// need (nominal-size padding) use this, keeping I/O counts exact while the
// process stays small.
func (d *Disk) ReadExtent(start PageID, n int, class Class) error {
	if n < 1 {
		n = 1
	}
	if start < 0 || start+PageID(n) > d.allocated {
		return fmt.Errorf("storage: extent [%d,%d): %w", start, int64(start)+int64(n), errOutOfRange)
	}
	for i := 0; i < n; i++ {
		if id := start + PageID(i); d.quarantined[id] {
			return &CorruptError{Page: id, Quarantined: true}
		}
	}
	d.account(start, int64(n), class)
	for i := 0; i < n; i++ {
		if err := d.mediaErr(start + PageID(i)); err != nil {
			return err
		}
	}
	return nil
}

// CorruptPage marks a page as unreadable — the failure-injection hook used
// by recovery tests.
func (d *Disk) CorruptPage(id PageID) { d.corrupt[id] = true }

// HealPage clears a corruption mark.
func (d *Disk) HealPage(id PageID) { delete(d.corrupt, id) }

// IsOutOfRange reports whether err came from an out-of-range page access.
func IsOutOfRange(err error) bool { return errors.Is(err, errOutOfRange) }
