// Package storage provides the paged-disk substrate under the HDoV-tree's
// storage schemes. It simulates a 2003-era disk with an explicit cost
// model (seek + per-page transfer), counts every page access, and
// classifies I/O as light-weight (tree nodes, V-pages, V-page-index — the
// traffic of Figure 8(b)) or heavy-weight (model payload — included in
// Figure 8(a)).
//
// Pages with written content hold real bytes; extents that were allocated
// but never written read back as zero-filled pages. This keeps the
// simulated database sparse in memory while preserving exact page-level
// layout, so the gigabyte-scale nominal datasets of the paper's Figure 9
// produce the same page counts they would on a real disk (DESIGN.md §3.4).
//
// The physical bytes live behind the Backend interface (backend.go): the
// in-memory simulated media above is one implementation (MemBackend), a
// real OS file with mmap/pread reads is another (package filestore). The
// Disk is the policy layer either way — the same accounting, pool,
// quarantine and fault machinery runs over both, and for timed backends
// every media operation's wall-clock latency is charged to
// Stats.MeasuredTime beside the simulated cost (DESIGN.md §17).
//
// Concurrency: a Disk is safe for concurrent readers and writers. The
// quarantine set and fault injector are guarded by d.mu; the cost-model
// accounting (stats, stream heads) by d.statsMu; the optional buffer
// pool by per-shard locks; the media backend does its own locking and is
// only ever called with no Disk lock held. No two of these locks are
// ever held at once, so the locking order is trivial (DESIGN.md §10).
// Per-session I/O attribution is exact via Client handles: every read
// charged to the global Stats is also charged to the calling session's
// Client, so concurrent sessions each see only their own traffic.
package storage

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// PageID addresses a page on the simulated disk. The zero page is valid;
// NilPage is the sentinel "no page" value (the nil V-page pointer of §4.2).
type PageID int64

// NilPage is the null page pointer.
const NilPage PageID = -1

// Class labels an I/O for the paper's light/heavy accounting split.
type Class uint8

const (
	// ClassLight covers index traffic: tree nodes, V-pages, V-page-index
	// segments. Figure 8(b) reports exactly this.
	ClassLight Class = iota
	// ClassHeavy covers model payload (LoD mesh records). Figure 8(a)
	// reports light + heavy.
	ClassHeavy
)

// DefaultPageSize is the disk page size in bytes. 4 KiB matches the
// filesystem pages of the paper's era and is the V-page granularity.
const DefaultPageSize = 4096

// CostModel is the simulated time cost of disk operations. Defaults are
// typical of a 7200 rpm disk circa 2003: ~9 ms average seek+rotation, and
// ~40 MB/s sustained transfer (≈0.1 ms per 4 KiB page).
type CostModel struct {
	Seek         time.Duration // cost of a non-sequential access
	TransferPage time.Duration // cost per page transferred
}

// DefaultCostModel returns the 2003-era disk parameters used by all
// experiments unless overridden.
func DefaultCostModel() CostModel {
	return CostModel{
		Seek:         9 * time.Millisecond,
		TransferPage: 100 * time.Microsecond,
	}
}

// Stats is the I/O accounting snapshot of a Disk or a Client.
type Stats struct {
	Reads      int64 // total pages read
	Writes     int64 // total pages written
	Seeks      int64 // non-sequential repositionings
	LightReads int64 // pages read with ClassLight
	HeavyReads int64 // pages read with ClassHeavy
	// Retries counts re-read attempts issued for faulted pages while a
	// fault-injection policy is installed (see InjectFaults). Retries are
	// not added to Reads so the paper's I/O figures stay comparable; their
	// time cost is charged to SimTime.
	Retries int64
	SimTime time.Duration
	// MeasuredTime is the wall-clock time spent inside media operations,
	// charged only when the backend performs real I/O (Backend.Timed).
	// The simulated in-memory backend charges exactly zero, so
	// deterministic accounting stays deterministic; on the file backend
	// SimTime (the fitted model's prediction) and MeasuredTime (what the
	// hardware actually took) sit side by side in every snapshot.
	MeasuredTime time.Duration
	// Buffer-pool counters, split by class (zero with no pool installed).
	// Pool hits cost no seek, transfer or SimTime — the cost model charges
	// only misses, which appear in Reads as real page I/O.
	PoolLightHits, PoolLightMisses int64
	PoolHeavyHits, PoolHeavyMisses int64
	PoolEvictions                  int64
	// Prefetch accounting (zero with no pool or no prefetcher). A
	// prefetched page that a demand read later hits counts as a
	// PrefetchHit; one evicted or invalidated before any demand read
	// counts as PrefetchWasted. Together they make the spike-flattening
	// vs extra-I/O trade of background prefetching measurable.
	PrefetchHits, PrefetchWasted int64
	// VDCacheHits counts V-page reads answered from a scheme's decoded
	// V-data cache (vstore), costing no page I/O.
	VDCacheHits int64
	// CoalescedReads counts buffer-pool misses that piggybacked on an
	// in-flight read of the same page instead of hitting the media —
	// N sessions entering the same cell pay one physical read, not N.
	// A coalesced read costs no seek, transfer, or SimTime.
	CoalescedReads int64
}

// Sub returns s - o, for measuring a window of activity.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:           s.Reads - o.Reads,
		Writes:          s.Writes - o.Writes,
		Seeks:           s.Seeks - o.Seeks,
		LightReads:      s.LightReads - o.LightReads,
		HeavyReads:      s.HeavyReads - o.HeavyReads,
		Retries:         s.Retries - o.Retries,
		SimTime:         s.SimTime - o.SimTime,
		MeasuredTime:    s.MeasuredTime - o.MeasuredTime,
		PoolLightHits:   s.PoolLightHits - o.PoolLightHits,
		PoolLightMisses: s.PoolLightMisses - o.PoolLightMisses,
		PoolHeavyHits:   s.PoolHeavyHits - o.PoolHeavyHits,
		PoolHeavyMisses: s.PoolHeavyMisses - o.PoolHeavyMisses,
		PoolEvictions:   s.PoolEvictions - o.PoolEvictions,
		PrefetchHits:    s.PrefetchHits - o.PrefetchHits,
		PrefetchWasted:  s.PrefetchWasted - o.PrefetchWasted,
		VDCacheHits:     s.VDCacheHits - o.VDCacheHits,
		CoalescedReads:  s.CoalescedReads - o.CoalescedReads,
	}
}

// Add returns s + o, for aggregating accounting across shard stores.
func (s Stats) Add(o Stats) Stats { return s.add(o) }

// add returns s + o.
func (s Stats) add(o Stats) Stats {
	return Stats{
		Reads:           s.Reads + o.Reads,
		Writes:          s.Writes + o.Writes,
		Seeks:           s.Seeks + o.Seeks,
		LightReads:      s.LightReads + o.LightReads,
		HeavyReads:      s.HeavyReads + o.HeavyReads,
		Retries:         s.Retries + o.Retries,
		SimTime:         s.SimTime + o.SimTime,
		MeasuredTime:    s.MeasuredTime + o.MeasuredTime,
		PoolLightHits:   s.PoolLightHits + o.PoolLightHits,
		PoolLightMisses: s.PoolLightMisses + o.PoolLightMisses,
		PoolHeavyHits:   s.PoolHeavyHits + o.PoolHeavyHits,
		PoolHeavyMisses: s.PoolHeavyMisses + o.PoolHeavyMisses,
		PoolEvictions:   s.PoolEvictions + o.PoolEvictions,
		PrefetchHits:    s.PrefetchHits + o.PrefetchHits,
		PrefetchWasted:  s.PrefetchWasted + o.PrefetchWasted,
		VDCacheHits:     s.VDCacheHits + o.VDCacheHits,
		CoalescedReads:  s.CoalescedReads + o.CoalescedReads,
	}
}

// numStreams is how many concurrent sequential read streams the disk
// model recognizes. A real OS issues readahead per open file, so a query
// that interleaves node-record reads with V-page reads still enjoys
// sequential transfer within each file; modeling a handful of stream heads
// reproduces that without a full file abstraction. Concurrent sessions
// share the heads, like processes share one disk arm: heavy interleaving
// from many clients degrades sequentiality, which is exactly what a real
// drive would see.
const numStreams = 8

// Disk is a paged disk — the policy layer (accounting, pool, faults,
// quarantine, sessions) over a pluggable page media — safe for
// concurrent use.
type Disk struct {
	// media holds the physical pages. Immutable after construction, so
	// reading the field needs no lock; calls into it are interface calls
	// and therefore must never happen while d.mu or d.statsMu is held
	// (the lockorder invariant, DESIGN.md §11).
	media Backend
	// timed caches media.Timed(): charge wall-clock MeasuredTime per
	// media operation iff the backend does real I/O.
	timed bool

	// mu guards the structural state: corruption and quarantine sets,
	// the allocation watermark, and the pool/faults pointers.
	mu        sync.RWMutex
	pageSize  int
	allocated PageID // next free page
	// growErr records a failed media Allocate (disk full); subsequent
	// writes surface it instead of writing past the media's end.
	growErr error
	corrupt map[PageID]bool
	// quarantined pages fail immediately with no seek or retry cost —
	// callers that detected damage park the page here so repeated frames
	// stop re-seeking it (see Quarantine).
	quarantined map[PageID]bool
	// faults is the optional deterministic fault injector (InjectFaults).
	faults *faultInjector
	cost   CostModel
	// pool is the optional buffer pool (see SetCacheSize/ConfigurePool).
	pool *bufferPool
	// inflight coalesces concurrent pool misses on the same page: one
	// reader performs the media read, the rest wait for its result and
	// count a CoalescedRead instead of a second physical I/O.
	inflight flight
	// breaker is the optional per-region circuit breaker (SetBreaker): a
	// region with repeated permanent media faults fails fast instead of
	// being re-probed on every query.
	breaker *breaker

	// statsMu guards the cost-model accounting below.
	statsMu sync.Mutex
	stats   Stats
	// streams holds the positions of recent sequential runs (see
	// numStreams); streamAge implements LRU replacement.
	streams   [numStreams]PageID
	streamAge [numStreams]int64
	clock     int64
}

// NewDisk creates an empty simulated disk with the given page size
// (DefaultPageSize if non-positive) and cost model, backed by in-memory
// media.
func NewDisk(pageSize int, cost CostModel) *Disk {
	return NewDiskOn(NewMemBackend(pageSize), cost)
}

// NewDiskOn creates an empty disk over the given media backend. The page
// size comes from the backend; the cost model still drives the simulated
// accounting (on a calibrated file backend, SimTime is the fitted model's
// prediction and MeasuredTime the hardware's answer).
func NewDiskOn(b Backend, cost CostModel) *Disk {
	d := &Disk{
		media:       b,
		timed:       b.Timed(),
		pageSize:    b.PageSize(),
		corrupt:     make(map[PageID]bool),
		quarantined: make(map[PageID]bool),
		cost:        cost,
		inflight:    flight{calls: make(map[PageID]*flightCall)},
	}
	// All stream heads start parked: the first access is always a seek.
	for i := range d.streams {
		d.streams[i] = -2
	}
	return d
}

// Timed reports whether the media backend performs real I/O (and the
// disk therefore charges Stats.MeasuredTime).
func (d *Disk) Timed() bool { return d.timed }

// Sync flushes the media to durable storage — a no-op for the simulated
// backend, an fsync for the file backend. The dbfile commit protocol
// calls it before the manifest rename so the commit point is durable.
func (d *Disk) Sync() error {
	if !d.timed {
		return d.media.Sync()
	}
	t0 := time.Now()
	err := d.media.Sync()
	d.charge(Stats{MeasuredTime: time.Since(t0)}, nil)
	return err
}

// Close releases the media backend's OS resources (no-op for the
// simulated backend). The disk must not be used afterwards.
func (d *Disk) Close() error { return d.media.Close() }

// MediaStats returns the backend's operation counters — the
// syscall's-eye view beneath the cost-model accounting.
func (d *Disk) MediaStats() BackendStats { return d.media.Stats() }

// mediaRead performs the physical backend read — outside every Disk
// lock — charging wall-clock MeasuredTime when the backend is real
// hardware.
func (d *Disk) mediaRead(start PageID, n int, dst []byte, sink *Client) error {
	if !d.timed {
		return d.media.ReadPages(start, n, dst)
	}
	t0 := time.Now()
	err := d.media.ReadPages(start, n, dst)
	d.charge(Stats{MeasuredTime: time.Since(t0)}, sink)
	return err
}

// mediaWrite mirrors mediaRead for page writes.
func (d *Disk) mediaWrite(id PageID, page []byte) error {
	if !d.timed {
		return d.media.WritePage(id, page)
	}
	t0 := time.Now()
	err := d.media.WritePage(id, page)
	d.charge(Stats{MeasuredTime: time.Since(t0)}, nil)
	return err
}

// PageSize returns the page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// NumPages returns the number of allocated pages.
func (d *Disk) NumPages() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(d.allocated)
}

// SizeBytes returns the allocated size of the disk in bytes — the quantity
// Table 2 reports per storage scheme.
func (d *Disk) SizeBytes() int64 { return d.NumPages() * int64(d.pageSize) }

// ResidentBytes returns the bytes actually materialized on the media
// (written, non-sparse pages); always ≤ SizeBytes.
func (d *Disk) ResidentBytes() int64 {
	return d.media.StoredCount() * int64(d.pageSize)
}

// Stats returns the accounting snapshot. Every counter — I/O, retries,
// buffer-pool flow, prefetch outcomes — is read under the one stats lock,
// so a snapshot taken mid-run is mutually consistent: a pool miss is never
// visible without the miss counter that preceded it, and Reads never
// exceeds the misses that caused them.
func (d *Disk) Stats() Stats {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters, including the pool's flow counters (the
// head positions and pool contents are kept).
func (d *Disk) ResetStats() {
	d.statsMu.Lock()
	d.stats = Stats{}
	d.statsMu.Unlock()
}

// charge applies a stats delta to the global counters and, when a session
// client issued the I/O, to that client's counters.
func (d *Disk) charge(delta Stats, sink *Client) {
	d.statsMu.Lock()
	d.stats = d.stats.add(delta)
	d.statsMu.Unlock()
	if sink != nil {
		sink.add(delta)
	}
}

// AllocPages reserves n contiguous pages and returns the first PageID.
// The media is grown outside the lock (Backend.Allocate is grow-only, so
// concurrent growers landing out of order are harmless); a media that
// cannot grow — a full real disk — poisons subsequent writes instead of
// failing the allocation, which keeps the build-path signature simple.
func (d *Disk) AllocPages(n int) PageID {
	if n < 1 {
		n = 1
	}
	d.mu.Lock()
	start := d.allocated
	d.allocated += PageID(n)
	total := int64(d.allocated)
	d.mu.Unlock()
	if err := d.media.Allocate(total); err != nil {
		d.mu.Lock()
		d.growErr = err
		d.mu.Unlock()
	}
	return start
}

// PagesFor returns how many pages are needed for n bytes.
func (d *Disk) PagesFor(n int64) int {
	if n <= 0 {
		return 1
	}
	return int((n + int64(d.pageSize) - 1) / int64(d.pageSize))
}

// errOutOfRange is wrapped into range errors for errors.Is checks.
var errOutOfRange = errors.New("page out of range")

// ErrCorrupt is returned when a read hits a page marked corrupt by the
// failure-injection hook.
var ErrCorrupt = errors.New("storage: corrupt page")

// CorruptError is the concrete error for an unreadable page. It wraps
// ErrCorrupt (errors.Is keeps working) and carries the failing PageID so
// recovery code can quarantine exactly the damaged page.
type CorruptError struct {
	Page PageID
	// Quarantined is true when the read failed fast on a quarantined page
	// rather than on fresh media damage.
	Quarantined bool
	// Tripped is true when the read failed fast because the page's region
	// circuit breaker is open (SetBreaker) rather than on fresh damage.
	Tripped bool
}

func (e *CorruptError) Error() string {
	switch {
	case e.Quarantined:
		return fmt.Sprintf("storage: corrupt page: page %d (quarantined)", e.Page)
	case e.Tripped:
		return fmt.Sprintf("storage: corrupt page: page %d (breaker open)", e.Page)
	}
	return fmt.Sprintf("storage: corrupt page: page %d", e.Page)
}

// Unwrap lets errors.Is(err, ErrCorrupt) see through the structured error.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// Quarantine parks a page: subsequent reads fail immediately with a
// CorruptError, charging no seek, transfer, or retry cost. Recovery code
// quarantines pages it has seen fail so repeated frames stop re-seeking
// damaged media. A successful WritePage lifts the quarantine (the sector
// was remapped by the rewrite).
func (d *Disk) Quarantine(id PageID) {
	var wasted int64
	d.mu.Lock()
	if id >= 0 && id < d.allocated {
		d.quarantined[id] = true
		if d.pool != nil {
			wasted = d.pool.invalidate(id)
		}
	}
	d.mu.Unlock()
	if wasted > 0 {
		d.charge(Stats{PrefetchWasted: wasted}, nil)
	}
}

// IsQuarantined reports whether a page is parked.
func (d *Disk) IsQuarantined(id PageID) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.quarantined[id]
}

// NumQuarantined returns how many pages are parked.
func (d *Disk) NumQuarantined() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.quarantined)
}

// ClearQuarantine lifts every quarantine mark (tests and repair tools).
func (d *Disk) ClearQuarantine() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.quarantined = make(map[PageID]bool)
}

// mediaErr simulates the outcome of physically reading page id: nil on
// success, a CorruptError on an unreadable sector. With a fault injector
// installed it also draws injected faults and performs bounded
// retry-with-backoff (transient faults are absorbed, with retries counted
// in Stats); without one it only honors explicit CorruptPage marks,
// exactly the pre-injection behavior. A session context that is already
// expired fails fast before any fault draw or backoff is charged, and
// permanent-fault outcomes feed the optional circuit breaker.
func (d *Disk) mediaErr(id PageID, sink *Client) error {
	d.mu.RLock()
	fi := d.faults
	br := d.breaker
	corrupt := d.corrupt[id]
	d.mu.RUnlock()
	if fi == nil {
		if corrupt {
			if br != nil {
				br.observe(id, false)
			}
			return &CorruptError{Page: id}
		}
		return nil
	}
	// Honor the caller's deadline before the retry loop: an expired
	// context must not pay (or even draw) retries and backoff.
	if err := sink.ctxErr(); err != nil {
		return err
	}
	retries, cost, err := fi.check(corrupt, id)
	if retries > 0 {
		d.charge(Stats{Retries: retries, SimTime: cost}, sink)
	}
	if br != nil {
		br.observe(id, err == nil)
	}
	return err
}

// WritePage stores data (at most one page) at id. Write cost is charged as
// one page transfer; experiments only measure reads, matching the paper's
// read-only query workload. A successful write clears any corruption or
// quarantine mark on the page — rewriting a bad sector remaps it, which is
// what repair paths rely on.
func (d *Disk) WritePage(id PageID, data []byte) error {
	d.mu.RLock()
	allocated, gerr := d.allocated, d.growErr
	d.mu.RUnlock()
	if gerr != nil {
		return fmt.Errorf("storage: write page %d: media allocation failed: %w", id, gerr)
	}
	if id < 0 || id >= allocated {
		return fmt.Errorf("storage: write page %d: %w", id, errOutOfRange)
	}
	if len(data) > d.pageSize {
		return fmt.Errorf("storage: write of %d bytes exceeds page size %d", len(data), d.pageSize)
	}
	page := make([]byte, d.pageSize)
	copy(page, data)
	// Media write outside every lock (interface call); then clear marks.
	if err := d.mediaWrite(id, page); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	d.mu.Lock()
	delete(d.corrupt, id)
	delete(d.quarantined, id)
	if d.faults != nil {
		d.faults.heal(id)
	}
	var wasted int64
	if d.pool != nil {
		wasted = d.pool.invalidate(id)
	}
	if d.breaker != nil {
		d.breaker.heal(id)
	}
	d.mu.Unlock()
	d.charge(Stats{Writes: 1, PrefetchWasted: wasted}, nil)
	return nil
}

// ReadPage returns the content of page id, charging one page I/O of the
// given class. Never-written pages read back zero-filled. Reads served by
// the buffer pool (SetCacheSize) cost nothing — seek and transfer are
// charged only on pool misses.
func (d *Disk) ReadPage(id PageID, class Class) ([]byte, error) {
	return d.readPage(id, class, nil)
}

func (d *Disk) readPage(id PageID, class Class, sink *Client) ([]byte, error) {
	if err := sink.ctxErr(); err != nil {
		return nil, err
	}
	d.mu.RLock()
	if id < 0 || id >= d.allocated {
		d.mu.RUnlock()
		return nil, fmt.Errorf("storage: read page %d: %w", id, errOutOfRange)
	}
	pool := d.pool
	d.mu.RUnlock()
	if pool == nil || !pool.caches(class) {
		return d.readPageMedia(id, class, sink, nil)
	}
	if p, ok, prefetched := pool.get(id, class); ok {
		delta := Stats{PoolLightHits: 1}
		if class == ClassHeavy {
			delta = Stats{PoolHeavyHits: 1}
		}
		if prefetched {
			delta.PrefetchHits = 1
		}
		d.charge(delta, sink)
		return p, nil
	}
	if class == ClassHeavy {
		d.charge(Stats{PoolHeavyMisses: 1}, sink)
	} else {
		d.charge(Stats{PoolLightMisses: 1}, sink)
	}
	// Coalesce concurrent misses on the same page: the first reader does
	// the media read (and the pool insert); the rest wait for its result.
	page, err, leader := d.inflight.do(id, func() ([]byte, error) {
		return d.readPageMedia(id, class, sink, pool)
	})
	if err != nil {
		return nil, err
	}
	if !leader {
		d.charge(Stats{CoalescedReads: 1}, sink)
	}
	return page, nil
}

// readPageMedia performs the physical page read — quarantine check, cost
// accounting, fault draw, data fetch — and inserts the page into pool
// when one is supplied.
func (d *Disk) readPageMedia(id PageID, class Class, sink *Client, pool *bufferPool) ([]byte, error) {
	if d.IsQuarantined(id) {
		return nil, &CorruptError{Page: id, Quarantined: true}
	}
	if err := d.breakerErr(id); err != nil {
		return nil, err
	}
	d.account(id, 1, class, sink)
	if err := d.mediaErr(id, sink); err != nil {
		return nil, err
	}
	page := make([]byte, d.pageSize)
	if err := d.mediaRead(id, 1, page, sink); err != nil {
		return nil, fmt.Errorf("storage: read page %d: %w", id, err)
	}
	if pool != nil {
		ev, wasted := pool.put(id, page)
		if ev > 0 || wasted > 0 {
			d.charge(Stats{PoolEvictions: ev, PrefetchWasted: wasted}, nil)
		}
	}
	return page, nil
}

// PeekPage returns page content without charging any I/O. Build-time
// read-modify-write paths use it so that construction does not pollute the
// experiment counters; queries must use ReadPage. Peeks honor corruption
// and quarantine marks but do not draw injected faults — they model setup
// access, not the measured query workload.
func (d *Disk) PeekPage(id PageID) ([]byte, error) {
	d.mu.RLock()
	if id < 0 || id >= d.allocated {
		d.mu.RUnlock()
		return nil, fmt.Errorf("storage: peek page %d: %w", id, errOutOfRange)
	}
	if d.quarantined[id] {
		d.mu.RUnlock()
		return nil, &CorruptError{Page: id, Quarantined: true}
	}
	if d.corrupt[id] {
		d.mu.RUnlock()
		return nil, &CorruptError{Page: id}
	}
	d.mu.RUnlock()
	page := make([]byte, d.pageSize)
	// Unmetered on purpose (setup access, not measured workload): the
	// media read happens outside the lock and charges nothing, not even
	// MeasuredTime.
	if err := d.media.ReadPage(id, page); err != nil {
		return nil, fmt.Errorf("storage: peek page %d: %w", id, err)
	}
	return page, nil
}

// account charges n sequential page reads starting at id. The access is
// sequential if it continues one of the recent stream heads; otherwise it
// seeks and claims the least-recently-used stream slot.
func (d *Disk) account(id PageID, n int64, class Class, sink *Client) {
	var delta Stats
	d.statsMu.Lock()
	d.clock++
	slot := -1
	for i := range d.streams {
		// Continuing a stream, or re-reading its current page (served by
		// the drive's track buffer), costs no seek.
		if d.streams[i]+1 == id || d.streams[i] == id {
			slot = i
			break
		}
	}
	if slot < 0 {
		delta.Seeks = 1
		delta.SimTime += d.cost.Seek
		slot = 0
		for i := 1; i < numStreams; i++ {
			if d.streamAge[i] < d.streamAge[slot] {
				slot = i
			}
		}
	}
	d.streams[slot] = id + PageID(n) - 1
	d.streamAge[slot] = d.clock
	delta.Reads = n
	delta.SimTime += time.Duration(n) * d.cost.TransferPage
	switch class {
	case ClassHeavy:
		delta.HeavyReads = n
	default:
		delta.LightReads = n
	}
	d.stats = d.stats.add(delta)
	d.statsMu.Unlock()
	if sink != nil {
		sink.add(delta)
	}
}

// WriteBytes stores data starting at page start, spanning as many pages as
// needed.
func (d *Disk) WriteBytes(start PageID, data []byte) error {
	for off := 0; off < len(data); off += d.pageSize {
		end := off + d.pageSize
		if end > len(data) {
			end = len(data)
		}
		if err := d.WritePage(start+PageID(off/d.pageSize), data[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes reads length bytes starting at page start. All pages of the
// extent are charged as one sequential run.
func (d *Disk) ReadBytes(start PageID, length int, class Class) ([]byte, error) {
	return d.readBytes(start, length, class, nil)
}

func (d *Disk) readBytes(start PageID, length int, class Class, sink *Client) ([]byte, error) {
	if length < 0 {
		return nil, errors.New("storage: negative read length")
	}
	if err := sink.ctxErr(); err != nil {
		return nil, err
	}
	n := d.PagesFor(int64(length))
	d.mu.RLock()
	if start < 0 || start+PageID(n) > d.allocated {
		d.mu.RUnlock()
		return nil, fmt.Errorf("storage: read extent [%d,%d): %w", start, int64(start)+int64(n), errOutOfRange)
	}
	pool := d.pool
	d.mu.RUnlock()
	if pool != nil && pool.caches(class) {
		// Page-at-a-time through the buffer pool; consecutive misses
		// still count as one sequential run via the stream heads.
		out := make([]byte, 0, n*d.pageSize)
		for i := 0; i < n; i++ {
			p, err := d.readPage(start+PageID(i), class, sink)
			if err != nil {
				return nil, err
			}
			out = append(out, p...)
		}
		return out[:length], nil
	}
	d.mu.RLock()
	for i := 0; i < n; i++ {
		if id := start + PageID(i); d.quarantined[id] {
			d.mu.RUnlock()
			return nil, &CorruptError{Page: id, Quarantined: true}
		}
	}
	d.mu.RUnlock()
	for i := 0; i < n; i++ {
		if err := d.breakerErr(start + PageID(i)); err != nil {
			return nil, err
		}
	}
	d.account(start, int64(n), class, sink)
	for i := 0; i < n; i++ {
		if err := d.mediaErr(start+PageID(i), sink); err != nil {
			return nil, err
		}
	}
	// One vectored media read for the whole extent — a single pread on
	// the file backend, where the page-at-a-time loop used to issue n.
	out := make([]byte, n*d.pageSize)
	if err := d.mediaRead(start, n, out, sink); err != nil {
		return nil, fmt.Errorf("storage: read extent [%d,+%d): %w", start, n, err)
	}
	return out[:length], nil
}

// ReadExtent charges n sequential page reads starting at start without
// materializing data. Heavy model payloads whose bytes the caller does not
// need (nominal-size padding) use this, keeping I/O counts exact while the
// process stays small.
func (d *Disk) ReadExtent(start PageID, n int, class Class) error {
	return d.readExtent(start, n, class, nil)
}

func (d *Disk) readExtent(start PageID, n int, class Class, sink *Client) error {
	if n < 1 {
		n = 1
	}
	if err := sink.ctxErr(); err != nil {
		return err
	}
	d.mu.RLock()
	if start < 0 || start+PageID(n) > d.allocated {
		d.mu.RUnlock()
		return fmt.Errorf("storage: extent [%d,%d): %w", start, int64(start)+int64(n), errOutOfRange)
	}
	for i := 0; i < n; i++ {
		if id := start + PageID(i); d.quarantined[id] {
			d.mu.RUnlock()
			return &CorruptError{Page: id, Quarantined: true}
		}
	}
	d.mu.RUnlock()
	for i := 0; i < n; i++ {
		if err := d.breakerErr(start + PageID(i)); err != nil {
			return err
		}
	}
	d.account(start, int64(n), class, sink)
	for i := 0; i < n; i++ {
		if err := d.mediaErr(start+PageID(i), sink); err != nil {
			return err
		}
	}
	if d.timed {
		// Real media: actually transfer the extent, in bounded chunks so
		// nominal-size heavy payloads never materialize on the heap, so
		// MeasuredTime reflects honest I/O. The simulated backend keeps
		// the historical charge-without-reading behavior.
		const chunk = 64
		buf := make([]byte, min(chunk, n)*d.pageSize)
		for off := 0; off < n; off += chunk {
			m := min(chunk, n-off)
			if err := d.mediaRead(start+PageID(off), m, buf[:m*d.pageSize], sink); err != nil {
				return fmt.Errorf("storage: extent [%d,+%d): %w", start, n, err)
			}
		}
	}
	return nil
}

// CorruptPage marks a page as unreadable — the failure-injection hook used
// by recovery tests.
func (d *Disk) CorruptPage(id PageID) {
	var wasted int64
	d.mu.Lock()
	d.corrupt[id] = true
	if d.pool != nil {
		wasted = d.pool.invalidate(id)
	}
	d.mu.Unlock()
	if wasted > 0 {
		d.charge(Stats{PrefetchWasted: wasted}, nil)
	}
}

// HealPage clears a corruption mark.
func (d *Disk) HealPage(id PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.corrupt, id)
}

// IsOutOfRange reports whether err came from an out-of-range page access.
func IsOutOfRange(err error) bool { return errors.Is(err, errOutOfRange) }

// Client is a per-session read handle on a Disk. Every read issued
// through a Client is charged both to the disk's global Stats and to the
// client's own, so concurrent sessions get exact per-session I/O and
// simulated-time attribution. Clients are safe for concurrent use (a
// session's parallel traversal workers share one client); creating one is
// cheap. Writes and administrative operations stay on the Disk itself.
type Client struct {
	d  *Disk
	mu sync.Mutex
	s  Stats
	// ctx holds the boundCtx installed by BindContext. Reads through
	// this client fail fast once it is done; the zero value (no context)
	// never cancels.
	ctx atomic.Value
}

// boundCtx boxes the bound context so atomic.Value always stores one
// concrete type regardless of the context implementation behind the
// interface.
type boundCtx struct{ ctx context.Context }

// NewClient returns a fresh accounting handle on the disk.
func (d *Disk) NewClient() *Client { return &Client{d: d} }

// Disk returns the underlying disk.
func (c *Client) Disk() *Disk { return c.d }

// add accumulates a charged delta.
func (c *Client) add(delta Stats) {
	c.mu.Lock()
	c.s = c.s.add(delta)
	c.mu.Unlock()
}

// Stats returns the client's accounting snapshot: only the I/O this
// client issued.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}

// ResetStats zeroes the client's counters (the disk's are untouched).
func (c *Client) ResetStats() {
	c.mu.Lock()
	c.s = Stats{}
	c.mu.Unlock()
}

// BindContext attaches ctx to the client: every subsequent read through
// the client checks it before touching media and fails fast once the
// deadline expires or the context is canceled. A fail-fast read charges
// no seek, transfer, retry, or backoff cost — cancellation is observed
// at the next read, not mid-transfer. Passing nil (or a fresh client)
// restores the unbounded behavior. The binding is per-client, so one
// session's deadline never affects another's reads.
func (c *Client) BindContext(ctx context.Context) {
	if ctx == nil {
		//lint:ignore ctxflow nil means unbind — the never-done context restores unbounded reads
		ctx = context.Background()
	}
	c.ctx.Store(boundCtx{ctx})
}

// ctxErr reports the bound context's error, wrapped as a non-degradable
// storage error (errors.Is still sees context.Canceled /
// context.DeadlineExceeded). Nil receiver and unbound clients never
// cancel: direct Disk reads pass a nil sink.
func (c *Client) ctxErr() error {
	if c == nil {
		return nil
	}
	v := c.ctx.Load()
	if v == nil {
		return nil
	}
	ctx := v.(boundCtx).ctx
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("storage: read aborted: %w", err)
	}
	return nil
}

// PageSize returns the disk's page size in bytes.
func (c *Client) PageSize() int { return c.d.PageSize() }

// PagesFor returns how many pages are needed for n bytes.
func (c *Client) PagesFor(n int64) int { return c.d.PagesFor(n) }

// ReadPage mirrors Disk.ReadPage with per-client attribution.
func (c *Client) ReadPage(id PageID, class Class) ([]byte, error) {
	return c.d.readPage(id, class, c)
}

// ReadBytes mirrors Disk.ReadBytes with per-client attribution.
func (c *Client) ReadBytes(start PageID, length int, class Class) ([]byte, error) {
	return c.d.readBytes(start, length, class, c)
}

// ReadExtent mirrors Disk.ReadExtent with per-client attribution.
func (c *Client) ReadExtent(start PageID, n int, class Class) error {
	return c.d.readExtent(start, n, class, c)
}

// PinPage mirrors Disk.PinPage with per-client attribution.
func (c *Client) PinPage(id PageID, class Class) (*PinnedPage, error) {
	return c.d.pinPage(id, class, c)
}

// RecordVDCacheHit charges one decoded-V-data cache hit (a V-page access
// answered from memory, costing no page I/O). The vstore schemes call it
// through whichever read handle their view charges to.
func (d *Disk) RecordVDCacheHit() { d.charge(Stats{VDCacheHits: 1}, nil) }

// RecordVDCacheHit mirrors Disk.RecordVDCacheHit with per-client
// attribution.
func (c *Client) RecordVDCacheHit() { c.d.charge(Stats{VDCacheHits: 1}, c) }
