package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// MemBackend is the in-memory simulated media: a sparse page map with no
// real I/O. It is the Backend every Disk uses unless a real one is
// supplied (NewDiskOn), and preserves the historical simulated-disk
// semantics exactly — written pages hold real bytes, allocated-but-never-
// written extents read back zero-filled, and Clone shares page slices
// zero-copy (WritePage installs fresh slices, never mutates in place).
type MemBackend struct {
	mu       sync.RWMutex
	pageSize int
	// pages is the grow-only allocation high-water mark.
	pages int64
	data  map[PageID][]byte

	reads, pagesRead, writes atomic.Int64
}

// NewMemBackend returns an empty in-memory media with the given page size
// (DefaultPageSize if non-positive).
func NewMemBackend(pageSize int) *MemBackend {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemBackend{
		pageSize: pageSize,
		data:     make(map[PageID][]byte),
	}
}

// PageSize returns the page size in bytes.
func (b *MemBackend) PageSize() int { return b.pageSize }

// ReadPage fills dst with the content of page id.
func (b *MemBackend) ReadPage(id PageID, dst []byte) error {
	return b.ReadPages(id, 1, dst)
}

// ReadPages fills dst with n consecutive pages starting at start.
func (b *MemBackend) ReadPages(start PageID, n int, dst []byte) error {
	if n <= 0 {
		return nil
	}
	if want := n * b.pageSize; len(dst) < want {
		return fmt.Errorf("storage: mem read [%d,+%d): dst holds %d bytes, want %d", start, n, len(dst), want)
	}
	b.mu.RLock()
	for i := 0; i < n; i++ {
		out := dst[i*b.pageSize : (i+1)*b.pageSize]
		if p, ok := b.data[start+PageID(i)]; ok {
			copy(out, p)
		} else {
			clear(out)
		}
	}
	b.mu.RUnlock()
	b.reads.Add(1)
	b.pagesRead.Add(int64(n))
	return nil
}

// WritePage stores one full page, taking ownership of data.
func (b *MemBackend) WritePage(id PageID, data []byte) error {
	if len(data) != b.pageSize {
		return fmt.Errorf("storage: mem write page %d: %d bytes, want %d", id, len(data), b.pageSize)
	}
	b.mu.Lock()
	b.data[id] = data
	b.mu.Unlock()
	b.writes.Add(1)
	return nil
}

// Allocate records the grow-only allocation watermark (no real space is
// reserved — the map is sparse by design).
func (b *MemBackend) Allocate(totalPages int64) error {
	b.mu.Lock()
	if totalPages > b.pages {
		b.pages = totalPages
	}
	b.mu.Unlock()
	return nil
}

// Release drops the materialized content of the given pages.
func (b *MemBackend) Release(ids []PageID) int {
	n := 0
	b.mu.Lock()
	for _, id := range ids {
		if _, ok := b.data[id]; ok {
			delete(b.data, id)
			n++
		}
	}
	b.mu.Unlock()
	return n
}

// StoredPages returns the materialized page IDs >= from, ascending.
func (b *MemBackend) StoredPages(from PageID) []PageID {
	b.mu.RLock()
	ids := make([]PageID, 0, len(b.data))
	for id := range b.data {
		if id >= from {
			ids = append(ids, id)
		}
	}
	b.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// StoredCount returns how many pages hold materialized content.
func (b *MemBackend) StoredCount() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return int64(len(b.data))
}

// Sync is a no-op: memory is as durable as this media gets.
func (b *MemBackend) Sync() error { return nil }

// Clone returns an independent backend sharing page slices zero-copy:
// WritePage always installs a freshly built slice and readers copy out,
// so sharing is safe, and a clone of a multi-gigabyte simulated database
// costs only the page map.
func (b *MemBackend) Clone() (Backend, error) {
	b.mu.RLock()
	c := &MemBackend{pageSize: b.pageSize, pages: b.pages, data: make(map[PageID][]byte, len(b.data))}
	for id, p := range b.data {
		c.data[id] = p
	}
	b.mu.RUnlock()
	return c, nil
}

// Stats returns the media-level operation counters.
func (b *MemBackend) Stats() BackendStats {
	pr := b.pagesRead.Load()
	return BackendStats{
		Reads:     b.reads.Load(),
		PagesRead: pr,
		BytesRead: pr * int64(b.pageSize),
		Writes:    b.writes.Load(),
	}
}

// Timed reports false: simulated media has no wall-clock latency worth
// measuring, which keeps Stats deterministic.
func (b *MemBackend) Timed() bool { return false }

// Close is a no-op.
func (b *MemBackend) Close() error { return nil }
