package storage

// Background prefetcher: a bounded queue of page-warming jobs drained by
// one worker goroutine. Jobs come from the walkthrough's motion predictor
// (the cell the viewer is about to enter) and resolve, on the worker, to
// the disk pages holding that cell's visibility data; each page is then
// pulled through the shared buffer pool with a pinned-then-released read
// so it is resident — and cheap — when the demand query arrives.
//
// The prefetcher owns a Client, so its I/O is attributed separately from
// every session's demand traffic; frames it loads are marked in the pool,
// and Stats.PrefetchHits / Stats.PrefetchWasted report how many of them a
// demand read later used versus how many were evicted untouched — the
// spike-flattening vs extra-I/O trade, as a pair of counters.
//
// The worker never sees query state: jobs receive only a Reader and
// return page IDs. hdovlint's determinism pass enforces that no goroutine
// in this package (and no job enqueued from the walkthrough) touches
// core.QueryResult.

import (
	"sync"
	"sync/atomic"
)

// PrefetchJob resolves, on the prefetch worker, to the pages worth
// warming. Reads the job itself issues (segment lookups, directories) are
// charged to the prefetcher's client like the page warms themselves.
type PrefetchJob func(r Reader) ([]PageID, error)

// DefaultPrefetchQueue is the queue bound when NewPrefetcher is given a
// non-positive length: deep enough to cover a few predicted cells, small
// enough that stale predictions are dropped rather than hoarded.
const DefaultPrefetchQueue = 16

// PrefetchWarmWorkers is how many concurrent page-warm workers a
// prefetcher runs on a timed (real-I/O) backend: enough to overlap a few
// preads, few enough not to fight demand traffic for the disk. On the
// simulated backend warms stay inline on the resolver, preserving the
// historical deterministic warm order (and therefore deterministic pool
// eviction and stats).
const PrefetchWarmWorkers = 4

// Prefetcher drains PrefetchJobs in the background, warming the disk's
// buffer pool. Create one per walkthrough (or shared per disk); Close it
// when playback ends. With no buffer pool installed warming is pointless,
// so jobs resolve but their pages are skipped.
type Prefetcher struct {
	d      *Disk
	client *Client
	jobs   chan prefetchEntry
	// warm carries resolved page IDs to the warm workers on timed
	// backends (nil on the simulated backend — warms run inline).
	warm   chan warmEntry
	wg     sync.WaitGroup // resolver
	warmWg sync.WaitGroup // warm workers

	// pending counts accepted-but-unfinished work: every queued job and,
	// on timed backends, every in-flight page warm the job fanned out.
	// idle is broadcast when it drains to zero, which is what Quiesce
	// waits on — so Quiesce fences real-I/O completions, not just the
	// resolver's simulated-time credit.
	mu      sync.Mutex
	idle    *sync.Cond
	pending int

	// gen is bumped by CancelPending; queued entries from an older
	// generation are discarded by the worker without resolving.
	gen atomic.Int64

	closed   atomic.Bool
	dropped  atomic.Int64
	warmed   atomic.Int64
	canceled atomic.Int64
}

// prefetchEntry stamps a queued job with the generation it was accepted
// under, so CancelPending can invalidate it while it waits in the queue.
type prefetchEntry struct {
	job PrefetchJob
	gen int64
}

// warmEntry is one resolved page on its way to a warm worker.
type warmEntry struct {
	id  PageID
	gen int64
}

// NewPrefetcher starts a prefetcher with the given queue bound (<= 0 uses
// DefaultPrefetchQueue), one resolver goroutine, and — on a timed
// backend — PrefetchWarmWorkers page-warm workers so real reads overlap.
func NewPrefetcher(d *Disk, queue int) *Prefetcher {
	if queue <= 0 {
		queue = DefaultPrefetchQueue
	}
	p := &Prefetcher{
		d:      d,
		client: d.NewClient(),
		jobs:   make(chan prefetchEntry, queue),
	}
	p.idle = sync.NewCond(&p.mu)
	if d.Timed() {
		p.warm = make(chan warmEntry, queue*PrefetchWarmWorkers)
		p.warmWg.Add(PrefetchWarmWorkers)
		for i := 0; i < PrefetchWarmWorkers; i++ {
			go func() {
				defer p.warmWg.Done()
				for w := range p.warm {
					// Stale warms (canceled while queued) are skipped but
					// still complete for Quiesce's accounting.
					if w.gen == p.gen.Load() {
						p.warmPage(w.id)
					}
					p.track(-1)
				}
			}()
		}
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for e := range p.jobs {
			// A stale entry (canceled while queued) is skipped without
			// resolving, but still completes for Quiesce's accounting.
			if e.gen == p.gen.Load() {
				p.run(e.job, e.gen)
			} else {
				p.canceled.Add(1)
			}
			p.track(-1)
		}
		if p.warm != nil {
			close(p.warm)
		}
	}()
	return p
}

// track adjusts the pending-job count, waking Quiesce waiters when the
// queue drains.
func (p *Prefetcher) track(delta int) {
	p.mu.Lock()
	p.pending += delta
	if p.pending == 0 {
		p.idle.Broadcast()
	}
	p.mu.Unlock()
}

// run resolves one job and warms its pages — inline on the simulated
// backend (deterministic warm order), fanned out to the warm workers on
// a timed backend (overlapped real reads). Each fanned-out warm is
// tracked in pending before the job itself completes, so Quiesce never
// observes a drained queue with warms still in flight. Faulty or
// quarantined pages are skipped silently — prefetching is advisory,
// never load-bearing.
func (p *Prefetcher) run(job PrefetchJob, gen int64) {
	pages, err := job(p.client)
	if err != nil {
		return
	}
	if p.warm == nil {
		for _, id := range pages {
			p.warmPage(id)
		}
		return
	}
	for _, id := range pages {
		p.track(1)
		p.warm <- warmEntry{id: id, gen: gen}
	}
}

// warmPage pulls one page through the buffer pool, counting successes.
func (p *Prefetcher) warmPage(id PageID) {
	if p.d.PrefetchPage(id, p.client) == nil {
		p.warmed.Add(1)
	}
}

// Enqueue submits a job without blocking. When the queue is full the job
// is dropped (and counted): a prefetcher that cannot keep up must shed
// predictions, not stall the frame loop feeding it.
func (p *Prefetcher) Enqueue(job PrefetchJob) bool {
	if p.closed.Load() {
		return false
	}
	p.track(1)
	select {
	case p.jobs <- prefetchEntry{job: job, gen: p.gen.Load()}:
		return true
	default:
		p.track(-1)
		p.dropped.Add(1)
		return false
	}
}

// CancelPending invalidates every job still waiting in the queue: the
// worker discards them (counted by Canceled) instead of resolving them.
// The job the worker is currently running, if any, completes — page warms
// are single-page reads, so there is nothing worth interrupting mid-read.
// Callers abandoning a walkthrough (context canceled, client gone) call
// this before Quiesce so the barrier returns without paying for
// predictions that no longer matter.
func (p *Prefetcher) CancelPending() { p.gen.Add(1) }

// Canceled returns how many queued jobs CancelPending discarded.
func (p *Prefetcher) Canceled() int64 { return p.canceled.Load() }

// Quiesce blocks until every accepted job — and every page warm a job
// fanned out to the warm workers — has finished. The walkthrough player
// calls it at each cell entry: simulated render time between frames is
// orders of magnitude longer than a few page warms, so by the time the
// viewer reaches a predicted cell its jobs would have long completed —
// the barrier credits the worker with that time, which the wall clock of
// a simulation run does not otherwise provide. On a timed backend the
// same barrier fences real I/O: when Quiesce returns, no warm read is
// still in flight against the media.
func (p *Prefetcher) Quiesce() {
	p.mu.Lock()
	for p.pending > 0 {
		p.idle.Wait()
	}
	p.mu.Unlock()
}

// Close stops accepting jobs, drains the queue, and waits for the
// resolver and (on timed backends) the warm workers. Idempotent.
func (p *Prefetcher) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	close(p.jobs)
	p.wg.Wait()
	p.warmWg.Wait()
}

// Stats returns the prefetcher's own I/O accounting (pages it read to
// warm the pool, and their simulated time).
func (p *Prefetcher) Stats() Stats { return p.client.Stats() }

// Dropped returns how many jobs were shed on a full queue.
func (p *Prefetcher) Dropped() int64 { return p.dropped.Load() }

// Warmed returns how many page warms completed (pool hits included).
func (p *Prefetcher) Warmed() int64 { return p.warmed.Load() }

// PrefetchPage warms one page into the buffer pool on behalf of the
// background prefetcher. Already-resident pages are left untouched (and
// unmarked — they were demand-loaded). On a miss the page is read through
// the pool with a pinned-then-released read, charged to sink, and its
// frame is marked so later accounting can classify it as hit or wasted.
// With no pool installed (or light admission off) this is a no-op: there
// is nowhere to warm.
func (d *Disk) PrefetchPage(id PageID, sink *Client) error {
	d.mu.RLock()
	pool := d.pool
	d.mu.RUnlock()
	if pool == nil || !pool.caches(ClassLight) {
		return nil
	}
	if _, ok := pool.pin(id); ok {
		pool.release(id)
		return nil
	}
	pp, err := d.pinPage(id, ClassLight, sink)
	if err != nil {
		return err
	}
	pool.markPrefetched(id)
	pp.Release()
	return nil
}
