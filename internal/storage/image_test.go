package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func imageFixture(t *testing.T) *Disk {
	t.Helper()
	d := newTestDisk()
	r := rand.New(rand.NewSource(9))
	// A mix of written and sparse extents.
	a := d.AllocPages(10)
	buf := make([]byte, 5*256)
	r.Read(buf)
	if err := d.WriteBytes(a, buf); err != nil {
		t.Fatal(err)
	}
	d.AllocPages(1000) // sparse
	b := d.AllocPages(3)
	if err := d.WritePage(b+2, []byte("tail page")); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestImageRoundTrip(t *testing.T) {
	d := imageFixture(t)
	var img bytes.Buffer
	n, err := d.WriteTo(&img)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(img.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, img.Len())
	}
	got, err := ReadImage(bytes.NewReader(img.Bytes()), DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if got.PageSize() != d.PageSize() || got.NumPages() != d.NumPages() {
		t.Fatalf("geometry changed: %d/%d vs %d/%d",
			got.PageSize(), got.NumPages(), d.PageSize(), d.NumPages())
	}
	if got.ResidentBytes() != d.ResidentBytes() {
		t.Fatalf("resident bytes %d vs %d", got.ResidentBytes(), d.ResidentBytes())
	}
	// Every page readable and byte-identical.
	for id := PageID(0); int64(id) < d.NumPages(); id++ {
		a, err := d.PeekPage(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.PeekPage(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("page %d differs after round trip", id)
		}
	}
	// Fresh statistics.
	if got.Stats() != (Stats{}) {
		t.Fatal("stats not zeroed")
	}
}

func TestImageDetectsCorruption(t *testing.T) {
	d := imageFixture(t)
	var img bytes.Buffer
	if _, err := d.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	raw := img.Bytes()

	flip := func(i int) []byte {
		c := append([]byte(nil), raw...)
		c[i] ^= 0x5a
		return c
	}
	cases := map[string][]byte{
		"header magic":  flip(0),
		"page data":     flip(len(raw) / 2),
		"checksum":      flip(len(raw) - 1),
		"truncated":     raw[:len(raw)-10],
		"short":         raw[:8],
		"extra garbage": append(append([]byte(nil), raw...), 0xff),
	}
	for name, img := range cases {
		if _, err := ReadImage(bytes.NewReader(img), DefaultCostModel()); !errors.Is(err, ErrBadImage) {
			t.Fatalf("%s: err = %v, want ErrBadImage", name, err)
		}
	}
}

func TestImageEmptyDisk(t *testing.T) {
	d := NewDisk(512, DefaultCostModel())
	var img bytes.Buffer
	if _, err := d.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(bytes.NewReader(img.Bytes()), DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPages() != 0 || got.PageSize() != 512 {
		t.Fatal("empty disk round trip wrong")
	}
}

func TestImageReopenedDiskUsable(t *testing.T) {
	d := imageFixture(t)
	var img bytes.Buffer
	if _, err := d.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(bytes.NewReader(img.Bytes()), DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// Reads charge normally; allocation continues past the image.
	if _, err := got.ReadPage(0, ClassLight); err != nil {
		t.Fatal(err)
	}
	if got.Stats().Reads != 1 {
		t.Fatal("reopened disk not accounting")
	}
	p := got.AllocPages(2)
	if p != PageID(d.NumPages()) {
		t.Fatalf("allocation resumed at %d, want %d", p, d.NumPages())
	}
	if err := got.WritePage(p, []byte("new")); err != nil {
		t.Fatal(err)
	}
}
