package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Epoch delta image: the pages an incremental update appended, serialized
// so a dynamic database can commit an epoch without rewriting its base
// image. The update path only ever writes freshly allocated pages, so the
// pages at IDs >= the previous epoch's allocation watermark are exactly
// the epoch's changes; applying them to the reopened base reproduces the
// post-update disk bit for bit.
//
//	u32 magic | u16 version | u16 reserved | u32 pageSize
//	u64 from (allocation watermark the delta starts at)
//	u64 allocated (total allocation after the delta)
//	u64 storedPages
//	storedPages × (u64 pageID | pageSize bytes)
//	u32 crc32(IEEE) of everything above
const (
	deltaMagic      = 0x45564448 // "HDVE"
	deltaVersion    = 1
	deltaHeaderSize = 4 + 2 + 2 + 4 + 8 + 8
)

// ErrBadDelta is wrapped into all delta-format errors.
var ErrBadDelta = errors.New("storage: bad epoch delta")

// DeltaInfo summarizes a parsed epoch delta.
type DeltaInfo struct {
	PageSize    int
	From        PageID // allocation watermark the delta applies on top of
	Allocated   PageID // total allocation after applying
	StoredPages int
}

// WriteDeltaTo serializes every stored page with ID >= from, plus the
// current allocation size, in the deterministic ascending-ID layout of the
// full image writer. Like WriteTo it snapshots only the geometry under
// the structural lock; page enumeration and reads go to the media
// backend, streamed through a page-aligned bufio.Writer.
func (d *Disk) WriteDeltaTo(w io.Writer, from PageID) (int64, error) {
	d.mu.RLock()
	allocated := d.allocated
	pageSize := d.pageSize
	d.mu.RUnlock()
	if from < 0 || from > allocated {
		return 0, fmt.Errorf("%w: watermark %d outside [0, %d]", ErrBadDelta, from, allocated)
	}
	ids := d.media.StoredPages(from)

	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), imageBufSize(pageSize))
	var written int64
	put := func(buf []byte) error {
		n, err := bw.Write(buf)
		written += int64(n)
		return err
	}
	var hdr [deltaHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], deltaMagic)
	binary.LittleEndian.PutUint16(hdr[4:], deltaVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(pageSize))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(from))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(allocated))
	if err := put(hdr[:]); err != nil {
		return written, err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(ids)))
	if err := put(cnt[:]); err != nil {
		return written, err
	}
	var idbuf [8]byte
	page := make([]byte, pageSize)
	for _, id := range ids {
		binary.LittleEndian.PutUint64(idbuf[:], uint64(id))
		if err := put(idbuf[:]); err != nil {
			return written, err
		}
		if err := d.media.ReadPage(id, page); err != nil {
			return written, fmt.Errorf("storage: delta write: page %d: %w", id, err)
		}
		if err := put(page); err != nil {
			return written, err
		}
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	n, err := w.Write(sum[:])
	written += int64(n)
	return written, err
}

// parseDelta validates a delta image (checksum, geometry, page range) and
// returns its info plus the raw body positioned at the page list.
func parseDelta(raw []byte) (DeltaInfo, []byte, error) {
	var info DeltaInfo
	if len(raw) < deltaHeaderSize+8+4 {
		return info, nil, fmt.Errorf("%w: %d bytes is too short", ErrBadDelta, len(raw))
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return info, nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrBadDelta, got, want)
	}
	if binary.LittleEndian.Uint32(body[0:]) != deltaMagic {
		return info, nil, fmt.Errorf("%w: magic mismatch", ErrBadDelta)
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != deltaVersion {
		return info, nil, fmt.Errorf("%w: unsupported version %d", ErrBadDelta, v)
	}
	info.PageSize = int(binary.LittleEndian.Uint32(body[8:]))
	info.From = PageID(binary.LittleEndian.Uint64(body[12:]))
	info.Allocated = PageID(binary.LittleEndian.Uint64(body[20:]))
	if info.PageSize <= 0 || info.PageSize > 1<<26 || info.From < 0 || info.Allocated < info.From {
		return info, nil, fmt.Errorf("%w: implausible geometry (pageSize=%d, from=%d, allocated=%d)",
			ErrBadDelta, info.PageSize, info.From, info.Allocated)
	}
	stored := binary.LittleEndian.Uint64(body[deltaHeaderSize:])
	if stored > uint64(info.Allocated-info.From) {
		return info, nil, fmt.Errorf("%w: %d stored pages exceed the %d-page window",
			ErrBadDelta, stored, info.Allocated-info.From)
	}
	info.StoredPages = int(stored)
	need := uint64(deltaHeaderSize) + 8 + stored*uint64(8+info.PageSize)
	if uint64(len(body)) != need {
		return info, nil, fmt.Errorf("%w: body is %d bytes, want %d", ErrBadDelta, len(body), need)
	}
	return info, body[deltaHeaderSize+8:], nil
}

// ReadDeltaInfo validates a serialized epoch delta (checksum and
// structure) without a disk to apply it to — the fsck path.
func ReadDeltaInfo(r io.Reader) (DeltaInfo, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return DeltaInfo{}, fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	info, _, err := parseDelta(raw)
	return info, err
}

// ApplyDelta applies a serialized epoch delta to the disk. The delta must
// chain exactly: its watermark must equal the disk's current allocation
// (deltas are applied in epoch order on top of the base image), its page
// size must match, and every stored page must fall inside the window. On
// success the disk's allocation advances to the delta's.
func (d *Disk) ApplyDelta(r io.Reader) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	info, pages, err := parseDelta(raw)
	if err != nil {
		return err
	}
	d.mu.Lock()
	if info.PageSize != d.pageSize {
		d.mu.Unlock()
		return fmt.Errorf("%w: page size %d, disk has %d", ErrBadDelta, info.PageSize, d.pageSize)
	}
	if info.From != d.allocated {
		from := d.allocated
		d.mu.Unlock()
		return fmt.Errorf("%w: watermark %d does not chain onto %d allocated pages",
			ErrBadDelta, info.From, from)
	}
	d.allocated = info.Allocated
	d.mu.Unlock()
	// Media writes outside the lock (interface calls). ApplyDelta runs on
	// the open path before the database serves traffic, so the window
	// between advancing the watermark and landing the pages is benign.
	if err := d.media.Allocate(int64(info.Allocated)); err != nil {
		return fmt.Errorf("%w: media allocate: %v", ErrBadDelta, err)
	}
	off := 0
	for i := 0; i < info.StoredPages; i++ {
		id := PageID(binary.LittleEndian.Uint64(pages[off:]))
		off += 8
		if id < info.From || id >= info.Allocated {
			return fmt.Errorf("%w: page id %d outside window [%d, %d)", ErrBadDelta, id, info.From, info.Allocated)
		}
		if err := d.media.WritePage(id, pages[off:off+info.PageSize]); err != nil {
			return fmt.Errorf("%w: media write page %d: %v", ErrBadDelta, id, err)
		}
		off += info.PageSize
	}
	return nil
}
