package storage_test

// Backend differential coverage: the same Disk workload over the
// simulated in-memory media and the real file media must be
// byte-identical — page reads, serialized images, epoch deltas, clones —
// with the only divergence being MeasuredTime (zero on simulated media,
// positive on real I/O).

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/filestore"
)

// diskPair builds an in-memory disk and a file-backed disk with the same
// geometry.
func diskPair(t *testing.T, pageSize int) (*storage.Disk, *storage.Disk) {
	t.Helper()
	mem := storage.NewDisk(pageSize, storage.DefaultCostModel())
	fs, err := filestore.Create(filepath.Join(t.TempDir(), "pages.dat"), pageSize, filestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fd := storage.NewDiskOn(fs, storage.DefaultCostModel())
	t.Cleanup(func() { _ = fd.Close() })
	return mem, fd
}

// fill writes the same page workload to both disks.
func fill(t *testing.T, disks ...*storage.Disk) {
	t.Helper()
	for _, d := range disks {
		base := d.AllocPages(64)
		for i := 0; i < 64; i += 2 {
			buf := bytes.Repeat([]byte{byte(i + 1)}, d.PageSize())
			if err := d.WritePage(base+storage.PageID(i), buf); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestBackendsReadIdentical(t *testing.T) {
	mem, fd := diskPair(t, 128)
	fill(t, mem, fd)
	for i := storage.PageID(0); i < 64; i++ {
		a, err := mem.ReadPage(i, storage.ClassLight)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fd.ReadPage(i, storage.ClassLight)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("page %d differs across backends", i)
		}
	}
	a, err := mem.ReadBytes(3, 20*128, storage.ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fd.ReadBytes(3, 20*128, storage.ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("extent read differs across backends")
	}
	// Simulated accounting is identical; only MeasuredTime diverges.
	ms, fsx := mem.Stats(), fd.Stats()
	if ms.MeasuredTime != 0 {
		t.Fatalf("simulated backend charged MeasuredTime %v", ms.MeasuredTime)
	}
	if fsx.MeasuredTime <= 0 {
		t.Fatal("file backend charged no MeasuredTime")
	}
	ms.MeasuredTime, fsx.MeasuredTime = 0, 0
	if ms != fsx {
		t.Fatalf("simulated accounting diverged:\nmem  %+v\nfile %+v", ms, fsx)
	}
	if mem.Timed() || !fd.Timed() {
		t.Fatal("Timed misreported")
	}
}

func TestBackendsImageIdentical(t *testing.T) {
	mem, fd := diskPair(t, 128)
	fill(t, mem, fd)
	var a, b bytes.Buffer
	if _, err := mem.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := fd.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialized images differ across backends")
	}
	// The delta writer must agree too.
	a.Reset()
	b.Reset()
	if _, err := mem.WriteDeltaTo(&a, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := fd.WriteDeltaTo(&b, 32); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialized deltas differ across backends")
	}
}

func TestImageRoundTripIntoFileBackend(t *testing.T) {
	mem, _ := diskPair(t, 128)
	fill(t, mem)
	var img bytes.Buffer
	if _, err := mem.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fd, err := storage.ReadImageInto(bytes.NewReader(img.Bytes()), storage.DefaultCostModel(),
		func(pageSize int, pages int64) (storage.Backend, error) {
			return filestore.Create(filepath.Join(dir, "pages.dat"), pageSize, filestore.Options{})
		})
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	if fd.NumPages() != mem.NumPages() {
		t.Fatalf("allocation %d, want %d", fd.NumPages(), mem.NumPages())
	}
	var img2 bytes.Buffer
	if _, err := fd.WriteTo(&img2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img.Bytes(), img2.Bytes()) {
		t.Fatal("image round trip through file backend not byte-identical")
	}
}

// TestCloneFileBacked extends the Clone differential to backend-backed
// stores: a clone of a file-backed disk shares content at clone time and
// is isolated afterwards, exactly like the simulated clone.
func TestCloneFileBacked(t *testing.T) {
	_, fd := diskPair(t, 128)
	fill(t, fd)
	c, err := fd.Clone()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var a, b bytes.Buffer
	if _, err := fd.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("file-backed clone image differs from source")
	}
	if err := fd.WritePage(0, bytes.Repeat([]byte{0xEE}, 128)); err != nil {
		t.Fatal(err)
	}
	p, err := c.ReadPage(0, storage.ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] == 0xEE {
		t.Fatal("source write leaked into file-backed clone")
	}
	if err := c.WritePage(1, bytes.Repeat([]byte{0xDD}, 128)); err != nil {
		t.Fatal(err)
	}
	p, err = fd.ReadPage(1, storage.ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] == 0xDD {
		t.Fatal("clone write leaked into file-backed source")
	}
	if n := c.ReleasePages([]storage.PageID{2}); n != 1 {
		t.Fatalf("clone released %d pages, want 1", n)
	}
}

// TestPrefetcherQuiesceDrainsRealIO is the race test for the Quiesce
// fix: on a timed backend warms run on background workers, and Quiesce
// must fence their real-I/O completions, not just the resolver. Run
// under -race this also exercises the warm fan-out for data races.
func TestPrefetcherQuiesceDrainsRealIO(t *testing.T) {
	_, fd := diskPair(t, 128)
	fill(t, fd)
	fd.SetCacheSize(256)
	p := storage.NewPrefetcher(fd, 64)
	defer p.Close()

	const jobs = 24
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < jobs/3; j++ {
				pages := make([]storage.PageID, 8)
				for i := range pages {
					pages[i] = storage.PageID((g*8 + j + i) % 64)
				}
				p.Enqueue(func(r storage.Reader) ([]storage.PageID, error) {
					return pages, nil
				})
			}
		}(g)
	}
	wg.Wait()
	p.Quiesce()
	// Every accepted job's warms must have completed by now: pending is
	// zero and the warm counter is final. Dropped jobs never warmed.
	warmedAt := p.Warmed()
	if warmedAt == 0 && p.Dropped() < jobs {
		t.Fatal("no pages warmed despite accepted jobs")
	}
	p.Quiesce()
	if got := p.Warmed(); got != warmedAt {
		t.Fatalf("warms completed after Quiesce returned: %d -> %d", warmedAt, got)
	}
}
