package storage

import (
	"errors"
	"testing"
)

func faultDisk(t *testing.T, pages int) (*Disk, PageID) {
	t.Helper()
	d := NewDisk(0, DefaultCostModel())
	start := d.AllocPages(pages)
	buf := make([]byte, d.PageSize())
	for i := 0; i < pages; i++ {
		buf[0] = byte(i)
		if err := d.WritePage(start+PageID(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	return d, start
}

// TestFaultDeterminism: the same seed over the same read sequence injects
// the same faults — replayed experiments fail in the same places.
func TestFaultDeterminism(t *testing.T) {
	run := func() ([]bool, int64) {
		d, start := faultDisk(t, 64)
		d.InjectFaults(FaultConfig{Seed: 42, PageProb: 0.2, TransientFrac: 0.5})
		outcomes := make([]bool, 64)
		for i := range outcomes {
			_, err := d.ReadPage(start+PageID(i), ClassLight)
			outcomes[i] = err == nil
		}
		return outcomes, d.Stats().Retries
	}
	a, ra := run()
	b, rb := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("page %d: outcome differs between identical runs", i)
		}
	}
	if ra != rb {
		t.Fatalf("retries differ: %d vs %d", ra, rb)
	}
}

// TestTransientFaultsAbsorbed: with a transient-only policy every read
// succeeds; the only trace is a nonzero retry count and extra simulated
// time.
func TestTransientFaultsAbsorbed(t *testing.T) {
	d, start := faultDisk(t, 64)
	d.InjectFaults(FaultConfig{Seed: 7, PageProb: 1, TransientFrac: 1})
	for i := 0; i < 64; i++ {
		if _, err := d.ReadPage(start+PageID(i), ClassLight); err != nil {
			t.Fatalf("page %d: transient fault surfaced: %v", i, err)
		}
	}
	if d.Stats().Retries == 0 {
		t.Fatal("no retries counted")
	}
}

// TestPermanentFaultSticky: a probabilistic permanent fault keeps failing
// on re-read (no lucky second draw) until the page is rewritten.
func TestPermanentFaultSticky(t *testing.T) {
	d, start := faultDisk(t, 8)
	d.InjectFaults(FaultConfig{Seed: 1, PageProb: 1, TransientFrac: 0})
	var ce *CorruptError
	if _, err := d.ReadPage(start, ClassLight); !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CorruptError", err)
	} else if ce.Page != start {
		t.Fatalf("failing page = %d, want %d", ce.Page, start)
	}
	d.ClearFaults()
	d.InjectFaults(FaultConfig{Seed: 1, PageProb: 0})
	// Re-injecting with zero probability must not matter: sticky state
	// lives in the policy, so the fresh policy reads clean...
	if _, err := d.ReadPage(start, ClassLight); err != nil {
		t.Fatalf("fresh policy still fails: %v", err)
	}
	// ...but under one continuous policy the same page stays dead.
	d.InjectFaults(FaultConfig{Seed: 1, PageProb: 1, TransientFrac: 0})
	if _, err := d.ReadPage(start, ClassLight); err == nil {
		t.Fatal("permanent fault did not fire")
	}
	if _, err := d.ReadPage(start, ClassLight); err == nil {
		t.Fatal("permanent fault was not sticky")
	}
}

// TestTargetedTransientClears: a planted transient fault fails exactly the
// requested number of attempts, then the page reads clean with no retries.
func TestTargetedTransientClears(t *testing.T) {
	d, start := faultDisk(t, 8)
	d.InjectPageFault(start+2, FaultTransient, 2)
	before := d.Stats()
	if _, err := d.ReadPage(start+2, ClassLight); err != nil {
		t.Fatalf("transient within retry budget surfaced: %v", err)
	}
	if got := d.Stats().Retries - before.Retries; got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	before = d.Stats()
	if _, err := d.ReadPage(start+2, ClassLight); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Retries != before.Retries {
		t.Fatal("cleared fault still caused retries")
	}
}

// TestTargetedTransientExceedsBudget: more failures than MaxRetries allows
// surfaces as CorruptError, but the fault still wears down and later
// clears.
func TestTargetedTransientExceedsBudget(t *testing.T) {
	d, start := faultDisk(t, 8)
	d.InjectFaults(FaultConfig{MaxRetries: 2})
	d.InjectPageFault(start, FaultTransient, 5)
	if _, err := d.ReadPage(start, ClassLight); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	// 3 attempts consumed; 2 remain.
	if _, err := d.ReadPage(start, ClassLight); err != nil {
		t.Fatalf("remaining transient failures not absorbed: %v", err)
	}
}

// TestTargetedPermanentUntilRewrite: a planted permanent fault survives
// any number of reads and clears only when the page is rewritten.
func TestTargetedPermanentUntilRewrite(t *testing.T) {
	d, start := faultDisk(t, 8)
	d.InjectPageFault(start+1, FaultPermanent, 0)
	for i := 0; i < 3; i++ {
		if _, err := d.ReadPage(start+1, ClassLight); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("read %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	if err := d.WritePage(start+1, make([]byte, d.PageSize())); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadPage(start+1, ClassLight); err != nil {
		t.Fatalf("rewritten page still faulty: %v", err)
	}
}

// TestQuarantineFailFast: reading a quarantined page fails immediately
// with no media cost — no seek, no transfer, no retries.
func TestQuarantineFailFast(t *testing.T) {
	d, start := faultDisk(t, 8)
	d.Quarantine(start + 3)
	if !d.IsQuarantined(start + 3) {
		t.Fatal("page not quarantined")
	}
	if d.NumQuarantined() != 1 {
		t.Fatalf("NumQuarantined = %d, want 1", d.NumQuarantined())
	}
	before := d.Stats()
	_, err := d.ReadPage(start+3, ClassLight)
	var ce *CorruptError
	if !errors.As(err, &ce) || !ce.Quarantined {
		t.Fatalf("err = %v, want quarantined CorruptError", err)
	}
	after := d.Stats()
	if after != before {
		t.Fatalf("quarantined read charged media cost: %+v vs %+v", after, before)
	}
	// Extent reads refuse before charging anything, too.
	before = after
	if err := d.ReadExtent(start, 8, ClassHeavy); !errors.As(err, &ce) || !ce.Quarantined {
		t.Fatalf("extent err = %v, want quarantined CorruptError", err)
	}
	if d.Stats() != before {
		t.Fatal("quarantined extent read charged media cost")
	}
	d.ClearQuarantine()
	if _, err := d.ReadPage(start+3, ClassLight); err != nil {
		t.Fatal(err)
	}
}

// TestWritePageClearsCorruption: rewriting a page clears the corruption
// mark, the quarantine, and injected fault state — the repair path works.
func TestWritePageClearsCorruption(t *testing.T) {
	d, start := faultDisk(t, 8)
	d.CorruptPage(start)
	d.Quarantine(start)
	if _, err := d.ReadPage(start, ClassLight); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if err := d.WritePage(start, make([]byte, d.PageSize())); err != nil {
		t.Fatal(err)
	}
	if d.IsQuarantined(start) {
		t.Fatal("rewrite left the page quarantined")
	}
	if _, err := d.ReadPage(start, ClassLight); err != nil {
		t.Fatalf("rewritten page still corrupt: %v", err)
	}
}
