package storage

// Buffer pool: an optional sharded LRU cache over disk pages with a
// pin/unpin discipline. The paper's prototype deliberately runs without
// node caching ("None of the two systems caches the tree nodes in the
// queries", §5.4), so the pool is disabled by default; the ablation suite
// (DESIGN.md D6) and the concurrent serving path (DESIGN.md §10) measure
// what a buffer manager adds.
//
// Admission is class-aware: light-class (index) pages — tree nodes,
// V-pages, V-page-index segments — are always admitted, because they are
// small, hot, and shared across sessions. Heavy-class (model payload)
// pages are admitted only when PoolConfig.AdmitHeavy is set; payload
// residency is normally governed by the walkthrough's semantic cache,
// matching the paper's architecture, and letting multi-megabyte payload
// extents wash through the pool would evict the index working set.
//
// Concurrency: the pool is safe for concurrent use. It is split into
// power-of-two shards, each with its own mutex, LRU list and map, so
// concurrent sessions hitting disjoint pages do not serialize. A frame
// with a positive pin count is never evicted; Release drops the pin.
// Page data slices are immutable once inserted (WritePage invalidates
// rather than mutates), so a data slice returned by a lookup stays valid
// after eviction — pinning is about guaranteed residency (and honest
// memory accounting), not use-after-free.

import (
	"sync"
	"sync/atomic"
)

// PoolConfig configures the disk's buffer pool.
type PoolConfig struct {
	// Pages is the pool capacity in disk pages (<= 0 disables the pool).
	Pages int
	// Shards is the number of independently locked LRU shards (rounded up
	// to a power of two; 0 = defaultPoolShards). More shards mean less
	// lock contention between concurrent sessions.
	Shards int
	// AdmitHeavy also caches heavy-class (payload) pages. Off by default:
	// payload residency belongs to the walkthrough's semantic cache.
	AdmitHeavy bool
}

const defaultPoolShards = 16

// PoolStats is the buffer pool's accounting snapshot, split by I/O class.
type PoolStats struct {
	LightHits, LightMisses int64
	HeavyHits, HeavyMisses int64
	Evictions              int64
	// PrefetchHits counts demand reads served by a frame the background
	// prefetcher loaded; PrefetchWasted counts prefetched frames evicted
	// or invalidated before any demand read used them.
	PrefetchHits, PrefetchWasted int64
	// Pages and Pinned are the current resident and pinned frame counts;
	// Capacity is the configured limit.
	Pages, Pinned, Capacity int
	// ResidentBytes is the on-disk (encoded) byte footprint of the
	// resident frames. With the codec V-page layout the decoded working
	// set is larger than this — the schemes report that side via their
	// DecodedResidentBytes methods.
	ResidentBytes int64
}

// Hits returns total hits across classes.
func (p PoolStats) Hits() int64 { return p.LightHits + p.HeavyHits }

// Misses returns total misses across classes.
func (p PoolStats) Misses() int64 { return p.LightMisses + p.HeavyMisses }

// bufFrame is one cached page copy with its pin count.
type bufFrame struct {
	id   PageID
	data []byte
	pins int
	// prefetched marks a frame loaded by the background prefetcher that
	// no demand read has used yet; the first demand hit clears it and
	// counts a prefetch hit, eviction while still set counts it wasted.
	prefetched bool
	prev, next *bufFrame
}

// poolShard is one independently locked LRU. Shards hold no counters:
// every hit/miss/eviction outcome is returned to the caller and charged
// into Disk.stats under the one statsMu, so a Stats snapshot is mutually
// consistent even mid-run (DESIGN.md §14).
type poolShard struct {
	mu       sync.Mutex
	capacity int
	frames   map[PageID]*bufFrame
	head     *bufFrame // most recently used
	tail     *bufFrame // least recently used
}

// bufferPool is a sharded LRU of page copies.
type bufferPool struct {
	cfg    PoolConfig
	shards []*poolShard
	mask   PageID
}

func newBufferPool(cfg PoolConfig) *bufferPool {
	n := cfg.Shards
	if n <= 0 {
		n = defaultPoolShards
	}
	// Round up to a power of two so shard selection is a mask. Sharding
	// makes replacement approximate (LRU per shard, not global), so small
	// pools collapse to fewer shards — exact LRU matters more than lock
	// spread when capacity is tiny.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	n = pow
	for n > 1 && cfg.Pages/n < 8 {
		n >>= 1
	}
	b := &bufferPool{cfg: cfg, shards: make([]*poolShard, n), mask: PageID(n - 1)}
	per := cfg.Pages / n
	extra := cfg.Pages % n
	for i := range b.shards {
		c := per
		if i < extra {
			c++
		}
		b.shards[i] = &poolShard{capacity: c, frames: make(map[PageID]*bufFrame)}
	}
	return b
}

// caches reports whether the pool admits pages of the given class.
func (b *bufferPool) caches(class Class) bool {
	return class == ClassLight || b.cfg.AdmitHeavy
}

func (b *bufferPool) shard(id PageID) *poolShard { return b.shards[id&b.mask] }

// get returns the cached copy of id, promoting it to MRU. prefetched
// reports whether this hit is the first demand use of a prefetcher-warmed
// frame; the caller charges the hit/miss and prefetch-hit counters.
func (b *bufferPool) get(id PageID, class Class) (data []byte, ok, prefetched bool) {
	s := b.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frames[id]
	if !ok {
		return nil, false, false
	}
	if f.prefetched {
		f.prefetched = false
		prefetched = true
	}
	s.moveToFront(f)
	return f.data, true, prefetched
}

// put inserts (or refreshes) a page copy, evicting the LRU unpinned frame
// if the shard is full. Pinned frames are never evicted; if every frame is
// pinned the shard temporarily exceeds capacity rather than stall. The
// returned eviction/wasted-prefetch counts are charged by the caller.
func (b *bufferPool) put(id PageID, data []byte) (evictions, wasted int64) {
	s := b.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity <= 0 {
		return 0, 0
	}
	if f, ok := s.frames[id]; ok {
		f.data = data
		s.moveToFront(f)
		return 0, 0
	}
	f := &bufFrame{id: id, data: data}
	s.frames[id] = f
	s.pushFront(f)
	for len(s.frames) > s.capacity {
		victim := s.tail
		for victim != nil && victim.pins > 0 {
			victim = victim.prev
		}
		if victim == nil {
			break // every frame pinned: run over capacity
		}
		s.unlink(victim)
		delete(s.frames, victim.id)
		evictions++
		if victim.prefetched {
			wasted++
		}
	}
	return evictions, wasted
}

// markPrefetched flags a resident frame as loaded by the background
// prefetcher (no-op if the page is not resident).
func (b *bufferPool) markPrefetched(id PageID) {
	s := b.shard(id)
	s.mu.Lock()
	if f, ok := s.frames[id]; ok {
		f.prefetched = true
	}
	s.mu.Unlock()
}

// pin looks up id and, on a hit, increments its pin count so the frame
// cannot be evicted until release. Pin does not count a hit or miss — it
// is a residency guarantee, not an I/O.
func (b *bufferPool) pin(id PageID) ([]byte, bool) {
	s := b.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frames[id]
	if !ok {
		return nil, false
	}
	f.pins++
	s.moveToFront(f)
	return f.data, true
}

// release drops one pin from id (no-op if the frame is gone or unpinned).
func (b *bufferPool) release(id PageID) {
	s := b.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.frames[id]; ok && f.pins > 0 {
		f.pins--
	}
}

// invalidate drops a page (called on writes, corruption marks and
// quarantines so readers never see stale data). A pinned frame is dropped
// from the map too: the pin holder keeps its immutable data slice, but no
// future lookup may serve the superseded copy. The returned wasted count
// (an invalidated prefetch-warmed frame) is charged by the caller.
func (b *bufferPool) invalidate(id PageID) (wasted int64) {
	s := b.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.frames[id]; ok {
		s.unlink(f)
		delete(s.frames, id)
		if f.prefetched {
			wasted++
		}
	}
	return wasted
}

// gauges walks the shards for the structural snapshot: resident and pinned
// frame counts and byte footprint. The flow counters (hits, misses,
// evictions, prefetch outcomes) live in Disk.stats, not here.
func (b *bufferPool) gauges() PoolStats {
	var out PoolStats
	out.Capacity = b.cfg.Pages
	for _, s := range b.shards {
		s.mu.Lock()
		out.Pages += len(s.frames)
		for f := s.head; f != nil; f = f.next {
			if f.pins > 0 {
				out.Pinned++
			}
			out.ResidentBytes += int64(len(f.data))
		}
		s.mu.Unlock()
	}
	return out
}

func (s *poolShard) pushFront(f *bufFrame) {
	f.prev = nil
	f.next = s.head
	if s.head != nil {
		s.head.prev = f
	}
	s.head = f
	if s.tail == nil {
		s.tail = f
	}
}

func (s *poolShard) unlink(f *bufFrame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		s.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		s.tail = f.prev
	}
	f.prev, f.next = nil, nil
}

func (s *poolShard) moveToFront(f *bufFrame) {
	if s.head == f {
		return
	}
	s.unlink(f)
	s.pushFront(f)
}

// SetCacheSize installs (or removes, with n <= 0) a buffer pool of n
// pages with the default shard count and light-only admission. Cached
// reads cost no simulated I/O — the cost model charges seek and transfer
// only on pool misses.
func (d *Disk) SetCacheSize(n int) {
	d.ConfigurePool(PoolConfig{Pages: n})
}

// ConfigurePool installs a buffer pool with explicit sharding and
// admission policy, or removes it with cfg.Pages <= 0. Replacing a pool
// drops its contents; the flow counters live in the disk's Stats and
// persist across reconfiguration (ResetStats zeroes them).
func (d *Disk) ConfigurePool(cfg PoolConfig) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cfg.Pages <= 0 {
		d.pool = nil
		return
	}
	d.pool = newBufferPool(cfg)
}

// PoolEnabled reports whether a buffer pool is installed.
func (d *Disk) PoolEnabled() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.pool != nil
}

// CacheStats reports total buffer-pool hit/miss counts (zeros when
// disabled). See PoolStats for the per-class split.
func (d *Disk) CacheStats() (hits, misses int64) {
	s := d.PoolStats()
	return s.Hits(), s.Misses()
}

// PoolStats returns the pool's per-class accounting (zero when disabled).
// The flow counters (hits, misses, evictions, prefetch outcomes) come from
// one snapshot of the disk's stats lock, so they are mutually consistent
// with each other and with Stats(); the structural gauges (resident pages,
// pins, bytes) are read from the shards afterwards.
func (d *Disk) PoolStats() PoolStats {
	d.mu.RLock()
	pool := d.pool
	d.mu.RUnlock()
	if pool == nil {
		return PoolStats{}
	}
	out := pool.gauges()
	d.statsMu.Lock()
	s := d.stats
	d.statsMu.Unlock()
	out.LightHits, out.LightMisses = s.PoolLightHits, s.PoolLightMisses
	out.HeavyHits, out.HeavyMisses = s.PoolHeavyHits, s.PoolHeavyMisses
	out.Evictions = s.PoolEvictions
	out.PrefetchHits, out.PrefetchWasted = s.PrefetchHits, s.PrefetchWasted
	return out
}

// PinnedPage is a page held resident in the buffer pool. The Data slice
// is immutable; Release drops the residency guarantee. Release is
// idempotent and safe to call concurrently: exactly one call decrements
// the pin count, every other is a no-op.
type PinnedPage struct {
	d        *Disk
	id       PageID
	released atomic.Bool
	// Data is the page content at pin time.
	Data []byte
}

// Release unpins the page, making its frame evictable again. The
// compare-and-swap guarantees a double (or racing) Release cannot
// decrement the frame's pin count twice — an extra decrement would let
// the pool evict a frame some other holder still relies on.
func (p *PinnedPage) Release() {
	if p == nil || !p.released.CompareAndSwap(false, true) {
		return
	}
	p.d.mu.RLock()
	pool := p.d.pool
	p.d.mu.RUnlock()
	if pool != nil {
		pool.release(p.id)
	}
}

// PinPage reads a page (through the pool, charging I/O only on a miss)
// and pins its frame so it stays resident until Release. With no pool
// installed it degrades to a plain ReadPage — the returned page is valid
// but nothing is held.
func (d *Disk) PinPage(id PageID, class Class) (*PinnedPage, error) {
	return d.pinPage(id, class, nil)
}

func (d *Disk) pinPage(id PageID, class Class, sink *Client) (*PinnedPage, error) {
	d.mu.RLock()
	pool := d.pool
	d.mu.RUnlock()
	if pool != nil && pool.caches(class) {
		if data, ok := pool.pin(id); ok {
			return &PinnedPage{d: d, id: id, Data: data}, nil
		}
	}
	data, err := d.readPage(id, class, sink)
	if err != nil {
		return nil, err
	}
	out := &PinnedPage{d: d, id: id, Data: data}
	if pool != nil && pool.caches(class) {
		if pinned, ok := pool.pin(id); ok {
			out.Data = pinned
		} else {
			out.released.Store(true) // not resident (pool races or admission off)
		}
	} else {
		out.released.Store(true)
	}
	return out, nil
}
