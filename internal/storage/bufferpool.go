package storage

// Buffer pool: an optional LRU cache over light-class (index) pages. The
// paper's prototype deliberately runs without node caching ("None of the
// two systems caches the tree nodes in the queries", §5.4), so the pool is
// disabled by default; the ablation suite (DESIGN.md D6) measures what a
// buffer manager would add. Heavy-class payload pages are intentionally
// not cached here — model data residency is governed by the walkthrough's
// semantic cache, matching the paper's architecture.

// bufferPool is a doubly-linked LRU of page copies.
type bufferPool struct {
	capacity int
	pages    map[PageID]*bufNode
	head     *bufNode // most recently used
	tail     *bufNode // least recently used
	hits     int64
	misses   int64
}

type bufNode struct {
	id         PageID
	data       []byte
	prev, next *bufNode
}

func newBufferPool(capacity int) *bufferPool {
	return &bufferPool{
		capacity: capacity,
		pages:    make(map[PageID]*bufNode, capacity),
	}
}

// get returns the cached copy of id, promoting it to MRU.
func (b *bufferPool) get(id PageID) ([]byte, bool) {
	n, ok := b.pages[id]
	if !ok {
		b.misses++
		return nil, false
	}
	b.hits++
	b.moveToFront(n)
	return n.data, true
}

// put inserts (or refreshes) a page copy, evicting the LRU entry if full.
func (b *bufferPool) put(id PageID, data []byte) {
	if b.capacity <= 0 {
		return
	}
	if n, ok := b.pages[id]; ok {
		n.data = data
		b.moveToFront(n)
		return
	}
	n := &bufNode{id: id, data: data}
	b.pages[id] = n
	b.pushFront(n)
	if len(b.pages) > b.capacity {
		lru := b.tail
		b.unlink(lru)
		delete(b.pages, lru.id)
	}
}

// invalidate drops a page (called on writes so readers never see stale
// data).
func (b *bufferPool) invalidate(id PageID) {
	if n, ok := b.pages[id]; ok {
		b.unlink(n)
		delete(b.pages, id)
	}
}

func (b *bufferPool) pushFront(n *bufNode) {
	n.prev = nil
	n.next = b.head
	if b.head != nil {
		b.head.prev = n
	}
	b.head = n
	if b.tail == nil {
		b.tail = n
	}
}

func (b *bufferPool) unlink(n *bufNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (b *bufferPool) moveToFront(n *bufNode) {
	if b.head == n {
		return
	}
	b.unlink(n)
	b.pushFront(n)
}

// SetCacheSize installs (or removes, with n <= 0) an LRU buffer pool of n
// light-class pages. Cached reads cost no simulated I/O.
func (d *Disk) SetCacheSize(n int) {
	if n <= 0 {
		d.pool = nil
		return
	}
	d.pool = newBufferPool(n)
}

// CacheStats reports buffer-pool hit/miss counts (zeros when disabled).
func (d *Disk) CacheStats() (hits, misses int64) {
	if d.pool == nil {
		return 0, 0
	}
	return d.pool.hits, d.pool.misses
}
