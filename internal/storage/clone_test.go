package storage

import (
	"bytes"
	"testing"
)

func TestCloneSharesContentIsolatesDynamics(t *testing.T) {
	d := NewDisk(64, DefaultCostModel())
	base := d.AllocPages(4)
	if err := d.WritePage(base, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(base+1, []byte("beta")); err != nil {
		t.Fatal(err)
	}
	d.CorruptPage(base + 2)
	d.SetCacheSize(8)
	if _, err := d.ReadPage(base, ClassLight); err != nil {
		t.Fatal(err)
	}

	c, err := d.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if c.PageSize() != d.PageSize() || c.NumPages() != d.NumPages() {
		t.Fatalf("layout mismatch: %d/%d pages, %d/%d bytes",
			c.NumPages(), d.NumPages(), c.PageSize(), d.PageSize())
	}
	if s := c.Stats(); s.Reads != 0 || s.SimTime != 0 {
		t.Fatalf("clone inherited stats: %+v", s)
	}
	if c.PoolEnabled() {
		t.Fatal("clone inherited the buffer pool")
	}
	p, err := c.ReadPage(base, ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p[:5], []byte("alpha")) {
		t.Fatalf("clone content mismatch: %q", p[:5])
	}
	if _, err := c.ReadPage(base+2, ClassLight); err == nil {
		t.Fatal("clone lost the corruption mark")
	}
	// Reads on the clone charge the clone only.
	if s := d.Stats(); s.Reads != 1 {
		t.Fatalf("clone reads leaked into source stats: %+v", s)
	}

	// Writes after the clone are invisible across the boundary, both ways.
	if err := d.WritePage(base+1, []byte("GAMMA")); err != nil {
		t.Fatal(err)
	}
	p, err = c.ReadPage(base+1, ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p[:4], []byte("beta")) {
		t.Fatalf("source write leaked into clone: %q", p[:5])
	}
	if err := c.WritePage(base, []byte("DELTA")); err != nil {
		t.Fatal(err)
	}
	p, err = d.ReadPage(base, ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p[:5], []byte("alpha")) {
		t.Fatalf("clone write leaked into source: %q", p[:5])
	}
}

func TestReleasePages(t *testing.T) {
	d := NewDisk(32, DefaultCostModel())
	base := d.AllocPages(3)
	for i := 0; i < 3; i++ {
		if err := d.WritePage(base+PageID(i), []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	before := d.ResidentBytes()
	if n := d.ReleasePages([]PageID{base + 1, base + 2, base + 2}); n != 2 {
		t.Fatalf("released %d pages, want 2", n)
	}
	if got := d.ResidentBytes(); got != before-64 {
		t.Fatalf("resident bytes %d, want %d", got, before-64)
	}
	if d.NumPages() != 3 {
		t.Fatalf("release changed the layout: %d pages", d.NumPages())
	}
	p, err := d.ReadPage(base+1, ClassLight)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0 {
		t.Fatalf("released page reads back %d, want zero fill", p[0])
	}
}
