package storage

// Reader is the read-side surface of the simulated disk, implemented by
// both *Disk (global accounting only) and *Client (per-session
// attribution on top). Query-path code takes a Reader so one open
// database can serve many sessions, each charged exactly for its own
// traffic.
type Reader interface {
	// ReadPage returns the content of one page, charging one page I/O of
	// the given class (unless served by the buffer pool).
	ReadPage(id PageID, class Class) ([]byte, error)
	// ReadBytes reads length bytes starting at page start, charged as one
	// sequential run.
	ReadBytes(start PageID, length int, class Class) ([]byte, error)
	// ReadExtent charges n sequential page reads without materializing
	// data.
	ReadExtent(start PageID, n int, class Class) error
	// PageSize returns the disk page size in bytes.
	PageSize() int
	// PagesFor returns how many pages hold n bytes.
	PagesFor(n int64) int
}

var (
	_ Reader = (*Disk)(nil)
	_ Reader = (*Client)(nil)
)
