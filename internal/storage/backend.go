package storage

// Backend is the page-media contract beneath a Disk (DESIGN.md §17). The
// Disk owns policy — cost accounting, light/heavy classification, the
// buffer pool, fault injection, quarantine, per-session attribution — and
// delegates the physical bytes to a Backend: the in-memory simulated
// media (NewMemBackend, the historical behavior) or a real OS file
// (package filestore) with mmap/pread reads and fsync durability.
//
// Contract:
//
//   - Pages are pageSize bytes; page IDs are dense from 0. Pages inside
//     the allocated range that were never written read back zero-filled
//     (sparse extents).
//   - ReadPages is vectored: it fills dst with n consecutive pages in one
//     media operation — a single pread/memcpy on real hardware — which is
//     what turns the read-coalescing and prefetch batches into single
//     syscalls.
//   - WritePage takes ownership of data (exactly one full page); callers
//     never mutate the slice afterwards. This preserves the zero-copy
//     slice-sharing that Clone and the image writers rely on.
//   - Allocate is grow-only: a call with a smaller total than a previous
//     one is a no-op, so concurrent growers may land out of order.
//   - The Disk performs all range, quarantine, and fault checks before
//     touching the media; a Backend only moves bytes.
//
// Lock discipline: the Disk's media field is immutable after
// construction and every Backend call is made outside d.mu and
// d.statsMu — an interface call under a held Disk lock is a lockorder
// violation (DESIGN.md §11). Backends do their own internal locking.
type Backend interface {
	// PageSize returns the media's page size in bytes.
	PageSize() int
	// ReadPage fills dst (one page) with the content of page id.
	ReadPage(id PageID, dst []byte) error
	// ReadPages fills dst with n consecutive pages starting at start —
	// the vectored read path. len(dst) must be at least n*PageSize().
	ReadPages(start PageID, n int, dst []byte) error
	// WritePage durably stores one full page, taking ownership of data.
	WritePage(id PageID, data []byte) error
	// Allocate grows the media to hold at least totalPages pages
	// (grow-only; shrinking requests are ignored).
	Allocate(totalPages int64) error
	// Release drops the materialized content of the given pages (they
	// read back zero-filled afterwards), returning how many held data.
	Release(ids []PageID) int
	// StoredPages returns the IDs of materialized pages >= from, in
	// ascending order — the image/delta writers' enumeration.
	StoredPages(from PageID) []PageID
	// StoredCount returns how many pages hold materialized content.
	StoredCount() int64
	// Sync flushes buffered writes to durable media. The in-memory
	// backend is a no-op; the file backend fsyncs, which is what makes
	// the dbfile rename commit point durable.
	Sync() error
	// Clone returns an independent backend with the same page content;
	// writes to either side after the clone are invisible to the other.
	Clone() (Backend, error)
	// Stats returns the media-level operation counters.
	Stats() BackendStats
	// Timed reports whether operations perform real I/O whose wall-clock
	// latency is worth measuring. The Disk charges Stats.MeasuredTime
	// only for timed backends, so simulated accounting stays
	// deterministic.
	Timed() bool
	// Close releases OS resources. The Disk must not be used afterwards.
	Close() error
}

// BackendStats counts media-level operations — the syscall's-eye view
// that sits beneath the Disk's cost-model accounting. For the in-memory
// backend Reads/Writes count map operations; for the file backend they
// split into mmap copies and preads, making the vectored-read win
// (fewer, larger preads) directly visible.
type BackendStats struct {
	// Reads counts media read operations (one vectored read is one
	// operation); PagesRead and BytesRead total their size.
	Reads     int64
	PagesRead int64
	BytesRead int64
	// MmapReads is how many of Reads were served by the mmap window
	// (file backend only; the rest were preads).
	MmapReads int64
	// Writes counts page writes; Syncs counts explicit fsyncs.
	Writes int64
	Syncs  int64
}
