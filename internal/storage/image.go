package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Disk image format: the database's pages serialized to a real file, so a
// built HDoV database can be saved and reopened (package dbfile). Sparse
// (never-written) pages are not stored; the allocation size is, so page
// accounting after reopen is identical.
//
//	u32 magic | u16 version | u16 reserved | u32 pageSize | u64 allocated
//	u64 storedPages
//	storedPages × (u64 pageID | pageSize bytes)
//	u32 crc32(IEEE) of everything above
const (
	imageMagic      = 0x44564448 // "HDVD"
	imageVersion    = 1
	imageHeaderSize = 4 + 2 + 2 + 4 + 8
)

// ErrBadImage is wrapped into all image-format errors.
var ErrBadImage = errors.New("storage: bad disk image")

// imageBufSize picks the bufio.Writer size for image/delta serialization:
// a whole number of pages, at least 64 KiB and at most 1 MiB, so the
// writer's flushes are page-aligned streaming writes rather than one
// syscall per page — which is what matters once real files are the
// destination.
func imageBufSize(pageSize int) int {
	n := 256 * pageSize
	if n < 64<<10 {
		n = 64 << 10
	}
	if n > 1<<20 {
		n = (1 << 20) / pageSize * pageSize
		if n < pageSize {
			n = pageSize
		}
	}
	return n
}

// WriteTo serializes the disk's pages. It implements io.WriterTo. The
// structural lock is held only long enough to snapshot the geometry —
// page enumeration and reads go straight to the media backend (which
// does its own locking), so no I/O happens under d.mu (the lockorder
// invariant, DESIGN.md §11). Pages stream through a page-aligned
// bufio.Writer; nothing is buffered whole.
func (d *Disk) WriteTo(w io.Writer) (int64, error) {
	d.mu.RLock()
	allocated := d.allocated
	pageSize := d.pageSize
	d.mu.RUnlock()
	ids := d.media.StoredPages(0)

	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), imageBufSize(pageSize))
	var written int64

	put := func(buf []byte) error {
		n, err := bw.Write(buf)
		written += int64(n)
		return err
	}
	var hdr [imageHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], imageMagic)
	binary.LittleEndian.PutUint16(hdr[4:], imageVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(pageSize))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(allocated))
	if err := put(hdr[:]); err != nil {
		return written, err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(ids)))
	if err := put(cnt[:]); err != nil {
		return written, err
	}
	// Deterministic layout: StoredPages returns ascending page IDs.
	var idbuf [8]byte
	page := make([]byte, pageSize)
	for _, id := range ids {
		binary.LittleEndian.PutUint64(idbuf[:], uint64(id))
		if err := put(idbuf[:]); err != nil {
			return written, err
		}
		if err := d.media.ReadPage(id, page); err != nil {
			return written, fmt.Errorf("storage: image write: page %d: %w", id, err)
		}
		if err := put(page); err != nil {
			return written, err
		}
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	// The checksum covers everything before itself.
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	n, err := w.Write(sum[:])
	written += int64(n)
	return written, err
}

// ReadImage deserializes a disk image produced by WriteTo into an
// in-memory simulated disk, verifying its checksum.
func ReadImage(r io.Reader, cost CostModel) (*Disk, error) {
	return ReadImageInto(r, cost, nil)
}

// ReadImageInto deserializes a disk image produced by WriteTo, verifying
// its checksum, and materializes the pages into a media backend built by
// newBackend (nil means in-memory simulated media — ReadImage). The
// returned disk uses the given cost model and starts with zeroed
// statistics. The whole image is buffered in memory while parsing — it
// contains only the database's written pages, which are laptop-scale by
// design.
func ReadImageInto(r io.Reader, cost CostModel, newBackend func(pageSize int, pages int64) (Backend, error)) (*Disk, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	if len(raw) < imageHeaderSize+8+4 {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrBadImage, len(raw))
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrBadImage, got, want)
	}
	if binary.LittleEndian.Uint32(body[0:]) != imageMagic {
		return nil, fmt.Errorf("%w: magic mismatch", ErrBadImage)
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != imageVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadImage, v)
	}
	pageSize := int(binary.LittleEndian.Uint32(body[8:]))
	allocated := PageID(binary.LittleEndian.Uint64(body[12:]))
	if pageSize <= 0 || pageSize > 1<<26 || allocated < 0 {
		return nil, fmt.Errorf("%w: implausible geometry (pageSize=%d, pages=%d)", ErrBadImage, pageSize, allocated)
	}
	stored := binary.LittleEndian.Uint64(body[imageHeaderSize:])
	if stored > uint64(allocated) {
		return nil, fmt.Errorf("%w: %d stored pages exceed %d allocated", ErrBadImage, stored, allocated)
	}
	need := uint64(imageHeaderSize) + 8 + stored*uint64(8+pageSize)
	if uint64(len(body)) != need {
		return nil, fmt.Errorf("%w: body is %d bytes, want %d", ErrBadImage, len(body), need)
	}

	var b Backend
	if newBackend == nil {
		b = NewMemBackend(pageSize)
	} else {
		b, err = newBackend(pageSize, int64(allocated))
		if err != nil {
			return nil, fmt.Errorf("storage: image backend: %w", err)
		}
		if b.PageSize() != pageSize {
			_ = b.Close()
			return nil, fmt.Errorf("%w: backend page size %d, image has %d", ErrBadImage, b.PageSize(), pageSize)
		}
	}
	fail := func(err error) (*Disk, error) {
		_ = b.Close()
		return nil, err
	}
	if err := b.Allocate(int64(allocated)); err != nil {
		return fail(fmt.Errorf("storage: image backend: %w", err))
	}
	off := imageHeaderSize + 8
	for i := uint64(0); i < stored; i++ {
		id := PageID(binary.LittleEndian.Uint64(body[off:]))
		off += 8
		if id < 0 || id >= allocated {
			return fail(fmt.Errorf("%w: page id %d out of range", ErrBadImage, id))
		}
		if err := b.WritePage(id, body[off:off+pageSize]); err != nil {
			return fail(fmt.Errorf("storage: image backend: page %d: %w", id, err))
		}
		off += pageSize
	}
	if err := b.Sync(); err != nil {
		return fail(fmt.Errorf("storage: image backend: sync: %w", err))
	}
	d := NewDiskOn(b, cost)
	d.allocated = allocated
	return d, nil
}
