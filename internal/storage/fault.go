package storage

import (
	"math/rand"
	"sync"
	"time"
)

// Fault injection: a seeded, deterministic policy that makes page reads
// fail the way aging media does. Faults come in two classes:
//
//   - transient: the sector reads fine after a bounded number of retries
//     (vibration, marginal signal). The disk's retry-with-backoff loop
//     absorbs them; callers see success and Stats.Retries counts the cost.
//   - permanent: the sector never reads back. Retries are exhausted and
//     the read returns a CorruptError identifying the page, which
//     fault-tolerant callers quarantine.
//
// Injection is deterministic given (Seed, read sequence), so a replayed
// walkthrough session fails in exactly the same places every run. Under
// concurrent sessions the interleaving of reads — and therefore which
// read draws which fault — depends on scheduling; tests that need
// bit-exact failures across runs plant them with InjectPageFault or
// CorruptPage instead of PageProb.

// FaultKind classifies an injected fault.
type FaultKind uint8

const (
	// FaultTransient faults clear after a bounded number of failed read
	// attempts.
	FaultTransient FaultKind = iota
	// FaultPermanent faults persist until the page is rewritten.
	FaultPermanent
)

func (k FaultKind) String() string {
	if k == FaultPermanent {
		return "permanent"
	}
	return "transient"
}

// FaultConfig is a deterministic fault-injection policy for a Disk.
type FaultConfig struct {
	// Seed drives the probabilistic draws. The same seed over the same
	// read sequence injects the same faults.
	Seed int64
	// PageProb is the per-page-read probability that a fault fires.
	PageProb float64
	// TransientFrac is the fraction of probabilistic faults that are
	// transient (in [0,1]; the rest are permanent and sticky — once a
	// page draws a permanent fault it stays unreadable until rewritten).
	TransientFrac float64
	// MaxRetries bounds the retry loop per logical read (default 3).
	// Probabilistic transient faults always clear within this budget.
	MaxRetries int
	// RetryBackoff is the simulated-time penalty per retry on top of one
	// page transfer (default: the cost model's seek — a retry repositions
	// the head).
	RetryBackoff time.Duration
	// Jitter adds a seeded random fraction (up to +50% of RetryBackoff)
	// to each retry's simulated backoff, decorrelating the retry storms
	// of concurrent sessions that hit the same damaged region. The jitter
	// stream has its own rng (derived from Seed) so enabling it never
	// changes which reads draw faults.
	Jitter bool
}

// targetedFault is a fault planted on a specific page with InjectPageFault.
type targetedFault struct {
	kind FaultKind
	// remaining counts failed read attempts left before a transient fault
	// clears (unused for permanent faults).
	remaining int
}

// faultInjector holds the policy state behind its own mutex; it never
// touches the disk's stats — check returns the retry charge and the
// caller applies it through Disk.charge, so accounting stays behind one
// lock (DESIGN.md §10).
type faultInjector struct {
	mu  sync.Mutex
	cfg FaultConfig
	// transfer caches the disk's per-page transfer cost for retry charging.
	transfer time.Duration
	rng      *rand.Rand
	// jrng drives backoff jitter; a separate stream keeps fault draws
	// identical whether or not Jitter is enabled.
	jrng     *rand.Rand
	targeted map[PageID]*targetedFault
	// sticky records pages that drew a probabilistic permanent fault.
	sticky map[PageID]bool
}

// InjectFaults installs a fault-injection policy on the disk. Reads gain a
// bounded retry-with-backoff loop: transient faults are absorbed (counted
// in Stats.Retries), permanent faults surface as CorruptError after the
// retry budget. Replaces any previously installed policy.
func (d *Disk) InjectFaults(cfg FaultConfig) {
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = d.cost.Seek
	}
	fi := &faultInjector{
		cfg:      cfg,
		transfer: d.cost.TransferPage,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		jrng:     rand.New(rand.NewSource(cfg.Seed ^ 0x6a69747465726a67)),
		targeted: make(map[PageID]*targetedFault),
		sticky:   make(map[PageID]bool),
	}
	d.mu.Lock()
	d.faults = fi
	d.mu.Unlock()
}

// ClearFaults removes the injection policy, including any sticky
// probabilistic permanent faults it accumulated. Explicit CorruptPage
// marks and quarantines are untouched.
func (d *Disk) ClearFaults() {
	d.mu.Lock()
	d.faults = nil
	d.mu.Unlock()
}

// FaultsInjected reports whether an injection policy is installed.
func (d *Disk) FaultsInjected() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.faults != nil
}

// InjectPageFault plants a fault on a specific page. For transient faults,
// failures is how many read attempts fail before the fault clears
// (minimum 1); it is ignored for permanent faults. Installs a zero-
// probability policy if none is active, so targeted faults work on their
// own.
func (d *Disk) InjectPageFault(id PageID, kind FaultKind, failures int) {
	d.mu.RLock()
	fi := d.faults
	d.mu.RUnlock()
	if fi == nil {
		d.InjectFaults(FaultConfig{})
		d.mu.RLock()
		fi = d.faults
		d.mu.RUnlock()
	}
	if failures < 1 {
		failures = 1
	}
	fi.mu.Lock()
	fi.targeted[id] = &targetedFault{kind: kind, remaining: failures}
	fi.mu.Unlock()
}

// heal clears injected faults for a rewritten page.
func (f *faultInjector) heal(id PageID) {
	f.mu.Lock()
	delete(f.targeted, id)
	delete(f.sticky, id)
	f.mu.Unlock()
}

// check simulates reading page id under the policy: the initial attempt
// plus up to MaxRetries retries. corrupt says whether the page carries an
// explicit CorruptPage mark. It returns the retry count and simulated-time
// cost the caller must charge (each retry costs RetryBackoff plus one page
// transfer) and the final outcome: nil once a retry succeeds, CorruptError
// when the budget is exhausted. Permanent faults (explicit marks, targeted
// permanents, and sticky probabilistic permanents) survive every retry.
func (f *faultInjector) check(corrupt bool, id PageID) (retries int64, cost time.Duration, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	permanent := corrupt || f.sticky[id]
	transient := 0
	if !permanent {
		if t, ok := f.targeted[id]; ok {
			if t.kind == FaultPermanent {
				permanent = true
			} else {
				transient = t.remaining
			}
		} else if f.cfg.PageProb > 0 && f.rng.Float64() < f.cfg.PageProb {
			if f.rng.Float64() < f.cfg.TransientFrac {
				// Always clears within the retry budget: transient faults
				// are by definition the ones retries absorb.
				transient = 1 + f.rng.Intn(f.cfg.MaxRetries)
			} else {
				permanent = true
				f.sticky[id] = true
			}
		}
	}
	if !permanent && transient <= 0 {
		return 0, 0, nil
	}
	for attempt := 0; ; attempt++ {
		// This attempt fails.
		if !permanent {
			transient--
			if t, ok := f.targeted[id]; ok && t.kind == FaultTransient {
				t.remaining--
				if t.remaining <= 0 {
					delete(f.targeted, id)
				}
			}
		}
		if attempt >= f.cfg.MaxRetries {
			return retries, cost, &CorruptError{Page: id}
		}
		retries++
		backoff := f.cfg.RetryBackoff
		if f.cfg.Jitter {
			backoff += time.Duration(f.jrng.Float64() * float64(f.cfg.RetryBackoff) / 2)
		}
		cost += backoff + f.transfer
		if !permanent && transient <= 0 {
			return retries, cost, nil
		}
	}
}
