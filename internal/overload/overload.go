// Package overload implements admission control and fidelity-aware load
// shedding for the serving stack (DESIGN.md §14). Two cooperating pieces:
//
//   - Controller: a concurrency limiter with a bounded FIFO wait queue
//     and per-client fairness. A request either runs now, waits its turn,
//     or is rejected explicitly with ErrOverloaded — overload always
//     produces a countable outcome, never an unbounded queue.
//   - Shedder: a latency tracker (EMA over observed per-query simulated
//     time, with hysteresis) that maps sustained pressure to discrete
//     shed levels — core.ShedPolicy values of increasing severity — so
//     the serving loop trades fidelity for bounded tails exactly the way
//     the HDoV-tree's internal LoDs were designed to.
//
// Both are deterministic given the observation sequence: the shedder
// tracks simulated time (the cost model's clock), not wall-clock noise,
// so a replayed serving run sheds in exactly the same places.
package overload

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
)

// ErrOverloaded is returned when admission is denied: the wait queue is
// full, the per-client cap is hit, or the controller was closed. Callers
// surface it to the client as an explicit rejection (retry later),
// never as a silent stall.
var ErrOverloaded = errors.New("overload: admission rejected")

// Config bounds the admission controller.
type Config struct {
	// MaxConcurrent is how many requests may run at once (minimum 1).
	MaxConcurrent int
	// MaxQueue bounds the wait queue; a request arriving to a full queue
	// is rejected immediately. 0 means no waiting: admit or reject.
	MaxQueue int
	// MaxPerClient caps one client's share of running + waiting requests
	// (0 = no per-client cap). With it, one greedy client saturating the
	// queue cannot starve the rest.
	MaxPerClient int
}

// Stats is a consistent snapshot of admission accounting.
type Stats struct {
	// Admitted counts requests that acquired a slot (immediately or
	// after waiting); Rejected counts ErrOverloaded outcomes; Canceled
	// counts waiters whose context expired in the queue.
	Admitted, Rejected, Canceled int64
	// Waited counts admissions that had to queue first.
	Waited int64
	// Running and Queued are current occupancy gauges.
	Running, Queued int
}

// waiter is one queued admission request.
type waiter struct {
	client string
	ready  chan struct{} // closed by release when a slot is handed over
}

// Controller is the admission gate. Create with New; one per serving
// run. Safe for concurrent use.
type Controller struct {
	cfg Config

	mu        sync.Mutex
	running   int
	queue     []*waiter
	perClient map[string]int
	stats     Stats
}

// New returns a Controller with cfg (MaxConcurrent floored at 1).
func New(cfg Config) *Controller {
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	return &Controller{cfg: cfg, perClient: make(map[string]int)}
}

// Acquire admits one request for client (an opaque fairness key),
// blocking in FIFO order while the concurrency limit is saturated and
// the queue has room. It returns a release func to call when the request
// finishes (exactly once), or ErrOverloaded on a full queue / exhausted
// per-client share, or the context's error if it expires while queued.
func (c *Controller) Acquire(ctx context.Context, client string) (func(), error) {
	c.mu.Lock()
	if c.cfg.MaxPerClient > 0 && c.perClient[client] >= c.cfg.MaxPerClient {
		c.stats.Rejected++
		c.mu.Unlock()
		return nil, ErrOverloaded
	}
	if c.running < c.cfg.MaxConcurrent && len(c.queue) == 0 {
		c.running++
		c.perClient[client]++
		c.stats.Admitted++
		c.mu.Unlock()
		return c.releaseFunc(client), nil
	}
	if len(c.queue) >= c.cfg.MaxQueue {
		c.stats.Rejected++
		c.mu.Unlock()
		return nil, ErrOverloaded
	}
	w := &waiter{client: client, ready: make(chan struct{})}
	c.queue = append(c.queue, w)
	c.perClient[client]++
	c.mu.Unlock()

	select {
	case <-w.ready:
		// The releasing request handed its slot to this waiter (running
		// was never decremented — the slot transferred).
		c.mu.Lock()
		c.stats.Admitted++
		c.stats.Waited++
		c.mu.Unlock()
		return c.releaseFunc(client), nil
	case <-ctx.Done():
		c.mu.Lock()
		if c.dequeue(w) {
			c.perClient[client]--
			c.stats.Canceled++
			c.mu.Unlock()
			return nil, ctx.Err()
		}
		// Lost the race: the slot was already handed over. Take it and
		// release immediately so it is not leaked, then report the
		// cancellation.
		c.stats.Admitted++
		c.stats.Waited++
		c.stats.Canceled++
		c.mu.Unlock()
		c.releaseFunc(client)()
		return nil, ctx.Err()
	}
}

// dequeue removes w from the wait queue; false if it was already handed
// a slot.
func (c *Controller) dequeue(w *waiter) bool {
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return true
		}
	}
	return false
}

// releaseFunc returns the once-only release closure for an admitted
// request: it hands the slot to the first waiter, or frees it.
func (c *Controller) releaseFunc(client string) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.perClient[client]--
			if c.perClient[client] <= 0 {
				delete(c.perClient, client)
			}
			if len(c.queue) > 0 {
				w := c.queue[0]
				c.queue = c.queue[1:]
				c.mu.Unlock()
				close(w.ready)
				return
			}
			c.running--
			c.mu.Unlock()
		})
	}
}

// Stats returns a mutually consistent snapshot (one lock acquisition —
// the same discipline as storage.Stats).
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.Running = c.running
	out.Queued = len(c.queue)
	return out
}

// QueueDepth returns the current wait-queue length — the shedder's
// secondary pressure signal.
func (c *Controller) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// ShedConfig tunes the fidelity shedder.
type ShedConfig struct {
	// Target is the per-query simulated-time budget the shedder defends.
	Target time.Duration
	// Upper and Lower are the hysteresis band as fractions of Target:
	// the shed level steps up when the EMA exceeds Target·Upper and
	// steps down when it falls below Target·Lower. Defaults 1.0 / 0.7.
	Upper, Lower float64
	// Alpha is the EMA smoothing factor in (0,1]; default 0.2.
	Alpha float64
	// MinObservations is how many samples must accumulate before the
	// first level change; default 8.
	MinObservations int
}

// shedLevels are the policies of increasing severity the shedder steps
// through. Level 0 is no shedding (nil policy).
var shedLevels = []*core.ShedPolicy{
	nil,
	{EtaFactor: 2},
	{EtaFactor: 4},
	{EtaFactor: 4, MaxDepth: 2},
	{EtaFactor: 8, MaxDepth: 1},
}

// Shedder maps observed per-query latency to a shed level. Safe for
// concurrent Observe calls.
type Shedder struct {
	cfg ShedConfig

	mu    sync.Mutex
	ema   time.Duration
	seen  int
	level int
	// transitions counts level changes (both directions) for reporting.
	transitions int64
}

// NewShedder returns a Shedder defending cfg.Target (which must be > 0
// for the shedder to ever act).
func NewShedder(cfg ShedConfig) *Shedder {
	if cfg.Upper <= 0 {
		cfg.Upper = 1.0
	}
	if cfg.Lower <= 0 || cfg.Lower >= cfg.Upper {
		cfg.Lower = 0.7
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.2
	}
	if cfg.MinObservations <= 0 {
		cfg.MinObservations = 8
	}
	return &Shedder{cfg: cfg}
}

// Observe feeds one query's simulated time and returns the policy to
// install now (nil = stop shedding) plus whether the level changed.
// Hysteresis: the EMA must cross Target·Upper to escalate and fall under
// Target·Lower to relax, so the level does not flap around the boundary.
func (s *Shedder) Observe(simTime time.Duration) (*core.ShedPolicy, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ema == 0 {
		s.ema = simTime
	} else {
		s.ema = time.Duration(s.cfg.Alpha*float64(simTime) + (1-s.cfg.Alpha)*float64(s.ema))
	}
	s.seen++
	if s.cfg.Target <= 0 || s.seen < s.cfg.MinObservations {
		return shedLevels[s.level], false
	}
	changed := false
	switch {
	case s.ema > time.Duration(float64(s.cfg.Target)*s.cfg.Upper) && s.level < len(shedLevels)-1:
		s.level++
		changed = true
	case s.ema < time.Duration(float64(s.cfg.Target)*s.cfg.Lower) && s.level > 0:
		s.level--
		changed = true
	}
	if changed {
		s.transitions++
	}
	return shedLevels[s.level], changed
}

// Level returns the current shed level (0 = none).
func (s *Shedder) Level() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.level
}

// Transitions returns how many level changes have occurred.
func (s *Shedder) Transitions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.transitions
}
