package overload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// --- Controller ---

func TestAcquireImmediate(t *testing.T) {
	c := New(Config{MaxConcurrent: 2, MaxQueue: 4})
	rel1, err := c.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := c.Acquire(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Admitted != 2 || s.Running != 2 || s.Waited != 0 {
		t.Fatalf("stats = %+v, want 2 admitted / 2 running / 0 waited", s)
	}
	rel1()
	rel2()
	if s := c.Stats(); s.Running != 0 {
		t.Fatalf("running = %d after release, want 0", s.Running)
	}
}

func TestRejectOnFullQueue(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 0})
	rel, err := c.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	// MaxQueue 0: no waiting, the second request is rejected outright.
	if _, err := c.Acquire(context.Background(), "b"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if s := c.Stats(); s.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected)
	}
	rel()
	// Slot freed: admission resumes.
	rel2, err := c.Acquire(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	rel2()
}

func TestPerClientCap(t *testing.T) {
	c := New(Config{MaxConcurrent: 4, MaxQueue: 4, MaxPerClient: 2})
	r1, err := c.Acquire(context.Background(), "greedy")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Acquire(context.Background(), "greedy")
	if err != nil {
		t.Fatal(err)
	}
	// The greedy client's share is spent; a third request is rejected even
	// though the controller has free slots.
	if _, err := c.Acquire(context.Background(), "greedy"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded for capped client", err)
	}
	// Other clients are unaffected.
	r3, err := c.Acquire(context.Background(), "polite")
	if err != nil {
		t.Fatal(err)
	}
	r1()
	r2()
	r3()
	// Releasing restores the share.
	r4, err := c.Acquire(context.Background(), "greedy")
	if err != nil {
		t.Fatal(err)
	}
	r4()
}

// TestFIFOSlotTransfer: a released slot goes to the longest-waiting
// request, in order, and is transferred rather than freed (no thundering
// herd through running).
func TestFIFOSlotTransfer(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 4})
	rel, err := c.Acquire(context.Background(), "holder")
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 3
	type admitted struct {
		i   int
		rel func()
	}
	order := make(chan admitted, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		// Enqueue strictly in order: wait until waiter i is queued before
		// starting waiter i+1.
		wantDepth := i + 1
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Acquire(context.Background(), "w")
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- admitted{i, r}
		}(i)
		for c.QueueDepth() < wantDepth {
			time.Sleep(time.Millisecond)
		}
	}

	// Drain: each release must wake exactly the next waiter in FIFO order.
	rel()
	for i := 0; i < waiters; i++ {
		got := <-order
		if got.i != i {
			t.Fatalf("admission order: got waiter %d at position %d", got.i, i)
		}
		got.rel()
	}
	wg.Wait()
	s := c.Stats()
	if s.Admitted != 4 || s.Waited != 3 || s.Running != 0 || s.Queued != 0 {
		t.Fatalf("stats = %+v, want 4 admitted / 3 waited / idle", s)
	}
}

// TestCancelWhileQueued: a waiter whose context expires leaves the queue
// counted as canceled, its per-client share is returned, and no slot
// leaks.
func TestCancelWhileQueued(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 2, MaxPerClient: 2})
	rel, err := c.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, "a")
		errc <- err
	}()
	for c.QueueDepth() < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire err = %v, want context.Canceled", err)
	}
	s := c.Stats()
	if s.Canceled != 1 || s.Queued != 0 {
		t.Fatalf("stats = %+v, want 1 canceled / empty queue", s)
	}
	rel()
	// The canceled waiter returned its per-client share and did not absorb
	// the slot: client "a" can immediately run two requests again.
	r1, err := c.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatalf("post-cancel acquire: %v", err)
	}
	if s := c.Stats(); s.Running != 1 {
		t.Fatalf("running = %d, want 1 (no leaked slot)", s.Running)
	}
	r1()
}

func TestReleaseIdempotent(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 0})
	rel, err := c.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // second call must be a no-op, not free a phantom slot
	if s := c.Stats(); s.Running != 0 {
		t.Fatalf("running = %d, want 0", s.Running)
	}
	r1, err := c.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire(context.Background(), "b"); !errors.Is(err, ErrOverloaded) {
		t.Fatal("double release minted an extra slot")
	}
	r1()
}

// --- Shedder ---

// feed pushes n identical observations and returns the last policy.
func feed(s *Shedder, d time.Duration, n int) (last interface{ String() string }, level int) {
	for i := 0; i < n; i++ {
		s.Observe(d)
	}
	return nil, s.Level()
}

func TestShedderEscalatesAndRelaxes(t *testing.T) {
	s := NewShedder(ShedConfig{Target: 10 * time.Millisecond})

	// Below MinObservations nothing moves, no matter how hot.
	for i := 0; i < 7; i++ {
		if p, changed := s.Observe(100 * time.Millisecond); p != nil || changed {
			t.Fatalf("obs %d: level moved before MinObservations", i)
		}
	}
	// The 8th hot sample escalates.
	p, changed := s.Observe(100 * time.Millisecond)
	if !changed || p == nil || p.EtaFactor != 2 {
		t.Fatalf("8th obs: p=%+v changed=%v, want level 1 {EtaFactor:2}", p, changed)
	}

	// Sustained pressure climbs to the top level and stays there.
	_, lvl := feed(s, 100*time.Millisecond, 50)
	if lvl != 4 {
		t.Fatalf("level = %d under sustained pressure, want 4 (max)", lvl)
	}
	p, _ = s.Observe(100 * time.Millisecond)
	if p == nil || p.EtaFactor != 8 || p.MaxDepth != 1 {
		t.Fatalf("max-level policy = %+v, want {EtaFactor:8 MaxDepth:1}", p)
	}

	// Cooling below Target·Lower relaxes one step at a time back to nil.
	_, lvl = feed(s, time.Millisecond, 200)
	if lvl != 0 {
		t.Fatalf("level = %d after sustained cool, want 0", lvl)
	}
	if p, _ := s.Observe(time.Millisecond); p != nil {
		t.Fatalf("level-0 policy = %+v, want nil", p)
	}
	if tr := s.Transitions(); tr < 8 {
		t.Fatalf("transitions = %d, want >= 8 (4 up + 4 down)", tr)
	}
}

// TestShedderHysteresis: an EMA parked between Lower·Target and
// Upper·Target moves the level in neither direction — the band is what
// stops flapping.
func TestShedderHysteresis(t *testing.T) {
	s := NewShedder(ShedConfig{Target: 10 * time.Millisecond, Upper: 1.0, Lower: 0.7})
	// Escalate once with hot samples...
	var level1 int
	for i := 0; i < 20 && level1 == 0; i++ {
		s.Observe(20 * time.Millisecond)
		level1 = s.Level()
	}
	if level1 == 0 {
		t.Fatal("never escalated")
	}
	// ...then feed a steady 9ms — under Upper (10ms) but over Lower (7ms).
	// Let the EMA converge into the band first (it starts near the hot
	// samples), after which the level must never change in either
	// direction: that no-man's-land is exactly what stops flapping.
	for i := 0; i < 100; i++ {
		s.Observe(9 * time.Millisecond)
	}
	settled, before := s.Level(), s.Transitions()
	if settled == 0 {
		t.Fatal("in-band signal relaxed all the way to level 0")
	}
	for i := 0; i < 200; i++ {
		if _, changed := s.Observe(9 * time.Millisecond); changed {
			t.Fatalf("obs %d: level changed inside the hysteresis band", i)
		}
	}
	if s.Level() != settled || s.Transitions() != before {
		t.Fatalf("level %d -> %d inside band", settled, s.Level())
	}
}

func TestShedderZeroTargetNeverActs(t *testing.T) {
	s := NewShedder(ShedConfig{})
	for i := 0; i < 100; i++ {
		if p, changed := s.Observe(time.Hour); p != nil || changed {
			t.Fatal("shedder acted with no target")
		}
	}
	if s.Level() != 0 || s.Transitions() != 0 {
		t.Fatalf("level=%d transitions=%d, want 0/0", s.Level(), s.Transitions())
	}
}

// TestShedderLevelBounds: the level can neither climb past the last
// policy nor relax below zero, however extreme the signal.
func TestShedderLevelBounds(t *testing.T) {
	s := NewShedder(ShedConfig{Target: time.Millisecond, MinObservations: 1})
	feed(s, time.Hour, 1000)
	if s.Level() != len(shedLevels)-1 {
		t.Fatalf("level = %d, want max %d", s.Level(), len(shedLevels)-1)
	}
	feed(s, 0, 1000)
	if s.Level() != 0 {
		t.Fatalf("level = %d, want 0", s.Level())
	}
	tr := s.Transitions()
	feed(s, 0, 100) // already at the floor: no further transitions
	if s.Transitions() != tr {
		t.Fatal("transitions counted at the floor")
	}
}

// TestControllerConcurrentStress hammers Acquire/release from many
// goroutines and checks the accounting identity afterwards. Run with
// -race.
func TestControllerConcurrentStress(t *testing.T) {
	c := New(Config{MaxConcurrent: 4, MaxQueue: 8, MaxPerClient: 6})
	var wg sync.WaitGroup
	clients := []string{"a", "b", "c"}
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
				rel, err := c.Acquire(ctx, clients[w%len(clients)])
				if err == nil {
					rel()
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Running != 0 || s.Queued != 0 {
		t.Fatalf("leaked occupancy: %+v", s)
	}
	if s.Admitted+s.Rejected == 0 {
		t.Fatal("stress loop did no work")
	}
	if total := s.Admitted + s.Rejected + s.Canceled; total < 12*50 {
		// An admission that was canceled after the handoff counts both
		// Admitted and Canceled, so the sum can exceed the request count —
		// but never undershoot it.
		t.Fatalf("outcomes %d < requests %d", total, 12*50)
	}
}
