package scene

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/simplify"
)

// MuseumParams shapes an indoor dataset: a grid of rooms connected by
// doorways, with exhibits inside. Indoor scenes are the extreme-occlusion
// regime the visibility literature the paper builds on ([5], [13]) was
// born in: from any room only that room and thin slices of its neighbors
// (through doorways) are visible, so DoV-driven pruning removes almost
// the whole building while spatial query boxes drag in every hidden room
// they overlap.
type MuseumParams struct {
	Seed            int64
	RoomsX, RoomsY  int
	RoomSize        float64 // interior room width/depth in meters
	WallHeight      float64
	WallThickness   float64
	DoorWidth       float64
	DoorHeight      float64
	ExhibitsPerRoom int
	LoDLevels       int
	LoDRatio        float64
	ExhibitDetail   int
	// NominalBytes scales payloads as in CityParams.
	NominalBytes int64
}

// DefaultMuseumParams returns a 4×4-room gallery.
func DefaultMuseumParams() MuseumParams {
	return MuseumParams{
		Seed:            1,
		RoomsX:          4,
		RoomsY:          4,
		RoomSize:        18,
		WallHeight:      4,
		WallThickness:   0.4,
		DoorWidth:       2.2,
		DoorHeight:      2.8,
		ExhibitsPerRoom: 3,
		LoDLevels:       4,
		LoDRatio:        0.5,
		ExhibitDetail:   12,
		NominalBytes:    100 << 20,
	}
}

// GenerateMuseum builds the indoor scene. Walls are opaque box objects
// (with doorway openings realized as multiple boxes); exhibits are
// high-polygon blobs on tessellated pedestals. Deterministic in p.
func GenerateMuseum(p MuseumParams) *Scene {
	if p.RoomsX < 1 {
		p.RoomsX = 1
	}
	if p.RoomsY < 1 {
		p.RoomsY = 1
	}
	if p.LoDLevels < 1 {
		p.LoDLevels = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	s := &Scene{PayloadScale: 1}
	// Record provenance in CityParams form so persistence round-trips:
	// museum scenes are regenerated through their own params (see
	// Scene.Params.Museum).
	s.Params = CityParams{Seed: p.Seed, NominalBytes: p.NominalBytes, Museum: &p}

	pitch := p.RoomSize + p.WallThickness
	totalX := float64(p.RoomsX)*pitch + p.WallThickness
	totalY := float64(p.RoomsY)*pitch + p.WallThickness
	var id int64

	addWall := func(boxes ...geom.AABB) {
		parts := make([]*mesh.Mesh, len(boxes))
		for i, b := range boxes {
			parts[i] = mesh.NewTessellatedBox(b, 2)
		}
		m := mesh.Merge(parts...)
		s.Objects = append(s.Objects, &Object{
			ID:       id,
			Kind:     KindBuilding,
			MBR:      m.Bounds(),
			LoDs:     simplify.BuildLoDChain(m, p.LoDLevels, p.LoDRatio),
			Occluder: Occluder{Boxes: boxes},
		})
		id++
	}

	// wallWithDoor splits a wall slab (running along the given axis) into
	// two jambs and a lintel around a centered doorway.
	wallWithDoor := func(slab geom.AABB, axis int) []geom.AABB {
		length := slab.Size().Axis(axis)
		if length <= p.DoorWidth*1.5 || p.DoorHeight >= p.WallHeight {
			return []geom.AABB{slab}
		}
		mid := (slab.Min.Axis(axis) + slab.Max.Axis(axis)) / 2
		d0 := mid - p.DoorWidth/2
		d1 := mid + p.DoorWidth/2
		left := slab
		left.Max = left.Max.WithAxis(axis, d0)
		right := slab
		right.Min = right.Min.WithAxis(axis, d1)
		lintel := slab
		lintel.Min = lintel.Min.WithAxis(axis, d0)
		lintel.Max = lintel.Max.WithAxis(axis, d1)
		lintel.Min.Z = p.DoorHeight
		return []geom.AABB{left, right, lintel}
	}

	// Vertical (x = const) walls: columns 0..RoomsX, each spanning one
	// room along y. Interior ones get doorways.
	for cx := 0; cx <= p.RoomsX; cx++ {
		x0 := float64(cx) * pitch
		for ry := 0; ry < p.RoomsY; ry++ {
			y0 := float64(ry) * pitch
			slab := geom.Box(
				geom.V(x0, y0, 0),
				geom.V(x0+p.WallThickness, y0+pitch+p.WallThickness, p.WallHeight),
			)
			if cx == 0 || cx == p.RoomsX {
				addWall(slab)
			} else {
				addWall(wallWithDoor(slab, 1)...)
			}
		}
	}
	// Horizontal (y = const) walls.
	for cy := 0; cy <= p.RoomsY; cy++ {
		y0 := float64(cy) * pitch
		for rx := 0; rx < p.RoomsX; rx++ {
			x0 := float64(rx) * pitch
			slab := geom.Box(
				geom.V(x0, y0, 0),
				geom.V(x0+pitch+p.WallThickness, y0+p.WallThickness, p.WallHeight),
			)
			if cy == 0 || cy == p.RoomsY {
				addWall(slab)
			} else {
				addWall(wallWithDoor(slab, 0)...)
			}
		}
	}

	// Exhibits: blobs on tessellated pedestals inside each room.
	for ry := 0; ry < p.RoomsY; ry++ {
		for rx := 0; rx < p.RoomsX; rx++ {
			roomMinX := float64(rx)*pitch + p.WallThickness
			roomMinY := float64(ry)*pitch + p.WallThickness
			for e := 0; e < p.ExhibitsPerRoom; e++ {
				// Keep clear of walls and door paths.
				margin := p.RoomSize * 0.2
				cx := roomMinX + margin + rng.Float64()*(p.RoomSize-2*margin)
				cy := roomMinY + margin + rng.Float64()*(p.RoomSize-2*margin)
				r := 0.4 + 0.5*rng.Float64()
				pedestal := geom.Box(
					geom.V(cx-r*0.8, cy-r*0.8, 0),
					geom.V(cx+r*0.8, cy+r*0.8, 1),
				)
				blobCenter := geom.V(cx, cy, 1+r)
				m := mesh.Merge(
					mesh.NewTessellatedBox(pedestal, 2),
					mesh.NewBlob(blobCenter, r, p.ExhibitDetail, rng.Int63()),
				)
				s.Objects = append(s.Objects, &Object{
					ID:   id,
					Kind: KindBlob,
					MBR:  m.Bounds(),
					LoDs: simplify.BuildLoDChain(m, p.LoDLevels, p.LoDRatio),
					Occluder: Occluder{
						Boxes:   []geom.AABB{pedestal},
						Spheres: []Sphere{{Center: blobCenter, Radius: r * 0.9}},
					},
				})
				id++
			}
		}
	}

	b := geom.EmptyAABB()
	for _, o := range s.Objects {
		b = b.Union(o.MBR)
	}
	s.Bounds = b
	s.ViewRegion = geom.Box(
		geom.V(0, 0, 1.5),
		geom.V(totalX, totalY, 2.0),
	)
	applyNominalScaling(s, p.NominalBytes)
	return s
}

// applyNominalScaling sets PayloadScale and per-object LoDBytes for a
// target raw size, shared by the city and museum generators.
func applyNominalScaling(s *Scene, nominal int64) {
	if nominal > 0 {
		var raw int64
		for _, o := range s.Objects {
			for _, lvl := range o.LoDs.Levels {
				raw += int64(lvl.EncodedSize())
			}
		}
		if raw > 0 {
			s.PayloadScale = float64(nominal) / float64(raw)
			if s.PayloadScale < 1 {
				s.PayloadScale = 1
			}
		}
	}
	for _, o := range s.Objects {
		o.LoDBytes = make([]int64, o.LoDs.NumLevels())
		for i, lvl := range o.LoDs.Levels {
			o.LoDBytes[i] = int64(float64(lvl.EncodedSize()) * s.PayloadScale)
		}
	}
}
