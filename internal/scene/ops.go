package scene

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/simplify"
)

// Dynamic-scene operations. A static scene regenerates deterministically
// from its CityParams; a dynamic scene is that base plus an ordered op
// log. Replaying the same log on the same base always yields the same
// scene, bit for bit, which is what lets the persistence layer store only
// the ops (not the mutated meshes) and what the incremental-update
// differential gate is built on.
//
// Object IDs stay dense forever: a delete tombstones the object (Dead)
// instead of compacting the slice, so every historical ID keeps indexing
// the same slot in Scene.Objects, per-object DoV arrays, and the payload
// directory. Inserts append with the next ID.

// Op kinds. String-valued so the op log is self-describing JSON.
const (
	OpInsert = "insert"
	OpDelete = "delete"
	OpMove   = "move"
)

// InsertSpec deterministically describes a new object: a procedural blob
// (the paper's bunny stand-in) dropped at an explicit position. All
// geometry derives from the spec, never from ambient randomness, so an
// insert replays identically.
type InsertSpec struct {
	Seed   int64
	X, Y   float64 // footprint center
	Radius float64 // blob radius (clamped to a sane minimum)
	Detail int     // tessellation parameter (<= 0: the scene default)
}

// Op is one dynamic-scene mutation, JSON-able for the manifest op log.
type Op struct {
	Kind string
	// ID targets delete/move; ignored for insert (the next dense ID is
	// assigned).
	ID int64
	// DX/DY/DZ is the move translation.
	DX, DY, DZ float64
	// Insert carries the insert payload.
	Insert *InsertSpec `json:",omitempty"`
}

// OpEffect reports what an applied op changed, in the terms the spatial
// layers above need: which object, and its bounding box before and after.
// Empty boxes mean "absent" (OldMBR for inserts, NewMBR for deletes).
type OpEffect struct {
	Kind           string
	ObjectID       int64
	OldMBR, NewMBR geom.AABB
}

// buildInsertObject generates the object described by spec with the given
// ID, using the scene's LoD parameters and payload scale.
func buildInsertObject(s *Scene, id int64, spec InsertSpec) *Object {
	r := spec.Radius
	if r < 0.5 {
		r = 0.5
	}
	detail := spec.Detail
	if detail <= 0 {
		detail = s.Params.BlobDetail
		if detail <= 0 {
			detail = 8
		}
	}
	levels := s.Params.LoDLevels
	if levels < 1 {
		levels = 1
	}
	ratio := s.Params.LoDRatio
	if ratio <= 0 || ratio >= 1 {
		ratio = 0.5
	}
	center := geom.V(spec.X, spec.Y, r)
	m := mesh.NewBlob(center, r, detail, spec.Seed)
	obj := &Object{
		ID:       id,
		Kind:     KindBlob,
		MBR:      m.Bounds(),
		LoDs:     simplify.BuildLoDChain(m, levels, ratio),
		Occluder: Occluder{Spheres: []Sphere{{Center: center, Radius: r * 0.9}}},
	}
	scale := s.PayloadScale
	if scale < 1 {
		scale = 1
	}
	obj.LoDBytes = make([]int64, obj.LoDs.NumLevels())
	for i, lvl := range obj.LoDs.Levels {
		obj.LoDBytes[i] = int64(float64(lvl.EncodedSize()) * scale)
	}
	return obj
}

// translateObject returns a translated copy of o. The original is left
// untouched so readers holding the pre-update scene never observe the
// move (copy-on-write).
func translateObject(o *Object, d geom.Vec3) *Object {
	chain := &mesh.LoDChain{Levels: make([]*mesh.Mesh, len(o.LoDs.Levels))}
	for i, lvl := range o.LoDs.Levels {
		// Translate mutates in place; the original mesh is shared with the
		// pre-move object (and with every reader pinned to it), so clone.
		chain.Levels[i] = lvl.Clone().Translate(d)
	}
	moved := &Object{
		ID:       o.ID,
		Kind:     o.Kind,
		MBR:      geom.AABB{Min: o.MBR.Min.Add(d), Max: o.MBR.Max.Add(d)},
		LoDs:     chain,
		LoDBytes: append([]int64(nil), o.LoDBytes...),
	}
	moved.Occluder.Boxes = make([]geom.AABB, len(o.Occluder.Boxes))
	for i, b := range o.Occluder.Boxes {
		moved.Occluder.Boxes[i] = geom.AABB{Min: b.Min.Add(d), Max: b.Max.Add(d)}
	}
	moved.Occluder.Spheres = make([]Sphere, len(o.Occluder.Spheres))
	for i, sp := range o.Occluder.Spheres {
		moved.Occluder.Spheres[i] = Sphere{Center: sp.Center.Add(d), Radius: sp.Radius}
	}
	return moved
}

// ApplyOp applies one op to s and returns what changed. Shared *Object
// values are never mutated: a delete replaces the slot with a tombstoned
// copy, a move with a translated copy, so a scene cloned with CloneShell
// diverges without disturbing the original. Scene bounds only ever grow —
// both the incremental path and a from-scratch replay apply the same
// union sequence, so DoV engines built over either see the same maximum
// ray range.
func (s *Scene) ApplyOp(op Op) (OpEffect, error) {
	switch op.Kind {
	case OpInsert:
		if op.Insert == nil {
			return OpEffect{}, fmt.Errorf("scene: insert op without spec")
		}
		id := int64(len(s.Objects))
		obj := buildInsertObject(s, id, *op.Insert)
		s.Objects = append(s.Objects, obj)
		s.Bounds = s.Bounds.Union(obj.MBR)
		return OpEffect{Kind: OpInsert, ObjectID: id, NewMBR: obj.MBR}, nil
	case OpDelete:
		o := s.Object(op.ID)
		if o == nil || o.Dead {
			return OpEffect{}, fmt.Errorf("scene: delete: no live object %d", op.ID)
		}
		dead := *o
		dead.Dead = true
		s.Objects[op.ID] = &dead
		return OpEffect{Kind: OpDelete, ObjectID: op.ID, OldMBR: o.MBR}, nil
	case OpMove:
		o := s.Object(op.ID)
		if o == nil || o.Dead {
			return OpEffect{}, fmt.Errorf("scene: move: no live object %d", op.ID)
		}
		moved := translateObject(o, geom.V(op.DX, op.DY, op.DZ))
		s.Objects[op.ID] = moved
		s.Bounds = s.Bounds.Union(moved.MBR)
		return OpEffect{Kind: OpMove, ObjectID: op.ID, OldMBR: o.MBR, NewMBR: moved.MBR}, nil
	default:
		return OpEffect{}, fmt.Errorf("scene: unknown op kind %q", op.Kind)
	}
}

// CloneShell returns a copy of the scene sharing every *Object. Applying
// ops to the clone never disturbs the original (ApplyOp is copy-on-write
// at object granularity), which is how a writer prepares the next epoch
// while readers keep querying the current one.
func (s *Scene) CloneShell() *Scene {
	return &Scene{
		Objects:      append([]*Object(nil), s.Objects...),
		Bounds:       s.Bounds,
		ViewRegion:   s.ViewRegion,
		PayloadScale: s.PayloadScale,
		Params:       s.Params,
	}
}

// Replay applies ops to a clone of base and returns it. This is the
// deterministic reconstruction path: Generate(params) + Replay(ops) is
// bit-identical to the live scene that evolved through the same ops.
func Replay(base *Scene, ops []Op) (*Scene, error) {
	s := base.CloneShell()
	for i, op := range ops {
		if _, err := s.ApplyOp(op); err != nil {
			return nil, fmt.Errorf("scene: replay op %d: %w", i, err)
		}
	}
	return s, nil
}

// NumAlive returns the number of non-tombstoned objects.
func (s *Scene) NumAlive() int {
	n := 0
	for _, o := range s.Objects {
		if !o.Dead {
			n++
		}
	}
	return n
}
