package scene

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func smallParams() CityParams {
	p := DefaultCityParams()
	p.BlocksX, p.BlocksY = 2, 2
	p.BuildingsPerBlock = 4
	p.BlobsPerBlock = 2
	p.BlobDetail = 8
	p.NominalBytes = 10 << 20
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	p := smallParams()
	a := Generate(p)
	b := Generate(p)
	if len(a.Objects) != len(b.Objects) {
		t.Fatal("same params produced different object counts")
	}
	for i := range a.Objects {
		if a.Objects[i].MBR != b.Objects[i].MBR {
			t.Fatalf("object %d MBR differs", i)
		}
		if a.Objects[i].LoDs.Finest().NumTriangles() != b.Objects[i].LoDs.Finest().NumTriangles() {
			t.Fatalf("object %d LoD differs", i)
		}
	}
	// A different seed changes things.
	p2 := p
	p2.Seed = 99
	c := Generate(p2)
	same := true
	for i := range a.Objects {
		if a.Objects[i].MBR != c.Objects[i].MBR {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical cities")
	}
}

func TestGenerateShape(t *testing.T) {
	p := smallParams()
	s := Generate(p)
	if got, want := len(s.Objects), p.NumObjects(); got != want {
		t.Fatalf("objects = %d, want %d", got, want)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	nb, nl := 0, 0
	for _, o := range s.Objects {
		switch o.Kind {
		case KindBuilding:
			nb++
			if len(o.Occluder.Boxes) == 0 {
				t.Fatal("building without box occluder")
			}
		case KindBlob:
			nl++
			if len(o.Occluder.Spheres) != 1 {
				t.Fatal("blob without sphere occluder")
			}
		}
		if o.LoDs.NumLevels() != p.LoDLevels {
			t.Fatalf("object %d has %d LoD levels", o.ID, o.LoDs.NumLevels())
		}
	}
	if nb != 4*p.BuildingsPerBlock || nl != 4*p.BlobsPerBlock {
		t.Fatalf("buildings=%d blobs=%d", nb, nl)
	}
	// Objects inside city bounds; view region at eye height inside bounds.
	for _, o := range s.Objects {
		if !s.Bounds.Contains(o.MBR) {
			t.Fatalf("object %d escapes city bounds", o.ID)
		}
	}
	if s.ViewRegion.Min.Z < 1 || s.ViewRegion.Max.Z > 3 {
		t.Fatalf("view region at odd height: %v", s.ViewRegion)
	}
}

func TestNominalSizeScaling(t *testing.T) {
	p := smallParams()
	s := Generate(p)
	got := s.NominalRawBytes()
	want := p.NominalBytes
	// Integer truncation per LoD loses at most one byte per level.
	if math.Abs(float64(got-want))/float64(want) > 0.01 {
		t.Fatalf("nominal bytes = %d, want ~%d", got, want)
	}
	if s.PayloadScale <= 1 {
		t.Fatalf("payload scale = %v, expected inflation", s.PayloadScale)
	}
	// Doubling the target doubles the nominal size without changing the
	// geometry (the Figure 9 dataset-size axis).
	p2 := p
	p2.NominalBytes = 2 * p.NominalBytes
	s2 := Generate(p2)
	if len(s2.Objects) != len(s.Objects) {
		t.Fatal("nominal size changed object count")
	}
	r := float64(s2.NominalRawBytes()) / float64(s.NominalRawBytes())
	if r < 1.98 || r > 2.02 {
		t.Fatalf("size ratio = %v, want ~2", r)
	}
}

func TestOccluderRayBuilding(t *testing.T) {
	occ := Occluder{Boxes: []geom.AABB{geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 50))}}
	r := geom.NewRay(geom.V(-5, 5, 25), geom.V(1, 0, 0))
	tHit, ok := occ.IntersectRay(r, math.Inf(1))
	if !ok || math.Abs(tHit-5) > 1e-9 {
		t.Fatalf("hit=%v t=%v", ok, tHit)
	}
	// Miss above the building.
	r2 := geom.NewRay(geom.V(-5, 5, 60), geom.V(1, 0, 0))
	if _, ok := occ.IntersectRay(r2, math.Inf(1)); ok {
		t.Fatal("ray above building should miss")
	}
	// tmax cutoff.
	if _, ok := occ.IntersectRay(r, 4); ok {
		t.Fatal("tmax should prevent hit")
	}
}

func TestOccluderRaySphere(t *testing.T) {
	occ := Occluder{Spheres: []Sphere{{Center: geom.V(10, 0, 0), Radius: 2}}}
	r := geom.NewRay(geom.V(0, 0, 0), geom.V(1, 0, 0))
	tHit, ok := occ.IntersectRay(r, math.Inf(1))
	if !ok || math.Abs(tHit-8) > 1e-9 {
		t.Fatalf("hit=%v t=%v", ok, tHit)
	}
	// Tangent-ish miss.
	r2 := geom.NewRay(geom.V(0, 3, 0), geom.V(1, 0, 0))
	if _, ok := occ.IntersectRay(r2, math.Inf(1)); ok {
		t.Fatal("offset ray should miss sphere")
	}
	// Origin inside the sphere hits at 0.
	r3 := geom.NewRay(geom.V(10, 0, 0), geom.V(0, 1, 0))
	tHit, ok = occ.IntersectRay(r3, math.Inf(1))
	if !ok || tHit != 0 {
		t.Fatalf("inside-origin: hit=%v t=%v", ok, tHit)
	}
}

func TestObjectLookup(t *testing.T) {
	s := Generate(smallParams())
	if s.Object(0) == nil || s.Object(int64(len(s.Objects)-1)) == nil {
		t.Fatal("valid lookup failed")
	}
	if s.Object(-1) != nil || s.Object(int64(len(s.Objects))) != nil {
		t.Fatal("invalid lookup succeeded")
	}
}

func TestTotalTriangles(t *testing.T) {
	s := Generate(smallParams())
	n := s.TotalTriangles()
	var want int
	for _, o := range s.Objects {
		want += o.LoDs.Finest().NumTriangles()
	}
	if n != want || n == 0 {
		t.Fatalf("triangles = %d, want %d", n, want)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := Generate(smallParams())
	s.Objects[3].ID = 77
	if s.Validate() == nil {
		t.Fatal("ID corruption not caught")
	}
	s.Objects[3].ID = 3
	s.Objects[2].LoDBytes = s.Objects[2].LoDBytes[:1]
	if s.Validate() == nil {
		t.Fatal("LoDBytes mismatch not caught")
	}
}
