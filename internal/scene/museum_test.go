package scene

import (
	"testing"

	"repro/internal/geom"
)

func smallMuseum() MuseumParams {
	p := DefaultMuseumParams()
	p.RoomsX, p.RoomsY = 2, 2
	p.ExhibitsPerRoom = 2
	p.ExhibitDetail = 8
	p.NominalBytes = 16 << 20
	return p
}

func TestGenerateMuseumShape(t *testing.T) {
	p := smallMuseum()
	s := GenerateMuseum(p)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Walls: (RX+1)*RY vertical + (RY+1)*RX horizontal = 3*2+3*2 = 12.
	// Exhibits: 2*2*2 = 8.
	walls, exhibits := 0, 0
	for _, o := range s.Objects {
		switch o.Kind {
		case KindBuilding:
			walls++
		case KindBlob:
			exhibits++
		}
	}
	if walls != 12 {
		t.Fatalf("walls = %d, want 12", walls)
	}
	if exhibits != 8 {
		t.Fatalf("exhibits = %d, want 8", exhibits)
	}
	// Viewpoint slab inside the building.
	if !s.Bounds.Contains(s.ViewRegion) {
		t.Fatalf("view region %v escapes bounds %v", s.ViewRegion, s.Bounds)
	}
	// Deterministic.
	s2 := GenerateMuseum(p)
	if len(s2.Objects) != len(s.Objects) {
		t.Fatal("museum not deterministic")
	}
	for i := range s.Objects {
		if s.Objects[i].MBR != s2.Objects[i].MBR {
			t.Fatalf("object %d MBR differs between runs", i)
		}
	}
}

func TestGenerateDispatchesMuseum(t *testing.T) {
	p := smallMuseum()
	via := Generate(CityParams{Museum: &p})
	direct := GenerateMuseum(p)
	if len(via.Objects) != len(direct.Objects) {
		t.Fatal("Generate(Museum) differs from GenerateMuseum")
	}
	if via.Params.Museum == nil {
		t.Fatal("provenance lost")
	}
}

func TestMuseumDoorwaysExist(t *testing.T) {
	// An interior wall must have a gap: a segment through the door
	// opening at standing height must not hit that wall's occluder.
	p := smallMuseum()
	s := GenerateMuseum(p)
	pitch := p.RoomSize + p.WallThickness
	// Interior vertical wall between room (0,0) and (1,0): x = pitch,
	// spanning y in [0, pitch]; doorway centered at y = pitch/2 + t/2.
	doorY := pitch/2 + p.WallThickness/2
	rayOrigin := geom.V(pitch-1, doorY, 1.2)
	ray := geom.NewRay(rayOrigin, geom.V(1, 0, 0))
	blocked := false
	for _, o := range s.Objects {
		if o.Kind != KindBuilding {
			continue
		}
		if t2, ok := o.Occluder.IntersectRay(ray, 2.0); ok && t2 > 0 {
			blocked = true
		}
	}
	if blocked {
		t.Fatal("ray through a doorway is blocked — no opening generated")
	}
	// A ray at lintel height IS blocked.
	high := geom.NewRay(geom.V(pitch-1, doorY, p.DoorHeight+0.5), geom.V(1, 0, 0))
	blockedHigh := false
	for _, o := range s.Objects {
		if o.Kind != KindBuilding {
			continue
		}
		if _, ok := o.Occluder.IntersectRay(high, 2.0); ok {
			blockedHigh = true
		}
	}
	if !blockedHigh {
		t.Fatal("ray above the door should hit the lintel")
	}
	// A ray away from the door is blocked.
	solid := geom.NewRay(geom.V(pitch-1, doorY+p.RoomSize/3, 1.2), geom.V(1, 0, 0))
	blockedSolid := false
	for _, o := range s.Objects {
		if o.Kind != KindBuilding {
			continue
		}
		if _, ok := o.Occluder.IntersectRay(solid, 2.0); ok {
			blockedSolid = true
		}
	}
	if !blockedSolid {
		t.Fatal("ray through a solid wall section should be blocked")
	}
	// Exterior wall has no door: ray out of the building is blocked.
	out := geom.NewRay(geom.V(1, doorY, 1.2), geom.V(-1, 0, 0))
	blockedOut := false
	for _, o := range s.Objects {
		if o.Kind != KindBuilding {
			continue
		}
		if _, ok := o.Occluder.IntersectRay(out, 2.0); ok {
			blockedOut = true
		}
	}
	if !blockedOut {
		t.Fatal("exterior wall should be solid")
	}
}

func TestMuseumDegenerateParams(t *testing.T) {
	p := smallMuseum()
	p.RoomsX, p.RoomsY = 0, 0
	s := GenerateMuseum(p)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Objects) == 0 {
		t.Fatal("single-room museum empty")
	}
	// Door wider than the wall: wall stays solid rather than degenerate.
	p2 := smallMuseum()
	p2.DoorWidth = p2.RoomSize * 2
	s2 := GenerateMuseum(p2)
	if err := s2.Validate(); err != nil {
		t.Fatal(err)
	}
}
