// Package scene generates the synthetic city dataset of the paper's
// evaluation: "a synthetic city model containing numerous buildings and
// bunny models" with raw sizes from 400 MB to 1.6 GB (§5.1). The city is a
// street grid of blocks; each block carries box-tier buildings and
// high-polygon organic "blobs" standing in for the bunny models (see
// DESIGN.md §3.3 for the substitution note).
//
// Each object has an LoD chain (built with the QEM simplifier), a compact
// occluder proxy used by DoV ray casting, and a nominal on-disk payload
// size. Nominal sizes are the real encoded mesh bytes multiplied by the
// scene's PayloadScale, which lets a laptop-scale mesh set reproduce the
// paper's gigabyte-scale I/O accounting without materializing gigabytes.
package scene

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/simplify"
)

// ObjectKind distinguishes the two model families of the synthetic city.
type ObjectKind uint8

const (
	KindBuilding ObjectKind = iota
	KindBlob
)

func (k ObjectKind) String() string {
	switch k {
	case KindBuilding:
		return "building"
	case KindBlob:
		return "blob"
	default:
		return fmt.Sprintf("ObjectKind(%d)", uint8(k))
	}
}

// Sphere is a bounding sphere used in occluder proxies.
type Sphere struct {
	Center geom.Vec3
	Radius float64
}

// Occluder is the compact opaque proxy geometry of an object used by the
// DoV ray caster. Buildings are unions of tier boxes; blobs are bounding
// spheres slightly shrunk so they do not over-occlude. This matches the
// paper's use of a conservative visibility algorithm over occluders rather
// than exact per-polygon visibility.
type Occluder struct {
	Boxes   []geom.AABB
	Spheres []Sphere
}

// IntersectRay returns the nearest hit parameter of ray r against the
// occluder within (0, tmax), and whether there is a hit.
func (o *Occluder) IntersectRay(r geom.Ray, tmax float64) (float64, bool) {
	best := tmax
	hit := false
	for _, b := range o.Boxes {
		if t, ok := r.IntersectAABB(b, best); ok {
			// A ray starting inside a box reports t=0; count it as a hit
			// at distance 0 only if the origin is truly inside.
			best = t
			hit = true
			if best == 0 {
				return 0, true
			}
		}
	}
	for _, s := range o.Spheres {
		if t, ok := raySphere(r, s, best); ok {
			best = t
			hit = true
		}
	}
	if !hit {
		return 0, false
	}
	return best, true
}

func raySphere(r geom.Ray, s Sphere, tmax float64) (float64, bool) {
	oc := r.Origin.Sub(s.Center)
	a := r.Dir.Len2()
	halfB := oc.Dot(r.Dir)
	c := oc.Len2() - s.Radius*s.Radius
	disc := halfB*halfB - a*c
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	t := (-halfB - sq) / a
	if t <= 0 {
		t = (-halfB + sq) / a // origin inside the sphere
		if t <= 0 {
			return 0, false
		}
		return 0, true // origin inside: hit at distance 0
	}
	if t >= tmax {
		return 0, false
	}
	return t, true
}

// Object is one model of the city: an LoD chain plus spatial and occlusion
// metadata. IDs are dense in [0, len(Scene.Objects)).
type Object struct {
	ID       int64
	Kind     ObjectKind
	MBR      geom.AABB
	LoDs     *mesh.LoDChain
	Occluder Occluder
	// LoDBytes[i] is the nominal on-disk byte size of LoD level i (encoded
	// size × Scene.PayloadScale). The storage layer allocates this many
	// bytes for the level's model record.
	LoDBytes []int64
	// Dead marks a tombstoned object (see ops.go): the slot keeps its ID
	// so dense indexing survives deletes, but the object is skipped by
	// the spatial index, the DoV engine and the HDoV-tree.
	Dead bool
}

// Scene is the generated city.
type Scene struct {
	Objects []*Object
	Bounds  geom.AABB
	// ViewRegion is the slab of viewpoint space the walkthrough moves in
	// (street level, eye height).
	ViewRegion geom.AABB
	// PayloadScale inflates encoded mesh bytes into nominal payload bytes.
	PayloadScale float64
	Params       CityParams
}

// CityParams controls city generation. All randomness derives from Seed, so
// a parameter set is a complete, reproducible dataset description.
type CityParams struct {
	Seed              int64
	BlocksX, BlocksY  int
	BlockSize         float64 // street-to-street pitch in meters
	StreetWidth       float64
	BuildingsPerBlock int
	BlobsPerBlock     int
	MinHeight         float64
	MaxHeight         float64
	LoDLevels         int
	LoDRatio          float64
	BlobDetail        int // sphere tessellation parameter for blobs
	// FacadeDetail is the per-face tessellation of building tiers
	// (12·FacadeDetail² triangles per tier). Architectural models carry
	// facade geometry, so buildings are hundreds of polygons like the
	// paper's — and simplification has real detail to remove.
	FacadeDetail int
	// NominalBytes, when positive, sets PayloadScale so that the summed
	// nominal LoD payload equals this raw dataset size — the paper's
	// 400 MB … 1.6 GB axis (Figure 9).
	NominalBytes int64
	// Museum, when non-nil, makes Generate produce the indoor museum
	// dataset instead of the city; the other fields are ignored. Living
	// inside CityParams keeps one provenance record per scene, so the
	// persistence layer can regenerate either kind from its manifest.
	Museum *MuseumParams
}

// DefaultCityParams returns a laptop-scale city comparable in structure to
// the paper's evaluation dataset (thousands of objects).
func DefaultCityParams() CityParams {
	return CityParams{
		Seed:              1,
		BlocksX:           8,
		BlocksY:           8,
		BlockSize:         100,
		StreetWidth:       20,
		BuildingsPerBlock: 8,
		BlobsPerBlock:     4,
		MinHeight:         10,
		MaxHeight:         80,
		LoDLevels:         4,
		// Halving polygon count per level matches the qslim-generated
		// chains of the paper's era; an over-aggressive ratio would make
		// coarse object LoDs so tiny that internal LoDs could never be
		// the cheaper alternative (§3.3's trade-off).
		LoDRatio:     0.5,
		BlobDetail:   12,
		FacadeDetail: 4,
		NominalBytes: 400 << 20, // 400 MB nominal raw size
	}
}

// NumObjects returns how many objects the parameter set will generate.
func (p CityParams) NumObjects() int {
	return p.BlocksX * p.BlocksY * (p.BuildingsPerBlock + p.BlobsPerBlock)
}

// Generate builds the scene described by p: the procedural city, or the
// museum when p.Museum is set. Deterministic in p.
func Generate(p CityParams) *Scene {
	if p.Museum != nil {
		return GenerateMuseum(*p.Museum)
	}
	if p.BlocksX < 1 || p.BlocksY < 1 {
		p.BlocksX, p.BlocksY = 1, 1
	}
	if p.LoDLevels < 1 {
		p.LoDLevels = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	s := &Scene{Params: p, PayloadScale: 1}

	pitch := p.BlockSize + p.StreetWidth
	var id int64
	for by := 0; by < p.BlocksY; by++ {
		for bx := 0; bx < p.BlocksX; bx++ {
			ox := float64(bx)*pitch + p.StreetWidth
			oy := float64(by)*pitch + p.StreetWidth
			block := geom.Box(
				geom.V(ox, oy, 0),
				geom.V(ox+p.BlockSize, oy+p.BlockSize, 0),
			)
			id = generateBlock(s, p, rng, block, id)
		}
	}

	// City bounds and viewpoint slab (streets at eye height 1.5-2.0 m).
	b := geom.EmptyAABB()
	for _, o := range s.Objects {
		b = b.Union(o.MBR)
	}
	total := geom.V(float64(p.BlocksX)*pitch+p.StreetWidth, float64(p.BlocksY)*pitch+p.StreetWidth, 0)
	b = b.Union(geom.Box(geom.V(0, 0, 0), total))
	s.Bounds = b
	s.ViewRegion = geom.Box(
		geom.V(0, 0, 1.5),
		geom.V(total.X, total.Y, 2.0),
	)

	applyNominalScaling(s, p.NominalBytes)
	return s
}

// generateBlock fills one city block with buildings around a subgrid and
// blobs along the block edges, returning the next object ID.
func generateBlock(s *Scene, p CityParams, rng *rand.Rand, block geom.AABB, id int64) int64 {
	// Buildings: place on a jittered subgrid inside the block.
	n := p.BuildingsPerBlock
	cols := 1
	for cols*cols < n {
		cols++
	}
	cellW := block.Size().X / float64(cols)
	cellH := block.Size().Y / float64(cols)
	placed := 0
	for gy := 0; gy < cols && placed < n; gy++ {
		for gx := 0; gx < cols && placed < n; gx++ {
			fw := cellW * (0.4 + 0.35*rng.Float64())
			fh := cellH * (0.4 + 0.35*rng.Float64())
			x0 := block.Min.X + float64(gx)*cellW + (cellW-fw)*rng.Float64()
			y0 := block.Min.Y + float64(gy)*cellH + (cellH-fh)*rng.Float64()
			base := geom.Box(geom.V(x0, y0, 0), geom.V(x0+fw, y0+fh, 0))
			height := p.MinHeight + (p.MaxHeight-p.MinHeight)*rng.Float64()*rng.Float64()
			tiers := mesh.TierBoxes(base, height, 1+rng.Intn(3), rng)
			facade := p.FacadeDetail
			if facade < 1 {
				facade = 1
			}
			parts := make([]*mesh.Mesh, len(tiers))
			for ti, tb := range tiers {
				parts[ti] = mesh.NewTessellatedBox(tb, facade)
			}
			m := mesh.Merge(parts...)
			obj := &Object{
				ID:   id,
				Kind: KindBuilding,
				MBR:  m.Bounds(),
				LoDs: simplify.BuildLoDChain(m, p.LoDLevels, p.LoDRatio),
				// The opaque tier boxes double as the occlusion proxy —
				// conservative-opaque, appropriate for city buildings.
				Occluder: Occluder{Boxes: tiers},
			}
			s.Objects = append(s.Objects, obj)
			id++
			placed++
		}
	}

	// Blobs: organic clutter near the block edges (sidewalks).
	for i := 0; i < p.BlobsPerBlock; i++ {
		r := 0.8 + 1.7*rng.Float64()
		edge := rng.Intn(4)
		var cx, cy float64
		switch edge {
		case 0:
			cx, cy = block.Min.X+rng.Float64()*block.Size().X, block.Min.Y+r
		case 1:
			cx, cy = block.Min.X+rng.Float64()*block.Size().X, block.Max.Y-r
		case 2:
			cx, cy = block.Min.X+r, block.Min.Y+rng.Float64()*block.Size().Y
		default:
			cx, cy = block.Max.X-r, block.Min.Y+rng.Float64()*block.Size().Y
		}
		center := geom.V(cx, cy, r)
		m := mesh.NewBlob(center, r, p.BlobDetail, rng.Int63())
		obj := &Object{
			ID:   id,
			Kind: KindBlob,
			MBR:  m.Bounds(),
			LoDs: simplify.BuildLoDChain(m, p.LoDLevels, p.LoDRatio),
		}
		obj.Occluder = Occluder{Spheres: []Sphere{{Center: center, Radius: r * 0.9}}}
		s.Objects = append(s.Objects, obj)
		id++
	}
	return id
}

// Object returns the object with the given ID, or nil.
func (s *Scene) Object(id int64) *Object {
	if id < 0 || int(id) >= len(s.Objects) {
		return nil
	}
	return s.Objects[id]
}

// NominalRawBytes returns the total nominal payload size of all LoDs — the
// dataset-size axis of Figure 9.
func (s *Scene) NominalRawBytes() int64 {
	var total int64
	for _, o := range s.Objects {
		for _, b := range o.LoDBytes {
			total += b
		}
	}
	return total
}

// TotalTriangles returns the polygon count of the finest LoDs of live
// objects.
func (s *Scene) TotalTriangles() int {
	n := 0
	for _, o := range s.Objects {
		if o.Dead {
			continue
		}
		n += o.LoDs.Finest().NumTriangles()
	}
	return n
}

// Validate checks scene invariants: dense IDs, valid LoD chains, payload
// sizes consistent with PayloadScale, occluders within the MBR.
func (s *Scene) Validate() error {
	for i, o := range s.Objects {
		if o.ID != int64(i) {
			return fmt.Errorf("scene: object %d has ID %d", i, o.ID)
		}
		if o.Dead {
			// Tombstones keep their geometry but are exempt from the
			// spatial invariants; nothing dereferences them.
			continue
		}
		if err := o.LoDs.Validate(); err != nil {
			return fmt.Errorf("scene: object %d: %w", i, err)
		}
		if len(o.LoDBytes) != o.LoDs.NumLevels() {
			return fmt.Errorf("scene: object %d has %d LoDBytes for %d levels",
				i, len(o.LoDBytes), o.LoDs.NumLevels())
		}
		if o.MBR.IsEmpty() {
			return fmt.Errorf("scene: object %d has empty MBR", i)
		}
		grown := o.MBR.Expand(1e-6)
		for _, b := range o.Occluder.Boxes {
			if !grown.Contains(b) {
				return fmt.Errorf("scene: object %d occluder box %v outside MBR %v", i, b, o.MBR)
			}
		}
		for _, sp := range o.Occluder.Spheres {
			if !grown.Expand(sp.Radius).ContainsPoint(sp.Center) {
				return fmt.Errorf("scene: object %d occluder sphere outside MBR", i)
			}
		}
	}
	return nil
}
