package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cells"
)

// TestConcurrentQueriesDuringPromotion hammers the router with querying
// clients while replicas are promoted, dropped, and the heat EMA decays
// concurrently. Every answer must still match the baseline — a session
// pins its table, so a promotion mid-flight can never hand it a
// half-built store — and the run must be clean under -race.
func TestConcurrentQueriesDuringPromotion(t *testing.T) {
	env := fixture(t)
	want := golden(t, env, false, SchemeIndexedVertical)
	r, err := NewRouter(env.sc, env.disk, env.man[false], Config{
		Shards: 4, Scheme: SchemeIndexedVertical, CachePagesPerShard: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := env.tree.Grid.NumCells()
	const clients = 8
	const rounds = 30

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, clients+1)

	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; !stop.Load(); round++ {
				sess := r.Session()
				for c := 0; c < n; c++ {
					var fp string
					if (round+w)%2 == 0 {
						res, err := sess.QueryCell(cells.CellID(c), diffEta)
						if err != nil {
							errc <- fmt.Errorf("client %d cell %d: %w", w, c, err)
							return
						}
						fp = fingerprint(res)
					} else {
						batch, err := sess.QueryMany([]cells.CellID{cells.CellID(c)}, diffEta)
						if err != nil {
							errc <- fmt.Errorf("client %d scatter cell %d: %w", w, c, err)
							return
						}
						fp = fingerprint(batch[0])
					}
					if fp != want[c] {
						errc <- fmt.Errorf("client %d cell %d diverged during promotion churn", w, c)
						return
					}
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < rounds; i++ {
			if _, err := r.PromoteHot(2); err != nil {
				errc <- fmt.Errorf("promotion round %d: %w", i, err)
				return
			}
			r.Heat().Decay()
			if i%5 == 4 {
				r.DropReplicas()
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
