package shard

import (
	"fmt"
	"sync"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/storage"
)

// Session is one client's routed view of the sharded database. It pins
// the topology current at creation (promotions after that are invisible,
// exactly like scene epochs) and lazily opens one core session per shard
// it actually touches — a walkthrough that stays inside one shard's
// range never pays for the others. A Session serves one logical client:
// do not share one between goroutines.
type Session struct {
	router *Router
	tab    *Table
	// picks[i] selects shard i's serving candidate (0 = primary); fixed
	// at creation so cursors and cuts stay warm on one store.
	picks []int
	trees []*core.Tree // lazy per-shard core sessions
}

// Shards returns the pinned topology's shard count.
func (s *Session) Shards() int { return s.tab.Map.Shards() }

// Grid returns the viewing-cell grid (identical across shards).
func (s *Session) Grid() *cells.Grid { return s.tab.Primaries[0].Tree.Grid }

// Owner returns the shard owning cell c (-1 outside the grid).
func (s *Session) Owner(c cells.CellID) int { return s.tab.Map.Owner(c) }

// Tree returns the core session serving cell c, creating it on first
// use. Callers that hold a result from cell c must fetch through the
// same tree — Route in the walkthrough does exactly that.
func (s *Session) Tree(c cells.CellID) (*core.Tree, error) {
	i := s.tab.Map.Owner(c)
	if i < 0 {
		return nil, fmt.Errorf("shard: cell %d outside the %d-cell grid", c, s.tab.Map.NumCells)
	}
	return s.shardTree(i), nil
}

// RouteTree is the walkthrough's per-frame routing hook: Tree plus a
// heat hit, so walker traffic feeds hot-range promotion exactly like
// direct queries do. Returns nil for a cell outside the grid (the
// player then falls back to its unrouted base tree).
func (s *Session) RouteTree(c cells.CellID) *core.Tree {
	i := s.tab.Map.Owner(c)
	if i < 0 {
		return nil
	}
	s.router.heat.Hit(int(c))
	return s.shardTree(i)
}

// shardTree returns (creating if needed) the core session for shard i.
func (s *Session) shardTree(i int) *core.Tree {
	if s.trees[i] == nil {
		s.trees[i] = s.tab.storeAt(i, s.picks[i]).Tree.Session()
	}
	return s.trees[i]
}

// QueryCell routes the visibility query to the owning shard and records
// the hit for hot-range tracking.
func (s *Session) QueryCell(c cells.CellID, eta float64) (*core.QueryResult, error) {
	t, err := s.Tree(c)
	if err != nil {
		return nil, err
	}
	s.router.heat.Hit(int(c))
	return t.Query(c, eta)
}

// QueryCellCoherent is QueryCell through the owning shard's retained
// traversal cut. Each shard session keeps its own cut, so walking back
// and forth over a boundary stays warm on both sides.
func (s *Session) QueryCellCoherent(c cells.CellID, eta float64) (*core.QueryResult, error) {
	t, err := s.Tree(c)
	if err != nil {
		return nil, err
	}
	s.router.heat.Hit(int(c))
	return t.QueryCoherent(c, eta)
}

// QueryMany scatter-gathers one query per cell: cells are grouped by
// owning shard, each shard's group runs concurrently (in cell order
// within the shard, preserving that store's deterministic access
// sequence), and results land at their input positions — so the output
// is byte-identical to issuing the queries one by one against a single
// store, in the same order per shard. The first error (by input
// position) aborts the whole batch.
func (s *Session) QueryMany(cs []cells.CellID, eta float64) ([]*core.QueryResult, error) {
	out := make([]*core.QueryResult, len(cs))
	errs := make([]error, len(cs))
	// Group input positions by shard; order within a group follows the
	// input, which keeps per-store access sequences deterministic.
	groups := make([][]int, s.Shards())
	for pos, c := range cs {
		i := s.tab.Map.Owner(c)
		if i < 0 {
			return nil, fmt.Errorf("shard: cell %d outside the %d-cell grid", c, s.tab.Map.NumCells)
		}
		groups[i] = append(groups[i], pos)
	}
	var wg sync.WaitGroup
	for i, group := range groups {
		if len(group) == 0 {
			continue
		}
		t := s.shardTree(i) // create before the goroutine: trees is not locked
		wg.Add(1)
		go func(t *core.Tree, group []int) {
			defer wg.Done()
			for _, pos := range group {
				c := cs[pos]
				s.router.heat.Hit(int(c))
				out[pos], errs[pos] = t.Query(c, eta)
			}
		}(t, group)
	}
	wg.Wait()
	for pos, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: cell %d: %w", cs[pos], err)
		}
	}
	return out, nil
}

// FetchPayloads charges the heavy I/O of the result's items against the
// shard that answered it (routed by the result's cell).
func (s *Session) FetchPayloads(res *core.QueryResult) (int, error) {
	t, err := s.Tree(res.Cell)
	if err != nil {
		return 0, err
	}
	return t.FetchPayloads(res, nil)
}

// Stats sums this session's own I/O across every shard it touched.
func (s *Session) Stats() storage.Stats {
	var out storage.Stats
	for _, t := range s.trees {
		if t != nil {
			out = out.Add(t.IO.Stats())
		}
	}
	return out
}

// ShardStatsOf returns this session's I/O against one shard (zero if the
// session never touched it).
func (s *Session) ShardStatsOf(i int) storage.Stats {
	if i < 0 || i >= len(s.trees) || s.trees[i] == nil {
		return storage.Stats{}
	}
	return s.trees[i].IO.Stats()
}

// CoherenceStats sums warm-path accounting across the session's shards.
func (s *Session) CoherenceStats() core.CoherenceStats {
	var out core.CoherenceStats
	for _, t := range s.trees {
		if t == nil {
			continue
		}
		cs := t.CoherenceStats()
		out.Incremental += cs.Incremental
		out.Full += cs.Full
		out.NodesReused += cs.NodesReused
		out.Expanded += cs.Expanded
		out.Collapsed += cs.Collapsed
	}
	return out
}

// ResetStats zeroes the session's per-shard counters.
func (s *Session) ResetStats() {
	for _, t := range s.trees {
		if t != nil {
			t.IO.ResetStats()
		}
	}
}

// OnReplica reports whether shard i's queries from this session are
// served by a replica rather than the primary (test and stats hook).
func (s *Session) OnReplica(i int) bool {
	return i >= 0 && i < len(s.picks) && s.picks[i] > 0
}
