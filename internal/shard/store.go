package shard

import (
	"fmt"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/scene"
	"repro/internal/storage"
	"repro/internal/vstore"
)

// Scheme selects the V-page layout a store serves, mirroring the root
// package's ordering (indexed-vertical is the zero value).
type Scheme int

const (
	SchemeIndexedVertical Scheme = iota
	SchemeVertical
	SchemeHorizontal
)

// Manifests carries everything needed to reopen the tree and every
// storage scheme over a cloned disk.
type Manifests struct {
	Tree  core.TreeManifest
	H     vstore.HorizontalManifest
	V     vstore.VerticalManifest
	IV    vstore.IndexedVerticalManifest
	Naive naive.Manifest
}

// StoreConfig shapes one shard store.
type StoreConfig struct {
	Scheme        Scheme
	Parallel      int
	FaultTolerant bool
	// CachePages is the store's private buffer-pool capacity (0 = none).
	CachePages int
	// Trim releases the V-pages of cells the shard does not own,
	// shrinking the store's resident footprint to roughly its own range.
	// Trimmed pages read back zero-filled, so a trimmed store must only
	// ever be asked about owned cells — which is what the router
	// guarantees.
	Trim bool
}

// Store is one shard's complete serving state: a private disk clone with
// the tree and all three schemes reopened over it. Queries against
// different stores never contend on a disk lock, buffer pool, or stream
// head — that is the whole point of sharding.
type Store struct {
	Disk  *storage.Disk
	Tree  *core.Tree
	H     *vstore.Horizontal
	V     *vstore.Vertical
	IV    *vstore.IndexedVertical
	Naive *naive.Store
	// Shard is the owning shard index; Replica marks a hot-range mirror.
	Shard   int
	Replica bool
}

// OpenStore builds shard idx's store: clone the source disk, reopen the
// tree and schemes over the clone, select the active scheme, optionally
// trim foreign V-pages, and install the private buffer pool. A clone of
// the simulated disk shares immutable page slices with the source, so
// opening a store is cheap; a file-backed clone copies its written pages
// into a sibling file (one real file per shard arm). No simulated I/O is
// charged either way (opening is setup, not workload).
func OpenStore(sc *scene.Scene, src *storage.Disk, man Manifests, m Map, idx int, cfg StoreConfig) (*Store, error) {
	d, err := src.Clone()
	if err != nil {
		return nil, fmt.Errorf("shard %d: clone: %w", idx, err)
	}
	t, err := core.OpenTree(sc, d, man.Tree)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", idx, err)
	}
	h, err := vstore.OpenHorizontal(d, t.Grid, man.H)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", idx, err)
	}
	v, err := vstore.OpenVertical(d, t.Grid, man.V)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", idx, err)
	}
	iv, err := vstore.OpenIndexedVertical(d, t.Grid, man.IV)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", idx, err)
	}
	nv, err := naive.Open(t, man.Naive)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", idx, err)
	}
	st := &Store{Disk: d, Tree: t, H: h, V: v, IV: iv, Naive: nv, Shard: idx}
	st.SetScheme(cfg.Scheme)
	t.FaultTolerant = cfg.FaultTolerant
	t.SetParallel(cfg.Parallel)
	if cfg.Trim {
		if err := st.trimForeign(m); err != nil {
			return nil, fmt.Errorf("shard %d: trim: %w", idx, err)
		}
	}
	if cfg.CachePages > 0 {
		d.SetCacheSize(cfg.CachePages)
	}
	// Enumeration during trim charged reads; a store starts with clean
	// accounting.
	d.ResetStats()
	t.IO.ResetStats()
	return st, nil
}

// SetScheme switches the store's active V-page layout.
func (s *Store) SetScheme(sch Scheme) {
	switch sch {
	case SchemeHorizontal:
		s.Tree.SetVStore(s.H)
	case SchemeVertical:
		s.Tree.SetVStore(s.V)
	default:
		s.Tree.SetVStore(s.IV)
	}
}

// trimForeign releases V-pages that belong exclusively to cells outside
// the store's owned range, across all three schemes. Pages shared with
// an owned cell (horizontal V-pages pack several nodes; vertical
// segments pack neighboring cells) are kept.
func (s *Store) trimForeign(m Map) error {
	pagers := []core.CellPager{s.H, s.V, s.IV}
	keep := make(map[storage.PageID]bool)
	var foreign []storage.PageID
	for c := 0; c < m.NumCells; c++ {
		owned := m.Owner(cells.CellID(c)) == s.Shard
		for _, p := range pagers {
			ids, err := p.CellPages(s.Disk, cells.CellID(c))
			if err != nil {
				return err
			}
			if owned {
				for _, id := range ids {
					keep[id] = true
				}
			} else {
				foreign = append(foreign, ids...)
			}
		}
	}
	drop := foreign[:0]
	for _, id := range foreign {
		if !keep[id] {
			drop = append(drop, id)
		}
	}
	s.Disk.ReleasePages(drop)
	return nil
}
