package shard

import (
	"testing"

	"repro/internal/cells"
)

func TestMapPartition(t *testing.T) {
	for _, tc := range []struct{ cells, shards int }{
		{144, 1}, {144, 2}, {144, 8}, {10, 3}, {7, 7},
	} {
		m, err := NewMap(tc.cells, tc.shards)
		if err != nil {
			t.Fatalf("NewMap(%d,%d): %v", tc.cells, tc.shards, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("NewMap(%d,%d) invalid: %v", tc.cells, tc.shards, err)
		}
		if m.Shards() != tc.shards {
			t.Fatalf("NewMap(%d,%d): %d shards", tc.cells, tc.shards, m.Shards())
		}
		counts := make([]int, tc.shards)
		for c := 0; c < tc.cells; c++ {
			i := m.Owner(cells.CellID(c))
			if i < 0 || i >= tc.shards {
				t.Fatalf("cell %d owned by shard %d", c, i)
			}
			lo, hi := m.Range(i)
			if cells.CellID(c) < lo || cells.CellID(c) >= hi {
				t.Fatalf("cell %d outside its owner's range [%d,%d)", c, lo, hi)
			}
			counts[i]++
		}
		total := 0
		for i, n := range counts {
			if n == 0 {
				t.Fatalf("shard %d owns no cells", i)
			}
			if max, min := (tc.cells+tc.shards-1)/tc.shards, tc.cells/tc.shards; n > max || n < min {
				t.Fatalf("shard %d owns %d cells, want within [%d,%d]", i, n, min, max)
			}
			total += n
		}
		if total != tc.cells {
			t.Fatalf("partition covers %d of %d cells", total, tc.cells)
		}
	}
	if m, _ := NewMap(16, 4); m.Owner(-1) != -1 || m.Owner(16) != -1 {
		t.Fatal("out-of-grid cells must have no owner")
	}
	if _, err := NewMap(4, 5); err == nil {
		t.Fatal("more shards than cells must fail")
	}
}

func TestMapValidateRejectsBadMaps(t *testing.T) {
	bad := []Map{
		{NumCells: 10, Starts: nil},
		{NumCells: 10, Starts: []cells.CellID{1}},
		{NumCells: 10, Starts: []cells.CellID{0, 5, 5}},
		{NumCells: 10, Starts: []cells.CellID{0, 12}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("bad map %d validated", i)
		}
	}
}

func TestHeatRanking(t *testing.T) {
	m, _ := NewMap(12, 4) // shards own [0,3) [3,6) [6,9) [9,12)
	h := NewHeat(12)
	for i := 0; i < 10; i++ {
		h.Hit(4) // shard 1
	}
	for i := 0; i < 6; i++ {
		h.Hit(9) // shard 3
	}
	h.Hit(0) // shard 0
	top := h.TopShards(m, 2)
	if len(top) != 2 || top[0] != 1 || top[1] != 3 {
		t.Fatalf("TopShards = %v, want [1 3]", top)
	}
	if got := h.TopShards(m, 8); len(got) != 3 {
		t.Fatalf("TopShards(8) returned %v, want the 3 shards with traffic", got)
	}
	h.Decay()
	if got := h.Cell(4); got != 5 {
		t.Fatalf("decayed EMA = %v, want 5", got)
	}
	// Ties break by shard index, deterministically.
	h2 := NewHeat(12)
	h2.Hit(7)
	h2.Hit(10)
	if top := h2.TopShards(m, 2); top[0] != 2 || top[1] != 3 {
		t.Fatalf("tied TopShards = %v, want [2 3]", top)
	}
}
