package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/scene"
	"repro/internal/storage"
)

// Config shapes a router's shard topology.
type Config struct {
	// Shards is the number of contiguous cell-range partitions.
	Shards int
	// Scheme, Parallel and FaultTolerant are applied to every store.
	Scheme        Scheme
	Parallel      int
	FaultTolerant bool
	// CachePagesPerShard is each store's private buffer-pool capacity.
	CachePagesPerShard int
	// Trim releases foreign V-pages from every store (see StoreConfig).
	Trim bool
}

// Table is one immutable shard topology: the map plus the store set.
// Published copy-on-write by the Router — never mutated after Publish,
// so a Session can keep reading it forever without locks, exactly like a
// pinned scene epoch.
type Table struct {
	Map       Map
	Primaries []*Store
	// Replicas[i] holds shard i's hot-range mirrors (usually empty).
	Replicas [][]*Store
}

// stores returns shard i's serving candidates: primary plus replicas.
func (t *Table) stores(i int) int { return 1 + len(t.Replicas[i]) }

// storeAt returns shard i's pick-th candidate (0 = primary).
func (t *Table) storeAt(i, pick int) *Store {
	if pick == 0 {
		return t.Primaries[i]
	}
	return t.Replicas[i][pick-1]
}

// Router owns the shard topology and routes sessions to stores. The
// current Table is read via an atomic pointer; topology changes
// (promotion, demotion, scheme flips) build the replacement off to the
// side and swap it under mu — the mutex serializes writers only, and no
// I/O ever happens while it is held.
type Router struct {
	sc   *scene.Scene
	src  *storage.Disk
	man  Manifests
	heat *Heat
	// rr spreads sessions over a shard's primary+replica candidates.
	rr atomic.Uint64
	// mu serializes topology writers; the published Table itself is read
	// lock-free through cur.
	mu  sync.Mutex
	cfg Config // hdov:guarded-by mu
	cur atomic.Pointer[Table]
}

// NewRouter partitions the grid into cfg.Shards contiguous ranges and
// opens one primary store per shard over clones of src.
func NewRouter(sc *scene.Scene, src *storage.Disk, man Manifests, cfg Config) (*Router, error) {
	numCells, err := cellCount(man)
	if err != nil {
		return nil, err
	}
	m, err := NewMap(numCells, cfg.Shards)
	if err != nil {
		return nil, err
	}
	r := &Router{sc: sc, src: src, man: man, cfg: cfg, heat: NewHeat(numCells)}
	tab := &Table{Map: m, Primaries: make([]*Store, m.Shards()), Replicas: make([][]*Store, m.Shards())}
	for i := 0; i < m.Shards(); i++ {
		st, err := r.open(m, i, cfg)
		if err != nil {
			return nil, err
		}
		tab.Primaries[i] = st
	}
	r.cur.Store(tab)
	return r, nil
}

// cellCount derives the grid size from the tree manifest.
func cellCount(man Manifests) (int, error) {
	g, err := man.Tree.Grid.Grid()
	if err != nil {
		return 0, fmt.Errorf("shard: %w", err)
	}
	return g.NumCells(), nil
}

// open builds one store under the current per-store settings.
func (r *Router) open(m Map, idx int, cfg Config) (*Store, error) {
	return OpenStore(r.sc, r.src, r.man, m, idx, StoreConfig{
		Scheme:        cfg.Scheme,
		Parallel:      cfg.Parallel,
		FaultTolerant: cfg.FaultTolerant,
		CachePages:    cfg.CachePagesPerShard,
		Trim:          cfg.Trim,
	})
}

// Table returns the current topology snapshot.
func (r *Router) Table() *Table { return r.cur.Load() }

// Heat returns the per-cell hit tracker.
func (r *Router) Heat() *Heat { return r.heat }

// Shards returns the shard count.
func (r *Router) Shards() int { return r.Table().Map.Shards() }

// PromoteHot mirrors the k hottest shard ranges (per the hit EMAs) onto
// replica stores and publishes the new topology. The replicas are built
// fully — cloned disk, reopened tree and schemes, warm-free pool —
// before the table swap, so no session ever observes a half-built
// store; sessions created before the swap keep their pinned table. It
// returns the promoted shard indices (empty when no shard has traffic).
// Shards already carrying a replica are not promoted twice.
func (r *Router) PromoteHot(k int) ([]int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.cur.Load()
	hot := r.heat.TopShards(old.Map, k)
	promoted := make([]int, 0, len(hot))
	next := &Table{
		Map:       old.Map,
		Primaries: old.Primaries,
		Replicas:  make([][]*Store, len(old.Replicas)),
	}
	copy(next.Replicas, old.Replicas)
	for _, i := range hot {
		if len(next.Replicas[i]) > 0 {
			continue
		}
		st, err := r.open(old.Map, i, r.cfg)
		if err != nil {
			return promoted, err
		}
		st.Replica = true
		next.Replicas[i] = []*Store{st}
		promoted = append(promoted, i)
	}
	if len(promoted) > 0 {
		r.cur.Store(next)
	}
	return promoted, nil
}

// DropReplicas demotes every replica: the next published table serves
// primaries only. Sessions pinned to the old table keep their replicas.
func (r *Router) DropReplicas() {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.cur.Load()
	next := &Table{
		Map:       old.Map,
		Primaries: old.Primaries,
		Replicas:  make([][]*Store, len(old.Replicas)),
	}
	r.cur.Store(next)
}

// Session routes through the current topology. Each session picks one
// candidate (primary or replica) per shard, rotating over sessions so
// concurrent clients spread across a hot shard's mirrors; the pick is
// sticky for the session's lifetime, preserving per-store cursor and
// cut coherence.
func (r *Router) Session() *Session {
	tab := r.cur.Load()
	n := r.rr.Add(1) - 1
	picks := make([]int, tab.Map.Shards())
	for i := range picks {
		picks[i] = int(n % uint64(tab.stores(i)))
	}
	return &Session{router: r, tab: tab, picks: picks, trees: make([]*core.Tree, tab.Map.Shards())}
}

// forEachStore visits every store in the current table, primaries first,
// then replicas in shard order.
func (r *Router) forEachStore(fn func(*Store)) {
	tab := r.cur.Load()
	for _, st := range tab.Primaries {
		fn(st)
	}
	for _, reps := range tab.Replicas {
		for _, st := range reps {
			fn(st)
		}
	}
}

// SetScheme flips the active V-page layout on every store. Sessions
// created afterwards see the new scheme.
func (r *Router) SetScheme(s Scheme) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfg.Scheme = s
	r.forEachStore(func(st *Store) { st.SetScheme(s) })
}

// SetParallel bounds per-query traversal fan-out on every store.
func (r *Router) SetParallel(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfg.Parallel = n
	r.forEachStore(func(st *Store) { st.Tree.SetParallel(n) })
}

// SetFaultTolerant toggles degraded-mode traversal on every store.
func (r *Router) SetFaultTolerant(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfg.FaultTolerant = on
	r.forEachStore(func(st *Store) { st.Tree.FaultTolerant = on })
}

// SetCacheSize installs a buffer pool of n pages on every store — the
// per-shard slice of an aggregate budget is the caller's division.
func (r *Router) SetCacheSize(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfg.CachePagesPerShard = n
	r.forEachStore(func(st *Store) { st.Disk.SetCacheSize(n) })
}

// InjectFaults installs the same deterministic fault plan on every
// store's disk; ClearFaults removes it and lifts quarantines.
func (r *Router) InjectFaults(cfg storage.FaultConfig) {
	r.forEachStore(func(st *Store) { st.Disk.InjectFaults(cfg) })
}

// ClearFaults removes fault injectors and quarantine marks everywhere.
func (r *Router) ClearFaults() {
	r.forEachStore(func(st *Store) {
		st.Disk.ClearFaults()
		st.Disk.ClearQuarantine()
	})
}

// Close releases every store's storage media in the current table —
// file-backed clones hold real file handles and ephemeral sibling files;
// simulated clones are no-ops. Stores pinned by older tables (sessions
// that predate a promotion or demotion) are not tracked here; callers
// drain sessions before closing. The router must not route afterwards.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	r.forEachStore(func(st *Store) {
		if err := st.Disk.Close(); err != nil && first == nil {
			first = err
		}
	})
	return first
}

// ShardStats returns each shard's primary-store accounting, indexed by
// shard. Replica traffic is reported separately by ReplicaStats.
func (r *Router) ShardStats() []storage.Stats {
	tab := r.cur.Load()
	out := make([]storage.Stats, len(tab.Primaries))
	for i, st := range tab.Primaries {
		out[i] = st.Disk.Stats()
	}
	return out
}

// ReplicaStats returns per-shard summed replica accounting (zero for
// shards without replicas).
func (r *Router) ReplicaStats() []storage.Stats {
	tab := r.cur.Load()
	out := make([]storage.Stats, len(tab.Replicas))
	for i, reps := range tab.Replicas {
		for _, st := range reps {
			out[i] = out[i].Add(st.Disk.Stats())
		}
	}
	return out
}

// Bases returns every store's base tree in the current topology
// (primaries in shard order, then each shard's replicas) — the serve
// path installs shared shed policies on all of them so routed sessions
// degrade fidelity in lockstep.
func (r *Router) Bases() []*core.Tree {
	tab := r.cur.Load()
	var out []*core.Tree
	for _, st := range tab.Primaries {
		out = append(out, st.Tree)
	}
	for _, reps := range tab.Replicas {
		for _, st := range reps {
			out = append(out, st.Tree)
		}
	}
	return out
}

// ResetStats zeroes every store's cumulative disk and traversal
// accounting (primaries and replicas alike).
func (r *Router) ResetStats() {
	r.forEachStore(func(st *Store) {
		st.Disk.ResetStats()
		st.Tree.IO.ResetStats()
	})
}

// ShardPoolStats returns each shard's primary buffer-pool counters.
func (r *Router) ShardPoolStats() []storage.PoolStats {
	tab := r.cur.Load()
	out := make([]storage.PoolStats, len(tab.Primaries))
	for i, st := range tab.Primaries {
		out[i] = st.Disk.PoolStats()
	}
	return out
}
