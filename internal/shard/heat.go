package shard

import (
	"sort"
	"sync/atomic"
)

// Per-cell hit tracking for hot-cell replication. Every routed query
// bumps its cell's counter; Decay folds the counters toward zero so the
// ranking reflects an exponential moving average of recent traffic
// rather than all-time totals. Counters are flat atomic slices — no maps
// anywhere near the ranking, so the hottest-shard order is a pure
// function of the recorded hits (the determinism pass covers this
// package).

// heatShift is the EMA fixed-point scale: one hit adds 1<<heatShift.
const heatShift = 16

// Heat tracks per-cell access frequency as a fixed-point EMA.
type Heat struct {
	cells []int64 // atomic; fixed-point EMA per cell
}

// NewHeat returns a tracker over n cells.
func NewHeat(n int) *Heat {
	return &Heat{cells: make([]int64, n)}
}

// Hit records one access to cell c. Safe for concurrent use.
func (h *Heat) Hit(c int) {
	if c < 0 || c >= len(h.cells) {
		return
	}
	atomic.AddInt64(&h.cells[c], 1<<heatShift)
}

// Decay halves every cell's EMA — one tick of the moving average. Callers
// choose the tick cadence (per frame batch, per promotion round).
func (h *Heat) Decay() {
	for i := range h.cells {
		for {
			old := atomic.LoadInt64(&h.cells[i])
			if atomic.CompareAndSwapInt64(&h.cells[i], old, old/2) {
				break
			}
		}
	}
}

// Cell returns cell c's current EMA in hits (fixed point scaled away).
func (h *Heat) Cell(c int) float64 {
	if c < 0 || c >= len(h.cells) {
		return 0
	}
	return float64(atomic.LoadInt64(&h.cells[c])) / (1 << heatShift)
}

// ShardLoads sums the per-cell EMAs over each shard's owned range.
func (h *Heat) ShardLoads(m Map) []float64 {
	out := make([]float64, m.Shards())
	for i := range out {
		lo, hi := m.Range(i)
		var sum int64
		for c := lo; c < hi; c++ {
			sum += atomic.LoadInt64(&h.cells[c])
		}
		out[i] = float64(sum) / (1 << heatShift)
	}
	return out
}

// TopShards ranks shards by load (descending, shard index breaking ties)
// and returns the indices of the up-to-k hottest shards with nonzero
// load. The tie-break makes the ranking deterministic for equal traffic.
func (h *Heat) TopShards(m Map, k int) []int {
	loads := h.ShardLoads(m)
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if loads[order[a]] != loads[order[b]] {
			return loads[order[a]] > loads[order[b]]
		}
		return order[a] < order[b]
	})
	if k > len(order) {
		k = len(order)
	}
	out := make([]int, 0, k)
	for _, i := range order[:k] {
		if loads[i] > 0 {
			out = append(out, i)
		}
	}
	return out
}
