package shard

// Differential suite for sharding: for every storage scheme, codec
// layout, traversal mode (serial / parallel / coherent / scattered) and
// shard count (1 / 2 / 8, with and without hot-range replicas), routed
// answers must be byte-identical to the single-store baseline —
// Degradation events included. A divergence anywhere is a routing,
// clone, or merge bug.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/scene"
	"repro/internal/storage"
	"repro/internal/vstore"
)

type fixEnv struct {
	sc   *scene.Scene
	disk *storage.Disk
	tree *core.Tree
	// man[false] is the raw layout, man[true] the codec layout; both
	// describe stores laid out on the same disk.
	man map[bool]Manifests
	// stores[codec][scheme] is the baseline store for SetVStore.
	stores map[bool]map[Scheme]core.VStore
}

var (
	fixOnce sync.Once
	fixVal  *fixEnv
	fixErr  error
)

func fixture(t *testing.T) *fixEnv {
	t.Helper()
	fixOnce.Do(func() {
		p := scene.DefaultCityParams()
		p.BlocksX, p.BlocksY = 2, 2
		p.BuildingsPerBlock = 4
		p.BlobsPerBlock = 2
		p.BlobDetail = 8
		p.NominalBytes = 16 << 20
		p.Seed = 11
		sc := scene.Generate(p)
		d := storage.NewDisk(0, storage.DefaultCostModel())
		bp := core.DefaultBuildParams()
		bp.Grid = cells.NewGrid(sc.ViewRegion, 4, 4)
		bp.DirsPerViewpoint = 256
		bp.SamplesPerCell = 1
		tr, vis, err := core.Build(sc, d, bp)
		if err != nil {
			fixErr = err
			return
		}
		nv, err := naive.Build(tr, vis, 0)
		if err != nil {
			fixErr = err
			return
		}
		env := &fixEnv{
			sc: sc, disk: d, tree: tr,
			man:    map[bool]Manifests{},
			stores: map[bool]map[Scheme]core.VStore{},
		}
		for _, codec := range []bool{false, true} {
			opts := vstore.Options{Codec: codec}
			h, err := vstore.BuildHorizontalOpts(d, vis, opts)
			if err != nil {
				fixErr = err
				return
			}
			v, err := vstore.BuildVerticalOpts(d, vis, opts)
			if err != nil {
				fixErr = err
				return
			}
			iv, err := vstore.BuildIndexedVerticalOpts(d, vis, opts)
			if err != nil {
				fixErr = err
				return
			}
			env.man[codec] = Manifests{
				Tree: tr.Manifest(), H: h.Manifest(), V: v.Manifest(),
				IV: iv.Manifest(), Naive: nv.Manifest(),
			}
			env.stores[codec] = map[Scheme]core.VStore{
				SchemeHorizontal: h, SchemeVertical: v, SchemeIndexedVertical: iv,
			}
		}
		fixVal = env
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixVal
}

// fingerprint canonically renders a result: every byte that defines the
// answer, including degradations.
func fingerprint(r *core.QueryResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cell=%d eta=%g\n", r.Cell, r.Eta)
	for _, it := range r.Items {
		fmt.Fprintf(&b, "obj=%d node=%d dov=%x k=%x lvl=%d poly=%x ext=%d+%d/%d\n",
			it.ObjectID, it.NodeID, it.DoV, it.Detail, it.Level, it.Polygons,
			it.Extent.Start, it.Extent.NominalBytes, it.Extent.RealBytes)
	}
	for _, dg := range r.Degradations {
		fmt.Fprintf(&b, "degraded cell=%d node=%d obj=%d cause=%d page=%d sub=%d sublvl=%d\n",
			dg.Cell, dg.Node, dg.Object, dg.Cause, dg.Page, dg.SubstituteNode, dg.SubstituteLevel)
	}
	return b.String()
}

var diffSchemes = []struct {
	name string
	s    Scheme
}{
	{"horizontal", SchemeHorizontal},
	{"vertical", SchemeVertical},
	{"indexed-vertical", SchemeIndexedVertical},
}

const diffEta = 0.003

// golden computes the single-store serial baseline for every cell.
func golden(t *testing.T, env *fixEnv, codec bool, s Scheme) []string {
	t.Helper()
	env.tree.SetVStore(env.stores[codec][s])
	base := env.tree.Session()
	n := env.tree.Grid.NumCells()
	out := make([]string, n)
	for c := 0; c < n; c++ {
		r, err := base.Query(cells.CellID(c), diffEta)
		if err != nil {
			t.Fatalf("baseline cell %d: %v", c, err)
		}
		out[c] = fingerprint(r)
	}
	return out
}

func TestShardDifferential(t *testing.T) {
	env := fixture(t)
	n := env.tree.Grid.NumCells()
	allCells := make([]cells.CellID, n)
	for c := range allCells {
		allCells[c] = cells.CellID(c)
	}
	for _, codec := range []bool{false, true} {
		for _, sch := range diffSchemes {
			want := golden(t, env, codec, sch.s)
			for _, shards := range []int{1, 2, 8} {
				name := fmt.Sprintf("codec=%v/%s/shards=%d", codec, sch.name, shards)
				t.Run(name, func(t *testing.T) {
					r, err := NewRouter(env.sc, env.disk, env.man[codec], Config{
						Shards: shards, Scheme: sch.s,
					})
					if err != nil {
						t.Fatal(err)
					}
					check := func(mode string, got func(sess *Session, c cells.CellID) (*core.QueryResult, error)) {
						sess := r.Session()
						for c := 0; c < n; c++ {
							res, err := got(sess, cells.CellID(c))
							if err != nil {
								t.Fatalf("%s cell %d: %v", mode, c, err)
							}
							if fp := fingerprint(res); fp != want[c] {
								t.Fatalf("%s cell %d diverged from baseline:\n got %s\nwant %s",
									mode, c, fp, want[c])
							}
						}
					}
					check("serial", func(s *Session, c cells.CellID) (*core.QueryResult, error) {
						return s.QueryCell(c, diffEta)
					})
					check("coherent", func(s *Session, c cells.CellID) (*core.QueryResult, error) {
						return s.QueryCellCoherent(c, diffEta)
					})
					r.SetParallel(4)
					check("parallel", func(s *Session, c cells.CellID) (*core.QueryResult, error) {
						return s.QueryCell(c, diffEta)
					})
					r.SetParallel(0)

					// Scatter-gather: the whole grid in one batch.
					sess := r.Session()
					batch, err := sess.QueryMany(allCells, diffEta)
					if err != nil {
						t.Fatal(err)
					}
					for c, res := range batch {
						if fp := fingerprint(res); fp != want[c] {
							t.Fatalf("scatter cell %d diverged:\n got %s\nwant %s", c, fp, want[c])
						}
					}

					// Replicas: promote the hottest ranges (everything above
					// has traffic), then re-check through sessions that load
					// balance onto the mirrors.
					promoted, err := r.PromoteHot(2)
					if err != nil {
						t.Fatal(err)
					}
					if len(promoted) == 0 {
						t.Fatal("no shard promoted despite traffic")
					}
					onReplica := false
					for i := 0; i < 4; i++ {
						sess := r.Session()
						for _, p := range promoted {
							if sess.OnReplica(p) {
								onReplica = true
							}
						}
						for c := 0; c < n; c++ {
							res, err := sess.QueryCell(cells.CellID(c), diffEta)
							if err != nil {
								t.Fatalf("replica pass cell %d: %v", c, err)
							}
							if fp := fingerprint(res); fp != want[c] {
								t.Fatalf("replica pass cell %d diverged:\n got %s\nwant %s", c, fp, want[c])
							}
						}
					}
					if !onReplica {
						t.Fatal("no session was routed to a promoted replica")
					}
				})
			}
		}
	}
}

// TestShardDifferentialDegraded corrupts a single cell's V-pages and
// checks that degraded answers — Degradation records included — are
// byte-identical across shard counts. Every router clones the same
// corruption marks over the same layout, and each store quarantines the
// page on its own first encounter, so one pass over the grid must agree
// everywhere.
func TestShardDifferentialDegraded(t *testing.T) {
	env := fixture(t)
	n := env.tree.Grid.NumCells()
	for _, codec := range []bool{false, true} {
		t.Run(fmt.Sprintf("codec=%v", codec), func(t *testing.T) {
			iv := env.stores[codec][SchemeIndexedVertical]
			pager, ok := iv.(core.CellPager)
			if !ok {
				t.Fatal("indexed-vertical store is not a CellPager")
			}
			// Find a page owned by exactly one cell, so quarantine state
			// cannot couple queries of different cells across stores.
			victim := cells.CellID(5)
			owned := map[storage.PageID]int{}
			for c := 0; c < n; c++ {
				ids, err := pager.CellPages(env.disk, cells.CellID(c))
				if err != nil {
					t.Fatal(err)
				}
				for _, id := range ids {
					owned[id]++
				}
			}
			ids, err := pager.CellPages(env.disk, victim)
			if err != nil {
				t.Fatal(err)
			}
			var page storage.PageID = storage.NilPage
			for _, id := range ids {
				if owned[id] == 1 {
					page = id
					break
				}
			}
			if page == storage.NilPage {
				t.Skip("no single-cell V-page to corrupt")
			}
			env.disk.CorruptPage(page)
			defer env.disk.HealPage(page)

			runs := make([][]string, 0, 3)
			for _, shards := range []int{1, 2, 8} {
				r, err := NewRouter(env.sc, env.disk, env.man[codec], Config{
					Shards: shards, Scheme: SchemeIndexedVertical, FaultTolerant: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				sess := r.Session()
				fps := make([]string, n)
				sawDegradation := false
				for c := 0; c < n; c++ {
					res, err := sess.QueryCell(cells.CellID(c), diffEta)
					if err != nil {
						t.Fatalf("shards=%d cell %d: %v", shards, c, err)
					}
					if len(res.Degradations) > 0 {
						sawDegradation = true
					}
					fps[c] = fingerprint(res)
				}
				if !sawDegradation {
					t.Fatalf("shards=%d: corrupt V-page produced no degradation", shards)
				}
				runs = append(runs, fps)
			}
			for i := 1; i < len(runs); i++ {
				for c := 0; c < n; c++ {
					if runs[i][c] != runs[0][c] {
						t.Fatalf("degraded answers diverged at cell %d between shard counts:\n got %s\nwant %s",
							c, runs[i][c], runs[0][c])
					}
				}
			}
		})
	}
}

// TestShardTrimResidentBytes checks that trimming releases foreign
// V-pages (resident bytes drop) while owned-range answers stay
// byte-identical.
func TestShardTrimResidentBytes(t *testing.T) {
	env := fixture(t)
	want := golden(t, env, false, SchemeIndexedVertical)
	full, err := NewRouter(env.sc, env.disk, env.man[false], Config{
		Shards: 4, Scheme: SchemeIndexedVertical,
	})
	if err != nil {
		t.Fatal(err)
	}
	trimmed, err := NewRouter(env.sc, env.disk, env.man[false], Config{
		Shards: 4, Scheme: SchemeIndexedVertical, Trim: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var fullBytes, trimBytes int64
	for i := 0; i < 4; i++ {
		fullBytes += full.Table().Primaries[i].Disk.ResidentBytes()
		trimBytes += trimmed.Table().Primaries[i].Disk.ResidentBytes()
	}
	if trimBytes >= fullBytes {
		t.Fatalf("trim did not shrink stores: %d >= %d resident bytes", trimBytes, fullBytes)
	}
	sess := trimmed.Session()
	for c := 0; c < env.tree.Grid.NumCells(); c++ {
		res, err := sess.QueryCell(cells.CellID(c), diffEta)
		if err != nil {
			t.Fatalf("trimmed cell %d: %v", c, err)
		}
		if fp := fingerprint(res); fp != want[c] {
			t.Fatalf("trimmed cell %d diverged:\n got %s\nwant %s", c, fp, want[c])
		}
	}
}
