// Package shard partitions the viewing-cell grid into contiguous
// cell-range shards, each served by its own store — a cloned simulated
// disk with a private cost model, buffer pool and fault state, plus a
// tree and all three storage schemes reopened over it (DESIGN.md §16).
//
// A Router owns the shard topology and publishes it copy-on-write: the
// current Table (shard map, primary stores, replica stores) is swapped
// atomically, so a Session pins a consistent topology for its lifetime
// the same way a core session pins a scene epoch, and a replica
// promotion never exposes a torn store set. The router maps each query
// to its owning shard; a multi-cell frame scatters only across the
// shards it actually straddles, and results are reassembled in input
// order so sharded answers stay byte-identical to the single-store
// baseline — Degradation events included, because every clone carries
// the same corruption marks over the same page layout.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/cells"
)

// Map assigns every viewing cell to exactly one shard: shard i owns the
// contiguous cell range [Starts[i], Starts[i+1]). Contiguous ranges keep
// a walkthrough's neighboring cells on one spindle, so frames scatter
// only when they truly straddle a boundary.
type Map struct {
	// NumCells is the grid size the map partitions.
	NumCells int
	// Starts[i] is the first cell of shard i; Starts[0] is always 0 and
	// entries are strictly increasing.
	Starts []cells.CellID
}

// NewMap balances numCells over shards: every shard owns ⌊n/s⌋ cells and
// the first n mod s shards own one more.
func NewMap(numCells, shards int) (Map, error) {
	if numCells < 1 {
		return Map{}, fmt.Errorf("shard: map over %d cells", numCells)
	}
	if shards < 1 || shards > numCells {
		return Map{}, fmt.Errorf("shard: %d shards over %d cells", shards, numCells)
	}
	starts := make([]cells.CellID, shards)
	base, rem := numCells/shards, numCells%shards
	next := 0
	for i := 0; i < shards; i++ {
		starts[i] = cells.CellID(next)
		next += base
		if i < rem {
			next++
		}
	}
	return Map{NumCells: numCells, Starts: starts}, nil
}

// Shards returns the shard count.
func (m Map) Shards() int { return len(m.Starts) }

// Owner returns the shard owning cell c, or -1 for cells outside the
// grid.
func (m Map) Owner(c cells.CellID) int {
	if c < 0 || int(c) >= m.NumCells {
		return -1
	}
	// First start strictly greater than c; the owner is the shard before.
	i := sort.Search(len(m.Starts), func(i int) bool { return m.Starts[i] > c })
	return i - 1
}

// Range returns shard i's owned cell range [lo, hi).
func (m Map) Range(i int) (lo, hi cells.CellID) {
	lo = m.Starts[i]
	if i+1 < len(m.Starts) {
		return lo, m.Starts[i+1]
	}
	return lo, cells.CellID(m.NumCells)
}

// Validate checks that the map exactly partitions [0, NumCells): used by
// hdovfsck on a persisted shard layout, where the map is untrusted input.
func (m Map) Validate() error {
	if m.NumCells < 1 || len(m.Starts) < 1 {
		return fmt.Errorf("shard: empty map (%d cells, %d shards)", m.NumCells, len(m.Starts))
	}
	if m.Starts[0] != 0 {
		return fmt.Errorf("shard: map starts at cell %d, not 0", m.Starts[0])
	}
	for i := 1; i < len(m.Starts); i++ {
		if m.Starts[i] <= m.Starts[i-1] {
			return fmt.Errorf("shard: empty or out-of-order shard %d (start %d after %d)",
				i, m.Starts[i], m.Starts[i-1])
		}
	}
	if int(m.Starts[len(m.Starts)-1]) >= m.NumCells {
		return fmt.Errorf("shard: shard %d starts at %d, past the %d-cell grid",
			len(m.Starts)-1, m.Starts[len(m.Starts)-1], m.NumCells)
	}
	return nil
}
