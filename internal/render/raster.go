package render

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// View is a software-rendered perspective image of a set of meshes: a
// z-buffered ID/depth raster. It reproduces, in artifact form, the
// screenshot comparisons of the paper's Figure 11 — the query answer set
// (object LoDs + internal LoDs) is rendered exactly as retrieved.
type View struct {
	W, H  int
	Depth []float64 // +Inf where empty
	ID    []int32   // -1 where empty
}

// ViewConfig frames a rendering.
type ViewConfig struct {
	Eye, Look, Up geom.Vec3
	FovY          float64 // vertical field of view, radians
	W, H          int
}

// DefaultViewConfig returns a 4:3, 60° view at the given pose.
func DefaultViewConfig(eye, look geom.Vec3) ViewConfig {
	return ViewConfig{
		Eye: eye, Look: look, Up: geom.V(0, 0, 1),
		FovY: math.Pi / 3, W: 320, H: 240,
	}
}

// RenderItem is one mesh to draw, tagged with an identifier (object ID,
// node ID, anything the caller wants back per pixel).
type RenderItem struct {
	ID   int32
	Mesh *mesh.Mesh
}

// RenderView rasterizes the items with a z-buffer and returns the view.
func RenderView(cfg ViewConfig, items []RenderItem) *View {
	if cfg.W <= 0 {
		cfg.W = 320
	}
	if cfg.H <= 0 {
		cfg.H = 240
	}
	if cfg.FovY <= 0 {
		cfg.FovY = math.Pi / 3
	}
	v := &View{
		W: cfg.W, H: cfg.H,
		Depth: make([]float64, cfg.W*cfg.H),
		ID:    make([]int32, cfg.W*cfg.H),
	}
	for i := range v.Depth {
		v.Depth[i] = math.Inf(1)
		v.ID[i] = -1
	}

	fwd := cfg.Look.Normalize()
	right := fwd.Cross(cfg.Up)
	if right.Len2() < 1e-12 {
		right = fwd.Cross(geom.V(0, 1, 0))
	}
	right = right.Normalize()
	up := right.Cross(fwd).Normalize()
	tanY := math.Tan(cfg.FovY / 2)
	tanX := tanY * float64(cfg.W) / float64(cfg.H)

	const near = 1e-3
	for _, it := range items {
		m := it.Mesh
		if m == nil {
			continue
		}
		for ti := 0; ti < m.NumTriangles(); ti++ {
			a, b, c := m.Triangle(ti)
			v.rasterizeTriangle(it.ID,
				camSpace(a, cfg.Eye, fwd, right, up),
				camSpace(b, cfg.Eye, fwd, right, up),
				camSpace(c, cfg.Eye, fwd, right, up),
				tanX, tanY, near)
		}
	}
	return v
}

type camPoint struct {
	u, v, w float64
}

func camSpace(p, eye, fwd, right, up geom.Vec3) camPoint {
	d := p.Sub(eye)
	return camPoint{u: d.Dot(right), v: d.Dot(up), w: d.Dot(fwd)}
}

// rasterizeTriangle near-clips and scan-converts one camera-space
// triangle, identical in approach to the visibility item buffer but for a
// single arbitrary view.
func (view *View) rasterizeTriangle(id int32, a, b, c camPoint, tanX, tanY, near float64) {
	poly := make([]camPoint, 0, 4)
	verts := [3]camPoint{a, b, c}
	for i := 0; i < 3; i++ {
		cur, nxt := verts[i], verts[(i+1)%3]
		if cur.w >= near {
			poly = append(poly, cur)
		}
		if (cur.w >= near) != (nxt.w >= near) {
			t := (near - cur.w) / (nxt.w - cur.w)
			poly = append(poly, camPoint{
				u: cur.u + t*(nxt.u-cur.u),
				v: cur.v + t*(nxt.v-cur.v),
				w: near,
			})
		}
	}
	for i := 1; i+1 < len(poly); i++ {
		view.rasterClipped(id, poly[0], poly[i], poly[i+1], tanX, tanY)
	}
}

func (view *View) rasterClipped(id int32, a, b, c camPoint, tanX, tanY float64) {
	type proj struct{ x, y, invW float64 }
	pr := func(p camPoint) proj {
		return proj{x: p.u / (p.w * tanX), y: p.v / (p.w * tanY), invW: 1 / p.w}
	}
	pa, pb, pc := pr(a), pr(b), pr(c)

	toPixX := func(t float64) float64 { return (t + 1) / 2 * float64(view.W) }
	toPixY := func(t float64) float64 { return (1 - t) / 2 * float64(view.H) } // +v is up
	minX := int(math.Floor(toPixX(math.Min(pa.x, math.Min(pb.x, pc.x)))))
	maxX := int(math.Ceil(toPixX(math.Max(pa.x, math.Max(pb.x, pc.x)))))
	minY := int(math.Floor(toPixY(math.Max(pa.y, math.Max(pb.y, pc.y)))))
	maxY := int(math.Ceil(toPixY(math.Min(pa.y, math.Min(pb.y, pc.y)))))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX > view.W {
		maxX = view.W
	}
	if maxY > view.H {
		maxY = view.H
	}
	if minX >= maxX || minY >= maxY {
		return
	}
	area := (pb.x-pa.x)*(pc.y-pa.y) - (pb.y-pa.y)*(pc.x-pa.x)
	if math.Abs(area) < 1e-18 {
		return
	}
	invArea := 1 / area
	for py := minY; py < maxY; py++ {
		// Pixel center back to NDC.
		y := 1 - (float64(py)+0.5)/float64(view.H)*2
		for px := minX; px < maxX; px++ {
			x := (float64(px)+0.5)/float64(view.W)*2 - 1
			w0 := ((pb.x-x)*(pc.y-y) - (pb.y-y)*(pc.x-x)) * invArea
			w1 := ((pc.x-x)*(pa.y-y) - (pc.y-y)*(pa.x-x)) * invArea
			w2 := 1 - w0 - w1
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			invW := w0*pa.invW + w1*pb.invW + w2*pc.invW
			if invW <= 0 {
				continue
			}
			depth := 1 / invW
			idx := py*view.W + px
			if depth < view.Depth[idx] {
				view.Depth[idx] = depth
				view.ID[idx] = id
			}
		}
	}
}

// CoveredFraction returns the fraction of pixels with any geometry.
func (v *View) CoveredFraction() float64 {
	n := 0
	for _, id := range v.ID {
		if id >= 0 {
			n++
		}
	}
	return float64(n) / float64(len(v.ID))
}

// WritePGM writes the view as a binary PGM (P5) grayscale image: nearer
// geometry is brighter, empty pixels are black. PGM is the simplest format
// every image tool reads, and it keeps the repository dependency-free.
func (v *View) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", v.W, v.H); err != nil {
		return err
	}
	// Depth range for shading (5th-95th percentile-ish via min/max of
	// finite values).
	minD, maxD := math.Inf(1), 0.0
	for _, d := range v.Depth {
		if math.IsInf(d, 1) {
			continue
		}
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if minD > maxD {
		minD, maxD = 0, 1
	}
	span := maxD - minD
	if span <= 0 {
		span = 1
	}
	for i, d := range v.Depth {
		var g byte
		if v.ID[i] >= 0 {
			t := (d - minD) / span
			g = byte(230 - 180*geom.Clamp(t, 0, 1))
		}
		if err := bw.WriteByte(g); err != nil {
			return err
		}
	}
	return bw.Flush()
}
