// Package render models the rendering side of the walkthrough prototype:
// a polygon-throughput frame-cost model standing in for the paper's
// OpenGL/Pentium-4 renderer, and quantitative visual-fidelity metrics
// replacing the screenshot comparison of Figure 11 (DESIGN.md §3.5).
package render

import (
	"time"

	"repro/internal/core"
)

// Config is the frame-cost model. FrameTime = I/O time + polygons /
// PolysPerSecond + FrameOverhead.
type Config struct {
	// PolysPerSecond is the sustained triangle throughput. 5M tri/s is
	// representative of 2002-era consumer hardware and calibrates the
	// model into the paper's 12-16 ms frame-time range for the city
	// scenes.
	PolysPerSecond float64
	// FrameOverhead is the fixed per-frame cost (buffer swap, traversal
	// CPU, driver).
	FrameOverhead time.Duration
}

// DefaultConfig returns the 2003-calibrated cost model.
func DefaultConfig() Config {
	return Config{
		PolysPerSecond: 5e6,
		FrameOverhead:  4 * time.Millisecond,
	}
}

// RenderTime returns the simulated GPU time for the given polygon count.
func (c Config) RenderTime(polygons float64) time.Duration {
	if c.PolysPerSecond <= 0 {
		return 0
	}
	return time.Duration(polygons / c.PolysPerSecond * float64(time.Second))
}

// FrameTime combines I/O wait, rendering and fixed overhead.
func (c Config) FrameTime(polygons float64, ioTime time.Duration) time.Duration {
	return ioTime + c.RenderTime(polygons) + c.FrameOverhead
}

// Fidelity quantifies how faithfully an answer set reproduces the ground
// truth visible scene at a viewpoint. All weights are DoV mass, so a
// barely visible missed object hurts less than a dominant one.
type Fidelity struct {
	// VisibleObjects is the ground-truth count of objects with DoV > 0.
	VisibleObjects int
	// CoveredObjects is how many of them the answer set represents,
	// directly or through an ancestor's internal LoD.
	CoveredObjects int
	// MissedObjects = VisibleObjects - CoveredObjects: the paper's "far
	// objects are lost" failure of spatial methods (Figure 11b).
	MissedObjects int
	// Coverage is the DoV mass fraction covered, in [0, 1].
	Coverage float64
	// MissedDoV is the DoV mass of missed objects.
	MissedDoV float64
	// DetailFidelity weights covered DoV mass by the *effective* detail
	// it is shown at — the ratio of rendered polygons to the full-detail
	// polygon budget of what the item represents — in [0, 1]. Rendering
	// everything at the finest LoD scores 1. (The raw equation-5/6
	// coefficients are not comparable across item kinds: equation 5's
	// DoV/η is relative to an already coarse internal chain.)
	DetailFidelity float64
}

// Evaluate computes fidelity of a query answer against a ground-truth
// per-object DoV field (from visibility.Engine.PointDoV at the viewpoint).
// Items with ObjectID >= 0 cover that object; items with a NodeID cover
// every descendant object of that node. Effective detail is the item's
// polygon budget divided by the full-detail polygons of the geometry it
// stands for.
func Evaluate(t *core.Tree, items []core.ResultItem, truth []float64) Fidelity {
	covered := make([]float64, len(truth)) // best effective detail per object
	has := make([]bool, len(truth))
	fullPolys := func(objID int64) float64 {
		return float64(t.Scene.Object(objID).LoDs.Finest().NumTriangles())
	}
	for _, it := range items {
		if it.ObjectID >= 0 {
			if int(it.ObjectID) < len(truth) {
				eff := 1.0
				if fp := fullPolys(it.ObjectID); fp > 0 {
					eff = it.Polygons / fp
					if eff > 1 {
						eff = 1
					}
				}
				if eff > covered[it.ObjectID] {
					covered[it.ObjectID] = eff
				}
				has[it.ObjectID] = true
			}
			continue
		}
		if it.NodeID >= 0 {
			var descFull float64
			t.DescendantObjects(it.NodeID, func(objID int64) {
				descFull += fullPolys(objID)
			})
			eff := 1.0
			if descFull > 0 {
				eff = it.Polygons / descFull
				if eff > 1 {
					eff = 1
				}
			}
			t.DescendantObjects(it.NodeID, func(objID int64) {
				if int(objID) >= len(truth) {
					return
				}
				if eff > covered[objID] {
					covered[objID] = eff
				}
				has[objID] = true
			})
		}
	}
	var f Fidelity
	var totalDoV, coveredDoV, detailDoV float64
	for id, dov := range truth {
		if dov <= 0 {
			continue
		}
		f.VisibleObjects++
		totalDoV += dov
		if has[id] {
			f.CoveredObjects++
			coveredDoV += dov
			detailDoV += dov * covered[id]
		}
	}
	f.MissedObjects = f.VisibleObjects - f.CoveredObjects
	if totalDoV > 0 {
		f.Coverage = coveredDoV / totalDoV
		f.MissedDoV = totalDoV - coveredDoV
		f.DetailFidelity = detailDoV / totalDoV
	}
	return f
}
