package render_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/render"
	"repro/internal/testenv"
)

func TestFrameCostModel(t *testing.T) {
	cfg := render.Config{PolysPerSecond: 1e6, FrameOverhead: 2 * time.Millisecond}
	if got := cfg.RenderTime(1e6); got != time.Second {
		t.Fatalf("render time = %v", got)
	}
	if got := cfg.RenderTime(0); got != 0 {
		t.Fatalf("zero polys = %v", got)
	}
	ft := cfg.FrameTime(500000, 10*time.Millisecond)
	want := 10*time.Millisecond + 500*time.Millisecond + 2*time.Millisecond
	if ft != want {
		t.Fatalf("frame time = %v, want %v", ft, want)
	}
	// Degenerate throughput.
	z := render.Config{}
	if z.RenderTime(100) != 0 {
		t.Fatal("zero-rate render time not 0")
	}
	def := render.DefaultConfig()
	if def.PolysPerSecond <= 0 || def.FrameOverhead <= 0 {
		t.Fatal("default config degenerate")
	}
}

func TestFidelityFullDetailCoversAll(t *testing.T) {
	env := testenv.Get(testenv.Small())
	// Evaluate truth at the cell's own DoV sample point: the stored
	// region field is conservative with respect to the sampled
	// viewpoints (equation 2), so from this exact point the answer set
	// must cover every visible object.
	cell := env.Tree.Grid.Locate(env.Scene.ViewRegion.Center())
	eye := env.Tree.Grid.SamplePoints(cell, 1)[0]
	truth := env.Engine.PointDoV(eye)
	res, err := env.Tree.Query(cell, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := render.Evaluate(env.Tree, res.Items, truth)
	if f.MissedObjects != 0 {
		t.Fatalf("missed %d objects with region-based visibility", f.MissedObjects)
	}
	if math.Abs(f.Coverage-1) > 1e-9 {
		t.Fatalf("coverage = %v", f.Coverage)
	}
	if f.DetailFidelity <= 0 || f.DetailFidelity > 1 {
		t.Fatalf("detail fidelity = %v", f.DetailFidelity)
	}
}

func TestFidelityInternalItemsCover(t *testing.T) {
	env := testenv.Get(testenv.Small())
	cell := env.Tree.Grid.Locate(env.Scene.ViewRegion.Center())
	eye := env.Tree.Grid.SamplePoints(cell, 1)[0]
	truth := env.Engine.PointDoV(eye)
	res, err := env.Tree.Query(cell, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	f := render.Evaluate(env.Tree, res.Items, truth)
	// Internal LoDs still cover their descendants: full coverage, lower
	// detail fidelity than at full detail.
	if f.MissedObjects != 0 {
		t.Fatalf("missed %d with internal LoDs", f.MissedObjects)
	}
	res0, err := env.Tree.Query(cell, 0)
	if err != nil {
		t.Fatal(err)
	}
	f0 := render.Evaluate(env.Tree, res0.Items, truth)
	if f.DetailFidelity > f0.DetailFidelity+1e-9 {
		t.Fatalf("coarser answer has higher fidelity: %v > %v", f.DetailFidelity, f0.DetailFidelity)
	}
}

func TestFidelityDetectsMisses(t *testing.T) {
	env := testenv.Get(testenv.Small())
	eye := env.Scene.ViewRegion.Center()
	truth := env.Engine.PointDoV(eye)
	// An empty answer misses everything.
	f := render.Evaluate(env.Tree, nil, truth)
	if f.CoveredObjects != 0 || f.Coverage != 0 || f.DetailFidelity != 0 {
		t.Fatalf("empty answer scored %+v", f)
	}
	if f.VisibleObjects == 0 {
		t.Fatal("no visible objects at city center")
	}
	if f.MissedDoV <= 0 {
		t.Fatal("missed DoV mass should be positive")
	}
	// A single-object answer covers exactly that object.
	var anyVisible int64 = -1
	for id, d := range truth {
		if d > 0 {
			anyVisible = int64(id)
			break
		}
	}
	one := []core.ResultItem{{ObjectID: anyVisible, NodeID: core.NilNode, Detail: 1}}
	f1 := render.Evaluate(env.Tree, one, truth)
	if f1.CoveredObjects != 1 {
		t.Fatalf("covered %d, want 1", f1.CoveredObjects)
	}
	if f1.MissedObjects != f.VisibleObjects-1 {
		t.Fatalf("missed %d, want %d", f1.MissedObjects, f.VisibleObjects-1)
	}
}

func TestFidelityDetailWeighting(t *testing.T) {
	env := testenv.Get(testenv.Small())
	truth := make([]float64, len(env.Scene.Objects))
	truth[0] = 0.3
	truth[1] = 0.1
	p0 := float64(env.Scene.Object(0).LoDs.Finest().NumTriangles())
	p1 := float64(env.Scene.Object(1).LoDs.Finest().NumTriangles())
	full := []core.ResultItem{
		{ObjectID: 0, NodeID: core.NilNode, Polygons: p0},
		{ObjectID: 1, NodeID: core.NilNode, Polygons: p1},
	}
	half := []core.ResultItem{
		{ObjectID: 0, NodeID: core.NilNode, Polygons: p0 / 2},
		{ObjectID: 1, NodeID: core.NilNode, Polygons: p1 / 2},
	}
	ff := render.Evaluate(env.Tree, full, truth)
	fh := render.Evaluate(env.Tree, half, truth)
	if math.Abs(ff.DetailFidelity-1) > 1e-12 {
		t.Fatalf("full detail fidelity = %v", ff.DetailFidelity)
	}
	if math.Abs(fh.DetailFidelity-0.5) > 1e-12 {
		t.Fatalf("half detail fidelity = %v", fh.DetailFidelity)
	}
	if ff.Coverage != 1 || fh.Coverage != 1 {
		t.Fatal("coverage should be 1 in both")
	}
}
