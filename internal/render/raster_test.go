package render

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
)

func TestRenderViewBasic(t *testing.T) {
	// One box straight ahead fills the image center.
	box := mesh.NewBox(geom.Box(geom.V(10, -2, -2), geom.V(12, 2, 2)))
	cfg := DefaultViewConfig(geom.V(0, 0, 0), geom.V(1, 0, 0))
	cfg.W, cfg.H = 64, 48
	v := RenderView(cfg, []RenderItem{{ID: 7, Mesh: box}})
	center := v.ID[(v.H/2)*v.W+v.W/2]
	if center != 7 {
		t.Fatalf("center pixel = %d, want 7", center)
	}
	d := v.Depth[(v.H/2)*v.W+v.W/2]
	if math.Abs(d-10) > 0.1 {
		t.Fatalf("center depth = %v, want ~10", d)
	}
	if cf := v.CoveredFraction(); cf <= 0 || cf >= 1 {
		t.Fatalf("covered fraction = %v", cf)
	}
	// Corner pixel is empty (box doesn't fill the 60-degree view).
	if v.ID[0] != -1 {
		t.Fatal("corner should be empty")
	}
}

func TestRenderViewZBuffer(t *testing.T) {
	near := mesh.NewBox(geom.Box(geom.V(5, -1, -1), geom.V(6, 1, 1)))
	far := mesh.NewBox(geom.Box(geom.V(20, -5, -5), geom.V(22, 5, 5)))
	cfg := DefaultViewConfig(geom.V(0, 0, 0), geom.V(1, 0, 0))
	cfg.W, cfg.H = 64, 48
	// Draw far first; near must still win the center pixels.
	v := RenderView(cfg, []RenderItem{{ID: 2, Mesh: far}, {ID: 1, Mesh: near}})
	center := v.ID[(v.H/2)*v.W+v.W/2]
	if center != 1 {
		t.Fatalf("center = %d, near box should occlude", center)
	}
	// Off-center pixels beyond the near box show the far box.
	sawFar := false
	for _, id := range v.ID {
		if id == 2 {
			sawFar = true
			break
		}
	}
	if !sawFar {
		t.Fatal("far box completely hidden — too aggressive")
	}
}

func TestRenderViewBehindCamera(t *testing.T) {
	behind := mesh.NewBox(geom.Box(geom.V(-12, -2, -2), geom.V(-10, 2, 2)))
	cfg := DefaultViewConfig(geom.V(0, 0, 0), geom.V(1, 0, 0))
	v := RenderView(cfg, []RenderItem{{ID: 1, Mesh: behind}})
	if v.CoveredFraction() != 0 {
		t.Fatal("geometry behind the camera rendered")
	}
	// A box straddling the camera plane must not panic and must render
	// only its forward part.
	straddle := mesh.NewBox(geom.Box(geom.V(-1, -1, -1), geom.V(5, 1, 1)))
	v2 := RenderView(cfg, []RenderItem{{ID: 1, Mesh: straddle}})
	if v2.CoveredFraction() == 0 {
		t.Fatal("straddling box invisible")
	}
}

func TestRenderViewNilAndDefaults(t *testing.T) {
	v := RenderView(ViewConfig{Eye: geom.V(0, 0, 0), Look: geom.V(1, 0, 0), Up: geom.V(0, 0, 1)},
		[]RenderItem{{ID: 1, Mesh: nil}})
	if v.W != 320 || v.H != 240 {
		t.Fatalf("defaults not applied: %dx%d", v.W, v.H)
	}
	if v.CoveredFraction() != 0 {
		t.Fatal("nil mesh rendered")
	}
}

func TestWritePGM(t *testing.T) {
	box := mesh.NewBox(geom.Box(geom.V(10, -2, -2), geom.V(12, 2, 2)))
	cfg := DefaultViewConfig(geom.V(0, 0, 0), geom.V(1, 0, 0))
	cfg.W, cfg.H = 32, 24
	v := RenderView(cfg, []RenderItem{{ID: 0, Mesh: box}})
	var buf bytes.Buffer
	if err := v.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !strings.HasPrefix(string(out), "P5\n32 24\n255\n") {
		t.Fatalf("bad header: %q", out[:20])
	}
	header := len("P5\n32 24\n255\n")
	if len(out) != header+32*24 {
		t.Fatalf("payload %d bytes, want %d", len(out)-header, 32*24)
	}
	// Center bright, corner black.
	px := out[header+12*32+16]
	if px == 0 {
		t.Fatal("center pixel black")
	}
	if out[header] != 0 {
		t.Fatal("corner pixel not black")
	}
}

func TestRenderViewMatchesFidelityCoverage(t *testing.T) {
	// Rendering a big enclosing box from inside covers every pixel.
	room := mesh.NewBox(geom.BoxAt(geom.V(0, 0, 0), 10))
	cfg := DefaultViewConfig(geom.V(0, 0, 0), geom.V(1, 0.2, 0))
	cfg.W, cfg.H = 48, 48
	v := RenderView(cfg, []RenderItem{{ID: 3, Mesh: room}})
	if cf := v.CoveredFraction(); cf < 0.999 {
		t.Fatalf("room coverage %v, want ~1", cf)
	}
}
