// Package visibility computes degree-of-visibility (DoV) values, the
// view-variant quantity at the heart of the HDoV-tree (§3.1 of the paper).
//
// DoV(p, X) is defined as the fraction of the unit sphere around viewpoint
// p covered by the spherical projection of the visible part of X. The paper
// evaluates it with a hardware-accelerated item-buffer pass; this package
// replaces that with deterministic ray-cast sphere sampling (DESIGN.md
// §3.1): N quasi-uniform directions are generated on a Fibonacci lattice,
// each ray is attributed to the nearest occluder it hits, and DoV(p, X) is
// the fraction of rays attributed to X. This measures exactly the same
// solid-angle quantity, with occlusion handled by construction (a ray can
// only be attributed to the frontmost object along its direction).
//
// Region DoV follows the conservative definition of equation 2:
// DoV(R, X) = max over sampled viewpoints p in R of DoV(p, X).
package visibility

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/scene"
)

// Field is a DoV evaluator: both the ray-casting Engine and the
// rasterizing ItemBuffer implement it, and the HDoV build pipeline accepts
// either.
type Field interface {
	// PointDoV returns per-object DoV at a viewpoint, indexed by object
	// ID.
	PointDoV(p geom.Vec3) []float64
	// RegionDoV returns the equation-2 conservative maximum over sample
	// viewpoints.
	RegionDoV(samples []geom.Vec3) []float64
}

// Engine precomputes DoV fields over a scene. It is safe for concurrent
// use after construction: all methods only read the index.
type Engine struct {
	scene *scene.Scene
	index *rtree.Tree
	dirs  []geom.Vec3
	// maxDist bounds ray length; anything beyond contributes DoV 0. Set to
	// the scene diameter so no visible object is ever range-clipped (the
	// paper's key advantage over spatial-query methods).
	maxDist float64
}

// DefaultDirections is the number of sphere-sampling rays per viewpoint.
// The smallest DoV the paper distinguishes is η = 5e-5 (Table 3); with
// 4096 rays a single hit represents 2.4e-4, so precomputed DoVs resolve the
// η range [2e-4, 8e-3] used by the figures. Increase for finer thresholds.
const DefaultDirections = 4096

// NewEngine builds a DoV engine over s using numDirs sampling directions
// (DefaultDirections if numDirs <= 0).
func NewEngine(s *scene.Scene, numDirs int) *Engine {
	if numDirs <= 0 {
		numDirs = DefaultDirections
	}
	idx := rtree.New(0, 0)
	for _, o := range s.Objects {
		if o.Dead {
			continue
		}
		idx.Insert(o.MBR, o.ID)
	}
	diam := s.Bounds.Size().Len()
	if diam == 0 {
		diam = 1
	}
	return &Engine{
		scene:   s,
		index:   idx,
		dirs:    geom.FibonacciSphere(numDirs),
		maxDist: diam,
	}
}

// NumDirections returns the number of sampling rays per viewpoint.
func (e *Engine) NumDirections() int { return len(e.dirs) }

// PointDoV computes DoV(p, X) for every object X in the scene at once. The
// returned slice is indexed by object ID; entries sum to at most 1.
func (e *Engine) PointDoV(p geom.Vec3) []float64 {
	dov := make([]float64, len(e.scene.Objects))
	w := 1 / float64(len(e.dirs))
	for _, d := range e.dirs {
		id := e.castRay(geom.NewRay(p, d))
		if id >= 0 {
			dov[id] += w
		}
	}
	return dov
}

// RegionDoV computes the conservative region DoV of equation 2 for every
// object: the per-object maximum of PointDoV over the sample viewpoints.
func (e *Engine) RegionDoV(samples []geom.Vec3) []float64 {
	out := make([]float64, len(e.scene.Objects))
	for _, p := range samples {
		pd := e.PointDoV(p)
		for i, v := range pd {
			if v > out[i] {
				out[i] = v
			}
		}
	}
	return out
}

// castRay returns the ID of the nearest occluder hit by r within maxDist,
// or -1. The R-tree is traversed in near-to-far entry order with tmax
// pruning, so each ray touches only nodes that could still contain a
// nearer hit.
func (e *Engine) castRay(r geom.Ray) int64 {
	best := e.maxDist
	bestID := int64(-1)
	e.walkRay(e.index.Root(), r, &best, &bestID)
	return bestID
}

type rayChild struct {
	entry *rtree.Entry
	tmin  float64
}

func (e *Engine) walkRay(n *rtree.Node, r geom.Ray, best *float64, bestID *int64) {
	if n.Leaf {
		for i := range n.Entries {
			en := &n.Entries[i]
			if _, ok := r.IntersectAABB(en.MBR, *best); !ok {
				continue
			}
			obj := e.scene.Object(en.ItemID)
			if obj == nil {
				continue
			}
			if t, ok := obj.Occluder.IntersectRay(r, *best); ok {
				*best = t
				*bestID = en.ItemID
			}
		}
		return
	}
	// Order children by entry distance so nearer subtrees shrink tmax
	// before farther ones are considered.
	kids := make([]rayChild, 0, len(n.Entries))
	for i := range n.Entries {
		en := &n.Entries[i]
		if tmin, ok := r.IntersectAABB(en.MBR, *best); ok {
			kids = append(kids, rayChild{entry: en, tmin: tmin})
		}
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i].tmin < kids[j].tmin })
	for _, k := range kids {
		if k.tmin >= *best {
			break
		}
		e.walkRay(k.entry.Child, r, best, bestID)
	}
}

// AnyRayHitsBox reports whether any of the engine's sampling rays, cast
// from any of the given viewpoints, intersects box. This is the
// conservative touched-cell test of the incremental update path: a cell's
// precomputed DoV field can only change when one of its rays reaches a
// changed object's bounding box (old or new position). The test is exact
// with respect to the ray caster — the same directions are probed against
// the same geometry bound the caster prunes with — so "no ray touches the
// box" implies the cell's field is bit-identical before and after the
// change.
func (e *Engine) AnyRayHitsBox(viewpoints []geom.Vec3, box geom.AABB) bool {
	if box.IsEmpty() {
		return false
	}
	for _, p := range viewpoints {
		for _, d := range e.dirs {
			if _, ok := geom.NewRay(p, d).IntersectAABB(box, e.maxDist); ok {
				return true
			}
		}
	}
	return false
}

// VisibleCount returns the number of objects with DoV > 0 in a DoV field —
// the N_vobj of the paper's storage-cost analysis (§4).
func VisibleCount(dov []float64) int {
	n := 0
	for _, v := range dov {
		if v > 0 {
			n++
		}
	}
	return n
}

// TotalDoV returns the sum of a DoV field. For a point field this is the
// fraction of the sphere covered by any object and is at most 1; region
// fields may exceed 1 because each object takes its own maximum.
func TotalDoV(dov []float64) float64 {
	var s float64
	for _, v := range dov {
		s += v
	}
	return s
}

// MaxDoV is the paper's MAXDOV constant: "the spherical projection of an
// object will not exceed 0.5 if the viewpoint is outside the bounding box
// of the object" (§3.3). Equation 6 normalizes leaf detail by it.
const MaxDoV = 0.5

// OcclusionTest reports whether any occluder blocks the segment from p to
// q (excluding occluders belonging to exceptID). Used by fidelity metrics
// to cross-check DoV fields and by tests.
func (e *Engine) OcclusionTest(p, q geom.Vec3, exceptID int64) bool {
	seg := q.Sub(p)
	dist := seg.Len()
	if dist == 0 {
		return false
	}
	r := geom.NewRay(p, seg.Mul(1/dist))
	blocked := false
	var walk func(n *rtree.Node)
	walk = func(n *rtree.Node) {
		if blocked {
			return
		}
		for i := range n.Entries {
			en := &n.Entries[i]
			if _, ok := r.IntersectAABB(en.MBR, dist); !ok {
				continue
			}
			if n.Leaf {
				if en.ItemID == exceptID {
					continue
				}
				obj := e.scene.Object(en.ItemID)
				if obj == nil {
					continue
				}
				if t, ok := obj.Occluder.IntersectRay(r, dist); ok && t > 1e-9 && t < dist-1e-9 {
					blocked = true
					return
				}
			} else {
				walk(en.Child)
			}
		}
	}
	walk(e.index.Root())
	return blocked
}

// SolidAngleUpperBounds returns, for every object, the geometric upper
// bound on its point DoV from p (bounding-sphere cap, ignoring occlusion).
// Property tests verify PointDoV never exceeds these bounds by more than
// sampling noise; the prioritized-traversal extension also uses them.
func (e *Engine) SolidAngleUpperBounds(p geom.Vec3) []float64 {
	out := make([]float64, len(e.scene.Objects))
	for i, o := range e.scene.Objects {
		out[i] = geom.SolidAngleBound(p, o.MBR)
	}
	return out
}

// SamplingError returns the standard deviation of a single DoV estimate
// with the engine's direction count: sqrt(v(1-v)/N) for true value v. The
// precomputation pipeline uses it to decide whether a DoV of 0 can be
// trusted as "hidden".
func (e *Engine) SamplingError(v float64) float64 {
	n := float64(len(e.dirs))
	return math.Sqrt(v * (1 - v) / n)
}
