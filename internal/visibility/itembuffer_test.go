package visibility

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/scene"
)

func TestItemBufferPixelOmegaSumsToSphere(t *testing.T) {
	// The per-pixel solid angles of the six faces must tile the sphere.
	s := makeScene()
	ib := NewItemBuffer(s, 32)
	var sum float64
	for _, w := range ib.pixelOmega {
		sum += w
	}
	sum *= 6
	if math.Abs(sum-1) > 0.001 {
		t.Fatalf("pixel solid angles sum to %v of the sphere", sum)
	}
}

func TestItemBufferOcclusion(t *testing.T) {
	s := makeScene() // wall(0), hidden box(1), side box(2)
	ib := NewItemBuffer(s, 128)
	dov := ib.PointDoV(geom.V(0, 0, 0))
	if dov[0] == 0 {
		t.Fatal("wall invisible in item buffer")
	}
	if dov[1] != 0 {
		t.Fatalf("hidden box rasterized with DoV %v", dov[1])
	}
	if dov[2] == 0 {
		t.Fatal("side box invisible in item buffer")
	}
	if dov[0] <= dov[2] {
		t.Fatalf("wall %v should dominate side box %v", dov[0], dov[2])
	}
	if total := TotalDoV(dov); total > 1+1e-9 {
		t.Fatalf("DoV sums to %v > 1", total)
	}
}

func TestItemBufferMatchesAnalyticCap(t *testing.T) {
	// Same analytic check as the ray engine: a sphere of radius r at
	// distance d subtends (1-sqrt(1-(r/d)^2))/2 of the sphere.
	sp := scene.Sphere{Center: geom.V(20, 0, 0), Radius: 5}
	obj := &scene.Object{
		ID:       0,
		MBR:      geom.BoxAt(sp.Center, sp.Radius),
		Occluder: scene.Occluder{Spheres: []scene.Sphere{sp}},
	}
	s := &scene.Scene{
		Objects:    []*scene.Object{obj},
		Bounds:     geom.BoxAt(geom.V(0, 0, 0), 60),
		ViewRegion: geom.BoxAt(geom.V(0, 0, 0), 1),
	}
	ib := NewItemBuffer(s, 128)
	dov := ib.PointDoV(geom.V(0, 0, 0))
	q := 5.0 / 20.0
	want := (1 - math.Sqrt(1-q*q)) / 2
	if math.Abs(dov[0]-want) > 0.1*want {
		t.Fatalf("item-buffer sphere DoV %v, analytic %v", dov[0], want)
	}
}

// TestItemBufferAgreesWithRayCasting is the cross-validation between the
// two DoV algorithms: a rasterizer with z-buffering and a nearest-hit ray
// caster must measure the same solid angles up to discretization error.
func TestItemBufferAgreesWithRayCasting(t *testing.T) {
	p := scene.DefaultCityParams()
	p.BlocksX, p.BlocksY = 2, 2
	p.BuildingsPerBlock = 4
	p.BlobsPerBlock = 2
	p.BlobDetail = 8
	p.NominalBytes = 0
	sc := scene.Generate(p)

	rays := NewEngine(sc, 8192)
	ib := NewItemBuffer(sc, 128)

	for _, eye := range []geom.Vec3{
		sc.ViewRegion.Center(),
		geom.V(10, 10, 1.7),
		geom.V(60, 130, 1.7),
	} {
		a := rays.PointDoV(eye)
		b := ib.PointDoV(eye)
		for id := range a {
			// Tolerance: ray sampling noise (3σ) plus rasterization
			// aliasing (a couple of pixel rows around the silhouette).
			tol := 3*rays.SamplingError(math.Max(a[id], b[id])) + 12*ib.Resolution() + 0.002
			if math.Abs(a[id]-b[id]) > tol {
				t.Fatalf("eye %v object %d: rays %v vs item buffer %v (tol %v)",
					eye, id, a[id], b[id], tol)
			}
		}
	}
}

func TestItemBufferRegionDoVIsMax(t *testing.T) {
	s := makeScene()
	ib := NewItemBuffer(s, 64)
	p1, p2 := geom.V(0, 0, 0), geom.V(0, 25, 0)
	d1, d2 := ib.PointDoV(p1), ib.PointDoV(p2)
	reg := ib.RegionDoV([]geom.Vec3{p1, p2})
	for i := range reg {
		if want := math.Max(d1[i], d2[i]); reg[i] != want {
			t.Fatalf("object %d: region %v, want %v", i, reg[i], want)
		}
	}
}

func TestItemBufferEyeInsideOccluder(t *testing.T) {
	// A viewpoint inside a box sees that box in every direction.
	obj := &scene.Object{
		ID:       0,
		MBR:      geom.BoxAt(geom.V(0, 0, 0), 5),
		Occluder: scene.Occluder{Boxes: []geom.AABB{geom.BoxAt(geom.V(0, 0, 0), 5)}},
	}
	s := &scene.Scene{
		Objects:    []*scene.Object{obj},
		Bounds:     geom.BoxAt(geom.V(0, 0, 0), 10),
		ViewRegion: geom.BoxAt(geom.V(0, 0, 0), 1),
	}
	ib := NewItemBuffer(s, 32)
	dov := ib.PointDoV(geom.V(0, 0, 0))
	if dov[0] < 0.99 {
		t.Fatalf("inside-box DoV %v, want ~1", dov[0])
	}
}

func TestItemBufferDefaults(t *testing.T) {
	s := makeScene()
	ib := NewItemBuffer(s, 0)
	if ib.Res() != DefaultItemBufferRes {
		t.Fatalf("res = %d", ib.Res())
	}
	if r := ib.Resolution(); r <= 0 || r > 1e-3 {
		t.Fatalf("resolution = %v", r)
	}
}

func BenchmarkItemBufferPointDoV(b *testing.B) {
	p := scene.DefaultCityParams()
	p.BlocksX, p.BlocksY = 4, 4
	p.BlobDetail = 8
	p.NominalBytes = 0
	sc := scene.Generate(p)
	ib := NewItemBuffer(sc, 64)
	eye := sc.ViewRegion.Center()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ib.PointDoV(eye)
	}
}
