package visibility

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/scene"
	"repro/internal/simplify"
)

// makeScene builds a hand-crafted scene: object 0 is a big wall, object 1 a
// box hidden behind it (from the test viewpoint), object 2 a box off to the
// side, fully visible.
func makeScene() *scene.Scene {
	mk := func(id int64, b geom.AABB) *scene.Object {
		m := mesh.NewBox(b)
		return &scene.Object{
			ID:       id,
			Kind:     scene.KindBuilding,
			MBR:      b,
			LoDs:     simplify.BuildLoDChain(m, 2, 0.5),
			Occluder: scene.Occluder{Boxes: []geom.AABB{b}},
			LoDBytes: []int64{int64(m.EncodedSize()), int64(m.EncodedSize() / 2)},
		}
	}
	s := &scene.Scene{PayloadScale: 1}
	// Viewpoint will be at origin. Wall at x=10, tall and wide.
	s.Objects = append(s.Objects,
		mk(0, geom.Box(geom.V(10, -20, -20), geom.V(12, 20, 20))),
		mk(1, geom.Box(geom.V(30, -5, -5), geom.V(34, 5, 5))),    // hidden behind wall
		mk(2, geom.Box(geom.V(-20, 30, -3), geom.V(-14, 36, 3))), // visible, off-axis
	)
	b := geom.EmptyAABB()
	for _, o := range s.Objects {
		b = b.Union(o.MBR)
	}
	s.Bounds = b.Union(geom.BoxAt(geom.V(0, 0, 0), 1))
	s.ViewRegion = geom.BoxAt(geom.V(0, 0, 0), 2)
	return s
}

func TestPointDoVOcclusion(t *testing.T) {
	s := makeScene()
	e := NewEngine(s, 8192)
	dov := e.PointDoV(geom.V(0, 0, 0))
	if len(dov) != 3 {
		t.Fatalf("dov has %d entries", len(dov))
	}
	if dov[0] == 0 {
		t.Fatal("wall should be visible")
	}
	if dov[1] != 0 {
		t.Fatalf("hidden box has DoV %v, want 0", dov[1])
	}
	if dov[2] == 0 {
		t.Fatal("side box should be visible")
	}
	// The wall subtends much more solid angle than the small side box.
	if dov[0] <= dov[2] {
		t.Fatalf("wall DoV %v should exceed side box DoV %v", dov[0], dov[2])
	}
}

func TestPointDoVSumBound(t *testing.T) {
	s := makeScene()
	e := NewEngine(s, 2048)
	dov := e.PointDoV(geom.V(0, 0, 0))
	if total := TotalDoV(dov); total > 1+1e-9 {
		t.Fatalf("point DoV sums to %v > 1", total)
	}
}

func TestPointDoVMatchesAnalyticCap(t *testing.T) {
	// A single sphere occluder of radius r at distance d subtends a cap of
	// solid-angle fraction (1-sqrt(1-(r/d)^2))/2.
	sp := scene.Sphere{Center: geom.V(20, 0, 0), Radius: 5}
	obj := &scene.Object{
		ID:       0,
		Kind:     scene.KindBlob,
		MBR:      geom.BoxAt(sp.Center, sp.Radius),
		LoDs:     simplify.BuildLoDChain(mesh.NewSphere(sp.Center, sp.Radius, 8, 16), 2, 0.5),
		Occluder: scene.Occluder{Spheres: []scene.Sphere{sp}},
		LoDBytes: []int64{1, 1},
	}
	s := &scene.Scene{
		Objects:      []*scene.Object{obj},
		Bounds:       geom.BoxAt(geom.V(0, 0, 0), 60),
		ViewRegion:   geom.BoxAt(geom.V(0, 0, 0), 1),
		PayloadScale: 1,
	}
	e := NewEngine(s, 16384)
	dov := e.PointDoV(geom.V(0, 0, 0))
	q := 5.0 / 20.0
	want := (1 - math.Sqrt(1-q*q)) / 2
	if math.Abs(dov[0]-want) > 0.1*want {
		t.Fatalf("sphere DoV = %v, analytic %v", dov[0], want)
	}
}

func TestRegionDoVIsPointwiseMax(t *testing.T) {
	s := makeScene()
	e := NewEngine(s, 1024)
	p1 := geom.V(0, 0, 0)
	p2 := geom.V(0, 25, 0) // from here the "hidden" box may peek around the wall
	d1 := e.PointDoV(p1)
	d2 := e.PointDoV(p2)
	reg := e.RegionDoV([]geom.Vec3{p1, p2})
	for i := range reg {
		want := math.Max(d1[i], d2[i])
		if math.Abs(reg[i]-want) > 1e-12 {
			t.Fatalf("object %d region DoV %v, want max(%v, %v)", i, reg[i], d1[i], d2[i])
		}
	}
}

func TestDoVNonNegativeAndBounded(t *testing.T) {
	s := scene.Generate(func() scene.CityParams {
		p := scene.DefaultCityParams()
		p.BlocksX, p.BlocksY = 2, 2
		p.BuildingsPerBlock = 3
		p.BlobsPerBlock = 2
		p.BlobDetail = 6
		p.NominalBytes = 0
		return p
	}())
	e := NewEngine(s, 2048)
	eye := s.ViewRegion.Center()
	dov := e.PointDoV(eye)
	bounds := e.SolidAngleUpperBounds(eye)
	slack := 3 * e.SamplingError(0.5) // generous sampling tolerance
	for i, v := range dov {
		if v < 0 || v > 1 {
			t.Fatalf("object %d DoV %v out of range", i, v)
		}
		if v > bounds[i]+slack {
			t.Fatalf("object %d DoV %v exceeds geometric bound %v", i, v, bounds[i])
		}
	}
}

func TestOcclusionTest(t *testing.T) {
	s := makeScene()
	e := NewEngine(s, 64)
	// Wall blocks the segment from origin to the hidden box.
	if !e.OcclusionTest(geom.V(0, 0, 0), geom.V(32, 0, 0), 1) {
		t.Fatal("wall should block")
	}
	// Nothing blocks the path to the side box.
	if e.OcclusionTest(geom.V(0, 0, 0), geom.V(-17, 33, 0), 2) {
		t.Fatal("side box path should be clear")
	}
	// Zero-length segment.
	if e.OcclusionTest(geom.V(0, 0, 0), geom.V(0, 0, 0), -1) {
		t.Fatal("zero segment blocked")
	}
}

func TestEngineDefaults(t *testing.T) {
	s := makeScene()
	e := NewEngine(s, 0)
	if e.NumDirections() != DefaultDirections {
		t.Fatalf("dirs = %d", e.NumDirections())
	}
	if se := e.SamplingError(0.5); se <= 0 || se > 0.01 {
		t.Fatalf("sampling error = %v", se)
	}
	if VisibleCount([]float64{0, 0.1, 0, 0.2}) != 2 {
		t.Fatal("VisibleCount wrong")
	}
}

func BenchmarkPointDoV(b *testing.B) {
	p := scene.DefaultCityParams()
	p.BlocksX, p.BlocksY = 4, 4
	p.BlobDetail = 8
	p.NominalBytes = 0
	s := scene.Generate(p)
	e := NewEngine(s, 1024)
	eye := s.ViewRegion.Center()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.PointDoV(eye)
	}
}
