package visibility

import (
	"math"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/scene"
)

// ItemBuffer is a software re-creation of the paper's hardware DoV pass:
// "a hardware-accelerated DoV algorithm is then applied on the visible set
// to evaluate the DoV values" (§5.1, detailed in reference [11]). The
// scene's occluder proxies are rasterized with a z-buffer into the six
// 90°-FoV faces of a cube item buffer centered at the viewpoint; each
// pixel records the nearest object's ID, and DoV(p, X) is the solid angle
// of X's pixels as a fraction of the full sphere.
//
// It computes the same quantity as Engine's ray casting by a completely
// different algorithm (perspective projection + edge-function rasterization
// vs nearest-hit ray traversal), which makes the two implementations
// mutual cross-checks: property tests assert they agree to within their
// discretization error.
type ItemBuffer struct {
	scene *scene.Scene
	res   int
	// Per-object triangle proxies (world space), built once.
	proxies [][]triangle
	// Per-pixel solid angle of one face row-major grid, in fractions of
	// 4π; identical for all six faces by symmetry.
	pixelOmega []float64
	// Reused per-face buffers.
	depth []float64
	owner []int32
}

type triangle struct {
	a, b, c geom.Vec3
}

// DefaultItemBufferRes is the per-face resolution. 64×64×6 ≈ 24.6k pixels
// resolves DoV to ~4×10⁻⁵, comparable to 4096-ray sampling.
const DefaultItemBufferRes = 64

// NewItemBuffer builds the rasterizing DoV engine over s with the given
// per-face resolution (DefaultItemBufferRes if res <= 0).
func NewItemBuffer(s *scene.Scene, res int) *ItemBuffer {
	if res <= 0 {
		res = DefaultItemBufferRes
	}
	ib := &ItemBuffer{
		scene:   s,
		res:     res,
		proxies: make([][]triangle, len(s.Objects)),
		depth:   make([]float64, res*res),
		owner:   make([]int32, res*res),
	}
	for i, o := range s.Objects {
		ib.proxies[i] = occluderTriangles(o.Occluder)
	}
	// Cube-map pixel solid angle: for a pixel centered at (u, v) on a
	// face at distance 1, dω = du·dv / (1 + u² + v²)^(3/2).
	ib.pixelOmega = make([]float64, res*res)
	du := 2.0 / float64(res)
	for y := 0; y < res; y++ {
		v := -1 + (float64(y)+0.5)*du
		for x := 0; x < res; x++ {
			u := -1 + (float64(x)+0.5)*du
			r2 := 1 + u*u + v*v
			ib.pixelOmega[y*res+x] = du * du / (r2 * math.Sqrt(r2)) / (4 * math.Pi)
		}
	}
	return ib
}

// occluderTriangles converts an occluder proxy to world-space triangles:
// boxes become their 12 faces, spheres a coarse UV tessellation (slightly
// inflated so the tessellated hull stays conservative against the exact
// sphere the ray caster intersects).
func occluderTriangles(o scene.Occluder) []triangle {
	var out []triangle
	addMesh := func(m *mesh.Mesh) {
		for i := 0; i < m.NumTriangles(); i++ {
			a, b, c := m.Triangle(i)
			out = append(out, triangle{a, b, c})
		}
	}
	for _, b := range o.Boxes {
		addMesh(mesh.NewBox(b))
	}
	for _, s := range o.Spheres {
		// Inflate so the inscribed tessellation circumscribes the sphere:
		// a UV sphere's chord sagitta at this resolution is ~2.5%.
		addMesh(mesh.NewSphere(s.Center, s.Radius*1.026, 10, 20))
	}
	return out
}

// Clone returns an ItemBuffer sharing the immutable proxies and solid-
// angle table but with its own raster buffers, for use from another
// goroutine (PointDoV mutates the per-face buffers, so a single instance
// is not safe for concurrent use — unlike Engine).
func (ib *ItemBuffer) Clone() *ItemBuffer {
	c := *ib
	c.depth = make([]float64, ib.res*ib.res)
	c.owner = make([]int32, ib.res*ib.res)
	return &c
}

// Res returns the per-face resolution.
func (ib *ItemBuffer) Res() int { return ib.res }

// Resolution returns the smallest DoV the buffer resolves (≈ one pixel).
func (ib *ItemBuffer) Resolution() float64 {
	return 1 / float64(6*ib.res*ib.res)
}

// cube-face bases: forward, right, up for +X,-X,+Y,-Y,+Z,-Z.
var cubeFaces = [6][3]geom.Vec3{
	{{X: 1}, {Y: 1}, {Z: 1}},
	{{X: -1}, {Y: -1}, {Z: 1}},
	{{Y: 1}, {X: -1}, {Z: 1}},
	{{Y: -1}, {X: 1}, {Z: 1}},
	{{Z: 1}, {Y: 1}, {X: -1}},
	{{Z: -1}, {Y: 1}, {X: 1}},
}

// PointDoV rasterizes the scene around p and returns per-object DoV; the
// slice is indexed by object ID and sums to at most 1.
func (ib *ItemBuffer) PointDoV(p geom.Vec3) []float64 {
	dov := make([]float64, len(ib.scene.Objects))
	for face := 0; face < 6; face++ {
		ib.rasterizeFace(p, face)
		for i, id := range ib.owner {
			if id >= 0 {
				dov[id] += ib.pixelOmega[i]
			}
		}
	}
	return dov
}

// RegionDoV is the equation-2 conservative maximum over sample viewpoints.
func (ib *ItemBuffer) RegionDoV(samples []geom.Vec3) []float64 {
	out := make([]float64, len(ib.scene.Objects))
	for _, p := range samples {
		pd := ib.PointDoV(p)
		for i, v := range pd {
			if v > out[i] {
				out[i] = v
			}
		}
	}
	return out
}

// rasterizeFace renders every object proxy into one cube face's item
// buffer with a floating-point z-buffer (depth = distance along the face
// axis, i.e. standard perspective depth).
func (ib *ItemBuffer) rasterizeFace(eye geom.Vec3, face int) {
	res := ib.res
	for i := range ib.depth {
		ib.depth[i] = math.Inf(1)
		ib.owner[i] = -1
	}
	fwd, right, up := cubeFaces[face][0], cubeFaces[face][1], cubeFaces[face][2]
	const near = 1e-3

	for objID, tris := range ib.proxies {
		for _, t := range tris {
			// Camera space: (u, v, w) with w the forward depth.
			ca := camVert(t.a, eye, fwd, right, up)
			cb := camVert(t.b, eye, fwd, right, up)
			cc := camVert(t.c, eye, fwd, right, up)
			ib.rasterTriangle(int32(objID), ca, cb, cc, near)
		}
	}
	_ = res
}

type camV struct {
	u, v, w float64
}

func camVert(p, eye, fwd, right, up geom.Vec3) camV {
	d := p.Sub(eye)
	return camV{u: d.Dot(right), v: d.Dot(up), w: d.Dot(fwd)}
}

// rasterTriangle clips the camera-space triangle against the near plane
// and scan-converts the resulting fan with perspective-correct depth.
func (ib *ItemBuffer) rasterTriangle(id int32, a, b, c camV, near float64) {
	// Near-plane clipping (w >= near) via Sutherland–Hodgman on the
	// single plane; yields 0, 3 or 4 vertices.
	in := make([]camV, 0, 4)
	verts := [3]camV{a, b, c}
	for i := 0; i < 3; i++ {
		cur, nxt := verts[i], verts[(i+1)%3]
		if cur.w >= near {
			in = append(in, cur)
		}
		if (cur.w >= near) != (nxt.w >= near) {
			t := (near - cur.w) / (nxt.w - cur.w)
			in = append(in, camV{
				u: cur.u + t*(nxt.u-cur.u),
				v: cur.v + t*(nxt.v-cur.v),
				w: near,
			})
		}
	}
	if len(in) < 3 {
		return
	}
	for i := 1; i+1 < len(in); i++ {
		ib.rasterClipped(id, in[0], in[i], in[i+1])
	}
}

// rasterClipped scan-converts one clipped camera-space triangle.
func (ib *ItemBuffer) rasterClipped(id int32, a, b, c camV) {
	res := ib.res
	// Project to face coordinates in [-1, 1]; keep 1/w for perspective-
	// correct depth interpolation.
	type proj struct {
		x, y, invW float64
	}
	pr := func(v camV) proj {
		return proj{x: v.u / v.w, y: v.v / v.w, invW: 1 / v.w}
	}
	pa, pb, pc := pr(a), pr(b), pr(c)

	// Pixel-space bounding box.
	toPix := func(t float64) float64 { return (t + 1) / 2 * float64(res) }
	minX := int(math.Floor(toPix(math.Min(pa.x, math.Min(pb.x, pc.x)))))
	maxX := int(math.Ceil(toPix(math.Max(pa.x, math.Max(pb.x, pc.x)))))
	minY := int(math.Floor(toPix(math.Min(pa.y, math.Min(pb.y, pc.y)))))
	maxY := int(math.Ceil(toPix(math.Max(pa.y, math.Max(pb.y, pc.y)))))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX > res {
		maxX = res
	}
	if maxY > res {
		maxY = res
	}
	if minX >= maxX || minY >= maxY {
		return
	}

	// Edge functions in face coordinates (two-sided: accept either
	// orientation, occluders are closed surfaces).
	area := (pb.x-pa.x)*(pc.y-pa.y) - (pb.y-pa.y)*(pc.x-pa.x)
	if math.Abs(area) < 1e-18 {
		return
	}
	invArea := 1 / area
	du := 2.0 / float64(res)
	for py := minY; py < maxY; py++ {
		y := -1 + (float64(py)+0.5)*du
		for px := minX; px < maxX; px++ {
			x := -1 + (float64(px)+0.5)*du
			w0 := ((pb.x-x)*(pc.y-y) - (pb.y-y)*(pc.x-x)) * invArea
			w1 := ((pc.x-x)*(pa.y-y) - (pc.y-y)*(pa.x-x)) * invArea
			w2 := 1 - w0 - w1
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			// Perspective-correct depth: interpolate 1/w linearly.
			invW := w0*pa.invW + w1*pb.invW + w2*pc.invW
			if invW <= 0 {
				continue
			}
			depth := 1 / invW
			idx := py*res + px
			if depth < ib.depth[idx] {
				ib.depth[idx] = depth
				ib.owner[idx] = id
			}
		}
	}
}
