package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRayAt(t *testing.T) {
	r := NewRay(V(1, 0, 0), V(0, 2, 0))
	if got := r.At(0.5); got != V(1, 1, 0) {
		t.Fatalf("At = %v", got)
	}
}

func TestRayAABBBasic(t *testing.T) {
	b := Box(V(-1, -1, -1), V(1, 1, 1))
	r := NewRay(V(-5, 0, 0), V(1, 0, 0))
	tmin, hit := r.IntersectAABB(b, math.Inf(1))
	if !hit || math.Abs(tmin-4) > 1e-12 {
		t.Fatalf("hit=%v tmin=%v", hit, tmin)
	}
	// Pointing away: miss.
	r2 := NewRay(V(-5, 0, 0), V(-1, 0, 0))
	if _, hit := r2.IntersectAABB(b, math.Inf(1)); hit {
		t.Fatal("backward ray should miss")
	}
	// Offset miss.
	r3 := NewRay(V(-5, 3, 0), V(1, 0, 0))
	if _, hit := r3.IntersectAABB(b, math.Inf(1)); hit {
		t.Fatal("offset ray should miss")
	}
	// Origin inside box.
	r4 := NewRay(V(0, 0, 0), V(0.3, 0.5, -0.1))
	tmin, hit = r4.IntersectAABB(b, math.Inf(1))
	if !hit || tmin != 0 {
		t.Fatalf("inside origin: hit=%v tmin=%v", hit, tmin)
	}
	// tmax cuts the hit off.
	if _, hit := r.IntersectAABB(b, 3.9); hit {
		t.Fatal("tmax should prevent hit")
	}
}

func TestRayAABBAxisParallel(t *testing.T) {
	// Ray parallel to a slab, origin on the slab boundary plane: the NaN
	// guard must not produce false misses.
	b := Box(V(0, 0, 0), V(1, 1, 1))
	r := NewRay(V(0, 0.5, -5), V(0, 0, 1)) // x component zero, origin.x == b.Min.X
	if _, hit := r.IntersectAABB(b, math.Inf(1)); !hit {
		t.Fatal("boundary-parallel ray should hit")
	}
	r2 := NewRay(V(-0.001, 0.5, -5), V(0, 0, 1))
	if _, hit := r2.IntersectAABB(b, math.Inf(1)); hit {
		t.Fatal("just-outside parallel ray should miss")
	}
}

func TestRayTriangle(t *testing.T) {
	a, b, c := V(0, 0, 0), V(1, 0, 0), V(0, 1, 0)
	r := NewRay(V(0.2, 0.2, -1), V(0, 0, 1))
	tt, hit := r.IntersectTriangle(a, b, c, math.Inf(1))
	if !hit || math.Abs(tt-1) > 1e-12 {
		t.Fatalf("hit=%v t=%v", hit, tt)
	}
	// Outside barycentric range.
	r2 := NewRay(V(0.9, 0.9, -1), V(0, 0, 1))
	if _, hit := r2.IntersectTriangle(a, b, c, math.Inf(1)); hit {
		t.Fatal("outside triangle should miss")
	}
	// Backface must also hit (two-sided).
	r3 := NewRay(V(0.2, 0.2, 1), V(0, 0, -1))
	if _, hit := r3.IntersectTriangle(a, b, c, math.Inf(1)); !hit {
		t.Fatal("backface should hit (two-sided)")
	}
	// Parallel ray misses.
	r4 := NewRay(V(0.2, 0.2, 1), V(1, 0, 0))
	if _, hit := r4.IntersectTriangle(a, b, c, math.Inf(1)); hit {
		t.Fatal("parallel ray should miss")
	}
	// Degenerate triangle misses.
	if _, hit := r.IntersectTriangle(a, a, c, math.Inf(1)); hit {
		t.Fatal("degenerate triangle should miss")
	}
	// tmax cutoff.
	if _, hit := r.IntersectTriangle(a, b, c, 0.5); hit {
		t.Fatal("tmax should prevent triangle hit")
	}
}

func TestPlaneFromPoints(t *testing.T) {
	pl := PlaneFromPoints(V(0, 0, 1), V(1, 0, 1), V(0, 1, 1))
	if !pl.N.ApproxEqual(V(0, 0, 1), 1e-12) {
		t.Fatalf("normal = %v", pl.N)
	}
	if math.Abs(pl.SignedDist(V(5, 5, 3))-2) > 1e-12 {
		t.Fatalf("dist = %v", pl.SignedDist(V(5, 5, 3)))
	}
	if math.Abs(pl.SignedDist(V(5, 5, 0))+1) > 1e-12 {
		t.Fatalf("dist = %v", pl.SignedDist(V(5, 5, 0)))
	}
}

func TestPlaneAABBInFront(t *testing.T) {
	pl := Plane{N: V(1, 0, 0), D: 0} // x >= 0 half-space
	if !pl.AABBInFront(Box(V(1, 0, 0), V(2, 1, 1))) {
		t.Fatal("box fully in front reported behind")
	}
	if !pl.AABBInFront(Box(V(-1, 0, 0), V(1, 1, 1))) {
		t.Fatal("straddling box should count as in front")
	}
	if pl.AABBInFront(Box(V(-3, 0, 0), V(-1, 1, 1))) {
		t.Fatal("box fully behind reported in front")
	}
}

// Property: if the slab test reports a hit at tmin, the hit point lies on
// the box boundary (or the origin is inside); if it reports a miss, dense
// sampling along the ray finds no inside point.
func TestPropRayAABBConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := quickBox(r)
		origin := quickVec(r)
		dir := quickVec(r).Normalize()
		if dir.Len2() == 0 {
			return true
		}
		ray := NewRay(origin, dir)
		tmin, hit := ray.IntersectAABB(b, 1e6)
		if hit {
			p := ray.At(tmin + 1e-9)
			return b.Expand(1e-6).ContainsPoint(p)
		}
		for i := 0; i < 64; i++ {
			if b.ContainsPoint(ray.At(float64(i) * 5)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a ray aimed at a random interior point of a box always hits.
func TestPropRayAABBAimedAlwaysHits(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := quickBox(r)
		if b.Volume() < 1e-9 {
			return true
		}
		target := Vec3{
			b.Min.X + r.Float64()*b.Size().X,
			b.Min.Y + r.Float64()*b.Size().Y,
			b.Min.Z + r.Float64()*b.Size().Z,
		}
		origin := quickVec(r).Mul(3)
		if b.ContainsPoint(origin) {
			return true
		}
		dir := target.Sub(origin).Normalize()
		_, hit := NewRay(origin, dir).IntersectAABB(b, math.Inf(1))
		return hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle hit points lie in the triangle plane.
func TestPropRayTrianglePlanar(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := quickVec(r), quickVec(r), quickVec(r)
		origin := quickVec(r)
		dir := quickVec(r).Normalize()
		if dir.Len2() == 0 {
			return true
		}
		ray := NewRay(origin, dir)
		tt, hit := ray.IntersectTriangle(a, b, c, math.Inf(1))
		if !hit {
			return true
		}
		pl := PlaneFromPoints(a, b, c)
		return math.Abs(pl.SignedDist(ray.At(tt))) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
