package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func quickBox(r *rand.Rand) AABB {
	return Box(quickVec(r), quickVec(r))
}

func TestEmptyAABB(t *testing.T) {
	e := EmptyAABB()
	if !e.IsEmpty() {
		t.Fatal("EmptyAABB not empty")
	}
	if e.Volume() != 0 || e.SurfaceArea() != 0 || e.Margin() != 0 {
		t.Fatal("empty box should have zero measures")
	}
	b := Box(V(0, 0, 0), V(1, 2, 3))
	if got := e.Union(b); got != b {
		t.Fatalf("union with empty = %v, want %v", got, b)
	}
	if got := b.Union(e); got != b {
		t.Fatalf("union with empty = %v, want %v", got, b)
	}
}

func TestBoxConstructionOrderIndependent(t *testing.T) {
	a := Box(V(1, 5, 2), V(3, 1, 8))
	if a.Min != V(1, 1, 2) || a.Max != V(3, 5, 8) {
		t.Fatalf("box = %v", a)
	}
	if a.IsEmpty() {
		t.Fatal("non-degenerate box reported empty")
	}
}

func TestBoxAt(t *testing.T) {
	b := BoxAt(V(1, 2, 3), 0.5)
	if b.Min != V(0.5, 1.5, 2.5) || b.Max != V(1.5, 2.5, 3.5) {
		t.Fatalf("BoxAt = %v", b)
	}
	if got := b.Center(); got != V(1, 2, 3) {
		t.Fatalf("center = %v", got)
	}
}

func TestBoxMeasures(t *testing.T) {
	b := Box(V(0, 0, 0), V(2, 3, 4))
	if b.Volume() != 24 {
		t.Fatalf("volume = %v", b.Volume())
	}
	if b.SurfaceArea() != 2*(6+12+8) {
		t.Fatalf("area = %v", b.SurfaceArea())
	}
	if b.Margin() != 9 {
		t.Fatalf("margin = %v", b.Margin())
	}
	if b.Size() != V(2, 3, 4) {
		t.Fatalf("size = %v", b.Size())
	}
	if b.LongestAxis() != 2 {
		t.Fatalf("longest axis = %d", b.LongestAxis())
	}
	if r := b.BoundingRadius(); math.Abs(r-math.Sqrt(4+9+16)/2) > 1e-12 {
		t.Fatalf("radius = %v", r)
	}
}

func TestBoxIntersects(t *testing.T) {
	a := Box(V(0, 0, 0), V(1, 1, 1))
	cases := []struct {
		b    AABB
		want bool
	}{
		{Box(V(0.5, 0.5, 0.5), V(2, 2, 2)), true},
		{Box(V(1, 0, 0), V(2, 1, 1)), true}, // touching face counts
		{Box(V(1.001, 0, 0), V(2, 1, 1)), false},
		{Box(V(-1, -1, -1), V(2, 2, 2)), true}, // containment
		{Box(V(0, 0, 2), V(1, 1, 3)), false},
	}
	for i, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Fatalf("case %d: intersects = %v, want %v", i, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Fatalf("case %d: intersects not symmetric", i)
		}
	}
}

func TestBoxContains(t *testing.T) {
	a := Box(V(0, 0, 0), V(10, 10, 10))
	if !a.Contains(Box(V(1, 1, 1), V(9, 9, 9))) {
		t.Fatal("inner box not contained")
	}
	if !a.Contains(a) {
		t.Fatal("box should contain itself")
	}
	if a.Contains(Box(V(1, 1, 1), V(11, 9, 9))) {
		t.Fatal("overflowing box reported contained")
	}
	if !a.Contains(EmptyAABB()) {
		t.Fatal("empty box should be contained in anything")
	}
	if !a.ContainsPoint(V(0, 0, 0)) || !a.ContainsPoint(V(10, 10, 10)) {
		t.Fatal("boundary points should be contained")
	}
	if a.ContainsPoint(V(10.001, 5, 5)) {
		t.Fatal("outside point reported contained")
	}
}

func TestBoxIntersection(t *testing.T) {
	a := Box(V(0, 0, 0), V(4, 4, 4))
	b := Box(V(2, 2, 2), V(6, 6, 6))
	got := a.Intersect(b)
	if got != Box(V(2, 2, 2), V(4, 4, 4)) {
		t.Fatalf("intersect = %v", got)
	}
	c := Box(V(5, 5, 5), V(6, 6, 6))
	if !a.Intersect(c).IsEmpty() {
		t.Fatal("disjoint intersection should be empty")
	}
}

func TestBoxEnlargement(t *testing.T) {
	a := Box(V(0, 0, 0), V(1, 1, 1))
	if e := a.Enlargement(a); e != 0 {
		t.Fatalf("self enlargement = %v", e)
	}
	b := Box(V(0, 0, 0), V(2, 1, 1))
	if e := a.Enlargement(b); e != 1 {
		t.Fatalf("enlargement = %v", e)
	}
}

func TestBoxExpandTranslate(t *testing.T) {
	a := Box(V(0, 0, 0), V(1, 1, 1))
	e := a.Expand(0.5)
	if e.Min != V(-0.5, -0.5, -0.5) || e.Max != V(1.5, 1.5, 1.5) {
		t.Fatalf("expand = %v", e)
	}
	tr := a.Translate(V(1, 2, 3))
	if tr.Min != V(1, 2, 3) || tr.Max != V(2, 3, 4) {
		t.Fatalf("translate = %v", tr)
	}
}

func TestBoxDistToPoint(t *testing.T) {
	a := Box(V(0, 0, 0), V(1, 1, 1))
	if d := a.DistToPoint(V(0.5, 0.5, 0.5)); d != 0 {
		t.Fatalf("inside dist = %v", d)
	}
	if d := a.DistToPoint(V(2, 0.5, 0.5)); d != 1 {
		t.Fatalf("axis dist = %v", d)
	}
	if d := a.DistToPoint(V(2, 2, 0.5)); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Fatalf("corner dist = %v", d)
	}
	cp := a.ClosestPoint(V(2, -1, 0.5))
	if cp != V(1, 0, 0.5) {
		t.Fatalf("closest = %v", cp)
	}
}

func TestBoxCorners(t *testing.T) {
	a := Box(V(0, 0, 0), V(1, 2, 3))
	seen := make(map[Vec3]bool)
	for i := 0; i < 8; i++ {
		c := a.Corner(i)
		if !a.ContainsPoint(c) {
			t.Fatalf("corner %d = %v outside box", i, c)
		}
		seen[c] = true
	}
	if len(seen) != 8 {
		t.Fatalf("expected 8 distinct corners, got %d", len(seen))
	}
}

func TestSolidAngleBound(t *testing.T) {
	b := BoxAt(V(0, 0, 0), 1)
	// Viewpoint inside the bounding sphere -> MAXDOV cap of 0.5.
	if got := SolidAngleBound(V(0, 0, 0), b); got != 0.5 {
		t.Fatalf("inside bound = %v", got)
	}
	// Far away: bound shrinks roughly like (r/2d)^2.
	far := SolidAngleBound(V(100, 0, 0), b)
	farther := SolidAngleBound(V(200, 0, 0), b)
	if far <= 0 || farther <= 0 {
		t.Fatal("bounds should be positive")
	}
	ratio := far / farther
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("inverse-square falloff violated: ratio %v", ratio)
	}
	if got := SolidAngleBound(V(5, 5, 5), EmptyAABB()); got != 0 {
		t.Fatalf("empty box bound = %v", got)
	}
}

func TestPropUnionContainsBoth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := quickBox(r), quickBox(r)
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropUnionCommutativeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := quickBox(r), quickBox(r), quickBox(r)
		if a.Union(b) != b.Union(a) {
			return false
		}
		l := a.Union(b).Union(c)
		rr := a.Union(b.Union(c))
		return l.Min.ApproxEqual(rr.Min, 1e-12) && l.Max.ApproxEqual(rr.Max, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropIntersectionWithinBoth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := quickBox(r), quickBox(r)
		x := a.Intersect(b)
		if x.IsEmpty() {
			return !a.Intersects(b) ||
				// Touching boxes intersect but have an empty-volume box;
				// allow degenerate (zero-size) intersection.
				x.Min.ApproxEqual(x.Max, math.Inf(1))
		}
		return a.Contains(x) && b.Contains(x) && a.Intersects(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropEnlargementNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := quickBox(r), quickBox(r)
		return a.Enlargement(b) >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropDistToPointZeroIffInside(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := quickBox(r)
		p := quickVec(r)
		d := b.DistToPoint(p)
		if b.ContainsPoint(p) {
			return d == 0
		}
		cp := b.ClosestPoint(p)
		return d > 0 && math.Abs(cp.Dist(p)-d) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSolidAngleBoundRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := quickBox(r)
		p := quickVec(r)
		s := SolidAngleBound(p, b)
		return s >= 0 && s <= 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
