// Package geom provides the 3D geometry substrate used throughout the
// HDoV-tree reproduction: vectors, axis-aligned bounding boxes, rays,
// planes, view frustums, triangles and solid-angle helpers.
//
// All types are value types with no hidden allocation; the package is
// deliberately free of interfaces so that the hot paths (ray casting during
// DoV precomputation, box tests during R-tree traversal) inline well.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or direction in 3-space.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Mul returns the component-wise scaling of v by s.
func (v Vec3) Mul(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// MulVec returns the component-wise (Hadamard) product of v and w.
func (v Vec3) MulVec(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Div returns v scaled by 1/s. Division by zero yields infinities, which the
// ray/box slab tests rely on, so it is not guarded.
func (v Vec3) Div(s float64) Vec3 { return Vec3{v.X / s, v.Y / s, v.Z / s} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Len2 returns the squared length of v.
func (v Vec3) Len2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Len() }

// Dist2 returns the squared distance between v and w.
func (v Vec3) Dist2(w Vec3) float64 { return v.Sub(w).Len2() }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged so callers never receive NaNs.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Mul(1 / l)
}

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Min returns the component-wise minimum of v and w.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// Lerp returns the linear interpolation between v (t=0) and w (t=1).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + (w.X-v.X)*t,
		v.Y + (w.Y-v.Y)*t,
		v.Z + (w.Z-v.Z)*t,
	}
}

// Axis returns the i-th component (0=X, 1=Y, 2=Z).
func (v Vec3) Axis(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

// WithAxis returns a copy of v with the i-th component replaced by val.
func (v Vec3) WithAxis(i int, val float64) Vec3 {
	switch i {
	case 0:
		v.X = val
	case 1:
		v.Y = val
	default:
		v.Z = val
	}
	return v
}

// IsFinite reports whether all components are finite (no NaN or ±Inf).
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// ApproxEqual reports whether v and w differ by at most eps in every
// component.
func (v Vec3) ApproxEqual(w Vec3, eps float64) bool {
	return math.Abs(v.X-w.X) <= eps &&
		math.Abs(v.Y-w.Y) <= eps &&
		math.Abs(v.Z-w.Z) <= eps
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.4g, %.4g, %.4g)", v.X, v.Y, v.Z)
}

// SphericalDirection converts spherical coordinates (theta: polar angle from
// +Z, phi: azimuth from +X) to a unit direction vector.
func SphericalDirection(theta, phi float64) Vec3 {
	st, ct := math.Sincos(theta)
	sp, cp := math.Sincos(phi)
	return Vec3{st * cp, st * sp, ct}
}

// FibonacciSphere returns n quasi-uniformly distributed unit directions on
// the sphere using the spherical Fibonacci (golden spiral) lattice. The
// distribution is deterministic, so DoV precomputation is reproducible.
//
// Each direction can be treated as carrying an equal solid angle of 4π/n
// steradians; the relative error of this equal-weight assumption decays as
// O(1/n) and is far below the DoV thresholds used by the paper (η ≤ 0.008)
// for the sample counts used in this reproduction (n ≥ 1024).
func FibonacciSphere(n int) []Vec3 {
	if n <= 0 {
		return nil
	}
	dirs := make([]Vec3, n)
	// Golden angle in radians.
	ga := math.Pi * (3 - math.Sqrt(5))
	for i := 0; i < n; i++ {
		// z descends uniformly through (-1, 1) at strip midpoints.
		z := 1 - (2*float64(i)+1)/float64(n)
		r := math.Sqrt(1 - z*z)
		phi := ga * float64(i)
		s, c := math.Sincos(phi)
		dirs[i] = Vec3{r * c, r * s, z}
	}
	return dirs
}

// Clamp returns x restricted to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
