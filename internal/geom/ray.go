package geom

import "math"

// Ray is a half-line starting at Origin and extending along Dir. Dir need
// not be unit length for box tests, but hit distances returned by the
// intersection routines are expressed in multiples of Dir, so DoV sampling
// always uses unit directions.
type Ray struct {
	Origin Vec3
	Dir    Vec3
	// InvDir caches 1/Dir for the slab test; populated by NewRay.
	InvDir Vec3
}

// NewRay constructs a ray and precomputes the inverse direction used by the
// branchless slab test. Zero direction components produce ±Inf inverses,
// which the slab test handles correctly per IEEE-754 semantics.
func NewRay(origin, dir Vec3) Ray {
	return Ray{
		Origin: origin,
		Dir:    dir,
		InvDir: Vec3{1 / dir.X, 1 / dir.Y, 1 / dir.Z},
	}
}

// At returns the point at parameter t along the ray.
func (r Ray) At(t float64) Vec3 { return r.Origin.Add(r.Dir.Mul(t)) }

// IntersectAABB performs the slab test against box b. It returns the entry
// parameter tmin and whether the ray hits the box within (0, tmax]. A ray
// originating inside the box reports a hit with tmin = 0.
func (r Ray) IntersectAABB(b AABB, tmax float64) (float64, bool) {
	t0 := 0.0
	t1 := tmax

	for i := 0; i < 3; i++ {
		inv := r.InvDir.Axis(i)
		near := (b.Min.Axis(i) - r.Origin.Axis(i)) * inv
		far := (b.Max.Axis(i) - r.Origin.Axis(i)) * inv
		if near > far {
			near, far = far, near
		}
		// NaN from 0*Inf means the ray is parallel to the slab and the
		// origin lies on a slab plane; treat the slab as non-restricting.
		if !math.IsNaN(near) && near > t0 {
			t0 = near
		}
		if !math.IsNaN(far) && far < t1 {
			t1 = far
		}
		if t0 > t1 {
			return 0, false
		}
	}
	return t0, true
}

// IntersectTriangle implements the Möller–Trumbore ray/triangle test. It
// returns the hit parameter t and whether the ray hits the triangle (a, b,
// c) within (eps, tmax). Backfaces are reported as hits — the DoV occluders
// are closed opaque solids, so one-sided culling would only let rays leak
// through numerically degenerate seams.
func (r Ray) IntersectTriangle(a, b, c Vec3, tmax float64) (float64, bool) {
	const eps = 1e-12
	e1 := b.Sub(a)
	e2 := c.Sub(a)
	p := r.Dir.Cross(e2)
	det := e1.Dot(p)
	if det > -eps && det < eps {
		return 0, false // parallel or degenerate
	}
	invDet := 1 / det
	tv := r.Origin.Sub(a)
	u := tv.Dot(p) * invDet
	if u < 0 || u > 1 {
		return 0, false
	}
	q := tv.Cross(e1)
	v := r.Dir.Dot(q) * invDet
	if v < 0 || u+v > 1 {
		return 0, false
	}
	t := e2.Dot(q) * invDet
	if t <= eps || t >= tmax {
		return 0, false
	}
	return t, true
}

// Plane is the oriented plane N·x = D. Points with N·x > D are on the
// positive (inside, for frustum planes) side.
type Plane struct {
	N Vec3
	D float64
}

// PlaneFromPoints constructs the plane through three non-collinear points
// with normal (b-a)×(c-a), normalized.
func PlaneFromPoints(a, b, c Vec3) Plane {
	n := b.Sub(a).Cross(c.Sub(a)).Normalize()
	return Plane{N: n, D: n.Dot(a)}
}

// SignedDist returns the signed distance from p to the plane (positive on
// the side the normal points to). Requires a unit normal.
func (pl Plane) SignedDist(p Vec3) float64 { return pl.N.Dot(p) - pl.D }

// AABBInFront reports whether any part of box b lies on or beyond the
// positive side of the plane. It tests the "positive vertex" of the box
// with respect to the plane normal, the standard frustum-culling trick.
func (pl Plane) AABBInFront(b AABB) bool {
	p := b.Min
	if pl.N.X >= 0 {
		p.X = b.Max.X
	}
	if pl.N.Y >= 0 {
		p.Y = b.Max.Y
	}
	if pl.N.Z >= 0 {
		p.Z = b.Max.Z
	}
	return pl.SignedDist(p) >= 0
}
