package geom

import "math"

// Frustum is a symmetric perspective view frustum described by its six
// inward-facing planes plus the viewing basis it was built from. REVIEW
// converts it into query boxes for its window queries, and the prioritized-
// traversal extension (DESIGN.md D5) orders HDoV-tree branches by whether
// they intersect it.
type Frustum struct {
	Planes [6]Plane // left, right, bottom, top, near, far
	Apex   Vec3     // the viewpoint
	Look   Vec3     // unit viewing direction
	Right  Vec3     // unit right direction
	Up     Vec3     // unit up direction
	WTan   float64  // tan of the horizontal half-angle
	HTan   float64  // tan of the vertical half-angle
	Near   float64
	Far    float64
}

// NewFrustum builds a symmetric perspective frustum at viewpoint eye looking
// along dir (need not be unit length), with up as the approximate up vector,
// a full vertical field of view fovY (radians), the given width/height
// aspect ratio, and near/far clip distances.
func NewFrustum(eye, dir, up Vec3, fovY, aspect, near, far float64) Frustum {
	d := dir.Normalize()
	// Build an orthonormal basis; fall back if up is parallel to dir.
	right := d.Cross(up)
	if right.Len2() < 1e-12 {
		right = d.Cross(Vec3{0, 0, 1})
		if right.Len2() < 1e-12 {
			right = d.Cross(Vec3{0, 1, 0})
		}
	}
	right = right.Normalize()
	u := right.Cross(d).Normalize()

	ht := math.Tan(fovY / 2) // half-height at distance 1
	wt := ht * aspect        // half-width at distance 1

	f := Frustum{
		Apex: eye, Look: d, Right: right, Up: u,
		WTan: wt, HTan: ht, Near: near, Far: far,
	}

	// Each side plane contains the apex and one frustum edge direction;
	// the normal is the cross product of the two directions spanning the
	// plane, oriented to point into the frustum interior (checked: the
	// signed distance of eye + d must be positive).
	el := d.Sub(right.Mul(wt)) // left edge
	er := d.Add(right.Mul(wt)) // right edge
	eb := d.Sub(u.Mul(ht))     // bottom edge
	et := d.Add(u.Mul(ht))     // top edge

	mk := func(a, b Vec3) Plane {
		n := a.Cross(b).Normalize()
		if n.Dot(d) < 0 {
			n = n.Neg()
		}
		return Plane{N: n, D: n.Dot(eye)}
	}
	f.Planes[0] = mk(el, u)                                              // left
	f.Planes[1] = mk(u, er)                                              // right
	f.Planes[2] = mk(right, eb)                                          // bottom
	f.Planes[3] = mk(et, right)                                          // top
	f.Planes[4] = Plane{N: d, D: d.Dot(eye.Add(d.Mul(near)))}            // near
	f.Planes[5] = Plane{N: d.Neg(), D: d.Neg().Dot(eye.Add(d.Mul(far)))} // far
	return f
}

// ContainsPoint reports whether p is inside the frustum.
func (f Frustum) ContainsPoint(p Vec3) bool {
	for _, pl := range f.Planes {
		if pl.SignedDist(p) < 0 {
			return false
		}
	}
	return true
}

// IntersectsAABB conservatively reports whether box b may intersect the
// frustum (plane-by-plane rejection; may report rare false positives near
// frustum edges, never false negatives).
func (f Frustum) IntersectsAABB(b AABB) bool {
	for _, pl := range f.Planes {
		if !pl.AABBInFront(b) {
			return false
		}
	}
	return true
}

// Bounds returns the AABB of the frustum's eight corner points. REVIEW's
// single-large-query-box strategy uses this directly; its refined strategy
// splits it into distance bands (see QueryBoxes).
func (f Frustum) Bounds() AABB {
	b := EmptyAABB()
	for _, c := range f.Corners() {
		b = b.ExtendPoint(c)
	}
	return b
}

// Corners returns the eight corner points of the frustum: the four near-
// plane corners followed by the four far-plane corners.
func (f Frustum) Corners() [8]Vec3 {
	var out [8]Vec3
	i := 0
	for _, t := range []float64{f.Near, f.Far} {
		c := f.Apex.Add(f.Look.Mul(t))
		w := f.WTan * t
		h := f.HTan * t
		out[i] = c.Sub(f.Right.Mul(w)).Sub(f.Up.Mul(h))
		out[i+1] = c.Add(f.Right.Mul(w)).Sub(f.Up.Mul(h))
		out[i+2] = c.Sub(f.Right.Mul(w)).Add(f.Up.Mul(h))
		out[i+3] = c.Add(f.Right.Mul(w)).Add(f.Up.Mul(h))
		i += 4
	}
	return out
}

// QueryBoxes splits the frustum into n distance bands and returns the AABB
// of each band. This is the LoD-R-tree/REVIEW trick of converting the
// viewing frustum "into a few rectangular query boxes (instead of one
// single large query box that bounds the view frustum)" to reduce the
// retrieved volume. maxDepth truncates the frustum (REVIEW's query-box size
// parameter, e.g. 200 m or 400 m).
func (f Frustum) QueryBoxes(n int, maxDepth float64) []AABB {
	if n <= 0 {
		n = 1
	}
	far := math.Min(f.Far, maxDepth)
	if far <= f.Near {
		far = f.Near + 1e-9
	}
	boxes := make([]AABB, 0, n)
	for i := 0; i < n; i++ {
		t0 := f.Near + (far-f.Near)*float64(i)/float64(n)
		t1 := f.Near + (far-f.Near)*float64(i+1)/float64(n)
		sub := NewFrustumFromExisting(f, t0, t1)
		boxes = append(boxes, sub.Bounds())
	}
	return boxes
}

// NewFrustumFromExisting returns a copy of f clipped to the [near, far]
// depth range.
func NewFrustumFromExisting(f Frustum, near, far float64) Frustum {
	g := f
	g.Near = near
	g.Far = far
	d := f.Look
	g.Planes[4] = Plane{N: d, D: d.Dot(f.Apex.Add(d.Mul(near)))}
	g.Planes[5] = Plane{N: d.Neg(), D: d.Neg().Dot(f.Apex.Add(d.Mul(far)))}
	return g
}
