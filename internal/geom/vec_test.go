package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func vecNear(t *testing.T, got, want Vec3, eps float64) {
	t.Helper()
	if !got.ApproxEqual(want, eps) {
		t.Fatalf("got %v, want %v (eps %g)", got, want, eps)
	}
}

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)
	vecNear(t, a.Add(b), V(5, -3, 9), 0)
	vecNear(t, a.Sub(b), V(-3, 7, -3), 0)
	vecNear(t, a.Mul(2), V(2, 4, 6), 0)
	vecNear(t, a.MulVec(b), V(4, -10, 18), 0)
	vecNear(t, a.Div(2), V(0.5, 1, 1.5), 0)
	vecNear(t, a.Neg(), V(-1, -2, -3), 0)
	if got := a.Dot(b); got != 4-10+18 {
		t.Fatalf("dot = %v", got)
	}
}

func TestVecCross(t *testing.T) {
	x := V(1, 0, 0)
	y := V(0, 1, 0)
	z := V(0, 0, 1)
	vecNear(t, x.Cross(y), z, 0)
	vecNear(t, y.Cross(z), x, 0)
	vecNear(t, z.Cross(x), y, 0)
	vecNear(t, y.Cross(x), z.Neg(), 0)
}

func TestVecLenDist(t *testing.T) {
	v := V(3, 4, 0)
	if v.Len() != 5 {
		t.Fatalf("len = %v", v.Len())
	}
	if v.Len2() != 25 {
		t.Fatalf("len2 = %v", v.Len2())
	}
	if d := V(1, 1, 1).Dist(V(1, 1, 6)); d != 5 {
		t.Fatalf("dist = %v", d)
	}
	if d := V(1, 1, 1).Dist2(V(1, 1, 6)); d != 25 {
		t.Fatalf("dist2 = %v", d)
	}
}

func TestVecNormalize(t *testing.T) {
	v := V(10, 0, 0).Normalize()
	vecNear(t, v, V(1, 0, 0), 1e-15)
	zero := V(0, 0, 0).Normalize()
	vecNear(t, zero, V(0, 0, 0), 0)
	u := V(1, 2, 3).Normalize()
	if math.Abs(u.Len()-1) > 1e-12 {
		t.Fatalf("normalized length %v", u.Len())
	}
}

func TestVecMinMaxLerp(t *testing.T) {
	a := V(1, 5, -2)
	b := V(3, 2, 0)
	vecNear(t, a.Min(b), V(1, 2, -2), 0)
	vecNear(t, a.Max(b), V(3, 5, 0), 0)
	vecNear(t, a.Lerp(b, 0), a, 0)
	vecNear(t, a.Lerp(b, 1), b, 0)
	vecNear(t, a.Lerp(b, 0.5), V(2, 3.5, -1), 0)
}

func TestVecAxisAccess(t *testing.T) {
	v := V(7, 8, 9)
	for i, want := range []float64{7, 8, 9} {
		if got := v.Axis(i); got != want {
			t.Fatalf("Axis(%d) = %v, want %v", i, got, want)
		}
	}
	w := v.WithAxis(0, 1).WithAxis(1, 2).WithAxis(2, 3)
	vecNear(t, w, V(1, 2, 3), 0)
	// Original unchanged (value semantics).
	vecNear(t, v, V(7, 8, 9), 0)
}

func TestVecIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	bad := []Vec3{
		{math.NaN(), 0, 0},
		{0, math.Inf(1), 0},
		{0, 0, math.Inf(-1)},
	}
	for _, v := range bad {
		if v.IsFinite() {
			t.Fatalf("%v reported finite", v)
		}
	}
}

func TestSphericalDirection(t *testing.T) {
	vecNear(t, SphericalDirection(0, 0), V(0, 0, 1), 1e-12)
	vecNear(t, SphericalDirection(math.Pi/2, 0), V(1, 0, 0), 1e-12)
	vecNear(t, SphericalDirection(math.Pi/2, math.Pi/2), V(0, 1, 0), 1e-12)
	vecNear(t, SphericalDirection(math.Pi, 0), V(0, 0, -1), 1e-12)
}

func TestFibonacciSphereUnitLength(t *testing.T) {
	for _, n := range []int{1, 2, 10, 257, 1024} {
		dirs := FibonacciSphere(n)
		if len(dirs) != n {
			t.Fatalf("n=%d: got %d dirs", n, len(dirs))
		}
		for i, d := range dirs {
			if math.Abs(d.Len()-1) > 1e-9 {
				t.Fatalf("n=%d dir %d not unit: %v (len %v)", n, i, d, d.Len())
			}
		}
	}
	if FibonacciSphere(0) != nil || FibonacciSphere(-3) != nil {
		t.Fatal("non-positive n should return nil")
	}
}

func TestFibonacciSphereUniformity(t *testing.T) {
	// The mean direction of a uniform spherical sample tends to zero, and
	// each octant should receive roughly n/8 samples.
	const n = 4096
	dirs := FibonacciSphere(n)
	var sum Vec3
	octants := make(map[int]int)
	for _, d := range dirs {
		sum = sum.Add(d)
		k := 0
		if d.X > 0 {
			k |= 1
		}
		if d.Y > 0 {
			k |= 2
		}
		if d.Z > 0 {
			k |= 4
		}
		octants[k]++
	}
	if m := sum.Mul(1.0 / n).Len(); m > 0.01 {
		t.Fatalf("mean direction magnitude %v too large", m)
	}
	for k, c := range octants {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.15 {
			t.Fatalf("octant %d has fraction %v, want ~0.125", k, frac)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp broken")
	}
}

func TestVecStrings(t *testing.T) {
	if s := V(1, 2, 3).String(); s == "" {
		t.Fatal("empty string")
	}
	if s := Box(V(0, 0, 0), V(1, 1, 1)).String(); s == "" {
		t.Fatal("empty string")
	}
}

// quickVec produces a bounded random vector for property tests.
func quickVec(r *rand.Rand) Vec3 {
	return Vec3{
		r.Float64()*200 - 100,
		r.Float64()*200 - 100,
		r.Float64()*200 - 100,
	}
}

func TestPropDotSymmetryAndCrossOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := quickVec(r), quickVec(r)
		if math.Abs(a.Dot(b)-b.Dot(a)) > 1e-9 {
			return false
		}
		c := a.Cross(b)
		return math.Abs(c.Dot(a)) < 1e-6*(1+a.Len2()) &&
			math.Abs(c.Dot(b)) < 1e-6*(1+b.Len2())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := quickVec(r), quickVec(r)
		return a.Add(b).Len() <= a.Len()+b.Len()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropLerpBounds(t *testing.T) {
	f := func(seed int64, tRaw float64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := quickVec(r), quickVec(r)
		tt := math.Mod(math.Abs(tRaw), 1)
		p := a.Lerp(b, tt)
		box := Box(a, b)
		return box.Expand(1e-9).ContainsPoint(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
