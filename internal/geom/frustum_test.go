package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testFrustum() Frustum {
	return NewFrustum(
		V(0, 0, 10), // eye
		V(1, 0, 0),  // looking along +X
		V(0, 0, 1),  // up
		math.Pi/3,   // 60 degree vertical FoV
		4.0/3.0,     // aspect
		1, 500,      // near/far
	)
}

func TestFrustumContainsPoint(t *testing.T) {
	f := testFrustum()
	if !f.ContainsPoint(V(100, 0, 10)) {
		t.Fatal("point on axis should be inside")
	}
	if f.ContainsPoint(V(-10, 0, 10)) {
		t.Fatal("point behind eye should be outside")
	}
	if f.ContainsPoint(V(0.5, 0, 10)) {
		t.Fatal("point before near plane should be outside")
	}
	if f.ContainsPoint(V(600, 0, 10)) {
		t.Fatal("point past far plane should be outside")
	}
	if f.ContainsPoint(V(10, 100, 10)) {
		t.Fatal("point far off-axis should be outside")
	}
	// Point just inside the top plane at distance 10: half-height =
	// 10*tan(30 deg) ~ 5.77.
	if !f.ContainsPoint(V(10, 0, 10+5.5)) {
		t.Fatal("point inside top boundary should be inside")
	}
	if f.ContainsPoint(V(10, 0, 10+6.0)) {
		t.Fatal("point outside top boundary should be outside")
	}
}

func TestFrustumIntersectsAABB(t *testing.T) {
	f := testFrustum()
	if !f.IntersectsAABB(BoxAt(V(100, 0, 10), 5)) {
		t.Fatal("on-axis box should intersect")
	}
	if f.IntersectsAABB(BoxAt(V(-100, 0, 10), 5)) {
		t.Fatal("behind box should not intersect")
	}
	if f.IntersectsAABB(BoxAt(V(100, 0, 10), 5).Translate(V(0, 1000, 0))) {
		t.Fatal("far off-axis box should not intersect")
	}
	// Box straddling a side plane intersects.
	if !f.IntersectsAABB(BoxAt(V(10, 7.6, 10), 2)) {
		t.Fatal("straddling box should intersect")
	}
}

func TestFrustumCorners(t *testing.T) {
	f := testFrustum()
	cs := f.Corners()
	// Near corners at distance ~near along look; far corners at ~far.
	for i := 0; i < 4; i++ {
		d := cs[i].Sub(f.Apex).Dot(f.Look)
		if math.Abs(d-f.Near) > 1e-9 {
			t.Fatalf("near corner %d at depth %v", i, d)
		}
	}
	for i := 4; i < 8; i++ {
		d := cs[i].Sub(f.Apex).Dot(f.Look)
		if math.Abs(d-f.Far) > 1e-9 {
			t.Fatalf("far corner %d at depth %v", i, d)
		}
	}
	// All corners should satisfy the side planes (within tolerance).
	for i, c := range cs {
		for j := 0; j < 4; j++ {
			if f.Planes[j].SignedDist(c) < -1e-6*f.Far {
				t.Fatalf("corner %d violates plane %d by %v", i, j, f.Planes[j].SignedDist(c))
			}
		}
	}
}

func TestFrustumBounds(t *testing.T) {
	f := testFrustum()
	b := f.Bounds()
	for i, c := range f.Corners() {
		if !b.Expand(1e-9).ContainsPoint(c) {
			t.Fatalf("corner %d outside bounds", i)
		}
	}
	if !b.ContainsPoint(V(250, 0, 10)) {
		t.Fatal("axis midpoint should be inside bounds")
	}
}

func TestFrustumQueryBoxes(t *testing.T) {
	f := testFrustum()
	boxes := f.QueryBoxes(4, 400)
	if len(boxes) != 4 {
		t.Fatalf("got %d boxes", len(boxes))
	}
	// Banded boxes should have much smaller total volume than the single
	// bounding box of the truncated frustum (the LoD-R-tree motivation).
	single := NewFrustumFromExisting(f, f.Near, 400).Bounds()
	var total float64
	for _, b := range boxes {
		total += b.Volume()
	}
	if total >= single.Volume() {
		t.Fatalf("banded volume %v should be < single-box volume %v", total, single.Volume())
	}
	// Every point sampled inside the truncated frustum must be covered by
	// some band box.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		tDepth := 1 + rng.Float64()*398
		p := f.Apex.Add(f.Look.Mul(tDepth))
		covered := false
		for _, b := range boxes {
			if b.ContainsPoint(p) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("axis point at depth %v not covered", tDepth)
		}
	}
	// Degenerate arguments.
	if got := f.QueryBoxes(0, 100); len(got) != 1 {
		t.Fatalf("n=0 should clamp to 1 box, got %d", len(got))
	}
}

func TestFrustumUpParallelToDir(t *testing.T) {
	// dir parallel to up must not produce NaN planes.
	f := NewFrustum(V(0, 0, 0), V(0, 0, 1), V(0, 0, 1), math.Pi/3, 1, 1, 100)
	if !f.ContainsPoint(V(0, 0, 50)) {
		t.Fatal("axis point should be inside")
	}
	for i, pl := range f.Planes {
		if !pl.N.IsFinite() {
			t.Fatalf("plane %d has non-finite normal %v", i, pl.N)
		}
	}
}

// Property: points inside the frustum are always inside its Bounds().
func TestPropFrustumBoundsCoverContained(t *testing.T) {
	f := testFrustum()
	b := f.Bounds().Expand(1e-6)
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := V(r.Float64()*600-50, r.Float64()*600-300, r.Float64()*600-300)
		if !f.ContainsPoint(p) {
			return true
		}
		return b.ContainsPoint(p)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: IntersectsAABB never reports false for a box containing an
// in-frustum point (conservativeness).
func TestPropFrustumCullConservative(t *testing.T) {
	f := testFrustum()
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := V(r.Float64()*500, r.Float64()*400-200, r.Float64()*400-200)
		if !f.ContainsPoint(p) {
			return true
		}
		box := BoxAt(p, r.Float64()*20+0.1)
		return f.IntersectsAABB(box)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
