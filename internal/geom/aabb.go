package geom

import (
	"fmt"
	"math"
)

// AABB is an axis-aligned bounding box, the MBR (minimum bounding rectangle)
// type stored in every HDoV-tree entry. Min must be component-wise less than
// or equal to Max for a non-empty box; EmptyAABB produces the identity
// element for Union.
type AABB struct {
	Min, Max Vec3
}

// EmptyAABB returns the empty box: the identity for Union and a box for
// which IsEmpty reports true.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// Box constructs an AABB from two opposite corners given in any order.
func Box(a, b Vec3) AABB {
	return AABB{Min: a.Min(b), Max: a.Max(b)}
}

// BoxAt returns the axis-aligned cube of the given half-extent centered at c.
func BoxAt(c Vec3, halfExtent float64) AABB {
	h := Vec3{halfExtent, halfExtent, halfExtent}
	return AABB{Min: c.Sub(h), Max: c.Add(h)}
}

// IsEmpty reports whether the box contains no points.
func (b AABB) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Center returns the midpoint of the box.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Mul(0.5) }

// Size returns the extents of the box along each axis.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// Volume returns the volume of the box; empty boxes have zero volume.
func (b AABB) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return s.X * s.Y * s.Z
}

// SurfaceArea returns the total surface area of the box.
func (b AABB) SurfaceArea() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return 2 * (s.X*s.Y + s.Y*s.Z + s.Z*s.X)
}

// Margin returns the sum of the edge lengths along the three axes. Used by
// the Ang–Tan linear split to compare candidate distributions cheaply.
func (b AABB) Margin() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return s.X + s.Y + s.Z
}

// Union returns the smallest box enclosing both b and c.
func (b AABB) Union(c AABB) AABB {
	return AABB{Min: b.Min.Min(c.Min), Max: b.Max.Max(c.Max)}
}

// ExtendPoint returns the smallest box enclosing b and the point p.
func (b AABB) ExtendPoint(p Vec3) AABB {
	return AABB{Min: b.Min.Min(p), Max: b.Max.Max(p)}
}

// Intersect returns the intersection of b and c, which may be empty.
func (b AABB) Intersect(c AABB) AABB {
	return AABB{Min: b.Min.Max(c.Min), Max: b.Max.Min(c.Max)}
}

// Intersects reports whether b and c share at least one point. Boxes that
// merely touch on a face, edge or corner are considered intersecting,
// matching R-tree overlap semantics.
func (b AABB) Intersects(c AABB) bool {
	return b.Min.X <= c.Max.X && c.Min.X <= b.Max.X &&
		b.Min.Y <= c.Max.Y && c.Min.Y <= b.Max.Y &&
		b.Min.Z <= c.Max.Z && c.Min.Z <= b.Max.Z
}

// Contains reports whether b fully encloses c.
func (b AABB) Contains(c AABB) bool {
	if c.IsEmpty() {
		return true
	}
	return b.Min.X <= c.Min.X && b.Min.Y <= c.Min.Y && b.Min.Z <= c.Min.Z &&
		b.Max.X >= c.Max.X && b.Max.Y >= c.Max.Y && b.Max.Z >= c.Max.Z
}

// ContainsPoint reports whether p lies inside or on the boundary of b.
func (b AABB) ContainsPoint(p Vec3) bool {
	return b.Min.X <= p.X && p.X <= b.Max.X &&
		b.Min.Y <= p.Y && p.Y <= b.Max.Y &&
		b.Min.Z <= p.Z && p.Z <= b.Max.Z
}

// Enlargement returns the increase in volume needed to enclose c, the
// quantity Guttman's ChooseLeaf minimizes.
func (b AABB) Enlargement(c AABB) float64 {
	return b.Union(c).Volume() - b.Volume()
}

// Expand returns b grown by d on every side (shrunk if d is negative).
func (b AABB) Expand(d float64) AABB {
	e := Vec3{d, d, d}
	return AABB{Min: b.Min.Sub(e), Max: b.Max.Add(e)}
}

// Translate returns b shifted by d.
func (b AABB) Translate(d Vec3) AABB {
	return AABB{Min: b.Min.Add(d), Max: b.Max.Add(d)}
}

// DistToPoint returns the Euclidean distance from p to the closest point of
// b, or 0 if p is inside. REVIEW's semantic cache-replacement policy ranks
// cached nodes by this distance.
func (b AABB) DistToPoint(p Vec3) float64 {
	return math.Sqrt(b.Dist2ToPoint(p))
}

// Dist2ToPoint returns the squared distance from p to the closest point of b.
func (b AABB) Dist2ToPoint(p Vec3) float64 {
	d := 0.0
	for i := 0; i < 3; i++ {
		v := p.Axis(i)
		if lo := b.Min.Axis(i); v < lo {
			d += (lo - v) * (lo - v)
		} else if hi := b.Max.Axis(i); v > hi {
			d += (v - hi) * (v - hi)
		}
	}
	return d
}

// ClosestPoint returns the point of b nearest to p (p itself if inside).
func (b AABB) ClosestPoint(p Vec3) Vec3 {
	return Vec3{
		Clamp(p.X, b.Min.X, b.Max.X),
		Clamp(p.Y, b.Min.Y, b.Max.Y),
		Clamp(p.Z, b.Min.Z, b.Max.Z),
	}
}

// Corner returns the i-th corner of the box, i in [0, 8). Bit k of i selects
// Min (0) or Max (1) along axis k.
func (b AABB) Corner(i int) Vec3 {
	c := b.Min
	if i&1 != 0 {
		c.X = b.Max.X
	}
	if i&2 != 0 {
		c.Y = b.Max.Y
	}
	if i&4 != 0 {
		c.Z = b.Max.Z
	}
	return c
}

// LongestAxis returns the axis index (0,1,2) along which the box is widest.
func (b AABB) LongestAxis() int {
	s := b.Size()
	if s.X >= s.Y && s.X >= s.Z {
		return 0
	}
	if s.Y >= s.Z {
		return 1
	}
	return 2
}

// BoundingRadius returns the radius of the smallest sphere centered at the
// box center that encloses the box.
func (b AABB) BoundingRadius() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.Size().Len() / 2
}

// String implements fmt.Stringer.
func (b AABB) String() string {
	return fmt.Sprintf("[%v - %v]", b.Min, b.Max)
}

// SolidAngleBound returns an upper bound on the solid angle (in fractions of
// the full sphere, i.e. the DoV unit of the paper) subtended by box b as
// seen from viewpoint p. It uses the bounding sphere of the box: the
// spherical cap subtended by a sphere of radius r at distance d has solid
// angle 2π(1-√(1-(r/d)²)), i.e. a fraction (1-√(1-(r/d)²))/2 of 4π.
//
// If p is inside the bounding sphere the bound is 0.5 — the paper's MAXDOV:
// "the spherical projection of an object will not exceed 0.5 if the
// viewpoint is outside the bounding box of the object" (§3.3).
func SolidAngleBound(p Vec3, b AABB) float64 {
	if b.IsEmpty() {
		return 0
	}
	r := b.BoundingRadius()
	d := b.Center().Dist(p)
	if d <= r {
		return 0.5
	}
	q := r / d
	return (1 - math.Sqrt(1-q*q)) / 2
}
