package walkthrough_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/review"
	"repro/internal/testenv"
	"repro/internal/walkthrough"
)

func TestSessionsStayInViewRegion(t *testing.T) {
	env := testenv.Get(testenv.Small())
	for _, s := range walkthrough.Sessions(env.Scene, 200, 9) {
		if len(s.Frames) != 200 {
			t.Fatalf("%s: %d frames", s.Name, len(s.Frames))
		}
		inside := 0
		for _, p := range s.Frames {
			if env.Scene.ViewRegion.ContainsPoint(p.Eye) {
				inside++
			}
			if p.Look.Len() < 0.9 || p.Look.Len() > 1.1 {
				t.Fatalf("%s: non-unit look %v", s.Name, p.Look)
			}
		}
		// The whole path should stay in the walkable slab.
		if inside < len(s.Frames)*9/10 {
			t.Fatalf("%s: only %d/%d frames inside view region", s.Name, inside, len(s.Frames))
		}
	}
}

func TestSessionsAreDistinct(t *testing.T) {
	env := testenv.Get(testenv.Small())
	ss := walkthrough.Sessions(env.Scene, 100, 9)
	if ss[0].Name == ss[1].Name || ss[1].Name == ss[2].Name {
		t.Fatal("duplicate session names")
	}
	// Turning session sweeps gaze; normal session does not.
	maxTurn := func(s walkthrough.Session) float64 {
		worst := 0.0
		for i := 1; i < len(s.Frames); i++ {
			d := 1 - s.Frames[i].Look.Dot(s.Frames[i-1].Look)
			if d > worst {
				worst = d
			}
		}
		return worst
	}
	if maxTurn(ss[1]) <= maxTurn(ss[0]) {
		t.Fatal("turning session does not turn more than normal session")
	}
	// Back-forward session reverses direction.
	reversed := false
	for i := 1; i < len(ss[2].Frames); i++ {
		if ss[2].Frames[i].Look.Dot(ss[2].Frames[i-1].Look) < 0 {
			reversed = true
			break
		}
	}
	if !reversed {
		t.Fatal("back-forward session never reverses")
	}
}

func TestCacheBasics(t *testing.T) {
	c := walkthrough.NewCache(0)
	k1 := walkthrough.CacheKey{ObjectID: 1, NodeID: core.NilNode}
	k2 := walkthrough.CacheKey{ObjectID: 2, NodeID: core.NilNode}
	if c.Has(k1) {
		t.Fatal("empty cache has entry")
	}
	c.Add(k1, 1, 100, geom.V(0, 0, 0), geom.V(0, 0, 0))
	c.Add(k2, 0, 200, geom.V(10, 0, 0), geom.V(0, 0, 0))
	if !c.Has(k1) || !c.Has(k2) {
		t.Fatal("entries missing")
	}
	if c.Bytes() != 300 || c.Len() != 2 {
		t.Fatalf("bytes=%d len=%d", c.Bytes(), c.Len())
	}
	// Finer level replaces; coarser is ignored.
	c.Add(k1, 0, 150, geom.V(0, 0, 0), geom.V(0, 0, 0))
	if c.Bytes() != 350 || c.Len() != 2 {
		t.Fatalf("after finer re-add: bytes=%d len=%d", c.Bytes(), c.Len())
	}
	c.Add(k1, 3, 10, geom.V(0, 0, 0), geom.V(0, 0, 0))
	if c.Bytes() != 350 {
		t.Fatalf("coarser re-add changed bytes: %d", c.Bytes())
	}
	if c.PeakBytes() != 350 {
		t.Fatalf("peak=%d", c.PeakBytes())
	}
	c.Clear()
	if c.Bytes() != 0 || c.Len() != 0 || c.Has(k1) {
		t.Fatal("clear failed")
	}
	if c.PeakBytes() != 350 {
		t.Fatal("peak lost on clear")
	}
}

func TestCacheCovers(t *testing.T) {
	c := walkthrough.NewCache(0)
	k := walkthrough.CacheKey{ObjectID: 5, NodeID: core.NilNode}
	c.Add(k, 1, 100, geom.V(0, 0, 0), geom.V(0, 0, 0))
	if c.Covers(k, 0) {
		t.Fatal("coarser resident level covers finer request")
	}
	if !c.Covers(k, 1) || !c.Covers(k, 3) {
		t.Fatal("resident level should cover itself and coarser requests")
	}
	if c.Covers(walkthrough.CacheKey{ObjectID: 6, NodeID: core.NilNode}, 3) {
		t.Fatal("absent key covers")
	}
}

func TestCacheSemanticEviction(t *testing.T) {
	// Distance-based replacement: the farthest entry goes first.
	c := walkthrough.NewCache(250)
	eye := geom.V(0, 0, 0)
	near := walkthrough.CacheKey{ObjectID: 1, NodeID: core.NilNode}
	mid := walkthrough.CacheKey{ObjectID: 2, NodeID: core.NilNode}
	far := walkthrough.CacheKey{ObjectID: 3, NodeID: core.NilNode}
	c.Add(near, 0, 100, geom.V(1, 0, 0), eye)
	c.Add(far, 0, 100, geom.V(100, 0, 0), eye)
	c.Add(mid, 0, 100, geom.V(10, 0, 0), eye) // overflow: 300 > 250
	if c.Has(far) {
		t.Fatal("farthest entry survived eviction")
	}
	if !c.Has(near) || !c.Has(mid) {
		t.Fatal("near entries evicted")
	}
	if c.Bytes() > 250 {
		t.Fatalf("over budget: %d", c.Bytes())
	}
}

func TestVisualPlayback(t *testing.T) {
	env := testenv.Get(testenv.Medium())
	s := walkthrough.RecordNormal(env.Scene, 300, 3)
	p := &walkthrough.VisualPlayer{
		Tree:   env.Tree,
		Eta:    0.001,
		Delta:  true,
		Render: render.DefaultConfig(),
	}
	res, err := p.Play(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 300 {
		t.Fatalf("%d frames", len(res.Frames))
	}
	if res.Queries == 0 {
		t.Fatal("no queries ran — path never crossed a cell?")
	}
	if res.Queries >= len(res.Frames) {
		t.Fatal("query every frame — cell tracking broken")
	}
	if res.AvgFrameTime() <= 0 {
		t.Fatal("zero average frame time")
	}
	if res.PeakBytes == 0 {
		t.Fatal("no memory used")
	}
	// Frames with queries are slower (the spikes of Figure 10).
	var qSum, qN, nSum, nN float64
	for _, f := range res.Frames {
		if f.Queried {
			qSum += float64(f.Total)
			qN++
		} else {
			nSum += float64(f.Total)
			nN++
		}
	}
	if qN == 0 || nN == 0 {
		t.Skip("degenerate session")
	}
	if qSum/qN <= nSum/nN {
		t.Fatal("query frames not slower than idle frames")
	}
}

func TestVisualDeltaSearchSavesIO(t *testing.T) {
	env := testenv.Get(testenv.Medium())
	s := walkthrough.RecordBackForward(env.Scene, 300, 3)
	run := func(delta bool) int64 {
		p := &walkthrough.VisualPlayer{
			Tree:   env.Tree,
			Eta:    0.001,
			Delta:  delta,
			Render: render.DefaultConfig(),
		}
		res, err := p.Play(s)
		if err != nil {
			t.Fatal(err)
		}
		var heavy int64
		for _, f := range res.Frames {
			heavy += f.HeavyIO
		}
		return heavy
	}
	with := run(true)
	without := run(false)
	// Ablation D4: the delta search must cut heavy I/O on a
	// revisit-heavy session.
	if with >= without {
		t.Fatalf("delta search saved nothing: %d vs %d", with, without)
	}
}

func TestVisualEtaTradeoff(t *testing.T) {
	env := testenv.Get(testenv.Medium())
	s := walkthrough.RecordNormal(env.Scene, 300, 3)
	run := func(eta float64) *walkthrough.Result {
		p := &walkthrough.VisualPlayer{
			Tree: env.Tree, Eta: eta, Delta: true, Render: render.DefaultConfig(),
		}
		res, err := p.Play(s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Figure 10(b)'s effect at this scene's DoV scale: frame time is
	// non-increasing in eta across a ladder, with a strict drop somewhere.
	// (The paper's exact 0.0003/0.001 pair assumes its gigabyte city's
	// much smaller per-object DoVs; the medium test city resolves the
	// same trade-off at coarser thresholds.)
	// Like the paper's Table 3, the curve may have small local bumps
	// (theirs rises at eta=0.0001), but the end-to-end trend must hold:
	// the largest threshold is clearly faster and lighter than eta=0.
	etas := []float64{0, 0.001, 0.01, 0.05}
	first := run(etas[0])
	var last *walkthrough.Result
	for _, eta := range etas {
		cur := run(eta)
		if cur.AvgFrameTime() > first.AvgFrameTime()*1.10 {
			t.Fatalf("avg frame time at eta=%v (%v ms) more than 10%% over eta=0 (%v ms)",
				eta, cur.AvgFrameTime(), first.AvgFrameTime())
		}
		last = cur
	}
	if last.AvgFrameTime() >= first.AvgFrameTime() {
		t.Fatalf("eta=%v avg %.3f ms not faster than eta=0 %.3f ms",
			etas[len(etas)-1], last.AvgFrameTime(), first.AvgFrameTime())
	}
	if last.PeakBytes >= first.PeakBytes {
		t.Fatalf("eta=%v memory %d not below eta=0 %d", etas[len(etas)-1], last.PeakBytes, first.PeakBytes)
	}
}

func TestVisualPrefetchFlattensSpikes(t *testing.T) {
	env := testenv.Get(testenv.Medium())
	s := walkthrough.RecordNormal(env.Scene, 400, 3)
	run := func(prefetch bool) (spike float64, totalIO int64) {
		p := &walkthrough.VisualPlayer{
			Tree: env.Tree, Eta: 0.001, Delta: true, Prefetch: prefetch,
			Render: render.DefaultConfig(),
		}
		res, err := p.Play(s)
		if err != nil {
			t.Fatal(err)
		}
		// Average cell-entry cost, skipping the cold first query.
		var sum float64
		var n int
		first := true
		for _, f := range res.Frames {
			totalIO += f.LightIO + f.HeavyIO + f.PrefetchIO
			if f.Queried {
				if first {
					first = false
					continue
				}
				sum += float64(f.QueryTime)
				n++
			}
		}
		if n == 0 {
			t.Skip("too few queries")
		}
		return sum / float64(n), totalIO
	}
	spikeOff, ioOff := run(false)
	spikeOn, ioOn := run(true)
	// Prefetch must flatten the cell-entry spikes...
	if spikeOn >= spikeOff {
		t.Fatalf("prefetch did not reduce spikes: %v vs %v", spikeOn, spikeOff)
	}
	// ...in exchange for some speculative I/O.
	if ioOn <= ioOff {
		t.Fatalf("prefetch should cost extra total I/O: %d vs %d", ioOn, ioOff)
	}
}

func TestReviewPrefetchWarmsCache(t *testing.T) {
	env := testenv.Get(testenv.Medium())
	s := walkthrough.RecordNormal(env.Scene, 400, 3)
	run := func(prefetch bool) (avgStall float64, prefetchIO int64) {
		p := &walkthrough.ReviewPlayer{
			Sys:        review.New(env.Tree, review.DefaultConfig()),
			Complement: true,
			Prefetch:   prefetch,
			Render:     render.DefaultConfig(),
		}
		res, err := p.Play(s)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var n int
		first := true
		for _, f := range res.Frames {
			prefetchIO += f.PrefetchIO
			if f.Queried {
				if first {
					first = false
					continue
				}
				sum += float64(f.QueryTime)
				n++
			}
		}
		if n == 0 {
			t.Skip("too few queries")
		}
		return sum / float64(n), prefetchIO
	}
	stallOff, pioOff := run(false)
	stallOn, pioOn := run(true)
	if pioOff != 0 {
		t.Fatal("prefetch I/O without prefetch enabled")
	}
	if pioOn == 0 {
		t.Fatal("prefetch enabled but no speculative I/O issued")
	}
	if stallOn >= stallOff {
		t.Fatalf("REVIEW prefetch did not reduce query stalls: %v vs %v", stallOn, stallOff)
	}
}

func TestReviewPlayback(t *testing.T) {
	env := testenv.Get(testenv.Medium())
	s := walkthrough.RecordNormal(env.Scene, 300, 3)
	rp := &walkthrough.ReviewPlayer{
		Sys:        review.New(env.Tree, review.DefaultConfig()),
		Complement: true,
		Render:     render.DefaultConfig(),
	}
	rres, err := rp.Play(s)
	if err != nil {
		t.Fatal(err)
	}
	vp := &walkthrough.VisualPlayer{
		Tree: env.Tree, Eta: 0.001, Delta: true, Render: render.DefaultConfig(),
	}
	vres, err := vp.Play(s)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: VISUAL is faster, smoother, and uses less
	// memory than REVIEW with comparable-fidelity boxes (Table 3).
	if vres.AvgFrameTime() >= rres.AvgFrameTime() {
		t.Fatalf("VISUAL avg %.2fms not faster than REVIEW %.2fms",
			vres.AvgFrameTime(), rres.AvgFrameTime())
	}
	if vres.VarFrameTime() >= rres.VarFrameTime() {
		t.Fatalf("VISUAL variance %.2f not smoother than REVIEW %.2f",
			vres.VarFrameTime(), rres.VarFrameTime())
	}
	if vres.PeakBytes >= rres.PeakBytes {
		t.Fatalf("VISUAL memory %d not below REVIEW %d", vres.PeakBytes, rres.PeakBytes)
	}
	if rres.AvgQueryTime() <= 0 || rres.AvgQueryIO() <= 0 {
		t.Fatal("REVIEW query metrics empty")
	}
	if vres.AvgQueryTime() >= rres.AvgQueryTime() {
		t.Fatalf("VISUAL query time %.2f not below REVIEW %.2f (Figure 12a)",
			vres.AvgQueryTime(), rres.AvgQueryTime())
	}
}

func TestResultMetrics(t *testing.T) {
	r := &walkthrough.Result{}
	if r.AvgFrameTime() != 0 || r.VarFrameTime() != 0 || r.AvgQueryTime() != 0 || r.AvgQueryIO() != 0 {
		t.Fatal("empty result nonzero metrics")
	}
	if r.PercentileFrameTime(95) != 0 || r.MaxFrameTime() != 0 {
		t.Fatal("empty result nonzero percentiles")
	}
}

func TestPercentiles(t *testing.T) {
	r := &walkthrough.Result{}
	for i := 1; i <= 100; i++ {
		r.Frames = append(r.Frames, walkthrough.FrameStat{Total: time.Duration(i) * time.Millisecond})
	}
	if got := r.PercentileFrameTime(50); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := r.PercentileFrameTime(95); got != 95 {
		t.Fatalf("p95 = %v", got)
	}
	if got := r.PercentileFrameTime(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := r.MaxFrameTime(); got != 100 {
		t.Fatalf("max = %v", got)
	}
	// Percentiles are monotone in p.
	prev := 0.0
	for p := 0.0; p <= 100; p += 5 {
		v := r.PercentileFrameTime(p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v", p)
		}
		prev = v
	}
}

func TestSessionEncodeDecode(t *testing.T) {
	env := testenv.Get(testenv.Small())
	s := walkthrough.RecordTurning(env.Scene, 50, 7)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := walkthrough.ReadSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || len(got.Frames) != len(s.Frames) {
		t.Fatal("session shape changed")
	}
	for i := range s.Frames {
		if got.Frames[i] != s.Frames[i] {
			t.Fatalf("frame %d changed", i)
		}
	}
	// A decoded session plays back identically. Simulated times depend on
	// the disk head position left behind by whichever test ran before, so
	// zero them and compare the full traces — the I/O counters pin the
	// actual read sequence.
	p := &walkthrough.VisualPlayer{Tree: env.Tree, Eta: 0.001, Delta: true, Render: render.DefaultConfig()}
	a, err := p.Play(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Play(got)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*walkthrough.Result{a, b} {
		for i := range r.Frames {
			r.Frames[i].QueryTime = 0
			r.Frames[i].Total = 0
		}
	}
	if a.Queries != b.Queries || !reflect.DeepEqual(a, b) {
		t.Fatal("replayed session diverged")
	}
}

func TestSessionValidate(t *testing.T) {
	if (walkthrough.Session{}).Validate() == nil {
		t.Fatal("empty session accepted")
	}
	if (walkthrough.Session{Name: "x"}).Validate() == nil {
		t.Fatal("frameless session accepted")
	}
	bad := walkthrough.Session{Name: "x", Frames: []walkthrough.Pose{{}}}
	if bad.Validate() == nil {
		t.Fatal("zero look accepted")
	}
	nan := walkthrough.Session{Name: "x", Frames: []walkthrough.Pose{{
		Eye:  geom.V(math.NaN(), 0, 0),
		Look: geom.V(1, 0, 0),
	}}}
	if nan.Validate() == nil {
		t.Fatal("NaN pose accepted")
	}
	if _, err := walkthrough.ReadSession(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("garbage JSON accepted")
	}
}
