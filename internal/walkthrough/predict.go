package walkthrough

import (
	"repro/internal/cells"
	"repro/internal/geom"
)

// Predictor estimates where the viewer is heading from the observed frame
// poses, smoothing the per-frame motion vector with an exponential moving
// average so a single turned frame doesn't redirect the prefetcher. It is
// deliberately geometry-only: it sees eye positions, never query results,
// so its output can safely feed the background prefetch worker.
type Predictor struct {
	// Alpha is the EMA smoothing factor in (0, 1]; 1 tracks the raw
	// per-frame motion, smaller values smooth harder. Zero selects
	// DefaultPredictAlpha.
	Alpha float64

	vel     geom.Vec3
	prev    geom.Vec3
	haveVel bool
	havePos bool
}

// DefaultPredictAlpha weights recent motion at one half — responsive
// within a few frames of a turn, immune to single-frame jitter.
const DefaultPredictAlpha = 0.5

// Observe feeds one frame's eye position.
func (p *Predictor) Observe(eye geom.Vec3) {
	if !p.havePos {
		p.prev = eye
		p.havePos = true
		return
	}
	step := eye.Sub(p.prev)
	p.prev = eye
	a := p.Alpha
	if a <= 0 || a > 1 {
		a = DefaultPredictAlpha
	}
	if !p.haveVel {
		p.vel = step
		p.haveVel = true
		return
	}
	p.vel = p.vel.Mul(1 - a).Add(step.Mul(a))
}

// Predict returns up to n distinct cells ahead of the current motion,
// nearest first, excluding the cell the eye is in. It marches the
// smoothed motion ray in half-cell steps, so slightly diagonal paths
// yield the cells the viewer will actually cross. A parked viewer (no
// meaningful velocity) predicts nothing.
func (p *Predictor) Predict(grid *cells.Grid, eye geom.Vec3, n int) []cells.CellID {
	if !p.haveVel || n <= 0 || p.vel.Len2() <= 1e-12 {
		return nil
	}
	dir := p.vel.Normalize()
	step := grid.CellSize().Len() / 2
	cur := grid.Locate(eye)
	var out []cells.CellID
	// 2(n+1) half-cell steps reach n whole cells along any axis-aligned
	// or diagonal path; beyond that the prediction is guesswork.
	for i := 1; i <= 2*(n+1) && len(out) < n; i++ {
		c := grid.Locate(eye.Add(dir.Mul(step * float64(i))))
		if c == cells.NoCell || c == cur {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == c {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}
