package walkthrough_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/overload"
	"repro/internal/render"
	"repro/internal/testenv"
	"repro/internal/walkthrough"
)

// TestPlayContextCanceled: a canceled context aborts playback with the
// context's error — no partial trace pretending to be a finished run.
func TestPlayContextCanceled(t *testing.T) {
	env := testenv.Get(testenv.Small())
	s := walkthrough.RecordNormal(env.Scene, 50, 3)
	p := &walkthrough.VisualPlayer{
		Tree:   env.Tree.Session(),
		Eta:    0.001,
		Render: render.DefaultConfig(),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := p.PlayContext(ctx, s)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("aborted playback returned a trace: %+v", res)
	}
}

// TestFrameBudgetMisses: an absurdly tight per-frame budget cannot abort
// the playback — over-budget frames are skipped, counted, and the
// previous geometry stands in.
func TestFrameBudgetMisses(t *testing.T) {
	env := testenv.Get(testenv.Small())
	s := walkthrough.RecordNormal(env.Scene, 100, 3)
	p := &walkthrough.VisualPlayer{
		Tree:        env.Tree.Session(),
		Eta:         0.001,
		Render:      render.DefaultConfig(),
		FrameBudget: time.Nanosecond,
	}
	res, err := p.PlayContext(context.Background(), s)
	if err != nil {
		t.Fatalf("tight budget aborted playback: %v", err)
	}
	if len(res.Frames) != 100 {
		t.Fatalf("%d frames traced, want all 100", len(res.Frames))
	}
	if res.BudgetMisses == 0 {
		t.Fatal("nanosecond budget never missed")
	}
}

// TestGateRejection: an admission gate refusing every query sheds the
// whole session — every cell entry is counted rejected, none becomes an
// error, and zero queries run.
func TestGateRejection(t *testing.T) {
	env := testenv.Get(testenv.Small())
	s := walkthrough.RecordNormal(env.Scene, 100, 3)
	p := &walkthrough.VisualPlayer{
		Tree:   env.Tree.Session(),
		Eta:    0.001,
		Render: render.DefaultConfig(),
		Gate: func(ctx context.Context) (func(), error) {
			return nil, overload.ErrOverloaded
		},
	}
	res, err := p.PlayContext(context.Background(), s)
	if err != nil {
		t.Fatalf("rejection became an error: %v", err)
	}
	if res.Queries != 0 {
		t.Fatalf("%d queries ran through a closed gate", res.Queries)
	}
	if res.Rejected == 0 {
		t.Fatal("no rejections counted")
	}
}

// TestGateHardErrorAborts: a gate error that is neither ErrOverloaded
// nor a budget expiry is a real failure and must abort the playback.
func TestGateHardErrorAborts(t *testing.T) {
	env := testenv.Get(testenv.Small())
	s := walkthrough.RecordNormal(env.Scene, 50, 3)
	boom := errors.New("gate exploded")
	calls := 0
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := &walkthrough.VisualPlayer{
		Tree:   env.Tree.Session(),
		Eta:    0.001,
		Render: render.DefaultConfig(),
		Gate: func(context.Context) (func(), error) {
			calls++
			cancel() // simulate the serve loop tearing down around us
			return nil, boom
		},
	}
	if _, err := p.PlayContext(ctx, s); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the gate's error", err)
	}
	if calls != 1 {
		t.Fatalf("gate called %d times after a hard error", calls)
	}
}

// TestManagerOverloadServe: the full overload-resilient serve path —
// admission gating with per-client keys, pressure observation, and
// policy flips on the shared tree — completes without a single hard
// error, counts its rejections, sheds fidelity, and leaves the base tree
// unshedded for whoever runs next.
func TestManagerOverloadServe(t *testing.T) {
	env := testenv.Get(testenv.Small())
	sessions := walkthrough.Sessions(env.Scene, 120, 3)
	m := &walkthrough.SessionManager{
		Base:      env.Tree,
		Eta:       0.001,
		Delta:     true,
		Render:    render.DefaultConfig(),
		Admission: overload.New(overload.Config{MaxConcurrent: 1, MaxQueue: 1}),
		// A nanosecond target: every observation is over budget, so the
		// shedder must escalate as soon as it has seen enough samples.
		Shedder: overload.NewShedder(overload.ShedConfig{Target: time.Nanosecond}),
	}
	run := m.PlayContext(context.Background(), sessions)
	if err := run.FirstErr(); err != nil {
		t.Fatalf("overloaded serve produced a hard error: %v", err)
	}
	if run.Queries == 0 {
		t.Fatal("no queries served")
	}
	if run.Shed == 0 {
		t.Fatal("shedder never engaged despite an impossible target")
	}
	if env.Tree.Shed() != nil {
		t.Fatal("run left a shed policy installed on the base tree")
	}
	// Shed fidelity is never silent: the policy flips must show up as
	// degradation records on the players that ran under them.
	degraded := 0
	for _, p := range run.Players {
		degraded += p.Degraded()
	}
	if degraded == 0 {
		t.Fatal("shedding left no degradation records")
	}
}

// TestManagerContextCancelsAllPlayers: canceling the serve context stops
// every player, and each aborted playback is counted as an error rather
// than silently dropped.
func TestManagerContextCancelsAllPlayers(t *testing.T) {
	env := testenv.Get(testenv.Small())
	sessions := walkthrough.Sessions(env.Scene, 60, 3)
	m := &walkthrough.SessionManager{
		Base:   env.Tree,
		Eta:    0.001,
		Render: render.DefaultConfig(),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run := m.PlayContext(ctx, sessions)
	if run.Errs != len(sessions) {
		t.Fatalf("%d of %d players errored, want all", run.Errs, len(sessions))
	}
	for i, p := range run.Players {
		if !errors.Is(p.Err, context.Canceled) {
			t.Fatalf("player %d err = %v, want context.Canceled", i, p.Err)
		}
	}
}
