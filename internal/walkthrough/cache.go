package walkthrough

import (
	"repro/internal/core"
	"repro/internal/geom"
)

// CacheKey identifies a cached payload chain: one object or one node's
// internal LoDs. Levels are tracked inside the entry — a resident finer
// level satisfies any coarser request (the renderer can always draw finer
// geometry than asked), which is how the paper's delta search avoids
// re-fetching an object whose selected LoD wobbles between cells.
type CacheKey struct {
	ObjectID int64
	NodeID   core.NodeID
}

// KeyOf returns the cache key of a result item.
func KeyOf(it core.ResultItem) CacheKey {
	return CacheKey{ObjectID: it.ObjectID, NodeID: it.NodeID}
}

type cacheEntry struct {
	level  int // finest (lowest-index) resident level
	bytes  int64
	center geom.Vec3
}

// Cache is the in-memory payload cache behind the delta/complement search
// optimizations of §5.4. Replacement is semantic, as in REVIEW: when the
// budget is exceeded, the entries farthest from the current viewpoint are
// evicted first ("a semantic-based cache replacement strategy based on
// spatial distance between the viewer and the nodes").
type Cache struct {
	// Budget is the byte capacity; 0 means unlimited (the paper's
	// walkthroughs fit in memory — Table 3 reports the resulting peak
	// usage rather than thrash behavior).
	Budget  int64
	entries map[CacheKey]cacheEntry
	bytes   int64
	peak    int64
}

// NewCache creates a cache with the given byte budget (0 = unlimited).
func NewCache(budget int64) *Cache {
	return &Cache{Budget: budget, entries: make(map[CacheKey]cacheEntry)}
}

// Covers reports whether a resident payload satisfies a request for the
// given level: the key is cached at that level or finer.
func (c *Cache) Covers(k CacheKey, level int) bool {
	e, ok := c.entries[k]
	return ok && e.level <= level
}

// Has reports whether the key is resident at any level.
func (c *Cache) Has(k CacheKey) bool {
	_, ok := c.entries[k]
	return ok
}

// Add inserts a payload of the given level and size whose geometry is
// centered at center. A coarser insert than what is resident is ignored;
// a finer one replaces the resident entry (its bytes supersede). If the
// budget is exceeded, the farthest entries from eye are evicted until it
// fits.
func (c *Cache) Add(k CacheKey, level int, bytes int64, center, eye geom.Vec3) {
	if old, ok := c.entries[k]; ok {
		if old.level <= level {
			return // already as fine or finer
		}
		c.bytes -= old.bytes
	}
	c.entries[k] = cacheEntry{level: level, bytes: bytes, center: center}
	c.bytes += bytes
	if c.bytes > c.peak {
		c.peak = c.bytes
	}
	if c.Budget > 0 {
		c.evict(eye)
	}
}

// evict removes farthest entries until residency fits the byte budget.
// The loop is bounded by bytes, not entry count: a single internal-LoD
// mesh larger than the whole budget is itself evicted (the frame renders
// it from the fetch buffer; it just doesn't stay resident), so residency
// can never exceed the budget by more than zero entries, no matter how
// large any one payload is. Equidistant victims tie-break on key order so
// eviction is deterministic.
func (c *Cache) evict(eye geom.Vec3) {
	for c.bytes > c.Budget && len(c.entries) > 0 {
		var victim CacheKey
		worst := -1.0
		for k, e := range c.entries {
			d := e.center.Dist2(eye)
			if d > worst || (d == worst && keyLess(victim, k)) {
				worst = d
				victim = k
			}
		}
		c.bytes -= c.entries[victim].bytes
		delete(c.entries, victim)
	}
}

// keyLess orders cache keys (ObjectID, then NodeID) for eviction
// tie-breaking.
func keyLess(a, b CacheKey) bool {
	if a.ObjectID != b.ObjectID {
		return a.ObjectID < b.ObjectID
	}
	return a.NodeID < b.NodeID
}

// Bytes returns current residency.
func (c *Cache) Bytes() int64 { return c.bytes }

// PeakBytes returns the maximum residency observed — the Table 3 memory
// comparison (VISUAL 28 MB vs REVIEW 62 MB).
func (c *Cache) PeakBytes() int64 { return c.peak }

// Len returns the number of resident payloads.
func (c *Cache) Len() int { return len(c.entries) }

// Clear drops everything (peak is kept).
func (c *Cache) Clear() {
	c.entries = make(map[CacheKey]cacheEntry)
	c.bytes = 0
}
