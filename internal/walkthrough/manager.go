package walkthrough

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/overload"
	"repro/internal/render"
	"repro/internal/storage"
)

// SessionManager plays many walkthrough sessions concurrently against one
// open tree. Each player gets its own core.Tree session (shared structure
// and disk, private I/O accounting and storage-scheme cursor), so N
// walkers contend for the one simulated disk and share its buffer pool —
// the serving regime the paper's single-walker prototype never faces.
type SessionManager struct {
	Base *core.Tree
	Eta  float64
	// Delta enables the per-player delta search (each player has its own
	// payload cache, like each client has its own renderer memory).
	Delta bool
	// Prefetch enables speculative next-cell queries per player.
	Prefetch bool
	// CacheBudget bounds each player's payload cache (0 = unlimited).
	CacheBudget int64
	Render      render.Config

	// Admission, when set, gates every cell-entry query through the
	// controller with a per-client fairness key; rejected queries are
	// shed (counted in Result.Rejected), never errors.
	Admission *overload.Controller
	// Shedder, when set, observes every query's simulated time and
	// installs/removes the base tree's ShedPolicy as pressure crosses its
	// hysteresis band — all live sessions see the flip on their next
	// query.
	Shedder *overload.Shedder
	// FrameBudget bounds each player frame's query + fetch (0 = none).
	FrameBudget time.Duration
	// Routes, when set, supplies per-player shard routing: called once
	// per player, it returns the player's cell→tree route function and
	// an accounting snapshot summing that player's I/O across every
	// shard store it touched (replacing the base session's counters in
	// PlayerTrace.IO). The sharded serve path wires the shard router
	// here; nil keeps every player on Base.
	Routes func() (func(cells.CellID) *core.Tree, func() storage.Stats)
	// ShedBases lists additional trees whose ShedPolicy flips alongside
	// Base when the Shedder trips — the sharded serve path lists every
	// shard store's base tree so all routed sessions shed the same
	// fidelity level at the same time.
	ShedBases []*core.Tree
}

// setShed installs the policy on Base and every ShedBases tree.
func (m *SessionManager) setShed(p *core.ShedPolicy) {
	m.Base.SetShed(p)
	for _, t := range m.ShedBases {
		t.SetShed(p)
	}
}

// PlayerTrace is one client's playback outcome: the trace, the session's
// own I/O accounting (reads, retries, simulated time — this client's
// traffic only, however many others ran beside it), and the error if the
// playback aborted.
type PlayerTrace struct {
	Result *Result
	IO     storage.Stats
	Err    error
}

// Degraded reports how many media-fault degradations this client
// absorbed (zero unless fault tolerance is on and faults fired).
func (p PlayerTrace) Degraded() int {
	if p.Result == nil {
		return 0
	}
	return p.Result.Degradations
}

// ServeStats aggregates a concurrent playback run.
type ServeStats struct {
	Players []PlayerTrace
	// Queries is the summed query count across players; Elapsed is the
	// wall-clock span of the whole run, so Queries/Elapsed.Seconds() is
	// the aggregate served throughput.
	Queries int
	Elapsed time.Duration
	// Errs counts players whose playback aborted.
	Errs int
	// Rejected sums admission rejections across players; BudgetMisses
	// sums frames that blew their budget; Shed is the shedder's final
	// level-transition count (0 when no shedder ran).
	Rejected     int
	BudgetMisses int
	Shed         int64
}

// Throughput returns aggregate queries per wall-clock second.
func (s ServeStats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Queries) / s.Elapsed.Seconds()
}

// FirstErr returns the first player error, or nil.
func (s ServeStats) FirstErr() error {
	for i, p := range s.Players {
		if p.Err != nil {
			return fmt.Errorf("walkthrough: player %d: %w", i, p.Err)
		}
	}
	return nil
}

// Play runs all sessions unbounded; see PlayContext.
func (m *SessionManager) Play(sessions []Session) ServeStats {
	return m.PlayContext(bgContext, sessions)
}

// PlayContext runs all sessions concurrently, one goroutine per client,
// and returns when every playback has finished or the context is
// canceled (canceled playbacks count as errors on their traces). With
// Admission/Shedder set this is the overload-resilient serve path:
// queries are gated, pressure is observed, and fidelity is shed before
// latency is.
func (m *SessionManager) PlayContext(ctx context.Context, sessions []Session) ServeStats {
	if m.Shedder != nil {
		// Allocate the shared policy slots before any session is derived,
		// so every player sees subsequent policy flips; and clear any
		// policy a previous run left installed.
		m.setShed(nil)
	}
	out := ServeStats{Players: make([]PlayerTrace, len(sessions))}
	start := time.Now()
	var wg sync.WaitGroup
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tree := m.Base.Session()
			p := &VisualPlayer{
				Tree:        tree,
				Eta:         m.Eta,
				Delta:       m.Delta,
				Prefetch:    m.Prefetch,
				CacheBudget: m.CacheBudget,
				Render:      m.Render,
				FrameBudget: m.FrameBudget,
			}
			ioStats := func() storage.Stats { return tree.IO.Stats() }
			if m.Routes != nil {
				route, stats := m.Routes()
				p.Route = route
				if stats != nil {
					ioStats = stats
				}
			}
			if m.Admission != nil {
				client := fmt.Sprintf("client-%d", i)
				p.Gate = func(qctx context.Context) (func(), error) {
					return m.Admission.Acquire(qctx, client)
				}
			}
			if m.Shedder != nil {
				p.Observe = func(simTime time.Duration) {
					if policy, changed := m.Shedder.Observe(simTime); changed {
						m.setShed(policy)
					}
				}
			}
			res, err := p.PlayContext(ctx, sessions[i])
			out.Players[i] = PlayerTrace{Result: res, IO: ioStats(), Err: err}
		}(i)
	}
	wg.Wait()
	out.Elapsed = time.Since(start)
	for _, p := range out.Players {
		if p.Err != nil {
			out.Errs++
			continue
		}
		out.Queries += p.Result.Queries
		out.Rejected += p.Result.Rejected
		out.BudgetMisses += p.Result.BudgetMisses
	}
	if m.Shedder != nil {
		out.Shed = m.Shedder.Transitions()
		// Leave the trees unshedded for whatever runs next.
		m.setShed(nil)
	}
	return out
}
