// Package walkthrough drives the interactive-walkthrough experiments of
// §5.4: recorded motion sessions are played back against the VISUAL system
// (HDoV-tree queries with delta search) and the REVIEW system (R-tree
// window queries with complement search), producing per-frame timing,
// I/O and memory traces — the raw material of Figures 10 and 12 and
// Table 3.
package walkthrough

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/scene"
)

// Pose is one frame's viewpoint.
type Pose struct {
	Eye  geom.Vec3
	Look geom.Vec3
}

// Session is a recorded walkthrough: a named sequence of poses sampled at
// a fixed frame rate.
type Session struct {
	Name   string
	Frames []Pose
}

// eyeHeight keeps recorded paths inside the scene's viewpoint slab.
func eyeHeight(sc *scene.Scene) float64 {
	return sc.ViewRegion.Center().Z
}

// streetPitch estimates the walkable-corridor pitch from the generation
// parameters: street centerlines in the city, doorway-aligned room rows
// in the museum.
func streetPitch(sc *scene.Scene) (pitch, offset float64) {
	p := sc.Params
	if m := p.Museum; m != nil {
		// Doorways are centered per room wall, so the line
		// y = (pitch + t)/2 + k*pitch threads every door of row k.
		mp := m.RoomSize + m.WallThickness
		return mp, (mp+m.WallThickness)/2 - mp
	}
	if p.BlockSize > 0 {
		return p.BlockSize + p.StreetWidth, p.StreetWidth / 2
	}
	return 100, 10
}

// clampY keeps a recorded path inside the walkable slab.
func clampY(sc *scene.Scene, y float64) float64 {
	return geom.Clamp(y, sc.ViewRegion.Min.Y+0.5, sc.ViewRegion.Max.Y-0.5)
}

// RecordNormal records session 1 of §5.4: "a normal walkthrough" — a
// steady forward walk along a street with gentle gaze drift.
func RecordNormal(sc *scene.Scene, frames int, seed int64) Session {
	rng := rand.New(rand.NewSource(seed))
	pitch, off := streetPitch(sc)
	z := eyeHeight(sc)
	// Walk along a horizontal street: y fixed at a street centerline.
	y := clampY(sc, off+pitch*float64(1+rng.Intn(2)))
	x0 := sc.ViewRegion.Min.X + 1
	x1 := sc.ViewRegion.Max.X - 1
	s := Session{Name: "session1-normal", Frames: make([]Pose, frames)}
	speedPerFrame := (x1 - x0) / float64(frames)
	for i := 0; i < frames; i++ {
		x := x0 + speedPerFrame*float64(i)
		drift := 0.15 * math.Sin(float64(i)/40)
		s.Frames[i] = Pose{
			Eye:  geom.V(x, y, z),
			Look: geom.V(1, drift, 0).Normalize(),
		}
	}
	return s
}

// RecordTurning records session 2: the viewer walks slowly while swinging
// the gaze left and right, the view-direction-change workload that
// degrades frustum-box methods.
func RecordTurning(sc *scene.Scene, frames int, seed int64) Session {
	rng := rand.New(rand.NewSource(seed))
	pitch, off := streetPitch(sc)
	z := eyeHeight(sc)
	y := clampY(sc, off+pitch*float64(1+rng.Intn(2)))
	x0 := sc.ViewRegion.Min.X + 1
	x1 := sc.ViewRegion.Max.X - 1
	s := Session{Name: "session2-turning", Frames: make([]Pose, frames)}
	speedPerFrame := (x1 - x0) / float64(frames) / 2 // slower walk
	for i := 0; i < frames; i++ {
		x := x0 + speedPerFrame*float64(i)
		// Sweep the gaze ±100 degrees around forward.
		angle := 1.75 * math.Sin(float64(i)/15)
		s.Frames[i] = Pose{
			Eye:  geom.V(x, y, z),
			Look: geom.V(math.Cos(angle), math.Sin(angle), 0),
		}
	}
	return s
}

// RecordBackForward records session 3: the viewer oscillates back and
// forth along a street, repeatedly re-entering recently left cells — the
// workload that stresses cell flipping and caching.
func RecordBackForward(sc *scene.Scene, frames int, seed int64) Session {
	rng := rand.New(rand.NewSource(seed))
	pitch, off := streetPitch(sc)
	z := eyeHeight(sc)
	y := clampY(sc, off+pitch*float64(1+rng.Intn(2)))
	mid := (sc.ViewRegion.Min.X + sc.ViewRegion.Max.X) / 2
	span := (sc.ViewRegion.Max.X - sc.ViewRegion.Min.X) / 3
	s := Session{Name: "session3-backforward", Frames: make([]Pose, frames)}
	for i := 0; i < frames; i++ {
		phase := float64(i) / 30
		x := mid + span*math.Sin(phase)
		dir := math.Cos(phase) // sign of motion
		lx := 1.0
		if dir < 0 {
			lx = -1
		}
		s.Frames[i] = Pose{
			Eye:  geom.V(x, y, z),
			Look: geom.V(lx, 0, 0),
		}
	}
	return s
}

// Sessions returns the three standard sessions of §5.4.
func Sessions(sc *scene.Scene, frames int, seed int64) []Session {
	return []Session{
		RecordNormal(sc, frames, seed),
		RecordTurning(sc, frames, seed+1),
		RecordBackForward(sc, frames, seed+2),
	}
}

// Encode serializes the session as JSON — "we recorded a few walkthrough
// sessions and played them back" (§5.4) needs sessions to be artifacts,
// not code.
func (s Session) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// ReadSession deserializes a session saved by Encode and validates it.
func ReadSession(r io.Reader) (Session, error) {
	var s Session
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Session{}, fmt.Errorf("walkthrough: session: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Session{}, err
	}
	return s, nil
}

// Validate checks that the session is playable: non-empty, finite poses,
// non-degenerate look directions.
func (s Session) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("walkthrough: session has no name")
	}
	if len(s.Frames) == 0 {
		return fmt.Errorf("walkthrough: session %q has no frames", s.Name)
	}
	for i, p := range s.Frames {
		if !p.Eye.IsFinite() || !p.Look.IsFinite() {
			return fmt.Errorf("walkthrough: session %q frame %d not finite", s.Name, i)
		}
		if p.Look.Len2() < 1e-12 {
			return fmt.Errorf("walkthrough: session %q frame %d has zero look direction", s.Name, i)
		}
	}
	return nil
}
