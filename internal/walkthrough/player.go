package walkthrough

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/overload"
	"repro/internal/render"
	"repro/internal/review"
	"repro/internal/storage"
)

// bgContext is the unbounded context behind the non-Context Play forms.
//
//lint:ignore ctxflow compat wrappers deliberately run unbounded
var bgContext = context.Background()

// FrameStat records one frame of a playback.
type FrameStat struct {
	QueryTime  time.Duration // simulated I/O time of this frame's queries
	RenderTime time.Duration
	Total      time.Duration
	LightIO    int64
	HeavyIO    int64
	Polygons   float64
	Fetched    int   // payloads actually retrieved (after delta search)
	CacheBytes int64 // residency after the frame
	Queried    bool  // whether a database query ran this frame
	// PrefetchIO is speculative I/O issued for a predicted next cell. It
	// overlaps rendering in a real system, so it is excluded from the
	// frame time but counted here so total-I/O accounting stays honest.
	PrefetchIO int64
	// Degradations counts media faults absorbed this frame (including
	// during prefetch) under fault-tolerant traversal; see core.Degradation.
	Degradations int
	// Retries counts transient read faults the disk retried away this
	// frame.
	Retries int64
}

// Result is a full playback trace.
type Result struct {
	System    string
	Session   string
	Frames    []FrameStat
	PeakBytes int64
	// Queries is how many database queries ran (cell changes for VISUAL,
	// movement-triggered window queries for REVIEW).
	Queries int
	// Degradations totals the per-frame degradation counts; DegradedFrames
	// is the number of frames with at least one.
	Degradations   int
	DegradedFrames int
	// Rejected counts cell-entry queries the admission gate refused
	// (ErrOverloaded): the frame kept its previous geometry and the query
	// retried on a later frame. BudgetMisses counts frames whose query
	// blew the per-frame budget (FrameBudget) and were skipped the same
	// way. Both are explicit, countable overload outcomes — never errors.
	Rejected     int
	BudgetMisses int
}

// AvgFrameTime returns the mean frame time in milliseconds.
func (r *Result) AvgFrameTime() float64 {
	if len(r.Frames) == 0 {
		return 0
	}
	var sum float64
	for _, f := range r.Frames {
		sum += float64(f.Total) / float64(time.Millisecond)
	}
	return sum / float64(len(r.Frames))
}

// VarFrameTime returns the population variance of frame times in ms² —
// the smoothness metric of Table 3.
func (r *Result) VarFrameTime() float64 {
	if len(r.Frames) == 0 {
		return 0
	}
	mean := r.AvgFrameTime()
	var sum float64
	for _, f := range r.Frames {
		d := float64(f.Total)/float64(time.Millisecond) - mean
		sum += d * d
	}
	return sum / float64(len(r.Frames))
}

// PercentileFrameTime returns the p-th percentile frame time in
// milliseconds (p in [0, 100]; nearest-rank). The paper discusses
// "choppiness" via spikes; p95/p99 make it a number.
func (r *Result) PercentileFrameTime(p float64) float64 {
	if len(r.Frames) == 0 {
		return 0
	}
	times := make([]float64, len(r.Frames))
	for i, f := range r.Frames {
		times[i] = float64(f.Total) / float64(time.Millisecond)
	}
	sort.Float64s(times)
	if p <= 0 {
		return times[0]
	}
	if p >= 100 {
		return times[len(times)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(times)))) - 1
	if rank < 0 {
		rank = 0
	}
	return times[rank]
}

// MaxFrameTime returns the worst frame in milliseconds (the spike height
// of Figure 10).
func (r *Result) MaxFrameTime() float64 {
	return r.PercentileFrameTime(100)
}

// AvgQueryTime returns the mean simulated search time per query in ms
// (Figure 12a).
func (r *Result) AvgQueryTime() float64 {
	if r.Queries == 0 {
		return 0
	}
	var sum float64
	for _, f := range r.Frames {
		if f.Queried {
			sum += float64(f.QueryTime) / float64(time.Millisecond)
		}
	}
	return sum / float64(r.Queries)
}

// AvgQueryIO returns the mean I/O operations per query (Figure 12b).
func (r *Result) AvgQueryIO() float64 {
	if r.Queries == 0 {
		return 0
	}
	var sum float64
	for _, f := range r.Frames {
		if f.Queried {
			sum += float64(f.LightIO + f.HeavyIO)
		}
	}
	return sum / float64(r.Queries)
}

// VisualPlayer plays sessions on the VISUAL system: HDoV-tree visibility
// queries, issued when the viewpoint enters a new cell, with delta search
// against the payload cache.
type VisualPlayer struct {
	Tree *core.Tree
	Eta  float64
	// Delta enables the delta search (§5.4); disabling it is ablation D4.
	Delta bool
	// Prefetch speculatively queries the cell the viewer is moving toward
	// and warms the payload cache with its answer set, flattening the
	// cell-entry spikes of Figure 10 at the cost of extra (overlapped)
	// I/O — the optimization family the paper credits to REVIEW
	// ("prefetching and in-memory optimization", §2).
	Prefetch bool
	// Coherent routes cell-entry queries through the session's retained
	// traversal cut (core.Tree.QueryCoherent): adjacent-cell queries
	// re-evaluate the previous frontier instead of descending from the
	// root. Answer sets are byte-identical to full traversal; superseded
	// results are recycled into the session's free list.
	Coherent bool
	// AsyncPrefetch starts a background storage.Prefetcher that warms the
	// disk's shared buffer pool with the V-data pages of predicted next
	// cells (motion-vector prediction, see Predictor). Unlike Prefetch it
	// moves no query state off the frame loop — the worker sees only page
	// IDs — and it only helps when a buffer pool is installed
	// (storage.Disk.SetCacheSize). Works with any scheme implementing
	// core.CellPager; silently inert otherwise.
	AsyncPrefetch bool
	// CacheBudget bounds the payload cache (0 = unlimited).
	CacheBudget int64
	Render      render.Config

	// FrameBudget bounds each frame's query + fetch with a per-frame
	// context deadline (0 = unbounded). A frame that blows the budget is
	// skipped — previous geometry is kept, BudgetMisses counts it, and
	// the query retries next frame — while cancellation of the parent
	// context still aborts the playback.
	FrameBudget time.Duration
	// Gate, when set, is the admission gate called before every
	// cell-entry query (the serve path wires overload.Controller.Acquire
	// here). A nil release with a nil error is treated as admitted. An
	// overload.ErrOverloaded return sheds the query — counted in
	// Result.Rejected, never an error; any other error aborts.
	Gate func(ctx context.Context) (release func(), err error)
	// Observe, when set, receives each demand query's simulated time —
	// the shedder's pressure signal.
	Observe func(simTime time.Duration)
	// Route, when set, resolves the tree session serving each cell (the
	// sharded serve path wires the shard router's per-cell routing here;
	// nil, or a nil return, serves the cell from Tree). The demand query,
	// payload fetch, scheme-cursor restore and async page warms all
	// follow the routed tree, so a walk crossing a shard boundary hands
	// off between stores mid-session; answers are byte-identical either
	// way.
	Route func(cells.CellID) *core.Tree
}

// treeFor resolves the tree session serving cell c.
func (p *VisualPlayer) treeFor(c cells.CellID) *core.Tree {
	if p.Route != nil {
		if t := p.Route(c); t != nil {
			return t
		}
	}
	return p.Tree
}

// Play runs the session unbounded; see PlayContext.
func (p *VisualPlayer) Play(s Session) (*Result, error) {
	return p.PlayContext(bgContext, s)
}

// PlayContext runs the session and returns the trace. The context bounds
// the whole playback: cancellation aborts between frames (and inside any
// in-flight query at its next traversal checkpoint), with pending
// prefetch work canceled rather than drained.
func (p *VisualPlayer) PlayContext(ctx context.Context, s Session) (*Result, error) {
	cache := NewCache(p.CacheBudget)
	out := &Result{System: fmt.Sprintf("VISUAL(eta=%g)", p.Eta), Session: s.Name}
	cur := cells.NoCell
	prefetched := cells.NoCell
	var resident *core.QueryResult
	residentTree := p.Tree // the tree that produced resident, for Recycle
	var prevEye geom.Vec3
	haveVel := false
	// Async prefetch state: the motion predictor, the background workers
	// (one per distinct disk the routing touches — a single one when
	// unrouted), and the set of cells already handed to them (cleared per
	// cell entry so a revisited cell can be warmed again later).
	var pred Predictor
	var pfs *prefetchSet
	var lastPF storage.Stats
	var enqueued map[cells.CellID]bool
	if p.AsyncPrefetch {
		if _, ok := p.Tree.VStoreScheme().(core.CellPager); ok {
			pfs = newPrefetchSet()
			defer pfs.close()
			// On an aborted playback the queued warms are for cells nobody
			// will visit: cancel them so close does not pay for them. (Runs
			// before the deferred close — defers are LIFO.)
			defer func() {
				if ctx.Err() != nil {
					pfs.cancelPending()
				}
			}()
			enqueued = make(map[cells.CellID]bool)
		}
	}
	for _, pose := range s.Frames {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("walkthrough: playback aborted: %w", err)
		}
		var fs FrameStat
		pred.Observe(pose.Eye)
		cell := p.Tree.Grid.Locate(pose.Eye)
		if cell != cells.NoCell && cell != cur {
			if pfs != nil {
				// Let queued warms land before the demand query: the frames
				// since they were enqueued represent far more simulated time
				// than the warms cost, so the worker would have finished long
				// ago on a real clock.
				pfs.quiesce()
			}
			fctx, fcancel := ctx, context.CancelFunc(func() {})
			if p.FrameBudget > 0 {
				fctx, fcancel = context.WithTimeout(ctx, p.FrameBudget)
			}
			admit := true
			release := func() {}
			if p.Gate != nil {
				rel, gerr := p.Gate(fctx)
				switch {
				case gerr == nil:
					if rel != nil {
						release = rel
					}
				case isOverloaded(gerr):
					// Shed: keep the previous frame's geometry, retry the
					// cell on a later frame. Counted, never an error.
					admit = false
					out.Rejected++
				case ctx.Err() != nil:
					fcancel()
					return nil, fmt.Errorf("walkthrough: admission: %w", gerr)
				default:
					// The frame budget expired while queued for admission.
					admit = false
					out.BudgetMisses++
				}
			}
			if admit {
				qt := p.treeFor(cell)
				before := treeStats(qt)
				res, err := p.queryCell(fctx, qt, cell)
				var fetched int
				if err == nil {
					var skip func(core.ResultItem) bool
					if p.Delta {
						skip = func(it core.ResultItem) bool { return cache.Covers(KeyOf(it), it.Level) }
					}
					fetched, err = qt.FetchPayloadsContext(fctx, res, skip)
					if err != nil {
						qt.Recycle(res)
					}
				}
				release()
				if err == nil {
					for _, it := range res.Items {
						cache.Add(KeyOf(it), it.Level, it.Extent.NominalBytes, itemCenter(qt, it), pose.Eye)
					}
					d := treeStats(qt).Sub(before)
					fs.QueryTime = d.SimTime
					fs.LightIO = d.LightReads
					fs.HeavyIO = d.HeavyReads
					fs.Retries = d.Retries
					fs.Fetched = fetched
					fs.Queried = true
					fs.Degradations += len(res.Degradations)
					out.Queries++
					if p.Observe != nil {
						p.Observe(d.SimTime)
					}
					residentTree.Recycle(resident)
					resident = res
					residentTree = qt
					cur = cell
					delete(enqueued, cell) // demand-entered: re-warmable later
				} else if fctx.Err() != nil && ctx.Err() == nil {
					// The frame budget expired mid-query: skip the frame,
					// keep the previous geometry, retry next frame. The
					// partial traversal's I/O still happened — charge it.
					out.BudgetMisses++
					d := treeStats(qt).Sub(before)
					fs.QueryTime = d.SimTime
					fs.LightIO = d.LightReads
					fs.HeavyIO = d.HeavyReads
					fs.Retries = d.Retries
				} else {
					fcancel()
					return nil, err
				}
			}
			fcancel()
		}
		// Background warm-up of the cells the motion predictor expects
		// next. The enqueued closure captures only the pager and a cell ID
		// — never query state — and a full queue drops predictions rather
		// than stalling the frame. Warms go to the predicted cell's own
		// store, so a routed walk pre-warms the shard it is about to enter.
		if pfs != nil && cur != cells.NoCell {
			for _, next := range pred.Predict(p.Tree.Grid, pose.Eye, 2) {
				if next == cur || enqueued[next] {
					continue
				}
				nt := p.treeFor(next)
				cp, ok := nt.VStoreScheme().(core.CellPager)
				if !ok {
					continue
				}
				target := next
				if pfs.get(nt.Disk).Enqueue(func(r storage.Reader) ([]storage.PageID, error) {
					return cp.CellPages(r, target)
				}) {
					enqueued[next] = true
				}
			}
		}
		// Speculative prefetch of the cell ahead, overlapped with
		// rendering (not added to frame time).
		if p.Prefetch && haveVel && cur != cells.NoCell {
			vel := pose.Eye.Sub(prevEye)
			if vel.Len2() > 1e-12 {
				lookahead := p.Tree.Grid.CellSize().Len() // roughly one cell
				ahead := pose.Eye.Add(vel.Normalize().Mul(lookahead))
				next := p.Tree.Grid.Locate(ahead)
				if next != cells.NoCell && next != cur && next != prefetched {
					pt := p.treeFor(next)
					before := treeStats(pt)
					res, err := pt.Query(next, p.Eta)
					if err != nil {
						return nil, err
					}
					skip := func(it core.ResultItem) bool { return cache.Covers(KeyOf(it), it.Level) }
					if _, err := pt.FetchPayloads(res, skip); err != nil {
						return nil, err
					}
					for _, it := range res.Items {
						cache.Add(KeyOf(it), it.Level, it.Extent.NominalBytes, itemCenter(pt, it), pose.Eye)
					}
					fs.Degradations += len(res.Degradations)
					// Restore the scheme's current-cell segment; the
					// flip-back page is charged to prefetch too. A media
					// fault here is absorbed in fault-tolerant mode: the
					// scheme keeps its previous cell and the next real
					// query re-flips. A routed prefetch into a foreign
					// shard skips the restore: the current cell's store
					// never moved its cursor.
					if p.treeFor(cur) == pt {
						if err := pt.VStoreScheme().SetCell(cur); err != nil {
							if !pt.FaultTolerant || !errors.Is(err, storage.ErrCorrupt) {
								return nil, err
							}
							fs.Degradations++
						}
					}
					fs.PrefetchIO = treeStats(pt).Sub(before).Reads
					prefetched = next
					pt.Recycle(res)
				}
			}
		}
		prevEye = pose.Eye
		haveVel = true
		if resident != nil {
			fs.Polygons = resident.Stats.TotalPolygons
		}
		if pfs != nil {
			// Attribute the workers' I/O since the last frame to this one.
			// The workers are asynchronous, so the per-frame split is
			// approximate; the playback total matches the prefetchers'
			// clients exactly.
			now := pfs.stats()
			fs.PrefetchIO += now.Sub(lastPF).Reads
			lastPF = now
		}
		fs.RenderTime = p.Render.RenderTime(fs.Polygons)
		fs.Total = p.Render.FrameTime(fs.Polygons, fs.QueryTime)
		fs.CacheBytes = cache.Bytes()
		out.Degradations += fs.Degradations
		if fs.Degradations > 0 {
			out.DegradedFrames++
		}
		out.Frames = append(out.Frames, fs)
	}
	residentTree.Recycle(resident)
	out.PeakBytes = cache.PeakBytes()
	return out, nil
}

// queryCell issues the frame's cell-entry query against the routed tree,
// via the incremental cut when Coherent is set (each routed tree keeps
// its own cut, so boundary crossings stay warm on both sides).
func (p *VisualPlayer) queryCell(ctx context.Context, t *core.Tree, cell cells.CellID) (*core.QueryResult, error) {
	if p.Coherent {
		return t.QueryCoherentContext(ctx, cell, p.Eta)
	}
	return t.QueryContext(ctx, cell, p.Eta)
}

// prefetchSet lazily manages one background Prefetcher per distinct disk
// a routed playback touches (exactly one when unrouted).
type prefetchSet struct {
	list   []*storage.Prefetcher
	byDisk map[*storage.Disk]*storage.Prefetcher
}

func newPrefetchSet() *prefetchSet {
	return &prefetchSet{byDisk: make(map[*storage.Disk]*storage.Prefetcher)}
}

// get returns (starting if needed) the prefetcher warming disk d.
func (ps *prefetchSet) get(d *storage.Disk) *storage.Prefetcher {
	if pf, ok := ps.byDisk[d]; ok {
		return pf
	}
	pf := storage.NewPrefetcher(d, 0)
	ps.byDisk[d] = pf
	ps.list = append(ps.list, pf)
	return pf
}

func (ps *prefetchSet) quiesce() {
	for _, pf := range ps.list {
		pf.Quiesce()
	}
}

func (ps *prefetchSet) cancelPending() {
	for _, pf := range ps.list {
		pf.CancelPending()
	}
}

func (ps *prefetchSet) close() {
	for _, pf := range ps.list {
		pf.Close()
	}
}

// stats sums the workers' accounting (monotonic, so frame deltas via
// Sub stay correct).
func (ps *prefetchSet) stats() storage.Stats {
	var out storage.Stats
	for _, pf := range ps.list {
		out = out.Add(pf.Stats())
	}
	return out
}

// isOverloaded reports whether err is an explicit admission rejection —
// the one gate outcome the player sheds instead of aborting on.
func isOverloaded(err error) bool {
	return errors.Is(err, overload.ErrOverloaded)
}

// treeStats snapshots the accounting a player's frame deltas are measured
// against: the tree session's own client when present (exact under
// concurrent serving), else the global disk counters.
func treeStats(t *core.Tree) storage.Stats {
	if t.IO != nil {
		return t.IO.Stats()
	}
	return t.Disk.Stats()
}

// itemCenter locates an item for the distance-based cache policy.
func itemCenter(t *core.Tree, it core.ResultItem) geom.Vec3 {
	if it.ObjectID >= 0 {
		if obj := t.Scene.Object(it.ObjectID); obj != nil {
			return obj.MBR.Center()
		}
	}
	if it.NodeID >= 0 && int(it.NodeID) < len(t.Nodes) {
		b := geom.EmptyAABB()
		for _, e := range t.Nodes[it.NodeID].Entries {
			b = b.Union(e.MBR)
		}
		return b.Center()
	}
	return geom.Vec3{}
}

// ReviewPlayer plays sessions on the REVIEW baseline: window queries are
// reissued when the viewpoint moves or turns beyond thresholds, with the
// complement search skipping already-retrieved objects.
type ReviewPlayer struct {
	Sys *review.System
	// Complement enables REVIEW's complement ("delta") search.
	Complement bool
	// Prefetch speculatively runs the window query for the pose the
	// viewer is moving toward and warms the cache — one of REVIEW's own
	// optimizations per §2 ("prefetching and in-memory optimization").
	// Like VISUAL's prefetch it overlaps rendering and is excluded from
	// frame time but counted in FrameStat.PrefetchIO.
	Prefetch bool
	// RequeryDist retriggers a window query after this much movement.
	RequeryDist float64
	// RequeryAngle retriggers after this gaze change (radians).
	RequeryAngle float64
	CacheBudget  int64
	Render       render.Config
}

// Play runs the session unbounded; see PlayContext.
func (p *ReviewPlayer) Play(s Session) (*Result, error) {
	return p.PlayContext(bgContext, s)
}

// PlayContext runs the session and returns the trace. The REVIEW
// baseline honors cancellation between frames only — its window queries
// predate the deadline machinery, matching the 2003 system it models.
func (p *ReviewPlayer) PlayContext(ctx context.Context, s Session) (*Result, error) {
	if p.RequeryDist <= 0 {
		p.RequeryDist = 10
	}
	if p.RequeryAngle <= 0 {
		p.RequeryAngle = 20 * math.Pi / 180
	}
	cache := NewCache(p.CacheBudget)
	out := &Result{System: fmt.Sprintf("REVIEW(box=%gm)", p.Sys.Cfg.QueryBoxDepth), Session: s.Name}
	var lastEye geom.Vec3
	var lastLook geom.Vec3
	var prevEye geom.Vec3
	lastPrefetch := geom.V(1e30, 1e30, 1e30) // nowhere yet
	haveVel := false
	var resident *core.QueryResult
	first := true
	for _, pose := range s.Frames {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("walkthrough: playback aborted: %w", err)
		}
		var fs FrameStat
		moved := first ||
			pose.Eye.Dist(lastEye) > p.RequeryDist ||
			angleBetween(pose.Look, lastLook) > p.RequeryAngle
		if moved {
			before := treeStats(p.Sys.T)
			res, err := p.Sys.Query(pose.Eye, pose.Look)
			if err != nil {
				return nil, err
			}
			var skip func(core.ResultItem) bool
			if p.Complement {
				skip = func(it core.ResultItem) bool { return cache.Covers(KeyOf(it), it.Level) }
			}
			fetched, err := p.Sys.FetchPayloads(res, skip)
			if err != nil {
				return nil, err
			}
			for _, it := range res.Items {
				cache.Add(KeyOf(it), it.Level, it.Extent.NominalBytes, itemCenter(p.Sys.T, it), pose.Eye)
			}
			d := treeStats(p.Sys.T).Sub(before)
			fs.QueryTime = d.SimTime
			fs.LightIO = d.LightReads
			fs.HeavyIO = d.HeavyReads
			fs.Retries = d.Retries
			fs.Fetched = fetched
			fs.Queried = true
			fs.Degradations += len(res.Degradations)
			out.Queries++
			resident = res
			lastEye = pose.Eye
			lastLook = pose.Look
			first = false
		} else if p.Prefetch && haveVel {
			// Speculative window query half a re-query distance ahead of
			// the current motion, warming the cache before the next real
			// query fires. Throttled: at most one prefetch per half
			// re-query distance traveled.
			vel := pose.Eye.Sub(prevEye)
			if vel.Len2() > 1e-12 &&
				pose.Eye.Dist(lastEye) > p.RequeryDist/2 &&
				pose.Eye.Dist(lastPrefetch) > p.RequeryDist/2 {
				lastPrefetch = pose.Eye
				ahead := pose.Eye.Add(vel.Normalize().Mul(p.RequeryDist))
				before := treeStats(p.Sys.T)
				res, err := p.Sys.Query(ahead, pose.Look)
				if err != nil {
					return nil, err
				}
				skip := func(it core.ResultItem) bool { return cache.Covers(KeyOf(it), it.Level) }
				if _, err := p.Sys.FetchPayloads(res, skip); err != nil {
					return nil, err
				}
				for _, it := range res.Items {
					cache.Add(KeyOf(it), it.Level, it.Extent.NominalBytes, itemCenter(p.Sys.T, it), pose.Eye)
				}
				fs.Degradations += len(res.Degradations)
				fs.PrefetchIO = treeStats(p.Sys.T).Sub(before).Reads
			}
		}
		prevEye = pose.Eye
		haveVel = true
		if resident != nil {
			fs.Polygons = resident.Stats.TotalPolygons
		}
		fs.RenderTime = p.Render.RenderTime(fs.Polygons)
		fs.Total = p.Render.FrameTime(fs.Polygons, fs.QueryTime)
		fs.CacheBytes = cache.Bytes()
		out.Degradations += fs.Degradations
		if fs.Degradations > 0 {
			out.DegradedFrames++
		}
		out.Frames = append(out.Frames, fs)
	}
	out.PeakBytes = cache.PeakBytes()
	return out, nil
}

// angleBetween returns the angle between two directions in radians.
func angleBetween(a, b geom.Vec3) float64 {
	an, bn := a.Normalize(), b.Normalize()
	d := geom.Clamp(an.Dot(bn), -1, 1)
	return math.Acos(d)
}
