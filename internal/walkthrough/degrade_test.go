package walkthrough_test

import (
	"reflect"
	"testing"

	"repro/internal/render"
	"repro/internal/storage"
	"repro/internal/testenv"
	"repro/internal/walkthrough"
)

// cleanEnvFaults restores the shared test environment after fault
// injection: later tests (and other packages' tests in the same process)
// must see a pristine disk.
func cleanEnvFaults(t *testing.T, env *testenv.Env) {
	t.Helper()
	t.Cleanup(func() {
		env.Tree.FaultTolerant = false
		env.Disk.ClearFaults()
		env.Disk.ClearQuarantine()
	})
}

// TestFaultFreeReplayIdentical: with no faults injected, a fault-tolerant
// replay produces the same trace as a strict one — enabling the mode
// changes nothing until a fault actually fires.
func TestFaultFreeReplayIdentical(t *testing.T) {
	env := testenv.Get(testenv.Small())
	cleanEnvFaults(t, env)
	s := walkthrough.RecordNormal(env.Scene, 150, 3)
	play := func() *walkthrough.Result {
		p := &walkthrough.VisualPlayer{
			Tree:     env.Tree,
			Eta:      0.001,
			Delta:    true,
			Prefetch: true,
			Render:   render.DefaultConfig(),
		}
		res, err := p.Play(s)
		if err != nil {
			t.Fatal(err)
		}
		// Simulated query/frame time depends on the disk head position
		// left behind by whatever ran before this playback; the I/O
		// counters below pin the actual read sequence, so drop the
		// time fields from the comparison.
		for i := range res.Frames {
			res.Frames[i].QueryTime = 0
			res.Frames[i].Total = 0
		}
		return res
	}
	env.Tree.FaultTolerant = false
	strict := play()
	env.Tree.FaultTolerant = true
	tolerant := play()
	if !reflect.DeepEqual(strict, tolerant) {
		t.Fatal("fault-tolerant replay differs from strict replay with no faults injected")
	}
	if tolerant.Degradations != 0 {
		t.Fatalf("phantom degradations: %d", tolerant.Degradations)
	}
}

// TestReplayOverPermanentFaults: a session replayed over a disk with 1%
// injected permanent page faults completes every frame; degraded frames
// report Degradation events instead of errors.
func TestReplayOverPermanentFaults(t *testing.T) {
	env := testenv.Get(testenv.Small())
	cleanEnvFaults(t, env)
	env.Tree.FaultTolerant = true
	env.Disk.InjectFaults(storage.FaultConfig{Seed: 5, PageProb: 0.01, TransientFrac: 0})
	s := walkthrough.RecordNormal(env.Scene, 200, 3)
	p := &walkthrough.VisualPlayer{
		Tree:   env.Tree,
		Eta:    0.001,
		Delta:  true,
		Render: render.DefaultConfig(),
	}
	res, err := p.Play(s)
	if err != nil {
		t.Fatalf("replay aborted despite fault tolerance: %v", err)
	}
	if len(res.Frames) != 200 {
		t.Fatalf("%d frames, want 200", len(res.Frames))
	}
	if res.Degradations == 0 {
		t.Fatal("1%% permanent faults fired no degradations — injection not reaching the traversal")
	}
	if res.DegradedFrames == 0 || res.DegradedFrames > res.Degradations {
		t.Fatalf("DegradedFrames = %d, Degradations = %d", res.DegradedFrames, res.Degradations)
	}
	sum := 0
	for _, f := range res.Frames {
		sum += f.Degradations
	}
	if sum != res.Degradations {
		t.Fatalf("per-frame degradations sum to %d, total says %d", sum, res.Degradations)
	}
	if env.Disk.NumQuarantined() == 0 {
		t.Fatal("no pages quarantined after degraded replay")
	}
}

// TestReplayTransientOnly: with transient-only injection, replay succeeds
// with zero degradations even in strict mode — the retry loop absorbs
// everything — and the retry count is visible in the trace.
func TestReplayTransientOnly(t *testing.T) {
	env := testenv.Get(testenv.Small())
	cleanEnvFaults(t, env)
	env.Disk.InjectFaults(storage.FaultConfig{Seed: 3, PageProb: 0.05, TransientFrac: 1})
	s := walkthrough.RecordNormal(env.Scene, 150, 3)
	p := &walkthrough.VisualPlayer{
		Tree:   env.Tree,
		Eta:    0.001,
		Delta:  true,
		Render: render.DefaultConfig(),
	}
	res, err := p.Play(s)
	if err != nil {
		t.Fatalf("transient fault surfaced: %v", err)
	}
	if res.Degradations != 0 {
		t.Fatalf("transient faults degraded %d frames", res.Degradations)
	}
	var retries int64
	for _, f := range res.Frames {
		retries += f.Retries
	}
	if retries == 0 {
		t.Fatal("no retries recorded in the trace")
	}
	if env.Disk.Stats().Retries == 0 {
		t.Fatal("disk stats show no retries")
	}
}
