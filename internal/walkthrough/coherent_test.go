package walkthrough_test

import (
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/testenv"
	"repro/internal/walkthrough"
)

// The byte-budget regression the eviction fix is for: a single payload
// larger than the whole budget must not take up residence, and residency
// must never exceed the budget regardless of entry sizes.
func TestCacheByteBudgetRegression(t *testing.T) {
	c := walkthrough.NewCache(1000)
	eye := geom.V(0, 0, 0)
	small := walkthrough.CacheKey{ObjectID: 1, NodeID: core.NilNode}
	c.Add(small, 0, 100, geom.V(1, 0, 0), eye)

	// A giant internal-LoD mesh blows the budget on its own. Before the
	// byte-size eviction fix the evict loop stopped at one entry, leaving
	// 5000 bytes resident against a 1000-byte budget forever.
	giant := walkthrough.CacheKey{ObjectID: -1, NodeID: 7}
	c.Add(giant, 0, 5000, geom.V(2, 0, 0), eye)
	if c.Bytes() > 1000 {
		t.Fatalf("residency %d exceeds budget 1000 after oversized insert", c.Bytes())
	}
	if c.Has(giant) {
		t.Fatal("oversized entry stayed resident")
	}

	// Many mid-size entries: residency must track the budget, not the
	// entry count.
	for i := int64(10); i < 30; i++ {
		c.Add(walkthrough.CacheKey{ObjectID: i, NodeID: core.NilNode}, 0, 400,
			geom.V(float64(i), 0, 0), eye)
		if c.Bytes() > 1000 {
			t.Fatalf("residency %d exceeds budget after insert %d", c.Bytes(), i)
		}
	}
	if c.Len() == 0 {
		t.Fatal("eviction emptied the cache entirely; nearest entries should fit")
	}
}

// Straight-line motion must predict the cells ahead; a parked viewer must
// predict nothing.
func TestPredictorMarchesAhead(t *testing.T) {
	env := testenv.Get(testenv.Small())
	grid := env.Tree.Grid
	// walk along +X through the middle of the region
	mid := grid.Bounds.Center()
	step := grid.CellSize().X / 4
	var p walkthrough.Predictor
	eye := geom.V(grid.Bounds.Min.X+2*step, mid.Y, mid.Z)
	for i := 0; i < 6; i++ {
		p.Observe(eye)
		eye = eye.Add(geom.V(step, 0, 0))
	}
	got := p.Predict(grid, eye, 2)
	if len(got) == 0 {
		t.Fatal("steady +X motion predicted no cells")
	}
	cur := grid.Locate(eye)
	for _, c := range got {
		if c == cur {
			t.Fatal("prediction included the current cell")
		}
		if c == cells.NoCell {
			t.Fatal("prediction included NoCell")
		}
	}
	// The nearest prediction is the +X neighbor.
	if want := grid.Locate(eye.Add(geom.V(grid.CellSize().X, 0, 0))); want != cells.NoCell && got[0] != want {
		t.Fatalf("first prediction = %d, want +X neighbor %d", got[0], want)
	}

	var parked walkthrough.Predictor
	for i := 0; i < 4; i++ {
		parked.Observe(eye)
	}
	if got := parked.Predict(grid, eye, 2); len(got) != 0 {
		t.Fatalf("parked viewer predicted %v", got)
	}
}

// Coherent playback must trace identically to full-traversal playback —
// same queries, same polygons, same fetches — while reading less and
// actually running incrementally.
func TestVisualCoherentMatchesFull(t *testing.T) {
	env := testenv.Get(testenv.Medium())
	s := walkthrough.RecordNormal(env.Scene, 300, 3)
	run := func(coherent bool) (*walkthrough.Result, *core.Tree) {
		sess := env.Tree.Session()
		p := &walkthrough.VisualPlayer{
			Tree:     sess,
			Eta:      0.001,
			Delta:    true,
			Coherent: coherent,
			Render:   render.DefaultConfig(),
		}
		res, err := p.Play(s)
		if err != nil {
			t.Fatal(err)
		}
		return res, sess
	}
	full, _ := run(false)
	coh, sess := run(true)

	if full.Queries != coh.Queries {
		t.Fatalf("query counts differ: full %d, coherent %d", full.Queries, coh.Queries)
	}
	var fullLight, cohLight int64
	for i := range full.Frames {
		ff, cf := full.Frames[i], coh.Frames[i]
		if ff.Queried != cf.Queried || ff.Polygons != cf.Polygons || ff.Fetched != cf.Fetched {
			t.Fatalf("frame %d diverged: full {q:%v poly:%g fetch:%d} coherent {q:%v poly:%g fetch:%d}",
				i, ff.Queried, ff.Polygons, ff.Fetched, cf.Queried, cf.Polygons, cf.Fetched)
		}
		fullLight += ff.LightIO
		cohLight += cf.LightIO
	}
	cs := sess.CoherenceStats()
	if cs.Full != 0 || cs.Incremental == 0 {
		t.Fatalf("coherent playback did not run incrementally: %+v", cs)
	}
	if cs.NodesReused == 0 {
		t.Fatal("no node records reused across the walk")
	}
	if cohLight >= fullLight {
		t.Fatalf("coherent walk read no less: %d vs %d light I/Os", cohLight, fullLight)
	}
}

// Async prefetch must warm the shared buffer pool ahead of the walker:
// prefetch hit counters move, and the walk completes with the same trace
// shape. Runs with a pool installed, as in production.
func TestVisualAsyncPrefetchWarmsPool(t *testing.T) {
	env := testenv.Get(testenv.Medium())
	env.Disk.SetCacheSize(4096)
	defer env.Disk.SetCacheSize(0)

	s := walkthrough.RecordNormal(env.Scene, 400, 3)
	sess := env.Tree.Session()
	p := &walkthrough.VisualPlayer{
		Tree:          sess,
		Eta:           0.001,
		Delta:         true,
		Coherent:      true,
		AsyncPrefetch: true,
		Render:        render.DefaultConfig(),
	}
	res, err := p.Play(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("walk crossed no cells")
	}
	var prefetchIO int64
	for _, f := range res.Frames {
		prefetchIO += f.PrefetchIO
	}
	if prefetchIO == 0 {
		t.Fatal("async prefetcher issued no I/O over a moving walk")
	}
	if hits := env.Disk.Stats().PrefetchHits; hits == 0 {
		t.Fatal("no demand read ever hit a prefetched page")
	}
}
