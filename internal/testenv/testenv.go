// Package testenv builds shared, cached HDoV databases for the integration
// tests and benchmarks of the higher-level packages (naive, review, render,
// walkthrough) and for the root-level experiment benches. Construction is
// expensive (DoV precomputation casts millions of rays), so each
// configuration is built once per process.
package testenv

import (
	"sync"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/scene"
	"repro/internal/storage"
	"repro/internal/visibility"
	"repro/internal/vstore"
)

// Env bundles everything the experiments touch: the scene, the simulated
// disk, the built tree, its visibility field, the three storage schemes,
// the naive baseline and a ground-truth visibility engine.
type Env struct {
	Scene  *scene.Scene
	Disk   *storage.Disk
	Tree   *core.Tree
	Vis    *core.VisData
	H      *vstore.Horizontal
	V      *vstore.Vertical
	IV     *vstore.IndexedVertical
	Naive  *naive.Store
	Engine *visibility.Engine
}

// Config selects a database configuration.
type Config struct {
	CityBlocks   int   // blocks per side
	GridCells    int   // viewing cells per side
	Dirs         int   // DoV rays per sample viewpoint
	Samples      int   // region-DoV sample density
	NominalBytes int64 // raw dataset size target (Figure 9 axis)
	Seed         int64
	// Codec builds the three schemes with the compressed V-page layout
	// (DESIGN.md §13). Query results are byte-identical either way.
	Codec bool
}

// Small returns the fast configuration used by unit/integration tests.
func Small() Config {
	return Config{CityBlocks: 2, GridCells: 8, Dirs: 256, Samples: 1, NominalBytes: 16 << 20, Seed: 1}
}

// Medium is the walkthrough-scale configuration: a larger city and grid so
// sessions cross many cells.
func Medium() Config {
	return Config{CityBlocks: 4, GridCells: 12, Dirs: 512, Samples: 1, NominalBytes: 64 << 20, Seed: 1}
}

var (
	mu    sync.Mutex
	cache = map[Config]*Env{}
)

// Get builds (or returns the cached) environment for cfg.
func Get(cfg Config) *Env {
	mu.Lock()
	defer mu.Unlock()
	if e, ok := cache[cfg]; ok {
		return e
	}
	e := build(cfg)
	cache[cfg] = e
	return e
}

func build(cfg Config) *Env {
	p := scene.DefaultCityParams()
	p.Seed = cfg.Seed
	p.BlocksX, p.BlocksY = cfg.CityBlocks, cfg.CityBlocks
	p.BuildingsPerBlock = 6
	p.BlobsPerBlock = 3
	p.BlobDetail = 8
	p.NominalBytes = cfg.NominalBytes
	sc := scene.Generate(p)

	d := storage.NewDisk(0, storage.DefaultCostModel())
	bp := core.DefaultBuildParams()
	bp.Grid = cells.NewGrid(sc.ViewRegion, cfg.GridCells, cfg.GridCells)
	bp.DirsPerViewpoint = cfg.Dirs
	bp.SamplesPerCell = cfg.Samples
	tr, vis, err := core.Build(sc, d, bp)
	if err != nil {
		panic("testenv: " + err.Error())
	}
	opts := vstore.Options{Codec: cfg.Codec}
	h, err := vstore.BuildHorizontalOpts(d, vis, opts)
	if err != nil {
		panic("testenv: " + err.Error())
	}
	v, err := vstore.BuildVerticalOpts(d, vis, opts)
	if err != nil {
		panic("testenv: " + err.Error())
	}
	iv, err := vstore.BuildIndexedVerticalOpts(d, vis, opts)
	if err != nil {
		panic("testenv: " + err.Error())
	}
	nv, err := naive.Build(tr, vis, 0)
	if err != nil {
		panic("testenv: " + err.Error())
	}
	tr.SetVStore(iv)
	return &Env{
		Scene:  sc,
		Disk:   d,
		Tree:   tr,
		Vis:    vis,
		H:      h,
		V:      v,
		IV:     iv,
		Naive:  nv,
		Engine: visibility.NewEngine(sc, cfg.Dirs),
	}
}
