package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/overload"
	"repro/internal/storage"
)

// The overload experiment drives the serving stack past saturation and
// checks that the resilience kit (DESIGN.md §14) keeps its promises:
//
//	unprotected — 4x more clients than the engine's concurrency budget,
//	              seeded media faults, every query admitted and answered
//	              at full fidelity no matter the queue behind it
//	protected   — same clients, same faults, but gated by admission
//	              control, shed by the fidelity shedder, retried with
//	              jitter, and fenced by the per-region circuit breaker
//
// The claims: the protected leg finishes with zero hard errors, its p99
// per-query simulated latency no worse than the unprotected leg's, and
// its protections demonstrably engaged (rejections or shed transitions
// observed). A third leg checks fail-fast cancellation: a query issued
// on an already-canceled context returns the context's error without
// touching the disk. The committed reference lives in BENCH_overload.json.

// overloadFaults is the seeded fault plan both legs run under.
var overloadFaults = storage.FaultConfig{
	Seed:          7,
	PageProb:      0.004,
	TransientFrac: 0.7,
	MaxRetries:    3,
}

// OverloadLeg is one saturation run's outcome.
type OverloadLeg struct {
	Clients int `json:"clients"`
	// Queries counts queries answered (admitted and completed); Rejected
	// admission rejections (protected leg only).
	Queries  int   `json:"queries"`
	Rejected int64 `json:"rejected"`
	// ShedTransitions is the shedder's level-change count; Degradations
	// sums per-query degradation records (media faults absorbed plus
	// shed substitutions).
	ShedTransitions int64 `json:"shed_transitions"`
	Degradations    int64 `json:"degradations"`
	// HardErrors counts queries that returned an error — the quantity
	// the protected leg must hold at zero.
	HardErrors int64 `json:"hard_errors"`
	// MeanMicros and P99Micros summarize per-query simulated latency.
	MeanMicros float64 `json:"mean_micros"`
	P99Micros  float64 `json:"p99_micros"`
	// BreakerTrips counts circuit-breaker region trips (protected only).
	BreakerTrips int64 `json:"breaker_trips"`
}

// Overload is the committed reference format (BENCH_overload.json).
type Overload struct {
	Workload    string      `json:"workload"`
	Unprotected OverloadLeg `json:"unprotected"`
	Protected   OverloadLeg `json:"protected"`
	// CancelFailFast records the cancellation leg: true when a query on
	// an already-canceled context returned the context's error with zero
	// disk reads charged.
	CancelFailFast bool `json:"cancel_fail_fast"`
}

// overloadCfg sizes the saturation runs.
type overloadCfg struct {
	maxConcurrent int
	clients       int
	perClient     int
	cells         int
	eta           float64
}

func defaultOverloadCfg(p Params) overloadCfg {
	per := p.ScalQueries / 8
	if per < 25 {
		per = 25
	}
	if per > 100 {
		per = 100
	}
	return overloadCfg{
		maxConcurrent: 2,
		clients:       8, // 4x the concurrency budget
		perClient:     per,
		cells:         16,
		eta:           0.001,
	}
}

// overloadLeg runs one saturation workload. protected wires in the full
// resilience kit; target is the shedder's latency budget (ignored when
// not protected).
func overloadLeg(e *Env, cfg overloadCfg, protected bool, target time.Duration) (OverloadLeg, error) {
	out := OverloadLeg{Clients: cfg.clients}
	ws := workingSet(e.Tree, cfg.cells)

	faults := overloadFaults
	faults.Jitter = protected
	e.Disk.InjectFaults(faults)
	e.Tree.FaultTolerant = true
	defer func() {
		e.Disk.ClearFaults()
		e.Disk.ClearQuarantine()
		e.Disk.SetBreaker(storage.BreakerConfig{})
		e.Tree.FaultTolerant = false
		e.Tree.SetShed(nil)
	}()

	var ctrl *overload.Controller
	var shed *overload.Shedder
	if protected {
		ctrl = overload.New(overload.Config{
			MaxConcurrent: cfg.maxConcurrent,
			MaxQueue:      cfg.maxConcurrent,
			MaxPerClient:  3,
		})
		shed = overload.NewShedder(overload.ShedConfig{Target: target})
		e.Disk.SetBreaker(storage.BreakerConfig{RegionPages: 64, Threshold: 3, Cooldown: 32})
	}
	// Allocate the shared shed-policy slot before sessions are derived so
	// every client observes mid-run policy flips.
	e.Tree.SetShed(nil)

	type clientOut struct {
		lat          []time.Duration
		degradations int64
		hard         int64
		rejected     int64
		queries      int
	}
	outs := make([]clientOut, cfg.clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := e.Tree.Session()
			client := fmt.Sprintf("client-%d", i)
			for q := 0; q < cfg.perClient; q++ {
				if ctrl != nil {
					release, err := ctrl.Acquire(context.Background(), client)
					if err != nil {
						outs[i].rejected++
						continue
					}
					before := s.IO.Stats()
					res, qerr := s.Query(ws[(i+q)%len(ws)], cfg.eta)
					release()
					d := s.IO.Stats().Sub(before)
					outs[i].lat = append(outs[i].lat, d.SimTime)
					if qerr != nil {
						outs[i].hard++
						continue
					}
					outs[i].queries++
					outs[i].degradations += int64(len(res.Degradations))
					if shed != nil {
						if policy, changed := shed.Observe(d.SimTime); changed {
							e.Tree.SetShed(policy)
						}
					}
					continue
				}
				before := s.IO.Stats()
				res, qerr := s.Query(ws[(i+q)%len(ws)], cfg.eta)
				d := s.IO.Stats().Sub(before)
				outs[i].lat = append(outs[i].lat, d.SimTime)
				if qerr != nil {
					outs[i].hard++
					continue
				}
				outs[i].queries++
				outs[i].degradations += int64(len(res.Degradations))
			}
		}(i)
	}
	wg.Wait()

	var lats []time.Duration
	for _, o := range outs {
		lats = append(lats, o.lat...)
		out.Queries += o.queries
		out.Rejected += o.rejected
		out.Degradations += o.degradations
		out.HardErrors += o.hard
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		out.MeanMicros = float64(sum.Microseconds()) / float64(len(lats))
		out.P99Micros = float64(lats[len(lats)*99/100].Microseconds())
	}
	if shed != nil {
		out.ShedTransitions = shed.Transitions()
	}
	if protected {
		out.BreakerTrips = e.Disk.BreakerStats().Trips
	}
	return out, nil
}

// cancelLeg checks fail-fast cancellation: a query on a pre-canceled
// context must return the context's error having charged zero reads.
func cancelLeg(e *Env, cfg overloadCfg) bool {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := e.Tree.Session()
	ws := workingSet(e.Tree, cfg.cells)
	before := s.IO.Stats()
	_, err := s.QueryContext(ctx, ws[0], cfg.eta)
	d := s.IO.Stats().Sub(before)
	return err != nil && errors.Is(err, context.Canceled) && d.Reads == 0
}

// CollectOverload measures all three legs against the default dataset.
func CollectOverload(p Params) (*Overload, error) {
	e := DefaultEnv(p)
	cfg := defaultOverloadCfg(p)
	out := &Overload{Workload: workloadTag(p)}

	var err error
	if out.Unprotected, err = overloadLeg(e, cfg, false, 0); err != nil {
		return nil, fmt.Errorf("bench: overload unprotected: %w", err)
	}
	// The shedder defends half the unprotected mean: deep saturation for
	// the same workload, so the protected leg must shed to hold it.
	target := time.Duration(out.Unprotected.MeanMicros/2) * time.Microsecond
	if target <= 0 {
		target = time.Microsecond
	}
	if out.Protected, err = overloadLeg(e, cfg, true, target); err != nil {
		return nil, fmt.Errorf("bench: overload protected: %w", err)
	}
	out.CancelFailFast = cancelLeg(e, cfg)
	return out, nil
}

// RunOverload prints the leg table and verdicts the resilience claims:
// zero hard errors under protection, a bounded p99 against the
// unprotected leg, protections that actually engaged, and fail-fast
// cancellation.
func RunOverload(w io.Writer, p Params) error {
	ov, err := CollectOverload(p)
	if err != nil {
		return err
	}
	cfg := defaultOverloadCfg(p)
	fmt.Fprintf(w, "%d clients at %dx saturation, %d queries/client over %d uncached cells, eta=%g, seeded faults (p=%g)\n\n",
		cfg.clients, cfg.clients/cfg.maxConcurrent, cfg.perClient, cfg.cells, cfg.eta, overloadFaults.PageProb)
	fmt.Fprintf(w, "%-12s %-9s %-9s %-7s %-8s %-8s %-12s %-12s %s\n",
		"leg", "queries", "rejected", "shed", "degraded", "hard", "mean µs", "p99 µs", "breaker trips")
	for _, leg := range []struct {
		label string
		l     OverloadLeg
	}{{"unprotected", ov.Unprotected}, {"protected", ov.Protected}} {
		fmt.Fprintf(w, "%-12s %-9d %-9d %-7d %-8d %-8d %-12.0f %-12.0f %d\n",
			leg.label, leg.l.Queries, leg.l.Rejected, leg.l.ShedTransitions,
			leg.l.Degradations, leg.l.HardErrors, leg.l.MeanMicros, leg.l.P99Micros,
			leg.l.BreakerTrips)
	}
	fmt.Fprintln(w)

	pass := true
	verdict := func(ok bool, format string, args ...any) {
		v := "PASS"
		if !ok {
			v = "FAIL"
			pass = false
		}
		fmt.Fprintf(w, "%s %s\n", fmt.Sprintf(format, args...), v)
	}
	verdict(ov.Protected.HardErrors == 0,
		"protected leg hard errors: %d (claim: 0)", ov.Protected.HardErrors)
	verdict(ov.Protected.P99Micros <= ov.Unprotected.P99Micros*1.05,
		"protected p99 %.0fµs vs unprotected %.0fµs (claim: bounded)",
		ov.Protected.P99Micros, ov.Unprotected.P99Micros)
	verdict(ov.Protected.Rejected+ov.Protected.ShedTransitions > 0,
		"protections engaged: %d rejections + %d shed transitions (claim: > 0)",
		ov.Protected.Rejected, ov.Protected.ShedTransitions)
	verdict(ov.CancelFailFast,
		"pre-canceled query fails fast with zero reads: %v (claim: true)", ov.CancelFailFast)
	if !pass {
		return fmt.Errorf("bench: overload: a resilience claim failed")
	}
	return nil
}

// CompareOverload checks fresh overload metrics against the committed
// reference. The hard invariants (zero hard errors, fail-fast
// cancellation, protections engaging) are exact; the latency figures get
// a wide tolerance because saturation interleaving is scheduler-shaped.
func CompareOverload(ref, cur *Overload, tol float64) []string {
	var bad []string
	if ref.Workload != cur.Workload {
		return []string{fmt.Sprintf("workload mismatch: reference %q vs current %q (regenerate the reference)",
			ref.Workload, cur.Workload)}
	}
	if cur.Protected.HardErrors != 0 {
		bad = append(bad, fmt.Sprintf("protected leg: %d hard errors, want 0", cur.Protected.HardErrors))
	}
	if !cur.CancelFailFast {
		bad = append(bad, "cancellation leg: pre-canceled query no longer fails fast with zero reads")
	}
	if cur.Protected.Rejected+cur.Protected.ShedTransitions == 0 {
		bad = append(bad, "protected leg: protections never engaged (0 rejections, 0 shed transitions)")
	}
	if ref.Unprotected.P99Micros > 0 && cur.Protected.P99Micros > ref.Unprotected.P99Micros*(1+tol) {
		bad = append(bad, fmt.Sprintf(
			"protected p99 %.0fµs exceeds reference unprotected p99 %.0fµs (tolerance %.0f%%)",
			cur.Protected.P99Micros, ref.Unprotected.P99Micros, 100*tol))
	}
	return bad
}

// LoadOverload reads a committed overload reference.
func LoadOverload(path string) (*Overload, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ov Overload
	if err := json.Unmarshal(raw, &ov); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &ov, nil
}

// WriteOverload writes the reference in the committed format.
func WriteOverload(path string, ov *Overload) error {
	raw, err := json.MarshalIndent(ov, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
