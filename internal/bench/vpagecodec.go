package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/vstore"
)

// The vpagecodec experiment measures what the compressed V-page layout
// (DESIGN.md §13) buys per storage scheme, in two legs each:
//
//	raw    — the seed fixed-width layout (8-byte VDs, slot-aligned units)
//	codec  — quantized DoVs + delta-varint IDs in a packed heap
//
// Two figures per scheme: the static V-page footprint (bytes per V-page
// unit) and the end-to-end light-I/O cost (seek+transfer) of the
// standard uncached query workload. Costs are simulated and
// deterministic for a seeded dataset, like the BENCH_baseline.json
// guard; the committed reference lives in BENCH_vpagecodec.json.

// The headline gates: the codec must shrink V-page bytes at least 3x
// and cut the workload's simulated light-I/O cost at least 1.5x.
const (
	codecBytesGate    = 3.0
	codecTransferGate = 1.5
)

// codecSchemes is the codec-layout rebuild of an Env's three schemes,
// over the same VisData on the same disk.
type codecSchemes struct {
	H  *vstore.Horizontal
	V  *vstore.Vertical
	IV *vstore.IndexedVertical
}

var (
	codecEnvMu    sync.Mutex
	codecEnvCache = map[*Env]*codecSchemes{}
)

// codecEnv builds (or returns the cached) codec variants for e. The
// build-time dyadic DoV snapping (core.Build) guarantees the variants
// answer byte-identically to e.H/e.V/e.IV.
func codecEnv(e *Env) (*codecSchemes, error) {
	codecEnvMu.Lock()
	defer codecEnvMu.Unlock()
	if cs, ok := codecEnvCache[e]; ok {
		return cs, nil
	}
	opts := vstore.Options{Codec: true}
	h, err := vstore.BuildHorizontalOpts(e.Disk, e.Vis, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: codec horizontal: %w", err)
	}
	v, err := vstore.BuildVerticalOpts(e.Disk, e.Vis, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: codec vertical: %w", err)
	}
	iv, err := vstore.BuildIndexedVerticalOpts(e.Disk, e.Vis, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: codec indexed-vertical: %w", err)
	}
	cs := &codecSchemes{H: h, V: v, IV: iv}
	codecEnvCache[e] = cs
	return cs, nil
}

// CodecLeg is one layout's V-page footprint and per-query cost.
type CodecLeg struct {
	// VPageUnits/VPageBytes is the scheme's static V-page footprint:
	// how many V-page units the build emitted and what they occupy on
	// disk (codec: encoded bytes; raw: fixed-width bytes).
	VPageUnits int64 `json:"vpage_units"`
	VPageBytes int64 `json:"vpage_bytes"`
	// BytesPerVPage is VPageBytes / VPageUnits.
	BytesPerVPage float64 `json:"bytes_per_vpage"`
	// SimMicrosPerQuery is the average simulated light-I/O cost
	// (seek + transfer) per query on the standard uncached workload;
	// LightIOPerQuery the average light page reads behind it.
	SimMicrosPerQuery float64 `json:"sim_micros_per_query"`
	LightIOPerQuery   float64 `json:"light_io_per_query"`
}

// CodecSchemeMetric is one scheme's two legs plus the headline ratios.
type CodecSchemeMetric struct {
	Raw   CodecLeg `json:"raw"`
	Codec CodecLeg `json:"codec"`
	// BytesReduction is Raw.BytesPerVPage / Codec.BytesPerVPage (the
	// unit counts are identical by construction).
	BytesReduction float64 `json:"bytes_reduction"`
	// TransferReduction is Raw.SimMicrosPerQuery / Codec.SimMicrosPerQuery.
	TransferReduction float64 `json:"transfer_reduction"`
}

// VPageCodec is the committed reference format (BENCH_vpagecodec.json).
type VPageCodec struct {
	Workload string                       `json:"workload"`
	Schemes  map[string]CodecSchemeMetric `json:"schemes"`
}

// codecLeg profiles one layout: static footprint plus the uncached
// per-query light-I/O cost of the standard workload.
func codecLeg(e *Env, store core.VStore, queries int) (CodecLeg, error) {
	var leg CodecLeg
	type footprinter interface {
		VPageFootprint() (units, bytes int64)
	}
	if f, ok := store.(footprinter); ok {
		leg.VPageUnits, leg.VPageBytes = f.VPageFootprint()
		if leg.VPageUnits > 0 {
			leg.BytesPerVPage = float64(leg.VPageBytes) / float64(leg.VPageUnits)
		}
	}
	cells := workingSet(e.Tree, 32)
	sim, light, err := queryCost(e, store, cells, queries, 0.001)
	if err != nil {
		return leg, err
	}
	leg.SimMicrosPerQuery = sim
	leg.LightIOPerQuery = light
	return leg, nil
}

// CollectVPageCodec measures both legs for every scheme.
func CollectVPageCodec(p Params) (*VPageCodec, error) {
	e := DefaultEnv(p)
	cs, err := codecEnv(e)
	if err != nil {
		return nil, err
	}
	out := &VPageCodec{
		Workload: workloadTag(p),
		Schemes:  map[string]CodecSchemeMetric{},
	}
	for _, sc := range []struct {
		name       string
		raw, codec core.VStore
	}{
		{"horizontal", e.H, cs.H},
		{"vertical", e.V, cs.V},
		{"indexed-vertical", e.IV, cs.IV},
	} {
		var m CodecSchemeMetric
		if m.Raw, err = codecLeg(e, sc.raw, p.ScalQueries); err != nil {
			return nil, fmt.Errorf("bench: vpagecodec %s raw: %w", sc.name, err)
		}
		if m.Codec, err = codecLeg(e, sc.codec, p.ScalQueries); err != nil {
			return nil, fmt.Errorf("bench: vpagecodec %s codec: %w", sc.name, err)
		}
		if m.Codec.BytesPerVPage > 0 {
			m.BytesReduction = m.Raw.BytesPerVPage / m.Codec.BytesPerVPage
		}
		if m.Codec.SimMicrosPerQuery > 0 {
			m.TransferReduction = m.Raw.SimMicrosPerQuery / m.Codec.SimMicrosPerQuery
		}
		out.Schemes[sc.name] = m
	}
	return out, nil
}

// RunVPageCodec prints the footprint and cost table and verdicts the
// two headline gates per scheme: >= 3x V-page byte reduction and
// >= 1.5x light-I/O (seek+transfer) cost reduction against raw.
func RunVPageCodec(w io.Writer, p Params) error {
	vc, err := CollectVPageCodec(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "uncached workload, %d queries over 32 cells, eta=0.001\n\n", p.ScalQueries)
	fmt.Fprintf(w, "%-18s %-7s %-10s %-12s %-10s %-14s %-14s\n",
		"scheme", "leg", "units", "bytes", "B/V-page", "lightIO/query", "simµs/query")
	pass := true
	for _, name := range []string{"horizontal", "vertical", "indexed-vertical"} {
		m := vc.Schemes[name]
		for _, leg := range []struct {
			label string
			l     CodecLeg
		}{{"raw", m.Raw}, {"codec", m.Codec}} {
			fmt.Fprintf(w, "%-18s %-7s %-10d %-12d %-10.1f %-14.2f %-14.0f\n",
				name, leg.label, leg.l.VPageUnits, leg.l.VPageBytes, leg.l.BytesPerVPage,
				leg.l.LightIOPerQuery, leg.l.SimMicrosPerQuery)
		}
		bytesVerdict := "PASS"
		if m.BytesReduction < codecBytesGate {
			bytesVerdict = "FAIL"
			pass = false
		}
		xferVerdict := "PASS"
		if m.TransferReduction < codecTransferGate {
			xferVerdict = "FAIL"
			pass = false
		}
		fmt.Fprintf(w, "%-18s V-page bytes reduction %.1fx (claim: >= %.0fx) %s; light-I/O cost reduction %.1fx (claim: >= %.1fx) %s\n\n",
			name, m.BytesReduction, codecBytesGate, bytesVerdict,
			m.TransferReduction, codecTransferGate, xferVerdict)
	}
	if !pass {
		return fmt.Errorf("bench: vpagecodec: codec layout missed a reduction gate")
	}
	return nil
}

// CompareVPageCodec checks fresh codec metrics against the committed
// reference and returns one line per regression beyond tol. The two
// reduction ratios are the guarded quantities: a shrinking ratio means
// the codec stopped earning its keep (wider fallback encodes, lost
// packing, or a cost-model change that charges decoded bytes again).
func CompareVPageCodec(ref, cur *VPageCodec, tol float64) []string {
	var bad []string
	if ref.Workload != cur.Workload {
		return []string{fmt.Sprintf("workload mismatch: reference %q vs current %q (regenerate the reference)",
			ref.Workload, cur.Workload)}
	}
	names := make([]string, 0, len(ref.Schemes))
	for name := range ref.Schemes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := ref.Schemes[name]
		got, ok := cur.Schemes[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		if got.BytesReduction < want.BytesReduction*(1-tol) {
			bad = append(bad, fmt.Sprintf(
				"%s: V-page bytes reduction %.2fx, reference %.2fx (tolerance %.0f%%)",
				name, got.BytesReduction, want.BytesReduction, 100*tol))
		}
		if got.TransferReduction < want.TransferReduction*(1-tol) {
			bad = append(bad, fmt.Sprintf(
				"%s: light-I/O cost reduction %.2fx, reference %.2fx (tolerance %.0f%%)",
				name, got.TransferReduction, want.TransferReduction, 100*tol))
		}
	}
	return bad
}

// LoadVPageCodec reads a committed vpagecodec reference.
func LoadVPageCodec(path string) (*VPageCodec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var vc VPageCodec
	if err := json.Unmarshal(raw, &vc); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &vc, nil
}

// WriteVPageCodec writes the reference in the committed format.
func WriteVPageCodec(path string, vc *VPageCodec) error {
	raw, err := json.MarshalIndent(vc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
