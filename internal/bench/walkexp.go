package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/review"
	"repro/internal/storage"
	"repro/internal/vstore"
	"repro/internal/walkthrough"
)

// visualPlayer builds the standard VISUAL player.
func visualPlayer(e *Env, eta float64) *walkthrough.VisualPlayer {
	return &walkthrough.VisualPlayer{
		Tree:   e.Tree,
		Eta:    eta,
		Delta:  true,
		Render: render.DefaultConfig(),
	}
}

// reviewPlayer builds the standard REVIEW player with the given box depth.
func reviewPlayer(e *Env, boxDepth float64) *walkthrough.ReviewPlayer {
	cfg := review.DefaultConfig()
	cfg.QueryBoxDepth = boxDepth
	return &walkthrough.ReviewPlayer{
		Sys:        review.New(e.Tree, cfg),
		Complement: true,
		Render:     render.DefaultConfig(),
	}
}

// printFrameSeries prints every k-th frame time of one or two traces side
// by side — the per-frame curves of Figure 10.
func printFrameSeries(w io.Writer, every int, traces ...*walkthrough.Result) {
	fmt.Fprintf(w, "%-8s", "frame")
	for _, t := range traces {
		fmt.Fprintf(w, "%-22s", t.System)
	}
	fmt.Fprintln(w)
	n := len(traces[0].Frames)
	for i := 0; i < n; i += every {
		fmt.Fprintf(w, "%-8d", i)
		for _, t := range traces {
			fmt.Fprintf(w, "%-22.2f", float64(t.Frames[i].Total)/float64(time.Millisecond))
		}
		fmt.Fprintln(w)
	}
}

func printTraceSummary(w io.Writer, traces ...*walkthrough.Result) {
	fmt.Fprintf(w, "\n%-24s %-14s %-12s %-10s %-10s %-10s %-12s\n",
		"system", "avg frame ms", "variance", "p95 ms", "worst ms", "queries", "peak mem")
	for _, t := range traces {
		fmt.Fprintf(w, "%-24s %-14.2f %-12.2f %-10.2f %-10.2f %-10d %-12s\n",
			t.System, t.AvgFrameTime(), t.VarFrameTime(),
			t.PercentileFrameTime(95), t.MaxFrameTime(), t.Queries, mb(t.PeakBytes))
	}
}

// RunFig10a reproduces Figure 10(a): per-frame time of VISUAL (eta=0.001)
// vs REVIEW (400 m boxes) on session 1. REVIEW is slower and "choppier" —
// taller query spikes.
func RunFig10a(w io.Writer, p Params) error {
	e := DefaultEnv(p)
	e.Tree.SetVStore(e.IV)
	s := walkthrough.RecordNormal(e.Scene, p.Frames, p.Seed)
	vres, err := visualPlayer(e, 0.001).Play(s)
	if err != nil {
		return err
	}
	rres, err := reviewPlayer(e, 400).Play(s)
	if err != nil {
		return err
	}
	printFrameSeries(w, maxi(p.Frames/40, 1), vres, rres)
	printTraceSummary(w, vres, rres)
	return nil
}

// RunFig10b reproduces Figure 10(b): VISUAL at eta=0.001 vs eta=0.0003 on
// the same session — the larger threshold gives up to ~20% faster frames.
func RunFig10b(w io.Writer, p Params) error {
	e := DefaultEnv(p)
	e.Tree.SetVStore(e.IV)
	s := walkthrough.RecordNormal(e.Scene, p.Frames, p.Seed)
	coarse, err := visualPlayer(e, 0.001).Play(s)
	if err != nil {
		return err
	}
	fine, err := visualPlayer(e, 0.0003).Play(s)
	if err != nil {
		return err
	}
	printFrameSeries(w, maxi(p.Frames/40, 1), coarse, fine)
	printTraceSummary(w, coarse, fine)
	fmt.Fprintf(w, "\nframe-rate advantage of eta=0.001 over eta=0.0003: %.1f%% (paper: up to 20%%)\n",
		100*(fine.AvgFrameTime()-coarse.AvgFrameTime())/fine.AvgFrameTime())
	return nil
}

// RunFig11 reproduces Figure 11 quantitatively: fidelity of REVIEW
// (200 m boxes) and VISUAL (eta=0.001) against the original models, as
// DoV-weighted coverage and missed-object counts, averaged over sampled
// viewpoints. REVIEW loses far objects; VISUAL covers everything with
// near-original fidelity.
func RunFig11(w io.Writer, p Params) error {
	e := DefaultEnv(p)
	e.Tree.SetVStore(e.IV)
	sys := review.New(e.Tree, func() review.Config {
		cfg := review.DefaultConfig()
		cfg.QueryBoxDepth = 200
		return cfg
	}())

	type agg struct {
		coverage, detail, missed float64
	}
	var rev, vis agg
	nViews := 8
	for i := 0; i < nViews; i++ {
		cell := cells.CellID((i*7 + 3) % e.Tree.Grid.NumCells())
		eye := e.Tree.Grid.SamplePoints(cell, 1)[0]
		look := geom.V(1, 0.2*float64(i%3-1), 0)
		truth := e.Engine.PointDoV(eye)

		rres, err := sys.Query(eye, look)
		if err != nil {
			return err
		}
		rf := render.Evaluate(e.Tree, rres.Items, truth)
		rev.coverage += rf.Coverage
		rev.detail += rf.DetailFidelity
		rev.missed += float64(rf.MissedObjects)

		hres, err := e.Tree.Query(cell, 0.001)
		if err != nil {
			return err
		}
		hf := render.Evaluate(e.Tree, hres.Items, truth)
		vis.coverage += hf.Coverage
		vis.detail += hf.DetailFidelity
		vis.missed += float64(hf.MissedObjects)
	}
	n := float64(nViews)
	fmt.Fprintf(w, "fidelity vs original models, averaged over %d viewpoints\n\n", nViews)
	fmt.Fprintf(w, "%-26s %-16s %-16s %-14s\n", "system", "DoV coverage", "detail fidelity", "missed objs")
	fmt.Fprintf(w, "%-26s %-16.3f %-16.3f %-14.1f\n", "original (all, full LoD)", 1.0, 1.0, 0.0)
	fmt.Fprintf(w, "%-26s %-16.3f %-16.3f %-14.1f\n", "REVIEW (200m boxes)", rev.coverage/n, rev.detail/n, rev.missed/n)
	fmt.Fprintf(w, "%-26s %-16.3f %-16.3f %-14.1f\n", "VISUAL (eta=0.001)", vis.coverage/n, vis.detail/n, vis.missed/n)

	if p.ImageDir != "" {
		if err := writeFig11Images(w, p, e, sys); err != nil {
			return err
		}
	}
	return nil
}

// writeFig11Images renders the three systems' answer sets from one street
// viewpoint and writes them as PGM files — the artifact form of the
// paper's Figure 11 screenshots: (a) original models, (b) REVIEW with its
// truncated boxes losing far objects, (c) VISUAL at eta=0.001.
func writeFig11Images(w io.Writer, p Params, e *Env, sys *review.System) error {
	if err := os.MkdirAll(p.ImageDir, 0o755); err != nil {
		return err
	}
	// Stand at a street intersection near the city edge looking down the
	// long street axis, so the view has both near and far (>200 m)
	// buildings — the geometry Figure 11 is about.
	sp := e.Scene.Params
	pitch := sp.BlockSize + sp.StreetWidth
	eye := geom.V(sp.StreetWidth/2+pitch, sp.StreetWidth/2+pitch, e.Scene.ViewRegion.Center().Z)
	cell := e.Tree.Grid.Locate(eye)
	if cell == cells.NoCell {
		cell = 0
		eye = e.Tree.Grid.SamplePoints(cell, 1)[0]
	}
	look := geom.V(1, 0.1, 0)
	cfg := render.DefaultViewConfig(eye, look)
	cfg.W, cfg.H = 480, 360

	// (a) original: every object at its finest LoD.
	var original []render.RenderItem
	for _, o := range e.Scene.Objects {
		original = append(original, render.RenderItem{ID: int32(o.ID), Mesh: o.LoDs.Finest()})
	}
	if err := writePGMFile(p.ImageDir, "fig11a_original.pgm", render.RenderView(cfg, original)); err != nil {
		return err
	}

	// (b) REVIEW answer set at its selected LoDs.
	rres, err := sys.Query(eye, look)
	if err != nil {
		return err
	}
	items, err := answerMeshes(e, rres.Items)
	if err != nil {
		return err
	}
	if err := writePGMFile(p.ImageDir, "fig11b_review.pgm", render.RenderView(cfg, items)); err != nil {
		return err
	}

	// (c) VISUAL answer set (objects + internal LoDs as retrieved).
	hres, err := e.Tree.Query(cell, 0.001)
	if err != nil {
		return err
	}
	items, err = answerMeshes(e, hres.Items)
	if err != nil {
		return err
	}
	if err := writePGMFile(p.ImageDir, "fig11c_visual.pgm", render.RenderView(cfg, items)); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote fig11{a,b,c}_*.pgm to %s\n", p.ImageDir)
	return nil
}

// answerMeshes decodes every item's payload mesh for rendering.
func answerMeshes(e *Env, items []core.ResultItem) ([]render.RenderItem, error) {
	out := make([]render.RenderItem, 0, len(items))
	for i, it := range items {
		m, err := e.Tree.LoadMesh(it)
		if err != nil {
			return nil, err
		}
		out = append(out, render.RenderItem{ID: int32(i), Mesh: m})
	}
	return out, nil
}

func writePGMFile(dir, name string, v *render.View) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := v.WritePGM(f); err != nil {
		return err
	}
	return f.Close()
}

// RunFig12 reproduces Figure 12: average search time (a) and I/O count (b)
// per query for the three motion-pattern sessions, VISUAL vs REVIEW.
func RunFig12(w io.Writer, p Params) error {
	e := DefaultEnv(p)
	e.Tree.SetVStore(e.IV)
	sessions := walkthrough.Sessions(e.Scene, p.Frames, p.Seed)
	fmt.Fprintf(w, "%-24s %-18s %-18s\n", "session", "VISUAL", "REVIEW")
	fmt.Fprintf(w, "(a) avg search time per query (ms)\n")
	type row struct{ vt, rt, vio, rio float64 }
	rows := make([]row, len(sessions))
	for i, s := range sessions {
		vres, err := visualPlayer(e, 0.001).Play(s)
		if err != nil {
			return err
		}
		rres, err := reviewPlayer(e, 400).Play(s)
		if err != nil {
			return err
		}
		rows[i] = row{vres.AvgQueryTime(), rres.AvgQueryTime(), vres.AvgQueryIO(), rres.AvgQueryIO()}
		fmt.Fprintf(w, "%-24s %-18.2f %-18.2f\n", s.Name, rows[i].vt, rows[i].rt)
	}
	fmt.Fprintf(w, "(b) avg I/O operations per query\n")
	for i, s := range sessions {
		fmt.Fprintf(w, "%-24s %-18.1f %-18.1f\n", s.Name, rows[i].vio, rows[i].rio)
	}
	return nil
}

// RunTable3 reproduces Table 3: average frame time and frame-time variance
// of session 1 across the paper's eta ladder, plus the REVIEW row (400 m
// boxes) and the peak-memory comparison.
func RunTable3(w io.Writer, p Params) error {
	e := DefaultEnv(p)
	e.Tree.SetVStore(e.IV)
	s := walkthrough.RecordNormal(e.Scene, p.Frames, p.Seed)
	etas := []float64{0, 0.00005, 0.0001, 0.0002, 0.0003, 0.0005, 0.001, 0.002, 0.004}
	fmt.Fprintf(w, "%-10s %-20s %-22s %-12s\n", "eta", "Avg Frame Time(ms)", "Variance of Frame Time", "peak mem")
	for _, eta := range etas {
		res, err := visualPlayer(e, eta).Play(s)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10g %-20.2f %-22.2f %-12s\n", eta, res.AvgFrameTime(), res.VarFrameTime(), mb(res.PeakBytes))
	}
	rres, err := reviewPlayer(e, 400).Play(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-20.2f %-22.2f %-12s\n", "REVIEW", rres.AvgFrameTime(), rres.VarFrameTime(), mb(rres.PeakBytes))
	return nil
}

// RunAblations reports the design-choice studies D1-D5 of DESIGN.md §6.
func RunAblations(w io.Writer, p Params) error {
	e := DefaultEnv(p)
	e.Tree.SetVStore(e.IV)
	workload := queryWorkload(e, maxi(p.Queries/10, 100), p.Seed+300)

	// D1: threshold traversal vs eta=0 (no early termination).
	fmt.Fprintf(w, "D1: DoV-threshold traversal (eta=0.001) vs eta=0\n")
	for _, eta := range []float64{0, 0.001} {
		var simTime time.Duration
		var lio int64
		for _, cell := range workload {
			before := e.Disk.Stats()
			res, err := e.Tree.Query(cell, eta)
			if err != nil {
				return err
			}
			if _, err := e.Tree.FetchPayloads(res, nil); err != nil {
				return err
			}
			d := e.Disk.Stats().Sub(before)
			simTime += d.SimTime
			lio += d.LightReads + d.HeavyReads
		}
		fmt.Fprintf(w, "  eta=%-8g avg time %.2f ms, avg I/O %.1f\n", eta,
			float64(simTime)/float64(time.Millisecond)/float64(len(workload)),
			float64(lio)/float64(len(workload)))
	}

	// D2: equation-4 termination guard on/off: without it the answer may
	// carry more polygons than the visible children it replaces.
	fmt.Fprintf(w, "\nD2: termination heuristic (equation 4) on vs off (eta=0.004)\n")
	for _, disabled := range []bool{false, true} {
		e.Tree.DisableTerminationHeuristic = disabled
		var polys float64
		var stops int
		for _, cell := range workload {
			res, err := e.Tree.Query(cell, 0.004)
			if err != nil {
				e.Tree.DisableTerminationHeuristic = false
				return err
			}
			polys += res.Stats.TotalPolygons
			stops += res.Stats.EarlyStops
		}
		label := "on"
		if disabled {
			label = "off"
		}
		fmt.Fprintf(w, "  guard %-4s avg polygons %.0f, early stops %d\n",
			label, polys/float64(len(workload)), stops)
	}
	e.Tree.DisableTerminationHeuristic = false

	// D3: segment flip cost, vertical vs indexed-vertical. Page counts
	// tie for small trees (both segments fit one page), so the logical
	// flip volume — the O(N_node) vs O(N_vnode) claim of §4.3 — is
	// reported alongside.
	fmt.Fprintf(w, "\nD3: cell-flip cost, vertical vs indexed-vertical\n")
	var avgVnode float64
	for c := 0; c < e.Tree.Grid.NumCells(); c++ {
		avgVnode += float64(e.Vis.VisibleNodes(cells.CellID(c)))
	}
	avgVnode /= float64(e.Tree.Grid.NumCells())
	flipBytes := map[string]float64{
		"vertical":         8 * float64(e.Tree.NumNodes()),
		"indexed-vertical": 12 * avgVnode,
	}
	for _, sc := range []core.VStore{e.V, e.IV} {
		before := e.Disk.Stats()
		flips := 0
		for c := 0; c < e.Tree.Grid.NumCells(); c++ {
			if err := sc.SetCell(cells.CellID(c)); err != nil {
				return err
			}
			flips++
		}
		d := e.Disk.Stats().Sub(before)
		fmt.Fprintf(w, "  %-18s %.2f pages per flip (%.0f logical bytes)\n",
			sc.Name(), float64(d.LightReads)/float64(flips), flipBytes[sc.Name()])
	}

	// D4: delta search on/off over a revisit-heavy session.
	fmt.Fprintf(w, "\nD4: delta search on vs off (session 3, eta=0.001)\n")
	s3 := walkthrough.RecordBackForward(e.Scene, p.Frames, p.Seed+2)
	for _, delta := range []bool{true, false} {
		pl := visualPlayer(e, 0.001)
		pl.Delta = delta
		res, err := pl.Play(s3)
		if err != nil {
			return err
		}
		var heavy int64
		for _, f := range res.Frames {
			heavy += f.HeavyIO
		}
		fmt.Fprintf(w, "  delta=%-6v total heavy I/O %d pages, avg frame %.2f ms\n",
			delta, heavy, res.AvgFrameTime())
	}

	// D5: frustum-prioritized traversal (the paper's §6 future work):
	// in-view prefix mass vs plain depth-first ordering.
	fmt.Fprintf(w, "\nD5: frustum-prioritized traversal (future-work extension)\n")
	var plainMass, prioMass float64
	for i, cell := range workload[:minl(len(workload), 100)] {
		eye := e.Tree.Grid.SamplePoints(cell, 1)[0]
		look := geom.V(1, 0.3*float64(i%3-1), 0)
		f := geom.NewFrustum(eye, look, geom.V(0, 0, 1), 1.0472, 4.0/3, 0.5, 2000)
		plain, err := e.Tree.Query(cell, 0.001)
		if err != nil {
			return err
		}
		prio, err := e.Tree.QueryPrioritized(cell, 0.001, f)
		if err != nil {
			return err
		}
		plainMass += inViewPrefixMass(e, f, plain.Items)
		prioMass += inViewPrefixMass(e, f, prio.Items)
	}
	fmt.Fprintf(w, "  in-view prefix mass: plain %.0f, prioritized %.0f (higher = earlier in-view delivery)\n",
		plainMass, prioMass)

	// D6: an LRU buffer pool over index pages. The paper's prototype runs
	// uncached; this measures what a buffer manager would buy.
	fmt.Fprintf(w, "\nD6: index buffer pool off vs on (1024 pages, eta=0.001)\n")
	for _, cachePages := range []int{0, 1024} {
		e.Disk.SetCacheSize(cachePages)
		var simTime time.Duration
		var lio int64
		for _, cell := range workload {
			before := e.Disk.Stats()
			if _, err := e.Tree.Query(cell, 0.001); err != nil {
				e.Disk.SetCacheSize(0)
				return err
			}
			d := e.Disk.Stats().Sub(before)
			simTime += d.SimTime
			lio += d.LightReads
		}
		hits, misses := e.Disk.CacheStats()
		fmt.Fprintf(w, "  cache=%-5d avg light I/O %.1f, avg time %.2f ms (hits %d, misses %d)\n",
			cachePages, float64(lio)/float64(len(workload)),
			float64(simTime)/float64(time.Millisecond)/float64(len(workload)), hits, misses)
	}
	e.Disk.SetCacheSize(0)

	// D7: speculative next-cell prefetch in the walkthrough.
	fmt.Fprintf(w, "\nD7: walkthrough prefetch off vs on (session 1, eta=0.001)\n")
	s1 := walkthrough.RecordNormal(e.Scene, p.Frames, p.Seed)
	for _, prefetch := range []bool{false, true} {
		pl := visualPlayer(e, 0.001)
		pl.Prefetch = prefetch
		res, err := pl.Play(s1)
		if err != nil {
			return err
		}
		var spikeSum float64
		var spikes int
		var totalIO int64
		first := true
		for _, f := range res.Frames {
			totalIO += f.LightIO + f.HeavyIO + f.PrefetchIO
			if f.Queried {
				if first {
					first = false
					continue
				}
				spikeSum += float64(f.QueryTime) / float64(time.Millisecond)
				spikes++
			}
		}
		avgSpike := 0.0
		if spikes > 0 {
			avgSpike = spikeSum / float64(spikes)
		}
		fmt.Fprintf(w, "  prefetch=%-6v avg cell-entry stall %.2f ms, total I/O %d pages\n",
			prefetch, avgSpike, totalIO)
	}

	// D8: R-tree construction — incremental Ang–Tan insertion (the
	// paper's choice) vs STR bulk loading.
	fmt.Fprintf(w, "\nD8: R-tree backbone, incremental insertion vs STR bulk load\n")
	{
		ibp := core.DefaultBuildParams()
		ibp.Grid = e.Tree.Grid
		ibp.DirsPerViewpoint = 512
		ibp.SamplesPerCell = 1
		for _, bulk := range []bool{false, true} {
			ibp.BulkLoad = bulk
			d2 := storageNew()
			tr2, vis2, err := core.Build(e.Scene, d2, ibp)
			if err != nil {
				return err
			}
			iv2, err := buildIndexed(d2, vis2)
			if err != nil {
				return err
			}
			tr2.SetVStore(iv2)
			var lio int64
			short := workload[:minl(len(workload), 200)]
			for _, cell := range short {
				res, err := tr2.Query(cell, 0.001)
				if err != nil {
					return err
				}
				lio += res.Stats.LightIO
			}
			label := "insertion"
			if bulk {
				label = "bulk-load"
			}
			fmt.Fprintf(w, "  %-10s %d nodes, avg light I/O %.1f\n",
				label, tr2.NumNodes(), float64(lio)/float64(len(short)))
		}
	}

	return nil
}

// storageNew and buildIndexed keep the D8 ablation terse.
func storageNew() *storage.Disk {
	return storage.NewDisk(0, storage.DefaultCostModel())
}

func buildIndexed(d *storage.Disk, vis *core.VisData) (core.VStore, error) {
	return vstore.BuildIndexedVertical(d, vis, 0)
}

// inViewPrefixMass scores how early in-view items appear in an answer.
func inViewPrefixMass(e *Env, f geom.Frustum, items []core.ResultItem) float64 {
	var mass float64
	n := len(items)
	for i, it := range items {
		var b geom.AABB
		if it.ObjectID >= 0 {
			b = e.Scene.Object(it.ObjectID).MBR
		} else {
			b = geom.EmptyAABB()
			for _, en := range e.Tree.Nodes[it.NodeID].Entries {
				b = b.Union(en.MBR)
			}
		}
		if f.IntersectsAABB(b) {
			mass += float64(n - i)
		}
	}
	return mass
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minl(a, b int) int {
	if a < b {
		return a
	}
	return b
}
