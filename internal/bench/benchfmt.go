package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
)

// Benchmark-format output: the collected reference metrics rendered as
// standard Go benchmark lines ("BenchmarkX <iters> <value> <unit> ..."),
// the format `go test -bench` emits and benchstat consumes. hdovbench
// -benchfmt prints these alongside the JSON reference files, so two
// runs (two commits, two hosts, sim vs file backend) can be diffed with
// the stock tooling instead of ad-hoc JSON munging.

// WriteBenchHeader writes the benchstat file preamble.
func WriteBenchHeader(w io.Writer) {
	fmt.Fprintf(w, "goos: %s\n", runtime.GOOS)
	fmt.Fprintf(w, "goarch: %s\n", runtime.GOARCH)
	fmt.Fprintf(w, "pkg: repro/internal/bench\n")
}

// benchLine writes one benchmark result line. Values come in
// (value, unit) pairs, the way testing.B prints custom metrics.
func benchLine(w io.Writer, name string, iters int, pairs ...any) {
	fmt.Fprintf(w, "Benchmark%s\t%d", name, iters)
	for i := 0; i+1 < len(pairs); i += 2 {
		fmt.Fprintf(w, "\t%.4g %s", pairs[i], pairs[i+1])
	}
	fmt.Fprintln(w)
}

// sortedSchemes returns map keys in stable order.
func sortedSchemes[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BenchFmtBaseline renders the baseline reference.
func BenchFmtBaseline(w io.Writer, b *Baseline, queries int) {
	for _, name := range sortedSchemes(b.Schemes) {
		m := b.Schemes[name]
		benchLine(w, "Baseline/"+name, queries,
			m.SimMicrosPerQuery, "sim-us/query",
			m.LightIOPerQuery, "light-io/query")
	}
	benchLine(w, "Baseline/serve", queries, b.CachedHitRate, "pool-hit-rate")
}

// BenchFmtVPageCodec renders the vpagecodec reference.
func BenchFmtVPageCodec(w io.Writer, vc *VPageCodec, queries int) {
	for _, name := range sortedSchemes(vc.Schemes) {
		m := vc.Schemes[name]
		for _, leg := range []struct {
			label string
			l     CodecLeg
		}{{"raw", m.Raw}, {"codec", m.Codec}} {
			benchLine(w, "VPageCodec/"+name+"/"+leg.label, queries,
				leg.l.BytesPerVPage, "B/vpage",
				leg.l.SimMicrosPerQuery, "sim-us/query",
				leg.l.LightIOPerQuery, "light-io/query")
		}
	}
}

// BenchFmtWalkCoherence renders the walkcoherence reference.
func BenchFmtWalkCoherence(w io.Writer, wc *WalkCoherence) {
	for _, name := range sortedSchemes(wc.Schemes) {
		m := wc.Schemes[name]
		for _, leg := range []struct {
			label string
			l     CoherenceLeg
		}{{"full", m.Full}, {"coherent", m.Coherent}, {"warm", m.Warm}} {
			benchLine(w, "WalkCoherence/"+name+"/"+leg.label, wc.Frames,
				leg.l.LightIOPerQuery, "light-io/query",
				float64(leg.l.PeakFrameLightIO), "peak-light-io/frame")
		}
	}
}

// BenchFmtHWCalib renders the hardware-calibration reference.
func BenchFmtHWCalib(w io.Writer, hc *HWCalib, queries int) {
	benchLine(w, "HWCalib/fitted-cost", 1,
		hc.FittedSeekMicros, "seek-us",
		hc.FittedTransferMicros, "transfer-us/page")
	for _, name := range sortedSchemes(hc.Schemes) {
		m := hc.Schemes[name]
		benchLine(w, "HWCalib/"+name, queries,
			m.SimMicrosPerQuery, "sim-us/query",
			m.MeasuredMicrosPerQuery, "measured-us/query",
			m.LightIOPerQuery, "light-io/query")
	}
	benchLine(w, "HWCalib/codec", queries, hc.CodecSpeedup, "speedup-x")
	benchLine(w, "HWCalib/warm", queries, hc.WarmSpeedup, "speedup-x")
}
