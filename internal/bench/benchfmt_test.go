package bench

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// benchLineRE is the shape `go test -bench` emits and benchstat parses:
// name, iteration count, then (value, unit) pairs.
var benchLineRE = regexp.MustCompile(`^Benchmark[^\s]+\t\d+(\t[0-9.e+-]+ [^\s]+)+$`)

func checkBenchLines(t *testing.T, out string, wantLines int) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != wantLines {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), wantLines, out)
	}
	for _, l := range lines {
		if !benchLineRE.MatchString(l) {
			t.Errorf("line does not parse as a benchmark result: %q", l)
		}
	}
}

func TestBenchFmtShapes(t *testing.T) {
	var buf bytes.Buffer
	WriteBenchHeader(&buf)
	hdr := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(hdr) != 3 || !strings.HasPrefix(hdr[0], "goos: ") ||
		!strings.HasPrefix(hdr[1], "goarch: ") || !strings.HasPrefix(hdr[2], "pkg: ") {
		t.Fatalf("bad header:\n%s", buf.String())
	}

	buf.Reset()
	BenchFmtBaseline(&buf, &Baseline{
		Schemes: map[string]BaselineMetric{
			"horizontal":       {SimMicrosPerQuery: 1234.5, LightIOPerQuery: 3.2},
			"indexed-vertical": {SimMicrosPerQuery: 987.6, LightIOPerQuery: 2.1},
		},
		CachedHitRate: 0.93,
	}, 200)
	checkBenchLines(t, buf.String(), 3)

	buf.Reset()
	BenchFmtVPageCodec(&buf, &VPageCodec{
		Schemes: map[string]CodecSchemeMetric{
			"vertical": {
				Raw:   CodecLeg{BytesPerVPage: 8, SimMicrosPerQuery: 100, LightIOPerQuery: 4},
				Codec: CodecLeg{BytesPerVPage: 2, SimMicrosPerQuery: 60, LightIOPerQuery: 2.5},
			},
		},
	}, 200)
	checkBenchLines(t, buf.String(), 2)

	buf.Reset()
	BenchFmtWalkCoherence(&buf, &WalkCoherence{
		Frames: 300,
		Schemes: map[string]CoherenceSchemeMetric{
			"horizontal": {
				Full:     CoherenceLeg{LightIOPerQuery: 10, PeakFrameLightIO: 40},
				Coherent: CoherenceLeg{LightIOPerQuery: 5, PeakFrameLightIO: 20},
				Warm:     CoherenceLeg{LightIOPerQuery: 1, PeakFrameLightIO: 4},
			},
		},
	})
	checkBenchLines(t, buf.String(), 3)

	buf.Reset()
	BenchFmtHWCalib(&buf, &HWCalib{
		FittedSeekMicros:     0.4,
		FittedTransferMicros: 0.2,
		Schemes: map[string]HWSchemeMetric{
			"horizontal": {LightIOPerQuery: 3, SimMicrosPerQuery: 1.5, MeasuredMicrosPerQuery: 1.8},
		},
		CodecSpeedup: 1.4,
		WarmSpeedup:  25,
	}, 200)
	checkBenchLines(t, buf.String(), 4)
}
