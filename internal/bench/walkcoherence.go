package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/render"
	"repro/internal/vstore"
	"repro/internal/walkthrough"
)

// The walkcoherence experiment measures what the frame-coherence stack
// buys on the standard session-1 walkthrough, per storage scheme, in
// three legs:
//
//	full      — from-root traversal every cell entry (the seed behavior)
//	coherent  — incremental cut maintenance (Session.QueryCoherent)
//	warm      — coherent + shared buffer pool + async predictive
//	            prefetching (+ the horizontal scheme's V-data cache)
//
// All costs are simulated and deterministic for a seeded workload, like
// the BENCH_baseline.json guard; the committed reference lives in
// BENCH_walkcoherence.json next to it.

// walkCoherencePool is the buffer-pool size of the warm leg: large
// enough to hold the walk's working set, so the leg isolates what
// coherence + prefetching contribute rather than eviction policy.
const walkCoherencePool = 1 << 14

// CoherenceLeg is one playback's demand-I/O profile.
type CoherenceLeg struct {
	// LightIOPerQuery is the average demand index reads per cell-entry
	// query; PeakFrameLightIO the worst single frame — the spike the
	// prefetcher exists to flatten.
	LightIOPerQuery  float64 `json:"light_io_per_query"`
	PeakFrameLightIO int64   `json:"peak_frame_light_io"`
	// PrefetchIO is the background worker's page reads (off the frame
	// loop); PrefetchHits/PrefetchWasted how many warmed pages a demand
	// read used vs lost to eviction.
	PrefetchIO     int64 `json:"prefetch_io,omitempty"`
	PrefetchHits   int64 `json:"prefetch_hits,omitempty"`
	PrefetchWasted int64 `json:"prefetch_wasted,omitempty"`
	// VDCacheHits counts decoded-V-data cache hits (horizontal only).
	VDCacheHits int64 `json:"vd_cache_hits,omitempty"`

	series []int64 // per-frame demand light I/O, for the printed profile
}

// CoherenceSchemeMetric is one scheme's three legs plus the headline
// ratio: full-leg demand I/O per query over warm-leg.
type CoherenceSchemeMetric struct {
	Full     CoherenceLeg `json:"full"`
	Coherent CoherenceLeg `json:"coherent"`
	Warm     CoherenceLeg `json:"warm"`
	// LightIOReduction is Full.LightIOPerQuery / Warm.LightIOPerQuery.
	LightIOReduction float64 `json:"light_io_reduction"`
	// RevisitVDCacheHits is the horizontal scheme's decoded-V-data cache
	// hit count on a revisit-heavy session (session 3): the forward walk
	// of the main legs never re-enters a cell, so the cache can only
	// show its value where cells repeat.
	RevisitVDCacheHits int64 `json:"revisit_vd_cache_hits,omitempty"`
}

// WalkCoherence is the committed reference format
// (BENCH_walkcoherence.json).
type WalkCoherence struct {
	Workload string                           `json:"workload"`
	Frames   int                              `json:"frames"`
	Schemes  map[string]CoherenceSchemeMetric `json:"schemes"`
}

// coherenceLeg plays one leg on a fresh session tree and profiles it.
func coherenceLeg(e *Env, s walkthrough.Session, coherent, warm bool) (CoherenceLeg, error) {
	var leg CoherenceLeg
	if warm {
		e.Disk.SetCacheSize(walkCoherencePool)
		defer e.Disk.SetCacheSize(0)
	}
	before := e.Disk.Stats()
	p := &walkthrough.VisualPlayer{
		Tree:          e.Tree.Session(),
		Eta:           0.001,
		Delta:         true,
		Coherent:      coherent,
		AsyncPrefetch: warm,
		Render:        render.DefaultConfig(),
	}
	res, err := p.Play(s)
	if err != nil {
		return leg, err
	}
	var total int64
	leg.series = make([]int64, len(res.Frames))
	for i, f := range res.Frames {
		leg.series[i] = f.LightIO
		total += f.LightIO
		if f.LightIO > leg.PeakFrameLightIO {
			leg.PeakFrameLightIO = f.LightIO
		}
		leg.PrefetchIO += f.PrefetchIO
	}
	if res.Queries > 0 {
		leg.LightIOPerQuery = float64(total) / float64(res.Queries)
	}
	// Read the pool counters before the deferred SetCacheSize(0) drops
	// the pool (folded counters go with it).
	d := e.Disk.Stats().Sub(before)
	leg.PrefetchHits = d.PrefetchHits
	leg.PrefetchWasted = d.PrefetchWasted
	leg.VDCacheHits = d.VDCacheHits
	return leg, nil
}

// CollectWalkCoherence measures all three legs for every scheme.
func CollectWalkCoherence(p Params) (*WalkCoherence, error) {
	e := DefaultEnv(p)
	s := walkthrough.RecordNormal(e.Scene, p.Frames, p.Seed)
	out := &WalkCoherence{
		Workload: workloadTag(p),
		Frames:   p.Frames,
		Schemes:  map[string]CoherenceSchemeMetric{},
	}
	for _, sc := range []struct {
		name  string
		store core.VStore
	}{
		{"horizontal", e.H},
		{"vertical", e.V},
		{"indexed-vertical", e.IV},
	} {
		e.Tree.SetVStore(sc.store)
		var m CoherenceSchemeMetric
		var err error
		if m.Full, err = coherenceLeg(e, s, false, false); err != nil {
			return nil, fmt.Errorf("bench: walkcoherence %s full: %w", sc.name, err)
		}
		if m.Coherent, err = coherenceLeg(e, s, true, false); err != nil {
			return nil, fmt.Errorf("bench: walkcoherence %s coherent: %w", sc.name, err)
		}
		// The horizontal scheme additionally caches decoded V-data on
		// the warm leg; sized to the node count so a cell's whole sweep
		// stays resident.
		if h, ok := sc.store.(*vstore.Horizontal); ok {
			h.EnableVDCache(4 * e.Tree.NumNodes())
			defer h.EnableVDCache(0)
		}
		if m.Warm, err = coherenceLeg(e, s, true, true); err != nil {
			return nil, fmt.Errorf("bench: walkcoherence %s warm: %w", sc.name, err)
		}
		if _, ok := sc.store.(*vstore.Horizontal); ok {
			s3 := walkthrough.RecordBackForward(e.Scene, p.Frames, p.Seed+2)
			revisit, err := coherenceLeg(e, s3, true, true)
			if err != nil {
				return nil, fmt.Errorf("bench: walkcoherence %s revisit: %w", sc.name, err)
			}
			m.RevisitVDCacheHits = revisit.VDCacheHits
		}
		if m.Warm.LightIOPerQuery > 0 {
			m.LightIOReduction = m.Full.LightIOPerQuery / m.Warm.LightIOPerQuery
		}
		out.Schemes[sc.name] = m
	}
	e.Tree.SetVStore(e.IV)
	return out, nil
}

// RunWalkCoherence prints the per-frame I/O spike profile and the leg
// summary, and verdicts the headline claim: the warm path must cut
// demand light I/O at least 2x against the full-traversal leg (the
// numbers recorded in BENCH_walkcoherence.json).
func RunWalkCoherence(w io.Writer, p Params) error {
	wc, err := CollectWalkCoherence(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "session 1 (%d frames), eta=0.001, pool %d pages on the warm leg\n\n",
		wc.Frames, walkCoherencePool)
	for _, name := range []string{"horizontal", "vertical", "indexed-vertical"} {
		m := wc.Schemes[name]
		fmt.Fprintf(w, "%s: per-frame demand light I/O (every %d frames)\n", name, maxi(p.Frames/20, 1))
		fmt.Fprintf(w, "%-8s %-10s %-10s %-10s\n", "frame", "full", "coherent", "warm")
		for i := 0; i < len(m.Full.series); i += maxi(p.Frames/20, 1) {
			fmt.Fprintf(w, "%-8d %-10d %-10d %-10d\n",
				i, m.Full.series[i], m.Coherent.series[i], m.Warm.series[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-18s %-8s %-14s %-10s %-12s %-10s %-8s %-8s\n",
		"scheme", "leg", "lightIO/query", "peak/frame", "prefetchIO", "pf hits", "wasted", "vdhits")
	pass := true
	for _, name := range []string{"horizontal", "vertical", "indexed-vertical"} {
		m := wc.Schemes[name]
		for _, leg := range []struct {
			label string
			l     CoherenceLeg
		}{{"full", m.Full}, {"coherent", m.Coherent}, {"warm", m.Warm}} {
			fmt.Fprintf(w, "%-18s %-8s %-14.2f %-10d %-12d %-10d %-8d %-8d\n",
				name, leg.label, leg.l.LightIOPerQuery, leg.l.PeakFrameLightIO,
				leg.l.PrefetchIO, leg.l.PrefetchHits, leg.l.PrefetchWasted, leg.l.VDCacheHits)
		}
		if m.RevisitVDCacheHits > 0 {
			fmt.Fprintf(w, "%-18s V-data cache hits on revisit-heavy session 3: %d\n",
				name, m.RevisitVDCacheHits)
		}
		verdict := "PASS"
		if m.LightIOReduction < 2 {
			verdict = "FAIL"
			pass = false
		}
		fmt.Fprintf(w, "%-18s demand light-I/O reduction %.1fx (claim: >= 2x) %s\n\n",
			name, m.LightIOReduction, verdict)
	}
	if !pass {
		return fmt.Errorf("bench: walkcoherence: warm path did not reach the 2x light-I/O reduction")
	}
	return nil
}

// LoadWalkCoherence reads a committed walkcoherence reference.
func LoadWalkCoherence(path string) (*WalkCoherence, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var wc WalkCoherence
	if err := json.Unmarshal(raw, &wc); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &wc, nil
}

// WriteWalkCoherence writes the reference in the committed format.
func WriteWalkCoherence(path string, wc *WalkCoherence) error {
	raw, err := json.MarshalIndent(wc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
