package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
)

// The regression guard tracks *simulated* query cost, not wall-clock
// time: the cost model (seek + transfer per pool miss) is deterministic
// for a seeded dataset and workload, so a >25% shift can only come from a
// code change — more pages read, worse layout, broken caching — never
// from a slow CI host.

// BaselineMetric is one scheme's per-query cost on the standard workload.
type BaselineMetric struct {
	// SimMicrosPerQuery is the average simulated disk time per query, µs.
	SimMicrosPerQuery float64 `json:"sim_micros_per_query"`
	// LightIOPerQuery is the average light-weight page reads per query.
	LightIOPerQuery float64 `json:"light_io_per_query"`
}

// Throughput returns the metric as simulated queries per second.
func (m BaselineMetric) Throughput() float64 {
	if m.SimMicrosPerQuery <= 0 {
		return 0
	}
	return 1e6 / m.SimMicrosPerQuery
}

// Baseline is the committed benchmark reference (BENCH_baseline.json).
type Baseline struct {
	// Workload pins the parameter set the numbers were collected under;
	// the guard refuses to compare across different workloads.
	Workload string `json:"workload"`
	// Schemes maps scheme name → uncached per-query cost.
	Schemes map[string]BaselineMetric `json:"schemes"`
	// CachedHitRate is the pool hit rate of the serving workload, in
	// [0, 1]; a drop means the pool stopped retaining the working set.
	CachedHitRate float64 `json:"cached_hit_rate"`
}

// workloadTag names the workload so baselines collected under different
// parameter sets never get compared.
func workloadTag(p Params) string {
	return fmt.Sprintf("city%d-grid%d-dirs%d-q%d-seed%d",
		p.CityBlocks, p.GridCells, p.Dirs, p.ScalQueries, p.Seed)
}

// CollectBaseline measures the guard's metrics for p: the three schemes'
// uncached per-query cost, and the serving workload's pool hit rate.
func CollectBaseline(p Params) (*Baseline, error) {
	e := DefaultEnv(p)
	ws := workingSet(e.Tree, 32)
	b := &Baseline{
		Workload: workloadTag(p),
		Schemes:  map[string]BaselineMetric{},
	}
	for _, sc := range []struct {
		name  string
		store core.VStore
	}{
		{"horizontal", e.H},
		{"vertical", e.V},
		{"indexed-vertical", e.IV},
	} {
		sim, light, err := queryCost(e, sc.store, ws, p.ScalQueries, 0.001)
		if err != nil {
			return nil, fmt.Errorf("bench: baseline %s: %w", sc.name, err)
		}
		b.Schemes[sc.name] = BaselineMetric{SimMicrosPerQuery: sim, LightIOPerQuery: light}
	}
	cfg := DefaultServeConfig(p)
	cfg.Clients = 2
	// The hit rate doesn't depend on client pacing; skip the render
	// intervals so the guard run stays fast.
	cfg.Think = 0
	r, err := RunServeClients(p, cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: baseline serve: %w", err)
	}
	if r.PoolHits+r.PoolMisses > 0 {
		b.CachedHitRate = float64(r.PoolHits) / float64(r.PoolHits+r.PoolMisses)
	}
	return b, nil
}

// CompareBaseline checks fresh metrics against the committed reference
// and returns one line per regression beyond tol (0.25 = fail when
// simulated throughput drops more than 25%, or when the cached hit rate
// collapses by the same fraction). An empty slice means the guard passes.
func CompareBaseline(ref, cur *Baseline, tol float64) []string {
	var bad []string
	if ref.Workload != cur.Workload {
		return []string{fmt.Sprintf("workload mismatch: baseline %q vs current %q (regenerate the baseline)",
			ref.Workload, cur.Workload)}
	}
	names := make([]string, 0, len(ref.Schemes))
	for name := range ref.Schemes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := ref.Schemes[name]
		got, ok := cur.Schemes[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		if w, g := want.Throughput(), got.Throughput(); g < w*(1-tol) {
			bad = append(bad, fmt.Sprintf(
				"%s: simulated throughput %.0f q/s, baseline %.0f q/s (-%.0f%%, tolerance %.0f%%)",
				name, g, w, 100*(1-g/w), 100*tol))
		}
	}
	if ref.CachedHitRate > 0 && cur.CachedHitRate < ref.CachedHitRate*(1-tol) {
		bad = append(bad, fmt.Sprintf(
			"serve: pool hit rate %.1f%%, baseline %.1f%% (tolerance %.0f%%)",
			100*cur.CachedHitRate, 100*ref.CachedHitRate, 100*tol))
	}
	return bad
}

// LoadBaseline reads a committed baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes b to path in the committed format.
func WriteBaseline(path string, b *Baseline) error {
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
